#!/bin/sh
# Regenerates every table and figure of the MIDDLE reproduction.
# Usage: ./run_all_figures.sh            (full scale)
#        MIDDLE_SCALE=0.1 ./run_all_figures.sh   (smoke run)
set -e
mkdir -p results/logs
for bin in fig1_motivation fig2_ondevice_case fig3_param_space \
           theorem1_bound fig6_time_to_accuracy fig7_mobility_sweep \
           fig8_tc_sweep ablation_report; do
  echo "== $bin =="
  cargo run -p middle-bench --release --bin "$bin" 2>&1 | tee "results/logs/$bin.log"
done
