//! Cross-crate integration tests: the full pipeline from synthetic data
//! through mobility traces to federated training, exercised through the
//! `middle` facade exactly as a downstream user would.

use middle::core::quadratic_sim::{
    simulate_quadratic_hfl, two_cluster_problem, QuadraticHflConfig,
};
use middle::core::{OnDevicePolicy, SelectionPolicy};
use middle::data::partition::{partition, Scheme};
use middle::data::synthetic::SyntheticSource;
use middle::mobility::{generate_markov_hop, Trace};
use middle::nn::params::flatten;
use middle::prelude::*;

fn built(cfg: SimConfig) -> Simulation {
    SimulationBuilder::new(cfg).build().expect("valid config")
}

fn small_cfg(task: Task, algorithm: Algorithm) -> SimConfig {
    let mut cfg = SimConfig::tiny(task, algorithm);
    cfg.steps = 6;
    cfg.eval_interval = 3;
    cfg
}

#[test]
fn full_pipeline_all_tasks() {
    for task in Task::ALL {
        let record = built(small_cfg(task, Algorithm::middle())).run();
        assert_eq!(record.task, task.name());
        assert!(!record.points.is_empty());
        assert!(record.points.iter().all(|p| p.global_accuracy.is_finite()));
        assert!(record.points.iter().all(|p| p.global_loss.is_finite()));
    }
}

#[test]
fn all_algorithms_run_on_all_selection_aggregation_combos() {
    // Every (selection, on-device) combination must execute.
    let selections = [
        SelectionPolicy::Random,
        SelectionPolicy::LeastSimilarUpdate,
        SelectionPolicy::MostSimilarUpdate,
        SelectionPolicy::OortUtility,
    ];
    let on_devices = [
        OnDevicePolicy::EdgeModel,
        OnDevicePolicy::SimilarityWeighted,
        OnDevicePolicy::UnclippedSimilarity,
        OnDevicePolicy::Average,
        OnDevicePolicy::KeepLocal,
        OnDevicePolicy::FixedAlpha { alpha: 0.3 },
    ];
    for sel in selections {
        for od in on_devices {
            let algo = Algorithm::custom("combo", sel, od);
            let mut cfg = SimConfig::tiny(Task::Mnist, algo);
            cfg.steps = 3;
            cfg.eval_interval = 3;
            let record = built(cfg).run();
            assert!(
                record.final_accuracy().is_finite(),
                "combo {sel:?} + {od:?} produced NaN"
            );
        }
    }
}

#[test]
fn training_beats_random_guessing() {
    // After a real (if short) training run, the global model must beat
    // the 10% random-guess floor with margin.
    let mut cfg = SimConfig::paper_default(Task::Mnist, Algorithm::middle());
    cfg.num_edges = 2;
    cfg.num_devices = 10;
    cfg.devices_per_edge = 3;
    cfg.samples_per_device = 20;
    cfg.steps = 20;
    cfg.eval_interval = 20;
    cfg.test_samples = 150;
    let record = built(cfg).run();
    assert!(
        record.final_accuracy() > 0.2,
        "final accuracy {} not above chance",
        record.final_accuracy()
    );
}

#[test]
fn custom_trace_scripts_device_movement() {
    // A hand-written trace drives exactly the expected moved() pattern.
    let assignments = vec![vec![0, 0, 1, 1]; 3]
        .into_iter()
        .enumerate()
        .map(|(t, mut row)| {
            if t >= 1 {
                row[0] = 1; // device 0 moves to edge 1 at step 1
            }
            row
        })
        .collect();
    let trace = Trace::new(2, assignments);
    assert!(trace.moved(1, 0));
    assert!(!trace.moved(2, 0));

    let mut cfg = SimConfig::tiny(Task::Mnist, Algorithm::middle());
    cfg.num_devices = 4;
    cfg.num_edges = 2;
    cfg.devices_per_edge = 2;
    cfg.steps = 3;
    let mut sim = SimulationBuilder::new(cfg)
        .with_trace(trace)
        .build()
        .expect("valid trace");
    for t in 0..3 {
        sim.step(t);
    }
}

#[test]
fn mismatched_trace_is_rejected() {
    let trace = generate_markov_hop(2, 99, 8, 0.5, 1);
    let cfg = SimConfig::tiny(Task::Mnist, Algorithm::middle());
    let err = match SimulationBuilder::new(cfg).with_trace(trace).build() {
        Ok(_) => panic!("mismatched trace must not build"),
        Err(e) => e,
    };
    assert!(matches!(err, SimError::TraceMismatch { .. }));
    assert!(err.to_string().contains("trace device count"));
}

#[test]
fn broadcast_resets_all_models_to_cloud() {
    let mut cfg = SimConfig::tiny(Task::Mnist, Algorithm::fedmes());
    cfg.cloud_interval = 3;
    cfg.steps = 3;
    let mut sim = built(cfg);
    for t in 0..3 {
        sim.step(t);
    }
    let cloud = flatten(sim.cloud_model());
    for e in sim.edges() {
        assert_eq!(flatten(&e.model), cloud);
    }
    for d in sim.devices() {
        assert_eq!(flatten(&d.model), cloud);
    }
}

#[test]
fn partition_feeds_devices_with_correct_skew() {
    let src = SyntheticSource::new(Task::Mnist, 9);
    let base = src.generate_balanced(600, 1);
    let p = partition(&base, 12, 30, Scheme::MajorClass { major_frac: 0.8 }, 3);
    for m in 0..12 {
        let counts = p.device_class_counts(m, &base);
        let major = p.major_class[m].expect("major class set");
        assert!(counts[major] as f32 >= 0.8 * 30.0 - 1.0);
    }
}

#[test]
fn mobility_probability_flows_through_config() {
    let mut cfg = SimConfig::tiny(Task::Mnist, Algorithm::middle());
    cfg.num_devices = 40;
    cfg.steps = 40;
    cfg.devices_per_edge = 2;
    for p in [0.1f64, 0.6] {
        cfg.mobility = MobilitySource::MarkovHop { p };
        let sim = built(cfg.clone());
        let emp = sim.trace().empirical_mobility();
        assert!((emp - p).abs() < 0.12, "requested P={p}, trace has {emp}");
    }
}

#[test]
fn quadratic_theory_end_to_end() {
    let q = two_cluster_problem(8, 2, 2.0);
    let res = simulate_quadratic_hfl(
        &q,
        &QuadraticHflConfig {
            steps: 120,
            ..Default::default()
        },
    );
    assert_eq!(res.gap_trajectory.len(), 120);
    // The gap collapses quickly then sits at the noise floor; compare the
    // final value against the very first post-step gap.
    assert!(
        res.final_gap < res.gap_trajectory[0] || res.final_gap < 0.05,
        "no convergence: first {} final {}",
        res.gap_trajectory[0],
        res.final_gap
    );
}

#[test]
fn run_record_serialises_end_to_end() {
    let record = built(small_cfg(Task::Mnist, Algorithm::oort())).run();
    let json = serde_json::to_string(&record).unwrap();
    let back: RunRecord = serde_json::from_str(&json).unwrap();
    assert_eq!(back.algorithm, record.algorithm);
    assert_eq!(back.points.len(), record.points.len());
    let csv = record.to_csv();
    assert!(csv.lines().count() == record.points.len() + 1);
}

#[test]
fn moved_devices_actually_blend_models_under_middle() {
    // Force a move and verify the on-device init differs from the pure
    // edge model under MIDDLE but equals it under HierFAVG/General.
    use middle::core::aggregation::on_device_init;
    use middle::nn::zoo;
    use middle::tensor::random::rng;

    let spec = Task::Mnist.spec();
    let edge = zoo::logistic(&spec, &mut rng(1));
    // A local model positively correlated with the edge model: blend ≠ edge.
    let mut local = edge.clone();
    for p in local.params_mut() {
        for v in p.value.data_mut() {
            *v *= 1.5;
        }
    }
    let middle_init = on_device_init(OnDevicePolicy::SimilarityWeighted, &edge, &local);
    let general_init = on_device_init(OnDevicePolicy::EdgeModel, &edge, &local);
    assert_eq!(flatten(&general_init), flatten(&edge));
    assert_ne!(flatten(&middle_init), flatten(&edge));
}
