//! # middle
//!
//! Facade crate for the Rust reproduction of **MIDDLE — "Learning From
//! Your Neighbours: Mobility-Driven Device-Edge-Cloud Federated
//! Learning"** (Zhang, Zheng, Wu, Li, Shao, Chen — ICPP 2023).
//!
//! Re-exports the five workspace crates:
//!
//! * [`tensor`] (= `middle-tensor`) — dense f32 tensors, parallel matmul,
//!   im2col convolution;
//! * [`nn`] (= `middle-nn`) — layers, losses, optimizers, the
//!   [`nn::Sequential`] model and its flat parameter view;
//! * [`data`] (= `middle-data`) — synthetic MNIST/EMNIST/CIFAR10/Speech
//!   stand-ins and Non-IID partitioners;
//! * [`mobility`] (= `middle-mobility`) — edge-cell geometry, mobility
//!   models and device→edge traces;
//! * [`core`] (= `middle-core`) — the MIDDLE algorithm, baselines,
//!   Algorithm 1 simulation loop and the Theorem 1 theory.
//!
//! See `examples/quickstart.rs` for a five-minute tour and DESIGN.md for
//! the experiment index.

pub use middle_core as core;
pub use middle_data as data;
pub use middle_mobility as mobility;
pub use middle_nn as nn;
pub use middle_tensor as tensor;

/// The most common imports in one place.
pub mod prelude {
    pub use middle_core::{
        Algorithm, AlgorithmConfig, AlgorithmPolicy, AlgorithmState, CompressionConfig, DelayModel,
        DropoutModel, ExecutionMode, FaultConfig, LatencyModel, MobilitySource, MoveAction,
        OnDevicePolicy, PopulationMode, RunRecord, SelectionPolicy, SimConfig, SimError,
        Simulation, SimulationBuilder, StepMode, TimelineConfig,
    };
    pub use middle_data::{Scheme, Task};
    pub use middle_mobility::Trace;
    pub use middle_nn::{OptimizerKind, Sequential};
}
