use middle_data::synthetic::{SyntheticSource, Task};

fn acc(task: Task, seed: u64) -> f32 {
    let src = SyntheticSource::new(task, seed);
    let d = src.generate_balanced(600, 3);
    let protos = src.prototypes();
    let flen = d.sample_len();
    let mut correct = 0usize;
    for i in 0..d.len() {
        let x = &d.inputs().data()[i * flen..(i + 1) * flen];
        let mut best = (0usize, f32::INFINITY);
        for (c, p) in protos.iter().enumerate() {
            let dist: f32 = x.iter().zip(p).map(|(a, b)| (a - b) * (a - b)).sum();
            if dist < best.1 {
                best = (c, dist);
            }
        }
        if best.0 == d.labels()[i] {
            correct += 1;
        }
    }
    correct as f32 / d.len() as f32
}

fn main() {
    for t in Task::ALL {
        let a: f32 = (0..3).map(|s| acc(t, 100 + s)).sum::<f32>() / 3.0;
        println!("{}: {:.3}", t.name(), a);
    }
}
