use middle_data::batch::BatchIter;
use middle_data::metrics::accuracy;
use middle_data::synthetic::{train_test, Task};
use middle_nn::optim::MomentumSgd;
use middle_nn::zoo;
use middle_tensor::random::rng;
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    let task = Task::Mnist;
    let (train, test) = train_test(task, 1000, 300, 7);
    let mut model = zoo::model_for_task(task.name(), &task.spec(), &mut rng(1));
    let mut opt = MomentumSgd::new(0.01, 0.9);
    let mut r = rng(2);
    for epoch in 0..6 {
        let mut last = 0.0;
        for (x, y) in BatchIter::new(&train, 32, &mut r) {
            last = model.train_batch(&x, &y, &mut opt);
        }
        let preds = model.predict(test.inputs());
        let acc = accuracy(test.labels(), &preds);
        println!(
            "epoch {epoch}: loss {last:.3} test acc {acc:.3} elapsed {:?}",
            t0.elapsed()
        );
    }
}
