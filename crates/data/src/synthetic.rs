//! Seeded synthetic stand-ins for the paper's four benchmark datasets.
//!
//! The paper evaluates on MNIST, EMNIST-Letters, CIFAR10 and
//! SpeechCommands. Those corpora are unavailable here, and — crucially —
//! the phenomena MIDDLE studies are driven by *label-distribution skew*
//! across devices and edges, not by pixel statistics. Each task is
//! therefore modelled as a class-conditional prototype + structured noise
//! generator with a matching shape signature:
//!
//! | Task | Stand-in shape | Classes | Hardness knob |
//! |---|---|---|---|
//! | `mnist` | `[1, 16, 16]` | 10 | well-separated prototypes |
//! | `emnist` | `[1, 16, 16]` | 26 | more classes, same separation |
//! | `cifar10` | `[3, 16, 16]` | 10 | reduced separation + channel noise |
//! | `speech` | `[1, 1, 64]` | 10 | long sparse vectors (paper §6.2.2) |
//!
//! Prototypes are smooth random fields (low-frequency sinusoid mixtures),
//! so nearby pixels correlate like image data and convolution has real
//! structure to exploit. Every sample is `prototype[class] + per-sample
//! jitter`, fully determined by `(task, seed)`.

use crate::dataset::Dataset;
use middle_nn::InputSpec;
use middle_tensor::random::{derive_seed, rng};
use middle_tensor::{Shape, Tensor};
use rand::rngs::StdRng;
use rand::Rng;
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

/// The four benchmark tasks of the paper's evaluation (§6.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "lowercase")]
pub enum Task {
    /// 10-class grayscale digits stand-in.
    Mnist,
    /// 26-class grayscale letters stand-in (EMNIST "Letters" track).
    Emnist,
    /// 10-class colour images stand-in.
    Cifar10,
    /// 10-class long-sparse-vector keyword-spotting stand-in.
    Speech,
}

impl Task {
    /// All four tasks in the paper's presentation order.
    pub const ALL: [Task; 4] = [Task::Mnist, Task::Emnist, Task::Cifar10, Task::Speech];

    /// The task's canonical lowercase name.
    pub fn name(&self) -> &'static str {
        match self {
            Task::Mnist => "mnist",
            Task::Emnist => "emnist",
            Task::Cifar10 => "cifar10",
            Task::Speech => "speech",
        }
    }

    /// Parses a task name.
    pub fn parse(s: &str) -> Option<Task> {
        match s {
            "mnist" => Some(Task::Mnist),
            "emnist" => Some(Task::Emnist),
            "cifar10" => Some(Task::Cifar10),
            "speech" => Some(Task::Speech),
            _ => None,
        }
    }

    /// Input signature of the stand-in dataset.
    pub fn spec(&self) -> InputSpec {
        match self {
            Task::Mnist => InputSpec {
                channels: 1,
                height: 16,
                width: 16,
                classes: 10,
            },
            Task::Emnist => InputSpec {
                channels: 1,
                height: 16,
                width: 16,
                classes: 26,
            },
            Task::Cifar10 => InputSpec {
                channels: 3,
                height: 16,
                width: 16,
                classes: 10,
            },
            Task::Speech => InputSpec {
                channels: 1,
                height: 1,
                width: 64,
                classes: 10,
            },
        }
    }

    /// The target accuracy the paper uses for time-to-accuracy
    /// measurements (§6.1.2): 0.95 / 0.80 / 0.55 / 0.85.
    pub fn target_accuracy(&self) -> f32 {
        match self {
            Task::Mnist => 0.95,
            Task::Emnist => 0.80,
            Task::Cifar10 => 0.55,
            Task::Speech => 0.85,
        }
    }

    /// Between-class prototype separation (smaller = harder task).
    fn separation(&self) -> f32 {
        match self {
            Task::Mnist => 0.55,
            Task::Emnist => 0.42,
            Task::Cifar10 => 0.28,
            Task::Speech => 2.6,
        }
    }

    /// Per-sample noise standard deviation.
    fn noise_std(&self) -> f32 {
        match self {
            Task::Mnist => 0.7,
            Task::Emnist => 0.6,
            Task::Cifar10 => 1.1,
            Task::Speech => 0.6,
        }
    }

    /// Fraction of active (non-zero prototype) positions; 1.0 = dense.
    /// The speech stand-in mimics the paper's "long sparse vectors".
    fn density(&self) -> f32 {
        match self {
            Task::Speech => 0.2,
            _ => 1.0,
        }
    }
}

/// Generator for one task's synthetic distribution: holds per-class
/// prototypes and draws i.i.d. samples around them.
#[derive(Debug, Clone)]
pub struct SyntheticSource {
    task: Task,
    prototypes: Vec<Vec<f32>>,
    seed: u64,
}

impl SyntheticSource {
    /// Builds the generator for `(task, seed)`; prototypes are fixed from
    /// the seed, so two sources with the same arguments are identical.
    pub fn new(task: Task, seed: u64) -> Self {
        let spec = task.spec();
        let n = spec.features();
        let sep = task.separation();
        let mut prototypes = Vec::with_capacity(spec.classes);
        for c in 0..spec.classes {
            let mut r = rng(derive_seed(seed, 0x5EED_0000 + c as u64));
            prototypes.push(smooth_field(&spec, sep, task.density(), &mut r));
            debug_assert_eq!(prototypes[c].len(), n);
        }
        SyntheticSource {
            task,
            prototypes,
            seed,
        }
    }

    /// The generated task.
    pub fn task(&self) -> Task {
        self.task
    }

    /// The class prototype vectors.
    pub fn prototypes(&self) -> &[Vec<f32>] {
        &self.prototypes
    }

    /// Draws one sample of class `c` into `out`.
    pub fn sample_into(&self, c: usize, rng: &mut StdRng, out: &mut [f32]) {
        let proto = &self.prototypes[c];
        assert_eq!(out.len(), proto.len());
        let noise = Normal::new(0.0f32, self.task.noise_std()).expect("valid std");
        // Global per-sample gain models brightness / loudness variation.
        let gain = 1.0 + 0.1 * noise.sample(rng);
        for (o, &p) in out.iter_mut().zip(proto) {
            *o = gain * p + noise.sample(rng);
        }
    }

    /// Generates a dataset with `counts[c]` samples of each class, in
    /// class-sorted order (shuffle downstream if needed).
    pub fn generate_counts(&self, counts: &[usize], sample_seed: u64) -> Dataset {
        let spec = self.task.spec();
        assert_eq!(counts.len(), spec.classes, "counts per class");
        let n: usize = counts.iter().sum();
        let flen = spec.features();
        let mut data = vec![0.0f32; n * flen];
        let mut labels = Vec::with_capacity(n);
        let mut r = rng(derive_seed(self.seed, sample_seed ^ 0xDA7A));
        let mut off = 0usize;
        for (c, &k) in counts.iter().enumerate() {
            for _ in 0..k {
                self.sample_into(c, &mut r, &mut data[off..off + flen]);
                labels.push(c);
                off += flen;
            }
        }
        let shape = Shape::new(vec![n, spec.channels, spec.height, spec.width]);
        Dataset::new(Tensor::from_vec(shape, data), labels, spec.classes)
    }

    /// Generates a class-balanced dataset of `n` samples (remainders go
    /// to the lowest class indices).
    pub fn generate_balanced(&self, n: usize, sample_seed: u64) -> Dataset {
        let classes = self.task.spec().classes;
        let mut counts = vec![n / classes; classes];
        for item in counts.iter_mut().take(n % classes) {
            *item += 1;
        }
        self.generate_counts(&counts, sample_seed)
    }
}

/// A smooth random field over the task's spatial grid: a mixture of a few
/// low-frequency sinusoids, scaled to `sep`, optionally sparsified.
fn smooth_field(spec: &InputSpec, sep: f32, density: f32, r: &mut StdRng) -> Vec<f32> {
    let (c, h, w) = (spec.channels, spec.height, spec.width);
    let mut field = vec![0.0f32; c * h * w];
    const WAVES: usize = 4;
    for ch in 0..c {
        let plane = &mut field[ch * h * w..(ch + 1) * h * w];
        for _ in 0..WAVES {
            let fy = r.gen_range(0.5..2.5f32);
            let fx = r.gen_range(0.5..2.5f32);
            let py = r.gen_range(0.0..std::f32::consts::TAU);
            let px = r.gen_range(0.0..std::f32::consts::TAU);
            let amp = r.gen_range(0.3..1.0f32) * sep / WAVES as f32 * 2.0;
            for y in 0..h {
                for x in 0..w {
                    let vy = (fy * y as f32 / h.max(2) as f32 * std::f32::consts::TAU + py).sin();
                    let vx = (fx * x as f32 / w.max(2) as f32 * std::f32::consts::TAU + px).sin();
                    plane[y * w + x] += amp * vy * vx;
                }
            }
        }
    }
    if density < 1.0 {
        for v in field.iter_mut() {
            if r.gen::<f32>() > density {
                *v = 0.0;
            }
        }
    }
    field
}

/// Convenience: a `(train, test)` pair for a task, class-balanced.
pub fn train_test(task: Task, train_n: usize, test_n: usize, seed: u64) -> (Dataset, Dataset) {
    let src = SyntheticSource::new(task, seed);
    let train = src.generate_balanced(train_n, 1);
    let test = src.generate_balanced(test_n, 2);
    (train, test)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_match_paper_signatures() {
        assert_eq!(Task::Mnist.spec().classes, 10);
        assert_eq!(Task::Emnist.spec().classes, 26);
        assert_eq!(Task::Cifar10.spec().channels, 3);
        assert_eq!(Task::Speech.spec().width, 64);
    }

    #[test]
    fn parse_roundtrips() {
        for t in Task::ALL {
            assert_eq!(Task::parse(t.name()), Some(t));
        }
        assert_eq!(Task::parse("imagenet"), None);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = SyntheticSource::new(Task::Mnist, 42).generate_balanced(20, 1);
        let b = SyntheticSource::new(Task::Mnist, 42).generate_balanced(20, 1);
        assert_eq!(a, b);
        let c = SyntheticSource::new(Task::Mnist, 43).generate_balanced(20, 1);
        assert_ne!(a, c);
    }

    #[test]
    fn counts_are_respected() {
        let src = SyntheticSource::new(Task::Mnist, 1);
        let counts = [5, 0, 0, 3, 0, 0, 0, 0, 0, 2];
        let d = src.generate_counts(&counts, 7);
        assert_eq!(d.len(), 10);
        assert_eq!(d.class_counts(), counts.to_vec());
    }

    #[test]
    fn balanced_split_is_balanced() {
        let d = SyntheticSource::new(Task::Emnist, 3).generate_balanced(52, 1);
        assert!(d.class_counts().iter().all(|&c| c == 2));
    }

    #[test]
    fn speech_samples_are_sparse_at_prototype_level() {
        let src = SyntheticSource::new(Task::Speech, 5);
        for proto in src.prototypes() {
            let zeros = proto.iter().filter(|&&v| v == 0.0).count();
            assert!(
                zeros as f32 / proto.len() as f32 > 0.5,
                "speech prototypes should be mostly zero"
            );
        }
    }

    #[test]
    fn classes_are_separable_by_nearest_prototype() {
        // Sanity: nearest-prototype classification on fresh samples beats
        // 80% on the easy task — the signal is real.
        let src = SyntheticSource::new(Task::Mnist, 11);
        let d = src.generate_balanced(200, 9);
        let protos = src.prototypes();
        let flen = d.sample_len();
        let mut correct = 0usize;
        for i in 0..d.len() {
            let x = &d.inputs().data()[i * flen..(i + 1) * flen];
            let mut best = 0usize;
            let mut best_d = f32::INFINITY;
            for (c, p) in protos.iter().enumerate() {
                let dist: f32 = x.iter().zip(p).map(|(a, b)| (a - b) * (a - b)).sum();
                if dist < best_d {
                    best_d = dist;
                    best = c;
                }
            }
            if best == d.labels()[i] {
                correct += 1;
            }
        }
        assert!(correct >= 160, "nearest-prototype accuracy {correct}/200");
    }

    #[test]
    fn task_hardness_ordering() {
        // Nearest-prototype accuracy should be higher on mnist than cifar10.
        let acc = |task: Task| {
            let src = SyntheticSource::new(task, 21);
            let d = src.generate_balanced(300, 3);
            let protos = src.prototypes();
            let flen = d.sample_len();
            let mut correct = 0usize;
            for i in 0..d.len() {
                let x = &d.inputs().data()[i * flen..(i + 1) * flen];
                let mut best = (0usize, f32::INFINITY);
                for (c, p) in protos.iter().enumerate() {
                    let dist: f32 = x.iter().zip(p).map(|(a, b)| (a - b) * (a - b)).sum();
                    if dist < best.1 {
                        best = (c, dist);
                    }
                }
                if best.0 == d.labels()[i] {
                    correct += 1;
                }
            }
            correct as f32 / d.len() as f32
        };
        assert!(acc(Task::Mnist) > acc(Task::Cifar10) + 0.05);
    }

    #[test]
    fn train_test_are_distinct_draws() {
        let (tr, te) = train_test(Task::Mnist, 30, 30, 17);
        assert_ne!(tr.inputs().data(), te.inputs().data());
        assert_eq!(tr.classes(), te.classes());
    }
}
