//! Evaluation metrics: accuracy, per-class accuracy and confusion
//! matrices — the quantities plotted in the paper's Figures 1, 2 and 6–8.

use serde::{Deserialize, Serialize};

/// A `C × C` confusion matrix (`rows = true class`, `cols = predicted`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Confusion {
    classes: usize,
    counts: Vec<usize>,
}

impl Confusion {
    /// An empty matrix for `classes` classes.
    pub fn new(classes: usize) -> Self {
        assert!(classes > 0, "need at least one class");
        Confusion {
            classes,
            counts: vec![0; classes * classes],
        }
    }

    /// Builds a matrix from parallel truth/prediction slices.
    pub fn from_predictions(truth: &[usize], pred: &[usize], classes: usize) -> Self {
        assert_eq!(truth.len(), pred.len(), "truth/pred length mismatch");
        let mut m = Confusion::new(classes);
        for (&t, &p) in truth.iter().zip(pred) {
            m.record(t, p);
        }
        m
    }

    /// Records one observation.
    pub fn record(&mut self, truth: usize, pred: usize) {
        assert!(
            truth < self.classes && pred < self.classes,
            "class out of range"
        );
        self.counts[truth * self.classes + pred] += 1;
    }

    /// Count at `(truth, pred)`.
    pub fn at(&self, truth: usize, pred: usize) -> usize {
        self.counts[truth * self.classes + pred]
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Total observations.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Overall accuracy (0.0 when empty).
    pub fn accuracy(&self) -> f32 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: usize = (0..self.classes).map(|c| self.at(c, c)).sum();
        correct as f32 / total as f32
    }

    /// Recall (per-class accuracy) for each class; `None` for classes
    /// with no observations.
    pub fn per_class_accuracy(&self) -> Vec<Option<f32>> {
        (0..self.classes)
            .map(|c| {
                let row: usize = (0..self.classes).map(|p| self.at(c, p)).sum();
                if row == 0 {
                    None
                } else {
                    Some(self.at(c, c) as f32 / row as f32)
                }
            })
            .collect()
    }

    /// Mean accuracy over a subset of classes (ignoring empty ones) —
    /// the "major classes" / "minor classes" series of Figure 1(b).
    pub fn subset_accuracy(&self, classes: &[usize]) -> Option<f32> {
        let per = self.per_class_accuracy();
        let vals: Vec<f32> = classes.iter().filter_map(|&c| per[c]).collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f32>() / vals.len() as f32)
        }
    }

    /// Merges another confusion matrix into this one.
    pub fn merge(&mut self, other: &Confusion) {
        assert_eq!(self.classes, other.classes, "class count mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }
}

/// Plain accuracy of predictions against truth.
pub fn accuracy(truth: &[usize], pred: &[usize]) -> f32 {
    assert_eq!(truth.len(), pred.len(), "truth/pred length mismatch");
    if truth.is_empty() {
        return 0.0;
    }
    let correct = truth.iter().zip(pred).filter(|(a, b)| a == b).count();
    correct as f32 / truth.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basics() {
        assert_eq!(accuracy(&[0, 1, 2], &[0, 1, 0]), 2.0 / 3.0);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn confusion_records_and_scores() {
        let m = Confusion::from_predictions(&[0, 0, 1, 1], &[0, 1, 1, 1], 2);
        assert_eq!(m.at(0, 0), 1);
        assert_eq!(m.at(0, 1), 1);
        assert_eq!(m.at(1, 1), 2);
        assert_eq!(m.total(), 4);
        assert!((m.accuracy() - 0.75).abs() < 1e-6);
    }

    #[test]
    fn per_class_handles_missing_classes() {
        let m = Confusion::from_predictions(&[0, 0], &[0, 1], 3);
        let per = m.per_class_accuracy();
        assert_eq!(per[0], Some(0.5));
        assert_eq!(per[1], None);
        assert_eq!(per[2], None);
    }

    #[test]
    fn subset_accuracy_mirrors_figure1() {
        // Classes 0-1 "major" (perfect), 2-3 "minor" (wrong).
        let m = Confusion::from_predictions(&[0, 1, 2, 3], &[0, 1, 0, 0], 4);
        assert_eq!(m.subset_accuracy(&[0, 1]), Some(1.0));
        assert_eq!(m.subset_accuracy(&[2, 3]), Some(0.0));
        assert_eq!(m.subset_accuracy(&[]), None);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Confusion::from_predictions(&[0], &[0], 2);
        let b = Confusion::from_predictions(&[1], &[0], 2);
        a.merge(&b);
        assert_eq!(a.total(), 2);
        assert_eq!(a.at(1, 0), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_record_panics() {
        Confusion::new(2).record(2, 0);
    }
}
