//! # middle-data
//!
//! Datasets, Non-IID partitioners and evaluation metrics for the MIDDLE
//! (ICPP 2023) reproduction.
//!
//! The paper evaluates on MNIST, EMNIST-Letters, CIFAR10 and
//! SpeechCommands; those corpora are unavailable in this environment, so
//! [`synthetic`] provides seeded class-conditional stand-ins with matching
//! shape signatures and a controlled hardness ordering (see DESIGN.md §2
//! for why this substitution preserves the phenomena under study).
//! [`mod@partition`] reproduces the paper's label-skew settings: per-device
//! major class (>80%), single-class devices, the Figure-1 70/30 edge
//! skew, and Dirichlet(α) as the standard FL knob.

pub mod batch;
pub mod dataset;
pub mod metrics;
pub mod partition;
pub mod synthetic;

pub use dataset::Dataset;
pub use metrics::{accuracy, Confusion};
pub use partition::{partition, Partition, Scheme};
pub use synthetic::{train_test, SyntheticSource, Task};
