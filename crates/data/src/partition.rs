//! Non-IID partitioners: distribute dataset samples across federated
//! devices and edges with controlled label skew.
//!
//! All partitioners return index lists into a base [`Dataset`], so the
//! same generated corpus can be re-partitioned without re-sampling.

use crate::dataset::Dataset;
use middle_tensor::random::{derive_seed, permutation, rng};
use rand::Rng;
use rand_distr::{Dirichlet, Distribution};
use serde::{Deserialize, Serialize};

/// A device-level partition: `assignments[m]` holds the sample indices of
/// device `m`, and `major_class[m]` its dominant class when the scheme
/// defines one.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Partition {
    /// Sample indices per device.
    pub assignments: Vec<Vec<usize>>,
    /// Dominant class per device (`None` for schemes without one).
    pub major_class: Vec<Option<usize>>,
}

impl Partition {
    /// Number of devices.
    pub fn devices(&self) -> usize {
        self.assignments.len()
    }

    /// Number of samples on device `m`.
    pub fn device_len(&self, m: usize) -> usize {
        self.assignments[m].len()
    }

    /// Total assigned samples.
    pub fn total(&self) -> usize {
        self.assignments.iter().map(Vec::len).sum()
    }

    /// Label histogram of device `m` against the base dataset.
    pub fn device_class_counts(&self, m: usize, base: &Dataset) -> Vec<usize> {
        let mut counts = vec![0usize; base.classes()];
        for &i in &self.assignments[m] {
            counts[base.labels()[i]] += 1;
        }
        counts
    }
}

/// Declarative partition scheme, serialisable inside experiment configs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Scheme {
    /// Uniform IID split.
    Iid,
    /// Each device gets a dominant class covering `major_frac` of its
    /// samples and the rest uniform over other classes — the paper's
    /// main setting (§6.1.2: "more than 80% of all samples").
    MajorClass {
        /// Fraction of the device's samples from its major class.
        major_frac: f32,
    },
    /// Each device holds samples of exactly one class (the paper's
    /// Question-2 motivation experiment).
    SingleClass,
    /// Dirichlet(α) label distribution per device (the standard FL
    /// Non-IID knob; small α = heavy skew).
    Dirichlet {
        /// Concentration parameter.
        alpha: f32,
    },
}

/// Partitions `base` across `devices` devices with `per_device` samples
/// each, according to `scheme`.
///
/// Samples are drawn *with replacement by index reuse avoided per device*
/// when the base has enough samples of the requested class, otherwise
/// indices may repeat across devices (devices never share memory, so this
/// mirrors sampling from the underlying distribution).
pub fn partition(
    base: &Dataset,
    devices: usize,
    per_device: usize,
    scheme: Scheme,
    seed: u64,
) -> Partition {
    assert!(devices > 0 && per_device > 0, "empty partition request");
    let classes = base.classes();
    let by_class = base.indices_by_class();
    assert!(
        by_class.iter().any(|v| !v.is_empty()),
        "base dataset has no samples"
    );
    let mut r = rng(derive_seed(seed, 0x9A27));

    // Rotating cursors per class spread the base samples across devices.
    let mut cursors = vec![0usize; classes];
    let take = |c: usize, cursors: &mut Vec<usize>, r: &mut rand::rngs::StdRng| -> usize {
        let pool = &by_class[c];
        if pool.is_empty() {
            // Fall back to any class; degenerate but keeps invariants.
            let any: Vec<usize> = (0..classes).filter(|&k| !by_class[k].is_empty()).collect();
            let k = any[r.gen_range(0..any.len())];
            let idx = by_class[k][cursors[k] % by_class[k].len()];
            cursors[k] += 1;
            return idx;
        }
        let idx = pool[cursors[c] % pool.len()];
        cursors[c] += 1;
        idx
    };

    let mut assignments = Vec::with_capacity(devices);
    let mut major_class = Vec::with_capacity(devices);

    match scheme {
        Scheme::Iid => {
            for _ in 0..devices {
                let mut idxs = Vec::with_capacity(per_device);
                for _ in 0..per_device {
                    let c = r.gen_range(0..classes);
                    idxs.push(take(c, &mut cursors, &mut r));
                }
                assignments.push(idxs);
                major_class.push(None);
            }
        }
        Scheme::MajorClass { major_frac } => {
            assert!(
                (0.0..=1.0).contains(&major_frac),
                "major_frac must be in [0, 1]"
            );
            for m in 0..devices {
                // Deal major classes round-robin so every class appears.
                let major = m % classes;
                let n_major = ((per_device as f32) * major_frac).round() as usize;
                let mut idxs = Vec::with_capacity(per_device);
                for _ in 0..n_major {
                    idxs.push(take(major, &mut cursors, &mut r));
                }
                for _ in n_major..per_device {
                    let mut c = r.gen_range(0..classes);
                    if classes > 1 {
                        while c == major {
                            c = r.gen_range(0..classes);
                        }
                    }
                    idxs.push(take(c, &mut cursors, &mut r));
                }
                assignments.push(idxs);
                major_class.push(Some(major));
            }
        }
        Scheme::SingleClass => {
            for m in 0..devices {
                let c = m % classes;
                let idxs = (0..per_device)
                    .map(|_| take(c, &mut cursors, &mut r))
                    .collect();
                assignments.push(idxs);
                major_class.push(Some(c));
            }
        }
        Scheme::Dirichlet { alpha } => {
            assert!(alpha > 0.0, "Dirichlet alpha must be positive");
            let dir = Dirichlet::new(&vec![alpha; classes]).expect("valid Dirichlet");
            for _ in 0..devices {
                let probs = dir.sample(&mut r);
                let mut idxs = Vec::with_capacity(per_device);
                for _ in 0..per_device {
                    let c = sample_categorical(&probs, &mut r);
                    idxs.push(take(c, &mut cursors, &mut r));
                }
                // Dominant class of the drawn distribution.
                let major = probs
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, _)| i);
                assignments.push(idxs);
                major_class.push(major);
            }
        }
    }

    Partition {
        assignments,
        major_class,
    }
}

fn sample_categorical(probs: &[f32], r: &mut rand::rngs::StdRng) -> usize {
    let u: f32 = r.gen();
    let mut acc = 0.0f32;
    for (i, &p) in probs.iter().enumerate() {
        acc += p;
        if u < acc {
            return i;
        }
    }
    probs.len() - 1
}

/// The Figure-1 motivation split: two edge-level corpora where edge 0
/// holds `major_frac` of its data in classes `[0, classes/2)` and edge 1
/// the opposite. Returns per-class sample counts for each edge, to feed a
/// [`crate::synthetic::SyntheticSource`].
pub fn edge_skew_counts(classes: usize, per_edge: usize, major_frac: f32) -> [Vec<usize>; 2] {
    assert!(classes >= 2, "need at least two classes");
    assert!((0.0..=1.0).contains(&major_frac), "major_frac in [0, 1]");
    let half = classes / 2;
    let major_total = (per_edge as f32 * major_frac).round() as usize;
    let minor_total = per_edge - major_total;
    let mut edge0 = vec![0usize; classes];
    let mut edge1 = vec![0usize; classes];
    for c in 0..classes {
        if c < half {
            edge0[c] = spread(major_total, half, c);
            edge1[c] = spread(minor_total, half, c);
        } else {
            edge0[c] = spread(minor_total, classes - half, c - half);
            edge1[c] = spread(major_total, classes - half, c - half);
        }
    }
    [edge0, edge1]
}

/// Evenly spreads `total` across `parts`, giving remainders to the first
/// slots.
fn spread(total: usize, parts: usize, slot: usize) -> usize {
    total / parts + usize::from(slot < total % parts)
}

/// Fisher–Yates shuffle of a partition's device order (keeps
/// device→samples mapping, permutes device identity).
pub fn shuffle_devices(p: &mut Partition, seed: u64) {
    let n = p.assignments.len();
    let perm = permutation(n, &mut rng(derive_seed(seed, 0x51F7)));
    let mut new_assign = Vec::with_capacity(n);
    let mut new_major = Vec::with_capacity(n);
    for &i in &perm {
        new_assign.push(std::mem::take(&mut p.assignments[i]));
        new_major.push(p.major_class[i]);
    }
    p.assignments = new_assign;
    p.major_class = new_major;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{SyntheticSource, Task};

    fn base() -> Dataset {
        SyntheticSource::new(Task::Mnist, 1).generate_balanced(500, 1)
    }

    #[test]
    fn iid_partition_covers_all_devices() {
        let b = base();
        let p = partition(&b, 10, 20, Scheme::Iid, 1);
        assert_eq!(p.devices(), 10);
        assert!(p.assignments.iter().all(|a| a.len() == 20));
        assert_eq!(p.total(), 200);
    }

    #[test]
    fn major_class_dominates() {
        let b = base();
        let p = partition(&b, 10, 50, Scheme::MajorClass { major_frac: 0.8 }, 2);
        for m in 0..10 {
            let counts = p.device_class_counts(m, &b);
            let major = p.major_class[m].unwrap();
            assert_eq!(major, m % 10);
            assert!(
                counts[major] >= 40,
                "device {m} major count {}",
                counts[major]
            );
        }
    }

    #[test]
    fn single_class_is_pure() {
        let b = base();
        let p = partition(&b, 20, 10, Scheme::SingleClass, 3);
        for m in 0..20 {
            let counts = p.device_class_counts(m, &b);
            assert_eq!(counts[m % 10], 10);
            assert_eq!(counts.iter().sum::<usize>(), 10);
        }
    }

    #[test]
    fn dirichlet_small_alpha_is_skewed() {
        let b = base();
        let p = partition(&b, 10, 100, Scheme::Dirichlet { alpha: 0.1 }, 4);
        // With α=0.1 most devices should concentrate >50% in one class.
        let mut concentrated = 0;
        for m in 0..10 {
            let counts = p.device_class_counts(m, &b);
            if *counts.iter().max().unwrap() > 50 {
                concentrated += 1;
            }
        }
        assert!(concentrated >= 7, "only {concentrated}/10 concentrated");
    }

    #[test]
    fn dirichlet_large_alpha_is_flat() {
        let b = base();
        let p = partition(&b, 5, 200, Scheme::Dirichlet { alpha: 100.0 }, 5);
        for m in 0..5 {
            let counts = p.device_class_counts(m, &b);
            assert!(
                *counts.iter().max().unwrap() < 60,
                "α=100 should be near-uniform: {counts:?}"
            );
        }
    }

    #[test]
    fn partitions_are_deterministic() {
        let b = base();
        let p1 = partition(&b, 5, 10, Scheme::MajorClass { major_frac: 0.8 }, 7);
        let p2 = partition(&b, 5, 10, Scheme::MajorClass { major_frac: 0.8 }, 7);
        assert_eq!(p1.assignments, p2.assignments);
    }

    #[test]
    fn edge_skew_realises_70_30() {
        let [e0, e1] = edge_skew_counts(10, 100, 0.7);
        assert_eq!(e0.iter().sum::<usize>(), 100);
        assert_eq!(e1.iter().sum::<usize>(), 100);
        let e0_major: usize = e0[..5].iter().sum();
        let e1_major: usize = e1[5..].iter().sum();
        assert_eq!(e0_major, 70);
        assert_eq!(e1_major, 70);
    }

    #[test]
    fn edge_skew_is_mirrored() {
        let [e0, e1] = edge_skew_counts(10, 200, 0.7);
        let flipped: Vec<usize> = e1[5..].iter().chain(&e1[..5]).copied().collect();
        assert_eq!(e0, flipped);
    }

    #[test]
    fn shuffle_preserves_multiset() {
        let b = base();
        let mut p = partition(&b, 8, 10, Scheme::SingleClass, 9);
        let mut before: Vec<Vec<usize>> = p.assignments.clone();
        shuffle_devices(&mut p, 42);
        let mut after = p.assignments.clone();
        before.sort();
        after.sort();
        assert_eq!(before, after);
    }

    #[test]
    fn spread_sums_to_total() {
        for total in [0usize, 7, 100] {
            for parts in [1usize, 3, 5] {
                let s: usize = (0..parts).map(|i| spread(total, parts, i)).sum();
                assert_eq!(s, total);
            }
        }
    }
}
