//! In-memory labelled datasets.

use middle_tensor::{Shape, Tensor};

/// An in-memory classification dataset: one NCHW input tensor plus one
/// class label per sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    inputs: Tensor,
    labels: Vec<usize>,
    classes: usize,
}

impl Dataset {
    /// Creates a dataset.
    ///
    /// # Panics
    /// Panics when the batch dimension of `inputs` disagrees with
    /// `labels.len()` or any label is `>= classes`.
    pub fn new(inputs: Tensor, labels: Vec<usize>, classes: usize) -> Self {
        assert!(inputs.shape().rank() >= 1, "inputs need a batch dimension");
        assert_eq!(
            inputs.shape().dim(0),
            labels.len(),
            "inputs/labels length mismatch"
        );
        assert!(
            labels.iter().all(|&l| l < classes),
            "label out of range for {classes} classes"
        );
        Dataset {
            inputs,
            labels,
            classes,
        }
    }

    /// An empty dataset with the given per-sample shape.
    pub fn empty(sample_shape: &[usize], classes: usize) -> Self {
        let mut dims = vec![0usize];
        dims.extend_from_slice(sample_shape);
        Dataset {
            inputs: Tensor::zeros(dims),
            labels: Vec::new(),
            classes,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// The full input tensor (`[N, ...]`).
    pub fn inputs(&self) -> &Tensor {
        &self.inputs
    }

    /// All labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// The per-sample shape (input shape without the batch dimension).
    pub fn sample_shape(&self) -> Vec<usize> {
        self.inputs.shape().dims()[1..].to_vec()
    }

    /// Scalars per sample.
    pub fn sample_len(&self) -> usize {
        self.sample_shape().iter().product()
    }

    /// A new dataset containing the samples at `indices`, in order
    /// (indices may repeat).
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let slen = self.sample_len();
        let mut data = Vec::with_capacity(indices.len() * slen);
        let mut labels = Vec::with_capacity(indices.len());
        let src = self.inputs.data();
        for &i in indices {
            assert!(i < self.len(), "subset index {i} out of bounds");
            data.extend_from_slice(&src[i * slen..(i + 1) * slen]);
            labels.push(self.labels[i]);
        }
        let mut dims = vec![indices.len()];
        dims.extend_from_slice(&self.sample_shape());
        Dataset {
            inputs: Tensor::from_vec(Shape::new(dims), data),
            labels,
            classes: self.classes,
        }
    }

    /// The batch `[indices]` as `(inputs, labels)` ready for training.
    pub fn gather(&self, indices: &[usize]) -> (Tensor, Vec<usize>) {
        let s = self.subset(indices);
        (s.inputs, s.labels)
    }

    /// [`gather`](Self::gather) into caller-provided buffers: `x` is
    /// resized to `[indices.len(), ...sample_shape]` and fully
    /// overwritten, `y` is cleared and refilled. Steady-state callers
    /// allocate nothing.
    pub fn gather_into(&self, indices: &[usize], x: &mut Tensor, y: &mut Vec<usize>) {
        let slen = self.sample_len();
        let mut dims = vec![indices.len()];
        dims.extend_from_slice(&self.sample_shape());
        x.resize(dims);
        let src = self.inputs.data();
        let dst = x.data_mut();
        y.clear();
        for (j, &i) in indices.iter().enumerate() {
            assert!(i < self.len(), "gather index {i} out of bounds");
            dst[j * slen..(j + 1) * slen].copy_from_slice(&src[i * slen..(i + 1) * slen]);
            y.push(self.labels[i]);
        }
    }

    /// Number of samples per class.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.classes];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }

    /// Sample indices belonging to each class.
    pub fn indices_by_class(&self) -> Vec<Vec<usize>> {
        let mut by = vec![Vec::new(); self.classes];
        for (i, &l) in self.labels.iter().enumerate() {
            by[l].push(i);
        }
        by
    }

    /// Concatenates two datasets over the batch dimension.
    ///
    /// # Panics
    /// Panics when sample shapes or class counts differ.
    pub fn concat(&self, other: &Dataset) -> Dataset {
        assert_eq!(self.classes, other.classes, "class count mismatch");
        assert_eq!(
            self.sample_shape(),
            other.sample_shape(),
            "sample shape mismatch"
        );
        let mut data = self.inputs.data().to_vec();
        data.extend_from_slice(other.inputs.data());
        let mut labels = self.labels.clone();
        labels.extend_from_slice(&other.labels);
        let mut dims = vec![self.len() + other.len()];
        dims.extend_from_slice(&self.sample_shape());
        Dataset {
            inputs: Tensor::from_vec(Shape::new(dims), data),
            labels,
            classes: self.classes,
        }
    }

    /// Splits into `(first_n, rest)` by sample position.
    pub fn split_at(&self, n: usize) -> (Dataset, Dataset) {
        assert!(n <= self.len(), "split point beyond dataset");
        let head: Vec<usize> = (0..n).collect();
        let tail: Vec<usize> = (n..self.len()).collect();
        (self.subset(&head), self.subset(&tail))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ds() -> Dataset {
        // 4 samples of shape [1, 2, 2], labels 0..3 over 4 classes.
        let inputs = Tensor::from_vec([4, 1, 2, 2], (0..16).map(|i| i as f32).collect());
        Dataset::new(inputs, vec![0, 1, 2, 3], 4)
    }

    #[test]
    fn basic_accessors() {
        let d = ds();
        assert_eq!(d.len(), 4);
        assert_eq!(d.classes(), 4);
        assert_eq!(d.sample_shape(), vec![1, 2, 2]);
        assert_eq!(d.sample_len(), 4);
    }

    #[test]
    fn subset_selects_and_reorders() {
        let d = ds();
        let s = d.subset(&[2, 0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.labels(), &[2, 0]);
        assert_eq!(&s.inputs().data()[..4], &[8., 9., 10., 11.]);
    }

    #[test]
    fn subset_allows_repeats() {
        let d = ds();
        let s = d.subset(&[1, 1, 1]);
        assert_eq!(s.labels(), &[1, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn subset_rejects_bad_index() {
        ds().subset(&[9]);
    }

    #[test]
    fn class_counts_and_indices() {
        let inputs = Tensor::zeros([5, 1]);
        let d = Dataset::new(inputs, vec![0, 1, 1, 2, 1], 3);
        assert_eq!(d.class_counts(), vec![1, 3, 1]);
        assert_eq!(d.indices_by_class()[1], vec![1, 2, 4]);
    }

    #[test]
    fn concat_appends() {
        let d = ds();
        let c = d.concat(&d);
        assert_eq!(c.len(), 8);
        assert_eq!(c.labels()[4..], d.labels()[..]);
    }

    #[test]
    fn split_at_partitions() {
        let d = ds();
        let (a, b) = d.split_at(1);
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 3);
        assert_eq!(b.labels(), &[1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn out_of_range_label_panics() {
        Dataset::new(Tensor::zeros([1, 1]), vec![5], 3);
    }

    #[test]
    fn empty_dataset() {
        let d = Dataset::empty(&[1, 4, 4], 10);
        assert!(d.is_empty());
        assert_eq!(d.sample_shape(), vec![1, 4, 4]);
    }
}
