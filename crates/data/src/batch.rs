//! Mini-batch sampling over a [`Dataset`].

use crate::dataset::Dataset;
use middle_tensor::random::permutation;
use middle_tensor::Tensor;
use rand::rngs::StdRng;
use rand::Rng;

/// Epoch-style batch iterator: shuffles once, then yields contiguous
/// batches (final partial batch included).
pub struct BatchIter<'a> {
    dataset: &'a Dataset,
    order: Vec<usize>,
    cursor: usize,
    batch: usize,
}

impl<'a> BatchIter<'a> {
    /// Creates a shuffled batch iterator.
    ///
    /// # Panics
    /// Panics when `batch == 0`.
    pub fn new(dataset: &'a Dataset, batch: usize, rng: &mut StdRng) -> Self {
        assert!(batch > 0, "batch size must be positive");
        BatchIter {
            dataset,
            order: permutation(dataset.len(), rng),
            cursor: 0,
            batch,
        }
    }

    /// Number of batches this iterator will yield.
    pub fn num_batches(&self) -> usize {
        self.dataset.len().div_ceil(self.batch)
    }
}

impl Iterator for BatchIter<'_> {
    type Item = (Tensor, Vec<usize>);

    fn next(&mut self) -> Option<Self::Item> {
        if self.cursor >= self.order.len() {
            return None;
        }
        let end = (self.cursor + self.batch).min(self.order.len());
        let idxs = &self.order[self.cursor..end];
        self.cursor = end;
        Some(self.dataset.gather(idxs))
    }
}

/// Draws one uniform random batch (with replacement) — the `ξ_m^t`
/// stochastic mini-batch of the paper's local update (Eq. 1).
pub fn random_batch(dataset: &Dataset, batch: usize, rng: &mut StdRng) -> (Tensor, Vec<usize>) {
    assert!(!dataset.is_empty(), "cannot sample from an empty dataset");
    assert!(batch > 0, "batch size must be positive");
    let idxs: Vec<usize> = (0..batch)
        .map(|_| rng.gen_range(0..dataset.len()))
        .collect();
    dataset.gather(&idxs)
}

/// [`random_batch`] into caller-provided buffers: draws exactly the same
/// index sequence from `rng` (bitwise-identical batches for a given rng
/// state), gathering into `x`/`y` via [`Dataset::gather_into`]. `idxs` is
/// the reused index buffer.
pub fn random_batch_into(
    dataset: &Dataset,
    batch: usize,
    rng: &mut StdRng,
    idxs: &mut Vec<usize>,
    x: &mut Tensor,
    y: &mut Vec<usize>,
) {
    assert!(!dataset.is_empty(), "cannot sample from an empty dataset");
    assert!(batch > 0, "batch size must be positive");
    idxs.clear();
    idxs.extend((0..batch).map(|_| rng.gen_range(0..dataset.len())));
    dataset.gather_into(idxs, x, y);
}

#[cfg(test)]
mod tests {
    use super::*;
    use middle_tensor::random::rng;

    fn ds(n: usize) -> Dataset {
        Dataset::new(
            Tensor::from_vec([n, 1], (0..n).map(|i| i as f32).collect()),
            (0..n).map(|i| i % 3).collect(),
            3,
        )
    }

    #[test]
    fn epoch_covers_every_sample_once() {
        let d = ds(10);
        let mut seen = [0usize; 10];
        for (inputs, _) in BatchIter::new(&d, 3, &mut rng(1)) {
            for &v in inputs.data() {
                seen[v as usize] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn num_batches_includes_partial() {
        let d = ds(10);
        let it = BatchIter::new(&d, 4, &mut rng(2));
        assert_eq!(it.num_batches(), 3);
        assert_eq!(it.count(), 3);
    }

    #[test]
    fn batches_match_batch_size() {
        let d = ds(9);
        let sizes: Vec<usize> = BatchIter::new(&d, 4, &mut rng(3))
            .map(|(_, l)| l.len())
            .collect();
        assert_eq!(sizes, vec![4, 4, 1]);
    }

    #[test]
    fn random_batch_is_seed_deterministic() {
        let d = ds(20);
        let (a, la) = random_batch(&d, 5, &mut rng(7));
        let (b, lb) = random_batch(&d, 5, &mut rng(7));
        assert_eq!(a, b);
        assert_eq!(la, lb);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn random_batch_of_empty_panics() {
        let d = Dataset::empty(&[1], 2);
        random_batch(&d, 1, &mut rng(1));
    }

    #[test]
    fn random_batch_into_matches_allocating_path() {
        let d = ds(20);
        let mut idxs = Vec::new();
        let mut x = Tensor::zeros([0]);
        let mut y = Vec::new();
        // Same rng seed must produce identical draws on both paths, and
        // reusing dirty buffers (second draw) must not leak stale data.
        let mut ra = rng(7);
        let mut rb = rng(7);
        for batch in [5, 3, 8] {
            let (ax, ay) = random_batch(&d, batch, &mut ra);
            random_batch_into(&d, batch, &mut rb, &mut idxs, &mut x, &mut y);
            assert_eq!(ax, x);
            assert_eq!(ay, y);
        }
    }
}
