//! Property-based tests for datasets, partitioners and metrics.

use middle_data::batch::BatchIter;
use middle_data::metrics::Confusion;
use middle_data::partition::{edge_skew_counts, partition, Scheme};
use middle_data::synthetic::{SyntheticSource, Task};
use middle_tensor::random::rng;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any partition assigns exactly `devices × per_device` sample slots,
    /// all indices in range.
    #[test]
    fn partitions_have_exact_shape(
        devices in 1usize..20,
        per_device in 1usize..30,
        scheme_pick in 0usize..4,
        seed in 0u64..500,
    ) {
        let base = SyntheticSource::new(Task::Mnist, 1).generate_balanced(300, 1);
        let scheme = match scheme_pick {
            0 => Scheme::Iid,
            1 => Scheme::MajorClass { major_frac: 0.8 },
            2 => Scheme::SingleClass,
            _ => Scheme::Dirichlet { alpha: 0.5 },
        };
        let p = partition(&base, devices, per_device, scheme, seed);
        prop_assert_eq!(p.devices(), devices);
        prop_assert_eq!(p.total(), devices * per_device);
        for a in &p.assignments {
            prop_assert!(a.iter().all(|&i| i < base.len()));
        }
    }

    /// Major-class partitions put at least `major_frac` of each device's
    /// samples in its major class (up to rounding).
    #[test]
    fn major_class_fraction_holds(
        per_device in 5usize..40,
        frac in 0.5f32..1.0,
        seed in 0u64..200,
    ) {
        let base = SyntheticSource::new(Task::Mnist, 2).generate_balanced(400, 1);
        let p = partition(&base, 10, per_device, Scheme::MajorClass { major_frac: frac }, seed);
        for m in 0..10 {
            let counts = p.device_class_counts(m, &base);
            let major = p.major_class[m].unwrap();
            let expect = (per_device as f32 * frac).round() as usize;
            prop_assert!(counts[major] >= expect, "{} < {}", counts[major], expect);
        }
    }

    /// Edge-skew counts always sum to the requested size on both edges
    /// and realise the major fraction within rounding.
    #[test]
    fn edge_skew_sums(classes in 2usize..30, per_edge in 2usize..500, frac in 0.0f32..=1.0) {
        let [e0, e1] = edge_skew_counts(classes, per_edge, frac);
        prop_assert_eq!(e0.iter().sum::<usize>(), per_edge);
        prop_assert_eq!(e1.iter().sum::<usize>(), per_edge);
        let half = classes / 2;
        let major0: usize = e0[..half].iter().sum();
        let want = (per_edge as f32 * frac).round() as usize;
        prop_assert_eq!(major0, want);
    }

    /// Generated datasets have the right shape signature and labels.
    #[test]
    fn generated_datasets_are_well_formed(
        task_pick in 0usize..4,
        n in 1usize..100,
        seed in 0u64..200,
    ) {
        let task = Task::ALL[task_pick];
        let d = SyntheticSource::new(task, seed).generate_balanced(n, 3);
        let spec = task.spec();
        prop_assert_eq!(d.len(), n);
        prop_assert_eq!(d.classes(), spec.classes);
        prop_assert_eq!(d.sample_shape(), vec![spec.channels, spec.height, spec.width]);
        prop_assert!(d.labels().iter().all(|&l| l < spec.classes));
        prop_assert!(d.inputs().all_finite());
    }

    /// Batch iteration visits every sample exactly once per epoch.
    #[test]
    fn batch_iter_is_a_partition(n in 1usize..60, batch in 1usize..16, seed in 0u64..100) {
        let d = SyntheticSource::new(Task::Mnist, 4).generate_balanced(n, 1);
        let mut count = 0usize;
        for (x, y) in BatchIter::new(&d, batch, &mut rng(seed)) {
            prop_assert_eq!(x.shape().dim(0), y.len());
            count += y.len();
        }
        prop_assert_eq!(count, n);
    }

    /// Confusion accuracy equals plain accuracy for any prediction set.
    #[test]
    fn confusion_agrees_with_plain_accuracy(
        truth in prop::collection::vec(0usize..5, 1..60),
    ) {
        // Predictions: shift every other label to create controlled errors.
        let pred: Vec<usize> = truth.iter().enumerate()
            .map(|(i, &t)| if i % 3 == 0 { (t + 1) % 5 } else { t })
            .collect();
        let conf = Confusion::from_predictions(&truth, &pred, 5);
        let plain = middle_data::accuracy(&truth, &pred);
        prop_assert!((conf.accuracy() - plain).abs() < 1e-6);
        prop_assert_eq!(conf.total(), truth.len());
    }
}
