//! `middle-sweepd` — multi-process sweep orchestration.
//!
//! A fleet is one shared directory (the ledger + checkpoints + worker
//! JSONL streams) plus one grid-spec JSON file that every process
//! reads. Workers lease scenario shards from the ledger, heartbeat
//! while they run, and stream completed records; the coordinator tails
//! the streams, reclaims expired leases (a SIGKILL'd worker's
//! scenarios re-run from their last checkpoint elsewhere), and writes
//! the merged report. The merged report's deterministic form is
//! byte-identical to a single-process run of the same grid — the
//! `serial` subcommand exists so scripts can assert exactly that with
//! `cmp`. See DESIGN.md §14 for the protocol.
//!
//! ```text
//! middle-sweepd gen-grid --smoke --out grid.json
//! middle-sweepd serial      --grid grid.json --deterministic --out serial.json
//! middle-sweepd worker      --grid grid.json --dir fleet/ --id w0 &
//! middle-sweepd coordinator --grid grid.json --dir fleet/ --spawn 2 \
//!     --deterministic --out fleet.json
//! cmp serial.json fleet.json
//! ```

use middle_core::{
    fleet_status, run_fleet_coordinator, run_fleet_worker, run_sweep, Algorithm, FleetOptions,
    ScenarioGrid, SimConfig, StepMode, SweepOptions,
};
use middle_data::Task;
use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

const USAGE: &str = "\
middle-sweepd — multi-process sweep orchestration (see DESIGN.md §14)

USAGE:
  middle-sweepd gen-grid [--smoke | --tiny] [--out PATH]
      Write a built-in grid spec (default: the fleet-smoke grid) as
      JSON to PATH (default stdout). Grid specs are serialised
      ScenarioGrids; hand-authored specs work the same way.

  middle-sweepd serial --grid PATH [--out PATH] [--deterministic] [--threads N]
      Run the grid single-process through run_sweep (the bitwise
      oracle for fleet runs) and write the report.

  middle-sweepd worker --grid PATH --dir PATH --id ID
      [--shard-size N] [--lease-ms N] [--heartbeat-ms N] [--poll-ms N]
      [--checkpoint-every N] [--max-wall-ms N]
      Run one fleet worker against the shared directory.

  middle-sweepd coordinator --grid PATH --dir PATH [--out PATH]
      [--deterministic] [--spawn N] [--shard-size N] [--lease-ms N]
      [--poll-ms N] [--max-wall-ms N]
      Run the coordinator; --spawn N forks N child workers (ids w0..)
      with matching options. Writes the merged report on completion.

  middle-sweepd status --dir PATH
      Print ledger progress and the live lease table.

Every fleet member must use the same grid spec and the same
--shard-size; the ledger rejects mismatches.";

fn fail(message: &str) -> ExitCode {
    eprintln!("middle-sweepd: {message}\n\n{USAGE}");
    ExitCode::from(2)
}

/// The built-in fleet-smoke grid: long enough on one core that CI can
/// SIGKILL a worker mid-run, small enough to finish in seconds.
fn smoke_grid() -> ScenarioGrid {
    let mut cfg = SimConfig::tiny(Task::Speech, Algorithm::middle());
    cfg.num_edges = 3;
    cfg.num_devices = 120;
    cfg.samples_per_device = 100;
    cfg.test_samples = 100;
    cfg.local_steps = 2;
    cfg.batch_size = 8;
    cfg.steps = 64;
    cfg.eval_interval = 8;
    ScenarioGrid::new(cfg)
        .with_selection_sizes([4usize, 6])
        .with_sync_periods([2usize, 4])
        .with_seeds([7u64, 8, 9])
}

/// A seconds-long four-scenario grid for local experimentation.
fn tiny_grid() -> ScenarioGrid {
    let mut cfg = SimConfig::tiny(Task::Mnist, Algorithm::middle());
    cfg.steps = 6;
    cfg.eval_interval = 2;
    ScenarioGrid::new(cfg)
        .with_selection_sizes([2usize, 3])
        .with_seeds([7u64, 8])
}

/// One parsed `--flag value` vocabulary shared by the subcommands.
#[derive(Default)]
struct Args {
    grid: Option<PathBuf>,
    dir: Option<PathBuf>,
    out: Option<PathBuf>,
    id: Option<String>,
    deterministic: bool,
    smoke: bool,
    tiny: bool,
    threads: usize,
    spawn: usize,
    shard_size: Option<usize>,
    lease_ms: Option<u64>,
    heartbeat_ms: Option<u64>,
    poll_ms: Option<u64>,
    checkpoint_every: Option<usize>,
    max_wall_ms: Option<u64>,
}

fn parse_args(raw: &[String]) -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = raw.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--grid" => args.grid = Some(PathBuf::from(value("--grid")?)),
            "--dir" => args.dir = Some(PathBuf::from(value("--dir")?)),
            "--out" => args.out = Some(PathBuf::from(value("--out")?)),
            "--id" => args.id = Some(value("--id")?.clone()),
            "--deterministic" => args.deterministic = true,
            "--smoke" => args.smoke = true,
            "--tiny" => args.tiny = true,
            "--threads" => args.threads = parse_num(value("--threads")?, "--threads")?,
            "--spawn" => args.spawn = parse_num(value("--spawn")?, "--spawn")?,
            "--shard-size" => {
                args.shard_size = Some(parse_num(value("--shard-size")?, "--shard-size")?);
            }
            "--lease-ms" => args.lease_ms = Some(parse_num(value("--lease-ms")?, "--lease-ms")?),
            "--heartbeat-ms" => {
                args.heartbeat_ms = Some(parse_num(value("--heartbeat-ms")?, "--heartbeat-ms")?);
            }
            "--poll-ms" => args.poll_ms = Some(parse_num(value("--poll-ms")?, "--poll-ms")?),
            "--checkpoint-every" => {
                args.checkpoint_every = Some(parse_num(
                    value("--checkpoint-every")?,
                    "--checkpoint-every",
                )?);
            }
            "--max-wall-ms" => {
                args.max_wall_ms = Some(parse_num(value("--max-wall-ms")?, "--max-wall-ms")?);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn parse_num<T: std::str::FromStr>(text: &str, flag: &str) -> Result<T, String> {
    text.parse()
        .map_err(|_| format!("{flag} expects a number, got {text:?}"))
}

fn fleet_options(args: &Args) -> FleetOptions {
    let defaults = FleetOptions::default();
    FleetOptions {
        step_mode: StepMode::Fast,
        shard_size: args.shard_size.unwrap_or(defaults.shard_size),
        lease_ms: args.lease_ms.unwrap_or(defaults.lease_ms),
        heartbeat_ms: args.heartbeat_ms.unwrap_or(defaults.heartbeat_ms),
        poll_ms: args.poll_ms.unwrap_or(defaults.poll_ms),
        checkpoint_every: args.checkpoint_every.unwrap_or(8),
        max_wall_ms: args.max_wall_ms,
        kill_after_checkpoints: None,
    }
}

fn load_grid(args: &Args) -> Result<ScenarioGrid, String> {
    let path = args.grid.as_ref().ok_or("--grid is required")?;
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    serde_json::from_str(&text).map_err(|e| format!("parse {}: {e}", path.display()))
}

fn write_out(out: Option<&Path>, contents: &str) -> Result<(), String> {
    match out {
        Some(path) => {
            std::fs::write(path, contents).map_err(|e| format!("write {}: {e}", path.display()))
        }
        None => {
            println!("{contents}");
            Ok(())
        }
    }
}

fn report_json(report: &middle_core::SweepReport, deterministic: bool) -> String {
    if deterministic {
        report.deterministic_json()
    } else {
        report.to_json()
    }
}

fn cmd_gen_grid(args: &Args) -> Result<(), String> {
    let grid = if args.tiny { tiny_grid() } else { smoke_grid() };
    let json = serde_json::to_string(&grid).expect("grid serialisation cannot fail");
    let n = grid.scenarios().map_err(|e| e.to_string())?.len();
    write_out(args.out.as_deref(), &json)?;
    eprintln!("[gen-grid] {n} scenarios");
    Ok(())
}

fn cmd_serial(args: &Args) -> Result<(), String> {
    let grid = load_grid(args)?;
    let report = run_sweep(
        &grid,
        &SweepOptions {
            threads: args.threads.max(1),
            ..SweepOptions::default()
        },
    )
    .map_err(|e| e.to_string())?;
    eprintln!(
        "[serial] {} scenarios in {:.2}s",
        report.scenarios.len(),
        report.wall_seconds
    );
    write_out(
        args.out.as_deref(),
        &report_json(&report, args.deterministic),
    )
}

fn cmd_worker(args: &Args) -> Result<(), String> {
    let grid = load_grid(args)?;
    let dir = args.dir.as_ref().ok_or("--dir is required")?;
    let id = args.id.as_ref().ok_or("--id is required")?;
    let opts = fleet_options(args);
    let report = run_fleet_worker(&grid, dir, id, &opts).map_err(|e| e.to_string())?;
    eprintln!(
        "[worker {}] completed {} scenarios",
        report.worker_id, report.completed
    );
    Ok(())
}

fn cmd_coordinator(args: &Args) -> Result<(), String> {
    let grid = load_grid(args)?;
    let dir = args.dir.as_ref().ok_or("--dir is required")?;
    let opts = fleet_options(args);

    // Optionally fork child workers that inherit this invocation's
    // grid and fleet options.
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let grid_path = args.grid.as_ref().expect("checked by load_grid");
    let mut children = Vec::new();
    for i in 0..args.spawn {
        let mut cmd = Command::new(&exe);
        cmd.arg("worker")
            .arg("--grid")
            .arg(grid_path)
            .arg("--dir")
            .arg(dir)
            .arg("--id")
            .arg(format!("w{i}"))
            .arg("--shard-size")
            .arg(opts.shard_size.to_string())
            .arg("--lease-ms")
            .arg(opts.lease_ms.to_string())
            .arg("--heartbeat-ms")
            .arg(opts.heartbeat_ms.to_string())
            .arg("--poll-ms")
            .arg(opts.poll_ms.to_string())
            .arg("--checkpoint-every")
            .arg(opts.checkpoint_every.to_string());
        if let Some(ms) = opts.max_wall_ms {
            cmd.arg("--max-wall-ms").arg(ms.to_string());
        }
        let child = cmd.spawn().map_err(|e| format!("spawn worker w{i}: {e}"))?;
        children.push(child);
    }

    let result = run_fleet_coordinator(&grid, dir, &opts).map_err(|e| e.to_string());
    for mut child in children {
        let _ = child.wait();
    }
    let report = result?;
    eprintln!(
        "[coordinator] {} scenarios complete, {} worker streams, {:.2}s",
        report.scenarios.len(),
        report.threads,
        report.wall_seconds
    );
    write_out(
        args.out.as_deref(),
        &report_json(&report, args.deterministic),
    )
}

fn cmd_status(args: &Args) -> Result<(), String> {
    let dir = args.dir.as_ref().ok_or("--dir is required")?;
    match fleet_status(dir).map_err(|e| e.to_string())? {
        None => println!("no ledger in {}", dir.display()),
        Some(status) => {
            println!(
                "{}/{} scenarios complete, shard size {}, {} lease(s)",
                status.completed,
                status.total,
                status.shard_size,
                status.leases.len()
            );
            for lease in &status.leases {
                println!(
                    "  shard {} leased by {} (heartbeat {} ms ago)",
                    lease.shard,
                    lease.worker,
                    now_ms().saturating_sub(lease.heartbeat_unix_ms)
                );
            }
        }
    }
    Ok(())
}

fn now_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = raw.split_first() else {
        return fail("missing subcommand");
    };
    if matches!(cmd.as_str(), "-h" | "--help" | "help") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let args = match parse_args(rest) {
        Ok(args) => args,
        Err(message) => return fail(&message),
    };
    let result = match cmd.as_str() {
        "gen-grid" => cmd_gen_grid(&args),
        "serial" => cmd_serial(&args),
        "worker" => cmd_worker(&args),
        "coordinator" => cmd_coordinator(&args),
        "status" => cmd_status(&args),
        other => return fail(&format!("unknown subcommand {other}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("middle-sweepd: {message}");
            ExitCode::FAILURE
        }
    }
}
