//! The dense `f32` tensor type.

use crate::shape::Shape;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense, contiguous, row-major `f32` tensor.
///
/// This is the single storage type used throughout the MIDDLE reproduction:
/// model parameters, gradients, activations, and dataset samples are all
/// `Tensor`s. It is deliberately simple — owned `Vec<f32>` storage, no
/// views or reference counting — because federated aggregation repeatedly
/// blends and clones whole parameter sets, and a flat owned buffer makes
/// those operations cache-friendly `memcpy`-class loops.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor from a shape and backing data.
    ///
    /// # Panics
    /// Panics when `data.len() != shape.len()`.
    pub fn from_vec(shape: impl Into<Shape>, data: Vec<f32>) -> Self {
        let shape = shape.into();
        assert_eq!(
            data.len(),
            shape.len(),
            "data length {} does not match shape {} ({} elements)",
            data.len(),
            shape,
            shape.len()
        );
        Tensor { shape, data }
    }

    /// A tensor of zeros.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let n = shape.len();
        Tensor {
            shape,
            data: vec![0.0; n],
        }
    }

    /// A tensor of ones.
    pub fn ones(shape: impl Into<Shape>) -> Self {
        Self::full(shape, 1.0)
    }

    /// A tensor filled with `value`.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        let n = shape.len();
        Tensor {
            shape,
            data: vec![value; n],
        }
    }

    /// A rank-0 scalar tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            shape: Shape::scalar(),
            data: vec![value],
        }
    }

    /// The tensor's shape.
    #[inline]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only view of the backing buffer in row-major order.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing buffer in row-major order.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning the backing buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-dimensional index.
    #[inline]
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Sets the element at a multi-dimensional index.
    #[inline]
    pub fn set(&mut self, index: &[usize], value: f32) {
        let off = self.shape.offset(index);
        self.data[off] = value;
    }

    /// The single value of a scalar or one-element tensor.
    ///
    /// # Panics
    /// Panics when the tensor holds more than one element.
    pub fn item(&self) -> f32 {
        assert_eq!(self.len(), 1, "item() requires a one-element tensor");
        self.data[0]
    }

    /// Reinterprets the buffer under a new shape with the same element count.
    ///
    /// # Panics
    /// Panics when the element counts differ.
    pub fn reshape(mut self, shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        assert_eq!(
            self.len(),
            shape.len(),
            "cannot reshape {} elements into {}",
            self.len(),
            shape
        );
        self.shape = shape;
        self
    }

    /// Returns a reshaped clone without consuming `self`.
    pub fn reshaped(&self, shape: impl Into<Shape>) -> Self {
        self.clone().reshape(shape)
    }

    /// Re-shapes in place, growing or shrinking the backing buffer while
    /// keeping its capacity (the scratch-reuse primitive of the zero-alloc
    /// train path).
    ///
    /// Element values are unspecified after a resize — surviving elements
    /// keep their old values and grown elements are zero — so callers must
    /// fully overwrite the tensor before reading it.
    pub fn resize(&mut self, shape: impl Into<Shape>) {
        let shape = shape.into();
        self.data.resize(shape.len(), 0.0);
        self.shape = shape;
    }

    /// Row `i` of a rank-2 tensor as a slice.
    ///
    /// # Panics
    /// Panics when the tensor is not rank 2 or `i` is out of bounds.
    pub fn row(&self, i: usize) -> &[f32] {
        assert_eq!(self.shape.rank(), 2, "row() requires a matrix");
        let cols = self.shape.dim(1);
        &self.data[i * cols..(i + 1) * cols]
    }

    /// Mutable row `i` of a rank-2 tensor.
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        assert_eq!(self.shape.rank(), 2, "row_mut() requires a matrix");
        let cols = self.shape.dim(1);
        &mut self.data[i * cols..(i + 1) * cols]
    }

    /// Transposes a rank-2 tensor.
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.shape.rank(), 2, "transpose() requires a matrix");
        let (r, c) = (self.shape.dim(0), self.shape.dim(1));
        let mut out = vec![0.0f32; r * c];
        // Blocked transpose keeps both source and destination lines warm.
        const B: usize = 32;
        for i0 in (0..r).step_by(B) {
            for j0 in (0..c).step_by(B) {
                for i in i0..(i0 + B).min(r) {
                    for j in j0..(j0 + B).min(c) {
                        out[j * r + i] = self.data[i * c + j];
                    }
                }
            }
        }
        Tensor::from_vec([c, r], out)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0.0 for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Euclidean (L2) norm of the flattened tensor.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Index of the maximum element of a rank-1 tensor (ties: first wins).
    pub fn argmax(&self) -> usize {
        assert!(!self.data.is_empty(), "argmax of empty tensor");
        let mut best = 0usize;
        let mut best_v = self.data[0];
        for (i, &v) in self.data.iter().enumerate().skip(1) {
            if v > best_v {
                best = i;
                best_v = v;
            }
        }
        best
    }

    /// True when every element is finite (no NaN/inf).
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Returns a new tensor with `f` applied to every element.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.len() <= 8 {
            write!(f, "Tensor({}, {:?})", self.shape, self.data)
        } else {
            write!(
                f,
                "Tensor({}, [{:.4}, {:.4}, ... {:.4}])",
                self.shape,
                self.data[0],
                self.data[1],
                self.data[self.len() - 1]
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(t.at(&[0, 2]), 3.0);
        assert_eq!(t.at(&[1, 0]), 4.0);
        assert_eq!(t.row(1), &[4., 5., 6.]);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn mismatched_data_panics() {
        Tensor::from_vec([2, 2], vec![1.0; 3]);
    }

    #[test]
    fn zeros_ones_full() {
        assert_eq!(Tensor::zeros([3]).data(), &[0., 0., 0.]);
        assert_eq!(Tensor::ones([2]).data(), &[1., 1.]);
        assert_eq!(Tensor::full([2], 7.5).data(), &[7.5, 7.5]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]).reshape([3, 2]);
        assert_eq!(t.shape().dims(), &[3, 2]);
        assert_eq!(t.at(&[2, 1]), 6.0);
    }

    #[test]
    #[should_panic(expected = "cannot reshape")]
    fn bad_reshape_panics() {
        Tensor::zeros([4]).reshape([3]);
    }

    #[test]
    fn transpose_square_and_rect() {
        let t = Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let tt = t.transpose();
        assert_eq!(tt.shape().dims(), &[3, 2]);
        assert_eq!(tt.at(&[0, 1]), 4.0);
        assert_eq!(tt.at(&[2, 0]), 3.0);
        // Double transpose is identity.
        assert_eq!(tt.transpose(), t);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec([4], vec![1., -2., 3., -4.]);
        assert_eq!(t.sum(), -2.0);
        assert_eq!(t.mean(), -0.5);
        assert!((t.norm() - 30.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn argmax_first_tie_wins() {
        let t = Tensor::from_vec([5], vec![1., 5., 5., 2., 0.]);
        assert_eq!(t.argmax(), 1);
    }

    #[test]
    fn scalar_item() {
        assert_eq!(Tensor::scalar(3.25).item(), 3.25);
    }

    #[test]
    fn finite_check_catches_nan() {
        let mut t = Tensor::ones([3]);
        assert!(t.all_finite());
        t.data_mut()[1] = f32::NAN;
        assert!(!t.all_finite());
    }

    #[test]
    fn map_applies_elementwise() {
        let t = Tensor::from_vec([3], vec![1., 2., 3.]).map(|x| x * 2.0);
        assert_eq!(t.data(), &[2., 4., 6.]);
    }
}
