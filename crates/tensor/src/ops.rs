//! Elementwise and broadcast arithmetic on tensors.
//!
//! Binary operations require either identical shapes or the restricted
//! suffix broadcast described in [`crate::shape::Shape::broadcasts_from`]
//! (the only broadcast the NN stack needs: a `[C]` bias over `[N, C]`
//! activations).

use crate::tensor::Tensor;

macro_rules! elementwise_binop {
    ($name:ident, $name_inplace:ident, $assign:tt, $doc:literal) => {
        #[doc = $doc]
        ///
        /// # Panics
        /// Panics when the shapes are neither equal nor suffix-broadcastable.
        pub fn $name(a: &Tensor, b: &Tensor) -> Tensor {
            let mut out = a.clone();
            $name_inplace(&mut out, b);
            out
        }

        #[doc = $doc]
        #[doc = " In place on `a`."]
        pub fn $name_inplace(a: &mut Tensor, b: &Tensor) {
            if a.shape() == b.shape() {
                for (x, y) in a.data_mut().iter_mut().zip(b.data()) {
                    *x $assign *y;
                }
            } else {
                assert!(
                    a.shape().broadcasts_from(b.shape()),
                    "shape mismatch: {} vs {}",
                    a.shape(),
                    b.shape()
                );
                let n = b.len();
                for chunk in a.data_mut().chunks_mut(n) {
                    for (x, y) in chunk.iter_mut().zip(b.data()) {
                        *x $assign *y;
                    }
                }
            }
        }
    };
}

elementwise_binop!(add, add_inplace, +=, "Elementwise addition `a + b`.");
elementwise_binop!(sub, sub_inplace, -=, "Elementwise subtraction `a - b`.");
elementwise_binop!(mul, mul_inplace, *=, "Elementwise (Hadamard) product `a * b`.");
elementwise_binop!(div, div_inplace, /=, "Elementwise division `a / b`.");

/// Scales every element by `s`, returning a new tensor.
pub fn scale(a: &Tensor, s: f32) -> Tensor {
    a.map(|x| x * s)
}

/// Scales every element by `s` in place.
pub fn scale_inplace(a: &mut Tensor, s: f32) {
    for x in a.data_mut() {
        *x *= s;
    }
}

/// `a += s * b` (axpy), the workhorse of SGD updates and model blending.
///
/// # Panics
/// Panics when shapes differ.
pub fn axpy(a: &mut Tensor, s: f32, b: &Tensor) {
    assert_eq!(a.shape(), b.shape(), "axpy shape mismatch");
    for (x, y) in a.data_mut().iter_mut().zip(b.data()) {
        *x += s * *y;
    }
}

/// Convex blend `alpha * a + (1 - alpha) * b` — the on-device model
/// aggregation primitive (paper Eq. 9 with similarity-derived weights).
///
/// # Panics
/// Panics when shapes differ.
pub fn lerp(a: &Tensor, b: &Tensor, alpha: f32) -> Tensor {
    assert_eq!(a.shape(), b.shape(), "lerp shape mismatch");
    let data = a
        .data()
        .iter()
        .zip(b.data())
        .map(|(&x, &y)| alpha * x + (1.0 - alpha) * y)
        .collect();
    Tensor::from_vec(a.shape().clone(), data)
}

/// Inner product of two equal-shaped tensors, flattened.
///
/// # Panics
/// Panics when shapes differ.
pub fn dot(a: &Tensor, b: &Tensor) -> f32 {
    assert_eq!(a.shape(), b.shape(), "dot shape mismatch");
    dot_slices(a.data(), b.data())
}

/// Inner product of two equal-length slices.
#[inline(always)]
pub fn dot_slices(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    // Four accumulators let the compiler keep independent FMA chains in
    // flight; float addition is not associative so this changes rounding,
    // which is acceptable for ML workloads. `chunks_exact` (rather than
    // indexing with a computed offset) is what lets LLVM drop the bounds
    // checks and emit one packed multiply-add per chunk — the arithmetic
    // order per accumulator lane is exactly the indexed loop's.
    let mut acc = [0.0f32; 4];
    let chunks = a.len() / 4;
    for (av, bv) in a.chunks_exact(4).zip(b.chunks_exact(4)) {
        acc[0] += av[0] * bv[0];
        acc[1] += av[1] * bv[1];
        acc[2] += av[2] * bv[2];
        acc[3] += av[3] * bv[3];
    }
    let mut tail = 0.0f32;
    for j in chunks * 4..a.len() {
        tail += a[j] * b[j];
    }
    acc[0] + acc[1] + acc[2] + acc[3] + tail
}

/// The pre-overhaul [`dot_slices`] body, kept verbatim so the preserved
/// reference kernels (the bitwise oracles and the benchmark's "before"
/// side) keep the seed's performance as well as its arithmetic: computed-
/// offset indexing keeps this version scalar, which is exactly how the
/// original train path ran.
#[inline]
pub fn dot_slices_reference(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; 4];
    let chunks = a.len() / 4;
    for i in 0..chunks {
        let j = i * 4;
        acc[0] += a[j] * b[j];
        acc[1] += a[j + 1] * b[j + 1];
        acc[2] += a[j + 2] * b[j + 2];
        acc[3] += a[j + 3] * b[j + 3];
    }
    let mut tail = 0.0f32;
    for j in chunks * 4..a.len() {
        tail += a[j] * b[j];
    }
    acc[0] + acc[1] + acc[2] + acc[3] + tail
}

/// `T` inner products sharing the left operand, each bitwise-identical
/// to a separate [`dot_slices`] call.
///
/// A single `dot_slices` is latency-bound: its four accumulator chains
/// serialise on float-add latency for short vectors. Interleaving `T`
/// independent dots (4·T chains in flight) makes the reduction
/// throughput-bound while leaving every per-output accumulation order
/// untouched — the pattern behind the batched conv weight-gradient and
/// the dense-layer GEMT kernels.
#[inline(always)]
pub fn dot_slices_many<const T: usize>(a: &[f32], rows: [&[f32]; T]) -> [f32; T] {
    let len = a.len();
    // Pre-chunking every row (instead of slicing `[j..j + 4]` inside the
    // loop) removes the per-iteration bounds checks that otherwise keep
    // the body scalar; each accumulator quad then compiles to one packed
    // multiply-add with the indexed loop's exact arithmetic order.
    let (ac, atail) = a.as_chunks::<4>();
    let rc: [&[[f32; 4]]; T] = std::array::from_fn(|t| rows[t][..len].as_chunks::<4>().0);
    let mut acc = [[0.0f32; 4]; T];
    for (i, av) in ac.iter().enumerate() {
        for t in 0..T {
            let rv = &rc[t][i];
            acc[t][0] += av[0] * rv[0];
            acc[t][1] += av[1] * rv[1];
            acc[t][2] += av[2] * rv[2];
            acc[t][3] += av[3] * rv[3];
        }
    }
    let mut out = [0.0f32; T];
    for t in 0..T {
        let mut tail = 0.0f32;
        for (j, &av) in atail.iter().enumerate() {
            tail += av * rows[t][ac.len() * 4 + j];
        }
        out[t] = acc[t][0] + acc[t][1] + acc[t][2] + acc[t][3] + tail;
    }
    out
}

/// True when [`dot_slices_8_transposed`] runs its vector implementation
/// on this host. Callers use this to decide whether transposing a reused
/// 8-row tile up front pays off; on other hosts the untransposed
/// [`dot_slices_many`] tile is the better layout.
#[inline]
pub fn dots8_transposed_fast() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Eight inner products against a pre-transposed right-hand tile:
/// `rt[j * 8 + t]` holds element `j` of row `t`. Requires
/// `a.len() % 4 == 0` and `rt.len() == a.len() * 8`.
///
/// Bitwise-identical to eight [`dot_slices`] calls by construction:
/// output `t`'s lane `l = j % 4` receives the products `a[j] * rt[j*8+t]`
/// in ascending `j` — the same values in the same order as `dot_slices`'
/// four-lane split — and the final reduce is the same
/// `((acc0 + acc1) + acc2) + acc3 + 0.0` chain (the `+ 0.0` is the empty
/// tail, kept because it rewrites a `-0.0` sum to `+0.0` exactly like the
/// scalar kernel). Unlike the four-lane kernels, whose fixed serial lanes
/// cap them at 128-bit vectors, the eight *outputs* here are independent,
/// so the vector implementation runs one 8-wide lane per accumulator row.
pub fn dot_slices_8_transposed(a: &[f32], rt: &[f32]) -> [f32; 8] {
    assert_eq!(a.len() % 4, 0, "transposed-tile dots need len % 4 == 0");
    assert_eq!(rt.len(), a.len() * 8, "transposed tile size");
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: probe above; slice bounds asserted above.
        return unsafe { dots8_transposed_avx2(a, rt) };
    }
    let mut acc = [[0.0f32; 4]; 8];
    for (i, av) in a.chunks_exact(4).enumerate() {
        for l in 0..4 {
            let j = i * 4 + l;
            let rrow = &rt[j * 8..(j + 1) * 8];
            for t in 0..8 {
                acc[t][l] += av[l] * rrow[t];
            }
        }
    }
    std::array::from_fn(|t| acc[t][0] + acc[t][1] + acc[t][2] + acc[t][3] + 0.0)
}

/// Vector body of [`dot_slices_8_transposed`]: four 8-wide accumulator
/// rows (one per `j % 4` lane), each vector lane a distinct output.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dots8_transposed_avx2(a: &[f32], rt: &[f32]) -> [f32; 8] {
    use std::arch::x86_64::*;
    let mut acc = [_mm256_setzero_ps(); 4];
    for (i, av) in a.chunks_exact(4).enumerate() {
        for (l, accl) in acc.iter_mut().enumerate() {
            let j = i * 4 + l;
            let avv = _mm256_set1_ps(av[l]);
            let rv = _mm256_loadu_ps(rt.as_ptr().add(j * 8));
            *accl = _mm256_add_ps(*accl, _mm256_mul_ps(avv, rv));
        }
    }
    let s = _mm256_add_ps(_mm256_add_ps(_mm256_add_ps(acc[0], acc[1]), acc[2]), acc[3]);
    // The scalar kernel's `+ tail` with an empty tail: adds +0.0, which
    // canonicalises a -0.0 sum to +0.0.
    let s = _mm256_add_ps(s, _mm256_setzero_ps());
    let mut out = [0.0f32; 8];
    _mm256_storeu_ps(out.as_mut_ptr(), s);
    out
}

/// Fused single-pass `(dot(a, b), ‖a‖², ‖b‖²)` over two equal-length
/// slices.
///
/// Uses the same four-accumulator chunking as [`dot_slices`] for each of
/// the three sums, so the result is bit-identical to three separate
/// `dot_slices` calls while reading both slices only once — the kernel
/// behind cosine similarity on whole-model parameter vectors.
#[inline]
pub fn dot3_slices(a: &[f32], b: &[f32]) -> (f32, f32, f32) {
    debug_assert_eq!(a.len(), b.len());
    let mut ab = [0.0f32; 4];
    let mut aa = [0.0f32; 4];
    let mut bb = [0.0f32; 4];
    let chunks = a.len() / 4;
    for (av, bv) in a.chunks_exact(4).zip(b.chunks_exact(4)) {
        for k in 0..4 {
            let (x, y) = (av[k], bv[k]);
            ab[k] += x * y;
            aa[k] += x * x;
            bb[k] += y * y;
        }
    }
    let (mut ab_t, mut aa_t, mut bb_t) = (0.0f32, 0.0f32, 0.0f32);
    for j in chunks * 4..a.len() {
        let (x, y) = (a[j], b[j]);
        ab_t += x * y;
        aa_t += x * x;
        bb_t += y * y;
    }
    (
        ab[0] + ab[1] + ab[2] + ab[3] + ab_t,
        aa[0] + aa[1] + aa[2] + aa[3] + aa_t,
        bb[0] + bb[1] + bb[2] + bb[3] + bb_t,
    )
}

/// Cosine similarity between two equal-shaped tensors, in `[-1, 1]`.
///
/// Returns 0.0 when either operand has zero norm (the convention used by
/// the similarity utility: a fresh all-zero model carries no information).
pub fn cosine_similarity(a: &Tensor, b: &Tensor) -> f32 {
    assert_eq!(a.shape(), b.shape(), "cosine shape mismatch");
    cosine_similarity_slices(a.data(), b.data())
}

/// Cosine similarity between two equal-length slices (one fused pass via
/// [`dot3_slices`]).
pub fn cosine_similarity_slices(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let (ab, aa, bb) = dot3_slices(a, b);
    combine_cosine(ab, aa, bb)
}

/// Combines a dot product and two squared norms into a clamped cosine,
/// with the zero-norm → 0.0 convention. Exposed so callers holding
/// *cached* norms (flat parameter views) can skip the norm passes.
#[inline]
pub fn combine_cosine(ab: f32, aa: f32, bb: f32) -> f32 {
    if aa <= 0.0 || bb <= 0.0 {
        return 0.0;
    }
    (ab / (aa.sqrt() * bb.sqrt())).clamp(-1.0, 1.0)
}

/// Weighted mean of several equal-shaped tensors — the FedAvg primitive.
///
/// Weights are normalised internally, so callers can pass raw sample
/// counts.
///
/// # Panics
/// Panics when `tensors` is empty, lengths differ, weights are not all
/// finite and non-negative, or the weight sum is zero.
pub fn weighted_mean(tensors: &[&Tensor], weights: &[f32]) -> Tensor {
    assert!(!tensors.is_empty(), "weighted_mean of no tensors");
    assert_eq!(
        tensors.len(),
        weights.len(),
        "weights/tensors length mismatch"
    );
    let total: f32 = weights.iter().sum();
    assert!(
        total > 0.0 && weights.iter().all(|w| w.is_finite() && *w >= 0.0),
        "weights must be non-negative with positive sum, got {weights:?}"
    );
    let mut out = Tensor::zeros(tensors[0].shape().clone());
    for (t, &w) in tensors.iter().zip(weights) {
        assert_eq!(
            t.shape(),
            tensors[0].shape(),
            "weighted_mean shape mismatch"
        );
        axpy(&mut out, w / total, t);
    }
    out
}

/// Squared L2 distance between two equal-shaped tensors.
pub fn squared_distance(a: &Tensor, b: &Tensor) -> f32 {
    assert_eq!(a.shape(), b.shape(), "distance shape mismatch");
    a.data()
        .iter()
        .zip(b.data())
        .map(|(&x, &y)| (x - y) * (x - y))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: &[f32]) -> Tensor {
        Tensor::from_vec([v.len()], v.to_vec())
    }

    #[test]
    fn add_sub_mul_div() {
        let a = t(&[1., 2., 3.]);
        let b = t(&[4., 5., 6.]);
        assert_eq!(add(&a, &b).data(), &[5., 7., 9.]);
        assert_eq!(sub(&b, &a).data(), &[3., 3., 3.]);
        assert_eq!(mul(&a, &b).data(), &[4., 10., 18.]);
        assert_eq!(div(&b, &a).data(), &[4., 2.5, 2.]);
    }

    #[test]
    fn suffix_broadcast_add() {
        let mut m = Tensor::from_vec([2, 3], vec![0., 0., 0., 10., 10., 10.]);
        let bias = t(&[1., 2., 3.]);
        add_inplace(&mut m, &bias);
        assert_eq!(m.data(), &[1., 2., 3., 11., 12., 13.]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn incompatible_shapes_panic() {
        add(&t(&[1., 2.]), &t(&[1., 2., 3.]));
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = t(&[1., 1.]);
        axpy(&mut a, 2.0, &t(&[3., 4.]));
        assert_eq!(a.data(), &[7., 9.]);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = t(&[0., 10.]);
        let b = t(&[10., 0.]);
        assert_eq!(lerp(&a, &b, 1.0).data(), a.data());
        assert_eq!(lerp(&a, &b, 0.0).data(), b.data());
        assert_eq!(lerp(&a, &b, 0.5).data(), &[5., 5.]);
    }

    #[test]
    fn dot_matches_naive() {
        let a: Vec<f32> = (0..37).map(|i| i as f32 * 0.5).collect();
        let b: Vec<f32> = (0..37).map(|i| (36 - i) as f32).collect();
        let naive: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert!((dot_slices(&a, &b) - naive).abs() < 1e-3);
    }

    #[test]
    fn dot3_matches_three_separate_dots_bitwise() {
        for n in [0usize, 1, 3, 4, 7, 37, 128] {
            let a: Vec<f32> = (0..n).map(|i| (i as f32 * 0.37).sin()).collect();
            let b: Vec<f32> = (0..n).map(|i| (i as f32 * 0.71).cos()).collect();
            let (ab, aa, bb) = dot3_slices(&a, &b);
            assert_eq!(ab.to_bits(), dot_slices(&a, &b).to_bits(), "n={n}");
            assert_eq!(aa.to_bits(), dot_slices(&a, &a).to_bits(), "n={n}");
            assert_eq!(bb.to_bits(), dot_slices(&b, &b).to_bits(), "n={n}");
        }
    }

    #[test]
    fn combine_cosine_handles_zero_norms() {
        assert_eq!(combine_cosine(1.0, 0.0, 2.0), 0.0);
        assert_eq!(combine_cosine(1.0, 2.0, 0.0), 0.0);
        assert_eq!(combine_cosine(5.0, 4.0, 4.0), 1.0); // clamped
    }

    #[test]
    fn cosine_basic_cases() {
        let a = t(&[1., 0.]);
        assert!((cosine_similarity(&a, &t(&[1., 0.])) - 1.0).abs() < 1e-6);
        assert!((cosine_similarity(&a, &t(&[0., 1.]))).abs() < 1e-6);
        assert!((cosine_similarity(&a, &t(&[-1., 0.])) + 1.0).abs() < 1e-6);
        // Zero vector convention.
        assert_eq!(cosine_similarity(&a, &t(&[0., 0.])), 0.0);
    }

    #[test]
    fn cosine_is_scale_invariant() {
        let a = t(&[3., -1., 2.]);
        let b = t(&[1., 4., 0.5]);
        let c = scale(&b, 17.0);
        assert!((cosine_similarity(&a, &b) - cosine_similarity(&a, &c)).abs() < 1e-6);
    }

    #[test]
    fn weighted_mean_normalises_weights() {
        let a = t(&[0., 0.]);
        let b = t(&[10., 20.]);
        let m = weighted_mean(&[&a, &b], &[3.0, 1.0]);
        assert_eq!(m.data(), &[2.5, 5.0]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn weighted_mean_rejects_zero_weights() {
        let a = t(&[1.]);
        weighted_mean(&[&a], &[0.0]);
    }

    #[test]
    fn squared_distance_symmetric() {
        let a = t(&[1., 2.]);
        let b = t(&[4., 6.]);
        assert_eq!(squared_distance(&a, &b), 25.0);
        assert_eq!(squared_distance(&b, &a), 25.0);
        assert_eq!(squared_distance(&a, &a), 0.0);
    }
}
