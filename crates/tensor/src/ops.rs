//! Elementwise and broadcast arithmetic on tensors.
//!
//! Binary operations require either identical shapes or the restricted
//! suffix broadcast described in [`crate::shape::Shape::broadcasts_from`]
//! (the only broadcast the NN stack needs: a `[C]` bias over `[N, C]`
//! activations).

use crate::tensor::Tensor;

macro_rules! elementwise_binop {
    ($name:ident, $name_inplace:ident, $assign:tt, $doc:literal) => {
        #[doc = $doc]
        ///
        /// # Panics
        /// Panics when the shapes are neither equal nor suffix-broadcastable.
        pub fn $name(a: &Tensor, b: &Tensor) -> Tensor {
            let mut out = a.clone();
            $name_inplace(&mut out, b);
            out
        }

        #[doc = $doc]
        #[doc = " In place on `a`."]
        pub fn $name_inplace(a: &mut Tensor, b: &Tensor) {
            if a.shape() == b.shape() {
                for (x, y) in a.data_mut().iter_mut().zip(b.data()) {
                    *x $assign *y;
                }
            } else {
                assert!(
                    a.shape().broadcasts_from(b.shape()),
                    "shape mismatch: {} vs {}",
                    a.shape(),
                    b.shape()
                );
                let n = b.len();
                for chunk in a.data_mut().chunks_mut(n) {
                    for (x, y) in chunk.iter_mut().zip(b.data()) {
                        *x $assign *y;
                    }
                }
            }
        }
    };
}

elementwise_binop!(add, add_inplace, +=, "Elementwise addition `a + b`.");
elementwise_binop!(sub, sub_inplace, -=, "Elementwise subtraction `a - b`.");
elementwise_binop!(mul, mul_inplace, *=, "Elementwise (Hadamard) product `a * b`.");
elementwise_binop!(div, div_inplace, /=, "Elementwise division `a / b`.");

/// Scales every element by `s`, returning a new tensor.
pub fn scale(a: &Tensor, s: f32) -> Tensor {
    a.map(|x| x * s)
}

/// Scales every element by `s` in place.
pub fn scale_inplace(a: &mut Tensor, s: f32) {
    for x in a.data_mut() {
        *x *= s;
    }
}

/// `a += s * b` (axpy), the workhorse of SGD updates and model blending.
///
/// # Panics
/// Panics when shapes differ.
pub fn axpy(a: &mut Tensor, s: f32, b: &Tensor) {
    assert_eq!(a.shape(), b.shape(), "axpy shape mismatch");
    for (x, y) in a.data_mut().iter_mut().zip(b.data()) {
        *x += s * *y;
    }
}

/// Convex blend `alpha * a + (1 - alpha) * b` — the on-device model
/// aggregation primitive (paper Eq. 9 with similarity-derived weights).
///
/// # Panics
/// Panics when shapes differ.
pub fn lerp(a: &Tensor, b: &Tensor, alpha: f32) -> Tensor {
    assert_eq!(a.shape(), b.shape(), "lerp shape mismatch");
    let data = a
        .data()
        .iter()
        .zip(b.data())
        .map(|(&x, &y)| alpha * x + (1.0 - alpha) * y)
        .collect();
    Tensor::from_vec(a.shape().clone(), data)
}

/// Inner product of two equal-shaped tensors, flattened.
///
/// # Panics
/// Panics when shapes differ.
pub fn dot(a: &Tensor, b: &Tensor) -> f32 {
    assert_eq!(a.shape(), b.shape(), "dot shape mismatch");
    dot_slices(a.data(), b.data())
}

/// Inner product of two equal-length slices.
#[inline]
pub fn dot_slices(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    // Four accumulators let the compiler keep independent FMA chains in
    // flight; float addition is not associative so this changes rounding,
    // which is acceptable for ML workloads.
    let mut acc = [0.0f32; 4];
    let chunks = a.len() / 4;
    for i in 0..chunks {
        let j = i * 4;
        acc[0] += a[j] * b[j];
        acc[1] += a[j + 1] * b[j + 1];
        acc[2] += a[j + 2] * b[j + 2];
        acc[3] += a[j + 3] * b[j + 3];
    }
    let mut tail = 0.0f32;
    for j in chunks * 4..a.len() {
        tail += a[j] * b[j];
    }
    acc[0] + acc[1] + acc[2] + acc[3] + tail
}

/// Fused single-pass `(dot(a, b), ‖a‖², ‖b‖²)` over two equal-length
/// slices.
///
/// Uses the same four-accumulator chunking as [`dot_slices`] for each of
/// the three sums, so the result is bit-identical to three separate
/// `dot_slices` calls while reading both slices only once — the kernel
/// behind cosine similarity on whole-model parameter vectors.
#[inline]
pub fn dot3_slices(a: &[f32], b: &[f32]) -> (f32, f32, f32) {
    debug_assert_eq!(a.len(), b.len());
    let mut ab = [0.0f32; 4];
    let mut aa = [0.0f32; 4];
    let mut bb = [0.0f32; 4];
    let chunks = a.len() / 4;
    for i in 0..chunks {
        let j = i * 4;
        for k in 0..4 {
            let (x, y) = (a[j + k], b[j + k]);
            ab[k] += x * y;
            aa[k] += x * x;
            bb[k] += y * y;
        }
    }
    let (mut ab_t, mut aa_t, mut bb_t) = (0.0f32, 0.0f32, 0.0f32);
    for j in chunks * 4..a.len() {
        let (x, y) = (a[j], b[j]);
        ab_t += x * y;
        aa_t += x * x;
        bb_t += y * y;
    }
    (
        ab[0] + ab[1] + ab[2] + ab[3] + ab_t,
        aa[0] + aa[1] + aa[2] + aa[3] + aa_t,
        bb[0] + bb[1] + bb[2] + bb[3] + bb_t,
    )
}

/// Cosine similarity between two equal-shaped tensors, in `[-1, 1]`.
///
/// Returns 0.0 when either operand has zero norm (the convention used by
/// the similarity utility: a fresh all-zero model carries no information).
pub fn cosine_similarity(a: &Tensor, b: &Tensor) -> f32 {
    assert_eq!(a.shape(), b.shape(), "cosine shape mismatch");
    cosine_similarity_slices(a.data(), b.data())
}

/// Cosine similarity between two equal-length slices (one fused pass via
/// [`dot3_slices`]).
pub fn cosine_similarity_slices(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let (ab, aa, bb) = dot3_slices(a, b);
    combine_cosine(ab, aa, bb)
}

/// Combines a dot product and two squared norms into a clamped cosine,
/// with the zero-norm → 0.0 convention. Exposed so callers holding
/// *cached* norms (flat parameter views) can skip the norm passes.
#[inline]
pub fn combine_cosine(ab: f32, aa: f32, bb: f32) -> f32 {
    if aa <= 0.0 || bb <= 0.0 {
        return 0.0;
    }
    (ab / (aa.sqrt() * bb.sqrt())).clamp(-1.0, 1.0)
}

/// Weighted mean of several equal-shaped tensors — the FedAvg primitive.
///
/// Weights are normalised internally, so callers can pass raw sample
/// counts.
///
/// # Panics
/// Panics when `tensors` is empty, lengths differ, weights are not all
/// finite and non-negative, or the weight sum is zero.
pub fn weighted_mean(tensors: &[&Tensor], weights: &[f32]) -> Tensor {
    assert!(!tensors.is_empty(), "weighted_mean of no tensors");
    assert_eq!(
        tensors.len(),
        weights.len(),
        "weights/tensors length mismatch"
    );
    let total: f32 = weights.iter().sum();
    assert!(
        total > 0.0 && weights.iter().all(|w| w.is_finite() && *w >= 0.0),
        "weights must be non-negative with positive sum, got {weights:?}"
    );
    let mut out = Tensor::zeros(tensors[0].shape().clone());
    for (t, &w) in tensors.iter().zip(weights) {
        assert_eq!(
            t.shape(),
            tensors[0].shape(),
            "weighted_mean shape mismatch"
        );
        axpy(&mut out, w / total, t);
    }
    out
}

/// Squared L2 distance between two equal-shaped tensors.
pub fn squared_distance(a: &Tensor, b: &Tensor) -> f32 {
    assert_eq!(a.shape(), b.shape(), "distance shape mismatch");
    a.data()
        .iter()
        .zip(b.data())
        .map(|(&x, &y)| (x - y) * (x - y))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: &[f32]) -> Tensor {
        Tensor::from_vec([v.len()], v.to_vec())
    }

    #[test]
    fn add_sub_mul_div() {
        let a = t(&[1., 2., 3.]);
        let b = t(&[4., 5., 6.]);
        assert_eq!(add(&a, &b).data(), &[5., 7., 9.]);
        assert_eq!(sub(&b, &a).data(), &[3., 3., 3.]);
        assert_eq!(mul(&a, &b).data(), &[4., 10., 18.]);
        assert_eq!(div(&b, &a).data(), &[4., 2.5, 2.]);
    }

    #[test]
    fn suffix_broadcast_add() {
        let mut m = Tensor::from_vec([2, 3], vec![0., 0., 0., 10., 10., 10.]);
        let bias = t(&[1., 2., 3.]);
        add_inplace(&mut m, &bias);
        assert_eq!(m.data(), &[1., 2., 3., 11., 12., 13.]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn incompatible_shapes_panic() {
        add(&t(&[1., 2.]), &t(&[1., 2., 3.]));
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = t(&[1., 1.]);
        axpy(&mut a, 2.0, &t(&[3., 4.]));
        assert_eq!(a.data(), &[7., 9.]);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = t(&[0., 10.]);
        let b = t(&[10., 0.]);
        assert_eq!(lerp(&a, &b, 1.0).data(), a.data());
        assert_eq!(lerp(&a, &b, 0.0).data(), b.data());
        assert_eq!(lerp(&a, &b, 0.5).data(), &[5., 5.]);
    }

    #[test]
    fn dot_matches_naive() {
        let a: Vec<f32> = (0..37).map(|i| i as f32 * 0.5).collect();
        let b: Vec<f32> = (0..37).map(|i| (36 - i) as f32).collect();
        let naive: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert!((dot_slices(&a, &b) - naive).abs() < 1e-3);
    }

    #[test]
    fn dot3_matches_three_separate_dots_bitwise() {
        for n in [0usize, 1, 3, 4, 7, 37, 128] {
            let a: Vec<f32> = (0..n).map(|i| (i as f32 * 0.37).sin()).collect();
            let b: Vec<f32> = (0..n).map(|i| (i as f32 * 0.71).cos()).collect();
            let (ab, aa, bb) = dot3_slices(&a, &b);
            assert_eq!(ab.to_bits(), dot_slices(&a, &b).to_bits(), "n={n}");
            assert_eq!(aa.to_bits(), dot_slices(&a, &a).to_bits(), "n={n}");
            assert_eq!(bb.to_bits(), dot_slices(&b, &b).to_bits(), "n={n}");
        }
    }

    #[test]
    fn combine_cosine_handles_zero_norms() {
        assert_eq!(combine_cosine(1.0, 0.0, 2.0), 0.0);
        assert_eq!(combine_cosine(1.0, 2.0, 0.0), 0.0);
        assert_eq!(combine_cosine(5.0, 4.0, 4.0), 1.0); // clamped
    }

    #[test]
    fn cosine_basic_cases() {
        let a = t(&[1., 0.]);
        assert!((cosine_similarity(&a, &t(&[1., 0.])) - 1.0).abs() < 1e-6);
        assert!((cosine_similarity(&a, &t(&[0., 1.]))).abs() < 1e-6);
        assert!((cosine_similarity(&a, &t(&[-1., 0.])) + 1.0).abs() < 1e-6);
        // Zero vector convention.
        assert_eq!(cosine_similarity(&a, &t(&[0., 0.])), 0.0);
    }

    #[test]
    fn cosine_is_scale_invariant() {
        let a = t(&[3., -1., 2.]);
        let b = t(&[1., 4., 0.5]);
        let c = scale(&b, 17.0);
        assert!((cosine_similarity(&a, &b) - cosine_similarity(&a, &c)).abs() < 1e-6);
    }

    #[test]
    fn weighted_mean_normalises_weights() {
        let a = t(&[0., 0.]);
        let b = t(&[10., 20.]);
        let m = weighted_mean(&[&a, &b], &[3.0, 1.0]);
        assert_eq!(m.data(), &[2.5, 5.0]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn weighted_mean_rejects_zero_weights() {
        let a = t(&[1.]);
        weighted_mean(&[&a], &[0.0]);
    }

    #[test]
    fn squared_distance_symmetric() {
        let a = t(&[1., 2.]);
        let b = t(&[4., 6.]);
        assert_eq!(squared_distance(&a, &b), 25.0);
        assert_eq!(squared_distance(&b, &a), 25.0);
        assert_eq!(squared_distance(&a, &a), 0.0);
    }
}
