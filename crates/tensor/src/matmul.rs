//! Blocked, Rayon-parallel matrix multiplication.
//!
//! The kernel at the heart of both dense layers and im2col convolution.
//! `C = A (m×k) · B (k×n)` with row-major storage. The inner loops use the
//! `ikj` ordering so the innermost loop streams contiguously over a row of
//! `B` and a row of `C`, which vectorises well; the work is split across
//! threads by row blocks of `C` with `par_chunks_mut`, so each thread owns a
//! disjoint output slice (data-race freedom by construction).

use crate::tensor::Tensor;
use rayon::prelude::*;

/// Rows-per-task granularity for the parallel split. Small enough to load
/// balance 100-device simulations, large enough to amortise task overhead.
const ROW_BLOCK: usize = 16;

/// Below this many multiply-adds the parallel split costs more than it
/// saves; run single-threaded.
const PAR_THRESHOLD: usize = 64 * 64 * 64;

/// Matrix product `a · b` for rank-2 tensors.
///
/// # Panics
/// Panics when either operand is not rank 2 or the inner dimensions differ.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape().rank(), 2, "matmul lhs must be rank 2");
    assert_eq!(b.shape().rank(), 2, "matmul rhs must be rank 2");
    let (m, k) = (a.shape().dim(0), a.shape().dim(1));
    let (k2, n) = (b.shape().dim(0), b.shape().dim(1));
    assert_eq!(k, k2, "matmul inner dimension mismatch: {k} vs {k2}");

    let mut out = Tensor::zeros([m, n]);
    matmul_into(a.data(), b.data(), out.data_mut(), m, k, n);
    out
}

/// `a · bᵀ` without materialising the transpose (used by dense backward).
pub fn matmul_bt(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape().rank(), 2, "matmul_bt lhs must be rank 2");
    assert_eq!(b.shape().rank(), 2, "matmul_bt rhs must be rank 2");
    let (m, k) = (a.shape().dim(0), a.shape().dim(1));
    let (n, k2) = (b.shape().dim(0), b.shape().dim(1));
    assert_eq!(k, k2, "matmul_bt inner dimension mismatch: {k} vs {k2}");

    let mut out = Tensor::zeros([m, n]);
    let (ad, bd) = (a.data(), b.data());
    let run = |rows: &mut [f32], row0: usize| {
        for (ri, out_row) in rows.chunks_mut(n).enumerate() {
            let i = row0 + ri;
            let arow = &ad[i * k..(i + 1) * k];
            for (j, o) in out_row.iter_mut().enumerate() {
                *o = crate::ops::dot_slices(arow, &bd[j * k..(j + 1) * k]);
            }
        }
    };
    if m * n * k >= PAR_THRESHOLD {
        out.data_mut()
            .par_chunks_mut(ROW_BLOCK * n)
            .enumerate()
            .for_each(|(blk, rows)| run(rows, blk * ROW_BLOCK));
    } else {
        run(out.data_mut(), 0);
    }
    out
}

/// `aᵀ · b` without materialising the transpose (used by dense backward
/// for weight gradients: `xᵀ · dy`).
pub fn matmul_at(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape().rank(), 2, "matmul_at lhs must be rank 2");
    assert_eq!(b.shape().rank(), 2, "matmul_at rhs must be rank 2");
    let (k, m) = (a.shape().dim(0), a.shape().dim(1));
    let (k2, n) = (b.shape().dim(0), b.shape().dim(1));
    assert_eq!(k, k2, "matmul_at inner dimension mismatch: {k} vs {k2}");

    // out[i][j] = sum_l a[l][i] * b[l][j]; accumulate row-by-row of a/b so
    // all traffic is sequential.
    let mut out = Tensor::zeros([m, n]);
    let od = out.data_mut();
    let (ad, bd) = (a.data(), b.data());
    for l in 0..k {
        let arow = &ad[l * m..(l + 1) * m];
        let brow = &bd[l * n..(l + 1) * n];
        for (i, &av) in arow.iter().enumerate() {
            if av != 0.0 {
                let orow = &mut od[i * n..(i + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
    }
    out
}

/// Raw kernel: `c (m×n) = a (m×k) · b (k×n)`, all row-major slices.
///
/// `c` is fully overwritten. Parallel over row blocks of `c` when the
/// problem is large enough.
pub fn matmul_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "lhs buffer size");
    assert_eq!(b.len(), k * n, "rhs buffer size");
    assert_eq!(c.len(), m * n, "out buffer size");
    c.fill(0.0);

    let kernel = |rows: &mut [f32], row0: usize| {
        for (ri, crow) in rows.chunks_mut(n).enumerate() {
            let i = row0 + ri;
            let arow = &a[i * k..(i + 1) * k];
            for (l, &av) in arow.iter().enumerate() {
                if av != 0.0 {
                    let brow = &b[l * n..(l + 1) * n];
                    for (cv, &bv) in crow.iter_mut().zip(brow) {
                        *cv += av * bv;
                    }
                }
            }
        }
    };

    if m * k * n >= PAR_THRESHOLD && m > 1 {
        c.par_chunks_mut(ROW_BLOCK * n)
            .enumerate()
            .for_each(|(blk, rows)| kernel(rows, blk * ROW_BLOCK));
    } else {
        kernel(c, 0);
    }
}

/// Matrix–vector product `a (m×k) · x (k)`.
pub fn matvec(a: &Tensor, x: &Tensor) -> Tensor {
    assert_eq!(a.shape().rank(), 2, "matvec lhs must be rank 2");
    assert_eq!(x.shape().rank(), 1, "matvec rhs must be rank 1");
    let (m, k) = (a.shape().dim(0), a.shape().dim(1));
    assert_eq!(k, x.shape().dim(0), "matvec dimension mismatch");
    let mut out = Tensor::zeros([m]);
    for i in 0..m {
        out.data_mut()[i] = crate::ops::dot_slices(a.row(i), x.data());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.shape().dim(0), a.shape().dim(1));
        let n = b.shape().dim(1);
        let mut c = Tensor::zeros([m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for l in 0..k {
                    s += a.at(&[i, l]) * b.at(&[l, j]);
                }
                c.set(&[i, j], s);
            }
        }
        c
    }

    fn approx_eq(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() <= tol, "{x} vs {y}");
        }
    }

    #[test]
    fn small_known_product() {
        let a = Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec([3, 2], vec![7., 8., 9., 10., 11., 12.]);
        let c = matmul(&a, &b);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn identity_is_noop() {
        let mut eye = Tensor::zeros([4, 4]);
        for i in 0..4 {
            eye.set(&[i, i], 1.0);
        }
        let a = Tensor::from_vec([4, 4], (0..16).map(|i| i as f32).collect());
        approx_eq(&matmul(&a, &eye), &a, 0.0);
        approx_eq(&matmul(&eye, &a), &a, 0.0);
    }

    #[test]
    fn matches_naive_on_odd_sizes() {
        let a = Tensor::from_vec([5, 7], (0..35).map(|i| (i as f32).sin()).collect());
        let b = Tensor::from_vec([7, 3], (0..21).map(|i| (i as f32).cos()).collect());
        approx_eq(&matmul(&a, &b), &naive(&a, &b), 1e-5);
    }

    #[test]
    fn large_enough_to_parallelise() {
        let a = Tensor::from_vec([80, 70], (0..5600).map(|i| (i % 13) as f32 * 0.1).collect());
        let b = Tensor::from_vec([70, 90], (0..6300).map(|i| (i % 7) as f32 * 0.2).collect());
        approx_eq(&matmul(&a, &b), &naive(&a, &b), 1e-2);
    }

    #[test]
    fn bt_matches_explicit_transpose() {
        let a = Tensor::from_vec([4, 5], (0..20).map(|i| i as f32 * 0.3).collect());
        let b = Tensor::from_vec([6, 5], (0..30).map(|i| (i as f32).sqrt()).collect());
        approx_eq(&matmul_bt(&a, &b), &matmul(&a, &b.transpose()), 1e-4);
    }

    #[test]
    fn at_matches_explicit_transpose() {
        let a = Tensor::from_vec([5, 4], (0..20).map(|i| i as f32 * 0.3).collect());
        let b = Tensor::from_vec([5, 6], (0..30).map(|i| (i as f32).sqrt()).collect());
        approx_eq(&matmul_at(&a, &b), &matmul(&a.transpose(), &b), 1e-4);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Tensor::from_vec([3, 4], (0..12).map(|i| i as f32).collect());
        let x = Tensor::from_vec([4], vec![1., 0., -1., 2.]);
        let via_mm = matmul(&a, &x.reshaped([4, 1]));
        let mv = matvec(&a, &x);
        assert_eq!(mv.data(), via_mm.data());
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn dimension_mismatch_panics() {
        matmul(&Tensor::zeros([2, 3]), &Tensor::zeros([4, 2]));
    }
}
