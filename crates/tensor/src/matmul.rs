//! Blocked, Rayon-parallel matrix multiplication.
//!
//! The kernel at the heart of both dense layers and im2col convolution.
//! `C = A (m×k) · B (k×n)` with row-major storage. The inner loops use the
//! `ikj` ordering so the innermost loop streams contiguously over a row of
//! `B` and a row of `C`, which vectorises well; the work is split across
//! threads by row blocks of `C` with `par_chunks_mut`, so each thread owns a
//! disjoint output slice (data-race freedom by construction).

use crate::tensor::Tensor;
use rayon::prelude::*;

/// Rows-per-task granularity for the parallel split. Small enough to load
/// balance 100-device simulations, large enough to amortise task overhead.
const ROW_BLOCK: usize = 16;

/// Below this many multiply-adds the parallel split costs more than it
/// saves; run single-threaded.
const PAR_THRESHOLD: usize = 64 * 64 * 64;

/// Matrix product `a · b` for rank-2 tensors.
///
/// Part of the preserved pre-overhaul (allocating) path, so it runs the
/// reference kernel; the workspace train path calls the blocked
/// [`matmul_into`] directly. The two kernels are bitwise-identical.
///
/// # Panics
/// Panics when either operand is not rank 2 or the inner dimensions differ.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape().rank(), 2, "matmul lhs must be rank 2");
    assert_eq!(b.shape().rank(), 2, "matmul rhs must be rank 2");
    let (m, k) = (a.shape().dim(0), a.shape().dim(1));
    let (k2, n) = (b.shape().dim(0), b.shape().dim(1));
    assert_eq!(k, k2, "matmul inner dimension mismatch: {k} vs {k2}");

    let mut out = Tensor::zeros([m, n]);
    matmul_into_reference(a.data(), b.data(), out.data_mut(), m, k, n);
    out
}

/// `a · bᵀ` without materialising the transpose (used by dense backward).
///
/// Pre-overhaul path: one `dot_slices` per element, no cross-column
/// interleaving — the bitwise oracle for [`matmul_bt_into`].
pub fn matmul_bt(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape().rank(), 2, "matmul_bt lhs must be rank 2");
    assert_eq!(b.shape().rank(), 2, "matmul_bt rhs must be rank 2");
    let (m, k) = (a.shape().dim(0), a.shape().dim(1));
    let (n, k2) = (b.shape().dim(0), b.shape().dim(1));
    assert_eq!(k, k2, "matmul_bt inner dimension mismatch: {k} vs {k2}");

    let mut out = Tensor::zeros([m, n]);
    {
        let (ad, bd, c) = (a.data(), b.data(), out.data_mut());
        let run = |rows: &mut [f32], row0: usize| {
            for (ri, out_row) in rows.chunks_mut(n).enumerate() {
                let i = row0 + ri;
                let arow = &ad[i * k..(i + 1) * k];
                for (j, o) in out_row.iter_mut().enumerate() {
                    *o = crate::ops::dot_slices_reference(arow, &bd[j * k..(j + 1) * k]);
                }
            }
        };
        if m * n * k >= PAR_THRESHOLD {
            c.par_chunks_mut(ROW_BLOCK * n)
                .enumerate()
                .for_each(|(blk, rows)| run(rows, blk * ROW_BLOCK));
        } else {
            run(c, 0);
        }
    }
    out
}

/// `aᵀ · b` without materialising the transpose (used by dense backward
/// for weight gradients: `xᵀ · dy`).
pub fn matmul_at(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape().rank(), 2, "matmul_at lhs must be rank 2");
    assert_eq!(b.shape().rank(), 2, "matmul_at rhs must be rank 2");
    let (k, m) = (a.shape().dim(0), a.shape().dim(1));
    let (k2, n) = (b.shape().dim(0), b.shape().dim(1));
    assert_eq!(k, k2, "matmul_at inner dimension mismatch: {k} vs {k2}");

    // out[i][j] = sum_l a[l][i] * b[l][j]; accumulate row-by-row of a/b so
    // all traffic is sequential.
    let mut out = Tensor::zeros([m, n]);
    matmul_at_into(a.data(), b.data(), out.data_mut(), m, k, n);
    out
}

/// Column-tile width of the blocked [`matmul_into`] kernel. 16 f32 lanes
/// fit the accumulator tile entirely in vector registers, so each output
/// element is written exactly once instead of read-modified k times.
const COL_TILE: usize = 16;

/// Compiles `$body` (an `#[inline(always)]` kernel body) three times — for
/// AVX-512F, AVX2 and the baseline target — and dispatches on the host CPU
/// at runtime via the cached `is_x86_feature_detected!` probe.
///
/// Widening the vector lanes is bitwise-free for every kernel routed
/// through this: lanes always map to *independent output elements* (or
/// independent accumulator slots of `dot_slices`' fixed four-lane split),
/// so no per-element reduction chain is ever reassociated. The preserved
/// `*_reference` kernels are deliberately NOT dispatched — they model the
/// seed build, which was plain baseline codegen.
macro_rules! simd_dispatch {
    ($dispatch:ident, $body:ident, ($($arg:ident : $ty:ty),*)) => {
        #[cfg(target_arch = "x86_64")]
        #[allow(clippy::too_many_arguments)]
        mod $body {
            // Pulls in any types the signature mentions (e.g. geometry
            // structs); some bodies only use primitives.
            #[allow(unused_imports)]
            use super::*;
            #[target_feature(enable = "avx512f")]
            pub unsafe fn avx512($($arg: $ty),*) {
                super::$body($($arg),*);
            }
            #[target_feature(enable = "avx2")]
            pub unsafe fn avx2($($arg: $ty),*) {
                super::$body($($arg),*);
            }
        }

        #[inline]
        #[allow(clippy::too_many_arguments)]
        fn $dispatch($($arg: $ty),*) {
            #[cfg(target_arch = "x86_64")]
            {
                if std::arch::is_x86_feature_detected!("avx512f") {
                    // SAFETY: the feature probe above guarantees the host
                    // supports every instruction this clone may emit.
                    return unsafe { $body::avx512($($arg),*) };
                }
                if std::arch::is_x86_feature_detected!("avx2") {
                    // SAFETY: as above, for AVX2.
                    return unsafe { $body::avx2($($arg),*) };
                }
            }
            $body($($arg),*)
        }
    };
}
pub(crate) use simd_dispatch;

/// Raw kernel: `c (m×n) = a (m×k) · b (k×n)`, all row-major slices.
///
/// `c` is fully overwritten. Parallel over row blocks of `c` when the
/// problem is large enough.
///
/// Register-blocked: a 2-row × `COL_TILE`-column tile of the output is
/// held in stack accumulators across the whole k-loop, so each row of `b`
/// streamed from cache feeds two output rows and the accumulator chains
/// stay deep enough to hide float-add latency. Blocking runs *across*
/// output elements only — every individual element still sums its products
/// in ascending-k order from a `+0.0` start, exactly like
/// [`matmul_into_reference`], so results are bitwise-identical for finite
/// inputs. (Dropping the reference kernel's `av != 0.0` skip is safe: an
/// accumulator that starts at `+0.0` can never become `-0.0` by adding
/// values, so adding a `±0.0` product is a bitwise no-op.)
pub fn matmul_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "lhs buffer size");
    assert_eq!(b.len(), k * n, "rhs buffer size");
    assert_eq!(c.len(), m * n, "out buffer size");

    if m * k * n >= PAR_THRESHOLD && m > 1 {
        c.par_chunks_mut(ROW_BLOCK * n)
            .enumerate()
            .for_each(|(blk, rows)| mm_block_dispatch(a, b, rows, blk * ROW_BLOCK, k, n));
    } else {
        mm_block_dispatch(a, b, c, 0, k, n);
    }
}

/// Single-row fallback tile of [`mm_block`] (odd trailing row).
#[inline(always)]
fn mm_one_row(arow: &[f32], b: &[f32], crow: &mut [f32], n: usize) {
    let mut j0 = 0usize;
    while j0 + COL_TILE <= n {
        let mut acc = [0.0f32; COL_TILE];
        for (l, &av) in arow.iter().enumerate() {
            let brow = &b[l * n + j0..l * n + j0 + COL_TILE];
            for (cv, &bv) in acc.iter_mut().zip(brow) {
                *cv += av * bv;
            }
        }
        crow[j0..j0 + COL_TILE].copy_from_slice(&acc);
        j0 += COL_TILE;
    }
    if j0 < n {
        let rem = n - j0;
        let mut acc = [0.0f32; COL_TILE];
        for (l, &av) in arow.iter().enumerate() {
            let brow = &b[l * n + j0..l * n + n];
            for (cv, &bv) in acc[..rem].iter_mut().zip(brow) {
                *cv += av * bv;
            }
        }
        crow[j0..].copy_from_slice(&acc[..rem]);
    }
}

/// Row-block body of [`matmul_into`]: 4-row × `COL_TILE` register tiles
/// (2-row and 1-row fallbacks for the trailing rows). Wider row tiles
/// exist purely to stream each row of `b` past more output rows per pass
/// — every output element keeps its own ascending-k accumulator chain.
#[inline(always)]
fn mm_block(a: &[f32], b: &[f32], rows: &mut [f32], row0: usize, k: usize, n: usize) {
    let nrows = rows.len() / n;
    let mut ri = 0usize;
    while ri + 4 <= nrows {
        let i = row0 + ri;
        let (crow0, rest) = rows[ri * n..].split_at_mut(n);
        let (crow1, rest) = rest.split_at_mut(n);
        let (crow2, rest) = rest.split_at_mut(n);
        let crow3 = &mut rest[..n];
        let arows: [&[f32]; 4] = std::array::from_fn(|t| &a[(i + t) * k..(i + t + 1) * k]);
        let mut j0 = 0usize;
        while j0 + COL_TILE <= n {
            let mut acc = [[0.0f32; COL_TILE]; 4];
            for l in 0..k {
                let av: [f32; 4] = std::array::from_fn(|t| arows[t][l]);
                let brow = &b[l * n + j0..l * n + j0 + COL_TILE];
                for (t, acct) in acc.iter_mut().enumerate() {
                    for (cv, &bv) in acct.iter_mut().zip(brow) {
                        *cv += av[t] * bv;
                    }
                }
            }
            crow0[j0..j0 + COL_TILE].copy_from_slice(&acc[0]);
            crow1[j0..j0 + COL_TILE].copy_from_slice(&acc[1]);
            crow2[j0..j0 + COL_TILE].copy_from_slice(&acc[2]);
            crow3[j0..j0 + COL_TILE].copy_from_slice(&acc[3]);
            j0 += COL_TILE;
        }
        if j0 < n {
            let rem = n - j0;
            let mut acc = [[0.0f32; COL_TILE]; 4];
            for l in 0..k {
                let av: [f32; 4] = std::array::from_fn(|t| arows[t][l]);
                let brow = &b[l * n + j0..l * n + n];
                for (t, acct) in acc.iter_mut().enumerate() {
                    for (cv, &bv) in acct[..rem].iter_mut().zip(brow) {
                        *cv += av[t] * bv;
                    }
                }
            }
            crow0[j0..].copy_from_slice(&acc[0][..rem]);
            crow1[j0..].copy_from_slice(&acc[1][..rem]);
            crow2[j0..].copy_from_slice(&acc[2][..rem]);
            crow3[j0..].copy_from_slice(&acc[3][..rem]);
        }
        ri += 4;
    }
    while ri + 2 <= nrows {
        let i = row0 + ri;
        let (crow0, rest) = rows[ri * n..].split_at_mut(n);
        let crow1 = &mut rest[..n];
        let arow0 = &a[i * k..(i + 1) * k];
        let arow1 = &a[(i + 1) * k..(i + 2) * k];
        let mut j0 = 0usize;
        while j0 + COL_TILE <= n {
            let mut acc0 = [0.0f32; COL_TILE];
            let mut acc1 = [0.0f32; COL_TILE];
            for l in 0..k {
                let (av0, av1) = (arow0[l], arow1[l]);
                let brow = &b[l * n + j0..l * n + j0 + COL_TILE];
                for ((c0, c1), &bv) in acc0.iter_mut().zip(acc1.iter_mut()).zip(brow) {
                    *c0 += av0 * bv;
                    *c1 += av1 * bv;
                }
            }
            crow0[j0..j0 + COL_TILE].copy_from_slice(&acc0);
            crow1[j0..j0 + COL_TILE].copy_from_slice(&acc1);
            j0 += COL_TILE;
        }
        if j0 < n {
            let rem = n - j0;
            let mut acc0 = [0.0f32; COL_TILE];
            let mut acc1 = [0.0f32; COL_TILE];
            for l in 0..k {
                let (av0, av1) = (arow0[l], arow1[l]);
                let brow = &b[l * n + j0..l * n + n];
                for ((c0, c1), &bv) in acc0[..rem].iter_mut().zip(acc1[..rem].iter_mut()).zip(brow)
                {
                    *c0 += av0 * bv;
                    *c1 += av1 * bv;
                }
            }
            crow0[j0..].copy_from_slice(&acc0[..rem]);
            crow1[j0..].copy_from_slice(&acc1[..rem]);
        }
        ri += 2;
    }
    if ri < nrows {
        let i = row0 + ri;
        mm_one_row(
            &a[i * k..(i + 1) * k],
            b,
            &mut rows[ri * n..(ri + 1) * n],
            n,
        );
    }
}

simd_dispatch!(
    mm_block_dispatch,
    mm_block,
    (a: &[f32], b: &[f32], rows: &mut [f32], row0: usize, k: usize, n: usize)
);

/// The pre-blocking `matmul_into` kernel, kept verbatim as the bitwise
/// oracle for the blocked kernel (see the proptest battery and the
/// `train_kernels` bench).
pub fn matmul_into_reference(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "lhs buffer size");
    assert_eq!(b.len(), k * n, "rhs buffer size");
    assert_eq!(c.len(), m * n, "out buffer size");
    c.fill(0.0);

    let kernel = |rows: &mut [f32], row0: usize| {
        for (ri, crow) in rows.chunks_mut(n).enumerate() {
            let i = row0 + ri;
            let arow = &a[i * k..(i + 1) * k];
            for (l, &av) in arow.iter().enumerate() {
                if av != 0.0 {
                    let brow = &b[l * n..(l + 1) * n];
                    for (cv, &bv) in crow.iter_mut().zip(brow) {
                        *cv += av * bv;
                    }
                }
            }
        }
    };

    if m * k * n >= PAR_THRESHOLD && m > 1 {
        c.par_chunks_mut(ROW_BLOCK * n)
            .enumerate()
            .for_each(|(blk, rows)| kernel(rows, blk * ROW_BLOCK));
    } else {
        kernel(c, 0);
    }
}

/// Raw kernel: `c (m×n) = a (m×k) · bᵀ` where `b` is stored `n×k`
/// row-major. Per-element reduction is exactly [`crate::ops::dot_slices`]
/// — eight output columns are computed per pass via
/// [`crate::ops::dot_slices_many`] so the short dots overlap instead of
/// serialising on add latency.
pub fn matmul_bt_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "lhs buffer size");
    assert_eq!(b.len(), n * k, "rhs buffer size");
    assert_eq!(c.len(), m * n, "out buffer size");
    if m * n * k >= PAR_THRESHOLD {
        c.par_chunks_mut(ROW_BLOCK * n)
            .enumerate()
            .for_each(|(blk, rows)| bt_block_dispatch(a, b, rows, blk * ROW_BLOCK, k, n));
    } else {
        bt_block_dispatch(a, b, c, 0, k, n);
    }
}

/// Stack capacity (in `k`) for [`bt_block`]'s transposed weight tile —
/// covers every dense layer in the model zoo; larger `k` falls back to
/// the untransposed tile path.
const BT_TILE_K: usize = 512;

/// Row-block body of [`matmul_bt_into`].
#[inline(always)]
fn bt_block(a: &[f32], b: &[f32], rows: &mut [f32], row0: usize, k: usize, n: usize) {
    let nrows = rows.len() / n;
    if k.is_multiple_of(4) && k <= BT_TILE_K && crate::ops::dots8_transposed_fast() {
        // Each 8-row tile of `b` is shared by every output row in the
        // block, so transpose it once and run the dots 8-wide across the
        // outputs (bitwise-identical per output).
        let mut bt = [0.0f32; BT_TILE_K * 8];
        let mut j0 = 0usize;
        while j0 + 8 <= n {
            for t in 0..8 {
                let brow = &b[(j0 + t) * k..(j0 + t + 1) * k];
                for (j, &v) in brow.iter().enumerate() {
                    bt[j * 8 + t] = v;
                }
            }
            for ri in 0..nrows {
                let i = row0 + ri;
                let arow = &a[i * k..(i + 1) * k];
                let dots = crate::ops::dot_slices_8_transposed(arow, &bt[..k * 8]);
                rows[ri * n + j0..][..8].copy_from_slice(&dots);
            }
            j0 += 8;
        }
        for ri in 0..nrows {
            let i = row0 + ri;
            let arow = &a[i * k..(i + 1) * k];
            for j in j0..n {
                rows[ri * n + j] = crate::ops::dot_slices(arow, &b[j * k..(j + 1) * k]);
            }
        }
        return;
    }
    for (ri, out_row) in rows.chunks_mut(n).enumerate() {
        let i = row0 + ri;
        let arow = &a[i * k..(i + 1) * k];
        let mut j0 = 0usize;
        while j0 + 8 <= n {
            let brows: [&[f32]; 8] = std::array::from_fn(|t| &b[(j0 + t) * k..(j0 + t + 1) * k]);
            let dots = crate::ops::dot_slices_many(arow, brows);
            out_row[j0..j0 + 8].copy_from_slice(&dots);
            j0 += 8;
        }
        for (j, o) in out_row.iter_mut().enumerate().skip(j0) {
            *o = crate::ops::dot_slices(arow, &b[j * k..(j + 1) * k]);
        }
    }
}

simd_dispatch!(
    bt_block_dispatch,
    bt_block,
    (a: &[f32], b: &[f32], rows: &mut [f32], row0: usize, k: usize, n: usize)
);

/// Raw kernel: `c (m×n) = aᵀ · b` where `a` is stored `k×m` row-major.
///
/// Keeps the `av != 0.0` skip: the dominant caller feeds ReLU-masked
/// gradients as `a`, where the sparsity test genuinely pays for itself.
pub fn matmul_at_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), k * m, "lhs buffer size");
    assert_eq!(b.len(), k * n, "rhs buffer size");
    assert_eq!(c.len(), m * n, "out buffer size");
    at_body_dispatch(a, b, c, m, k, n);
}

/// Body of [`matmul_at_into`].
#[inline(always)]
fn at_body(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    c.fill(0.0);
    for l in 0..k {
        let arow = &a[l * m..(l + 1) * m];
        let brow = &b[l * n..(l + 1) * n];
        for (i, &av) in arow.iter().enumerate() {
            if av != 0.0 {
                let orow = &mut c[i * n..(i + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
    }
}

simd_dispatch!(
    at_body_dispatch,
    at_body,
    (a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize)
);

/// Matrix–vector product `a (m×k) · x (k)`.
pub fn matvec(a: &Tensor, x: &Tensor) -> Tensor {
    assert_eq!(a.shape().rank(), 2, "matvec lhs must be rank 2");
    assert_eq!(x.shape().rank(), 1, "matvec rhs must be rank 1");
    let (m, k) = (a.shape().dim(0), a.shape().dim(1));
    assert_eq!(k, x.shape().dim(0), "matvec dimension mismatch");
    let mut out = Tensor::zeros([m]);
    for i in 0..m {
        out.data_mut()[i] = crate::ops::dot_slices(a.row(i), x.data());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.shape().dim(0), a.shape().dim(1));
        let n = b.shape().dim(1);
        let mut c = Tensor::zeros([m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for l in 0..k {
                    s += a.at(&[i, l]) * b.at(&[l, j]);
                }
                c.set(&[i, j], s);
            }
        }
        c
    }

    fn approx_eq(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() <= tol, "{x} vs {y}");
        }
    }

    #[test]
    fn small_known_product() {
        let a = Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec([3, 2], vec![7., 8., 9., 10., 11., 12.]);
        let c = matmul(&a, &b);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn identity_is_noop() {
        let mut eye = Tensor::zeros([4, 4]);
        for i in 0..4 {
            eye.set(&[i, i], 1.0);
        }
        let a = Tensor::from_vec([4, 4], (0..16).map(|i| i as f32).collect());
        approx_eq(&matmul(&a, &eye), &a, 0.0);
        approx_eq(&matmul(&eye, &a), &a, 0.0);
    }

    #[test]
    fn matches_naive_on_odd_sizes() {
        let a = Tensor::from_vec([5, 7], (0..35).map(|i| (i as f32).sin()).collect());
        let b = Tensor::from_vec([7, 3], (0..21).map(|i| (i as f32).cos()).collect());
        approx_eq(&matmul(&a, &b), &naive(&a, &b), 1e-5);
    }

    #[test]
    fn large_enough_to_parallelise() {
        let a = Tensor::from_vec([80, 70], (0..5600).map(|i| (i % 13) as f32 * 0.1).collect());
        let b = Tensor::from_vec([70, 90], (0..6300).map(|i| (i % 7) as f32 * 0.2).collect());
        approx_eq(&matmul(&a, &b), &naive(&a, &b), 1e-2);
    }

    #[test]
    fn bt_matches_explicit_transpose() {
        let a = Tensor::from_vec([4, 5], (0..20).map(|i| i as f32 * 0.3).collect());
        let b = Tensor::from_vec([6, 5], (0..30).map(|i| (i as f32).sqrt()).collect());
        approx_eq(&matmul_bt(&a, &b), &matmul(&a, &b.transpose()), 1e-4);
    }

    #[test]
    fn at_matches_explicit_transpose() {
        let a = Tensor::from_vec([5, 4], (0..20).map(|i| i as f32 * 0.3).collect());
        let b = Tensor::from_vec([5, 6], (0..30).map(|i| (i as f32).sqrt()).collect());
        approx_eq(&matmul_at(&a, &b), &matmul(&a.transpose(), &b), 1e-4);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Tensor::from_vec([3, 4], (0..12).map(|i| i as f32).collect());
        let x = Tensor::from_vec([4], vec![1., 0., -1., 2.]);
        let via_mm = matmul(&a, &x.reshaped([4, 1]));
        let mv = matvec(&a, &x);
        assert_eq!(mv.data(), via_mm.data());
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn dimension_mismatch_panics() {
        matmul(&Tensor::zeros([2, 3]), &Tensor::zeros([4, 2]));
    }
}
