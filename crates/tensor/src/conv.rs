//! 2-D convolution and pooling kernels via im2col lowering.
//!
//! Activations are NCHW (`[batch, channels, height, width]`). Convolution
//! lowers each input window into a column of a patch matrix, so the
//! convolution itself becomes a single call into the blocked parallel
//! [`crate::matmul`] kernel — forward, input-gradient and weight-gradient
//! passes all reuse the same machinery.

use crate::matmul::{matmul_into, matmul_into_reference, simd_dispatch};
use crate::tensor::Tensor;

/// Static geometry of a convolution: shapes, stride and padding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvGeometry {
    /// Input channels.
    pub in_c: usize,
    /// Output channels.
    pub out_c: usize,
    /// Square kernel extent.
    pub kernel: usize,
    /// Stride in both spatial dimensions.
    pub stride: usize,
    /// Zero padding on every border.
    pub pad: usize,
    /// Input spatial height.
    pub in_h: usize,
    /// Input spatial width.
    pub in_w: usize,
}

impl ConvGeometry {
    /// Output spatial height.
    pub fn out_h(&self) -> usize {
        (self.in_h + 2 * self.pad - self.kernel) / self.stride + 1
    }

    /// Output spatial width.
    pub fn out_w(&self) -> usize {
        (self.in_w + 2 * self.pad - self.kernel) / self.stride + 1
    }

    /// Rows of the im2col patch matrix (= patch size).
    pub fn patch_len(&self) -> usize {
        self.in_c * self.kernel * self.kernel
    }

    /// Columns of the im2col patch matrix (= output positions).
    pub fn out_positions(&self) -> usize {
        self.out_h() * self.out_w()
    }

    /// Validates the geometry against an input shape `[N, C, H, W]`.
    pub fn check_input(&self, t: &Tensor) {
        assert_eq!(t.shape().rank(), 4, "conv input must be NCHW");
        assert_eq!(t.shape().dim(1), self.in_c, "conv input channel mismatch");
        assert_eq!(t.shape().dim(2), self.in_h, "conv input height mismatch");
        assert_eq!(t.shape().dim(3), self.in_w, "conv input width mismatch");
        assert!(
            self.in_h + 2 * self.pad >= self.kernel && self.in_w + 2 * self.pad >= self.kernel,
            "kernel larger than padded input"
        );
    }
}

/// Lowers one image `[C, H, W]` into rows of a (possibly wider) patch
/// matrix: row `r` of the patches lands at `cols[r * row_stride + offset..]`.
/// This is the strided core shared by [`im2col`] (one image per matrix,
/// `row_stride == out_positions`) and [`im2col_batch`] (whole batch side by
/// side, `row_stride == n * out_positions`).
#[inline(always)]
fn im2col_strided_body(
    img: &[f32],
    g: &ConvGeometry,
    cols: &mut [f32],
    row_stride: usize,
    offset: usize,
) {
    let (oh, ow) = (g.out_h(), g.out_w());
    debug_assert_eq!(img.len(), g.in_c * g.in_h * g.in_w);
    let n_pos = oh * ow;
    let mut row = 0usize;
    for c in 0..g.in_c {
        let plane = &img[c * g.in_h * g.in_w..(c + 1) * g.in_h * g.in_w];
        for ky in 0..g.kernel {
            for kx in 0..g.kernel {
                // For a fixed (ky, kx) the in-bounds output columns form one
                // contiguous run per output row, so each row is a zero
                // prefix, a copied/gathered span and a zero suffix — pure
                // data movement, no per-element bounds checks.
                let (lo, hi) = valid_span(ow, g.stride, kx, g.pad, g.in_w);
                let out_row = &mut cols[row * row_stride + offset..][..n_pos];
                for oy in 0..oh {
                    let iy = (oy * g.stride + ky) as isize - g.pad as isize;
                    let dst = &mut out_row[oy * ow..(oy + 1) * ow];
                    if iy < 0 || iy as usize >= g.in_h || lo >= hi {
                        dst.fill(0.0);
                        continue;
                    }
                    dst[..lo].fill(0.0);
                    dst[hi..].fill(0.0);
                    let ix0 = (lo * g.stride + kx) - g.pad;
                    let src = &plane[iy as usize * g.in_w + ix0..];
                    if g.stride == 1 {
                        dst[lo..hi].copy_from_slice(&src[..hi - lo]);
                    } else {
                        for (i, d) in dst[lo..hi].iter_mut().enumerate() {
                            *d = src[i * g.stride];
                        }
                    }
                }
                row += 1;
            }
        }
    }
}

simd_dispatch!(
    im2col_strided,
    im2col_strided_body,
    (img: &[f32], g: &ConvGeometry, cols: &mut [f32], row_stride: usize, offset: usize)
);

/// The pre-overhaul [`im2col`] body, kept verbatim (per-element bounds
/// checks and all) so the per-sample oracle kernels keep the seed's
/// performance as well as its output — the benchmark's "before" side
/// must not inherit the batched path's data-movement optimisations.
fn im2col_reference(img: &[f32], g: &ConvGeometry, cols: &mut [f32]) {
    let (oh, ow) = (g.out_h(), g.out_w());
    debug_assert_eq!(img.len(), g.in_c * g.in_h * g.in_w);
    let n_pos = oh * ow;
    let mut row = 0usize;
    for c in 0..g.in_c {
        let plane = &img[c * g.in_h * g.in_w..(c + 1) * g.in_h * g.in_w];
        for ky in 0..g.kernel {
            for kx in 0..g.kernel {
                let out_row = &mut cols[row * n_pos..(row + 1) * n_pos];
                let mut p = 0usize;
                for oy in 0..oh {
                    let iy = (oy * g.stride + ky) as isize - g.pad as isize;
                    for ox in 0..ow {
                        let ix = (ox * g.stride + kx) as isize - g.pad as isize;
                        out_row[p] = if iy >= 0
                            && (iy as usize) < g.in_h
                            && ix >= 0
                            && (ix as usize) < g.in_w
                        {
                            plane[iy as usize * g.in_w + ix as usize]
                        } else {
                            0.0
                        };
                        p += 1;
                    }
                }
                row += 1;
            }
        }
    }
}

/// The pre-overhaul [`col2im`] body, kept verbatim for the per-sample
/// oracle (see [`im2col_reference`]).
fn col2im_reference(cols: &[f32], g: &ConvGeometry, img: &mut [f32]) {
    let (oh, ow) = (g.out_h(), g.out_w());
    debug_assert_eq!(img.len(), g.in_c * g.in_h * g.in_w);
    img.fill(0.0);
    let n_pos = oh * ow;
    let mut row = 0usize;
    for c in 0..g.in_c {
        let plane = &mut img[c * g.in_h * g.in_w..(c + 1) * g.in_h * g.in_w];
        for ky in 0..g.kernel {
            for kx in 0..g.kernel {
                let col_row = &cols[row * n_pos..(row + 1) * n_pos];
                let mut p = 0usize;
                for oy in 0..oh {
                    let iy = (oy * g.stride + ky) as isize - g.pad as isize;
                    for ox in 0..ow {
                        let ix = (ox * g.stride + kx) as isize - g.pad as isize;
                        if iy >= 0 && (iy as usize) < g.in_h && ix >= 0 && (ix as usize) < g.in_w {
                            plane[iy as usize * g.in_w + ix as usize] += col_row[p];
                        }
                        p += 1;
                    }
                }
                row += 1;
            }
        }
    }
}

/// Output-column range `[lo, hi)` whose input column `ox * stride + kx - pad`
/// lies inside `[0, in_w)`, clamped to `[0, ow)`.
fn valid_span(ow: usize, stride: usize, kx: usize, pad: usize, in_w: usize) -> (usize, usize) {
    let shift = kx as isize - pad as isize;
    let lo = if shift >= 0 {
        0
    } else {
        ((-shift) as usize).div_ceil(stride)
    };
    let hi = if (in_w as isize) <= shift {
        0
    } else {
        (in_w as isize - 1 - shift) as usize / stride + 1
    };
    (lo.min(ow), hi.min(ow).max(lo.min(ow)))
}

/// Lowers one image `[C, H, W]` (a slice of `C*H*W` floats) into the patch
/// matrix `cols` of shape `[patch_len, out_positions]` (row-major slice).
pub fn im2col(img: &[f32], g: &ConvGeometry, cols: &mut [f32]) {
    debug_assert_eq!(cols.len(), g.patch_len() * g.out_positions());
    im2col_strided(img, g, cols, g.out_positions(), 0);
}

/// Lowers a whole NCHW batch into one patch matrix of shape
/// `[patch_len, n * out_positions]`: sample `b`'s columns sit at offset
/// `b * out_positions` within every row, so one GEMM covers the batch while
/// each output element sums exactly the per-sample products in the same
/// k-order.
pub fn im2col_batch(input: &[f32], n: usize, g: &ConvGeometry, cols: &mut [f32]) {
    let n_pos = g.out_positions();
    let img_len = g.in_c * g.in_h * g.in_w;
    let row_stride = n * n_pos;
    debug_assert_eq!(input.len(), n * img_len);
    debug_assert_eq!(cols.len(), g.patch_len() * row_stride);
    for b in 0..n {
        let img = &input[b * img_len..(b + 1) * img_len];
        im2col_strided(img, g, cols, row_stride, b * n_pos);
    }
}

/// Strided core of [`col2im`]: scatter-adds the columns at
/// `cols[r * row_stride + offset..]` for each patch row `r` back into one
/// image. `img` is zeroed first.
#[inline(always)]
fn col2im_strided_body(
    cols: &[f32],
    g: &ConvGeometry,
    img: &mut [f32],
    row_stride: usize,
    offset: usize,
) {
    let (oh, ow) = (g.out_h(), g.out_w());
    debug_assert_eq!(img.len(), g.in_c * g.in_h * g.in_w);
    img.fill(0.0);
    let n_pos = oh * ow;
    let mut row = 0usize;
    for c in 0..g.in_c {
        let plane = &mut img[c * g.in_h * g.in_w..(c + 1) * g.in_h * g.in_w];
        for ky in 0..g.kernel {
            for kx in 0..g.kernel {
                // Mirror of the im2col fast path: one contiguous in-bounds
                // run per output row. Each image cell still receives its
                // per-(ky,kx) contributions one at a time in the original
                // loop order, so the accumulation order is unchanged.
                let (lo, hi) = valid_span(ow, g.stride, kx, g.pad, g.in_w);
                let col_row = &cols[row * row_stride + offset..][..n_pos];
                for oy in 0..oh {
                    let iy = (oy * g.stride + ky) as isize - g.pad as isize;
                    if iy < 0 || iy as usize >= g.in_h || lo >= hi {
                        continue;
                    }
                    let src = &col_row[oy * ow..][lo..hi];
                    let ix0 = (lo * g.stride + kx) - g.pad;
                    let dst = &mut plane[iy as usize * g.in_w + ix0..];
                    if g.stride == 1 {
                        for (d, &s) in dst[..hi - lo].iter_mut().zip(src) {
                            *d += s;
                        }
                    } else {
                        for (i, &s) in src.iter().enumerate() {
                            dst[i * g.stride] += s;
                        }
                    }
                }
                row += 1;
            }
        }
    }
}

simd_dispatch!(
    col2im_strided,
    col2im_strided_body,
    (cols: &[f32], g: &ConvGeometry, img: &mut [f32], row_stride: usize, offset: usize)
);

/// Scatter-adds a patch matrix back into an image — the adjoint of
/// [`im2col`], used for the input gradient.
pub fn col2im(cols: &[f32], g: &ConvGeometry, img: &mut [f32]) {
    debug_assert_eq!(cols.len(), g.patch_len() * g.out_positions());
    col2im_strided(cols, g, img, g.out_positions(), 0);
}

/// Reusable workspace for the batched convolution kernels. All buffers are
/// grown on demand and retained across calls; after
/// [`conv2d_forward_into`] it holds the batch's im2col patches, which
/// [`conv2d_backward_into`] reuses instead of re-lowering the input.
#[derive(Debug, Default, Clone)]
pub struct ConvScratch {
    /// Batched patch matrix `[patch_len, n * out_positions]`.
    cols: Vec<f32>,
    /// GEMM output / transposed upstream gradient `[out_c, n * out_positions]`.
    ybuf: Vec<f32>,
    /// Patch-space input gradient `[patch_len, n * out_positions]`.
    dcols: Vec<f32>,
    /// Transposed weights `[patch_len, out_c]`.
    wt: Vec<f32>,
    /// One transposed 8-channel dy tile `[out_positions, 8]` for the
    /// weight-gradient dots (see [`crate::ops::dot_slices_8_transposed`]).
    dyt: Vec<f32>,
}

/// Forward convolution.
///
/// * `input`: `[N, in_c, in_h, in_w]`
/// * `weight`: `[out_c, in_c * kernel * kernel]` (pre-flattened filters)
/// * `bias`: `[out_c]`
///
/// Returns `[N, out_c, out_h, out_w]`.
pub fn conv2d_forward(input: &Tensor, weight: &Tensor, bias: &Tensor, g: &ConvGeometry) -> Tensor {
    g.check_input(input);
    assert_eq!(
        weight.shape().dims(),
        &[g.out_c, g.patch_len()],
        "weight shape"
    );
    assert_eq!(bias.shape().dims(), &[g.out_c], "bias shape");

    let n = input.shape().dim(0);
    let (oh, ow) = (g.out_h(), g.out_w());
    let n_pos = oh * ow;
    let img_len = g.in_c * g.in_h * g.in_w;
    let out_img_len = g.out_c * n_pos;

    let mut out = Tensor::zeros([n, g.out_c, oh, ow]);
    let mut cols = vec![0.0f32; g.patch_len() * n_pos];
    for b in 0..n {
        let img = &input.data()[b * img_len..(b + 1) * img_len];
        im2col_reference(img, g, &mut cols);
        let dst = &mut out.data_mut()[b * out_img_len..(b + 1) * out_img_len];
        matmul_into_reference(weight.data(), &cols, dst, g.out_c, g.patch_len(), n_pos);
        for (oc, chunk) in dst.chunks_mut(n_pos).enumerate() {
            let bv = bias.data()[oc];
            for v in chunk {
                *v += bv;
            }
        }
    }
    out
}

/// Batched forward convolution into caller-owned storage.
///
/// Bitwise-identical to [`conv2d_forward`] (the per-sample oracle): the
/// whole batch is lowered with [`im2col_batch`] and multiplied in one GEMM,
/// which sums the same products in the same k-order per output element.
/// `out` is resized and fully overwritten; `scratch` keeps the patches for
/// [`conv2d_backward_into`].
pub fn conv2d_forward_into(
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    g: &ConvGeometry,
    scratch: &mut ConvScratch,
    out: &mut Tensor,
) {
    g.check_input(input);
    assert_eq!(
        weight.shape().dims(),
        &[g.out_c, g.patch_len()],
        "weight shape"
    );
    assert_eq!(bias.shape().dims(), &[g.out_c], "bias shape");

    let n = input.shape().dim(0);
    let (oh, ow) = (g.out_h(), g.out_w());
    let n_pos = oh * ow;
    let plen = g.patch_len();
    let cols_n = n * n_pos;

    scratch.cols.resize(plen * cols_n, 0.0);
    scratch.ybuf.resize(g.out_c * cols_n, 0.0);
    im2col_batch(input.data(), n, g, &mut scratch.cols);
    matmul_into(
        weight.data(),
        &scratch.cols,
        &mut scratch.ybuf,
        g.out_c,
        plen,
        cols_n,
    );

    out.resize([n, g.out_c, oh, ow]);
    let od = out.data_mut();
    for b in 0..n {
        for oc in 0..g.out_c {
            let src = &scratch.ybuf[oc * cols_n + b * n_pos..][..n_pos];
            let dst = &mut od[(b * g.out_c + oc) * n_pos..][..n_pos];
            let bv = bias.data()[oc];
            for (d, &s) in dst.iter_mut().zip(src) {
                *d = s + bv;
            }
        }
    }
}

/// Batched backward convolution into caller-owned storage.
///
/// Bitwise-identical to [`conv2d_backward`]: `dweight`/`dbias` accumulate
/// per-sample terms in ascending batch order with the oracle's `dot_slices`
/// reduction, and the patch-space input gradient is one GEMM whose
/// per-element reduction matches the oracle's ascending-`out_c` chain.
///
/// Requires `scratch` to hold the patches left by [`conv2d_forward_into`]
/// on the same input. Pass `dinput: None` to skip the input gradient
/// entirely (the first layer of a network never needs it).
#[allow(clippy::too_many_arguments)]
pub fn conv2d_backward_into(
    input: &Tensor,
    weight: &Tensor,
    dout: &Tensor,
    g: &ConvGeometry,
    scratch: &mut ConvScratch,
    dweight: &mut Tensor,
    dbias: &mut Tensor,
    dinput: Option<&mut Tensor>,
) {
    g.check_input(input);
    let n = input.shape().dim(0);
    let (oh, ow) = (g.out_h(), g.out_w());
    assert_eq!(
        dout.shape().dims(),
        &[n, g.out_c, oh, ow],
        "dout shape mismatch"
    );
    let n_pos = oh * ow;
    let img_len = g.in_c * g.in_h * g.in_w;
    let out_img_len = g.out_c * n_pos;
    let plen = g.patch_len();
    let cols_n = n * n_pos;
    assert_eq!(
        scratch.cols.len(),
        plen * cols_n,
        "conv2d_backward_into requires the patches left by conv2d_forward_into"
    );

    dweight.resize(weight.shape().clone());
    dweight.data_mut().fill(0.0);
    dbias.resize([g.out_c]);
    dbias.data_mut().fill(0.0);
    scratch.dyt.resize(n_pos * 8, 0.0);

    let dd = dout.data();
    for b in 0..n {
        let dy = &dd[b * out_img_len..(b + 1) * out_img_len];

        // dbias: sum over spatial positions.
        for (oc, chunk) in dy.chunks(n_pos).enumerate() {
            dbias.data_mut()[oc] += chunk.iter().sum::<f32>();
        }

        // dweight += dy (out_c×n_pos) · colsᵀ (n_pos×plen), per sample in
        // ascending batch order — the oracle's exact accumulation chain.
        dweight_sample(
            dy,
            &scratch.cols,
            dweight.data_mut(),
            &mut scratch.dyt,
            g.out_c,
            plen,
            n_pos,
            cols_n,
            b * n_pos,
        );
    }

    if let Some(dinput) = dinput {
        // dcols (plen × n·n_pos) = weightᵀ · dyᵀ. Both transposes are pure
        // copies, so the blocked GEMM reduces each element over ascending
        // out_c exactly like the oracle's scatter loop.
        scratch.ybuf.resize(g.out_c * cols_n, 0.0);
        for b in 0..n {
            let dy = &dd[b * out_img_len..(b + 1) * out_img_len];
            for oc in 0..g.out_c {
                scratch.ybuf[oc * cols_n + b * n_pos..][..n_pos]
                    .copy_from_slice(&dy[oc * n_pos..(oc + 1) * n_pos]);
            }
        }
        scratch.wt.resize(plen * g.out_c, 0.0);
        let wd = weight.data();
        for oc in 0..g.out_c {
            for (r, &wv) in wd[oc * plen..(oc + 1) * plen].iter().enumerate() {
                scratch.wt[r * g.out_c + oc] = wv;
            }
        }
        scratch.dcols.resize(plen * cols_n, 0.0);
        matmul_into(
            &scratch.wt,
            &scratch.ybuf,
            &mut scratch.dcols,
            plen,
            g.out_c,
            cols_n,
        );

        dinput.resize(input.shape().clone());
        let did = dinput.data_mut();
        for b in 0..n {
            col2im_strided(
                &scratch.dcols,
                g,
                &mut did[b * img_len..(b + 1) * img_len],
                cols_n,
                b * n_pos,
            );
        }
    }
}

/// One sample's weight-gradient accumulation for the batched backward
/// pass. Eight output channels share each patch row per pass: the short
/// dots overlap (hiding add latency) and the cols buffer streams
/// sequentially. Operand order inside each dot is swapped relative to the
/// oracle, which is bitwise-free (float multiply commutes).
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn dweight_sample_body(
    dy: &[f32],
    cols: &[f32],
    dw: &mut [f32],
    dyt: &mut [f32],
    out_c: usize,
    plen: usize,
    n_pos: usize,
    cols_n: usize,
    col_off: usize,
) {
    // Each 8-channel dy tile is reused across all `plen` patch rows, so
    // transposing it once lets the dots run 8-wide across the outputs
    // (bitwise-identical per output; see `dot_slices_8_transposed`).
    let transposed = n_pos.is_multiple_of(4) && crate::ops::dots8_transposed_fast();
    let mut oc0 = 0;
    while oc0 + 8 <= out_c {
        if transposed {
            for t in 0..8 {
                let dyrow = &dy[(oc0 + t) * n_pos..][..n_pos];
                for (j, &v) in dyrow.iter().enumerate() {
                    dyt[j * 8 + t] = v;
                }
            }
            for r in 0..plen {
                let colsrow = &cols[r * cols_n + col_off..][..n_pos];
                let dots = crate::ops::dot_slices_8_transposed(colsrow, &dyt[..n_pos * 8]);
                for (t, d) in dots.into_iter().enumerate() {
                    dw[(oc0 + t) * plen + r] += d;
                }
            }
        } else {
            let dyrows: [&[f32]; 8] = std::array::from_fn(|t| &dy[(oc0 + t) * n_pos..][..n_pos]);
            for r in 0..plen {
                let colsrow = &cols[r * cols_n + col_off..][..n_pos];
                let dots = crate::ops::dot_slices_many(colsrow, dyrows);
                for (t, d) in dots.into_iter().enumerate() {
                    dw[(oc0 + t) * plen + r] += d;
                }
            }
        }
        oc0 += 8;
    }
    for oc in oc0..out_c {
        let dyrow = &dy[oc * n_pos..(oc + 1) * n_pos];
        let dwrow = &mut dw[oc * plen..(oc + 1) * plen];
        for (r, dwv) in dwrow.iter_mut().enumerate() {
            *dwv += crate::ops::dot_slices(dyrow, &cols[r * cols_n + col_off..][..n_pos]);
        }
    }
}

simd_dispatch!(
    dweight_sample,
    dweight_sample_body,
    (
        dy: &[f32],
        cols: &[f32],
        dw: &mut [f32],
        dyt: &mut [f32],
        out_c: usize,
        plen: usize,
        n_pos: usize,
        cols_n: usize,
        col_off: usize
    )
);

/// Backward convolution.
///
/// Given upstream gradient `dout` (`[N, out_c, out_h, out_w]`), returns
/// `(dinput, dweight, dbias)` matching the forward argument shapes.
pub fn conv2d_backward(
    input: &Tensor,
    weight: &Tensor,
    dout: &Tensor,
    g: &ConvGeometry,
) -> (Tensor, Tensor, Tensor) {
    g.check_input(input);
    let n = input.shape().dim(0);
    let (oh, ow) = (g.out_h(), g.out_w());
    assert_eq!(
        dout.shape().dims(),
        &[n, g.out_c, oh, ow],
        "dout shape mismatch"
    );
    let n_pos = oh * ow;
    let img_len = g.in_c * g.in_h * g.in_w;
    let out_img_len = g.out_c * n_pos;
    let plen = g.patch_len();

    let mut dinput = Tensor::zeros(input.shape().clone());
    let mut dweight = Tensor::zeros(weight.shape().clone());
    let mut dbias = Tensor::zeros([g.out_c]);

    let mut cols = vec![0.0f32; plen * n_pos];
    let mut dcols = vec![0.0f32; plen * n_pos];
    let mut dw_local = vec![0.0f32; g.out_c * plen];

    for b in 0..n {
        let img = &input.data()[b * img_len..(b + 1) * img_len];
        let dy = &dout.data()[b * out_img_len..(b + 1) * out_img_len];

        // dbias: sum over spatial positions.
        for (oc, chunk) in dy.chunks(n_pos).enumerate() {
            dbias.data_mut()[oc] += chunk.iter().sum::<f32>();
        }

        // dweight += dy (out_c×n_pos) · colsᵀ (n_pos×plen)
        im2col_reference(img, g, &mut cols);
        for oc in 0..g.out_c {
            let dyrow = &dy[oc * n_pos..(oc + 1) * n_pos];
            let dwrow = &mut dw_local[oc * plen..(oc + 1) * plen];
            for (r, dwv) in dwrow.iter_mut().enumerate() {
                *dwv = crate::ops::dot_slices_reference(dyrow, &cols[r * n_pos..(r + 1) * n_pos]);
            }
        }
        for (acc, &v) in dweight.data_mut().iter_mut().zip(dw_local.iter()) {
            *acc += v;
        }

        // dcols = weightᵀ (plen×out_c) · dy (out_c×n_pos)
        dcols.fill(0.0);
        for oc in 0..g.out_c {
            let wrow = &weight.data()[oc * plen..(oc + 1) * plen];
            let dyrow = &dy[oc * n_pos..(oc + 1) * n_pos];
            for (r, &wv) in wrow.iter().enumerate() {
                if wv != 0.0 {
                    let drow = &mut dcols[r * n_pos..(r + 1) * n_pos];
                    for (dv, &dyv) in drow.iter_mut().zip(dyrow) {
                        *dv += wv * dyv;
                    }
                }
            }
        }
        let dimg = &mut dinput.data_mut()[b * img_len..(b + 1) * img_len];
        col2im_reference(&dcols, g, dimg);
    }
    (dinput, dweight, dbias)
}

/// Forward 2×2-style max pooling with stride = window.
///
/// Returns the pooled tensor and the flat argmax indices (into each input
/// image) used by [`maxpool2d_backward`].
pub fn maxpool2d_forward(input: &Tensor, window: usize) -> (Tensor, Vec<u32>) {
    let mut out = Tensor::zeros([0]);
    let mut arg = Vec::new();
    maxpool2d_forward_into(input, window, &mut out, &mut arg);
    (out, arg)
}

/// [`maxpool2d_forward`] into caller-owned storage; `out` and `arg` are
/// resized and fully overwritten.
pub fn maxpool2d_forward_into(input: &Tensor, window: usize, out: &mut Tensor, arg: &mut Vec<u32>) {
    assert_eq!(input.shape().rank(), 4, "pool input must be NCHW");
    let (n, c, h, w) = (
        input.shape().dim(0),
        input.shape().dim(1),
        input.shape().dim(2),
        input.shape().dim(3),
    );
    assert!(window > 0 && h >= window && w >= window, "bad pool window");
    let (oh, ow) = (h / window, w / window);
    out.resize([n, c, oh, ow]);
    arg.resize(n * c * oh * ow, 0);
    let id = input.data();
    let od = out.data_mut();
    let mut o = 0usize;
    if window == 2 {
        // The only window the model zoo uses: fully unrolled with the
        // generic loop's exact visit order ((0,0),(0,1),(1,0),(1,1)),
        // strict `>` and NEG_INFINITY start, so results — including the
        // NaN/-inf corner where nothing beats the initial best — are
        // identical by construction.
        for plane in 0..n * c {
            let base = plane * h * w;
            for oy in 0..oh {
                let r0 = base + (oy * 2) * w;
                let r1 = r0 + w;
                for ox in 0..ow {
                    let (i00, i10) = (r0 + ox * 2, r1 + ox * 2);
                    let mut best = f32::NEG_INFINITY;
                    let mut best_i = 0usize;
                    for idx in [i00, i00 + 1, i10, i10 + 1] {
                        if id[idx] > best {
                            best = id[idx];
                            best_i = idx;
                        }
                    }
                    od[o] = best;
                    arg[o] = best_i as u32;
                    o += 1;
                }
            }
        }
        return;
    }
    for b in 0..n {
        for ch in 0..c {
            let base = (b * c + ch) * h * w;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_i = 0usize;
                    for dy in 0..window {
                        for dx in 0..window {
                            let idx = base + (oy * window + dy) * w + (ox * window + dx);
                            if id[idx] > best {
                                best = id[idx];
                                best_i = idx;
                            }
                        }
                    }
                    od[o] = best;
                    arg[o] = best_i as u32;
                    o += 1;
                }
            }
        }
    }
}

/// Backward max pooling: routes each upstream gradient to the argmax cell.
pub fn maxpool2d_backward(input_shape: &crate::shape::Shape, dout: &Tensor, arg: &[u32]) -> Tensor {
    let mut dinput = Tensor::zeros([0]);
    maxpool2d_backward_into(input_shape, dout, arg, &mut dinput);
    dinput
}

/// [`maxpool2d_backward`] into caller-owned storage; `dinput` is resized
/// and fully overwritten.
pub fn maxpool2d_backward_into(
    input_shape: &crate::shape::Shape,
    dout: &Tensor,
    arg: &[u32],
    dinput: &mut Tensor,
) {
    assert_eq!(dout.len(), arg.len(), "argmax table length mismatch");
    dinput.resize(input_shape.clone());
    let dd = dinput.data_mut();
    dd.fill(0.0);
    for (g, &i) in dout.data().iter().zip(arg) {
        dd[i as usize] += g;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom(
        in_c: usize,
        out_c: usize,
        k: usize,
        s: usize,
        p: usize,
        h: usize,
        w: usize,
    ) -> ConvGeometry {
        ConvGeometry {
            in_c,
            out_c,
            kernel: k,
            stride: s,
            pad: p,
            in_h: h,
            in_w: w,
        }
    }

    #[test]
    fn output_dims() {
        let g = geom(1, 4, 3, 1, 1, 8, 8);
        assert_eq!((g.out_h(), g.out_w()), (8, 8));
        let g2 = geom(1, 4, 3, 2, 0, 9, 9);
        assert_eq!((g2.out_h(), g2.out_w()), (4, 4));
    }

    #[test]
    fn identity_kernel_reproduces_input() {
        // 1x1 kernel with weight 1, bias 0 => output == input.
        let g = geom(1, 1, 1, 1, 0, 4, 4);
        let x = Tensor::from_vec([1, 1, 4, 4], (0..16).map(|i| i as f32).collect());
        let w = Tensor::ones([1, 1]);
        let b = Tensor::zeros([1]);
        let y = conv2d_forward(&x, &w, &b, &g);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn known_3x3_sum_kernel() {
        // All-ones 3x3 kernel on an all-ones 3x3 input without padding: 9.
        let g = geom(1, 1, 3, 1, 0, 3, 3);
        let x = Tensor::ones([1, 1, 3, 3]);
        let w = Tensor::ones([1, 9]);
        let b = Tensor::zeros([1]);
        let y = conv2d_forward(&x, &w, &b, &g);
        assert_eq!(y.shape().dims(), &[1, 1, 1, 1]);
        assert_eq!(y.data()[0], 9.0);
    }

    #[test]
    fn bias_is_added_per_channel() {
        let g = geom(1, 2, 1, 1, 0, 2, 2);
        let x = Tensor::zeros([1, 1, 2, 2]);
        let w = Tensor::zeros([2, 1]);
        let b = Tensor::from_vec([2], vec![1.5, -2.0]);
        let y = conv2d_forward(&x, &w, &b, &g);
        assert_eq!(&y.data()[..4], &[1.5; 4]);
        assert_eq!(&y.data()[4..], &[-2.0; 4]);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random-ish x, y.
        let g = geom(2, 1, 3, 1, 1, 5, 5);
        let x: Vec<f32> = (0..50).map(|i| ((i * 7 % 11) as f32) - 5.0).collect();
        let ylen = g.patch_len() * g.out_positions();
        let y: Vec<f32> = (0..ylen).map(|i| ((i * 5 % 13) as f32) - 6.0).collect();
        let mut cols = vec![0.0; ylen];
        im2col(&x, &g, &mut cols);
        let lhs: f32 = cols.iter().zip(&y).map(|(a, b)| a * b).sum();
        let mut back = vec![0.0; 50];
        col2im(&y, &g, &mut back);
        let rhs: f32 = x.iter().zip(&back).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    /// Finite-difference check of the full conv backward pass.
    #[test]
    fn conv_gradients_match_finite_differences() {
        let g = geom(1, 2, 3, 1, 1, 4, 4);
        let x = Tensor::from_vec(
            [1, 1, 4, 4],
            (0..16).map(|i| (i as f32 * 0.37).sin()).collect(),
        );
        let w = Tensor::from_vec(
            [2, 9],
            (0..18).map(|i| (i as f32 * 0.21).cos() * 0.5).collect(),
        );
        let b = Tensor::from_vec([2], vec![0.1, -0.2]);

        // Loss = sum(conv(x)) so dout = ones.
        let y = conv2d_forward(&x, &w, &b, &g);
        let dout = Tensor::ones(y.shape().clone());
        let (dx, dw, db) = conv2d_backward(&x, &w, &dout, &g);

        let eps = 1e-3;
        let loss = |x: &Tensor, w: &Tensor, b: &Tensor| conv2d_forward(x, w, b, &g).sum();

        for i in [0usize, 5, 12] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let fd = (loss(&xp, &w, &b) - loss(&xm, &w, &b)) / (2.0 * eps);
            assert!(
                (fd - dx.data()[i]).abs() < 1e-2,
                "dx[{i}]: fd={fd} an={}",
                dx.data()[i]
            );
        }
        for i in [0usize, 7, 17] {
            let mut wp = w.clone();
            wp.data_mut()[i] += eps;
            let mut wm = w.clone();
            wm.data_mut()[i] -= eps;
            let fd = (loss(&x, &wp, &b) - loss(&x, &wm, &b)) / (2.0 * eps);
            assert!(
                (fd - dw.data()[i]).abs() < 1e-1,
                "dw[{i}]: fd={fd} an={}",
                dw.data()[i]
            );
        }
        for i in 0..2 {
            let mut bp = b.clone();
            bp.data_mut()[i] += eps;
            let mut bm = b.clone();
            bm.data_mut()[i] -= eps;
            let fd = (loss(&x, &w, &bp) - loss(&x, &w, &bm)) / (2.0 * eps);
            assert!(
                (fd - db.data()[i]).abs() < 1e-1,
                "db[{i}]: fd={fd} an={}",
                db.data()[i]
            );
        }
    }

    #[test]
    fn maxpool_forward_picks_max() {
        let x = Tensor::from_vec(
            [1, 1, 4, 4],
            vec![
                1., 2., 5., 4., //
                3., 0., 1., 1., //
                0., 0., 9., 8., //
                0., 7., 6., 5.,
            ],
        );
        let (y, arg) = maxpool2d_forward(&x, 2);
        assert_eq!(y.shape().dims(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[3., 5., 7., 9.]);
        assert_eq!(arg, vec![4, 2, 13, 10]);
    }

    #[test]
    fn maxpool_backward_routes_to_argmax() {
        let x = Tensor::from_vec([1, 1, 2, 2], vec![1., 9., 3., 2.]);
        let (y, arg) = maxpool2d_forward(&x, 2);
        assert_eq!(y.data(), &[9.]);
        let dout = Tensor::from_vec([1, 1, 1, 1], vec![5.0]);
        let dx = maxpool2d_backward(x.shape(), &dout, &arg);
        assert_eq!(dx.data(), &[0., 5., 0., 0.]);
    }
}
