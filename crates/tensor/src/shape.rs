//! Shapes and row-major strides for dense tensors.
//!
//! A [`Shape`] is an ordered list of dimension extents. All tensors in this
//! crate are stored contiguously in row-major (C) order, so strides are
//! derived rather than stored per-tensor.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The shape (dimension extents) of a dense tensor.
///
/// Supports rank 0 (scalar) through arbitrary rank, though the library's
/// kernels are specialised for ranks 1, 2 and 4 (vectors, matrices and
/// NCHW image batches).
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from dimension extents.
    pub fn new(dims: impl Into<Vec<usize>>) -> Self {
        Shape(dims.into())
    }

    /// The scalar shape (rank 0, one element).
    pub fn scalar() -> Self {
        Shape(Vec::new())
    }

    /// Number of dimensions.
    #[inline]
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Dimension extents as a slice.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Extent of dimension `i`. Panics if `i >= rank`.
    #[inline]
    pub fn dim(&self, i: usize) -> usize {
        self.0[i]
    }

    /// Total number of elements (product of extents; 1 for scalars).
    #[inline]
    pub fn len(&self) -> usize {
        self.0.iter().product()
    }

    /// True when the shape holds zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Row-major strides for this shape.
    ///
    /// `strides()[i]` is the linear-index step for advancing one position
    /// along dimension `i`.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.rank()];
        for i in (0..self.rank().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Linear (row-major) offset of a multi-dimensional index.
    ///
    /// Panics in debug builds when the index is out of bounds or has the
    /// wrong rank.
    #[inline]
    pub fn offset(&self, index: &[usize]) -> usize {
        debug_assert_eq!(index.len(), self.rank(), "index rank mismatch");
        let mut off = 0usize;
        let mut stride = 1usize;
        for i in (0..self.rank()).rev() {
            debug_assert!(index[i] < self.0[i], "index out of bounds");
            off += index[i] * stride;
            stride *= self.0[i];
        }
        off
    }

    /// Whether two shapes are broadcast-compatible in the restricted sense
    /// used by this crate: identical, or `other` is a suffix of `self`
    /// (e.g. a bias vector `[C]` broadcast over `[N, C]`).
    pub fn broadcasts_from(&self, other: &Shape) -> bool {
        if self == other {
            return true;
        }
        let r = other.rank();
        r <= self.rank() && self.0[self.rank() - r..] == other.0[..]
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.0)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(v: Vec<usize>) -> Self {
        Shape(v)
    }
}

impl From<&[usize]> for Shape {
    fn from(v: &[usize]) -> Self {
        Shape(v.to_vec())
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(v: [usize; N]) -> Self {
        Shape(v.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_shape_has_one_element() {
        let s = Shape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
    }

    #[test]
    fn len_is_product_of_dims() {
        assert_eq!(Shape::from([2, 3, 4]).len(), 24);
        assert_eq!(Shape::from([7]).len(), 7);
        assert_eq!(Shape::from([5, 0, 2]).len(), 0);
    }

    #[test]
    fn row_major_strides() {
        assert_eq!(Shape::from([2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::from([6]).strides(), vec![1]);
        assert_eq!(Shape::scalar().strides(), Vec::<usize>::new());
    }

    #[test]
    fn offset_matches_strides() {
        let s = Shape::from([2, 3, 4]);
        assert_eq!(s.offset(&[0, 0, 0]), 0);
        assert_eq!(s.offset(&[1, 2, 3]), 12 + 8 + 3);
        assert_eq!(s.offset(&[0, 1, 1]), 5);
    }

    #[test]
    fn suffix_broadcast_detection() {
        let m = Shape::from([8, 5]);
        assert!(m.broadcasts_from(&Shape::from([5])));
        assert!(m.broadcasts_from(&Shape::from([8, 5])));
        assert!(!m.broadcasts_from(&Shape::from([8])));
        assert!(!m.broadcasts_from(&Shape::from([2, 8, 5])));
    }

    #[test]
    fn equality_and_hash_by_dims() {
        assert_eq!(Shape::from([3, 2]), Shape::new(vec![3, 2]));
        assert_ne!(Shape::from([3, 2]), Shape::from([2, 3]));
    }
}
