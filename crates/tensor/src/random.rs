//! Seeded random tensor initialisation.
//!
//! Every stochastic component in the reproduction flows through explicit
//! [`rand::rngs::StdRng`] seeds so that experiments are bit-reproducible;
//! nothing in the workspace touches thread-local RNG state.

use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal};

/// Creates a deterministic RNG from a 64-bit seed.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives a child seed from a parent seed and a stream index.
///
/// SplitMix64-style mixing: distinct `(seed, stream)` pairs yield
/// decorrelated child streams, letting the simulator hand every device /
/// edge / dataset its own RNG without coordination.
pub fn derive_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Tensor with i.i.d. uniform entries in `[lo, hi)`.
pub fn uniform(
    shape: impl Into<crate::shape::Shape>,
    lo: f32,
    hi: f32,
    rng: &mut StdRng,
) -> Tensor {
    let shape = shape.into();
    let n = shape.len();
    let data = (0..n).map(|_| rng.gen_range(lo..hi)).collect();
    Tensor::from_vec(shape, data)
}

/// Tensor with i.i.d. normal entries `N(mean, std²)`.
pub fn normal(
    shape: impl Into<crate::shape::Shape>,
    mean: f32,
    std: f32,
    rng: &mut StdRng,
) -> Tensor {
    let shape = shape.into();
    let n = shape.len();
    let dist = Normal::new(mean, std).expect("std must be finite and non-negative");
    let data = (0..n).map(|_| dist.sample(rng)).collect();
    Tensor::from_vec(shape, data)
}

/// Xavier/Glorot uniform initialisation for a layer with the given fan-in
/// and fan-out (appropriate for tanh/linear layers).
pub fn xavier_uniform(
    shape: impl Into<crate::shape::Shape>,
    fan_in: usize,
    fan_out: usize,
    rng: &mut StdRng,
) -> Tensor {
    let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform(shape, -bound, bound, rng)
}

/// He/Kaiming normal initialisation (appropriate for ReLU layers).
pub fn he_normal(shape: impl Into<crate::shape::Shape>, fan_in: usize, rng: &mut StdRng) -> Tensor {
    let std = (2.0 / fan_in as f32).sqrt();
    normal(shape, 0.0, std, rng)
}

/// Fisher–Yates shuffled index permutation `0..n`.
pub fn permutation(n: usize, rng: &mut StdRng) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        idx.swap(i, j);
    }
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_reproducible() {
        let a = uniform([16], 0.0, 1.0, &mut rng(42));
        let b = uniform([16], 0.0, 1.0, &mut rng(42));
        assert_eq!(a, b);
        let c = uniform([16], 0.0, 1.0, &mut rng(43));
        assert_ne!(a, c);
    }

    #[test]
    fn derive_seed_decorrelates_streams() {
        let s = 1234u64;
        let children: Vec<u64> = (0..8).map(|i| derive_seed(s, i)).collect();
        let mut sorted = children.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 8, "child seeds must be distinct");
        assert_ne!(derive_seed(s, 0), derive_seed(s + 1, 0));
    }

    #[test]
    fn uniform_respects_bounds() {
        let t = uniform([1000], -2.0, 3.0, &mut rng(7));
        assert!(t.data().iter().all(|&x| (-2.0..3.0).contains(&x)));
    }

    #[test]
    fn normal_moments_roughly_match() {
        let t = normal([10_000], 1.0, 2.0, &mut rng(11));
        let mean = t.mean();
        let var = t
            .data()
            .iter()
            .map(|x| (x - mean) * (x - mean))
            .sum::<f32>()
            / t.len() as f32;
        assert!((mean - 1.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn xavier_bound_scales_with_fans() {
        let t = xavier_uniform([1000], 100, 100, &mut rng(3));
        let bound = (6.0f32 / 200.0).sqrt();
        assert!(t.data().iter().all(|&x| x.abs() <= bound));
    }

    #[test]
    fn he_normal_std_scales_with_fan_in() {
        let t = he_normal([20_000], 50, &mut rng(5));
        let std = (t.data().iter().map(|x| x * x).sum::<f32>() / t.len() as f32).sqrt();
        let expected = (2.0f32 / 50.0).sqrt();
        assert!((std - expected).abs() < 0.02, "std {std} vs {expected}");
    }

    #[test]
    fn permutation_is_a_bijection() {
        let p = permutation(100, &mut rng(9));
        let mut seen = [false; 100];
        for &i in &p {
            assert!(!seen[i]);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }
}
