//! Axis reductions and row-wise softmax utilities for rank-2 tensors.

use crate::tensor::Tensor;

/// Sums a `[N, C]` matrix over axis 0, producing `[C]` (used for bias
/// gradients).
pub fn sum_axis0(t: &Tensor) -> Tensor {
    assert_eq!(t.shape().rank(), 2, "sum_axis0 requires a matrix");
    let (n, c) = (t.shape().dim(0), t.shape().dim(1));
    let mut out = Tensor::zeros([c]);
    let od = out.data_mut();
    for i in 0..n {
        for (o, &v) in od.iter_mut().zip(t.row(i)) {
            *o += v;
        }
    }
    out
}

/// Sums a `[N, C]` matrix over axis 1, producing `[N]`.
pub fn sum_axis1(t: &Tensor) -> Tensor {
    assert_eq!(t.shape().rank(), 2, "sum_axis1 requires a matrix");
    let n = t.shape().dim(0);
    let data = (0..n).map(|i| t.row(i).iter().sum()).collect();
    Tensor::from_vec([n], data)
}

/// Row-wise numerically-stable softmax of a `[N, C]` logit matrix.
pub fn softmax_rows(t: &Tensor) -> Tensor {
    assert_eq!(t.shape().rank(), 2, "softmax_rows requires a matrix");
    let mut out = t.clone();
    for i in 0..t.shape().dim(0) {
        softmax_inplace(out.row_mut(i));
    }
    out
}

/// In-place numerically-stable softmax of one logit row.
pub fn softmax_inplace(row: &mut [f32]) {
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for v in row.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    // sum >= 1 because the max logit maps to exp(0) = 1.
    for v in row.iter_mut() {
        *v /= sum;
    }
}

/// Row-wise log-sum-exp of a `[N, C]` matrix, producing `[N]`.
pub fn logsumexp_rows(t: &Tensor) -> Tensor {
    assert_eq!(t.shape().rank(), 2, "logsumexp_rows requires a matrix");
    let n = t.shape().dim(0);
    let data = (0..n)
        .map(|i| {
            let row = t.row(i);
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            max + row.iter().map(|&v| (v - max).exp()).sum::<f32>().ln()
        })
        .collect();
    Tensor::from_vec([n], data)
}

/// Row-wise argmax of a `[N, C]` matrix — predicted class labels.
pub fn argmax_rows(t: &Tensor) -> Vec<usize> {
    assert_eq!(t.shape().rank(), 2, "argmax_rows requires a matrix");
    (0..t.shape().dim(0))
        .map(|i| {
            let row = t.row(i);
            let mut best = 0usize;
            for (j, &v) in row.iter().enumerate().skip(1) {
                if v > row[best] {
                    best = j;
                }
            }
            best
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axis_sums() {
        let t = Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(sum_axis0(&t).data(), &[5., 7., 9.]);
        assert_eq!(sum_axis1(&t).data(), &[6., 15.]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let t = Tensor::from_vec([2, 3], vec![1., 2., 3., -1., 0., 1.]);
        let s = softmax_rows(&t);
        for i in 0..2 {
            let sum: f32 = s.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
            assert!(s.row(i).iter().all(|&p| p > 0.0));
        }
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let a = Tensor::from_vec([1, 3], vec![1., 2., 3.]);
        let b = Tensor::from_vec([1, 3], vec![1001., 1002., 1003.]);
        let (sa, sb) = (softmax_rows(&a), softmax_rows(&b));
        for (x, y) in sa.data().iter().zip(sb.data()) {
            assert!((x - y).abs() < 1e-6);
        }
        assert!(sb.all_finite());
    }

    #[test]
    fn logsumexp_matches_naive_on_moderate_values() {
        let t = Tensor::from_vec([1, 4], vec![0.5, -1.0, 2.0, 0.0]);
        let naive = t.row(0).iter().map(|v| v.exp()).sum::<f32>().ln();
        assert!((logsumexp_rows(&t).data()[0] - naive).abs() < 1e-5);
    }

    #[test]
    fn argmax_rows_picks_per_row() {
        let t = Tensor::from_vec([2, 3], vec![1., 9., 2., 7., 0., 3.]);
        assert_eq!(argmax_rows(&t), vec![1, 0]);
    }
}
