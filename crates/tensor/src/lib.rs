//! # middle-tensor
//!
//! Dense `f32` tensor substrate for the MIDDLE (ICPP 2023) reproduction.
//!
//! The paper's evaluation trains small CNNs with a deep-learning framework;
//! no mature equivalent exists in Rust, so this crate provides the minimal
//! but complete numerical kernel set the training stack needs:
//!
//! * [`Tensor`] — owned, contiguous, row-major storage ([`tensor`]);
//! * elementwise / broadcast arithmetic, convex blends and cosine
//!   similarity ([`ops`]) — the primitives of federated aggregation;
//! * blocked, Rayon-parallel matrix multiplication ([`matmul`]);
//! * im2col 2-D convolution and max pooling with exact adjoints ([`conv`]);
//! * seeded random initialisation with decorrelated child streams
//!   ([`random`]);
//! * axis reductions and numerically-stable softmax ([`reduce`]).
//!
//! Everything is deterministic given a seed, and every kernel is covered by
//! unit tests (including finite-difference gradient checks) plus
//! property-based tests in `tests/`.

pub mod conv;
pub mod matmul;
pub mod ops;
pub mod random;
pub mod reduce;
pub mod shape;
pub mod tensor;

pub use shape::Shape;
pub use tensor::Tensor;
