//! Property-based tests for the tensor substrate: algebraic invariants,
//! plus bitwise equivalence of the blocked/batched training kernels
//! against their straightforward oracles.

use middle_tensor::conv::{
    col2im, conv2d_backward, conv2d_backward_into, conv2d_forward, conv2d_forward_into, im2col,
    ConvGeometry, ConvScratch,
};
use middle_tensor::matmul::{matmul, matmul_at, matmul_bt, matmul_into, matmul_into_reference};
use middle_tensor::ops;
use middle_tensor::random::{rng, uniform};
use middle_tensor::reduce;
use middle_tensor::Tensor;
use proptest::prelude::*;

fn finite_vec(len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-100.0f32..100.0, len)
}

fn tensor1(len: usize) -> impl Strategy<Value = Tensor> {
    finite_vec(len).prop_map(move |v| Tensor::from_vec([len], v))
}

/// Deterministic values in [-1, 1] with exact zeros sprinkled in — the
/// zeros exercise the reference kernel's `av != 0.0` skip, which the
/// blocked kernel intentionally drops (adding a ±0.0 product to a finite
/// accumulator is a bitwise no-op).
fn mixed_vals(len: usize, seed: u64) -> Vec<f32> {
    let mut v = uniform([len.max(1)], -1.0, 1.0, &mut rng(seed))
        .data()
        .to_vec();
    v.truncate(len);
    for (i, x) in v.iter_mut().enumerate() {
        if i % 5 == 3 {
            *x = 0.0;
        }
    }
    v
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.data().iter().map(|v| v.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn add_commutes(a in tensor1(17), b in tensor1(17)) {
        prop_assert_eq!(ops::add(&a, &b), ops::add(&b, &a));
    }

    #[test]
    fn sub_then_add_roundtrips(a in tensor1(9), b in tensor1(9)) {
        let c = ops::add(&ops::sub(&a, &b), &b);
        for (x, y) in c.data().iter().zip(a.data()) {
            prop_assert!((x - y).abs() <= 1e-3 * (1.0 + y.abs()));
        }
    }

    #[test]
    fn lerp_stays_within_envelope(a in tensor1(8), b in tensor1(8), alpha in 0.0f32..=1.0) {
        let c = ops::lerp(&a, &b, alpha);
        for ((&x, &y), &z) in a.data().iter().zip(b.data()).zip(c.data()) {
            let (lo, hi) = if x < y { (x, y) } else { (y, x) };
            prop_assert!(z >= lo - 1e-4 && z <= hi + 1e-4);
        }
    }

    #[test]
    fn cosine_bounded_and_symmetric(a in tensor1(12), b in tensor1(12)) {
        let s = ops::cosine_similarity(&a, &b);
        prop_assert!((-1.0..=1.0).contains(&s));
        let s2 = ops::cosine_similarity(&b, &a);
        prop_assert!((s - s2).abs() < 1e-5);
    }

    #[test]
    fn cosine_self_is_one_for_nonzero(a in tensor1(6)) {
        prop_assume!(a.norm() > 1e-3);
        prop_assert!((ops::cosine_similarity(&a, &a) - 1.0).abs() < 1e-4);
    }

    #[test]
    fn weighted_mean_of_identical_is_identity(a in tensor1(10), w1 in 0.1f32..10.0, w2 in 0.1f32..10.0) {
        let m = ops::weighted_mean(&[&a, &a], &[w1, w2]);
        for (x, y) in m.data().iter().zip(a.data()) {
            prop_assert!((x - y).abs() <= 1e-3 * (1.0 + y.abs()));
        }
    }

    #[test]
    fn weighted_mean_within_bounds(a in tensor1(7), b in tensor1(7), w in 0.01f32..0.99) {
        let m = ops::weighted_mean(&[&a, &b], &[w, 1.0 - w]);
        for ((&x, &y), &z) in a.data().iter().zip(b.data()).zip(m.data()) {
            let (lo, hi) = if x < y { (x, y) } else { (y, x) };
            prop_assert!(z >= lo - 1e-3 && z <= hi + 1e-3);
        }
    }

    #[test]
    fn matmul_distributes_over_addition(
        a in finite_vec(6), b in finite_vec(8), c in finite_vec(8)
    ) {
        let a = Tensor::from_vec([3, 2], a);
        let b = Tensor::from_vec([2, 4], b);
        let c = Tensor::from_vec([2, 4], c);
        let lhs = matmul(&a, &ops::add(&b, &c));
        let rhs = ops::add(&matmul(&a, &b), &matmul(&a, &c));
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() <= 1e-2 * (1.0 + y.abs()));
        }
    }

    #[test]
    fn matmul_transpose_identities(a in finite_vec(12), b in finite_vec(20)) {
        let a = Tensor::from_vec([3, 4], a);
        let b = Tensor::from_vec([5, 4], b);
        // a (3x4) · bᵀ (4x5)
        let fused = matmul_bt(&a, &b);
        let explicit = matmul(&a, &b.transpose());
        for (x, y) in fused.data().iter().zip(explicit.data()) {
            prop_assert!((x - y).abs() <= 1e-2 * (1.0 + y.abs()));
        }
        // aᵀ (4x3) · a — via matmul_at with both operands rank-2 [3,4]x[3,4]→[4,4]
        let at = matmul_at(&a, &a);
        let explicit_at = matmul(&a.transpose(), &a);
        for (x, y) in at.data().iter().zip(explicit_at.data()) {
            prop_assert!((x - y).abs() <= 1e-2 * (1.0 + y.abs()));
        }
    }

    #[test]
    fn transpose_is_involution(v in finite_vec(24)) {
        let t = Tensor::from_vec([4, 6], v);
        prop_assert_eq!(t.transpose().transpose(), t);
    }

    #[test]
    fn softmax_rows_are_distributions(v in finite_vec(15)) {
        let t = Tensor::from_vec([3, 5], v);
        let s = reduce::softmax_rows(&t);
        for i in 0..3 {
            let sum: f32 = s.row(i).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(s.row(i).iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn softmax_preserves_argmax(v in finite_vec(5)) {
        let t = Tensor::from_vec([1, 5], v.clone());
        let s = reduce::softmax_rows(&t);
        prop_assert_eq!(reduce::argmax_rows(&t), reduce::argmax_rows(&s));
    }

    #[test]
    fn im2col_col2im_adjoint(x in finite_vec(2 * 5 * 5), y_seed in 0u64..1000) {
        let g = ConvGeometry {
            in_c: 2, out_c: 1, kernel: 3, stride: 1, pad: 1, in_h: 5, in_w: 5,
        };
        let ylen = g.patch_len() * g.out_positions();
        // Deterministic pseudo-random y from the seed.
        let y: Vec<f32> = (0..ylen)
            .map(|i| (((i as u64).wrapping_mul(y_seed + 1) % 97) as f32) - 48.0)
            .collect();
        let mut cols = vec![0.0; ylen];
        im2col(&x, &g, &mut cols);
        let lhs: f64 = cols.iter().zip(&y).map(|(a, b)| (*a as f64) * (*b as f64)).sum();
        let mut back = vec![0.0; x.len()];
        col2im(&y, &g, &mut back);
        let rhs: f64 = x.iter().zip(&back).map(|(a, b)| (*a as f64) * (*b as f64)).sum();
        prop_assert!((lhs - rhs).abs() <= 1e-2 * (1.0 + rhs.abs()));
    }

    #[test]
    fn norm_triangle_inequality(a in tensor1(11), b in tensor1(11)) {
        let sum = ops::add(&a, &b);
        prop_assert!(sum.norm() <= a.norm() + b.norm() + 1e-3);
    }

    /// The cache-blocked GEMM microkernel is bitwise-identical to the
    /// pre-blocking reference kernel across odd shapes: column counts
    /// below one tile, non-multiples of the tile width, and inputs
    /// containing exact zeros (the reference's skipped terms).
    #[test]
    fn blocked_matmul_matches_reference_bitwise(
        m in 1usize..8,
        k in 1usize..24,
        n in 1usize..40,
        seed in 0u64..1000,
    ) {
        let a = mixed_vals(m * k, seed);
        let b = mixed_vals(k * n, seed ^ 0x5EED);
        let mut fast = vec![7.0f32; m * n]; // poisoned: must be overwritten
        let mut refc = vec![0.0f32; m * n];
        matmul_into(&a, &b, &mut fast, m, k, n);
        matmul_into_reference(&a, &b, &mut refc, m, k, n);
        for (x, y) in fast.iter().zip(&refc) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    /// Batched (whole-batch im2col + one GEMM) convolution forward and
    /// backward are bitwise-identical to the per-sample oracle kernels,
    /// including the input/weight/bias gradients.
    #[test]
    fn batched_conv_matches_per_sample_oracle_bitwise(
        n in 1usize..4,
        seed in 0u64..1000,
        stride in 1usize..3,
    ) {
        let g = ConvGeometry {
            in_c: 2, out_c: 3, kernel: 3, stride, pad: 1, in_h: 5, in_w: 5,
        };
        let input = Tensor::from_vec(
            [n, g.in_c, g.in_h, g.in_w],
            mixed_vals(n * g.in_c * g.in_h * g.in_w, seed),
        );
        let weight = Tensor::from_vec(
            [g.out_c, g.patch_len()],
            mixed_vals(g.out_c * g.patch_len(), seed ^ 0xAB),
        );
        let bias = Tensor::from_vec([g.out_c], mixed_vals(g.out_c, seed ^ 0xCD));
        let dout = Tensor::from_vec(
            [n, g.out_c, g.out_h(), g.out_w()],
            mixed_vals(n * g.out_c * g.out_h() * g.out_w(), seed ^ 0xEF),
        );

        let oracle_out = conv2d_forward(&input, &weight, &bias, &g);
        let (odi, odw, odb) = conv2d_backward(&input, &weight, &dout, &g);

        let mut scratch = ConvScratch::default();
        let mut out = Tensor::zeros([0]);
        let mut dw = Tensor::zeros([0]);
        let mut db = Tensor::zeros([0]);
        let mut di = Tensor::zeros([0]);
        conv2d_forward_into(&input, &weight, &bias, &g, &mut scratch, &mut out);
        conv2d_backward_into(&input, &weight, &dout, &g, &mut scratch, &mut dw, &mut db, Some(&mut di));

        prop_assert_eq!(out.shape(), oracle_out.shape());
        prop_assert_eq!(bits(&out), bits(&oracle_out));
        prop_assert_eq!(bits(&dw), bits(&odw));
        prop_assert_eq!(bits(&db), bits(&odb));
        prop_assert_eq!(di.shape(), odi.shape());
        prop_assert_eq!(bits(&di), bits(&odi));
    }

    /// Reusing one `ConvScratch` across batches of different sizes
    /// (growing and shrinking the workspace) is bitwise-identical to
    /// running each batch with a fresh scratch.
    #[test]
    fn conv_scratch_reuse_matches_fresh_bitwise(seed in 0u64..1000) {
        let g = ConvGeometry {
            in_c: 1, out_c: 2, kernel: 3, stride: 1, pad: 1, in_h: 4, in_w: 4,
        };
        let weight = Tensor::from_vec(
            [g.out_c, g.patch_len()],
            mixed_vals(g.out_c * g.patch_len(), seed ^ 0x11),
        );
        let bias = Tensor::from_vec([g.out_c], mixed_vals(g.out_c, seed ^ 0x22));

        let mut reused = ConvScratch::default();
        let mut out_r = Tensor::zeros([0]);
        let mut dw_r = Tensor::zeros([0]);
        let mut db_r = Tensor::zeros([0]);
        let mut di_r = Tensor::zeros([0]);
        for (i, n) in [3usize, 1, 2].into_iter().enumerate() {
            let input = Tensor::from_vec(
                [n, g.in_c, g.in_h, g.in_w],
                mixed_vals(n * g.in_c * g.in_h * g.in_w, seed + i as u64),
            );
            let dout = Tensor::from_vec(
                [n, g.out_c, g.out_h(), g.out_w()],
                mixed_vals(n * g.out_c * g.out_h() * g.out_w(), seed + 100 + i as u64),
            );
            conv2d_forward_into(&input, &weight, &bias, &g, &mut reused, &mut out_r);
            conv2d_backward_into(
                &input, &weight, &dout, &g, &mut reused, &mut dw_r, &mut db_r, Some(&mut di_r),
            );

            let mut fresh = ConvScratch::default();
            let mut out_f = Tensor::zeros([0]);
            let mut dw_f = Tensor::zeros([0]);
            let mut db_f = Tensor::zeros([0]);
            let mut di_f = Tensor::zeros([0]);
            conv2d_forward_into(&input, &weight, &bias, &g, &mut fresh, &mut out_f);
            conv2d_backward_into(
                &input, &weight, &dout, &g, &mut fresh, &mut dw_f, &mut db_f, Some(&mut di_f),
            );

            prop_assert_eq!(bits(&out_r), bits(&out_f));
            prop_assert_eq!(bits(&dw_r), bits(&dw_f));
            prop_assert_eq!(bits(&db_r), bits(&db_f));
            prop_assert_eq!(bits(&di_r), bits(&di_f));
        }
    }

    #[test]
    fn axpy_matches_scale_add(a in tensor1(13), b in tensor1(13), s in -5.0f32..5.0) {
        let mut via_axpy = a.clone();
        ops::axpy(&mut via_axpy, s, &b);
        let via_ops = ops::add(&a, &ops::scale(&b, s));
        for (x, y) in via_axpy.data().iter().zip(via_ops.data()) {
            prop_assert!((x - y).abs() <= 1e-3 * (1.0 + y.abs()));
        }
    }
}
