//! Flat parameter-vector view of a model.
//!
//! Federated aggregation treats a whole model as one vector `w ∈ R^d`:
//! cosine similarity (paper Eq. 8), convex blends (Eq. 9), accumulated
//! updates `Δw = w_m − w_c` (Eq. 10) and FedAvg means (Eqs. 6–7) all
//! operate on this view. Functions here copy between a [`Sequential`] and
//! a `Vec<f32>` in canonical parameter order.

use crate::model::Sequential;
use middle_tensor::ops::{cosine_similarity_slices, dot_slices};

/// Copies all parameters of `model` into a new flat vector.
pub fn flatten(model: &Sequential) -> Vec<f32> {
    let mut out = Vec::with_capacity(model.param_count());
    for p in model.params() {
        out.extend_from_slice(p.value.data());
    }
    out
}

/// Copies all parameters of `model` into `buf`, reusing its allocation.
pub fn flatten_into(model: &Sequential, buf: &mut Vec<f32>) {
    buf.clear();
    buf.reserve(model.param_count());
    for p in model.params() {
        buf.extend_from_slice(p.value.data());
    }
}

/// Writes a flat vector back into `model`'s parameters.
///
/// # Panics
/// Panics when `flat.len() != model.param_count()`.
pub fn unflatten(model: &mut Sequential, flat: &[f32]) {
    assert_eq!(
        flat.len(),
        model.param_count(),
        "flat parameter vector length mismatch"
    );
    let mut off = 0usize;
    for p in model.params_mut() {
        let n = p.len();
        p.value.data_mut().copy_from_slice(&flat[off..off + n]);
        off += n;
    }
}

/// Cosine similarity between two models' flat parameter vectors.
///
/// # Panics
/// Panics when the models have different parameter counts.
pub fn model_cosine(a: &Sequential, b: &Sequential) -> f32 {
    let (fa, fb) = (flatten(a), flatten(b));
    assert_eq!(fa.len(), fb.len(), "model architecture mismatch");
    cosine_similarity_slices(&fa, &fb)
}

/// Squared L2 distance between two models' parameters.
pub fn model_distance2(a: &Sequential, b: &Sequential) -> f32 {
    let (fa, fb) = (flatten(a), flatten(b));
    assert_eq!(fa.len(), fb.len(), "model architecture mismatch");
    fa.iter().zip(&fb).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// L2 norm of the model's flat parameter vector.
pub fn model_norm(model: &Sequential) -> f32 {
    let f = flatten(model);
    dot_slices(&f, &f).sqrt()
}

/// Convex blend `alpha * a + (1 - alpha) * b` written into a fresh clone
/// of `a` (on-device model aggregation's arithmetic core).
///
/// # Panics
/// Panics when the architectures differ or `alpha` is outside `[0, 1]`.
pub fn blend(a: &Sequential, b: &Sequential, alpha: f32) -> Sequential {
    assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0, 1]");
    let (fa, fb) = (flatten(a), flatten(b));
    assert_eq!(fa.len(), fb.len(), "model architecture mismatch");
    let blended: Vec<f32> = fa
        .iter()
        .zip(&fb)
        .map(|(&x, &y)| alpha * x + (1.0 - alpha) * y)
        .collect();
    let mut out = a.clone();
    unflatten(&mut out, &blended);
    out
}

/// Weighted FedAvg of several models' parameters (weights are raw sample
/// counts; normalised internally), written into a clone of the first.
///
/// # Panics
/// Panics when `models` is empty, architectures differ, or weights are not
/// positive-summing non-negative finite values.
pub fn weighted_average(models: &[&Sequential], weights: &[f32]) -> Sequential {
    assert!(!models.is_empty(), "weighted_average of no models");
    assert_eq!(models.len(), weights.len(), "weights length mismatch");
    let total: f32 = weights.iter().sum();
    assert!(
        total > 0.0 && weights.iter().all(|w| w.is_finite() && *w >= 0.0),
        "weights must be non-negative with positive sum"
    );
    let d = models[0].param_count();
    let mut acc = vec![0.0f32; d];
    let mut buf = Vec::with_capacity(d);
    for (m, &w) in models.iter().zip(weights) {
        flatten_into(m, &mut buf);
        assert_eq!(buf.len(), d, "model architecture mismatch");
        let s = w / total;
        for (a, &x) in acc.iter_mut().zip(&buf) {
            *a += s * x;
        }
    }
    let mut out = models[0].clone();
    unflatten(&mut out, &acc);
    out
}

/// Elementwise difference `a − b` of two models' flat parameters
/// (the accumulated update `Δw_m = w_m − w_c` of Eq. 10).
pub fn delta(a: &Sequential, b: &Sequential) -> Vec<f32> {
    let (fa, fb) = (flatten(a), flatten(b));
    assert_eq!(fa.len(), fb.len(), "model architecture mismatch");
    fa.iter().zip(&fb).map(|(x, y)| x - y).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Relu};
    use middle_tensor::random::rng;

    fn model(seed: u64) -> Sequential {
        let mut r = rng(seed);
        Sequential::new()
            .push(Dense::new(3, 4, &mut r))
            .push(Relu::new())
            .push(Dense::new(4, 2, &mut r))
    }

    #[test]
    fn flatten_unflatten_roundtrip() {
        let mut m = model(1);
        let flat = flatten(&m);
        assert_eq!(flat.len(), m.param_count());
        let mut doubled = flat.clone();
        for x in &mut doubled {
            *x *= 2.0;
        }
        unflatten(&mut m, &doubled);
        assert_eq!(flatten(&m), doubled);
    }

    #[test]
    fn model_cosine_self_is_one() {
        let m = model(2);
        assert!((model_cosine(&m, &m) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn blend_endpoints() {
        let a = model(3);
        let b = model(4);
        assert_eq!(flatten(&blend(&a, &b, 1.0)), flatten(&a));
        assert_eq!(flatten(&blend(&a, &b, 0.0)), flatten(&b));
        let half = blend(&a, &b, 0.5);
        let (fa, fb, fh) = (flatten(&a), flatten(&b), flatten(&half));
        for ((x, y), z) in fa.iter().zip(&fb).zip(&fh) {
            assert!((0.5 * (x + y) - z).abs() < 1e-6);
        }
    }

    #[test]
    fn weighted_average_of_clones_is_identity() {
        let a = model(5);
        let avg = weighted_average(&[&a, &a, &a], &[1.0, 2.0, 3.0]);
        let (fa, fv) = (flatten(&a), flatten(&avg));
        for (x, y) in fa.iter().zip(&fv) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn weighted_average_respects_weights() {
        let mut a = model(6);
        let mut b = model(6);
        let d = a.param_count();
        unflatten(&mut a, &vec![0.0; d]);
        unflatten(&mut b, &vec![4.0; d]);
        let avg = weighted_average(&[&a, &b], &[3.0, 1.0]);
        for &x in &flatten(&avg) {
            assert!((x - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn delta_is_antisymmetric() {
        let a = model(7);
        let b = model(8);
        let dab = delta(&a, &b);
        let dba = delta(&b, &a);
        for (x, y) in dab.iter().zip(&dba) {
            assert!((x + y).abs() < 1e-6);
        }
    }

    #[test]
    fn model_distance_zero_iff_same_params() {
        let a = model(9);
        assert_eq!(model_distance2(&a, &a), 0.0);
        let b = model(10);
        assert!(model_distance2(&a, &b) > 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn unflatten_wrong_length_panics() {
        let mut m = model(11);
        unflatten(&mut m, &[1.0, 2.0]);
    }
}
