//! Flat parameter-vector view of a model.
//!
//! Federated aggregation treats a whole model as one vector `w ∈ R^d`:
//! cosine similarity (paper Eq. 8), convex blends (Eq. 9), accumulated
//! updates `Δw = w_m − w_c` (Eq. 10) and FedAvg means (Eqs. 6–7) all
//! operate on this view. Functions here copy between a [`Sequential`] and
//! a `Vec<f32>` in canonical parameter order.
//!
//! Two families of primitives coexist:
//!
//! * *allocating* reference functions ([`flatten`], [`blend`],
//!   [`weighted_average`], [`delta`]) — one fresh vector / model clone
//!   per call, kept as the numerical oracle for equivalence tests;
//! * *in-place* hot-path primitives ([`copy_params_from`],
//!   [`zero_params`], [`axpy`], [`blend_into`],
//!   [`weighted_average_into`]) plus the cached [`FlatView`] — zero
//!   allocations per call, element-for-element bit-identical to the
//!   reference family (same accumulation order).

use crate::model::Sequential;
use middle_tensor::ops::{cosine_similarity_slices, dot_slices};

/// A cached flat view of a model's parameters: the flattened vector plus
/// its squared L2 norm, with dirty tracking.
///
/// Devices, edges and the cloud each own one of these so hot paths
/// (selection scoring, on-device aggregation, broadcast) read parameter
/// vectors without re-flattening. The owner must call
/// [`FlatView::invalidate`] whenever the underlying model's parameters
/// change and [`FlatView::refresh`] (or [`FlatView::set_from_slice`])
/// before the view is next read; [`FlatView::flat`] /
/// [`FlatView::norm_sq`] panic on a dirty view so a missed invalidation
/// fails loudly instead of silently scoring stale parameters.
#[derive(Clone, Debug, Default)]
pub struct FlatView {
    buf: Vec<f32>,
    norm_sq: f32,
    dirty: bool,
}

impl FlatView {
    /// An empty, dirty view; call [`FlatView::refresh`] before use.
    pub fn new() -> Self {
        FlatView {
            buf: Vec::new(),
            norm_sq: 0.0,
            dirty: true,
        }
    }

    /// A fresh view of `model`'s current parameters.
    pub fn of(model: &Sequential) -> Self {
        let mut v = FlatView::new();
        v.refresh(model);
        v
    }

    /// Marks the view stale (the model changed under it).
    pub fn invalidate(&mut self) {
        self.dirty = true;
    }

    /// True when the view no longer reflects the model.
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// Recomputes the view from `model`, reusing the buffer allocation.
    pub fn refresh(&mut self, model: &Sequential) {
        flatten_into(model, &mut self.buf);
        self.norm_sq = dot_slices(&self.buf, &self.buf);
        self.dirty = false;
    }

    /// Overwrites the view with an already-flat vector and its known
    /// squared norm (broadcast fast path: the sender's cached view is
    /// copied verbatim, no recompute).
    pub fn set_from_slice(&mut self, flat: &[f32], norm_sq: f32) {
        self.buf.clear();
        self.buf.extend_from_slice(flat);
        self.norm_sq = norm_sq;
        self.dirty = false;
    }

    /// The cached flat parameter vector.
    ///
    /// # Panics
    /// Panics when the view is dirty.
    pub fn flat(&self) -> &[f32] {
        assert!(!self.dirty, "FlatView read while dirty");
        &self.buf
    }

    /// The cached squared L2 norm `‖w‖²`.
    ///
    /// # Panics
    /// Panics when the view is dirty.
    pub fn norm_sq(&self) -> f32 {
        assert!(!self.dirty, "FlatView read while dirty");
        self.norm_sq
    }

    /// Cached vector length (valid even while dirty).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no parameters have been cached yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Copies all parameters of `model` into a new flat vector.
pub fn flatten(model: &Sequential) -> Vec<f32> {
    let mut out = Vec::with_capacity(model.param_count());
    for p in model.params() {
        out.extend_from_slice(p.value.data());
    }
    out
}

/// Copies all parameters of `model` into `buf`, reusing its allocation.
pub fn flatten_into(model: &Sequential, buf: &mut Vec<f32>) {
    buf.clear();
    buf.reserve(model.param_count());
    for p in model.params() {
        buf.extend_from_slice(p.value.data());
    }
}

/// Writes a flat vector back into `model`'s parameters.
///
/// # Panics
/// Panics when `flat.len() != model.param_count()`.
pub fn unflatten(model: &mut Sequential, flat: &[f32]) {
    assert_eq!(
        flat.len(),
        model.param_count(),
        "flat parameter vector length mismatch"
    );
    let mut off = 0usize;
    for p in model.params_mut() {
        let n = p.len();
        p.value.data_mut().copy_from_slice(&flat[off..off + n]);
        off += n;
    }
}

/// Cosine similarity between two models' flat parameter vectors.
///
/// # Panics
/// Panics when the models have different parameter counts.
pub fn model_cosine(a: &Sequential, b: &Sequential) -> f32 {
    let (fa, fb) = (flatten(a), flatten(b));
    assert_eq!(fa.len(), fb.len(), "model architecture mismatch");
    cosine_similarity_slices(&fa, &fb)
}

/// Squared L2 distance between two models' parameters.
pub fn model_distance2(a: &Sequential, b: &Sequential) -> f32 {
    let (fa, fb) = (flatten(a), flatten(b));
    assert_eq!(fa.len(), fb.len(), "model architecture mismatch");
    fa.iter().zip(&fb).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// L2 norm of the model's flat parameter vector.
pub fn model_norm(model: &Sequential) -> f32 {
    let f = flatten(model);
    dot_slices(&f, &f).sqrt()
}

/// Convex blend `alpha * a + (1 - alpha) * b` written into a fresh clone
/// of `a` (on-device model aggregation's arithmetic core).
///
/// # Panics
/// Panics when the architectures differ or `alpha` is outside `[0, 1]`.
pub fn blend(a: &Sequential, b: &Sequential, alpha: f32) -> Sequential {
    assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0, 1]");
    let (fa, fb) = (flatten(a), flatten(b));
    assert_eq!(fa.len(), fb.len(), "model architecture mismatch");
    let blended: Vec<f32> = fa
        .iter()
        .zip(&fb)
        .map(|(&x, &y)| alpha * x + (1.0 - alpha) * y)
        .collect();
    let mut out = a.clone();
    unflatten(&mut out, &blended);
    out
}

/// Weighted FedAvg of several models' parameters (weights are raw sample
/// counts; normalised internally), written into a clone of the first.
///
/// # Panics
/// Panics when `models` is empty, architectures differ, or weights are not
/// positive-summing non-negative finite values.
pub fn weighted_average(models: &[&Sequential], weights: &[f32]) -> Sequential {
    assert!(!models.is_empty(), "weighted_average of no models");
    assert_eq!(models.len(), weights.len(), "weights length mismatch");
    let total: f32 = weights.iter().sum();
    assert!(
        total > 0.0 && weights.iter().all(|w| w.is_finite() && *w >= 0.0),
        "weights must be non-negative with positive sum"
    );
    let d = models[0].param_count();
    let mut acc = vec![0.0f32; d];
    let mut buf = Vec::with_capacity(d);
    for (m, &w) in models.iter().zip(weights) {
        flatten_into(m, &mut buf);
        assert_eq!(buf.len(), d, "model architecture mismatch");
        let s = w / total;
        for (a, &x) in acc.iter_mut().zip(&buf) {
            *a += s * x;
        }
    }
    let mut out = models[0].clone();
    unflatten(&mut out, &acc);
    out
}

/// Copies `src`'s parameter values into `dst` tensor-by-tensor — the
/// clone-free counterpart of `dst = src.clone()` for model broadcast
/// (gradients and layer caches are left untouched; every optimizer step
/// zeroes gradients, so they are zero at the only points this is used).
///
/// # Panics
/// Panics when the architectures differ.
pub fn copy_params_from(dst: &mut Sequential, src: &Sequential) {
    let mut dst_params = dst.params_mut();
    let src_params = src.params();
    assert_eq!(
        dst_params.len(),
        src_params.len(),
        "model architecture mismatch"
    );
    for (d, s) in dst_params.iter_mut().zip(src_params) {
        d.value.data_mut().copy_from_slice(s.value.data());
    }
}

/// Zeroes all parameter values of `dst` (accumulator reset for in-place
/// FedAvg).
pub fn zero_params(dst: &mut Sequential) {
    for p in dst.params_mut() {
        p.value.data_mut().fill(0.0);
    }
}

/// `dst += s · src` over all parameter tensors — the in-place FedAvg
/// accumulation step.
///
/// # Panics
/// Panics when the architectures differ.
pub fn axpy(dst: &mut Sequential, s: f32, src: &Sequential) {
    let mut dst_params = dst.params_mut();
    let src_params = src.params();
    assert_eq!(
        dst_params.len(),
        src_params.len(),
        "model architecture mismatch"
    );
    for (d, p) in dst_params.iter_mut().zip(src_params) {
        debug_assert_eq!(d.len(), p.len(), "parameter tensor size mismatch");
        for (a, &x) in d.value.data_mut().iter_mut().zip(p.value.data()) {
            *a += s * x;
        }
    }
}

/// `dst += s0 · m0` then `dst += s1 · m1`, fused over all parameter
/// tensors. The per-element accumulation stays two sequential adds in
/// model order, so the result is bit-identical to two [`axpy`] calls —
/// but `dst` is read and written once per pair instead of once per
/// model, which matters on the memory-bound FedAvg accumulation.
///
/// # Panics
/// Panics when the architectures differ.
pub fn axpy2(dst: &mut Sequential, s0: f32, m0: &Sequential, s1: f32, m1: &Sequential) {
    let mut dst_params = dst.params_mut();
    let p0 = m0.params();
    let p1 = m1.params();
    assert_eq!(dst_params.len(), p0.len(), "model architecture mismatch");
    assert_eq!(dst_params.len(), p1.len(), "model architecture mismatch");
    for ((d, a), b) in dst_params.iter_mut().zip(p0).zip(p1) {
        debug_assert_eq!(d.len(), a.len(), "parameter tensor size mismatch");
        debug_assert_eq!(d.len(), b.len(), "parameter tensor size mismatch");
        for ((y, &x0), &x1) in d
            .value
            .data_mut()
            .iter_mut()
            .zip(a.value.data())
            .zip(b.value.data())
        {
            *y += s0 * x0;
            *y += s1 * x1;
        }
    }
}

/// In-place convex blend `dst ← alpha · a + (1 − alpha) · dst` — the
/// allocation-free counterpart of [`blend`] with `b = dst` (paper Eq. 9:
/// `dst` is the carried local model, `a` the downloaded edge model).
///
/// # Panics
/// Panics when the architectures differ or `alpha` is outside `[0, 1]`.
pub fn blend_into(dst: &mut Sequential, a: &Sequential, alpha: f32) {
    assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0, 1]");
    let mut dst_params = dst.params_mut();
    let a_params = a.params();
    assert_eq!(
        dst_params.len(),
        a_params.len(),
        "model architecture mismatch"
    );
    for (d, p) in dst_params.iter_mut().zip(a_params) {
        debug_assert_eq!(d.len(), p.len(), "parameter tensor size mismatch");
        for (y, &x) in d.value.data_mut().iter_mut().zip(p.value.data()) {
            *y = alpha * x + (1.0 - alpha) * *y;
        }
    }
}

/// Weighted FedAvg of several models written directly into `dst`'s
/// parameter tensors — no flatten scratch, no model clone. Element-wise
/// this performs exactly the accumulation of [`weighted_average`]
/// (`acc += (w/total) · x` per model, in model order), so the two agree
/// bit-for-bit.
///
/// `dst` must not be one of `models` (the borrow checker enforces this
/// at every call site: `dst` is `&mut`).
///
/// # Panics
/// Panics when `models` is empty, architectures differ, or weights are
/// not positive-summing non-negative finite values.
pub fn weighted_average_into(dst: &mut Sequential, models: &[&Sequential], weights: &[f32]) {
    assert!(!models.is_empty(), "weighted_average of no models");
    assert_eq!(models.len(), weights.len(), "weights length mismatch");
    let total: f32 = weights.iter().sum();
    assert!(
        total > 0.0 && weights.iter().all(|w| w.is_finite() && *w >= 0.0),
        "weights must be non-negative with positive sum"
    );
    zero_params(dst);
    for (m, &w) in models.iter().zip(weights) {
        axpy(dst, w / total, m);
    }
}

/// Elementwise difference `a − b` of two models' flat parameters
/// (the accumulated update `Δw_m = w_m − w_c` of Eq. 10).
pub fn delta(a: &Sequential, b: &Sequential) -> Vec<f32> {
    let (fa, fb) = (flatten(a), flatten(b));
    assert_eq!(fa.len(), fb.len(), "model architecture mismatch");
    fa.iter().zip(&fb).map(|(x, y)| x - y).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Relu};
    use middle_tensor::random::rng;

    fn model(seed: u64) -> Sequential {
        let mut r = rng(seed);
        Sequential::new()
            .push(Dense::new(3, 4, &mut r))
            .push(Relu::new())
            .push(Dense::new(4, 2, &mut r))
    }

    #[test]
    fn flatten_unflatten_roundtrip() {
        let mut m = model(1);
        let flat = flatten(&m);
        assert_eq!(flat.len(), m.param_count());
        let mut doubled = flat.clone();
        for x in &mut doubled {
            *x *= 2.0;
        }
        unflatten(&mut m, &doubled);
        assert_eq!(flatten(&m), doubled);
    }

    #[test]
    fn model_cosine_self_is_one() {
        let m = model(2);
        assert!((model_cosine(&m, &m) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn blend_endpoints() {
        let a = model(3);
        let b = model(4);
        assert_eq!(flatten(&blend(&a, &b, 1.0)), flatten(&a));
        assert_eq!(flatten(&blend(&a, &b, 0.0)), flatten(&b));
        let half = blend(&a, &b, 0.5);
        let (fa, fb, fh) = (flatten(&a), flatten(&b), flatten(&half));
        for ((x, y), z) in fa.iter().zip(&fb).zip(&fh) {
            assert!((0.5 * (x + y) - z).abs() < 1e-6);
        }
    }

    #[test]
    fn weighted_average_of_clones_is_identity() {
        let a = model(5);
        let avg = weighted_average(&[&a, &a, &a], &[1.0, 2.0, 3.0]);
        let (fa, fv) = (flatten(&a), flatten(&avg));
        for (x, y) in fa.iter().zip(&fv) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn weighted_average_respects_weights() {
        let mut a = model(6);
        let mut b = model(6);
        let d = a.param_count();
        unflatten(&mut a, &vec![0.0; d]);
        unflatten(&mut b, &vec![4.0; d]);
        let avg = weighted_average(&[&a, &b], &[3.0, 1.0]);
        for &x in &flatten(&avg) {
            assert!((x - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn delta_is_antisymmetric() {
        let a = model(7);
        let b = model(8);
        let dab = delta(&a, &b);
        let dba = delta(&b, &a);
        for (x, y) in dab.iter().zip(&dba) {
            assert!((x + y).abs() < 1e-6);
        }
    }

    #[test]
    fn model_distance_zero_iff_same_params() {
        let a = model(9);
        assert_eq!(model_distance2(&a, &a), 0.0);
        let b = model(10);
        assert!(model_distance2(&a, &b) > 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn unflatten_wrong_length_panics() {
        let mut m = model(11);
        unflatten(&mut m, &[1.0, 2.0]);
    }

    #[test]
    fn flat_view_tracks_dirtiness() {
        let mut m = model(12);
        let mut v = FlatView::of(&m);
        assert!(!v.is_dirty());
        assert_eq!(v.flat(), flatten(&m).as_slice());
        assert_eq!(v.norm_sq().to_bits(), {
            let f = flatten(&m);
            dot_slices(&f, &f).to_bits()
        });
        let d = m.param_count();
        unflatten(&mut m, &vec![2.0; d]);
        v.invalidate();
        assert!(v.is_dirty());
        v.refresh(&m);
        assert_eq!(v.flat(), vec![2.0; d].as_slice());
    }

    #[test]
    #[should_panic(expected = "dirty")]
    fn dirty_flat_view_read_panics() {
        let mut v = FlatView::of(&model(13));
        v.invalidate();
        v.flat();
    }

    #[test]
    fn flat_view_set_from_slice_copies_verbatim() {
        let m = model(14);
        let src = FlatView::of(&m);
        let mut dst = FlatView::new();
        dst.set_from_slice(src.flat(), src.norm_sq());
        assert_eq!(dst.flat(), src.flat());
        assert_eq!(dst.norm_sq().to_bits(), src.norm_sq().to_bits());
    }

    #[test]
    fn copy_params_matches_clone() {
        let src = model(15);
        let mut dst = model(16);
        copy_params_from(&mut dst, &src);
        assert_eq!(flatten(&dst), flatten(&src));
    }

    #[test]
    fn axpy_accumulates_in_place() {
        let mut dst = model(17);
        let src = model(18);
        let expect: Vec<f32> = flatten(&dst)
            .iter()
            .zip(&flatten(&src))
            .map(|(&a, &x)| a + 0.5 * x)
            .collect();
        axpy(&mut dst, 0.5, &src);
        assert_eq!(flatten(&dst), expect);
    }

    #[test]
    fn blend_into_matches_reference_blend_bitwise() {
        let a = model(19);
        let b = model(20);
        for alpha in [0.0f32, 0.25, 0.5, 1.0] {
            let reference = blend(&a, &b, alpha);
            let mut dst = b.clone();
            blend_into(&mut dst, &a, alpha);
            let (fr, fd) = (flatten(&reference), flatten(&dst));
            for (x, y) in fr.iter().zip(&fd) {
                assert_eq!(x.to_bits(), y.to_bits(), "alpha {alpha}");
            }
        }
    }

    #[test]
    fn weighted_average_into_matches_reference_bitwise() {
        let models: Vec<Sequential> = (21..25).map(model).collect();
        let refs: Vec<&Sequential> = models.iter().collect();
        let weights = [3.0f32, 0.5, 2.0, 1.25];
        let reference = weighted_average(&refs, &weights);
        let mut dst = model(26);
        weighted_average_into(&mut dst, &refs, &weights);
        let (fr, fd) = (flatten(&reference), flatten(&dst));
        for (x, y) in fr.iter().zip(&fd) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn weighted_average_into_rejects_zero_weights() {
        let a = model(27);
        let mut dst = model(28);
        weighted_average_into(&mut dst, &[&a], &[0.0]);
    }
}
