//! Checkpoint (de)serialisation of model parameters.
//!
//! Architectures are code; only the flat parameter vector and a
//! fingerprint are persisted. Loading verifies the fingerprint so a
//! checkpoint cannot be silently applied to the wrong architecture.

use crate::model::Sequential;
use crate::params::{flatten, unflatten};
use serde::{Deserialize, Serialize};

/// A serialisable snapshot of a model's parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Per-parameter tensor lengths, in canonical order — the
    /// architecture fingerprint.
    pub layout: Vec<usize>,
    /// Flat parameter values.
    pub values: Vec<f32>,
}

impl Checkpoint {
    /// Captures the current parameters of `model`.
    pub fn capture(model: &Sequential) -> Self {
        Checkpoint {
            layout: model.params().iter().map(|p| p.len()).collect(),
            values: flatten(model),
        }
    }

    /// Restores the snapshot into `model`.
    ///
    /// # Errors
    /// Returns an error when the architecture fingerprint does not match.
    pub fn restore(&self, model: &mut Sequential) -> Result<(), String> {
        let layout: Vec<usize> = model.params().iter().map(|p| p.len()).collect();
        if layout != self.layout {
            return Err(format!(
                "checkpoint layout {:?} does not match model layout {:?}",
                self.layout, layout
            ));
        }
        if self.values.len() != layout.iter().sum::<usize>() {
            return Err("checkpoint value count does not match its own layout".into());
        }
        unflatten(model, &self.values);
        Ok(())
    }

    /// Serialises to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("checkpoint serialisation cannot fail")
    }

    /// Deserialises from JSON.
    ///
    /// # Errors
    /// Returns the JSON parse error message.
    pub fn from_json(s: &str) -> Result<Self, String> {
        serde_json::from_str(s).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Dense;
    use middle_tensor::random::rng;

    fn model(seed: u64) -> Sequential {
        Sequential::new().push(Dense::new(3, 2, &mut rng(seed)))
    }

    #[test]
    fn capture_restore_roundtrip() {
        let a = model(1);
        let ck = Checkpoint::capture(&a);
        let mut b = model(2);
        assert_ne!(flatten(&a), flatten(&b));
        ck.restore(&mut b).unwrap();
        assert_eq!(flatten(&a), flatten(&b));
    }

    #[test]
    fn json_roundtrip() {
        let a = model(3);
        let ck = Checkpoint::capture(&a);
        let ck2 = Checkpoint::from_json(&ck.to_json()).unwrap();
        assert_eq!(ck.values, ck2.values);
        assert_eq!(ck.layout, ck2.layout);
    }

    #[test]
    fn wrong_architecture_is_rejected() {
        let a = model(4);
        let ck = Checkpoint::capture(&a);
        let mut wrong = Sequential::new().push(Dense::new(4, 2, &mut rng(5)));
        assert!(ck.restore(&mut wrong).is_err());
    }

    #[test]
    fn corrupt_json_is_rejected() {
        assert!(Checkpoint::from_json("{not json").is_err());
    }
}
