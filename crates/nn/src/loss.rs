//! Loss functions: softmax cross-entropy and mean squared error.

use middle_tensor::reduce::{logsumexp_rows, softmax_inplace, softmax_rows};
use middle_tensor::Tensor;

/// Mean softmax cross-entropy over a batch.
///
/// * `logits`: `[N, C]` raw scores
/// * `labels`: class index per sample
///
/// Returns `(loss, dlogits)` where the gradient is already divided by the
/// batch size (so optimizer steps are batch-size invariant).
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    assert_eq!(logits.shape().rank(), 2, "logits must be [N, C]");
    let (n, c) = (logits.shape().dim(0), logits.shape().dim(1));
    assert_eq!(labels.len(), n, "labels length mismatch");
    assert!(n > 0, "empty batch");
    assert!(
        labels.iter().all(|&l| l < c),
        "label out of range for {c} classes"
    );

    let lse = logsumexp_rows(logits);
    let mut loss = 0.0f32;
    for (i, &y) in labels.iter().enumerate() {
        loss += lse.data()[i] - logits.at(&[i, y]);
    }
    loss /= n as f32;

    let mut dlogits = softmax_rows(logits);
    let inv_n = 1.0 / n as f32;
    for (i, &y) in labels.iter().enumerate() {
        let row = dlogits.row_mut(i);
        row[y] -= 1.0;
        for v in row {
            *v *= inv_n;
        }
    }
    (loss, dlogits)
}

/// [`softmax_cross_entropy`] writing the gradient into caller-owned
/// storage. Bitwise-identical loss and gradient; `dlogits` is resized and
/// fully overwritten.
pub fn softmax_cross_entropy_into(logits: &Tensor, labels: &[usize], dlogits: &mut Tensor) -> f32 {
    assert_eq!(logits.shape().rank(), 2, "logits must be [N, C]");
    let (n, c) = (logits.shape().dim(0), logits.shape().dim(1));
    assert_eq!(labels.len(), n, "labels length mismatch");
    assert!(n > 0, "empty batch");
    assert!(
        labels.iter().all(|&l| l < c),
        "label out of range for {c} classes"
    );

    // Same per-row reduction as `logsumexp_rows`, computed inline.
    let mut loss = 0.0f32;
    for (i, &y) in labels.iter().enumerate() {
        let row = logits.row(i);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let lse = max + row.iter().map(|&v| (v - max).exp()).sum::<f32>().ln();
        loss += lse - row[y];
    }
    loss /= n as f32;

    dlogits.resize(logits.shape().clone());
    dlogits.data_mut().copy_from_slice(logits.data());
    let inv_n = 1.0 / n as f32;
    for (i, &y) in labels.iter().enumerate() {
        let row = dlogits.row_mut(i);
        softmax_inplace(row);
        row[y] -= 1.0;
        for v in row {
            *v *= inv_n;
        }
    }
    loss
}

/// Per-sample softmax cross-entropy losses (no gradient) — used by the
/// Oort statistical utility, which needs each sample's loss.
pub fn per_sample_cross_entropy(logits: &Tensor, labels: &[usize]) -> Vec<f32> {
    let mut out = Vec::new();
    per_sample_cross_entropy_into(logits, labels, &mut out);
    out
}

/// [`per_sample_cross_entropy`] into a caller-owned vector (cleared and
/// refilled).
pub fn per_sample_cross_entropy_into(logits: &Tensor, labels: &[usize], out: &mut Vec<f32>) {
    assert_eq!(logits.shape().rank(), 2, "logits must be [N, C]");
    let n = logits.shape().dim(0);
    assert_eq!(labels.len(), n, "labels length mismatch");
    out.clear();
    out.extend(labels.iter().enumerate().map(|(i, &y)| {
        let row = logits.row(i);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let lse = max + row.iter().map(|&v| (v - max).exp()).sum::<f32>().ln();
        lse - row[y]
    }));
}

/// Mean squared error `mean((pred - target)^2)` with gradient
/// `2 (pred - target) / N_elements`.
pub fn mse(pred: &Tensor, target: &Tensor) -> (f32, Tensor) {
    assert_eq!(pred.shape(), target.shape(), "mse shape mismatch");
    assert!(!pred.is_empty(), "mse of empty tensors");
    let n = pred.len() as f32;
    let mut grad = pred.clone();
    let mut loss = 0.0f32;
    for (g, &t) in grad.data_mut().iter_mut().zip(target.data()) {
        let d = *g - t;
        loss += d * d;
        *g = 2.0 * d / n;
    }
    (loss / n, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_c() {
        let logits = Tensor::zeros([4, 10]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0, 3, 5, 9]);
        assert!((loss - 10.0f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn confident_correct_prediction_has_low_loss() {
        let mut logits = Tensor::zeros([1, 3]);
        logits.set(&[0, 1], 20.0);
        let (loss, _) = softmax_cross_entropy(&logits, &[1]);
        assert!(loss < 1e-3);
        let (loss_wrong, _) = softmax_cross_entropy(&logits, &[0]);
        assert!(loss_wrong > 10.0);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let logits = Tensor::from_vec([2, 3], vec![0.5, -1.0, 2.0, 1.0, 1.0, -0.5]);
        let labels = [2usize, 0];
        let (_, grad) = softmax_cross_entropy(&logits, &labels);
        let eps = 1e-3;
        for i in 0..logits.len() {
            let mut lp = logits.clone();
            lp.data_mut()[i] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[i] -= eps;
            let fd = (softmax_cross_entropy(&lp, &labels).0
                - softmax_cross_entropy(&lm, &labels).0)
                / (2.0 * eps);
            assert!((fd - grad.data()[i]).abs() < 1e-3, "grad[{i}]");
        }
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let logits = Tensor::from_vec([2, 4], vec![1., 2., 3., 4., -1., 0., 1., 2.]);
        let (_, grad) = softmax_cross_entropy(&logits, &[0, 3]);
        for i in 0..2 {
            let s: f32 = grad.row(i).iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn per_sample_losses_average_to_batch_loss() {
        let logits = Tensor::from_vec([3, 2], vec![1., 0., 0., 1., 0.5, 0.5]);
        let labels = [0usize, 1, 0];
        let per = per_sample_cross_entropy(&logits, &labels);
        let mean: f32 = per.iter().sum::<f32>() / 3.0;
        let (batch, _) = softmax_cross_entropy(&logits, &labels);
        assert!((mean - batch).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn bad_label_panics() {
        softmax_cross_entropy(&Tensor::zeros([1, 3]), &[3]);
    }

    #[test]
    fn mse_basics() {
        let pred = Tensor::from_vec([2], vec![1., 3.]);
        let target = Tensor::from_vec([2], vec![0., 1.]);
        let (loss, grad) = mse(&pred, &target);
        assert!((loss - 2.5).abs() < 1e-6);
        assert_eq!(grad.data(), &[1.0, 2.0]);
    }

    #[test]
    fn mse_zero_at_target() {
        let t = Tensor::from_vec([3], vec![1., 2., 3.]);
        let (loss, grad) = mse(&t, &t);
        assert_eq!(loss, 0.0);
        assert_eq!(grad.data(), &[0., 0., 0.]);
    }
}
