//! Model builders matching the paper's evaluation section (§6.1.2).
//!
//! * MNIST / EMNIST: CNN with 2 convolutional + 2 fully connected layers.
//! * CIFAR10 / SpeechCommands: CNN with 3 convolutional + 2 fully
//!   connected layers.
//! * A plain MLP and a logistic-regression (single affine) model for the
//!   motivation experiments and the strongly-convex theory validation.

use crate::layers::{Conv2d, Dense, Flatten, MaxPool2d, Relu};
use crate::model::Sequential;
use middle_tensor::conv::ConvGeometry;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// Input signature of a classification task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InputSpec {
    /// Channels (1 grayscale, 3 colour; 1 for flat vectors).
    pub channels: usize,
    /// Spatial height (1 for flat vectors).
    pub height: usize,
    /// Spatial width (vector length for flat vectors).
    pub width: usize,
    /// Number of classes.
    pub classes: usize,
}

impl InputSpec {
    /// Total features per sample.
    pub fn features(&self) -> usize {
        self.channels * self.height * self.width
    }
}

/// The paper's 2-conv + 2-fc CNN (MNIST / EMNIST track).
///
/// conv(k3,p1,c8) → relu → pool2 → conv(k3,p1,c16) → relu → pool2 →
/// flatten → dense(64) → relu → dense(classes).
pub fn cnn2(spec: &InputSpec, rng: &mut StdRng) -> Sequential {
    assert!(
        spec.height.is_multiple_of(4) && spec.width.is_multiple_of(4),
        "cnn2 needs spatial dims divisible by 4 (two 2x pools)"
    );
    let g1 = ConvGeometry {
        in_c: spec.channels,
        out_c: 8,
        kernel: 3,
        stride: 1,
        pad: 1,
        in_h: spec.height,
        in_w: spec.width,
    };
    let g2 = ConvGeometry {
        in_c: 8,
        out_c: 16,
        kernel: 3,
        stride: 1,
        pad: 1,
        in_h: spec.height / 2,
        in_w: spec.width / 2,
    };
    let feat = 16 * (spec.height / 4) * (spec.width / 4);
    Sequential::new()
        .push(Conv2d::new(g1, rng))
        .push(Relu::new())
        .push(MaxPool2d::new(2))
        .push(Conv2d::new(g2, rng))
        .push(Relu::new())
        .push(MaxPool2d::new(2))
        .push(Flatten::new())
        .push(Dense::new(feat, 64, rng))
        .push(Relu::new())
        .push(Dense::new(64, spec.classes, rng))
}

/// The paper's 3-conv + 2-fc CNN (CIFAR10 / SpeechCommands track).
pub fn cnn3(spec: &InputSpec, rng: &mut StdRng) -> Sequential {
    assert!(
        spec.height.is_multiple_of(4) && spec.width.is_multiple_of(4),
        "cnn3 needs spatial dims divisible by 4"
    );
    let g1 = ConvGeometry {
        in_c: spec.channels,
        out_c: 8,
        kernel: 3,
        stride: 1,
        pad: 1,
        in_h: spec.height,
        in_w: spec.width,
    };
    let g2 = ConvGeometry {
        in_c: 8,
        out_c: 16,
        kernel: 3,
        stride: 1,
        pad: 1,
        in_h: spec.height / 2,
        in_w: spec.width / 2,
    };
    let g3 = ConvGeometry {
        in_c: 16,
        out_c: 16,
        kernel: 3,
        stride: 1,
        pad: 1,
        in_h: spec.height / 4,
        in_w: spec.width / 4,
    };
    let feat = 16 * (spec.height / 4) * (spec.width / 4);
    Sequential::new()
        .push(Conv2d::new(g1, rng))
        .push(Relu::new())
        .push(MaxPool2d::new(2))
        .push(Conv2d::new(g2, rng))
        .push(Relu::new())
        .push(MaxPool2d::new(2))
        .push(Conv2d::new(g3, rng))
        .push(Relu::new())
        .push(Flatten::new())
        .push(Dense::new(feat, 64, rng))
        .push(Relu::new())
        .push(Dense::new(64, spec.classes, rng))
}

/// Two-hidden-layer MLP over flattened inputs — used for the flat-vector
/// "speech" task and as a cheaper stand-in where CNNs are overkill.
pub fn mlp(spec: &InputSpec, hidden: usize, rng: &mut StdRng) -> Sequential {
    Sequential::new()
        .push(Flatten::new())
        .push(Dense::new(spec.features(), hidden, rng))
        .push(Relu::new())
        .push(Dense::new(hidden, hidden / 2, rng))
        .push(Relu::new())
        .push(Dense::new(hidden / 2, spec.classes, rng))
}

/// Multinomial logistic regression (single affine layer): μ-strongly
/// convex with L2 regularisation, satisfying the assumptions of
/// Theorem 1. Used by the theory-validation experiments.
pub fn logistic(spec: &InputSpec, rng: &mut StdRng) -> Sequential {
    Sequential::new()
        .push(Flatten::new())
        .push(Dense::new(spec.features(), spec.classes, rng))
}

/// Builds the model the paper pairs with each named task
/// (§6.1.2: cnn2 for mnist/emnist, cnn3 for cifar10/speech).
pub fn model_for_task(task: &str, spec: &InputSpec, rng: &mut StdRng) -> Sequential {
    match task {
        "mnist" | "emnist" => cnn2(spec, rng),
        "cifar10" => cnn3(spec, rng),
        // The speech stand-in is a flat vector; the paper's conv stack
        // degenerates to an MLP of comparable capacity.
        "speech" => mlp(spec, 64, rng),
        other => panic!("unknown task {other:?} (expected mnist|emnist|cifar10|speech)"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use middle_tensor::random::rng;
    use middle_tensor::Tensor;

    const MNIST: InputSpec = InputSpec {
        channels: 1,
        height: 16,
        width: 16,
        classes: 10,
    };
    const CIFAR: InputSpec = InputSpec {
        channels: 3,
        height: 16,
        width: 16,
        classes: 10,
    };
    const SPEECH: InputSpec = InputSpec {
        channels: 1,
        height: 1,
        width: 64,
        classes: 10,
    };

    #[test]
    fn cnn2_shapes() {
        let mut m = cnn2(&MNIST, &mut rng(1));
        let y = m.forward(&Tensor::zeros([2, 1, 16, 16]), false);
        assert_eq!(y.shape().dims(), &[2, 10]);
    }

    #[test]
    fn cnn3_shapes() {
        let mut m = cnn3(&CIFAR, &mut rng(2));
        let y = m.forward(&Tensor::zeros([2, 3, 16, 16]), false);
        assert_eq!(y.shape().dims(), &[2, 10]);
    }

    #[test]
    fn mlp_handles_flat_vectors() {
        let mut m = mlp(&SPEECH, 32, &mut rng(3));
        let y = m.forward(&Tensor::zeros([4, 1, 1, 64]), false);
        assert_eq!(y.shape().dims(), &[4, 10]);
    }

    #[test]
    fn logistic_is_single_affine() {
        let m = logistic(&MNIST, &mut rng(4));
        assert_eq!(m.param_count(), 256 * 10 + 10);
    }

    #[test]
    fn task_dispatch() {
        assert_eq!(model_for_task("mnist", &MNIST, &mut rng(5)).depth(), 10);
        assert_eq!(model_for_task("cifar10", &CIFAR, &mut rng(5)).depth(), 12);
    }

    #[test]
    #[should_panic(expected = "unknown task")]
    fn unknown_task_panics() {
        model_for_task("imagenet", &MNIST, &mut rng(6));
    }

    #[test]
    fn same_seed_same_model() {
        let a = cnn2(&MNIST, &mut rng(7));
        let b = cnn2(&MNIST, &mut rng(7));
        assert_eq!(crate::params::flatten(&a), crate::params::flatten(&b));
    }
}
