//! # middle-nn
//!
//! From-scratch neural-network stack for the MIDDLE (ICPP 2023)
//! reproduction, built on [`middle_tensor`].
//!
//! The paper trains small CNNs under PyTorch; Rust has no mature
//! equivalent, so this crate implements exactly the training machinery the
//! evaluation needs:
//!
//! * layers ([`layers`]): dense, conv2d, max-pool, ReLU/tanh, dropout,
//!   flatten — each with hand-derived backward passes validated against
//!   finite differences;
//! * losses ([`loss`]): softmax cross-entropy (batch and per-sample) and
//!   MSE;
//! * optimizers ([`optim`]): SGD, momentum SGD (paper: lr 0.01, μ 0.9) and
//!   Adam (paper: lr 0.001 for speech);
//! * the [`model::Sequential`] container and the flat parameter view
//!   ([`params`]) that federated aggregation operates on;
//! * paper model builders ([`zoo`]): 2-conv and 3-conv CNNs, an MLP and a
//!   strongly-convex logistic model for the theory experiments;
//! * parameter checkpoints ([`serialize`]).

pub mod layer;
pub mod layers;
pub mod loss;
pub mod model;
pub mod optim;
pub mod params;
pub mod schedule;
pub mod scratch;
pub mod serialize;
pub mod zoo;

pub use layer::{Layer, LayerWs, Param};
pub use model::Sequential;
pub use optim::{Optimizer, OptimizerKind};
pub use schedule::Schedule;
pub use scratch::NetScratch;
pub use zoo::InputSpec;
