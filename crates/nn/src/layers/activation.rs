//! Elementwise activation layers.

use crate::layer::{Layer, LayerWs};
use middle_tensor::Tensor;

/// Rectified linear unit `max(x, 0)`.
#[derive(Clone, Default)]
pub struct Relu {
    mask: Option<Vec<bool>>,
}

impl Relu {
    /// Creates a ReLU activation.
    pub fn new() -> Self {
        Relu { mask: None }
    }
}

impl Layer for Relu {
    fn name(&self) -> &'static str {
        "relu"
    }

    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        let mut out = input.clone();
        let mask: Vec<bool> = out
            .data_mut()
            .iter_mut()
            .map(|x| {
                let pass = *x > 0.0;
                if !pass {
                    *x = 0.0;
                }
                pass
            })
            .collect();
        self.mask = Some(mask);
        out
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        input.map(|x| if x > 0.0 { x } else { 0.0 })
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mask = self.mask.as_ref().expect("backward called before forward");
        assert_eq!(
            mask.len(),
            grad_out.len(),
            "grad shape changed since forward"
        );
        let mut out = grad_out.clone();
        for (g, &pass) in out.data_mut().iter_mut().zip(mask) {
            if !pass {
                *g = 0.0;
            }
        }
        out
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(Relu { mask: None })
    }

    fn forward_into(&mut self, input: &Tensor, _train: bool, _ws: &mut LayerWs, out: &mut Tensor) {
        relu_into(input, out);
    }

    fn backward_into(
        &mut self,
        _input: &Tensor,
        output: &Tensor,
        grad_out: &Tensor,
        _ws: &mut LayerWs,
        grad_in: &mut Tensor,
        need_grad_in: bool,
    ) {
        if !need_grad_in {
            return;
        }
        // The mask is recoverable from the forward output: out > 0 ⇔ the
        // input passed (out = x when x > 0, else exactly 0.0) — so no
        // stored mask is needed.
        assert_eq!(output.len(), grad_out.len(), "grad shape changed");
        grad_in.resize(grad_out.shape().clone());
        for ((gi, &go), &y) in grad_in
            .data_mut()
            .iter_mut()
            .zip(grad_out.data())
            .zip(output.data())
        {
            *gi = if y > 0.0 { go } else { 0.0 };
        }
    }

    fn infer_into(&self, input: &Tensor, _ws: &mut LayerWs, out: &mut Tensor) {
        relu_into(input, out);
    }
}

/// `out = max(input, 0)` into caller-owned storage, elementwise-identical
/// to the allocating forward/infer paths.
fn relu_into(input: &Tensor, out: &mut Tensor) {
    out.resize(input.shape().clone());
    for (o, &x) in out.data_mut().iter_mut().zip(input.data()) {
        *o = if x > 0.0 { x } else { 0.0 };
    }
}

/// Hyperbolic tangent activation.
#[derive(Clone, Default)]
pub struct Tanh {
    cached_output: Option<Tensor>,
}

impl Tanh {
    /// Creates a tanh activation.
    pub fn new() -> Self {
        Tanh {
            cached_output: None,
        }
    }
}

impl Layer for Tanh {
    fn name(&self) -> &'static str {
        "tanh"
    }

    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        let out = input.map(|x| x.tanh());
        self.cached_output = Some(out.clone());
        out
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        input.map(|x| x.tanh())
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let y = self
            .cached_output
            .as_ref()
            .expect("backward called before forward");
        let mut out = grad_out.clone();
        for (g, &yv) in out.data_mut().iter_mut().zip(y.data()) {
            *g *= 1.0 - yv * yv;
        }
        out
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(Tanh {
            cached_output: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_forward_clamps_negatives() {
        let mut r = Relu::new();
        let y = r.forward(&Tensor::from_vec([4], vec![-1., 0., 2., -3.]), true);
        assert_eq!(y.data(), &[0., 0., 2., 0.]);
    }

    #[test]
    fn relu_backward_masks_gradient() {
        let mut r = Relu::new();
        r.forward(&Tensor::from_vec([4], vec![-1., 0.5, 2., -3.]), true);
        let dx = r.backward(&Tensor::from_vec([4], vec![10., 10., 10., 10.]));
        assert_eq!(dx.data(), &[0., 10., 10., 0.]);
    }

    #[test]
    fn relu_gradient_at_zero_is_zero() {
        // Subgradient convention: x == 0 blocks the gradient.
        let mut r = Relu::new();
        r.forward(&Tensor::from_vec([1], vec![0.0]), true);
        let dx = r.backward(&Tensor::from_vec([1], vec![5.0]));
        assert_eq!(dx.data(), &[0.0]);
    }

    #[test]
    fn tanh_matches_finite_difference() {
        let mut t = Tanh::new();
        let x = Tensor::from_vec([3], vec![-0.7, 0.0, 1.3]);
        t.forward(&x, true);
        let dx = t.backward(&Tensor::ones([3]));
        let eps = 1e-3;
        for i in 0..3 {
            let fd = ((x.data()[i] + eps).tanh() - (x.data()[i] - eps).tanh()) / (2.0 * eps);
            assert!((fd - dx.data()[i]).abs() < 1e-4);
        }
    }
}
