//! Flatten layer: NCHW activations → `[N, C*H*W]` features.

use crate::layer::{Layer, LayerWs};
use middle_tensor::{Shape, Tensor};

/// Reshapes `[N, ...]` into `[N, prod(...)]`, remembering the original
/// shape for the backward pass. A pure view change — no arithmetic.
#[derive(Clone, Default)]
pub struct Flatten {
    cached_shape: Option<Shape>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten { cached_shape: None }
    }
}

impl Layer for Flatten {
    fn name(&self) -> &'static str {
        "flatten"
    }

    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        assert!(input.shape().rank() >= 1, "flatten needs a batch dimension");
        self.cached_shape = Some(input.shape().clone());
        let n = input.shape().dim(0);
        let rest = input.len() / n.max(1);
        input.reshaped([n, rest])
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        assert!(input.shape().rank() >= 1, "flatten needs a batch dimension");
        let n = input.shape().dim(0);
        let rest = input.len() / n.max(1);
        input.reshaped([n, rest])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let shape = self
            .cached_shape
            .as_ref()
            .expect("backward called before forward");
        grad_out.reshaped(shape.clone())
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(Flatten { cached_shape: None })
    }

    fn forward_into(&mut self, input: &Tensor, _train: bool, _ws: &mut LayerWs, out: &mut Tensor) {
        flatten_into(input, out);
    }

    fn backward_into(
        &mut self,
        input: &Tensor,
        _output: &Tensor,
        grad_out: &Tensor,
        _ws: &mut LayerWs,
        grad_in: &mut Tensor,
        need_grad_in: bool,
    ) {
        if !need_grad_in {
            return;
        }
        grad_in.resize(input.shape().clone());
        grad_in.data_mut().copy_from_slice(grad_out.data());
    }

    fn infer_into(&self, input: &Tensor, _ws: &mut LayerWs, out: &mut Tensor) {
        flatten_into(input, out);
    }
}

/// Copies `input` into `out` under the flattened `[N, rest]` shape — the
/// workspace counterpart of the reshaping clone.
fn flatten_into(input: &Tensor, out: &mut Tensor) {
    assert!(input.shape().rank() >= 1, "flatten needs a batch dimension");
    let n = input.shape().dim(0);
    let rest = input.len() / n.max(1);
    out.resize([n, rest]);
    out.data_mut().copy_from_slice(input.data());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_flattens_and_backward_restores() {
        let mut f = Flatten::new();
        let x = Tensor::from_vec([2, 1, 2, 2], (0..8).map(|i| i as f32).collect());
        let y = f.forward(&x, true);
        assert_eq!(y.shape().dims(), &[2, 4]);
        let dx = f.backward(&y);
        assert_eq!(dx.shape().dims(), &[2, 1, 2, 2]);
        assert_eq!(dx.data(), x.data());
    }
}
