//! Fully connected (affine) layer.

use crate::layer::{Layer, LayerWs, Param};
use middle_tensor::matmul::{matmul_at, matmul_at_into, matmul_bt, matmul_bt_into, matmul_into};
use middle_tensor::random::xavier_uniform;
use middle_tensor::reduce::sum_axis0;
use middle_tensor::{ops, Tensor};
use rand::rngs::StdRng;

/// Coerces a workspace slot to the dense variant, initialising it lazily.
fn dense_ws(ws: &mut LayerWs) -> (&mut Tensor, &mut Tensor) {
    if !matches!(ws, LayerWs::Dense { .. }) {
        *ws = LayerWs::Dense {
            dw: Tensor::zeros([0]),
            db: Tensor::zeros([0]),
        };
    }
    match ws {
        LayerWs::Dense { dw, db } => (dw, db),
        _ => unreachable!(),
    }
}

/// Affine layer `y = x · Wᵀ + b` over `[N, in]` activations.
///
/// Weights are stored `[out, in]` so the forward pass is a fused
/// `matmul_bt` and the backward weight gradient is `dyᵀ · x`.
pub struct Dense {
    weight: Param,
    bias: Param,
    in_features: usize,
    out_features: usize,
    cached_input: Option<Tensor>,
}

impl Dense {
    /// Creates a dense layer with Xavier-uniform weights and zero bias.
    pub fn new(in_features: usize, out_features: usize, rng: &mut StdRng) -> Self {
        let weight = xavier_uniform([out_features, in_features], in_features, out_features, rng);
        Dense {
            weight: Param::new(weight),
            bias: Param::new(Tensor::zeros([out_features])),
            in_features,
            out_features,
            cached_input: None,
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }
}

impl Clone for Dense {
    fn clone(&self) -> Self {
        Dense {
            weight: self.weight.clone(),
            bias: self.bias.clone(),
            in_features: self.in_features,
            out_features: self.out_features,
            cached_input: None,
        }
    }
}

impl Layer for Dense {
    fn name(&self) -> &'static str {
        "dense"
    }

    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        assert_eq!(input.shape().rank(), 2, "dense input must be [N, in]");
        assert_eq!(
            input.shape().dim(1),
            self.in_features,
            "dense input features mismatch"
        );
        self.cached_input = Some(input.clone());
        let mut out = matmul_bt(input, &self.weight.value);
        ops::add_inplace(&mut out, &self.bias.value);
        out
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        assert_eq!(input.shape().rank(), 2, "dense input must be [N, in]");
        assert_eq!(
            input.shape().dim(1),
            self.in_features,
            "dense input features mismatch"
        );
        let mut out = matmul_bt(input, &self.weight.value);
        ops::add_inplace(&mut out, &self.bias.value);
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .as_ref()
            .expect("backward called before forward");
        // dW = dyᵀ · x  ([out, N]·[N, in] = [out, in]), via matmul_at(dy, x).
        let dw = matmul_at(grad_out, input);
        ops::add_inplace(&mut self.weight.grad, &dw);
        ops::add_inplace(&mut self.bias.grad, &sum_axis0(grad_out));
        // dx = dy · W  ([N, out]·[out, in]).
        middle_tensor::matmul::matmul(grad_out, &self.weight.value)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.weight, &self.bias]
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward_into(&mut self, input: &Tensor, _train: bool, _ws: &mut LayerWs, out: &mut Tensor) {
        self.affine_into(input, out);
    }

    fn backward_into(
        &mut self,
        input: &Tensor,
        _output: &Tensor,
        grad_out: &Tensor,
        ws: &mut LayerWs,
        grad_in: &mut Tensor,
        need_grad_in: bool,
    ) {
        let (dw, db) = dense_ws(ws);
        let n = grad_out.shape().dim(0);
        let (out_f, in_f) = (self.out_features, self.in_features);

        // dW = dyᵀ · x, staged into ws then accumulated — the same
        // compute-then-add sequence as the allocating path.
        dw.resize([out_f, in_f]);
        matmul_at_into(grad_out.data(), input.data(), dw.data_mut(), out_f, n, in_f);
        ops::add_inplace(&mut self.weight.grad, dw);

        // dbias = column sums of dy, with `sum_axis0`'s row-ascending order.
        db.resize([out_f]);
        db.data_mut().fill(0.0);
        for i in 0..n {
            for (o, &v) in db.data_mut().iter_mut().zip(grad_out.row(i)) {
                *o += v;
            }
        }
        ops::add_inplace(&mut self.bias.grad, db);

        if need_grad_in {
            // dx = dy · W.
            grad_in.resize([n, in_f]);
            matmul_into(
                grad_out.data(),
                self.weight.value.data(),
                grad_in.data_mut(),
                n,
                out_f,
                in_f,
            );
        }
    }

    fn infer_into(&self, input: &Tensor, _ws: &mut LayerWs, out: &mut Tensor) {
        self.affine_into(input, out);
    }
}

impl Dense {
    /// `out = input · Wᵀ + b` into caller-owned storage — the shared core
    /// of `forward_into`/`infer_into`, bitwise-identical to the
    /// `matmul_bt` + broadcast-add of the allocating path.
    fn affine_into(&self, input: &Tensor, out: &mut Tensor) {
        assert_eq!(input.shape().rank(), 2, "dense input must be [N, in]");
        assert_eq!(
            input.shape().dim(1),
            self.in_features,
            "dense input features mismatch"
        );
        let n = input.shape().dim(0);
        out.resize([n, self.out_features]);
        matmul_bt_into(
            input.data(),
            self.weight.value.data(),
            out.data_mut(),
            n,
            self.in_features,
            self.out_features,
        );
        let bias = self.bias.value.data();
        for row in out.data_mut().chunks_mut(self.out_features) {
            for (v, &b) in row.iter_mut().zip(bias) {
                *v += b;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use middle_tensor::random::rng;

    #[test]
    fn forward_matches_manual_affine() {
        let mut d = Dense::new(2, 3, &mut rng(1));
        // Overwrite with known weights.
        d.weight.value = Tensor::from_vec([3, 2], vec![1., 0., 0., 1., 1., 1.]);
        d.bias.value = Tensor::from_vec([3], vec![0.5, -0.5, 0.0]);
        let x = Tensor::from_vec([1, 2], vec![2., 3.]);
        let y = d.forward(&x, true);
        assert_eq!(y.data(), &[2.5, 2.5, 5.0]);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut d = Dense::new(3, 2, &mut rng(7));
        let x = Tensor::from_vec([2, 3], vec![0.1, -0.2, 0.3, 0.4, 0.5, -0.6]);
        let y = d.forward(&x, true);
        let dout = Tensor::ones(y.shape().clone());
        let dx = d.backward(&dout);

        let eps = 1e-3;
        let loss = |d: &mut Dense, x: &Tensor| d.forward(x, true).sum();

        // Input gradient.
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let fd = (loss(&mut d, &xp) - loss(&mut d, &xm)) / (2.0 * eps);
            assert!((fd - dx.data()[i]).abs() < 1e-2, "dx[{i}]");
        }
        // Weight gradient (spot check).
        let wg = d.params()[0].grad.clone();
        for i in [0usize, 3, 5] {
            let orig = d.weight.value.data()[i];
            d.weight.value.data_mut()[i] = orig + eps;
            let lp = loss(&mut d, &x);
            d.weight.value.data_mut()[i] = orig - eps;
            let lm = loss(&mut d, &x);
            d.weight.value.data_mut()[i] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            assert!((fd - wg.data()[i]).abs() < 1e-2, "dw[{i}]");
        }
    }

    #[test]
    fn clone_resets_cache_but_keeps_params() {
        let mut d = Dense::new(2, 2, &mut rng(3));
        let x = Tensor::from_vec([1, 2], vec![1., 2.]);
        d.forward(&x, true);
        let c = d.clone();
        assert_eq!(c.params()[0].value, d.params()[0].value);
        assert!(c.cached_input.is_none());
    }

    #[test]
    #[should_panic(expected = "features mismatch")]
    fn wrong_input_width_panics() {
        let mut d = Dense::new(4, 2, &mut rng(1));
        d.forward(&Tensor::zeros([1, 3]), true);
    }
}
