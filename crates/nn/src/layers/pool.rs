//! Max-pooling layer over NCHW activations.

use crate::layer::{Layer, LayerWs};
use middle_tensor::conv::{
    maxpool2d_backward, maxpool2d_backward_into, maxpool2d_forward, maxpool2d_forward_into,
};
use middle_tensor::{Shape, Tensor};

/// Coerces a workspace slot to the pool variant, initialising it lazily.
fn pool_ws(ws: &mut LayerWs) -> &mut Vec<u32> {
    if !matches!(ws, LayerWs::Pool { .. }) {
        *ws = LayerWs::Pool { arg: Vec::new() };
    }
    match ws {
        LayerWs::Pool { arg } => arg,
        _ => unreachable!(),
    }
}

/// Non-overlapping max pooling with a square window (stride = window).
#[derive(Clone)]
pub struct MaxPool2d {
    window: usize,
    cached: Option<(Shape, Vec<u32>)>,
}

impl MaxPool2d {
    /// Creates a pooling layer with the given window extent.
    ///
    /// # Panics
    /// Panics when `window == 0`.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "pool window must be positive");
        MaxPool2d {
            window,
            cached: None,
        }
    }
}

impl Layer for MaxPool2d {
    fn name(&self) -> &'static str {
        "maxpool2d"
    }

    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        let (out, arg) = maxpool2d_forward(input, self.window);
        self.cached = Some((input.shape().clone(), arg));
        out
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        let (out, _) = maxpool2d_forward(input, self.window);
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let (shape, arg) = self
            .cached
            .as_ref()
            .expect("backward called before forward");
        maxpool2d_backward(shape, grad_out, arg)
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(MaxPool2d {
            window: self.window,
            cached: None,
        })
    }

    fn forward_into(&mut self, input: &Tensor, _train: bool, ws: &mut LayerWs, out: &mut Tensor) {
        maxpool2d_forward_into(input, self.window, out, pool_ws(ws));
    }

    fn backward_into(
        &mut self,
        input: &Tensor,
        _output: &Tensor,
        grad_out: &Tensor,
        ws: &mut LayerWs,
        grad_in: &mut Tensor,
        need_grad_in: bool,
    ) {
        if !need_grad_in {
            return;
        }
        maxpool2d_backward_into(input.shape(), grad_out, pool_ws(ws), grad_in);
    }

    fn infer_into(&self, input: &Tensor, ws: &mut LayerWs, out: &mut Tensor) {
        maxpool2d_forward_into(input, self.window, out, pool_ws(ws));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_backward_roundtrip() {
        let mut p = MaxPool2d::new(2);
        let x = Tensor::from_vec([1, 1, 2, 2], vec![1., 4., 2., 3.]);
        let y = p.forward(&x, true);
        assert_eq!(y.data(), &[4.]);
        let dx = p.backward(&Tensor::from_vec([1, 1, 1, 1], vec![2.0]));
        assert_eq!(dx.data(), &[0., 2., 0., 0.]);
    }

    #[test]
    fn shape_halves_with_window_two() {
        let mut p = MaxPool2d::new(2);
        let y = p.forward(&Tensor::zeros([2, 3, 8, 8]), true);
        assert_eq!(y.shape().dims(), &[2, 3, 4, 4]);
    }
}
