//! Concrete layer implementations.

pub mod activation;
pub mod conv2d;
pub mod dense;
pub mod dropout;
pub mod flatten;
pub mod pool;

pub use activation::{Relu, Tanh};
pub use conv2d::Conv2d;
pub use dense::Dense;
pub use dropout::Dropout;
pub use flatten::Flatten;
pub use pool::MaxPool2d;
