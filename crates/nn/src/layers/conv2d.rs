//! 2-D convolution layer over NCHW activations.

use crate::layer::{Layer, LayerWs, Param};
use middle_tensor::conv::{
    conv2d_backward, conv2d_backward_into, conv2d_forward, conv2d_forward_into, ConvGeometry,
    ConvScratch,
};
use middle_tensor::random::he_normal;
use middle_tensor::{ops, Tensor};
use rand::rngs::StdRng;

/// Coerces a workspace slot to the conv variant, initialising it lazily.
fn conv_ws(ws: &mut LayerWs) -> (&mut ConvScratch, &mut Tensor, &mut Tensor) {
    if !matches!(ws, LayerWs::Conv { .. }) {
        *ws = LayerWs::Conv {
            scratch: ConvScratch::default(),
            dw: Tensor::zeros([0]),
            db: Tensor::zeros([0]),
        };
    }
    match ws {
        LayerWs::Conv { scratch, dw, db } => (scratch, dw, db),
        _ => unreachable!(),
    }
}

/// Convolution layer with square kernels, He-normal initialisation.
pub struct Conv2d {
    geometry: ConvGeometry,
    weight: Param,
    bias: Param,
    cached_input: Option<Tensor>,
}

impl Conv2d {
    /// Creates a convolution layer for the given geometry.
    pub fn new(geometry: ConvGeometry, rng: &mut StdRng) -> Self {
        let fan_in = geometry.patch_len();
        let weight = he_normal([geometry.out_c, fan_in], fan_in, rng);
        Conv2d {
            geometry,
            weight: Param::new(weight),
            bias: Param::new(Tensor::zeros([geometry.out_c])),
            cached_input: None,
        }
    }

    /// The layer's static geometry.
    pub fn geometry(&self) -> &ConvGeometry {
        &self.geometry
    }
}

impl Clone for Conv2d {
    fn clone(&self) -> Self {
        Conv2d {
            geometry: self.geometry,
            weight: self.weight.clone(),
            bias: self.bias.clone(),
            cached_input: None,
        }
    }
}

impl Layer for Conv2d {
    fn name(&self) -> &'static str {
        "conv2d"
    }

    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        self.cached_input = Some(input.clone());
        conv2d_forward(input, &self.weight.value, &self.bias.value, &self.geometry)
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        conv2d_forward(input, &self.weight.value, &self.bias.value, &self.geometry)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .as_ref()
            .expect("backward called before forward");
        let (dx, dw, db) = conv2d_backward(input, &self.weight.value, grad_out, &self.geometry);
        ops::add_inplace(&mut self.weight.grad, &dw);
        ops::add_inplace(&mut self.bias.grad, &db);
        dx
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.weight, &self.bias]
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward_into(&mut self, input: &Tensor, _train: bool, ws: &mut LayerWs, out: &mut Tensor) {
        let (scratch, _, _) = conv_ws(ws);
        conv2d_forward_into(
            input,
            &self.weight.value,
            &self.bias.value,
            &self.geometry,
            scratch,
            out,
        );
    }

    fn backward_into(
        &mut self,
        input: &Tensor,
        _output: &Tensor,
        grad_out: &Tensor,
        ws: &mut LayerWs,
        grad_in: &mut Tensor,
        need_grad_in: bool,
    ) {
        let (scratch, dw, db) = conv_ws(ws);
        conv2d_backward_into(
            input,
            &self.weight.value,
            grad_out,
            &self.geometry,
            scratch,
            dw,
            db,
            if need_grad_in { Some(grad_in) } else { None },
        );
        ops::add_inplace(&mut self.weight.grad, dw);
        ops::add_inplace(&mut self.bias.grad, db);
    }

    fn infer_into(&self, input: &Tensor, ws: &mut LayerWs, out: &mut Tensor) {
        let (scratch, _, _) = conv_ws(ws);
        conv2d_forward_into(
            input,
            &self.weight.value,
            &self.bias.value,
            &self.geometry,
            scratch,
            out,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use middle_tensor::random::rng;

    fn geom() -> ConvGeometry {
        ConvGeometry {
            in_c: 1,
            out_c: 2,
            kernel: 3,
            stride: 1,
            pad: 1,
            in_h: 4,
            in_w: 4,
        }
    }

    #[test]
    fn forward_shape() {
        let mut c = Conv2d::new(geom(), &mut rng(1));
        let x = Tensor::zeros([3, 1, 4, 4]);
        let y = c.forward(&x, true);
        assert_eq!(y.shape().dims(), &[3, 2, 4, 4]);
    }

    #[test]
    fn backward_accumulates_param_grads() {
        let mut c = Conv2d::new(geom(), &mut rng(2));
        let x = Tensor::ones([1, 1, 4, 4]);
        let y = c.forward(&x, true);
        let dx = c.backward(&Tensor::ones(y.shape().clone()));
        assert_eq!(dx.shape(), x.shape());
        let bias_grad = &c.params()[1].grad;
        // dL/db for sum loss is out_h*out_w per channel.
        assert_eq!(bias_grad.data(), &[16.0, 16.0]);
    }

    #[test]
    fn two_forwards_then_backward_uses_latest_input() {
        let mut c = Conv2d::new(geom(), &mut rng(3));
        let x1 = Tensor::zeros([1, 1, 4, 4]);
        let x2 = Tensor::ones([1, 1, 4, 4]);
        c.forward(&x1, true);
        let y = c.forward(&x2, true);
        // Backward with the cached x2: weight grads equal sum of windows of x2,
        // which is nonzero — would be all zero if x1 were cached.
        c.backward(&Tensor::ones(y.shape().clone()));
        assert!(c.params()[0].grad.data().iter().any(|&g| g != 0.0));
    }
}
