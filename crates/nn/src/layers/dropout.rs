//! Inverted dropout with a layer-owned deterministic RNG.

use crate::layer::Layer;
use middle_tensor::random::rng;
use middle_tensor::Tensor;
use rand::rngs::StdRng;
use rand::Rng;

/// Inverted dropout: at train time each activation is zeroed with
/// probability `p` and survivors are scaled by `1/(1-p)`, so evaluation
/// needs no rescaling. Each layer instance owns a seeded RNG, keeping
/// whole-simulation runs reproducible.
pub struct Dropout {
    p: f32,
    rng: StdRng,
    seed: u64,
    mask: Option<Vec<f32>>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p` and RNG seed.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p < 1.0`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "dropout p must be in [0, 1)");
        Dropout {
            p,
            rng: rng(seed),
            seed,
            mask: None,
        }
    }
}

impl Layer for Dropout {
    fn name(&self) -> &'static str {
        "dropout"
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        if !train || self.p == 0.0 {
            self.mask = None;
            return input.clone();
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mask: Vec<f32> = (0..input.len())
            .map(|_| {
                if self.rng.gen::<f32>() < keep {
                    scale
                } else {
                    0.0
                }
            })
            .collect();
        let mut out = input.clone();
        for (x, &m) in out.data_mut().iter_mut().zip(&mask) {
            *x *= m;
        }
        self.mask = Some(mask);
        out
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        // Inverted dropout is the identity at evaluation time.
        input.clone()
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        match &self.mask {
            None => grad_out.clone(),
            Some(mask) => {
                let mut out = grad_out.clone();
                for (g, &m) in out.data_mut().iter_mut().zip(mask) {
                    *g *= m;
                }
                out
            }
        }
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(Dropout::new(self.p, self.seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_mode_is_identity() {
        let mut d = Dropout::new(0.5, 1);
        let x = Tensor::from_vec([4], vec![1., 2., 3., 4.]);
        assert_eq!(d.forward(&x, false), x);
    }

    #[test]
    fn train_mode_preserves_expectation_roughly() {
        let mut d = Dropout::new(0.3, 42);
        let x = Tensor::ones([10_000]);
        let y = d.forward(&x, true);
        assert!((y.mean() - 1.0).abs() < 0.05, "mean {}", y.mean());
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut d = Dropout::new(0.5, 7);
        let x = Tensor::ones([100]);
        let y = d.forward(&x, true);
        let dx = d.backward(&Tensor::ones([100]));
        // Gradient passes exactly where the forward passed.
        for (yv, dv) in y.data().iter().zip(dx.data()) {
            assert_eq!(yv, dv);
        }
    }

    #[test]
    fn zero_probability_never_drops() {
        let mut d = Dropout::new(0.0, 9);
        let x = Tensor::from_vec([5], vec![1., 2., 3., 4., 5.]);
        assert_eq!(d.forward(&x, true), x);
    }
}
