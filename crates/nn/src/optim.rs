//! First-order optimizers: SGD, SGD with momentum, and Adam.
//!
//! Optimizer state (momentum buffers, Adam moments) is keyed by parameter
//! position in the model's canonical parameter order, matching
//! [`crate::model::Sequential::params_mut`]. State is lazily initialised on
//! the first step, so an optimizer can be constructed before the model.

use crate::layer::Param;
use serde::{Deserialize, Serialize};

/// A first-order optimizer updating parameters from accumulated gradients.
///
/// `Send + Sync` so a device can cache its optimizer while remaining
/// shareable across threads during read-only phases (selection scoring).
pub trait Optimizer: Send + Sync {
    /// Applies one update step to `params` (in canonical model order) and
    /// clears their gradients.
    fn step(&mut self, params: &mut [&mut Param]);

    /// Current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (used for decay schedules such as the
    /// `η_t = 2/(μ(γ+t))` schedule of Theorem 1).
    fn set_learning_rate(&mut self, lr: f32);

    /// Restores the freshly-built state (zero momentum/moment buffers,
    /// step counter 0) without reallocating.
    ///
    /// After `reset()` an optimizer behaves bitwise-identically to a new
    /// [`OptimizerKind::build`] of the same kind: the lazily-initialised
    /// state vectors start at zero either way. This is what lets the
    /// zero-alloc train path keep one optimizer per device across
    /// participations while matching the fresh-optimizer-per-participation
    /// semantics.
    fn reset(&mut self) {}
}

/// Declarative optimizer choice, serialisable inside experiment configs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OptimizerKind {
    /// Plain stochastic gradient descent.
    Sgd {
        /// Learning rate.
        lr: f32,
    },
    /// SGD with classical (heavy-ball) momentum.
    Momentum {
        /// Learning rate.
        lr: f32,
        /// Momentum coefficient (paper: 0.9).
        momentum: f32,
    },
    /// Adam with standard bias correction.
    Adam {
        /// Learning rate.
        lr: f32,
    },
}

impl OptimizerKind {
    /// Instantiates the optimizer.
    pub fn build(&self) -> Box<dyn Optimizer> {
        match *self {
            OptimizerKind::Sgd { lr } => Box::new(Sgd::new(lr)),
            OptimizerKind::Momentum { lr, momentum } => Box::new(MomentumSgd::new(lr, momentum)),
            OptimizerKind::Adam { lr } => Box::new(Adam::new(lr)),
        }
    }
}

/// Plain SGD: `w ← w − lr · g`.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
}

impl Sgd {
    /// Creates SGD with the given learning rate.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0 && lr.is_finite(), "learning rate must be positive");
        Sgd { lr }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [&mut Param]) {
        for p in params.iter_mut() {
            let lr = self.lr;
            for (w, g) in p.value.data_mut().iter_mut().zip(p.grad.data()) {
                *w -= lr * g;
            }
            p.zero_grad();
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Heavy-ball momentum: `v ← μ v + g; w ← w − lr · v`.
#[derive(Debug, Clone)]
pub struct MomentumSgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Vec<f32>>,
}

impl MomentumSgd {
    /// Creates momentum SGD (paper defaults: lr 0.01, momentum 0.9).
    pub fn new(lr: f32, momentum: f32) -> Self {
        assert!(lr > 0.0 && lr.is_finite(), "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        MomentumSgd {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for MomentumSgd {
    fn step(&mut self, params: &mut [&mut Param]) {
        if self.velocity.len() != params.len() {
            self.velocity = params.iter().map(|p| vec![0.0; p.len()]).collect();
        }
        for (p, v) in params.iter_mut().zip(&mut self.velocity) {
            assert_eq!(v.len(), p.len(), "parameter shape changed under optimizer");
            let (lr, mu) = (self.lr, self.momentum);
            for ((w, g), vel) in p
                .value
                .data_mut()
                .iter_mut()
                .zip(p.grad.data())
                .zip(v.iter_mut())
            {
                *vel = mu * *vel + g;
                *w -= lr * *vel;
            }
            p.zero_grad();
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn reset(&mut self) {
        for v in &mut self.velocity {
            v.fill(0.0);
        }
    }
}

/// Adam (Kingma & Ba) with bias-corrected first/second moments.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Creates Adam with standard betas (0.9, 0.999) and eps 1e-8.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0 && lr.is_finite(), "learning rate must be positive");
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [&mut Param]) {
        if self.m.len() != params.len() {
            self.m = params.iter().map(|p| vec![0.0; p.len()]).collect();
            self.v = params.iter().map(|p| vec![0.0; p.len()]).collect();
            self.t = 0;
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for ((p, m), v) in params.iter_mut().zip(&mut self.m).zip(&mut self.v) {
            assert_eq!(m.len(), p.len(), "parameter shape changed under optimizer");
            let (lr, b1, b2, eps) = (self.lr, self.beta1, self.beta2, self.eps);
            for (((w, g), mi), vi) in p
                .value
                .data_mut()
                .iter_mut()
                .zip(p.grad.data())
                .zip(m.iter_mut())
                .zip(v.iter_mut())
            {
                *mi = b1 * *mi + (1.0 - b1) * g;
                *vi = b2 * *vi + (1.0 - b2) * g * g;
                let mhat = *mi / bc1;
                let vhat = *vi / bc2;
                *w -= lr * mhat / (vhat.sqrt() + eps);
            }
            p.zero_grad();
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn reset(&mut self) {
        for m in &mut self.m {
            m.fill(0.0);
        }
        for v in &mut self.v {
            v.fill(0.0);
        }
        self.t = 0;
    }
}

/// Decoupled weight decay (AdamW-style): shrinks parameters by
/// `lr · decay` before delegating to the inner optimizer. With plain SGD
/// this equals adding an L2 penalty `decay/2 · ‖w‖²` to the loss — the
/// regulariser that makes logistic regression strongly convex
/// (Assumption 2 of the paper's Theorem 1).
pub struct WeightDecay {
    inner: Box<dyn Optimizer>,
    decay: f32,
}

impl WeightDecay {
    /// Wraps `inner` with decay coefficient `decay ≥ 0`.
    pub fn new(inner: Box<dyn Optimizer>, decay: f32) -> Self {
        assert!(
            decay >= 0.0 && decay.is_finite(),
            "decay must be non-negative"
        );
        WeightDecay { inner, decay }
    }
}

impl Optimizer for WeightDecay {
    fn step(&mut self, params: &mut [&mut Param]) {
        let shrink = 1.0 - self.inner.learning_rate() * self.decay;
        for p in params.iter_mut() {
            for w in p.value.data_mut() {
                *w *= shrink;
            }
        }
        self.inner.step(params);
    }

    fn learning_rate(&self) -> f32 {
        self.inner.learning_rate()
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.inner.set_learning_rate(lr);
    }

    fn reset(&mut self) {
        self.inner.reset();
    }
}

/// Global-norm gradient clipping: rescales all gradients so their joint
/// L2 norm is at most `max_norm` before delegating to the inner
/// optimizer — the standard guard against the gradient spikes that
/// Non-IID local training produces.
pub struct GradClip {
    inner: Box<dyn Optimizer>,
    max_norm: f32,
}

impl GradClip {
    /// Wraps `inner` with the given global-norm ceiling.
    pub fn new(inner: Box<dyn Optimizer>, max_norm: f32) -> Self {
        assert!(
            max_norm > 0.0 && max_norm.is_finite(),
            "max_norm must be positive"
        );
        GradClip { inner, max_norm }
    }
}

impl Optimizer for GradClip {
    fn step(&mut self, params: &mut [&mut Param]) {
        let total: f32 = params
            .iter()
            .map(|p| p.grad.data().iter().map(|g| g * g).sum::<f32>())
            .sum();
        let norm = total.sqrt();
        if norm > self.max_norm {
            let scale = self.max_norm / norm;
            for p in params.iter_mut() {
                for g in p.grad.data_mut() {
                    *g *= scale;
                }
            }
        }
        self.inner.step(params);
    }

    fn learning_rate(&self) -> f32 {
        self.inner.learning_rate()
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.inner.set_learning_rate(lr);
    }

    fn reset(&mut self) {
        self.inner.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use middle_tensor::Tensor;

    fn param(vals: &[f32], grads: &[f32]) -> Param {
        let mut p = Param::new(Tensor::from_vec([vals.len()], vals.to_vec()));
        p.grad.data_mut().copy_from_slice(grads);
        p
    }

    #[test]
    fn sgd_takes_gradient_step_and_clears() {
        let mut p = param(&[1.0, 2.0], &[0.5, -0.5]);
        let mut opt = Sgd::new(0.1);
        opt.step(&mut [&mut p]);
        assert_eq!(p.value.data(), &[0.95, 2.05]);
        assert_eq!(p.grad.data(), &[0.0, 0.0]);
    }

    #[test]
    fn momentum_accelerates_constant_gradient() {
        let mut p = param(&[0.0], &[1.0]);
        let mut opt = MomentumSgd::new(0.1, 0.9);
        opt.step(&mut [&mut p]);
        let step1 = -p.value.data()[0];
        p.grad.data_mut()[0] = 1.0;
        let before = p.value.data()[0];
        opt.step(&mut [&mut p]);
        let step2 = before - p.value.data()[0];
        assert!(
            step2 > step1,
            "momentum must grow the step: {step1} vs {step2}"
        );
        assert!((step2 - 0.1 * 1.9).abs() < 1e-6);
    }

    #[test]
    fn adam_first_step_is_lr_sized() {
        // With bias correction the first Adam step is ~lr regardless of
        // gradient scale.
        for scale in [0.001f32, 1.0, 1000.0] {
            let mut p = param(&[0.0], &[scale]);
            let mut opt = Adam::new(0.01);
            opt.step(&mut [&mut p]);
            assert!(
                (p.value.data()[0] + 0.01).abs() < 1e-4,
                "scale {scale}: {}",
                p.value.data()[0]
            );
        }
    }

    #[test]
    fn optimizers_converge_on_quadratic() {
        // Minimise f(w) = (w-3)^2 with each optimizer.
        for kind in [
            OptimizerKind::Sgd { lr: 0.1 },
            OptimizerKind::Momentum {
                lr: 0.05,
                momentum: 0.9,
            },
            OptimizerKind::Adam { lr: 0.2 },
        ] {
            let mut opt = kind.build();
            let mut p = Param::new(Tensor::from_vec([1], vec![0.0]));
            for _ in 0..200 {
                let w = p.value.data()[0];
                p.grad.data_mut()[0] = 2.0 * (w - 3.0);
                opt.step(&mut [&mut p]);
            }
            let w = p.value.data()[0];
            assert!((w - 3.0).abs() < 0.05, "{kind:?} ended at {w}");
        }
    }

    #[test]
    fn set_learning_rate_applies() {
        let mut opt = Sgd::new(0.1);
        opt.set_learning_rate(0.5);
        let mut p = param(&[1.0], &[1.0]);
        opt.step(&mut [&mut p]);
        assert_eq!(p.value.data(), &[0.5]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_lr_panics() {
        Sgd::new(0.0);
    }

    #[test]
    fn weight_decay_shrinks_before_stepping() {
        // Zero gradient: only the decay acts.
        let mut p = param(&[2.0], &[0.0]);
        let mut opt = WeightDecay::new(Box::new(Sgd::new(0.1)), 0.5);
        opt.step(&mut [&mut p]);
        assert!((p.value.data()[0] - 2.0 * (1.0 - 0.05)).abs() < 1e-6);
    }

    #[test]
    fn weight_decay_pulls_toward_origin_at_stationarity() {
        // Minimise 0 loss with decay: w -> 0.
        let mut p = param(&[1.0], &[0.0]);
        let mut opt = WeightDecay::new(Box::new(Sgd::new(0.1)), 1.0);
        for _ in 0..200 {
            p.grad.data_mut()[0] = 0.0;
            opt.step(&mut [&mut p]);
        }
        assert!(p.value.data()[0].abs() < 1e-4);
    }

    #[test]
    fn grad_clip_caps_global_norm() {
        let mut p = param(&[0.0, 0.0], &[30.0, 40.0]); // norm 50
        let mut opt = GradClip::new(Box::new(Sgd::new(1.0)), 5.0);
        opt.step(&mut [&mut p]);
        // Clipped gradient = (3, 4); step of lr 1 moves to (-3, -4).
        assert!((p.value.data()[0] + 3.0).abs() < 1e-5);
        assert!((p.value.data()[1] + 4.0).abs() < 1e-5);
    }

    #[test]
    fn grad_clip_passes_small_gradients_through() {
        let mut p = param(&[0.0], &[0.5]);
        let mut opt = GradClip::new(Box::new(Sgd::new(1.0)), 5.0);
        opt.step(&mut [&mut p]);
        assert!((p.value.data()[0] + 0.5).abs() < 1e-6);
    }

    #[test]
    fn wrappers_forward_learning_rate() {
        let mut opt = WeightDecay::new(Box::new(Sgd::new(0.3)), 0.1);
        assert!((opt.learning_rate() - 0.3).abs() < 1e-7);
        opt.set_learning_rate(0.7);
        assert!((opt.learning_rate() - 0.7).abs() < 1e-7);
    }
}
