//! Sequential model container.

use crate::layer::{Layer, Param};
use crate::loss::{softmax_cross_entropy, softmax_cross_entropy_into};
use crate::optim::Optimizer;
use crate::scratch::NetScratch;
use middle_tensor::reduce::argmax_rows;
use middle_tensor::Tensor;

/// A feed-forward stack of layers trained with softmax cross-entropy.
///
/// `Sequential` is the unit of federated exchange: devices, edges and the
/// cloud all hold `Sequential` models and blend them through the flat
/// parameter view in [`crate::params`].
#[derive(Clone, Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// An empty model; add layers with [`Sequential::push`].
    pub fn new() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Appends a layer, returning `self` for builder-style chaining.
    pub fn push(mut self, layer: impl Layer + 'static) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Number of layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Layer names in order, for summaries.
    pub fn layer_names(&self) -> Vec<&'static str> {
        self.layers.iter().map(|l| l.name()).collect()
    }

    /// Forward pass through all layers.
    pub fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, train);
        }
        x
    }

    /// Backward pass through all layers (after a matching `forward`).
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut g = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    /// All trainable parameters in canonical (layer, param) order.
    pub fn params(&self) -> Vec<&Param> {
        self.layers.iter().flat_map(|l| l.params()).collect()
    }

    /// Mutable view of all trainable parameters in canonical order.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }

    /// Total scalar parameter count.
    pub fn param_count(&self) -> usize {
        self.params().iter().map(|p| p.len()).sum()
    }

    /// Clears all accumulated gradients.
    pub fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }

    /// One supervised training step on a classification batch:
    /// forward, cross-entropy, backward, optimizer step.
    ///
    /// Returns the batch loss.
    pub fn train_batch(
        &mut self,
        inputs: &Tensor,
        labels: &[usize],
        optimizer: &mut dyn Optimizer,
    ) -> f32 {
        let logits = self.forward(inputs, true);
        let (loss, dlogits) = softmax_cross_entropy(&logits, labels);
        self.backward(&dlogits);
        optimizer.step(&mut self.params_mut());
        loss
    }

    /// Workspace-backed training step: bitwise-identical to
    /// [`Sequential::train_batch`] but allocation-free in steady state.
    ///
    /// All intermediates live in `scratch`, which is grown on first use
    /// and reused across calls; layers with workspace kernels (conv,
    /// dense, relu, pool, flatten) run their batched `_into` paths and the
    /// rest fall back to the allocating trait defaults.
    pub fn train_batch_ws(
        &mut self,
        inputs: &Tensor,
        labels: &[usize],
        optimizer: &mut dyn Optimizer,
        scratch: &mut NetScratch,
    ) -> f32 {
        let depth = self.layers.len();
        assert!(depth > 0, "cannot train an empty model");
        scratch.ensure(depth);

        for i in 0..depth {
            let (prev, rest) = scratch.acts.split_at_mut(i);
            let input = if i == 0 { inputs } else { &prev[i - 1] };
            self.layers[i].forward_into(input, true, &mut scratch.ws[i], &mut rest[0]);
        }
        let loss =
            softmax_cross_entropy_into(&scratch.acts[depth - 1], labels, &mut scratch.dlogits);
        for i in (0..depth).rev() {
            let input = if i == 0 { inputs } else { &scratch.acts[i - 1] };
            let output = &scratch.acts[i];
            let (lo, hi) = scratch.grads.split_at_mut(i + 1);
            let grad_out: &Tensor = if i + 1 == depth {
                &scratch.dlogits
            } else {
                &hi[0]
            };
            self.layers[i].backward_into(
                input,
                output,
                grad_out,
                &mut scratch.ws[i],
                &mut lo[i],
                i > 0,
            );
        }
        optimizer.step(&mut self.params_mut());
        loss
    }

    /// Workspace-backed evaluation-mode forward pass: bitwise-identical to
    /// [`Sequential::infer`] but allocation-free in steady state. Returns
    /// the logits held inside `scratch`.
    pub fn infer_ws<'s>(&self, input: &Tensor, scratch: &'s mut NetScratch) -> &'s Tensor {
        let depth = self.layers.len();
        assert!(depth > 0, "cannot infer with an empty model");
        scratch.ensure(depth);
        for i in 0..depth {
            let (prev, rest) = scratch.acts.split_at_mut(i);
            let x = if i == 0 { input } else { &prev[i - 1] };
            self.layers[i].infer_into(x, &mut scratch.ws[i], &mut rest[0]);
        }
        &scratch.acts[depth - 1]
    }

    /// Cache-free evaluation-mode forward pass through all layers.
    ///
    /// Numerically identical to `forward(input, false)` but takes `&self`,
    /// so evaluation never needs a model clone or exclusive access.
    pub fn infer(&self, input: &Tensor) -> Tensor {
        let mut x = input.clone();
        for layer in &self.layers {
            x = layer.infer(&x);
        }
        x
    }

    /// Predicted class labels for a batch (evaluation mode).
    pub fn predict(&self, inputs: &Tensor) -> Vec<usize> {
        let logits = self.infer(inputs);
        argmax_rows(&logits)
    }

    /// Mean cross-entropy loss on a batch without updating parameters.
    pub fn eval_loss(&self, inputs: &Tensor, labels: &[usize]) -> f32 {
        let logits = self.infer(inputs);
        softmax_cross_entropy(&logits, labels).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Relu};
    use crate::optim::Sgd;
    use middle_tensor::random::rng;

    fn tiny_model(seed: u64) -> Sequential {
        let mut r = rng(seed);
        Sequential::new()
            .push(Dense::new(2, 8, &mut r))
            .push(Relu::new())
            .push(Dense::new(8, 2, &mut r))
    }

    #[test]
    fn forward_shapes_flow_through() {
        let mut m = tiny_model(1);
        let y = m.forward(&Tensor::zeros([5, 2]), false);
        assert_eq!(y.shape().dims(), &[5, 2]);
        assert_eq!(m.depth(), 3);
        assert_eq!(m.layer_names(), vec!["dense", "relu", "dense"]);
    }

    #[test]
    fn param_count_matches_layer_sizes() {
        let m = tiny_model(2);
        // dense(2,8): 16+8, dense(8,2): 16+2.
        assert_eq!(m.param_count(), 16 + 8 + 16 + 2);
    }

    #[test]
    fn training_separates_two_blobs() {
        // Two linearly separable clusters; a tiny MLP must fit them.
        let mut m = tiny_model(3);
        let mut opt = Sgd::new(0.5);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..20 {
            let t = i as f32 * 0.1;
            xs.extend_from_slice(&[1.0 + 0.05 * t, 1.0 - 0.05 * t]);
            ys.push(0usize);
            xs.extend_from_slice(&[-1.0 - 0.05 * t, -1.0 + 0.05 * t]);
            ys.push(1usize);
        }
        let x = Tensor::from_vec([40, 2], xs);
        let mut last = f32::INFINITY;
        for _ in 0..100 {
            last = m.train_batch(&x, &ys, &mut opt);
        }
        assert!(last < 0.05, "loss {last}");
        let preds = m.predict(&x);
        let correct = preds.iter().zip(&ys).filter(|(a, b)| a == b).count();
        assert_eq!(correct, 40);
    }

    #[test]
    fn infer_matches_eval_forward_bitwise() {
        use crate::layers::{Conv2d, Dropout, Flatten, MaxPool2d, Tanh};
        use middle_tensor::conv::ConvGeometry;
        let mut r = rng(6);
        let mut m = Sequential::new()
            .push(Conv2d::new(
                ConvGeometry {
                    in_c: 1,
                    out_c: 2,
                    kernel: 3,
                    stride: 1,
                    pad: 1,
                    in_h: 4,
                    in_w: 4,
                },
                &mut r,
            ))
            .push(Relu::new())
            .push(MaxPool2d::new(2))
            .push(Flatten::new())
            .push(Dropout::new(0.3, 11))
            .push(Dense::new(8, 3, &mut r))
            .push(Tanh::new());
        let x = Tensor::from_vec(
            [2, 1, 4, 4],
            (0..32).map(|i| (i as f32) * 0.17 - 2.0).collect(),
        );
        let via_forward = m.forward(&x, false);
        let via_infer = m.infer(&x);
        assert_eq!(via_forward.shape(), via_infer.shape());
        for (a, b) in via_forward.data().iter().zip(via_infer.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn clone_is_independent() {
        let mut a = tiny_model(4);
        let b = a.clone();
        let mut opt = Sgd::new(0.1);
        a.train_batch(&Tensor::ones([1, 2]), &[0], &mut opt);
        // b unchanged.
        let pa = a.params();
        let pb = b.params();
        assert_ne!(pa[0].value, pb[0].value);
    }

    #[test]
    fn zero_grad_clears_all() {
        let mut m = tiny_model(5);
        let y = m.forward(&Tensor::ones([2, 2]), true);
        m.backward(&Tensor::ones(y.shape().clone()));
        assert!(m
            .params()
            .iter()
            .any(|p| p.grad.data().iter().any(|&g| g != 0.0)));
        m.zero_grad();
        assert!(m
            .params()
            .iter()
            .all(|p| p.grad.data().iter().all(|&g| g == 0.0)));
    }
}
