//! The [`Layer`] trait and trainable [`Param`] storage.

use middle_tensor::conv::ConvScratch;
use middle_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// A trainable parameter tensor paired with its gradient accumulator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Param {
    /// Current parameter values.
    pub value: Tensor,
    /// Gradient of the loss w.r.t. `value`, accumulated by `backward`.
    pub grad: Tensor,
}

impl Param {
    /// Wraps an initial value with a zeroed gradient of the same shape.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape().clone());
        Param { value, grad }
    }

    /// Number of scalar parameters.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// True when the parameter holds no elements.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.grad.data_mut().fill(0.0);
    }
}

/// Per-layer reusable workspace for the zero-allocation train path.
///
/// One `LayerWs` accompanies each layer inside a
/// [`crate::scratch::NetScratch`]. Layers lazily coerce the slot to their
/// own variant on first use, so a fresh `NetScratch` starts as all
/// [`LayerWs::None`]; layers without a workspace override simply leave it
/// there and run the allocating fallback path.
#[derive(Debug, Default, Clone)]
pub enum LayerWs {
    /// No workspace (allocating fallback path).
    #[default]
    None,
    /// Batched convolution workspace.
    Conv {
        /// im2col/GEMM buffers shared between forward and backward.
        scratch: ConvScratch,
        /// Weight-gradient staging, added into [`Param::grad`] per batch.
        dw: Tensor,
        /// Bias-gradient staging.
        db: Tensor,
    },
    /// Dense parameter-gradient staging.
    Dense {
        /// Weight-gradient staging.
        dw: Tensor,
        /// Bias-gradient staging.
        db: Tensor,
    },
    /// Max-pool argmax table.
    Pool {
        /// Flat argmax indices from the forward pass.
        arg: Vec<u32>,
    },
}

/// One differentiable stage of a [`crate::model::Sequential`] network.
///
/// The forward pass may cache whatever it needs for the backward pass
/// (inputs, masks, argmax tables); `backward` must be called after the
/// matching `forward`, with the upstream gradient of the forward output,
/// and returns the gradient w.r.t. the forward input while accumulating
/// parameter gradients into [`Param::grad`].
pub trait Layer: Send + Sync {
    /// Human-readable layer name for summaries and error messages.
    fn name(&self) -> &'static str;

    /// Forward pass. `train` enables training-only behaviour (dropout).
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor;

    /// Backward pass: upstream gradient in, input gradient out.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Cache-free evaluation-mode forward pass.
    ///
    /// Semantically equivalent to `forward(input, false)` but takes
    /// `&self`: no backward caches are written, so shared references to a
    /// model can run inference concurrently. The default falls back to
    /// cloning the layer; every concrete layer overrides it with a
    /// direct computation.
    fn infer(&self, input: &Tensor) -> Tensor {
        let mut scratch = self.clone_box();
        scratch.forward(input, false)
    }

    /// Mutable access to this layer's trainable parameters (possibly none).
    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    /// Shared access to this layer's trainable parameters (possibly none).
    fn params(&self) -> Vec<&Param> {
        Vec::new()
    }

    /// Clones the layer behind the trait object (models are cloned per
    /// federated device).
    fn clone_box(&self) -> Box<dyn Layer>;

    /// Workspace-backed forward pass writing into caller-owned `out`.
    ///
    /// Bitwise-identical to [`Layer::forward`] but allocation-free when
    /// overridden: `out` is resized and fully overwritten, and whatever
    /// the backward pass needs lands in `ws` instead of internal caches.
    /// Overriding layers must not rely on internal caches —
    /// [`Layer::backward_into`] receives the forward `input`/`output`
    /// tensors explicitly. The default falls back to the allocating
    /// [`Layer::forward`] (which caches), so unoverridden layers keep
    /// working through their cache-based [`Layer::backward`].
    fn forward_into(&mut self, input: &Tensor, train: bool, ws: &mut LayerWs, out: &mut Tensor) {
        let _ = ws;
        *out = self.forward(input, train);
    }

    /// Workspace-backed backward pass writing into caller-owned `grad_in`.
    ///
    /// `input`/`output` are the exact tensors seen/produced by the
    /// matching [`Layer::forward_into`]. Parameter gradients accumulate
    /// into [`Param::grad`] exactly like [`Layer::backward`]. When
    /// `need_grad_in` is false the input gradient may be skipped entirely
    /// (the first layer of a network never needs one) and `grad_in` is
    /// left unspecified.
    #[allow(clippy::too_many_arguments)]
    fn backward_into(
        &mut self,
        input: &Tensor,
        output: &Tensor,
        grad_out: &Tensor,
        ws: &mut LayerWs,
        grad_in: &mut Tensor,
        need_grad_in: bool,
    ) {
        let _ = (input, output, ws);
        let g = self.backward(grad_out);
        if need_grad_in {
            *grad_in = g;
        }
    }

    /// Workspace-backed evaluation-mode forward pass into caller-owned
    /// `out`. Bitwise-identical to [`Layer::infer`].
    fn infer_into(&self, input: &Tensor, ws: &mut LayerWs, out: &mut Tensor) {
        let _ = ws;
        *out = self.infer(input);
    }
}

impl Clone for Box<dyn Layer> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_starts_with_zero_grad() {
        let p = Param::new(Tensor::ones([3]));
        assert_eq!(p.grad.data(), &[0., 0., 0.]);
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn zero_grad_clears() {
        let mut p = Param::new(Tensor::ones([2]));
        p.grad.data_mut().copy_from_slice(&[5., 6.]);
        p.zero_grad();
        assert_eq!(p.grad.data(), &[0., 0.]);
    }
}
