//! The [`Layer`] trait and trainable [`Param`] storage.

use middle_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// A trainable parameter tensor paired with its gradient accumulator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Param {
    /// Current parameter values.
    pub value: Tensor,
    /// Gradient of the loss w.r.t. `value`, accumulated by `backward`.
    pub grad: Tensor,
}

impl Param {
    /// Wraps an initial value with a zeroed gradient of the same shape.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape().clone());
        Param { value, grad }
    }

    /// Number of scalar parameters.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// True when the parameter holds no elements.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.grad.data_mut().fill(0.0);
    }
}

/// One differentiable stage of a [`crate::model::Sequential`] network.
///
/// The forward pass may cache whatever it needs for the backward pass
/// (inputs, masks, argmax tables); `backward` must be called after the
/// matching `forward`, with the upstream gradient of the forward output,
/// and returns the gradient w.r.t. the forward input while accumulating
/// parameter gradients into [`Param::grad`].
pub trait Layer: Send + Sync {
    /// Human-readable layer name for summaries and error messages.
    fn name(&self) -> &'static str;

    /// Forward pass. `train` enables training-only behaviour (dropout).
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor;

    /// Backward pass: upstream gradient in, input gradient out.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Cache-free evaluation-mode forward pass.
    ///
    /// Semantically equivalent to `forward(input, false)` but takes
    /// `&self`: no backward caches are written, so shared references to a
    /// model can run inference concurrently. The default falls back to
    /// cloning the layer; every concrete layer overrides it with a
    /// direct computation.
    fn infer(&self, input: &Tensor) -> Tensor {
        let mut scratch = self.clone_box();
        scratch.forward(input, false)
    }

    /// Mutable access to this layer's trainable parameters (possibly none).
    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    /// Shared access to this layer's trainable parameters (possibly none).
    fn params(&self) -> Vec<&Param> {
        Vec::new()
    }

    /// Clones the layer behind the trait object (models are cloned per
    /// federated device).
    fn clone_box(&self) -> Box<dyn Layer>;
}

impl Clone for Box<dyn Layer> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_starts_with_zero_grad() {
        let p = Param::new(Tensor::ones([3]));
        assert_eq!(p.grad.data(), &[0., 0., 0.]);
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn zero_grad_clears() {
        let mut p = Param::new(Tensor::ones([2]));
        p.grad.data_mut().copy_from_slice(&[5., 6.]);
        p.zero_grad();
        assert_eq!(p.grad.data(), &[0., 0.]);
    }
}
