//! Learning-rate schedules.
//!
//! The paper trains with a constant rate (0.01 momentum / 0.001 Adam),
//! but its Theorem 1 assumes the decaying schedule
//! `η_t = 2/(μ(γ + t))`; both are provided here, together with the
//! common step- and exponential-decay schedules used in ablations.

use serde::{Deserialize, Serialize};

/// A learning-rate schedule: maps a 0-based step index to a rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Schedule {
    /// Constant rate.
    Constant {
        /// The rate.
        lr: f32,
    },
    /// Step decay: `lr · factor^(t / every)`.
    StepDecay {
        /// Initial rate.
        lr: f32,
        /// Multiplicative factor per decay event (in `(0, 1]`).
        factor: f32,
        /// Steps between decay events.
        every: usize,
    },
    /// Exponential decay `lr · exp(−rate · t)`.
    Exponential {
        /// Initial rate.
        lr: f32,
        /// Decay rate per step.
        rate: f32,
    },
    /// The Theorem 1 schedule `η_t = 2/(μ(γ + t))`.
    Theorem1 {
        /// Strong-convexity constant `μ`.
        mu: f32,
        /// Offset `γ = max(8β/μ, I)`.
        gamma: f32,
    },
}

impl Schedule {
    /// The learning rate at step `t`.
    pub fn at(&self, t: usize) -> f32 {
        match *self {
            Schedule::Constant { lr } => lr,
            Schedule::StepDecay { lr, factor, every } => {
                assert!(every > 0, "decay interval must be positive");
                lr * factor.powi((t / every) as i32)
            }
            Schedule::Exponential { lr, rate } => lr * (-rate * t as f32).exp(),
            Schedule::Theorem1 { mu, gamma } => 2.0 / (mu * (gamma + t as f32)),
        }
    }

    /// Validates the schedule's parameters.
    ///
    /// # Errors
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        let ok = |lr: f32| lr > 0.0 && lr.is_finite();
        match *self {
            Schedule::Constant { lr } => ok(lr).then_some(()).ok_or("lr must be positive".into()),
            Schedule::StepDecay { lr, factor, every } => {
                if !ok(lr) {
                    Err("lr must be positive".into())
                } else if !(0.0 < factor && factor <= 1.0) {
                    Err("factor must be in (0, 1]".into())
                } else if every == 0 {
                    Err("every must be positive".into())
                } else {
                    Ok(())
                }
            }
            Schedule::Exponential { lr, rate } => {
                if !ok(lr) {
                    Err("lr must be positive".into())
                } else if rate < 0.0 {
                    Err("rate must be non-negative".into())
                } else {
                    Ok(())
                }
            }
            Schedule::Theorem1 { mu, gamma } => {
                if mu <= 0.0 || gamma <= 0.0 {
                    Err("mu and gamma must be positive".into())
                } else {
                    Ok(())
                }
            }
        }
    }

    /// Applies the step-`t` rate to an optimizer.
    pub fn apply(&self, t: usize, optimizer: &mut dyn crate::optim::Optimizer) {
        optimizer.set_learning_rate(self.at(t));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::{Optimizer, Sgd};

    #[test]
    fn constant_is_constant() {
        let s = Schedule::Constant { lr: 0.1 };
        assert_eq!(s.at(0), 0.1);
        assert_eq!(s.at(10_000), 0.1);
    }

    #[test]
    fn step_decay_halves_on_schedule() {
        let s = Schedule::StepDecay {
            lr: 1.0,
            factor: 0.5,
            every: 10,
        };
        assert_eq!(s.at(0), 1.0);
        assert_eq!(s.at(9), 1.0);
        assert_eq!(s.at(10), 0.5);
        assert_eq!(s.at(25), 0.25);
    }

    #[test]
    fn exponential_decays_monotonically() {
        let s = Schedule::Exponential {
            lr: 0.5,
            rate: 0.01,
        };
        assert!(s.at(0) > s.at(1));
        assert!(s.at(100) > 0.0);
        assert!((s.at(0) - 0.5).abs() < 1e-7);
    }

    #[test]
    fn theorem1_matches_closed_form() {
        let s = Schedule::Theorem1 {
            mu: 1.0,
            gamma: 32.0,
        };
        assert!((s.at(0) - 2.0 / 32.0).abs() < 1e-7);
        assert!((s.at(68) - 0.02).abs() < 1e-7);
    }

    #[test]
    fn apply_updates_optimizer() {
        let s = Schedule::StepDecay {
            lr: 0.2,
            factor: 0.1,
            every: 5,
        };
        let mut opt = Sgd::new(1.0);
        s.apply(7, &mut opt);
        assert!((opt.learning_rate() - 0.02).abs() < 1e-7);
    }

    #[test]
    fn validation_catches_bad_params() {
        assert!(Schedule::Constant { lr: 0.0 }.validate().is_err());
        assert!(Schedule::StepDecay {
            lr: 0.1,
            factor: 1.5,
            every: 1
        }
        .validate()
        .is_err());
        assert!(Schedule::StepDecay {
            lr: 0.1,
            factor: 0.5,
            every: 0
        }
        .validate()
        .is_err());
        assert!(Schedule::Exponential {
            lr: 0.1,
            rate: -1.0
        }
        .validate()
        .is_err());
        assert!(Schedule::Theorem1 {
            mu: 0.0,
            gamma: 1.0
        }
        .validate()
        .is_err());
        assert!(Schedule::Theorem1 {
            mu: 1.0,
            gamma: 8.0
        }
        .validate()
        .is_ok());
    }
}
