//! Persistent network workspace for the zero-allocation train path.
//!
//! A [`NetScratch`] owns every intermediate buffer one
//! [`crate::model::Sequential`] needs for a training step or an inference
//! pass: per-layer activations, per-layer input gradients, per-layer
//! kernel workspaces ([`LayerWs`]) and the loss gradient. Buffers are
//! grown on first use and retained across calls, so a steady-state
//! training loop allocates nothing.

use crate::layer::LayerWs;
use middle_tensor::Tensor;

/// Reusable activation/gradient/workspace storage for one model.
///
/// A scratch is tied to a model *depth*, not a model identity: reusing one
/// scratch across models of the same architecture is fine (buffers are
/// resized on the fly and fully overwritten), and feeding a model of a
/// different depth simply re-grows the vectors.
#[derive(Clone)]
pub struct NetScratch {
    /// `acts[i]` = output of layer `i` from the most recent pass.
    pub(crate) acts: Vec<Tensor>,
    /// `grads[i]` = gradient w.r.t. the input of layer `i`.
    pub(crate) grads: Vec<Tensor>,
    /// Per-layer kernel workspaces.
    pub(crate) ws: Vec<LayerWs>,
    /// Gradient of the loss w.r.t. the logits.
    pub(crate) dlogits: Tensor,
}

impl Default for NetScratch {
    fn default() -> Self {
        Self::new()
    }
}

impl NetScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        NetScratch {
            acts: Vec::new(),
            grads: Vec::new(),
            ws: Vec::new(),
            dlogits: Tensor::zeros([0]),
        }
    }

    /// Sizes the per-layer vectors for a model of `depth` layers.
    pub(crate) fn ensure(&mut self, depth: usize) {
        if self.ws.len() != depth {
            self.acts = (0..depth).map(|_| Tensor::zeros([0])).collect();
            self.grads = (0..depth).map(|_| Tensor::zeros([0])).collect();
            self.ws = (0..depth).map(|_| LayerWs::None).collect();
        }
    }

    /// The most recent final-layer output (logits), if any pass ran.
    pub fn logits(&self) -> Option<&Tensor> {
        self.acts.last()
    }
}
