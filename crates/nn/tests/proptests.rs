//! Property-based tests for the NN stack: gradient correctness on random
//! inputs and algebraic invariants of the parameter-vector view.

use middle_nn::layers::{Dense, Relu, Tanh};
use middle_nn::loss::softmax_cross_entropy;
use middle_nn::params::{blend, delta, flatten, model_cosine, unflatten, weighted_average};
use middle_nn::{Layer, Sequential};
use middle_tensor::random::rng;
use middle_tensor::Tensor;
use proptest::prelude::*;

fn mk_model(seed: u64) -> Sequential {
    // Tanh, not ReLU: the finite-difference gradient check needs a smooth
    // network (ReLU kinks make FD estimates invalid near zero
    // pre-activations; ReLU itself is FD-checked in its unit tests).
    let mut r = rng(seed);
    Sequential::new()
        .push(Dense::new(4, 6, &mut r))
        .push(Tanh::new())
        .push(Dense::new(6, 3, &mut r))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The full model gradient w.r.t. the input matches finite differences
    /// for random inputs and labels.
    #[test]
    fn model_input_gradient_matches_fd(
        seed in 0u64..1000,
        vals in prop::collection::vec(-1.0f32..1.0, 8),
        l0 in 0usize..3,
        l1 in 0usize..3,
    ) {
        let mut m = mk_model(seed);
        let x = Tensor::from_vec([2, 4], vals.clone());
        let labels = [l0, l1];
        let logits = m.forward(&x, true);
        let (_, dlogits) = softmax_cross_entropy(&logits, &labels);
        let dx = m.backward(&dlogits);

        let eps = 1e-2;
        let mut loss_at = |x: &Tensor| {
            let logits = m.forward(x, true);
            softmax_cross_entropy(&logits, &labels).0
        };
        for i in [0usize, 3, 7] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let fd = (loss_at(&xp) - loss_at(&xm)) / (2.0 * eps);
            prop_assert!(
                (fd - dx.data()[i]).abs() < 2e-2 + 0.1 * fd.abs(),
                "dx[{}]: fd={} analytic={}", i, fd, dx.data()[i]
            );
        }
    }

    #[test]
    fn blend_interpolates_cosine(seed_a in 0u64..100, seed_b in 100u64..200) {
        let a = mk_model(seed_a);
        let b = mk_model(seed_b);
        let mid = blend(&a, &b, 0.5);
        // The midpoint can't be *less* similar to a than b is (triangle-ish
        // sanity, holds for random init vectors with high probability).
        let ca = model_cosine(&mid, &a);
        let cb = model_cosine(&a, &b);
        prop_assert!(ca >= cb - 1e-4, "cos(mid,a)={} cos(a,b)={}", ca, cb);
    }

    #[test]
    fn weighted_average_is_permutation_invariant(
        sa in 0u64..50, sb in 50u64..100, sc in 100u64..150,
        w1 in 0.1f32..5.0, w2 in 0.1f32..5.0, w3 in 0.1f32..5.0,
    ) {
        let (a, b, c) = (mk_model(sa), mk_model(sb), mk_model(sc));
        let m1 = weighted_average(&[&a, &b, &c], &[w1, w2, w3]);
        let m2 = weighted_average(&[&c, &a, &b], &[w3, w1, w2]);
        for (x, y) in flatten(&m1).iter().zip(flatten(&m2)) {
            prop_assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn delta_plus_base_recovers_model(sa in 0u64..50, sb in 50u64..100) {
        let a = mk_model(sa);
        let b = mk_model(sb);
        let d = delta(&a, &b);
        let fb = flatten(&b);
        let rebuilt: Vec<f32> = fb.iter().zip(&d).map(|(x, y)| x + y).collect();
        let mut back = b.clone();
        unflatten(&mut back, &rebuilt);
        for (x, y) in flatten(&a).iter().zip(flatten(&back)) {
            prop_assert!((x - y).abs() < 1e-5);
        }
    }

    /// Training on a batch reduces that batch's loss for a small enough
    /// learning rate (descent property).
    #[test]
    fn sgd_step_descends(seed in 0u64..200) {
        let mut m = mk_model(seed);
        let mut r = rng(seed ^ 0xABCD);
        let x = middle_tensor::random::uniform([6, 4], -1.0, 1.0, &mut r);
        let labels = [0usize, 1, 2, 0, 1, 2];
        let before = m.eval_loss(&x, &labels);
        let mut opt = middle_nn::optim::Sgd::new(0.01);
        m.train_batch(&x, &labels, &mut opt);
        let after = m.eval_loss(&x, &labels);
        prop_assert!(after <= before + 1e-4, "loss rose: {} -> {}", before, after);
    }

    /// Relu backward never amplifies a gradient elementwise.
    #[test]
    fn relu_backward_is_contraction(vals in prop::collection::vec(-2.0f32..2.0, 16)) {
        let mut relu = Relu::new();
        let x = Tensor::from_vec([16], vals);
        relu.forward(&x, true);
        let g = Tensor::ones([16]);
        let dx = relu.backward(&g);
        for (d, u) in dx.data().iter().zip(g.data()) {
            prop_assert!(d.abs() <= u.abs() + 1e-6);
        }
    }
}
