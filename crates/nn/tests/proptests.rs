//! Property-based tests for the NN stack: gradient correctness on random
//! inputs, algebraic invariants of the parameter-vector view, and bitwise
//! equivalence of the workspace (zero-alloc) train path against the
//! allocating oracle path.

use middle_nn::layers::{Conv2d, Dense, Flatten, MaxPool2d, Relu, Tanh};
use middle_nn::loss::softmax_cross_entropy;
use middle_nn::optim::OptimizerKind;
use middle_nn::params::{blend, delta, flatten, model_cosine, unflatten, weighted_average};
use middle_nn::{Layer, NetScratch, Sequential};
use middle_tensor::conv::ConvGeometry;
use middle_tensor::random::rng;
use middle_tensor::Tensor;
use proptest::prelude::*;

fn mk_model(seed: u64) -> Sequential {
    // Tanh, not ReLU: the finite-difference gradient check needs a smooth
    // network (ReLU kinks make FD estimates invalid near zero
    // pre-activations; ReLU itself is FD-checked in its unit tests).
    let mut r = rng(seed);
    Sequential::new()
        .push(Dense::new(4, 6, &mut r))
        .push(Tanh::new())
        .push(Dense::new(6, 3, &mut r))
}

/// A small CNN exercising every layer with a workspace kernel override:
/// conv2d, relu, maxpool, flatten, dense.
fn mk_cnn(seed: u64) -> Sequential {
    let mut r = rng(seed);
    Sequential::new()
        .push(Conv2d::new(
            ConvGeometry {
                in_c: 1,
                out_c: 3,
                kernel: 3,
                stride: 1,
                pad: 1,
                in_h: 6,
                in_w: 6,
            },
            &mut r,
        ))
        .push(Relu::new())
        .push(MaxPool2d::new(2))
        .push(Flatten::new())
        .push(Dense::new(27, 4, &mut r))
        .push(Relu::new())
        .push(Dense::new(4, 3, &mut r))
}

fn param_bits(m: &Sequential) -> Vec<u32> {
    flatten(m).iter().map(|v| v.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The full model gradient w.r.t. the input matches finite differences
    /// for random inputs and labels.
    #[test]
    fn model_input_gradient_matches_fd(
        seed in 0u64..1000,
        vals in prop::collection::vec(-1.0f32..1.0, 8),
        l0 in 0usize..3,
        l1 in 0usize..3,
    ) {
        let mut m = mk_model(seed);
        let x = Tensor::from_vec([2, 4], vals.clone());
        let labels = [l0, l1];
        let logits = m.forward(&x, true);
        let (_, dlogits) = softmax_cross_entropy(&logits, &labels);
        let dx = m.backward(&dlogits);

        let eps = 1e-2;
        let mut loss_at = |x: &Tensor| {
            let logits = m.forward(x, true);
            softmax_cross_entropy(&logits, &labels).0
        };
        for i in [0usize, 3, 7] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let fd = (loss_at(&xp) - loss_at(&xm)) / (2.0 * eps);
            prop_assert!(
                (fd - dx.data()[i]).abs() < 2e-2 + 0.1 * fd.abs(),
                "dx[{}]: fd={} analytic={}", i, fd, dx.data()[i]
            );
        }
    }

    #[test]
    fn blend_interpolates_cosine(seed_a in 0u64..100, seed_b in 100u64..200) {
        let a = mk_model(seed_a);
        let b = mk_model(seed_b);
        let mid = blend(&a, &b, 0.5);
        // The midpoint can't be *less* similar to a than b is (triangle-ish
        // sanity, holds for random init vectors with high probability).
        let ca = model_cosine(&mid, &a);
        let cb = model_cosine(&a, &b);
        prop_assert!(ca >= cb - 1e-4, "cos(mid,a)={} cos(a,b)={}", ca, cb);
    }

    #[test]
    fn weighted_average_is_permutation_invariant(
        sa in 0u64..50, sb in 50u64..100, sc in 100u64..150,
        w1 in 0.1f32..5.0, w2 in 0.1f32..5.0, w3 in 0.1f32..5.0,
    ) {
        let (a, b, c) = (mk_model(sa), mk_model(sb), mk_model(sc));
        let m1 = weighted_average(&[&a, &b, &c], &[w1, w2, w3]);
        let m2 = weighted_average(&[&c, &a, &b], &[w3, w1, w2]);
        for (x, y) in flatten(&m1).iter().zip(flatten(&m2)) {
            prop_assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn delta_plus_base_recovers_model(sa in 0u64..50, sb in 50u64..100) {
        let a = mk_model(sa);
        let b = mk_model(sb);
        let d = delta(&a, &b);
        let fb = flatten(&b);
        let rebuilt: Vec<f32> = fb.iter().zip(&d).map(|(x, y)| x + y).collect();
        let mut back = b.clone();
        unflatten(&mut back, &rebuilt);
        for (x, y) in flatten(&a).iter().zip(flatten(&back)) {
            prop_assert!((x - y).abs() < 1e-5);
        }
    }

    /// Training on a batch reduces that batch's loss for a small enough
    /// learning rate (descent property).
    #[test]
    fn sgd_step_descends(seed in 0u64..200) {
        let mut m = mk_model(seed);
        let mut r = rng(seed ^ 0xABCD);
        let x = middle_tensor::random::uniform([6, 4], -1.0, 1.0, &mut r);
        let labels = [0usize, 1, 2, 0, 1, 2];
        let before = m.eval_loss(&x, &labels);
        let mut opt = middle_nn::optim::Sgd::new(0.01);
        m.train_batch(&x, &labels, &mut opt);
        let after = m.eval_loss(&x, &labels);
        prop_assert!(after <= before + 1e-4, "loss rose: {} -> {}", before, after);
    }

    /// The workspace train path (`train_batch_ws` with a reused
    /// `NetScratch`) is bitwise-identical to the allocating
    /// `train_batch` path: same losses, same parameter trajectories,
    /// same inference outputs afterwards — across varying batch sizes,
    /// which forces mid-run scratch re-growth.
    #[test]
    fn ws_train_path_matches_allocating_path_bitwise(
        seed in 0u64..500,
        data_seed in 0u64..1000,
        steps in 1usize..4,
        bs0 in 1usize..5,
    ) {
        let mut ma = mk_cnn(seed);
        let mut mb = ma.clone();
        let kind = OptimizerKind::Momentum { lr: 0.05, momentum: 0.9 };
        let mut oa = kind.build();
        let mut ob = kind.build();
        let mut scratch = NetScratch::new();
        let mut r = rng(data_seed);
        for s in 0..steps {
            let bs = bs0 + s % 2; // vary the batch size across steps
            let x = middle_tensor::random::uniform([bs, 1, 6, 6], -1.0, 1.0, &mut r);
            let labels: Vec<usize> = (0..bs).map(|i| i % 3).collect();
            let la = ma.train_batch(&x, &labels, oa.as_mut());
            let lb = mb.train_batch_ws(&x, &labels, ob.as_mut(), &mut scratch);
            prop_assert_eq!(la.to_bits(), lb.to_bits());
            prop_assert_eq!(param_bits(&ma), param_bits(&mb));
        }
        let x = middle_tensor::random::uniform([7, 1, 6, 6], -1.0, 1.0, &mut r);
        let via_infer = ma.infer(&x);
        let via_ws = mb.infer_ws(&x, &mut scratch);
        prop_assert_eq!(via_infer.shape(), via_ws.shape());
        for (a, b) in via_infer.data().iter().zip(via_ws.data()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// `Optimizer::reset` restores fresh-build semantics bitwise: training
    /// with one long-lived, reset optimizer matches training with a fresh
    /// optimizer per round, for every optimizer kind.
    #[test]
    fn optimizer_reset_matches_fresh_build(seed in 0u64..300, data_seed in 0u64..1000) {
        for kind in [
            OptimizerKind::Sgd { lr: 0.05 },
            OptimizerKind::Momentum { lr: 0.05, momentum: 0.9 },
            OptimizerKind::Adam { lr: 0.01 },
        ] {
            let mut ma = mk_cnn(seed);
            let mut mb = ma.clone();
            let mut persistent = kind.build();
            let mut scratch = NetScratch::new();
            let mut r = rng(data_seed);
            for _round in 0..2 {
                let mut fresh = kind.build();
                persistent.reset();
                for _ in 0..2 {
                    let x = middle_tensor::random::uniform([3, 1, 6, 6], -1.0, 1.0, &mut r);
                    let labels = [0usize, 1, 2];
                    // Same data for both paths: regenerate from a clone of
                    // the tensor rather than re-drawing.
                    ma.train_batch(&x, &labels, fresh.as_mut());
                    mb.train_batch_ws(&x, &labels, persistent.as_mut(), &mut scratch);
                }
                prop_assert_eq!(param_bits(&ma), param_bits(&mb));
            }
        }
    }

    /// Relu backward never amplifies a gradient elementwise.
    #[test]
    fn relu_backward_is_contraction(vals in prop::collection::vec(-2.0f32..2.0, 16)) {
        let mut relu = Relu::new();
        let x = Tensor::from_vec([16], vals);
        relu.forward(&x, true);
        let g = Tensor::ones([16]);
        let dx = relu.backward(&g);
        for (d, u) in dx.data().iter().zip(g.data()) {
            prop_assert!(d.abs() <= u.abs() + 1e-6);
        }
    }
}
