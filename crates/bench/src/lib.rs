//! # middle-bench
//!
//! Benchmark harness regenerating every table and figure of the MIDDLE
//! paper (see DESIGN.md §4 for the experiment index). Each figure has a
//! binary (`fig1_motivation`, …, `theorem1_bound`) that prints the
//! figure's series as aligned text plus CSV, and writes the CSV under
//! `results/`.
//!
//! Scale control: the binaries read the `MIDDLE_SCALE` environment
//! variable (default `1.0`); values below 1 shrink step counts for smoke
//! runs (e.g. `MIDDLE_SCALE=0.1` in CI), values above stretch them.
//!
//! Telemetry: the switches are [`SimulationBuilder::telemetry`] and
//! [`SimulationBuilder::telemetry_jsonl`] (or the corresponding
//! `SimConfig` fields). The old `MIDDLE_TELEMETRY` /
//! `MIDDLE_TELEMETRY_JSONL` environment variables have been removed.
//!
//! [`SimulationBuilder::telemetry`]: middle_core::SimulationBuilder::telemetry
//! [`SimulationBuilder::telemetry_jsonl`]: middle_core::SimulationBuilder::telemetry_jsonl

use middle_core::{RunRecord, SimConfig, SimulationBuilder};
use std::fs;
use std::path::PathBuf;

/// Scale factor for step counts, from `MIDDLE_SCALE` (default 1.0).
pub fn scale() -> f64 {
    std::env::var("MIDDLE_SCALE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|v| *v > 0.0)
        .unwrap_or(1.0)
}

/// Applies the scale factor to a step count (minimum 4).
pub fn scaled_steps(base: usize) -> usize {
    ((base as f64 * scale()).round() as usize).max(4)
}

/// Runs a simulation, echoing progress to stderr. When telemetry is
/// enabled on the config ([`SimulationBuilder::telemetry`] /
/// [`SimulationBuilder::telemetry_jsonl`]), the per-phase summary table
/// is echoed after the run.
pub fn run_logged(cfg: SimConfig) -> RunRecord {
    let label = format!("{} / {}", cfg.algorithm.name, cfg.task.name());
    eprintln!(
        "[middle-bench] {label}: {} edges, {} devices, {} steps ...",
        cfg.num_edges, cfg.num_devices, cfg.steps
    );
    let record = SimulationBuilder::new(cfg)
        .build()
        .expect("valid bench config")
        .run();
    eprintln!(
        "[middle-bench] {label}: final {:.3} in {:.1}s",
        record.final_accuracy(),
        record.wall_seconds
    );
    if let Some(report) = &record.telemetry {
        eprintln!(
            "[middle-bench] {label}: telemetry\n{}",
            report.summary_table()
        );
    }
    record
}

/// Writes CSV content under `results/<name>.csv` (creating the
/// directory), returning the path. Errors are printed, not fatal —
/// benches still report to stdout on read-only filesystems.
pub fn write_csv(name: &str, content: &str) -> Option<PathBuf> {
    let dir = PathBuf::from("results");
    if let Err(e) = fs::create_dir_all(&dir) {
        eprintln!("[middle-bench] cannot create results/: {e}");
        return None;
    }
    let path = dir.join(format!("{name}.csv"));
    match fs::write(&path, content) {
        Ok(()) => {
            eprintln!("[middle-bench] wrote {}", path.display());
            Some(path)
        }
        Err(e) => {
            eprintln!("[middle-bench] cannot write {}: {e}", path.display());
            None
        }
    }
}

/// Formats a set of named accuracy curves as a CSV matrix keyed by step:
/// `step,<name1>,<name2>,...` with empty cells where a curve lacks the
/// step.
pub fn curves_to_csv(curves: &[(String, Vec<(usize, f32)>)]) -> String {
    let mut steps: Vec<usize> = curves
        .iter()
        .flat_map(|(_, c)| c.iter().map(|(s, _)| *s))
        .collect();
    steps.sort_unstable();
    steps.dedup();

    let mut out = String::from("step");
    for (name, _) in curves {
        out.push(',');
        out.push_str(name);
    }
    out.push('\n');
    for s in steps {
        out.push_str(&s.to_string());
        for (_, curve) in curves {
            out.push(',');
            if let Some((_, a)) = curve.iter().find(|(cs, _)| cs == &s) {
                out.push_str(&format!("{a:.4}"));
            }
        }
        out.push('\n');
    }
    out
}

/// Pretty-prints named curves as an aligned table to stdout.
pub fn print_curves(title: &str, curves: &[(String, Vec<(usize, f32)>)]) {
    println!("\n=== {title} ===");
    print!("{:>6}", "step");
    for (name, _) in curves {
        print!(" {name:>12}");
    }
    println!();
    let mut steps: Vec<usize> = curves
        .iter()
        .flat_map(|(_, c)| c.iter().map(|(s, _)| *s))
        .collect();
    steps.sort_unstable();
    steps.dedup();
    for s in steps {
        print!("{s:>6}");
        for (_, curve) in curves {
            match curve.iter().find(|(cs, _)| cs == &s) {
                Some((_, a)) => print!(" {a:>12.3}"),
                None => print!(" {:>12}", "-"),
            }
        }
        println!();
    }
}

/// The shared scaled-down Figure 6–8 configuration for `task`:
/// the paper's §6.1.2 setting reduced to 5 edges / 40 devices / K = 3
/// so the full figure suite regenerates on a single-core laptop
/// (DESIGN.md §7 records the scaling).
pub fn fig_config(task: middle_data::Task, algorithm: middle_core::Algorithm) -> SimConfig {
    use middle_data::Task;
    let mut cfg = SimConfig::paper_default(task, algorithm);
    cfg.num_edges = 5;
    cfg.num_devices = 40;
    cfg.devices_per_edge = 3;
    cfg.samples_per_device = 30;
    cfg.batch_size = 8;
    cfg.test_samples = 300;
    cfg.eval_interval = 5;
    cfg.steps = scaled_steps(match task {
        Task::Mnist => 150,
        Task::Emnist => 200,
        Task::Cifar10 => 200,
        Task::Speech => 150,
    });
    cfg
}

/// Scaled-down time-to-accuracy targets used by the harness.
///
/// The paper's targets (0.95 / 0.80 / 0.55 / 0.85, §6.1.2) assume the
/// full datasets and 1.5k–20k time steps; at this harness's reduced
/// scale (40 devices × 30 samples, 150–200 steps) the same *ordering*
/// experiments use proportionally reduced targets, recorded in
/// EXPERIMENTS.md alongside the paper's originals.
pub fn scaled_target(task: middle_data::Task) -> f32 {
    use middle_data::Task;
    match task {
        Task::Mnist => 0.75,
        Task::Emnist => 0.45,
        Task::Cifar10 => 0.22,
        Task::Speech => 0.70,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_steps_has_floor() {
        assert!(scaled_steps(100) >= 4);
        assert_eq!(scaled_steps(0), 4);
    }

    #[test]
    fn curves_csv_merges_steps() {
        let csv = curves_to_csv(&[
            ("a".into(), vec![(1, 0.5), (2, 0.6)]),
            ("b".into(), vec![(2, 0.7)]),
        ]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "step,a,b");
        assert_eq!(lines[1], "1,0.5000,");
        assert_eq!(lines[2], "2,0.6000,0.7000");
    }
}
