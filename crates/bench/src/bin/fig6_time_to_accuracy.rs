//! Figure 6 + the §6.2.1 speedup table: time-to-accuracy of MIDDLE
//! against OORT, FedMes, Greedy and Ensemble on all four tasks.
//!
//! ```sh
//! cargo run -p middle-bench --release --bin fig6_time_to_accuracy
//! # quick smoke run:
//! MIDDLE_SCALE=0.1 cargo run -p middle-bench --release --bin fig6_time_to_accuracy
//! # single task:
//! cargo run -p middle-bench --release --bin fig6_time_to_accuracy mnist
//! ```

use middle_bench::{curves_to_csv, fig_config, print_curves, run_logged, scaled_target, write_csv};
use middle_core::{speedup, Algorithm, RunRecord};
use middle_data::Task;

/// Averages per-seed records pointwise into one record (same eval grid).
fn average_records(records: Vec<RunRecord>) -> RunRecord {
    let mut out = records[0].clone();
    let n = records.len() as f32;
    for (i, p) in out.points.iter_mut().enumerate() {
        p.global_accuracy = records
            .iter()
            .map(|r| r.points[i].global_accuracy)
            .sum::<f32>()
            / n;
        p.global_loss = records.iter().map(|r| r.points[i].global_loss).sum::<f32>() / n;
    }
    out.wall_seconds = records.iter().map(|r| r.wall_seconds).sum();
    out
}

/// Seeds per cell: `MIDDLE_SEEDS` (default 2; cifar10 runs once —
/// its runs are ~3x the cost of the others).
fn seeds_for(task: Task) -> u64 {
    let base = std::env::var("MIDDLE_SEEDS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .filter(|&v| v > 0)
        .unwrap_or(2);
    if task == Task::Cifar10 {
        1
    } else {
        base
    }
}

fn main() {
    let arg = std::env::args().nth(1);
    let tasks: Vec<Task> = match arg.as_deref() {
        Some(name) => vec![Task::parse(name).unwrap_or_else(|| panic!("unknown task {name}"))],
        None => Task::ALL.to_vec(),
    };

    let mut speedup_rows = Vec::new();
    for task in tasks {
        let mut curves = Vec::new();
        let mut records: Vec<RunRecord> = Vec::new();
        for algorithm in Algorithm::figure6() {
            let per_seed: Vec<RunRecord> = (0..seeds_for(task))
                .map(|s| {
                    let mut cfg = fig_config(task, algorithm.clone());
                    cfg.seed = 2023 + 31 * s;
                    run_logged(cfg)
                })
                .collect();
            let record = average_records(per_seed);
            curves.push((record.algorithm.clone(), record.curve()));
            records.push(record);
        }
        let title = format!("Figure 6 ({}) — global accuracy vs time steps", task.name());
        print_curves(&title, &curves);
        write_csv(&format!("fig6_{}", task.name()), &curves_to_csv(&curves));

        // §6.2.1 speedup table: MIDDLE vs each baseline at the harness's
        // scaled target (paper targets in parentheses; see EXPERIMENTS.md).
        let target = scaled_target(task);
        println!(
            "\n(paper target {:.2}; harness scaled target {target:.2})",
            task.target_accuracy()
        );
        let middle = &records[0];
        println!("\nspeedup to target {target:.2} ({}):", task.name());
        match middle.time_to_accuracy(target) {
            None => println!(
                "  MIDDLE did not reach the target in {} steps (best {:.3})",
                middle.points.last().map_or(0, |p| p.step),
                middle.best_accuracy()
            ),
            Some(tm) => {
                println!("  MIDDLE reached it at step {tm}");
                for baseline in &records[1..] {
                    let line = match (
                        speedup(middle, baseline, target),
                        baseline.time_to_accuracy(target),
                    ) {
                        (Some(s), Some(tb)) => {
                            format!(
                                "vs {:<9} {s:>5.2}x (baseline step {tb})",
                                baseline.algorithm
                            )
                        }
                        (Some(s), None) => format!(
                            "vs {:<9} ≥{s:>4.2}x (baseline never reached target)",
                            baseline.algorithm
                        ),
                        _ => format!("vs {:<9} n/a", baseline.algorithm),
                    };
                    println!("  {line}");
                    speedup_rows.push(format!(
                        "{},{},{}",
                        task.name(),
                        baseline.algorithm,
                        speedup(middle, baseline, target)
                            .map_or("n/a".to_string(), |s| format!("{s:.3}"))
                    ));
                }
            }
        }
    }
    if !speedup_rows.is_empty() {
        let csv = format!("task,baseline,speedup\n{}\n", speedup_rows.join("\n"));
        write_csv("fig6_speedups", &csv);
    }
    println!("\npaper shape check: MIDDLE should reach each target first;");
    println!("the paper reports 1.51x-6.85x speedups over these baselines.");
}
