//! Training-kernel before/after microbenchmarks, emitting
//! machine-readable medians to `BENCH_train.json`.
//!
//! Each component pairs the pre-overhaul kernel ("before") with the
//! blocked/batched/zero-alloc kernel ("after"); the two sides are
//! bitwise-identical by construction (see the tensor and nn proptest
//! batteries plus `hotpath_equiv`), so the entries measure pure speed:
//!
//! * blocked GEMM vs the straightforward reference kernel at the batched
//!   conv shapes of the cnn2 model;
//! * batched whole-batch im2col convolution (fwd + bwd) vs the
//!   per-sample oracle kernels;
//! * one optimizer step via `train_batch_ws` (persistent scratch) vs the
//!   allocating `train_batch`;
//! * one full simulation step — Reference mode (per-sample kernels,
//!   allocating train loop) vs Fast mode (workspace train path).
//!
//! ```sh
//! cargo run -p middle-bench --release --bin train_kernels [out.json]
//! cargo run -p middle-bench --release --bin train_kernels -- --smoke
//! ```
//!
//! `--smoke` runs a reduced sample count and gates each component's
//! speedup against the committed `BENCH_train.json`: a measured speedup
//! below half the committed one fails the run (CI regression gate).

use middle_core::{Algorithm, SimConfig, Simulation, SimulationBuilder, StepMode};
use middle_data::Task as DataTask;
use middle_nn::optim::OptimizerKind;
use middle_nn::{zoo, NetScratch};
use middle_tensor::conv::{
    conv2d_backward, conv2d_backward_into, conv2d_forward, conv2d_forward_into, ConvGeometry,
    ConvScratch,
};
use middle_tensor::matmul::{matmul_into, matmul_into_reference};
use middle_tensor::random::{rng, uniform};
use middle_tensor::Tensor;
use std::time::Instant;

/// Interleaved before/after medians (ns per iteration); see
/// `bench_baseline` for the pairing rationale.
fn measure_pair<B: FnMut(), A: FnMut()>(
    samples: usize,
    iters_per_sample: usize,
    mut before: B,
    mut after: A,
) -> (f64, f64) {
    for _ in 0..iters_per_sample.max(1) {
        before();
        after();
    }
    let mut before_times = Vec::with_capacity(samples);
    let mut after_times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t = Instant::now();
        for _ in 0..iters_per_sample {
            before();
        }
        before_times.push(t.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        let t = Instant::now();
        for _ in 0..iters_per_sample {
            after();
        }
        after_times.push(t.elapsed().as_nanos() as f64 / iters_per_sample as f64);
    }
    (median(before_times), median(after_times))
}

fn median(mut times: Vec<f64>) -> f64 {
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    times[times.len() / 2]
}

/// Extracts `"component": {..., "speedup": X}` from the committed file.
/// The file is this binary's own flat single-level output, so plain
/// string scanning suffices (the vendored serde_json shim exposes no
/// generic `Value`).
fn committed_speedup(json: &str, component: &str) -> Option<f64> {
    let key = format!("\"{component}\"");
    let obj = &json[json.find(&key)? + key.len()..];
    let tail = &obj[obj.find("\"speedup\":")? + "\"speedup\":".len()..];
    let end = tail.find('}')?;
    tail[..end].trim().parse().ok()
}

fn sim_config() -> SimConfig {
    let mut cfg = SimConfig::paper_default(DataTask::Mnist, Algorithm::middle());
    cfg.num_edges = 3;
    cfg.num_devices = 12;
    cfg.devices_per_edge = 2;
    cfg.samples_per_device = 16;
    cfg.local_steps = 3;
    cfg.batch_size = 8;
    cfg.steps = 6;
    cfg.test_samples = 60;
    cfg.eval_interval = 6;
    cfg
}

fn built(cfg: SimConfig) -> Simulation {
    SimulationBuilder::new(cfg).build().expect("valid config")
}

struct Entry {
    component: String,
    before_ns: f64,
    after_ns: f64,
}

fn main() {
    let mut smoke = false;
    let mut out_path = String::from("BENCH_train.json");
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke = true;
        } else {
            out_path = arg;
        }
    }
    // Committed numbers, read before this run overwrites the file; the
    // smoke gate compares against them.
    let committed = std::fs::read_to_string(&out_path).ok();
    let samples = if smoke { 7 } else { 21 };
    let mut entries: Vec<Entry> = Vec::new();

    // --- Blocked GEMM vs reference at the batched cnn2 conv shapes
    // (batch 16 on the 1x16x16 MNIST stand-in: conv1 lowers to
    // 8x9 . 9x4096, conv2 to 16x72 . 72x1024). ---
    for (label, m, k, n) in [
        ("gemm_conv1_8x9x4096", 8usize, 9usize, 4096usize),
        ("gemm_conv2_16x72x1024", 16, 72, 1024),
    ] {
        let a = uniform([m * k], -1.0, 1.0, &mut rng(1)).data().to_vec();
        let b = uniform([k * n], -1.0, 1.0, &mut rng(2)).data().to_vec();
        let mut c_ref = vec![0.0f32; m * n];
        let mut c_fast = vec![0.0f32; m * n];
        let iters = if smoke { 40 } else { 200 };
        let (before, after) = measure_pair(
            samples,
            iters,
            || {
                matmul_into_reference(&a, &b, &mut c_ref, m, k, n);
                std::hint::black_box(&c_ref);
            },
            || {
                matmul_into(&a, &b, &mut c_fast, m, k, n);
                std::hint::black_box(&c_fast);
            },
        );
        entries.push(Entry {
            component: label.into(),
            before_ns: before,
            after_ns: after,
        });
    }

    // --- Batched convolution (fwd + bwd) vs the per-sample oracle, at
    // the cnn2 first-conv geometry, batch 16. ---
    {
        let g = ConvGeometry {
            in_c: 1,
            out_c: 8,
            kernel: 3,
            stride: 1,
            pad: 1,
            in_h: 16,
            in_w: 16,
        };
        let n = 16usize;
        let input = uniform([n, g.in_c, g.in_h, g.in_w], -1.0, 1.0, &mut rng(3));
        let weight = uniform([g.out_c, g.patch_len()], -0.5, 0.5, &mut rng(4));
        let bias = uniform([g.out_c], -0.1, 0.1, &mut rng(5));
        let dout = uniform([n, g.out_c, g.out_h(), g.out_w()], -1.0, 1.0, &mut rng(6));
        let mut scratch = ConvScratch::default();
        let mut out = Tensor::zeros([0]);
        let mut dw = Tensor::zeros([0]);
        let mut db = Tensor::zeros([0]);
        let mut di = Tensor::zeros([0]);
        let iters = if smoke { 10 } else { 50 };
        let (before, after) = measure_pair(
            samples,
            iters,
            || {
                let y = conv2d_forward(&input, &weight, &bias, &g);
                let grads = conv2d_backward(&input, &weight, &dout, &g);
                std::hint::black_box((&y, &grads));
            },
            || {
                conv2d_forward_into(&input, &weight, &bias, &g, &mut scratch, &mut out);
                conv2d_backward_into(
                    &input,
                    &weight,
                    &dout,
                    &g,
                    &mut scratch,
                    &mut dw,
                    &mut db,
                    Some(&mut di),
                );
                std::hint::black_box((&out, &dw, &db, &di));
            },
        );
        entries.push(Entry {
            component: "conv_fwd_bwd_batch16".into(),
            before_ns: before,
            after_ns: after,
        });
    }

    // --- One cnn2 training step: allocating vs workspace path. Both
    // sides keep training their own model so the work stays realistic
    // (non-degenerate activations) and identical across sides. ---
    {
        let spec = middle_data::Task::Mnist.spec();
        let mut ma = zoo::cnn2(&spec, &mut rng(7));
        let mut mb = ma.clone();
        let kind = OptimizerKind::Momentum {
            lr: 0.01,
            momentum: 0.9,
        };
        let mut oa = kind.build();
        let mut ob = kind.build();
        let mut scratch = NetScratch::new();
        let x = uniform([16, 1, 16, 16], -1.0, 1.0, &mut rng(8));
        let y: Vec<usize> = (0..16).map(|i| i % 10).collect();
        let iters = if smoke { 5 } else { 20 };
        let (before, after) = measure_pair(
            samples,
            iters,
            || {
                std::hint::black_box(ma.train_batch(&x, &y, oa.as_mut()));
            },
            || {
                std::hint::black_box(mb.train_batch_ws(&x, &y, ob.as_mut(), &mut scratch));
            },
        );
        entries.push(Entry {
            component: "train_batch_cnn2_batch16".into(),
            before_ns: before,
            after_ns: after,
        });
    }

    // --- One full simulation step: Reference mode (per-sample kernels,
    // allocating local training) vs Fast mode (workspace path). Steps
    // 0..WARM warm each side in its own mode and are excluded: a
    // device's first participation faults in its scratch/model pages,
    // and the steady state is what the zero-alloc path actually claims.
    // Selection trajectories are mode-independent (bitwise-equal model
    // state), so both sides time the identical participant set at the
    // identical step index. ---
    {
        const WARM: usize = 5;
        let step_samples = if smoke { 5 } else { 21 };
        let mut before_times = Vec::new();
        let mut after_times = Vec::new();
        for _ in 0..step_samples {
            let mut sim = built(sim_config());
            for s in 0..WARM {
                sim.advance(s, StepMode::Reference);
            }
            let t = Instant::now();
            sim.advance(WARM, StepMode::Reference);
            before_times.push(t.elapsed().as_nanos() as f64);
            std::hint::black_box(&sim);

            let mut sim = built(sim_config());
            for s in 0..WARM {
                sim.step(s);
            }
            let t = Instant::now();
            sim.step(WARM);
            after_times.push(t.elapsed().as_nanos() as f64);
            std::hint::black_box(&sim);
        }
        entries.push(Entry {
            component: "full_sim_step".into(),
            before_ns: median(before_times),
            after_ns: median(after_times),
        });
    }

    let mut json = String::from("{\n");
    for (i, e) in entries.iter().enumerate() {
        let speedup = e.before_ns / e.after_ns;
        println!(
            "{:<28} before {:>12.0} ns   after {:>12.0} ns   speedup {:>5.2}x",
            e.component, e.before_ns, e.after_ns, speedup
        );
        json.push_str(&format!(
            "  \"{}\": {{\"before_ns\": {:.0}, \"after_ns\": {:.0}, \"speedup\": {:.3}}}{}\n",
            e.component,
            e.before_ns,
            e.after_ns,
            speedup,
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    json.push_str("}\n");
    std::fs::write(&out_path, &json).expect("write benchmark json");
    println!("\nwrote {out_path}");

    if smoke {
        let committed = committed.expect("smoke gate needs a committed BENCH_train.json");
        let mut failures = Vec::new();
        for e in &entries {
            let Some(base) = committed_speedup(&committed, &e.component) else {
                continue; // new component, nothing committed yet
            };
            let measured = e.before_ns / e.after_ns;
            // Half the committed speedup tolerates noisy shared CI
            // runners while still catching a real kernel regression.
            if measured < 0.5 * base {
                failures.push(format!(
                    "{}: measured {:.2}x < gate {:.2}x (committed {:.2}x)",
                    e.component,
                    measured,
                    0.5 * base,
                    base
                ));
            }
        }
        if !failures.is_empty() {
            eprintln!("train-kernel regression gate FAILED:");
            for f in &failures {
                eprintln!("  {f}");
            }
            std::process::exit(1);
        }
        println!("smoke gate passed ({} components)", entries.len());
    }
}
