//! Fault-plane robustness sweep, emitting machine-readable results to
//! `BENCH_faults.json`.
//!
//! Runs one MIDDLE configuration through a grid of failure scenarios —
//! clean baseline, i.i.d. and sticky (Markov) dropout, exponential and
//! heavy-tailed (Pareto) straggler delays against a per-step deadline,
//! lossy uploads with bounded retry, WAN outages, and an everything-on
//! "hostile" scenario — and records, per scenario, the final accuracy,
//! the full communication ledger (retransmissions, lost and stale
//! uploads, backoff) and the simulated communication wall-clock under
//! the shared two-tier link model
//! ([`middle_core::comm::WIRELESS_SECS_PER_TRANSFER`] /
//! [`middle_core::comm::WAN_SECS_PER_TRANSFER`] — the same constants
//! `examples/straggler_injection.rs` prints, so the two cannot drift).
//!
//! ```sh
//! cargo run -p middle-bench --release --bin fault_sweep [out.json]
//! ```

use middle_core::comm::{WAN_SECS_PER_TRANSFER, WIRELESS_SECS_PER_TRANSFER};
use middle_core::{Algorithm, DelayModel, DropoutModel, FaultConfig, SimConfig, SimulationBuilder};
use middle_data::Task;

fn sim_config(faults: FaultConfig) -> SimConfig {
    let mut cfg = SimConfig::paper_default(Task::Mnist, Algorithm::middle());
    cfg.num_edges = 4;
    cfg.num_devices = 24;
    cfg.devices_per_edge = 3;
    cfg.samples_per_device = 30;
    cfg.steps = 30;
    cfg.cloud_interval = 5;
    cfg.test_samples = 200;
    cfg.eval_interval = 5;
    cfg.faults = faults;
    cfg
}

fn scenarios() -> Vec<(&'static str, FaultConfig)> {
    let off = FaultConfig::default();
    vec![
        ("clean", off),
        (
            "dropout_iid_30",
            FaultConfig {
                dropout: DropoutModel::Iid { p: 0.3 },
                ..off
            },
        ),
        (
            "dropout_sticky_bursts",
            FaultConfig {
                dropout: DropoutModel::Markov {
                    p_fail: 0.1,
                    p_recover: 0.25,
                },
                ..off
            },
        ),
        (
            "stragglers_exponential",
            FaultConfig {
                straggler_delay: DelayModel::Exponential { mean_s: 0.7 },
                deadline_s: 1.0,
                ..off
            },
        ),
        (
            "stragglers_pareto_tail",
            FaultConfig {
                straggler_delay: DelayModel::Pareto {
                    scale_s: 0.4,
                    shape: 1.2,
                },
                deadline_s: 1.0,
                ..off
            },
        ),
        (
            "lossy_uploads_retry",
            FaultConfig {
                upload_loss: 0.3,
                upload_retries: 2,
                ..off
            },
        ),
        (
            "wan_outage_30",
            FaultConfig {
                wan_outage: 0.3,
                ..off
            },
        ),
        (
            "hostile_everything",
            FaultConfig {
                dropout: DropoutModel::Markov {
                    p_fail: 0.1,
                    p_recover: 0.3,
                },
                straggler_delay: DelayModel::Exponential { mean_s: 0.6 },
                deadline_s: 1.0,
                upload_loss: 0.2,
                upload_retries: 2,
                wan_outage: 0.2,
            },
        ),
    ]
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_faults.json".into());

    println!(
        "{:<24} {:>7} {:>8} {:>8} {:>7} {:>6} {:>6} {:>7} {:>8} {:>9}",
        "scenario",
        "final",
        "uploads",
        "retx",
        "lost",
        "stale",
        "syncs",
        "active",
        "comm s",
        "backoff s"
    );
    let mut rows = Vec::new();
    for (name, faults) in scenarios() {
        let record = SimulationBuilder::new(sim_config(faults))
            .build()
            .expect("valid sweep config")
            .run();
        let comm = &record.comm;
        let comm_s = record.comm_wall_clock(WIRELESS_SECS_PER_TRANSFER, WAN_SECS_PER_TRANSFER);
        let backoff_s = comm.retry_backoff_seconds(WIRELESS_SECS_PER_TRANSFER);
        println!(
            "{:<24} {:>7.3} {:>8} {:>8} {:>7} {:>6} {:>6} {:>7} {:>8.1} {:>9.1}",
            name,
            record.final_accuracy(),
            comm.device_to_edge,
            comm.upload_retransmissions,
            comm.lost_uploads,
            comm.stale_uploads,
            record.syncs,
            record.active_steps,
            comm_s,
            backoff_s,
        );
        rows.push(format!(
            "    {{\"scenario\": \"{name}\", \"final_accuracy\": {:.6}, \
             \"comm\": {}, \"syncs\": {}, \"active_steps\": {}, \
             \"comm_wall_s\": {comm_s:.3}, \"retry_backoff_s\": {backoff_s:.3}}}",
            record.final_accuracy(),
            serde_json::to_string(comm).expect("comm stats serialise"),
            record.syncs,
            record.active_steps,
        ));
    }

    let json = format!(
        "{{\n  \"wireless_secs_per_transfer\": {WIRELESS_SECS_PER_TRANSFER},\n  \
         \"wan_secs_per_transfer\": {WAN_SECS_PER_TRANSFER},\n  \"scenarios\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    std::fs::write(&out_path, &json).expect("write BENCH_faults.json");
    println!("\nwrote {out_path}");
}
