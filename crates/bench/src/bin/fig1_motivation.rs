//! Figure 1: with Non-IID data across two edges, the global model's
//! accuracy rises steadily while edge model 1 improves on its major
//! classes and lags (or decays) on its minor classes.
//!
//! Setup mirrors §2 Question 1 exactly: three-layer HFL, 2 edges, 50
//! devices, stationary placement realising a 70/30 class split — edge 1
//! holds ~70% of its data in classes {0..4} (its *major* classes) and
//! ~30% in classes {5..9}, and vice versa for edge 2.
//!
//! ```sh
//! cargo run -p middle-bench --release --bin fig1_motivation
//! ```

use middle_bench::{curves_to_csv, print_curves, scaled_steps, write_csv};
use middle_core::{Algorithm, SimConfig, SimulationBuilder};
use middle_data::{Scheme, Task};
use middle_mobility::Trace;

/// Static 50-device assignment realising the 70/30 split: each class has
/// 5 devices (major-class scheme deals majors round-robin); classes 0–4
/// put 4 of their 5 devices on edge 0, classes 5–9 put 1 there.
fn static_7030_trace(devices: usize, steps: usize) -> Trace {
    assert_eq!(devices, 50);
    let assignment: Vec<usize> = (0..devices)
        .map(|m| {
            let major = m % 10;
            if major < 5 {
                usize::from(m >= 40) // 4 of 5 class-0..4 devices on edge 0
            } else {
                usize::from(m >= 10) // 1 of 5 class-5..9 devices on edge 0
            }
        })
        .collect();
    Trace::new(2, vec![assignment; steps])
}

fn main() {
    let steps = scaled_steps(80);
    let mut cfg = SimConfig::paper_default(Task::Mnist, Algorithm::hierfavg());
    cfg.num_edges = 2;
    cfg.num_devices = 50;
    cfg.devices_per_edge = 5;
    cfg.samples_per_device = 24;
    cfg.scheme = Scheme::MajorClass { major_frac: 0.8 };
    cfg.steps = steps;
    cfg.cloud_interval = 10;
    cfg.eval_interval = 4;
    cfg.eval_edges = true;
    cfg.eval_per_class = true;
    cfg.test_samples = 300;

    let trace = static_7030_trace(cfg.num_devices, steps);
    eprintln!("[fig1] 2 edges, 50 devices, 70/30 split, {steps} steps ...");
    let mut sim = SimulationBuilder::new(cfg)
        .with_trace(trace)
        .build()
        .expect("valid fig1 trace");
    let record = sim.run();
    eprintln!("[fig1] done in {:.1}s", record.wall_seconds);

    // Edge 0's major classes are {0..4} by construction.
    let major: Vec<usize> = (0..5).collect();
    let minor: Vec<usize> = (5..10).collect();
    let mean_over = |vals: &[Option<f32>], idx: &[usize]| -> f32 {
        let xs: Vec<f32> = idx.iter().filter_map(|&c| vals[c]).collect();
        if xs.is_empty() {
            f32::NAN
        } else {
            xs.iter().sum::<f32>() / xs.len() as f32
        }
    };

    let curves = vec![
        ("global".to_string(), record.curve()),
        (
            "edge1".to_string(),
            record
                .points
                .iter()
                .map(|p| (p.step, p.edge_accuracy[0]))
                .collect(),
        ),
        (
            "edge1_major".to_string(),
            record
                .points
                .iter()
                .map(|p| (p.step, mean_over(&p.edge0_per_class, &major)))
                .collect(),
        ),
        (
            "edge1_minor".to_string(),
            record
                .points
                .iter()
                .map(|p| (p.step, mean_over(&p.edge0_per_class, &minor)))
                .collect(),
        ),
    ];
    print_curves(
        "Figure 1 — Non-IID across edges starves edge 1's minor classes",
        &curves,
    );
    write_csv("fig1_motivation", &curves_to_csv(&curves));

    // Quantify the paper's claim for EXPERIMENTS.md.
    let tail = |curve: &[(usize, f32)]| -> f32 {
        let k = curve.len().min(4);
        curve[curve.len() - k..].iter().map(|(_, a)| a).sum::<f32>() / k as f32
    };
    println!(
        "\ntail means — global {:.3}, edge1 major {:.3}, edge1 minor {:.3}",
        tail(&curves[0].1),
        tail(&curves[2].1),
        tail(&curves[3].1)
    );
    println!("paper shape check: `global` rises steadily; `edge1_major` sits clearly");
    println!("above `edge1_minor` (the edge under-learns classes it rarely sees).");
}
