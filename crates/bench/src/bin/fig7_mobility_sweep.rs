//! Figure 7: final global-model accuracy under global mobility
//! P ∈ {0.1, 0.3, 0.5} for all five algorithms and all four tasks.
//!
//! ```sh
//! cargo run -p middle-bench --release --bin fig7_mobility_sweep
//! cargo run -p middle-bench --release --bin fig7_mobility_sweep mnist
//! ```

use middle_bench::{fig_config, run_logged, write_csv};
use middle_core::{Algorithm, MobilitySource};
use middle_data::Task;

const PS: [f64; 3] = [0.1, 0.3, 0.5];

fn main() {
    let arg = std::env::args().nth(1);
    let tasks: Vec<Task> = match arg.as_deref() {
        Some(name) => vec![Task::parse(name).unwrap_or_else(|| panic!("unknown task {name}"))],
        None => Task::ALL.to_vec(),
    };

    let mut csv = String::from("task,algorithm,p,final_accuracy,tail_accuracy\n");
    for task in tasks {
        println!(
            "\n=== Figure 7 ({}) — final accuracy vs global mobility P ===",
            task.name()
        );
        println!(
            "{:<10} {:>8} {:>8} {:>8}",
            "algorithm", "P=0.1", "P=0.3", "P=0.5"
        );
        for algorithm in Algorithm::figure6() {
            let mut row = format!("{:<10}", algorithm.name);
            for p in PS {
                let mut cfg = fig_config(task, algorithm.clone());
                // Fig 7 reports final accuracy; a slightly shorter run
                // per cell keeps the 60-cell sweep tractable.
                cfg.steps = (cfg.steps * 2) / 3;
                cfg.mobility = MobilitySource::MarkovHop { p };
                let record = run_logged(cfg);
                let tail = record.tail_accuracy(4);
                row.push_str(&format!(" {tail:>8.3}"));
                csv.push_str(&format!(
                    "{},{},{p},{:.4},{:.4}\n",
                    task.name(),
                    algorithm.name,
                    record.final_accuracy(),
                    tail
                ));
            }
            println!("{row}");
        }
    }
    write_csv("fig7_mobility_sweep", &csv);

    println!("\npaper shape check: MIDDLE leads at every P; MIDDLE's accuracy rises");
    println!("with P on the image tasks, while baselines peak and then fall.");
}
