//! Algorithm-zoo sweep: every named algorithm ([`Algorithm::zoo`])
//! through a clean and a hostile fault regime, emitting
//! machine-readable results to `BENCH_algos.json`.
//!
//! This is the bench face of the policy API: each cell builds one
//! simulation whose `SimConfig::algorithm` names a zoo member (the same
//! axis `ScenarioGrid::with_algorithms` sweeps) and records the final
//! accuracy, the full communication ledger and the simulated
//! communication wall-clock under the shared two-tier link model
//! ([`middle_core::comm::WIRELESS_SECS_PER_TRANSFER`] /
//! [`middle_core::comm::WAN_SECS_PER_TRANSFER`]). The hostile regime is
//! `fault_sweep`'s everything-on scenario (sticky dropout, exponential
//! stragglers against a deadline, lossy uploads with retry, WAN
//! outages), so stateful policies (FedFly migration) are exercised
//! under stale merges and masked cloud syncs, not just the happy path.
//!
//! ```text
//! cargo run -p middle-bench --release --bin algos_sweep [--smoke] [out.json]
//! ```
//!
//! `--smoke` shrinks the population and horizon for the CI gate; steps
//! scale with `MIDDLE_SCALE` like every other bench bin. The committed
//! `BENCH_algos.json` is the `--smoke` output (like `BENCH_sweep.json`)
//! so `scripts/bench_compare.sh` compares like against like.

use middle_bench::scaled_steps;
use middle_core::comm::{WAN_SECS_PER_TRANSFER, WIRELESS_SECS_PER_TRANSFER};
use middle_core::{Algorithm, DelayModel, DropoutModel, FaultConfig, SimConfig, SimulationBuilder};
use middle_data::Task;

fn sim_config(algorithm: Algorithm, faults: FaultConfig, smoke: bool) -> SimConfig {
    let mut cfg = SimConfig::paper_default(Task::Mnist, algorithm);
    cfg.faults = faults;
    if smoke {
        cfg.num_edges = 3;
        cfg.num_devices = 15;
        cfg.devices_per_edge = 2;
        cfg.samples_per_device = 20;
        cfg.steps = scaled_steps(10);
        cfg.cloud_interval = 5;
        cfg.test_samples = 120;
        cfg.eval_interval = 5;
    } else {
        cfg.num_edges = 4;
        cfg.num_devices = 24;
        cfg.devices_per_edge = 3;
        cfg.samples_per_device = 30;
        cfg.steps = scaled_steps(30);
        cfg.cloud_interval = 5;
        cfg.test_samples = 200;
        cfg.eval_interval = 5;
    }
    cfg
}

fn regimes() -> Vec<(&'static str, FaultConfig)> {
    vec![
        ("clean", FaultConfig::default()),
        (
            "hostile",
            FaultConfig {
                dropout: DropoutModel::Markov {
                    p_fail: 0.1,
                    p_recover: 0.3,
                },
                straggler_delay: DelayModel::Exponential { mean_s: 0.6 },
                deadline_s: 1.0,
                upload_loss: 0.2,
                upload_retries: 2,
                wan_outage: 0.2,
            },
        ),
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out_path = String::from("BENCH_algos.json");
    for arg in args {
        match arg.as_str() {
            "--smoke" => smoke = true,
            other => out_path = other.to_string(),
        }
    }

    println!(
        "{:<10} {:<8} {:>7} {:>8} {:>7} {:>6} {:>6} {:>7} {:>9}",
        "algorithm", "regime", "final", "uploads", "e2e", "stale", "syncs", "active", "comm s"
    );
    let mut rows = Vec::new();
    for algorithm in Algorithm::zoo() {
        for (regime, faults) in regimes() {
            let name = algorithm.name.clone();
            let record = SimulationBuilder::new(sim_config(algorithm.clone(), faults, smoke))
                .build()
                .expect("valid zoo config")
                .run();
            let comm = &record.comm;
            let comm_s = record.comm_wall_clock(WIRELESS_SECS_PER_TRANSFER, WAN_SECS_PER_TRANSFER);
            println!(
                "{:<10} {:<8} {:>7.3} {:>8} {:>7} {:>6} {:>6} {:>7} {:>9.1}",
                name,
                regime,
                record.final_accuracy(),
                comm.device_to_edge,
                comm.edge_to_edge,
                comm.stale_uploads,
                record.syncs,
                record.active_steps,
                comm_s,
            );
            rows.push(format!(
                "    {{\"algorithm\": \"{name}\", \"regime\": \"{regime}\", \
                 \"final_accuracy\": {:.6}, \"comm\": {}, \"syncs\": {}, \
                 \"active_steps\": {}, \"comm_wall_s\": {comm_s:.3}}}",
                record.final_accuracy(),
                serde_json::to_string(comm).expect("comm stats serialise"),
                record.syncs,
                record.active_steps,
            ));
        }
    }

    let json = format!(
        "{{\n  \"wireless_secs_per_transfer\": {WIRELESS_SECS_PER_TRANSFER},\n  \
         \"wan_secs_per_transfer\": {WAN_SECS_PER_TRANSFER},\n  \"cells\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    std::fs::write(&out_path, &json).expect("write BENCH_algos.json");
    println!("\nwrote {out_path}");
}
