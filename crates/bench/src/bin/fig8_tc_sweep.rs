//! Figure 8: effect of the edge-cloud communication interval
//! T_c ∈ {5, 10, 20} on MIDDLE vs OORT, over all four tasks.
//!
//! ```sh
//! cargo run -p middle-bench --release --bin fig8_tc_sweep
//! cargo run -p middle-bench --release --bin fig8_tc_sweep emnist
//! ```

use middle_bench::{curves_to_csv, fig_config, print_curves, run_logged, write_csv};
use middle_core::Algorithm;
use middle_data::Task;

const TCS: [usize; 3] = [5, 10, 20];

fn main() {
    let arg = std::env::args().nth(1);
    let tasks: Vec<Task> = match arg.as_deref() {
        Some(name) => vec![Task::parse(name).unwrap_or_else(|| panic!("unknown task {name}"))],
        None => Task::ALL.to_vec(),
    };

    let mut summary = String::from("task,algorithm,tc,final_accuracy\n");
    for task in tasks {
        let mut curves = Vec::new();
        for algorithm in [Algorithm::middle(), Algorithm::oort()] {
            for tc in TCS {
                let mut cfg = fig_config(task, algorithm.clone());
                cfg.cloud_interval = tc;
                let record = run_logged(cfg);
                summary.push_str(&format!(
                    "{},{},{tc},{:.4}\n",
                    task.name(),
                    algorithm.name,
                    record.tail_accuracy(4)
                ));
                curves.push((format!("{}_Tc{tc}", algorithm.name), record.curve()));
            }
        }
        let title = format!(
            "Figure 8 ({}) — accuracy vs time steps for T_c in {{5, 10, 20}}",
            task.name()
        );
        print_curves(&title, &curves);
        write_csv(&format!("fig8_{}", task.name()), &curves_to_csv(&curves));
    }
    write_csv("fig8_summary", &summary);

    println!("\npaper shape check: OORT degrades markedly as T_c grows (edges drift");
    println!("apart with no cross-edge exchange); MIDDLE stays comparatively flat");
    println!("because mobile devices keep transporting knowledge between edges.");
}
