//! Accuracy ablations for the design choices in DESIGN.md §5:
//!
//! * on-device blend: similarity-weighted (Eq. 9) vs fixed α vs
//!   unclipped cosine vs plain average vs none;
//! * selection: `−U` (MIDDLE) vs `+U` vs random vs Oort utility;
//! * cloud weighting: participating-sample `d̂` vs uniform (reported via
//!   the empty-window fallback path).
//!
//! ```sh
//! cargo run -p middle-bench --release --bin ablation_report
//! ```

use middle_bench::{fig_config, run_logged, write_csv};
use middle_core::{Algorithm, OnDevicePolicy, SelectionPolicy};
use middle_data::Task;

fn main() {
    let task = Task::Mnist;

    println!("=== Ablation A — on-device aggregation policy (selection fixed to MIDDLE's) ===\n");
    let mut csv = String::from("ablation,variant,final_accuracy,tail_accuracy\n");
    let on_device_variants: Vec<(&str, OnDevicePolicy)> = vec![
        ("similarity (Eq.9)", OnDevicePolicy::SimilarityWeighted),
        ("fixed a=0.25", OnDevicePolicy::FixedAlpha { alpha: 0.25 }),
        ("fixed a=0.50", OnDevicePolicy::FixedAlpha { alpha: 0.5 }),
        ("fixed a=0.75", OnDevicePolicy::FixedAlpha { alpha: 0.75 }),
        ("unclipped cos", OnDevicePolicy::UnclippedSimilarity),
        ("plain average", OnDevicePolicy::Average),
        ("none (edge model)", OnDevicePolicy::EdgeModel),
        ("keep local", OnDevicePolicy::KeepLocal),
    ];
    for (name, od) in on_device_variants {
        let mut cfg = fig_config(
            task,
            Algorithm::custom(name, SelectionPolicy::LeastSimilarUpdate, od),
        );
        cfg.steps = (cfg.steps * 2) / 3;
        let r = run_logged(cfg);
        println!(
            "  {name:<18} final {:.3}  tail {:.3}",
            r.final_accuracy(),
            r.tail_accuracy(4)
        );
        csv.push_str(&format!(
            "on_device,{name},{:.4},{:.4}\n",
            r.final_accuracy(),
            r.tail_accuracy(4)
        ));
    }

    println!("\n=== Ablation B — selection policy (on-device fixed to Eq. 9) ===\n");
    let selection_variants: Vec<(&str, SelectionPolicy)> = vec![
        ("-U (MIDDLE)", SelectionPolicy::LeastSimilarUpdate),
        ("+U (mirror)", SelectionPolicy::MostSimilarUpdate),
        ("random", SelectionPolicy::Random),
        ("oort utility", SelectionPolicy::OortUtility),
    ];
    for (name, sel) in selection_variants {
        let mut cfg = fig_config(
            task,
            Algorithm::custom(name, sel, OnDevicePolicy::SimilarityWeighted),
        );
        cfg.steps = (cfg.steps * 2) / 3;
        let r = run_logged(cfg);
        println!(
            "  {name:<18} final {:.3}  tail {:.3}",
            r.final_accuracy(),
            r.tail_accuracy(4)
        );
        csv.push_str(&format!(
            "selection,{name},{:.4},{:.4}\n",
            r.final_accuracy(),
            r.tail_accuracy(4)
        ));
    }

    write_csv("ablation_report", &csv);
    println!("\nexpected: Eq. 9's adaptive blend ≥ fixed α; clipping ≥ unclipped;");
    println!("-U selection ≥ +U (which over-samples already-learned data).");
}
