//! Population-scale sweep: runs the lazy population plane at 10k, 100k
//! and 1M devices on 100 edges and records peak RSS, per-step wall
//! clock and the resident-replica high-water mark into
//! `BENCH_scale.json`.
//!
//! Each scale runs in a child process (the binary re-execs itself with
//! `--one`), because `VmHWM` is a process-lifetime high-water mark —
//! measuring three scales in one process would report the largest for
//! all of them. The 10k scale also runs once in dense mode as the
//! memory baseline the lazy plane is measured against.
//!
//! ```sh
//! cargo run -p middle-bench --release --bin scale_sweep            # full, writes BENCH_scale.json
//! cargo run -p middle-bench --release --bin scale_sweep -- --smoke # 1k/5k only, CI-sized
//! ```
//!
//! Dropout faults are deliberately absent here: the fault plane's
//! dropout chain advances per device per step (O(N)) and would dominate
//! the idle-population cost this sweep isolates.

use middle_core::{Algorithm, MobilitySource, PopulationMode, SimConfig, SimulationBuilder};
use middle_data::Task;
use std::time::Instant;

/// Runs the 10k-device scenario dense and lazy and checks the two
/// `RunRecord`s are bitwise identical (floats compare through the
/// shortest-round-trip JSON encoding, which is bit-faithful).
/// `wall_seconds` is host timing, not simulation output, and is
/// excluded. Returns `true` on equality; mismatches are printed.
fn verify_dense_lazy_10k() -> bool {
    let mut records = Vec::new();
    for mode in [PopulationMode::Dense, PopulationMode::Lazy] {
        let cfg = scenario(10_000, 100, mode);
        let mut sim = SimulationBuilder::new(cfg)
            .build()
            .expect("valid scale config");
        let mut record = sim.run();
        record.wall_seconds = 0.0;
        records.push(serde_json::to_string(&record).expect("record serialises"));
    }
    if records[0] == records[1] {
        true
    } else {
        eprintln!("[scale_sweep] 10k dense/lazy records DIVERGED");
        eprintln!("[scale_sweep] dense: {}", records[0]);
        eprintln!("[scale_sweep] lazy:  {}", records[1]);
        false
    }
}

/// One measured scenario, serialised as a JSON object.
struct Row {
    devices: usize,
    edges: usize,
    steps: usize,
    mode: &'static str,
    build_seconds: f64,
    avg_step_ms: f64,
    max_step_ms: f64,
    peak_rss_mb: f64,
    end_rss_mb: f64,
    peak_resident: usize,
    end_resident: usize,
    active_steps: u64,
    syncs: u64,
}

impl Row {
    fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"devices\":{},\"edges\":{},\"steps\":{},\"mode\":\"{}\",",
                "\"build_seconds\":{:.3},\"avg_step_ms\":{:.3},\"max_step_ms\":{:.3},",
                "\"peak_rss_mb\":{:.1},\"end_rss_mb\":{:.1},",
                "\"peak_resident\":{},\"end_resident\":{},",
                "\"active_steps\":{},\"syncs\":{}}}"
            ),
            self.devices,
            self.edges,
            self.steps,
            self.mode,
            self.build_seconds,
            self.avg_step_ms,
            self.max_step_ms,
            self.peak_rss_mb,
            self.end_rss_mb,
            self.peak_resident,
            self.end_resident,
            self.active_steps,
            self.syncs,
        )
    }
}

/// Reads a kB-denominated field (`VmRSS`, `VmHWM`) from
/// `/proc/self/status`, in MiB. Returns 0 where procfs is unavailable
/// (the numbers are then meaningless but the sweep still runs).
fn proc_status_mb(field: &str) -> f64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0.0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix(field) {
            let kb: f64 = rest
                .trim_start_matches(':')
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0.0);
            return kb / 1024.0;
        }
    }
    0.0
}

/// The sweep scenario at a given population size. Small per-device
/// datasets and a single end-of-run eval keep the base-data and test
/// costs from masking the per-step population cost under measurement.
fn scenario(devices: usize, edges: usize, mode: PopulationMode) -> SimConfig {
    let mut cfg = SimConfig::tiny(Task::Mnist, Algorithm::middle());
    cfg.num_devices = devices;
    cfg.num_edges = edges;
    cfg.devices_per_edge = 5;
    cfg.samples_per_device = 2;
    cfg.batch_size = 2;
    cfg.local_steps = 2;
    cfg.steps = 10;
    cfg.cloud_interval = 5;
    cfg.eval_interval = cfg.steps;
    cfg.test_samples = 64;
    cfg.mobility = MobilitySource::MarkovHop { p: 0.5 };
    cfg.population = mode;
    cfg
}

/// Runs one scenario in this process and prints its row as a single
/// JSON line on stdout (the parent collects it).
fn run_one(devices: usize, edges: usize, mode: PopulationMode) {
    let cfg = scenario(devices, edges, mode);
    let steps = cfg.steps;
    let t0 = Instant::now();
    let mut sim = SimulationBuilder::new(cfg)
        .build()
        .expect("valid scale config");
    let build_seconds = t0.elapsed().as_secs_f64();
    let mut total_ms = 0.0f64;
    let mut max_ms = 0.0f64;
    for t in 0..steps {
        let s0 = Instant::now();
        sim.step(t);
        let ms = s0.elapsed().as_secs_f64() * 1e3;
        total_ms += ms;
        max_ms = max_ms.max(ms);
    }
    let row = Row {
        devices,
        edges,
        steps,
        mode: match mode {
            PopulationMode::Dense => "dense",
            PopulationMode::Lazy => "lazy",
        },
        build_seconds,
        avg_step_ms: total_ms / steps as f64,
        max_step_ms: max_ms,
        peak_rss_mb: proc_status_mb("VmHWM"),
        end_rss_mb: proc_status_mb("VmRSS"),
        peak_resident: sim.population().peak_resident(),
        end_resident: sim.population().resident_count(),
        active_steps: sim.active_steps(),
        syncs: sim.syncs(),
    };
    println!("{}", row.to_json());
}

/// Re-execs this binary for one scenario and returns the child's JSON
/// row.
fn spawn_one(devices: usize, edges: usize, mode: PopulationMode) -> Option<String> {
    let exe = std::env::current_exe().ok()?;
    let mode_arg = match mode {
        PopulationMode::Dense => "dense",
        PopulationMode::Lazy => "lazy",
    };
    eprintln!("[scale_sweep] {devices} devices / {edges} edges ({mode_arg}) ...");
    let out = std::process::Command::new(exe)
        .args(["--one", &devices.to_string(), &edges.to_string(), mode_arg])
        .output()
        .ok()?;
    if !out.status.success() {
        eprintln!(
            "[scale_sweep] child failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        return None;
    }
    let line = String::from_utf8_lossy(&out.stdout).trim().to_string();
    if line.is_empty() {
        None
    } else {
        eprintln!("[scale_sweep]   {line}");
        Some(line)
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() == 5 && args[1] == "--one" {
        let devices: usize = args[2].parse().expect("devices");
        let edges: usize = args[3].parse().expect("edges");
        let mode = match args[4].as_str() {
            "dense" => PopulationMode::Dense,
            _ => PopulationMode::Lazy,
        };
        run_one(devices, edges, mode);
        return;
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    // Smoke keeps CI fast and still crosses a dense/lazy pair; the full
    // sweep adds the 100k and 1M lazy points (dense at those scales is
    // exactly the O(N) residency the plane removes).
    let grid: Vec<(usize, usize, PopulationMode)> = if smoke {
        vec![
            (1_000, 10, PopulationMode::Dense),
            (1_000, 10, PopulationMode::Lazy),
            (5_000, 20, PopulationMode::Lazy),
        ]
    } else {
        vec![
            (10_000, 100, PopulationMode::Dense),
            (10_000, 100, PopulationMode::Lazy),
            (100_000, 100, PopulationMode::Lazy),
            (1_000_000, 100, PopulationMode::Lazy),
        ]
    };
    let mut rows: Vec<String> = grid
        .into_iter()
        .filter_map(|(n, e, mode)| spawn_one(n, e, mode))
        .collect();
    if !smoke {
        eprintln!("[scale_sweep] verifying 10k dense == lazy records bitwise ...");
        let ok = verify_dense_lazy_10k();
        rows.push(format!("{{\"dense_lazy_10k_records_bitwise\":{ok}}}"));
        assert!(ok, "10k dense and lazy runs must produce identical records");
    }
    let json = format!("[\n  {}\n]\n", rows.join(",\n  "));
    let path = if smoke {
        "BENCH_scale_smoke.json"
    } else {
        "BENCH_scale.json"
    };
    match std::fs::write(path, &json) {
        Ok(()) => eprintln!("[scale_sweep] wrote {path}"),
        Err(e) => {
            eprintln!("[scale_sweep] cannot write {path}: {e}");
            println!("{json}");
        }
    }
}
