//! Async-vs-lockstep Pareto sweep, emitting machine-readable results to
//! `BENCH_async.json`.
//!
//! Runs one MIDDLE configuration under the lockstep scheduler and under
//! a grid of event-driven variants (plain async, K-of-cohort edge
//! thresholds, timer-driven cloud syncs) in a clean regime and in a
//! hostile straggler regime, and records each run's final/best accuracy
//! against its simulated wall-clock. The wall-clock model charges both
//! arms symmetrically:
//!
//! - **Lockstep** pays the shared two-tier link model
//!   ([`RunRecord::comm_wall_clock`]) plus, when a straggler model is
//!   on, one `deadline_s` barrier wait per active round — synchronous
//!   rounds cannot close before the deadline expires on the slowest
//!   cohort member.
//! - **Event-driven** pays its own simulated clock (`event_seconds`,
//!   which already paces rounds at `step_duration` and lets upload
//!   latencies overlap training) plus the identical per-sync WAN +
//!   broadcast charge. `step_duration` is set to the wireless cost of
//!   one synchronous round (down + up), so in the clean zero-delay
//!   regime the two arms price a round identically and the curves
//!   separate only where asynchrony genuinely helps.
//!
//! Under the hostile regime the async arm must strictly dominate
//! lockstep wall-clock at no accuracy loss; the binary exits non-zero
//! if it does not (`"dominates": true` in the JSON is the bench gate).
//!
//! ```sh
//! cargo run -p middle-bench --release --bin async_sweep [out.json] [--smoke]
//! ```

use middle_core::comm::{WAN_SECS_PER_TRANSFER, WIRELESS_SECS_PER_TRANSFER};
use middle_core::{
    Algorithm, DelayModel, ExecutionMode, FaultConfig, LatencyModel, RunRecord, SimConfig,
    SimulationBuilder,
};
use middle_data::Task;

/// Simulated duration of one event-driven round: the wireless cost of
/// a synchronous round (device download + upload), so the clean-regime
/// price of a round matches lockstep exactly.
const STEP_DURATION_S: f64 = 2.0 * WIRELESS_SECS_PER_TRANSFER;

fn sim_config(faults: FaultConfig, smoke: bool) -> SimConfig {
    let mut cfg = SimConfig::paper_default(Task::Mnist, Algorithm::middle());
    cfg.num_edges = 4;
    cfg.num_devices = 24;
    cfg.devices_per_edge = 3;
    cfg.samples_per_device = 30;
    cfg.steps = if smoke { 10 } else { 30 };
    cfg.cloud_interval = 5;
    cfg.test_samples = if smoke { 100 } else { 200 };
    cfg.eval_interval = 5;
    cfg.faults = faults;
    cfg.timeline.step_duration = STEP_DURATION_S;
    cfg
}

/// Exponential stragglers against a deadline: the regime where the
/// lockstep barrier bleeds a full `deadline_s` every round while the
/// async arm lets the tail overlap the next round. The deadline equals
/// the round duration and sits at 4x the mean upload delay — the tail
/// allowance a synchronous deployment provisions so that only the
/// slowest ~2% of uploads (`e^-4`) go stale — so both arms lose the
/// same small fraction of updates to staleness and the barrier cost is
/// pure overhead. Pushing the mean much past the point where delays
/// routinely span rounds trades the comparison for a different one:
/// there the async arm's accuracy genuinely degrades (updates land
/// rounds late, busy devices sit out selection) and neither arm
/// dominates.
fn hostile() -> FaultConfig {
    FaultConfig {
        straggler_delay: DelayModel::Exponential { mean_s: 0.5 },
        deadline_s: STEP_DURATION_S,
        ..FaultConfig::default()
    }
}

/// The event-driven grid: plain async plus the threshold / timer knobs.
fn async_variants() -> Vec<(&'static str, Option<usize>, Option<f64>)> {
    vec![
        ("async", None, None),
        ("async_k2", Some(2), None),
        ("async_timer10", None, Some(10.0)),
        ("async_k2_timer10", Some(2), Some(10.0)),
    ]
}

struct Point {
    label: String,
    wall_s: f64,
    final_accuracy: f32,
    best_accuracy: f32,
    syncs: u64,
    active_steps: u64,
    stale_uploads: u64,
    event_s: Option<f64>,
}

/// Per-sync charge shared by both arms: edge→cloud + cloud→edge WAN
/// rounds plus the cloud→device wireless broadcast.
fn sync_wall(syncs: u64) -> f64 {
    syncs as f64 * (2.0 * WAN_SECS_PER_TRANSFER + WIRELESS_SECS_PER_TRANSFER)
}

fn lockstep_point(record: &RunRecord, straggling: bool, deadline_s: f64) -> Point {
    let barrier = if straggling {
        record.active_steps as f64 * deadline_s
    } else {
        0.0
    };
    let wall_s =
        record.comm_wall_clock(WIRELESS_SECS_PER_TRANSFER, WAN_SECS_PER_TRANSFER) + barrier;
    point("lockstep", record, wall_s)
}

fn async_point(label: &str, record: &RunRecord) -> Point {
    let event_s = record
        .event_seconds
        .expect("event-driven runs record their simulated clock");
    point(label, record, event_s + sync_wall(record.syncs))
}

fn point(label: &str, record: &RunRecord, wall_s: f64) -> Point {
    Point {
        label: label.to_string(),
        wall_s,
        final_accuracy: record.final_accuracy(),
        best_accuracy: record.best_accuracy(),
        syncs: record.syncs,
        active_steps: record.active_steps,
        stale_uploads: record.comm.stale_uploads,
        event_s: record.event_seconds,
    }
}

fn run(cfg: SimConfig) -> RunRecord {
    SimulationBuilder::new(cfg)
        .build()
        .expect("valid sweep config")
        .run()
}

fn point_json(p: &Point) -> String {
    let event = p.event_s.map_or("null".to_string(), |s| format!("{s:.3}"));
    format!(
        "{{\"label\": \"{}\", \"wall_s\": {:.3}, \"final_accuracy\": {:.6}, \
         \"best_accuracy\": {:.6}, \"syncs\": {}, \"active_steps\": {}, \
         \"stale_uploads\": {}, \"event_s\": {event}}}",
        p.label,
        p.wall_s,
        p.final_accuracy,
        p.best_accuracy,
        p.syncs,
        p.active_steps,
        p.stale_uploads,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_async.json".into());

    println!(
        "{:<10} {:<18} {:>9} {:>7} {:>7} {:>6} {:>7} {:>6}",
        "regime", "point", "wall s", "final", "best", "syncs", "active", "stale"
    );
    let mut regime_blocks = Vec::new();
    let mut hostile_dominates = false;
    for (regime, faults) in [
        ("clean", FaultConfig::default()),
        ("hostile_stragglers", hostile()),
    ] {
        let straggling = faults.straggler_delay != DelayModel::None;
        let deadline_s = faults.deadline_s;

        let lock = lockstep_point(&run(sim_config(faults, smoke)), straggling, deadline_s);
        let mut points = Vec::new();
        for (label, threshold, timer) in async_variants() {
            let mut cfg = sim_config(faults, smoke);
            cfg.timeline.mode = ExecutionMode::EventDriven;
            cfg.timeline.latency = LatencyModel::Faults;
            cfg.timeline.edge_threshold = threshold;
            cfg.timeline.cloud_timer = timer;
            points.push(async_point(label, &run(cfg)));
        }

        for p in std::iter::once(&lock).chain(&points) {
            println!(
                "{:<10} {:<18} {:>9.1} {:>7.3} {:>7.3} {:>6} {:>7} {:>6}",
                regime,
                p.label,
                p.wall_s,
                p.final_accuracy,
                p.best_accuracy,
                p.syncs,
                p.active_steps,
                p.stale_uploads,
            );
        }

        // Strict wall-clock domination at no accuracy loss: every async
        // point beats the lockstep wall, and the best async accuracy is
        // at least lockstep's.
        let dominates = points.iter().all(|p| p.wall_s < lock.wall_s)
            && points
                .iter()
                .any(|p| p.final_accuracy >= lock.final_accuracy);
        if regime == "hostile_stragglers" {
            hostile_dominates = dominates;
        }

        let async_json: Vec<String> = points
            .iter()
            .map(|p| format!("      {}", point_json(p)))
            .collect();
        regime_blocks.push(format!(
            "    {{\"regime\": \"{regime}\", \"dominates\": {dominates},\n      \
             \"lockstep\": {},\n      \"async\": [\n{}\n      ]}}",
            point_json(&lock),
            async_json.join(",\n"),
        ));
    }

    let json = format!(
        "{{\n  \"wireless_secs_per_transfer\": {WIRELESS_SECS_PER_TRANSFER},\n  \
         \"wan_secs_per_transfer\": {WAN_SECS_PER_TRANSFER},\n  \
         \"step_duration_s\": {STEP_DURATION_S},\n  \"smoke\": {smoke},\n  \
         \"regimes\": [\n{}\n  ]\n}}\n",
        regime_blocks.join(",\n")
    );
    std::fs::write(&out_path, &json).expect("write BENCH_async.json");
    println!("\nwrote {out_path}");

    if !smoke {
        assert!(
            hostile_dominates,
            "async arm failed to dominate lockstep wall-clock under hostile stragglers"
        );
        println!("async dominates lockstep under hostile stragglers");
    }
}
