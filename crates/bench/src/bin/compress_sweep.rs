//! Compression-plane sweep, emitting machine-readable results to
//! `BENCH_compress.json`.
//!
//! Runs one MIDDLE configuration through a bits × top-K grid of uplink
//! compression settings (QSGD-style stochastic quantization + top-K
//! sparsification with per-sender error feedback), each under a clean
//! link and under a hostile fault preset, and records per cell the
//! final accuracy, the accuracy delta against the uncompressed baseline
//! of the same fault regime, the byte-accurate uplink ledger and the
//! achieved uplink compression ratio.
//!
//! Two invariants are asserted on every invocation, so the sweep doubles
//! as an end-to-end gate:
//!
//! - an *enabled but lossless* plane (bits = 32, top_frac = 1.0) is
//!   bitwise identical to compression off, and
//! - at least one lossy cell cuts uplink payload bytes by >= 4x.
//!
//! ```sh
//! cargo run -p middle-bench --release --bin compress_sweep [--smoke] [--workers N] [out.json]
//! ```
//!
//! `--smoke` shrinks the grid and the scenario to a seconds-long CI
//! check that still exercises both invariants. `--workers N` first
//! runs the same cells through the multi-process fleet layer (`N`
//! worker threads over a shared lease ledger + coordinator merge) and
//! asserts every fleet record is bitwise-identical to the direct run
//! of the same cell.

use middle_core::comm::{WAN_SECS_PER_TRANSFER, WIRELESS_SECS_PER_TRANSFER};
use middle_core::{
    run_fleet_coordinator, run_fleet_worker, Algorithm, CompressionConfig, CompressionPreset,
    DelayModel, DropoutModel, FaultConfig, FaultPreset, FleetOptions, RunRecord, ScenarioGrid,
    SimConfig, SimulationBuilder, StepMode,
};
use middle_data::Task;
use std::collections::HashMap;

fn sim_config(smoke: bool, compression: CompressionConfig, faults: FaultConfig) -> SimConfig {
    let mut cfg = if smoke {
        let mut c = SimConfig::tiny(Task::Mnist, Algorithm::middle());
        c.steps = 12;
        c.cloud_interval = 4;
        c.eval_interval = 4;
        c
    } else {
        let mut c = SimConfig::paper_default(Task::Mnist, Algorithm::middle());
        c.num_edges = 4;
        c.num_devices = 24;
        c.devices_per_edge = 3;
        c.samples_per_device = 30;
        c.steps = 30;
        c.cloud_interval = 5;
        c.test_samples = 200;
        c.eval_interval = 5;
        c
    };
    cfg.compression = compression;
    cfg.faults = faults;
    cfg
}

fn hostile() -> FaultConfig {
    FaultConfig {
        dropout: DropoutModel::Iid { p: 0.2 },
        straggler_delay: DelayModel::Uniform {
            min_s: 0.0,
            max_s: 2.0,
        },
        deadline_s: 1.5,
        upload_loss: 0.15,
        upload_retries: 2,
        wan_outage: 0.2,
    }
}

fn lossy(bits: u32, frac: f64) -> CompressionConfig {
    CompressionConfig {
        enabled: true,
        quantize_bits: bits,
        top_frac: frac,
        ..CompressionConfig::default()
    }
}

/// (label, config) cells of the grid. `None` compression means plane off.
fn grid(smoke: bool) -> Vec<(String, Option<CompressionConfig>)> {
    let mut cells: Vec<(String, Option<CompressionConfig>)> = vec![
        ("off".into(), None),
        ("lossless".into(), Some(lossy(32, 1.0))),
    ];
    let (bit_axis, frac_axis): (&[u32], &[f64]) = if smoke {
        (&[8], &[0.25])
    } else {
        (&[8, 4], &[1.0, 0.25, 0.05])
    };
    for &bits in bit_axis {
        for &frac in frac_axis {
            cells.push((
                format!("q{bits}k{:02}", (frac * 100.0) as u32),
                Some(lossy(bits, frac)),
            ));
        }
    }
    cells
}

fn run(smoke: bool, compression: Option<CompressionConfig>, faults: FaultConfig) -> RunRecord {
    let comp = compression.unwrap_or_default();
    SimulationBuilder::new(sim_config(smoke, comp, faults))
        .build()
        .expect("valid sweep config")
        .run()
}

/// A run record with its wall-clock-dependent fields zeroed — the
/// per-cell comparison form for the fleet cross-check.
fn deterministic_record_json(record: &RunRecord) -> String {
    let mut r = record.clone();
    r.wall_seconds = 0.0;
    r.telemetry = None;
    serde_json::to_string(&r).expect("record serialises")
}

/// Runs every (fault regime × compression cell) through the fleet
/// layer — `workers` threads claiming shard leases from a shared
/// ledger, coordinator merging their streams — and returns the records
/// keyed by `(regime, cell)` for the bitwise cross-check against the
/// direct runs.
fn fleet_records(smoke: bool, workers: usize) -> HashMap<(String, String), RunRecord> {
    let base = sim_config(smoke, CompressionConfig::default(), FaultConfig::default());
    let grid = ScenarioGrid::new(base)
        .with_fault_presets([
            FaultPreset {
                name: "clean".to_string(),
                faults: FaultConfig::default(),
            },
            FaultPreset {
                name: "hostile".to_string(),
                faults: hostile(),
            },
        ])
        .with_compression_presets(
            grid(smoke)
                .into_iter()
                .map(|(cell, compression)| CompressionPreset {
                    name: cell,
                    compression: compression.unwrap_or_default(),
                })
                .collect::<Vec<_>>(),
        );
    let dir = std::env::temp_dir().join(format!("middle_compress_fleet_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let fopts = FleetOptions {
        step_mode: StepMode::Fast,
        lease_ms: 600_000,
        heartbeat_ms: 1_000,
        poll_ms: 5,
        checkpoint_every: 0,
        ..FleetOptions::default()
    };
    let handles: Vec<_> = (0..workers)
        .map(|i| {
            let grid = grid.clone();
            let dir = dir.clone();
            let fopts = fopts.clone();
            std::thread::spawn(move || {
                run_fleet_worker(&grid, &dir, &format!("w{i}"), &fopts).expect("fleet worker runs")
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("fleet worker thread");
    }
    let report = run_fleet_coordinator(&grid, &dir, &fopts).expect("coordinator merges");
    let _ = std::fs::remove_dir_all(&dir);
    report
        .scenarios
        .into_iter()
        .map(|s| {
            let cell = s.compression.expect("compression axis is swept");
            ((s.preset, cell), s.record)
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut workers = 0usize;
    let mut out_path = String::from("BENCH_compress.json");
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--workers" => {
                workers = it
                    .next()
                    .expect("--workers takes a count")
                    .parse()
                    .expect("--workers takes a count");
            }
            flag if flag.starts_with("--") => panic!("unknown flag {flag}"),
            path => out_path = path.to_string(),
        }
    }

    let fleet = if workers > 0 {
        eprintln!("[compress_sweep] fleet pass: {workers} workers over the cell grid");
        Some(fleet_records(smoke, workers))
    } else {
        None
    };

    println!(
        "{:<10} {:<8} {:>7} {:>8} {:>14} {:>7} {:>9}",
        "cell", "faults", "final", "dacc", "uplink bytes", "ratio", "comm s"
    );
    let mut rows = Vec::new();
    let mut best_ratio = 0.0f64;
    for (regime, faults) in [("clean", FaultConfig::default()), ("hostile", hostile())] {
        let mut baseline: Option<RunRecord> = None;
        for (cell, compression) in grid(smoke) {
            let record = run(smoke, compression.clone(), faults);
            if let Some(fleet) = &fleet {
                let key = (regime.to_string(), cell.clone());
                let fleet_record = fleet
                    .get(&key)
                    .unwrap_or_else(|| panic!("fleet pass missing cell {key:?}"));
                assert_eq!(
                    deterministic_record_json(fleet_record),
                    deterministic_record_json(&record),
                    "cell {cell} ({regime}) diverged between fleet and direct execution"
                );
            }
            let comm = &record.comm;
            let base = baseline.get_or_insert_with(|| {
                assert_eq!(
                    cell, "off",
                    "grid must start with the uncompressed baseline"
                );
                record.clone()
            });
            let dacc = record.final_accuracy() - base.final_accuracy();
            let base_uplink = base.comm.uplink_bytes();
            let ratio = base_uplink as f64 / comm.uplink_bytes().max(1) as f64;
            let comm_s = record.comm_wall_clock(WIRELESS_SECS_PER_TRANSFER, WAN_SECS_PER_TRANSFER);
            if cell == "lossless" {
                // Gate: enabled-but-lossless must be bitwise identical to off.
                assert_eq!(
                    record.final_accuracy().to_bits(),
                    base.final_accuracy().to_bits(),
                    "lossless compression diverged from off ({regime})"
                );
                assert_eq!(
                    &record.comm, &base.comm,
                    "lossless comm ledger diverged ({regime})"
                );
            }
            if compression.is_some() && cell != "lossless" {
                best_ratio = best_ratio.max(ratio);
            }
            println!(
                "{:<10} {:<8} {:>7.3} {:>+8.3} {:>14} {:>6.2}x {:>9.1}",
                cell,
                regime,
                record.final_accuracy(),
                dacc,
                comm.uplink_bytes(),
                ratio,
                comm_s,
            );
            rows.push(format!(
                "    {{\"cell\": \"{cell}\", \"faults\": \"{regime}\", \
                 \"quantize_bits\": {}, \"top_frac\": {}, \
                 \"final_accuracy\": {:.6}, \"accuracy_delta\": {dacc:.6}, \
                 \"uplink_bytes\": {}, \"uplink_ratio\": {ratio:.3}, \
                 \"comm\": {}, \"syncs\": {}, \"comm_wall_s\": {comm_s:.3}}}",
                compression.as_ref().map_or(32, |c| c.quantize_bits),
                compression.as_ref().map_or(1.0, |c| c.top_frac),
                record.final_accuracy(),
                comm.uplink_bytes(),
                serde_json::to_string(comm).expect("comm stats serialise"),
                record.syncs,
            ));
        }
    }

    assert!(
        best_ratio >= 4.0,
        "no lossy cell reached a 4x uplink cut (best {best_ratio:.2}x)"
    );

    let json = format!(
        "{{\n  \"smoke\": {smoke},\n  \"best_uplink_ratio\": {best_ratio:.3},\n  \
         \"wireless_secs_per_transfer\": {WIRELESS_SECS_PER_TRANSFER},\n  \
         \"wan_secs_per_transfer\": {WAN_SECS_PER_TRANSFER},\n  \"cells\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    std::fs::write(&out_path, &json).expect("write BENCH_compress.json");
    println!("\nbest uplink ratio {best_ratio:.2}x; wrote {out_path}");
}
