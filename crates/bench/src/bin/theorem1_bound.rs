//! Theorem 1 / Remark 1 validation: the analytic convergence bound and
//! the measured optimality gap on the strongly-convex quadratic
//! test-bed, both as functions of the global mobility P.
//!
//! ```sh
//! cargo run -p middle-bench --release --bin theorem1_bound
//! ```

use middle_bench::write_csv;
use middle_core::quadratic_sim::{simulate_quadratic_hfl, two_cluster_problem, QuadraticHflConfig};
use middle_core::theory::BoundParams;

fn main() {
    let problem = two_cluster_problem(20, 2, 3.0);
    let base = QuadraticHflConfig {
        edges: 4,
        steps: 200,
        local_steps: 5,
        cloud_interval: 20,
        alpha: 0.5,
        p: 0.5,
        noise_std: 0.1,
        theorem_lr: true,
        seed: 42,
        homed: false,
        download_each_step: true,
    };
    let bound = BoundParams {
        beta: problem.beta(),
        mu: problem.mu(),
        b: base.noise_std * base.noise_std,
        g2: 25.0,
        local_steps: base.local_steps,
        alpha: base.alpha,
        p: base.p as f32,
        initial_gap: 20.0,
    };
    bound.validate().expect("valid Theorem 1 parameters");

    println!("=== Theorem 1 — analytic bound vs measured gap over time (P = 0.5) ===\n");
    let res = simulate_quadratic_hfl(&problem, &base);
    println!(
        "{:>6} {:>14} {:>14}",
        "step", "measured gap", "analytic bound"
    );
    let mut csv_t = String::from("step,measured_gap,bound\n");
    for (t, &gap) in res.gap_trajectory.iter().enumerate() {
        if t % 20 == 0 || t + 1 == res.gap_trajectory.len() {
            println!("{t:>6} {gap:>14.4} {:>14.4}", bound.bound(t));
        }
        csv_t.push_str(&format!("{t},{gap:.6},{:.6}\n", bound.bound(t)));
    }
    write_csv("theorem1_trajectory", &csv_t);

    println!("\n=== Remark 1 — mobility's effect under the Theorem 1 dynamics ===");
    println!("(devices keep local models between cloud syncs; on-device blending on");
    println!("movement is the only cross-device homogenization — §5's setting)\n");
    println!(
        "{:>6} {:>18} {:>14} {:>16} {:>14}",
        "P", "start divergence", "measured gap", "mobility term", "d(bound)/dP"
    );
    let mut csv_p = String::from("p,start_divergence,measured_gap,mobility_term,derivative\n");
    for p in [0.05f64, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9] {
        // Average over seeds so the trend is visible through SGD noise.
        let (mut divergence, mut gap) = (0.0f32, 0.0f32);
        const SEEDS: u64 = 8;
        for s in 0..SEEDS {
            let cfg = QuadraticHflConfig {
                p,
                seed: 1000 + s,
                steps: 150,
                cloud_interval: 30,
                theorem_lr: false,
                download_each_step: false,
                homed: true,
                ..base
            };
            let r = simulate_quadratic_hfl(&problem, &cfg);
            let warm = 20usize;
            divergence += r.start_dispersion[warm..].iter().sum::<f32>()
                / (r.start_dispersion.len() - warm) as f32;
            gap += r.gap_trajectory[warm..].iter().sum::<f32>()
                / (r.gap_trajectory.len() - warm) as f32;
        }
        divergence /= SEEDS as f32;
        gap /= SEEDS as f32;
        let mut b = bound;
        b.p = p as f32;
        println!(
            "{p:>6.2} {divergence:>18.4} {gap:>14.4} {:>16.4} {:>14.2}",
            b.mobility_term(),
            b.mobility_derivative()
        );
        csv_p.push_str(&format!(
            "{p},{divergence:.6},{gap:.6},{:.6},{:.6}\n",
            b.mobility_term(),
            b.mobility_derivative()
        ));
    }
    write_csv("theorem1_mobility", &csv_p);

    println!("\npaper shape check: the measured start-point divergence (the proof's");
    println!("unique Eq. 19 term) and the analytic mobility term both fall");
    println!("monotonically in P, with negative derivative everywhere on (0, 1] —");
    println!("Remark 1. (The end-of-run gap itself is flat/noisy; the paper itself");
    println!("observes that 'the experimental results do not follow our theoretical");
    println!("analysis' for final accuracy under most baselines.)");
}
