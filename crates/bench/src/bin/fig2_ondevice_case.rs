//! Figure 2: the on-device model aggregation case study (§2 Question 2).
//!
//! Ten one-class devices over two edges — classes {0..4} on edge 1 and
//! {5..9} on edge 2 — train for a warm-up period; then devices {3, 4}
//! swap with {8, 9}. Training continues under (a) "General" (download
//! the edge model) and (b) "On-Device Model Aggregation (A Case)"
//! (plain average of edge + carried model), and the final per-class
//! accuracies of the global model and edge model 1 are compared.
//!
//! ```sh
//! cargo run -p middle-bench --release --bin fig2_ondevice_case
//! ```

use middle_bench::{run_logged, scaled_steps, write_csv};
use middle_core::{Algorithm, OnDevicePolicy, RunRecord, SelectionPolicy, SimConfig};
use middle_data::{Scheme, Task};
use middle_mobility::Trace;

fn scripted_trace(warmup: usize, total: usize) -> Trace {
    // Initial: devices 0..5 (classes 0-4) on edge 0, devices 5..10 on edge 1.
    let before: Vec<usize> = (0..10).map(|m| usize::from(m >= 5)).collect();
    // After the swap, devices 3 and 4 move to edge 1; devices 8, 9 to edge 0.
    let mut after = before.clone();
    after[3] = 1;
    after[4] = 1;
    after[8] = 0;
    after[9] = 0;
    let assignments: Vec<Vec<usize>> = (0..total)
        .map(|t| {
            if t < warmup {
                before.clone()
            } else {
                after.clone()
            }
        })
        .collect();
    Trace::new(2, assignments)
}

fn base_config(on_device: OnDevicePolicy, name: &str, steps: usize) -> SimConfig {
    let mut cfg = SimConfig::paper_default(
        Task::Mnist,
        Algorithm::custom(name, SelectionPolicy::Random, on_device),
    );
    cfg.num_edges = 2;
    cfg.num_devices = 10;
    cfg.devices_per_edge = 5; // K = candidate count: full participation
    cfg.samples_per_device = 30;
    cfg.scheme = Scheme::SingleClass;
    cfg.steps = steps;
    // Periodic syncs keep training healthy (as in the paper's HFL loop);
    // the horizon is chosen so the final evaluation falls 8 steps after
    // the last sync — edge models are then distinct from the cloud.
    cfg.cloud_interval = 10;
    cfg.eval_interval = steps;
    cfg.eval_edges = true;
    cfg.eval_per_class = true;
    cfg.test_samples = 300;
    cfg
}

fn report(label: &str, rec: &RunRecord) -> (Vec<f32>, Vec<f32>) {
    let p = rec.points.last().expect("final eval");
    let fmt = |v: &[Option<f32>]| -> Vec<f32> { v.iter().map(|x| x.unwrap_or(f32::NAN)).collect() };
    let global = fmt(&p.global_per_class);
    let edge1 = fmt(&p.edge0_per_class);
    println!("\n{label}:");
    println!(
        "  overall global {:.3}, edge1 {:.3}",
        p.global_accuracy, p.edge_accuracy[0]
    );
    println!(
        "  class:        {}",
        (0..10).map(|c| format!("{c:>6}")).collect::<String>()
    );
    println!(
        "  global/class: {}",
        global
            .iter()
            .map(|a| format!("{a:>6.2}"))
            .collect::<String>()
    );
    println!(
        "  edge1/class:  {}",
        edge1
            .iter()
            .map(|a| format!("{a:>6.2}"))
            .collect::<String>()
    );
    (global, edge1)
}

fn main() {
    // The swap must land mid-sync-window (not on a sync boundary, where
    // every model coincides with the cloud and blending is a no-op).
    let warmup = scaled_steps(44);
    let post = scaled_steps(14);
    let total = warmup + post;
    let trace = scripted_trace(warmup, total);

    let general = base_config(OnDevicePolicy::EdgeModel, "General", total);
    let ondevice = base_config(OnDevicePolicy::Average, "OnDeviceAvg", total);

    println!("warm-up {warmup} steps, then swap devices {{3,4}} <-> {{8,9}}, {post} more steps\n");
    let rec_general = {
        let trace = trace.clone();
        let mut sim = middle_core::SimulationBuilder::new(general)
            .with_trace(trace)
            .build()
            .expect("valid fig2 trace");
        let r = sim.run();
        eprintln!("[fig2] General done in {:.1}s", r.wall_seconds);
        r
    };
    let rec_ondevice = {
        let mut sim = middle_core::SimulationBuilder::new(ondevice)
            .with_trace(trace)
            .build()
            .expect("valid fig2 trace");
        let r = sim.run();
        eprintln!("[fig2] OnDeviceAvg done in {:.1}s", r.wall_seconds);
        r
    };
    // Reference: keep run_logged linked for consistency of the harness API.
    let _ = run_logged;

    let (g_gen, e_gen) = report("General (download edge model)", &rec_general);
    let (g_ond, e_ond) = report("On-Device Model Aggregation (plain average)", &rec_ondevice);

    let mut csv =
        String::from("class,global_general,global_ondevice,edge1_general,edge1_ondevice\n");
    for c in 0..10 {
        csv.push_str(&format!(
            "{c},{:.4},{:.4},{:.4},{:.4}\n",
            g_gen[c], g_ond[c], e_gen[c], e_ond[c]
        ));
    }
    write_csv("fig2_ondevice_case", &csv);

    println!("\npaper shape check (Fig. 2b): on-device aggregation should LIFT edge 1's");
    println!("accuracy on classes 5-7 (knowledge carried from edge 2 by devices 8, 9)");
    println!("and may DIP on classes 3-4 (their fully-trained models left the edge).");
    let lift57: f32 = (5..8).map(|c| e_ond[c] - e_gen[c]).sum::<f32>() / 3.0;
    let lift89: f32 = (8..10).map(|c| e_ond[c] - e_gen[c]).sum::<f32>() / 2.0;
    let dip34: f32 = (3..5).map(|c| e_ond[c] - e_gen[c]).sum::<f32>() / 2.0;
    println!("measured edge-1 deltas (on-device − general):");
    println!("  exchanged arriving classes 8-9: {lift89:+.3} (carried models dominate here)");
    println!("  inherited classes 5-7:          {lift57:+.3}");
    println!("  departed classes 3-4:           {dip34:+.3} (negative = the paper's dip)");
    println!(
        "  overall edge 1:                 {:+.3}",
        rec_ondevice.points.last().unwrap().edge_accuracy[0]
            - rec_general.points.last().unwrap().edge_accuracy[0]
    );
    println!(
        "  overall global:                 {:+.3}",
        rec_ondevice.final_accuracy() - rec_general.final_accuracy()
    );
}
