use middle_core::quadratic_sim::{simulate_quadratic_hfl, two_cluster_problem, QuadraticHflConfig};

fn main() {
    let q = two_cluster_problem(20, 2, 4.0);
    for homed in [true, false] {
        println!("homed={homed} (Tc=30 I=10 noise=0.1 fixed lr)");
        for p in [0.05f64, 0.2, 0.5, 0.9] {
            let (mut gap, mut sdisp) = (0.0f32, 0.0f32);
            for s in 0..10 {
                let cfg = QuadraticHflConfig {
                    edges: 4,
                    steps: 120,
                    local_steps: 10,
                    cloud_interval: 30,
                    alpha: 0.5,
                    p,
                    noise_std: 0.1,
                    theorem_lr: false,
                    seed: 500 + s,
                    homed,
                    download_each_step: false,
                };
                let r = simulate_quadratic_hfl(&q, &cfg);
                gap += r.gap_trajectory[20..].iter().sum::<f32>() / 100.0;
                sdisp += r.start_dispersion[20..].iter().sum::<f32>() / 100.0;
            }
            println!(
                "  P={p:.2}: mean gap {:.4}  start divergence {:.4}",
                gap / 10.0,
                sdisp / 10.0
            );
        }
    }
}
