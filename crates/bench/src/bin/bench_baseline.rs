//! Hot-path before/after microbenchmarks, emitting machine-readable
//! medians to `BENCH_hotpath.json`.
//!
//! Each component is measured in its original allocating form
//! ("before") and its zero-copy form ("after"):
//!
//! * selection scoring (LeastSimilarUpdate) at 100 and 1000 candidates —
//!   per-candidate flatten + Δw materialisation + full sort vs the fused
//!   cached-flat-view kernel with an O(n) partial sort;
//! * edge aggregation at 10 and 100 uploaded models —
//!   `weighted_average` (flat scratch + clone + unflatten) vs in-place
//!   zero + axpy accumulation;
//! * cloud aggregation at 10 edges — same pair through the
//!   window-weighted path;
//! * one full simulation step — the clone-based reference step vs the
//!   zero-copy step.
//!
//! ```sh
//! cargo run -p middle-bench --release --bin bench_baseline [out.json]
//! ```

use middle_core::aggregation::{
    cloud_aggregate, cloud_aggregate_into, edge_aggregate, edge_aggregate_into,
};
use middle_core::selection::{select_devices, select_devices_reference};
use middle_core::{
    Algorithm, Device, SelectionPolicy, SimConfig, Simulation, SimulationBuilder, StepMode,
};
use middle_data::synthetic::{SyntheticSource, Task};
use middle_data::Task as DataTask;
use middle_nn::params::flatten;
use middle_nn::{zoo, Sequential};
use middle_tensor::random::rng;
use std::time::Instant;

/// Interleaved before/after medians (ns per iteration). Each sample
/// times the "before" routine and then the "after" routine back to
/// back, so slow drift in machine load hits both sides equally instead
/// of skewing the ratio.
fn measure_pair<B: FnMut(), A: FnMut()>(
    samples: usize,
    iters_per_sample: usize,
    mut before: B,
    mut after: A,
) -> (f64, f64) {
    // Warm-up.
    for _ in 0..iters_per_sample.max(1) {
        before();
        after();
    }
    let mut before_times = Vec::with_capacity(samples);
    let mut after_times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t = Instant::now();
        for _ in 0..iters_per_sample {
            before();
        }
        before_times.push(t.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        let t = Instant::now();
        for _ in 0..iters_per_sample {
            after();
        }
        after_times.push(t.elapsed().as_nanos() as f64 / iters_per_sample as f64);
    }
    (median(before_times), median(after_times))
}

fn median(mut times: Vec<f64>) -> f64 {
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    times[times.len() / 2]
}

fn mk_devices(n: usize) -> Vec<Device> {
    let src = SyntheticSource::new(Task::Mnist, 5);
    let spec = Task::Mnist.spec();
    (0..n)
        .map(|id| {
            Device::new(
                id,
                src.generate_balanced(10, id as u64),
                zoo::logistic(&spec, &mut rng(id as u64)),
                900 + id as u64,
            )
        })
        .collect()
}

fn built(cfg: SimConfig) -> Simulation {
    SimulationBuilder::new(cfg).build().expect("valid config")
}

fn sim_config() -> SimConfig {
    let mut cfg = SimConfig::paper_default(DataTask::Mnist, Algorithm::middle());
    cfg.num_edges = 3;
    cfg.num_devices = 12;
    cfg.devices_per_edge = 2;
    cfg.samples_per_device = 16;
    cfg.local_steps = 3;
    cfg.batch_size = 8;
    cfg.steps = 6;
    cfg.test_samples = 60;
    cfg.eval_interval = 6;
    cfg
}

struct Entry {
    component: String,
    before_ns: f64,
    after_ns: f64,
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_hotpath.json".into());
    let mut entries: Vec<Entry> = Vec::new();

    // --- Selection scoring at 100 and 1000 candidates. ---
    for n in [100usize, 1000] {
        let devices = mk_devices(n);
        let cloud = flatten(&devices[0].model);
        let candidates: Vec<usize> = (0..n).collect();
        let iters = if n >= 1000 { 20 } else { 100 };
        let mut rb = rng(7);
        let mut ra = rng(7);
        let (before, after) = measure_pair(
            21,
            iters,
            || {
                std::hint::black_box(select_devices_reference(
                    SelectionPolicy::LeastSimilarUpdate,
                    5,
                    &candidates,
                    &devices,
                    &cloud,
                    &mut rb,
                ));
            },
            || {
                std::hint::black_box(select_devices(
                    SelectionPolicy::LeastSimilarUpdate,
                    5,
                    &candidates,
                    &devices,
                    &cloud,
                    &mut ra,
                ));
            },
        );
        entries.push(Entry {
            component: format!("selection_scoring_{n}_candidates"),
            before_ns: before,
            after_ns: after,
        });
    }

    // --- Edge aggregation at 10 and 100 models. ---
    let spec = Task::Mnist.spec();
    for n in [10usize, 100] {
        let models: Vec<Sequential> = (0..n)
            .map(|i| zoo::logistic(&spec, &mut rng(i as u64)))
            .collect();
        let refs: Vec<&Sequential> = models.iter().collect();
        let counts: Vec<usize> = (0..n).map(|i| 10 + i % 7).collect();
        let iters = if n >= 100 { 50 } else { 300 };
        let mut dst = zoo::logistic(&spec, &mut rng(999));
        let (before, after) = measure_pair(
            21,
            iters,
            || {
                std::hint::black_box(edge_aggregate(&refs, &counts));
            },
            || {
                edge_aggregate_into(&mut dst, refs.iter().copied().zip(counts.iter().copied()));
                std::hint::black_box(&dst);
            },
        );
        entries.push(Entry {
            component: format!("edge_aggregation_{n}_models"),
            before_ns: before,
            after_ns: after,
        });
    }

    // --- Cloud aggregation at 10 edges. ---
    {
        let models: Vec<Sequential> = (0..10)
            .map(|i| zoo::logistic(&spec, &mut rng(50 + i as u64)))
            .collect();
        let refs: Vec<&Sequential> = models.iter().collect();
        let windows: Vec<f64> = (0..10).map(|i| 5.0 + i as f64).collect();
        let mut dst = zoo::logistic(&spec, &mut rng(998));
        let (before, after) = measure_pair(
            21,
            300,
            || {
                std::hint::black_box(cloud_aggregate(&refs, &windows));
            },
            || {
                cloud_aggregate_into(&mut dst, refs.iter().copied().zip(windows.iter().copied()));
                std::hint::black_box(&dst);
            },
        );
        entries.push(Entry {
            component: "cloud_aggregation_10_edges".into(),
            before_ns: before,
            after_ns: after,
        });
    }

    // --- One full simulation step (warmed up past step 0; construction
    // and warm-up excluded from the timing). ---
    {
        let mut before_times = Vec::new();
        let mut after_times = Vec::new();
        for _ in 0..21 {
            let mut sim = built(sim_config());
            sim.step(0);
            let t = Instant::now();
            sim.advance(1, StepMode::Reference);
            before_times.push(t.elapsed().as_nanos() as f64);
            std::hint::black_box(&sim);

            let mut sim = built(sim_config());
            sim.step(0);
            let t = Instant::now();
            sim.step(1);
            after_times.push(t.elapsed().as_nanos() as f64);
            std::hint::black_box(&sim);
        }
        entries.push(Entry {
            component: "full_sim_step".into(),
            before_ns: median(before_times),
            after_ns: median(after_times),
        });
    }

    // --- Telemetry overhead on the zero-copy step: recorder disabled
    // ("before") vs enabled ("after"). The disabled recorder must be a
    // no-op, so the ratio should sit at ~1.0x. ---
    {
        let mut disabled_times = Vec::new();
        let mut enabled_times = Vec::new();
        for _ in 0..21 {
            let mut sim = built(sim_config());
            sim.step(0);
            let t = Instant::now();
            sim.step(1);
            disabled_times.push(t.elapsed().as_nanos() as f64);
            std::hint::black_box(&sim);

            let mut cfg = sim_config();
            cfg.telemetry = true;
            let mut sim = built(cfg);
            sim.step(0);
            let t = Instant::now();
            sim.step(1);
            enabled_times.push(t.elapsed().as_nanos() as f64);
            std::hint::black_box(&sim);
        }
        entries.push(Entry {
            component: "telemetry_step_overhead".into(),
            before_ns: median(disabled_times),
            after_ns: median(enabled_times),
        });
    }

    let mut json = String::from("{\n");
    for (i, e) in entries.iter().enumerate() {
        let speedup = e.before_ns / e.after_ns;
        println!(
            "{:<34} before {:>12.0} ns   after {:>12.0} ns   speedup {:>5.2}x",
            e.component, e.before_ns, e.after_ns, speedup
        );
        json.push_str(&format!(
            "  \"{}\": {{\"before_ns\": {:.0}, \"after_ns\": {:.0}, \"speedup\": {:.3}}}{}\n",
            e.component,
            e.before_ns,
            e.after_ns,
            speedup,
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    json.push_str("}\n");
    std::fs::write(&out_path, &json).expect("write benchmark json");
    println!("\nwrote {out_path}");
}
