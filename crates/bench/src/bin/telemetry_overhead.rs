//! Telemetry overhead gate: the disabled recorder must be a no-op.
//!
//! Guards the disabled-telemetry hot path against regression without
//! flaking on machine load. Absolute step times on a shared machine
//! swing far more than any useful tolerance, so the gate compares
//! *ratios*: it re-measures the zero-copy `step` against the
//! clone-based `step_reference` interleaved (identical load hits both
//! sides) and fails when the best observed step-to-reference ratio has
//! degraded by more than the tolerance (default 5%, override with
//! `MIDDLE_OVERHEAD_TOL=<fraction>`) relative to the `full_sim_step`
//! ratio recorded in `BENCH_hotpath.json` — i.e. when something made
//! the instrumented fast path slower relative to the same-machine
//! reference implementation. The limit is floored at `1 + tol`: load
//! compresses the fast/slow gap toward 1.0, but the zero-copy step
//! actually exceeding the clone-based reference is a regression under
//! any load.
//!
//! The enabled-vs-disabled telemetry ratio is measured the same
//! interleaved way and gated loosely (25%): the recorder itself must
//! stay cheap even when on.
//!
//! ```sh
//! cargo run -p middle-bench --release --bin telemetry_overhead [BENCH_hotpath.json]
//! ```

use middle_core::{Algorithm, SimConfig, SimulationBuilder, StepMode};
use middle_data::Task as DataTask;
use std::time::Instant;

fn sim_config() -> SimConfig {
    let mut cfg = SimConfig::paper_default(DataTask::Mnist, Algorithm::middle());
    cfg.num_edges = 3;
    cfg.num_devices = 12;
    cfg.devices_per_edge = 2;
    cfg.samples_per_device = 16;
    cfg.local_steps = 3;
    cfg.batch_size = 8;
    cfg.steps = 6;
    cfg.test_samples = 60;
    cfg.eval_interval = 6;
    cfg
}

fn median(mut times: Vec<f64>) -> f64 {
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    times[times.len() / 2]
}

/// One warmed-up step timing: `step(1)` with the given telemetry
/// switch, or `step_reference(1)` when `reference` is set.
fn time_step(reference: bool, telemetry: bool) -> f64 {
    let mut cfg = sim_config();
    cfg.telemetry = telemetry;
    let mut sim = SimulationBuilder::new(cfg)
        .build()
        .expect("valid overhead config");
    sim.step(0);
    let t = Instant::now();
    if reference {
        sim.advance(1, StepMode::Reference);
    } else {
        sim.step(1);
    }
    let ns = t.elapsed().as_nanos() as f64;
    std::hint::black_box(&sim);
    ns
}

/// Pulls `"full_sim_step": {..., "before_ns": B, "after_ns": A, ...}`
/// out of the recorded baseline without a JSON dependency.
fn baseline_ratio(json: &str) -> Option<f64> {
    let obj = json.split("\"full_sim_step\"").nth(1)?;
    let grab = |key: &str| -> Option<f64> {
        let field = obj.split(key).nth(1)?;
        let num: String = field
            .chars()
            .skip_while(|c| !c.is_ascii_digit())
            .take_while(|c| c.is_ascii_digit() || *c == '.')
            .collect();
        num.parse().ok()
    };
    let before = grab("\"before_ns\"")?;
    let after = grab("\"after_ns\"")?;
    (before > 0.0).then_some(after / before)
}

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_hotpath.json".into());
    let tol: f64 = std::env::var("MIDDLE_OVERHEAD_TOL")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|v: &f64| *v > 0.0)
        .unwrap_or(0.05);

    // Interleaved triples: reference step / disabled step / enabled
    // step, back to back, so load drift cancels in the ratios. The gate
    // uses the *best* (minimum) pairwise disabled/reference ratio: a
    // genuine regression shifts every pair up, while a load spike only
    // inflates the pairs it lands on.
    const SAMPLES: usize = 21;
    let mut reference = Vec::with_capacity(SAMPLES);
    let mut disabled = Vec::with_capacity(SAMPLES);
    let mut enabled = Vec::with_capacity(SAMPLES);
    let mut step_ratio = f64::INFINITY;
    for _ in 0..SAMPLES {
        let r = time_step(true, false);
        let d = time_step(false, false);
        enabled.push(time_step(false, true));
        step_ratio = step_ratio.min(d / r);
        reference.push(r);
        disabled.push(d);
    }
    let (ref_med, dis_med, en_med) = (median(reference), median(disabled), median(enabled));
    let telemetry_ratio = en_med / dis_med;
    println!(
        "reference step:          {ref_med:>12.0} ns\n\
         telemetry disabled step: {dis_med:>12.0} ns   (best vs reference {step_ratio:.3}x)\n\
         telemetry enabled  step: {en_med:>12.0} ns   (vs disabled {telemetry_ratio:.3}x)"
    );

    if telemetry_ratio > 1.25 {
        eprintln!(
            "FAIL: enabled-telemetry step costs {:.0}% over disabled (limit 25%)",
            (telemetry_ratio - 1.0) * 100.0
        );
        std::process::exit(1);
    }

    let recorded = std::fs::read_to_string(&path)
        .ok()
        .as_deref()
        .and_then(baseline_ratio);
    let Some(recorded) = recorded else {
        println!("no full_sim_step baseline in {path}; skipping regression gate");
        return;
    };
    // Floor the limit at 1 + tol: under heavy load the fast/slow gap
    // compresses toward 1.0, but the zero-copy step genuinely exceeding
    // the clone-based reference is a regression under any load.
    let limit = (recorded * (1.0 + tol)).max(1.0 + tol);
    println!(
        "recorded step/reference: {recorded:>12.3}x   (limit {limit:.3}x at {:.0}% tolerance)",
        tol * 100.0
    );
    if step_ratio > limit {
        eprintln!(
            "FAIL: step/reference ratio {step_ratio:.3}x exceeds recorded {recorded:.3}x \
             by more than {:.0}%",
            tol * 100.0
        );
        std::process::exit(1);
    }
    println!("OK: disabled-telemetry step within tolerance");
}
