//! Scenario sweep driver: runs a K × T_c × seed grid twice — once as
//! serial cold runs (fresh input construction per scenario, one thread)
//! and once through the sharded, input-cached sweep engine — verifies
//! the two produce bitwise-identical per-scenario results, and writes
//! the measured speedup plus the full [`middle_core::SweepReport`] to
//! `BENCH_sweep.json`.
//!
//! ```text
//! cargo run -p middle-bench --release --bin sweep [--smoke] [--workers N] [out.json]
//! ```
//!
//! `--smoke` shrinks the grid to 4 scenarios for the CI gate; steps
//! scale with `MIDDLE_SCALE` like every other bench bin. `--workers N`
//! adds a third pass through the multi-process fleet layer (`N` worker
//! threads over the shared ledger + coordinator merge) and asserts the
//! merged report is bitwise-identical to the single-process sweep.

use middle_bench::scaled_steps;
use middle_core::{
    run_fleet_coordinator, run_fleet_worker, run_sweep, Algorithm, FleetOptions, RunRecord,
    ScenarioGrid, SimConfig, SimulationBuilder, StepMode, SweepOptions,
};
use middle_data::Task;
use std::time::Instant;

/// Many devices with small local datasets: input construction (base
/// synthesis + partition + per-device gathers) is a large share of each
/// run, which is exactly the population shape sweeps are for — the
/// cache pays it once per (seed, population) key instead of once per
/// scenario.
fn base_config() -> SimConfig {
    let mut cfg = SimConfig::tiny(Task::Speech, Algorithm::middle());
    cfg.num_edges = 3;
    cfg.num_devices = 120;
    cfg.samples_per_device = 100;
    cfg.test_samples = 100;
    cfg.local_steps = 1;
    cfg.batch_size = 4;
    cfg.steps = scaled_steps(6);
    cfg.eval_interval = 3;
    cfg
}

/// A run record with its wall-clock-dependent fields zeroed, serialised
/// — the per-scenario comparison form (matches what
/// [`SweepReport::deterministic_json`] strips).
///
/// [`SweepReport::deterministic_json`]: middle_core::SweepReport::deterministic_json
fn deterministic_record_json(record: &RunRecord) -> String {
    let mut r = record.clone();
    r.wall_seconds = 0.0;
    r.telemetry = None;
    serde_json::to_string(&r).expect("record serialises")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut workers = 0usize;
    let mut out_path = String::from("BENCH_sweep.json");
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--workers" => {
                workers = it
                    .next()
                    .expect("--workers takes a count")
                    .parse()
                    .expect("--workers takes a count");
            }
            flag if flag.starts_with("--") => panic!("unknown flag {flag}"),
            path => out_path = path.to_string(),
        }
    }

    let seeds: Vec<u64> = if smoke { vec![7] } else { vec![7, 8] };
    let grid = ScenarioGrid::new(base_config())
        .with_selection_sizes([2usize, 3])
        .with_sync_periods([2usize, 4])
        .with_seeds(seeds);
    let scenarios = grid.scenarios().expect("valid grid");
    eprintln!(
        "[sweep] {} scenarios (K x T_c x seed), steps = {}",
        scenarios.len(),
        grid.base().steps
    );

    // Pass 1: serial cold runs — one thread, no input sharing. This is
    // what the repo did before the sweep engine: every scenario pays
    // dataset + partition + trace construction from scratch.
    let t0 = Instant::now();
    let mut serial: Vec<(String, RunRecord)> = Vec::new();
    for s in &scenarios {
        let record = SimulationBuilder::new(s.config.clone())
            .build()
            .expect("valid scenario config")
            .run();
        serial.push((s.label.clone(), record));
    }
    let serial_wall_s = t0.elapsed().as_secs_f64();

    // Pass 2: the sweep engine — sharded across threads, immutable
    // inputs shared through the cache.
    let t1 = Instant::now();
    let report = run_sweep(
        &grid,
        &SweepOptions {
            threads: 0,
            step_mode: StepMode::Fast,
            ..Default::default()
        },
    )
    .expect("sweep runs");
    let sweep_wall_s = t1.elapsed().as_secs_f64();

    // Per-scenario determinism: the sharded, cache-backed run must be
    // bitwise identical to the serial cold run of the same config.
    assert_eq!(report.scenarios.len(), serial.len());
    for (sr, (label, cold)) in report.scenarios.iter().zip(&serial) {
        assert_eq!(&sr.label, label);
        assert_eq!(
            deterministic_record_json(&sr.record),
            deterministic_record_json(cold),
            "scenario {label} diverged between serial and sweep execution"
        );
    }
    eprintln!("[sweep] sharded results bitwise-match serial cold runs");

    // Pass 3 (opt-in): the fleet layer — N worker threads claiming
    // shard leases from a shared ledger, coordinator merging their
    // JSONL streams. Same bitwise contract as the CI fleet-smoke job,
    // minus the SIGKILL.
    let fleet_wall_s = if workers > 0 {
        let dir = std::env::temp_dir().join(format!("middle_bench_fleet_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let fopts = FleetOptions {
            step_mode: StepMode::Fast,
            lease_ms: 600_000,
            heartbeat_ms: 1_000,
            poll_ms: 5,
            checkpoint_every: 0,
            ..FleetOptions::default()
        };
        let t2 = Instant::now();
        let handles: Vec<_> = (0..workers)
            .map(|i| {
                let grid = grid.clone();
                let dir = dir.clone();
                let fopts = fopts.clone();
                std::thread::spawn(move || {
                    run_fleet_worker(&grid, &dir, &format!("w{i}"), &fopts)
                        .expect("fleet worker runs")
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("fleet worker thread");
        }
        let fleet = run_fleet_coordinator(&grid, &dir, &fopts).expect("coordinator merges");
        let wall = t2.elapsed().as_secs_f64();
        assert_eq!(
            fleet.deterministic_json(),
            report.deterministic_json(),
            "fleet run diverged from the single-process sweep"
        );
        eprintln!(
            "[sweep] {workers}-worker fleet bitwise-matches the single-process \
             sweep ({wall:.2}s)"
        );
        let _ = std::fs::remove_dir_all(&dir);
        wall
    } else {
        0.0
    };

    let speedup = serial_wall_s / sweep_wall_s;
    println!("{:<22} {:>7} {:>9} {:>9}", "cell", "seeds", "final", "ci95");
    for a in &report.aggregates {
        println!(
            "{:<22} {:>7} {:>9.3} {:>9.3}",
            a.label, a.seeds, a.final_mean, a.final_ci95
        );
    }
    println!(
        "\nserial cold {serial_wall_s:.2}s, sweep {sweep_wall_s:.2}s \
         ({} threads, cache {} hits / {} misses) -> speedup {speedup:.2}x",
        report.threads, report.cache_hits, report.cache_misses
    );

    let json = format!(
        "{{\n  \"smoke\": {smoke},\n  \"scenarios\": {},\n  \
         \"serial_cold_wall_s\": {serial_wall_s:.3},\n  \
         \"sweep_wall_s\": {sweep_wall_s:.3},\n  \"speedup\": {speedup:.3},\n  \
         \"fleet_workers\": {workers},\n  \"fleet_wall_s\": {fleet_wall_s:.3},\n  \
         \"report\": {}\n}}\n",
        report.scenarios.len(),
        report.to_json()
    );
    std::fs::write(&out_path, &json).expect("write BENCH_sweep.json");
    println!("wrote {out_path}");
}
