//! Figure 3: parameter-space illustration of on-device model aggregation.
//!
//! Two devices train within one edge on a 2-D quadratic; device 1 has
//! just arrived carrying a model pulled toward the *other* edge's
//! optimum. Under "General" it discards that model; under on-device
//! aggregation it blends, shifting its local-training start point and
//! therefore the aggregated edge model — which lands closer to the
//! global optimum, exactly the geometry of the paper's Figure 3.
//!
//! ```sh
//! cargo run -p middle-bench --release --bin fig3_param_space
//! ```

use middle_bench::write_csv;
use middle_core::theory::QuadraticProblem;

/// One local-SGD trajectory from `start` on device `m`'s quadratic.
fn descend(
    q: &QuadraticProblem,
    m: usize,
    start: [f32; 2],
    steps: usize,
    eta: f32,
) -> Vec<[f32; 2]> {
    let mut w = start.to_vec();
    let mut grad = vec![0.0f32; 2];
    let mut path = vec![start];
    for _ in 0..steps {
        q.device_grad(m, &w, &mut grad);
        for (x, g) in w.iter_mut().zip(&grad) {
            *x -= eta * g;
        }
        path.push([w[0], w[1]]);
    }
    path
}

fn main() {
    // Devices 0 and 1 belong to the current edge (optima near (2, 0) and
    // (2, 1)); the previous edge's data pulled device 1's carried model
    // toward (-2, 2).
    let q = QuadraticProblem::new(
        vec![1.0, 1.0, 1.0],
        vec![vec![2.0, 0.0], vec![2.0, 1.0], vec![-2.0, 2.0]],
        vec![1.0, 1.0, 1.0],
    );
    let edge_model = [0.0f32, 0.0];
    let carried = [-1.5f32, 1.5]; // device 1's model, trained at the other edge
    let alpha = 0.5;
    let blended = [
        alpha * edge_model[0] + (1.0 - alpha) * carried[0],
        alpha * edge_model[1] + (1.0 - alpha) * carried[1],
    ];

    let steps = 12;
    let eta = 0.15;
    // Device 2 of the problem set stands for "the rest of the edge":
    // device 0 trains from the edge model in both settings.
    let dev0 = descend(&q, 0, edge_model, steps, eta);
    let dev1_general = descend(&q, 1, edge_model, steps, eta);
    let dev1_ondevice = descend(&q, 1, blended, steps, eta);

    let avg = |a: &[f32; 2], b: &[f32; 2]| [(a[0] + b[0]) / 2.0, (a[1] + b[1]) / 2.0];
    let edge_general = avg(dev0.last().unwrap(), dev1_general.last().unwrap());
    let edge_ondevice = avg(dev0.last().unwrap(), dev1_ondevice.last().unwrap());

    // Edge optimum = mean of devices 0, 1; global optimum includes the
    // other edge's data (device 2).
    let edge_opt = QuadraticProblem::new(
        q.curvatures[..2].to_vec(),
        q.centers[..2].to_vec(),
        vec![1.0, 1.0],
    )
    .optimum();
    let global_opt = q.optimum();

    let dist = |a: &[f32; 2], b: &[f32]| ((a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2)).sqrt();

    println!("=== Figure 3 — edge-model parameter space ===\n");
    println!(
        "edge model w^t          : ({:.2}, {:.2})",
        edge_model[0], edge_model[1]
    );
    println!(
        "device 1 carried model  : ({:.2}, {:.2})",
        carried[0], carried[1]
    );
    println!(
        "device 1 blended start  : ({:.2}, {:.2})",
        blended[0], blended[1]
    );
    println!(
        "edge optimum            : ({:.2}, {:.2})",
        edge_opt[0], edge_opt[1]
    );
    println!(
        "global optimum          : ({:.2}, {:.2})\n",
        global_opt[0], global_opt[1]
    );
    println!(
        "aggregated edge model, General  : ({:.2}, {:.2})  d(edge opt) {:.2}  d(global opt) {:.2}",
        edge_general[0],
        edge_general[1],
        dist(&edge_general, &edge_opt),
        dist(&edge_general, &global_opt)
    );
    println!(
        "aggregated edge model, OnDevice : ({:.2}, {:.2})  d(edge opt) {:.2}  d(global opt) {:.2}",
        edge_ondevice[0],
        edge_ondevice[1],
        dist(&edge_ondevice, &edge_opt),
        dist(&edge_ondevice, &global_opt)
    );

    let mut csv = String::from(
        "step,dev0_x,dev0_y,dev1_general_x,dev1_general_y,dev1_ondevice_x,dev1_ondevice_y\n",
    );
    for t in 0..=steps {
        csv.push_str(&format!(
            "{t},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4}\n",
            dev0[t][0],
            dev0[t][1],
            dev1_general[t][0],
            dev1_general[t][1],
            dev1_ondevice[t][0],
            dev1_ondevice[t][1]
        ));
    }
    write_csv("fig3_param_space", &csv);

    println!("\npaper shape check: the General edge model sits nearer the EDGE optimum;");
    println!("the on-device-aggregated edge model deviates from it but lands CLOSER to");
    println!("the GLOBAL optimum — mobility transported the other edge's information.");
    assert!(
        dist(&edge_ondevice, &global_opt) < dist(&edge_general, &global_opt),
        "on-device aggregation should approach the global optimum"
    );
}
