//! Microbenchmarks of the numeric kernels everything else sits on.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use middle_nn::loss::softmax_cross_entropy;
use middle_tensor::conv::{conv2d_forward, ConvGeometry};
use middle_tensor::matmul::matmul;
use middle_tensor::ops::{cosine_similarity_slices, weighted_mean};
use middle_tensor::random::{rng, uniform};
use middle_tensor::Tensor;

fn bench_matmul(c: &mut Criterion) {
    let mut r = rng(1);
    let a = uniform([64, 64], -1.0, 1.0, &mut r);
    let b = uniform([64, 64], -1.0, 1.0, &mut r);
    c.bench_function("matmul_64x64x64", |bch| {
        bch.iter(|| matmul(black_box(&a), black_box(&b)))
    });
    let a2 = uniform([128, 256], -1.0, 1.0, &mut r);
    let b2 = uniform([256, 64], -1.0, 1.0, &mut r);
    c.bench_function("matmul_128x256x64", |bch| {
        bch.iter(|| matmul(black_box(&a2), black_box(&b2)))
    });
}

fn bench_conv(c: &mut Criterion) {
    let g = ConvGeometry {
        in_c: 1,
        out_c: 8,
        kernel: 3,
        stride: 1,
        pad: 1,
        in_h: 16,
        in_w: 16,
    };
    let mut r = rng(2);
    let x = uniform([8, 1, 16, 16], -1.0, 1.0, &mut r);
    let w = uniform([8, 9], -1.0, 1.0, &mut r);
    let b = Tensor::zeros([8]);
    c.bench_function("conv2d_fwd_b8_16x16_c1to8", |bch| {
        bch.iter(|| conv2d_forward(black_box(&x), &w, &b, &g))
    });
}

fn bench_cosine(c: &mut Criterion) {
    let mut r = rng(3);
    let a = uniform([20_000], -1.0, 1.0, &mut r).into_vec();
    let b = uniform([20_000], -1.0, 1.0, &mut r).into_vec();
    c.bench_function("cosine_similarity_20k", |bch| {
        bch.iter(|| cosine_similarity_slices(black_box(&a), black_box(&b)))
    });
}

fn bench_weighted_mean(c: &mut Criterion) {
    let mut r = rng(4);
    let tensors: Vec<Tensor> = (0..5)
        .map(|_| uniform([20_000], -1.0, 1.0, &mut r))
        .collect();
    let refs: Vec<&Tensor> = tensors.iter().collect();
    let weights = [1.0f32, 2.0, 3.0, 4.0, 5.0];
    c.bench_function("weighted_mean_5x20k", |bch| {
        bch.iter(|| weighted_mean(black_box(&refs), black_box(&weights)))
    });
}

fn bench_loss(c: &mut Criterion) {
    let mut r = rng(5);
    let logits = uniform([32, 10], -2.0, 2.0, &mut r);
    let labels: Vec<usize> = (0..32).map(|i| i % 10).collect();
    c.bench_function("softmax_xent_b32_c10", |bch| {
        bch.iter(|| softmax_cross_entropy(black_box(&logits), black_box(&labels)))
    });
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_matmul, bench_conv, bench_cosine, bench_weighted_mean, bench_loss
}
criterion_main!(kernels);
