//! Ablation benchmarks for the design choices DESIGN.md §5 calls out:
//! the cost of each on-device blend variant and each selection
//! criterion inside a full simulation step, plus the quadratic
//! theory-sim with and without the Theorem 1 learning-rate schedule.
//! (Accuracy ablations live in the `ablation_report` binary; Criterion
//! measures the runtime side.)

use criterion::{criterion_group, criterion_main, Criterion};
use middle_core::quadratic_sim::{simulate_quadratic_hfl, two_cluster_problem, QuadraticHflConfig};
use middle_core::{
    Algorithm, OnDevicePolicy, SelectionPolicy, SimConfig, Simulation, SimulationBuilder,
};
use middle_data::Task;

fn built(cfg: SimConfig) -> Simulation {
    SimulationBuilder::new(cfg).build().expect("valid config")
}

fn cfg_with(selection: SelectionPolicy, on_device: OnDevicePolicy) -> SimConfig {
    let mut cfg = SimConfig::paper_default(
        Task::Mnist,
        Algorithm::custom("ablation", selection, on_device),
    );
    cfg.num_edges = 3;
    cfg.num_devices = 12;
    cfg.devices_per_edge = 2;
    cfg.samples_per_device = 16;
    cfg.local_steps = 3;
    cfg.batch_size = 8;
    cfg.steps = 4;
    cfg.test_samples = 60;
    cfg.eval_interval = 4;
    cfg
}

fn bench_alpha_variants(c: &mut Criterion) {
    for (name, od) in [
        (
            "ablate_alpha_sim_weighted",
            OnDevicePolicy::SimilarityWeighted,
        ),
        (
            "ablate_alpha_fixed_05",
            OnDevicePolicy::FixedAlpha { alpha: 0.5 },
        ),
        (
            "ablate_alpha_unclipped",
            OnDevicePolicy::UnclippedSimilarity,
        ),
    ] {
        c.bench_function(name, |bch| {
            bch.iter_batched(
                || built(cfg_with(SelectionPolicy::LeastSimilarUpdate, od)),
                |mut sim| sim.run(),
                criterion::BatchSize::LargeInput,
            )
        });
    }
}

fn bench_selection_variants(c: &mut Criterion) {
    for (name, sel) in [
        (
            "ablate_sel_least_similar",
            SelectionPolicy::LeastSimilarUpdate,
        ),
        (
            "ablate_sel_most_similar",
            SelectionPolicy::MostSimilarUpdate,
        ),
        ("ablate_sel_random", SelectionPolicy::Random),
    ] {
        c.bench_function(name, |bch| {
            bch.iter_batched(
                || built(cfg_with(sel, OnDevicePolicy::SimilarityWeighted)),
                |mut sim| sim.run(),
                criterion::BatchSize::LargeInput,
            )
        });
    }
}

fn bench_quadratic_theory(c: &mut Criterion) {
    let problem = two_cluster_problem(10, 2, 2.0);
    for (name, theorem_lr) in [
        ("quadratic_theorem_lr", true),
        ("quadratic_fixed_lr", false),
    ] {
        c.bench_function(name, |bch| {
            bch.iter(|| {
                let cfg = QuadraticHflConfig {
                    steps: 100,
                    theorem_lr,
                    ..Default::default()
                };
                simulate_quadratic_hfl(&problem, &cfg)
            })
        });
    }
}

criterion_group! {
    name = ablations;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(4)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_alpha_variants, bench_selection_variants, bench_quadratic_theory
}
criterion_main!(ablations);
