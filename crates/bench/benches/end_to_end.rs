//! End-to-end benchmarks: one full simulation time step and a short
//! complete run per algorithm — the costs behind Figures 6–8.

use criterion::{criterion_group, criterion_main, Criterion};
use middle_core::{Algorithm, SimConfig, Simulation, SimulationBuilder, StepMode};
use middle_data::Task;

fn built(cfg: SimConfig) -> Simulation {
    SimulationBuilder::new(cfg).build().expect("valid config")
}

fn small_config(algorithm: Algorithm) -> SimConfig {
    let mut cfg = SimConfig::paper_default(Task::Mnist, algorithm);
    cfg.num_edges = 3;
    cfg.num_devices = 12;
    cfg.devices_per_edge = 2;
    cfg.samples_per_device = 16;
    cfg.local_steps = 3;
    cfg.batch_size = 8;
    cfg.steps = 6;
    cfg.test_samples = 60;
    cfg.eval_interval = 6;
    cfg
}

fn bench_single_step(c: &mut Criterion) {
    c.bench_function("sim_single_step_middle", |bch| {
        bch.iter_batched(
            || built(small_config(Algorithm::middle())),
            |mut sim| sim.step(0),
            criterion::BatchSize::LargeInput,
        )
    });
    // Before/after pair: the clone-based reference step against the
    // zero-copy step, on identical warmed-up simulations (step 1, after
    // one step has populated edge/device state).
    c.bench_function("sim_step_reference_middle", |bch| {
        bch.iter_batched(
            || {
                let mut sim = built(small_config(Algorithm::middle()));
                sim.step(0);
                sim
            },
            |mut sim| sim.advance(1, StepMode::Reference),
            criterion::BatchSize::LargeInput,
        )
    });
    c.bench_function("sim_step_zero_copy_middle", |bch| {
        bch.iter_batched(
            || {
                let mut sim = built(small_config(Algorithm::middle()));
                sim.step(0);
                sim
            },
            |mut sim| sim.step(1),
            criterion::BatchSize::LargeInput,
        )
    });
}

fn bench_short_runs(c: &mut Criterion) {
    for algorithm in [
        Algorithm::middle(),
        Algorithm::oort(),
        Algorithm::hierfavg(),
    ] {
        let name = format!("sim_run6_{}", algorithm.name.to_ascii_lowercase());
        c.bench_function(&name, |bch| {
            bch.iter_batched(
                || built(small_config(algorithm.clone())),
                |mut sim| sim.run(),
                criterion::BatchSize::LargeInput,
            )
        });
    }
}

fn bench_construction(c: &mut Criterion) {
    c.bench_function("sim_construction", |bch| {
        bch.iter(|| built(small_config(Algorithm::middle())))
    });
}

criterion_group! {
    name = end_to_end;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(4)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_construction, bench_single_step, bench_short_runs
}
criterion_main!(end_to_end);
