//! Mesobenchmarks of the federated-learning components: similarity
//! utility on real models, on-device aggregation, device selection,
//! mobility-trace generation and Non-IID partitioning.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use middle_core::aggregation::{edge_aggregate, edge_aggregate_into, on_device_init};
use middle_core::selection::{select_devices, select_devices_reference};
use middle_core::{model_similarity_utility, OnDevicePolicy, SelectionPolicy};
use middle_data::partition::{partition, Scheme};
use middle_data::synthetic::{SyntheticSource, Task};
use middle_mobility::generate_markov_hop;
use middle_nn::params::flatten;
use middle_nn::zoo;
use middle_tensor::random::rng;

/// Builds `n` logistic-model devices with distinct parameters.
fn mk_devices(n: usize) -> Vec<middle_core::Device> {
    let src = SyntheticSource::new(Task::Mnist, 5);
    let spec = Task::Mnist.spec();
    (0..n)
        .map(|id| {
            middle_core::Device::new(
                id,
                src.generate_balanced(10, id as u64),
                zoo::logistic(&spec, &mut rng(id as u64)),
                900 + id as u64,
            )
        })
        .collect()
}

fn bench_similarity(c: &mut Criterion) {
    let spec = Task::Mnist.spec();
    let a = zoo::cnn2(&spec, &mut rng(1));
    let b = zoo::cnn2(&spec, &mut rng(2));
    c.bench_function("model_similarity_cnn2", |bch| {
        bch.iter(|| model_similarity_utility(black_box(&a), black_box(&b)))
    });
}

fn bench_on_device(c: &mut Criterion) {
    let spec = Task::Mnist.spec();
    let edge = zoo::cnn2(&spec, &mut rng(3));
    let local = zoo::cnn2(&spec, &mut rng(4));
    for (name, policy) in [
        (
            "ondevice_similarity_weighted",
            OnDevicePolicy::SimilarityWeighted,
        ),
        ("ondevice_average", OnDevicePolicy::Average),
        ("ondevice_edge_model", OnDevicePolicy::EdgeModel),
    ] {
        c.bench_function(name, |bch| {
            bch.iter(|| on_device_init(black_box(policy), &edge, &local))
        });
    }
}

fn bench_selection(c: &mut Criterion) {
    let devices = mk_devices(20);
    let cloud = flatten(&devices[0].model);
    let candidates: Vec<usize> = (0..20).collect();
    for (name, policy) in [
        (
            "select_least_similar_k5_of20",
            SelectionPolicy::LeastSimilarUpdate,
        ),
        ("select_oort_k5_of20", SelectionPolicy::OortUtility),
        ("select_random_k5_of20", SelectionPolicy::Random),
    ] {
        c.bench_function(name, |bch| {
            let mut r = rng(7);
            bch.iter(|| select_devices(black_box(policy), 5, &candidates, &devices, &cloud, &mut r))
        });
    }
}

/// Before/after comparison of selection scoring: the reference
/// (per-candidate flatten + Δw materialisation + full sort) against the
/// fused cached-flat-view kernel, at 100 and 1000 candidates.
fn bench_selection_scaling(c: &mut Criterion) {
    for n in [100usize, 1000] {
        let devices = mk_devices(n);
        let cloud = flatten(&devices[0].model);
        let candidates: Vec<usize> = (0..n).collect();
        c.bench_function(&format!("select_scoring_reference_{n}"), |bch| {
            let mut r = rng(7);
            bch.iter(|| {
                select_devices_reference(
                    black_box(SelectionPolicy::LeastSimilarUpdate),
                    5,
                    &candidates,
                    &devices,
                    &cloud,
                    &mut r,
                )
            })
        });
        c.bench_function(&format!("select_scoring_fused_{n}"), |bch| {
            let mut r = rng(7);
            bch.iter(|| {
                select_devices(
                    black_box(SelectionPolicy::LeastSimilarUpdate),
                    5,
                    &candidates,
                    &devices,
                    &cloud,
                    &mut r,
                )
            })
        });
    }
}

/// Before/after comparison of edge aggregation at 10 and 100 uploaded
/// models: allocating `weighted_average` against the in-place axpy form.
fn bench_edge_aggregation(c: &mut Criterion) {
    let spec = Task::Mnist.spec();
    for n in [10usize, 100] {
        let models: Vec<_> = (0..n)
            .map(|i| zoo::logistic(&spec, &mut rng(i as u64)))
            .collect();
        let refs: Vec<&middle_nn::Sequential> = models.iter().collect();
        let counts: Vec<usize> = (0..n).map(|i| 10 + i % 7).collect();
        c.bench_function(&format!("edge_aggregate_reference_{n}"), |bch| {
            bch.iter(|| edge_aggregate(black_box(&refs), &counts))
        });
        let mut dst = zoo::logistic(&spec, &mut rng(999));
        c.bench_function(&format!("edge_aggregate_into_{n}"), |bch| {
            bch.iter(|| {
                edge_aggregate_into(
                    black_box(&mut dst),
                    refs.iter().copied().zip(counts.iter().copied()),
                )
            })
        });
    }
}

fn bench_trace(c: &mut Criterion) {
    c.bench_function("markov_trace_10e_100d_100t", |bch| {
        bch.iter(|| generate_markov_hop(10, 100, 100, 0.5, black_box(42)))
    });
}

fn bench_partition(c: &mut Criterion) {
    let base = SyntheticSource::new(Task::Mnist, 6).generate_balanced(1000, 1);
    c.bench_function("partition_major_100d_40s", |bch| {
        bch.iter(|| {
            partition(
                black_box(&base),
                100,
                40,
                Scheme::MajorClass { major_frac: 0.8 },
                9,
            )
        })
    });
}

criterion_group! {
    name = fl_components;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_similarity, bench_on_device, bench_selection, bench_selection_scaling, bench_edge_aggregation, bench_trace, bench_partition
}
criterion_main!(fl_components);
