//! Property-based tests for the mobility substrate.

use middle_mobility::{generate_geometric, generate_markov_hop, MobilityKind, ServiceArea, Trace};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn markov_trace_structure(
        edges in 1usize..12,
        devices in 1usize..40,
        steps in 1usize..60,
        p in 0.0f64..1.0,
        seed in 0u64..1000,
    ) {
        let t = generate_markov_hop(edges, devices, steps, p, seed);
        prop_assert_eq!(t.steps(), steps);
        prop_assert_eq!(t.devices(), devices);
        // Every assignment in range; occupancy always partitions devices.
        for step in 0..steps {
            let occ = t.occupancy(step);
            prop_assert_eq!(occ.iter().sum::<usize>(), devices);
        }
    }

    #[test]
    fn empirical_mobility_bounded(
        edges in 2usize..8,
        p in 0.0f64..1.0,
        seed in 0u64..500,
    ) {
        let t = generate_markov_hop(edges, 50, 100, p, seed);
        let e = t.empirical_mobility();
        prop_assert!((0.0..=1.0).contains(&e));
        // Mobility can't exceed requested rate by a wide margin.
        prop_assert!(e <= p + 0.15, "p={}, empirical={}", p, e);
    }

    #[test]
    fn one_report_roundtrip_any_trace(
        edges in 1usize..6,
        devices in 1usize..10,
        steps in 1usize..10,
        seed in 0u64..200,
    ) {
        let t = generate_markov_hop(edges, devices, steps, 0.5, seed);
        let parsed = Trace::from_one_report(&t.to_one_report(), edges).unwrap();
        prop_assert_eq!(t, parsed);
    }

    #[test]
    fn json_roundtrip_any_trace(seed in 0u64..200) {
        let t = generate_markov_hop(4, 7, 9, 0.4, seed);
        prop_assert_eq!(Trace::from_json(&t.to_json()).unwrap(), t);
    }

    #[test]
    fn geometric_positions_yield_valid_assignments(
        n_edges in 1usize..9,
        devices in 1usize..25,
        speed in 1.0f64..300.0,
        seed in 0u64..300,
    ) {
        let area = ServiceArea::grid(1000.0, 800.0, n_edges);
        let mut model = MobilityKind::RandomWalk { max_speed: speed }.build();
        let t = generate_geometric(&area, model.as_mut(), devices, 20, seed);
        prop_assert_eq!(t.num_edges(), n_edges);
        for step in 0..t.steps() {
            prop_assert!(t.at(step).iter().all(|&e| e < n_edges));
        }
    }

    #[test]
    fn moved_is_consistent_with_assignments(seed in 0u64..300) {
        let t = generate_markov_hop(5, 10, 30, 0.5, seed);
        for step in 1..t.steps() {
            for m in 0..t.devices() {
                prop_assert_eq!(
                    t.moved(step, m),
                    t.edge_of(step, m) != t.edge_of(step - 1, m)
                );
            }
        }
    }
}
