//! Mobility traces: the per-time-step device→edge assignment consumed by
//! the federated simulation.
//!
//! The paper is "orthogonal to the classic mobility models … we do not
//! need a whole mobile trajectory" (§3.2): only edge membership per step
//! matters, plus the global mobility probability `P` (the expected
//! per-step fraction of devices that switch edges). A [`Trace`] can be
//! generated three ways:
//!
//! * geometrically, by running a [`crate::models::MobilityModel`] over a
//!   [`crate::geometry::ServiceArea`] and attaching each device to its
//!   nearest edge;
//! * directly, by a Markov edge-hop process whose per-device move
//!   probability averages to the requested `P` (the controlled knob of
//!   the paper's Figure 7); or
//! * by importing a previously exported trace.

use crate::geometry::ServiceArea;
use crate::models::MobilityModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A complete mobility trace: `assignments[t][m]` is the edge of device
/// `m` during time step `t`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    num_edges: usize,
    assignments: Vec<Vec<usize>>,
}

impl Trace {
    /// Wraps raw assignments.
    ///
    /// # Panics
    /// Panics when steps have differing device counts or any edge index
    /// is out of range.
    pub fn new(num_edges: usize, assignments: Vec<Vec<usize>>) -> Self {
        assert!(num_edges > 0, "need at least one edge");
        assert!(!assignments.is_empty(), "trace needs at least one step");
        let devices = assignments[0].len();
        for (t, step) in assignments.iter().enumerate() {
            assert_eq!(step.len(), devices, "step {t} device count mismatch");
            assert!(
                step.iter().all(|&e| e < num_edges),
                "step {t} has an out-of-range edge index"
            );
        }
        Trace {
            num_edges,
            assignments,
        }
    }

    /// Number of time steps.
    pub fn steps(&self) -> usize {
        self.assignments.len()
    }

    /// Number of devices.
    pub fn devices(&self) -> usize {
        self.assignments[0].len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Edge of device `m` at step `t`.
    pub fn edge_of(&self, t: usize, m: usize) -> usize {
        self.assignments[t][m]
    }

    /// All device→edge assignments at step `t`.
    pub fn at(&self, t: usize) -> &[usize] {
        &self.assignments[t]
    }

    /// Devices attached to `edge` at step `t` (the candidate set `M_n^t`).
    pub fn devices_at(&self, t: usize, edge: usize) -> Vec<usize> {
        let mut out = Vec::new();
        self.devices_at_into(t, edge, &mut out);
        out
    }

    /// Allocation-free form of [`Trace::devices_at`]: clears `out` and
    /// fills it with the candidate set in ascending device order.
    pub fn devices_at_into(&self, t: usize, edge: usize, out: &mut Vec<usize>) {
        out.clear();
        out.extend(
            self.assignments[t]
                .iter()
                .enumerate()
                .filter(|(_, &e)| e == edge)
                .map(|(m, _)| m),
        );
    }

    /// True when device `m` entered its step-`t` edge from a different
    /// edge (the `m ∉ M_n^{t−1}` test of Algorithm 1, line 4). Step 0
    /// counts as not-moved.
    pub fn moved(&self, t: usize, m: usize) -> bool {
        t > 0 && self.assignments[t][m] != self.assignments[t - 1][m]
    }

    /// Empirical global mobility: the fraction of device-steps (from step
    /// 1 on) where the device changed edge — the measured counterpart of
    /// the paper's `P`.
    pub fn empirical_mobility(&self) -> f64 {
        if self.steps() < 2 {
            return 0.0;
        }
        let mut moved = 0usize;
        let mut total = 0usize;
        for t in 1..self.steps() {
            for m in 0..self.devices() {
                total += 1;
                moved += usize::from(self.moved(t, m));
            }
        }
        moved as f64 / total as f64
    }

    /// Per-step edge occupancy histogram at step `t`.
    pub fn occupancy(&self, t: usize) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_edges];
        for &e in &self.assignments[t] {
            counts[e] += 1;
        }
        counts
    }

    /// Serialises the trace to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("trace serialisation cannot fail")
    }

    /// Parses a JSON trace.
    ///
    /// # Errors
    /// Returns the parse or validation error message.
    pub fn from_json(s: &str) -> Result<Self, String> {
        let t: Trace = serde_json::from_str(s).map_err(|e| e.to_string())?;
        if t.assignments.is_empty() {
            return Err("trace needs at least one step".into());
        }
        let devices = t.assignments[0].len();
        for step in &t.assignments {
            if step.len() != devices {
                return Err("step device count mismatch".into());
            }
            if step.iter().any(|&e| e >= t.num_edges) {
                return Err("edge index out of range".into());
            }
        }
        Ok(t)
    }

    /// Exports in a ONE-simulator-style report format: one
    /// `time device edge` line per (step, device).
    pub fn to_one_report(&self) -> String {
        let mut out = String::with_capacity(self.steps() * self.devices() * 8);
        for (t, step) in self.assignments.iter().enumerate() {
            for (m, &e) in step.iter().enumerate() {
                out.push_str(&format!("{t} {m} {e}\n"));
            }
        }
        out
    }

    /// Parses the `time device edge` report format.
    ///
    /// # Errors
    /// Returns a message describing the malformed line or inconsistent
    /// structure.
    pub fn from_one_report(s: &str, num_edges: usize) -> Result<Self, String> {
        let mut rows: Vec<(usize, usize, usize)> = Vec::new();
        for (lineno, line) in s.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut it = line.split_whitespace();
            let parse = |tok: Option<&str>| -> Result<usize, String> {
                tok.ok_or_else(|| format!("line {}: missing field", lineno + 1))?
                    .parse::<usize>()
                    .map_err(|e| format!("line {}: {e}", lineno + 1))
            };
            rows.push((parse(it.next())?, parse(it.next())?, parse(it.next())?));
        }
        if rows.is_empty() {
            return Err("empty report".into());
        }
        let steps = rows.iter().map(|r| r.0).max().unwrap() + 1;
        let devices = rows.iter().map(|r| r.1).max().unwrap() + 1;
        let mut assignments = vec![vec![usize::MAX; devices]; steps];
        for (t, m, e) in rows {
            if e >= num_edges {
                return Err(format!("edge {e} out of range"));
            }
            assignments[t][m] = e;
        }
        if assignments.iter().any(|step| step.contains(&usize::MAX)) {
            return Err("report has gaps (missing device-step rows)".into());
        }
        Ok(Trace::new(num_edges, assignments))
    }
}

/// Runs a geometric mobility model and converts positions to a trace via
/// nearest-edge attachment.
pub fn generate_geometric(
    area: &ServiceArea,
    model: &mut dyn MobilityModel,
    devices: usize,
    steps: usize,
    seed: u64,
) -> Trace {
    assert!(steps > 0, "need at least one step");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut positions = model.init(area, devices, &mut rng);
    let mut assignments = Vec::with_capacity(steps);
    assignments.push(
        positions
            .iter()
            .map(|p| area.nearest_edge(p))
            .collect::<Vec<_>>(),
    );
    for _ in 1..steps {
        model.step(area, &mut positions, &mut rng);
        assignments.push(positions.iter().map(|p| area.nearest_edge(p)).collect());
    }
    Trace::new(area.num_edges(), assignments)
}

/// Markov edge-hop trace with controlled global mobility.
///
/// Each device `m` has probability `p_m` of switching, at every step, to
/// a uniformly-random *other* edge; `p_m` is spread around `p_global`
/// (±50%, clamped to `[0, 1]`) so devices are heterogeneous while the
/// expectation matches the paper's global mobility `P` (§3.2).
pub fn generate_markov_hop(
    num_edges: usize,
    devices: usize,
    steps: usize,
    p_global: f64,
    seed: u64,
) -> Trace {
    assert!(num_edges > 0, "need at least one edge");
    assert!(steps > 0, "need at least one step");
    assert!((0.0..=1.0).contains(&p_global), "P must be in [0, 1]");
    let mut rng = StdRng::seed_from_u64(seed);

    // Heterogeneous per-device probabilities with mean p_global: draw
    // U(0.5, 1.5)·P and renormalise the sample mean back to P.
    let mut p: Vec<f64> = (0..devices)
        .map(|_| (rng.gen_range(0.5..1.5) * p_global).clamp(0.0, 1.0))
        .collect();
    if p_global > 0.0 && devices > 0 {
        let mean: f64 = p.iter().sum::<f64>() / devices as f64;
        if mean > 0.0 {
            let k = p_global / mean;
            for v in &mut p {
                *v = (*v * k).clamp(0.0, 1.0);
            }
        }
    }

    let mut current: Vec<usize> = (0..devices).map(|_| rng.gen_range(0..num_edges)).collect();
    let mut assignments = Vec::with_capacity(steps);
    assignments.push(current.clone());
    for _ in 1..steps {
        for (m, e) in current.iter_mut().enumerate() {
            if num_edges > 1 && rng.gen::<f64>() < p[m] {
                let mut next = rng.gen_range(0..num_edges - 1);
                if next >= *e {
                    next += 1;
                }
                *e = next;
            }
        }
        assignments.push(current.clone());
    }
    Trace::new(num_edges, assignments)
}

/// Home-biased Markov edge-hop trace: like [`generate_markov_hop`], but
/// each device has a *home* edge it starts at and preferentially returns
/// to — approximating the spatial locality of real (ONE-simulator-style)
/// movement, which keeps edge-level data distributions persistently
/// Non-IID while still realising the requested global mobility `P`.
///
/// When a device relocates (probability `p_m` per step, mean `p_global`)
/// and is currently away from home, it returns home with probability
/// `home_bias`, otherwise it picks a uniformly-random different edge.
/// The stationary at-home fraction is `home_bias / (1 + home_bias)`.
pub fn generate_markov_hop_homed(
    num_edges: usize,
    homes: &[usize],
    steps: usize,
    p_global: f64,
    home_bias: f64,
    seed: u64,
) -> Trace {
    assert!(num_edges > 0, "need at least one edge");
    assert!(steps > 0, "need at least one step");
    assert!((0.0..=1.0).contains(&p_global), "P must be in [0, 1]");
    assert!(
        (0.0..=1.0).contains(&home_bias),
        "home_bias must be in [0, 1]"
    );
    assert!(
        homes.iter().all(|&h| h < num_edges),
        "home edge out of range"
    );
    let devices = homes.len();
    let mut rng = StdRng::seed_from_u64(seed);

    let mut p: Vec<f64> = (0..devices)
        .map(|_| (rng.gen_range(0.5..1.5) * p_global).clamp(0.0, 1.0))
        .collect();
    if p_global > 0.0 && devices > 0 {
        let mean: f64 = p.iter().sum::<f64>() / devices as f64;
        if mean > 0.0 {
            let k = p_global / mean;
            for v in &mut p {
                *v = (*v * k).clamp(0.0, 1.0);
            }
        }
    }

    let mut current: Vec<usize> = homes.to_vec();
    let mut assignments = Vec::with_capacity(steps);
    assignments.push(current.clone());
    for _ in 1..steps {
        for (m, e) in current.iter_mut().enumerate() {
            if num_edges > 1 && rng.gen::<f64>() < p[m] {
                let home = homes[m];
                *e = if *e != home && rng.gen::<f64>() < home_bias {
                    home
                } else {
                    // Uniform over the other edges (never a self-loop, so
                    // every draw is a real move and E[moves] tracks P).
                    let mut next = rng.gen_range(0..num_edges - 1);
                    if next >= *e {
                        next += 1;
                    }
                    next
                };
            }
        }
        assignments.push(current.clone());
    }
    Trace::new(num_edges, assignments)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::MobilityKind;

    #[test]
    fn markov_hop_matches_requested_mobility() {
        for p in [0.1f64, 0.3, 0.5] {
            let t = generate_markov_hop(10, 100, 300, p, 42);
            let emp = t.empirical_mobility();
            assert!((emp - p).abs() < 0.05, "requested P={p}, got {emp}");
        }
    }

    #[test]
    fn markov_hop_zero_p_is_static() {
        let t = generate_markov_hop(5, 20, 50, 0.0, 1);
        assert_eq!(t.empirical_mobility(), 0.0);
    }

    #[test]
    fn single_edge_never_moves() {
        let t = generate_markov_hop(1, 10, 20, 0.9, 2);
        assert_eq!(t.empirical_mobility(), 0.0);
    }

    #[test]
    fn devices_at_partitions_all_devices() {
        let t = generate_markov_hop(4, 30, 10, 0.4, 3);
        for step in 0..t.steps() {
            let total: usize = (0..4).map(|e| t.devices_at(step, e).len()).sum();
            assert_eq!(total, 30);
        }
    }

    #[test]
    fn moved_detects_transitions() {
        let t = Trace::new(3, vec![vec![0, 1], vec![0, 2], vec![1, 2]]);
        assert!(!t.moved(0, 0));
        assert!(!t.moved(1, 0));
        assert!(t.moved(1, 1));
        assert!(t.moved(2, 0));
        assert!(!t.moved(2, 1));
        assert!((t.empirical_mobility() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn geometric_trace_covers_edges() {
        let area = ServiceArea::grid(1000.0, 1000.0, 4);
        let mut model = MobilityKind::RandomWaypoint {
            min_speed: 50.0,
            max_speed: 150.0,
        }
        .build();
        let t = generate_geometric(&area, model.as_mut(), 40, 50, 7);
        assert_eq!(t.devices(), 40);
        assert_eq!(t.steps(), 50);
        // Over 50 steps of brisk movement, every edge should host someone
        // at some point.
        let mut visited = [false; 4];
        for step in 0..t.steps() {
            for (e, v) in t.occupancy(step).iter().zip(visited.iter_mut()) {
                if *e > 0 {
                    *v = true;
                }
            }
        }
        assert!(visited.iter().all(|&v| v));
        assert!(t.empirical_mobility() > 0.0);
    }

    #[test]
    fn stationary_geometric_trace_has_zero_mobility() {
        let area = ServiceArea::grid(100.0, 100.0, 4);
        let mut model = MobilityKind::Stationary.build();
        let t = generate_geometric(&area, model.as_mut(), 10, 20, 8);
        assert_eq!(t.empirical_mobility(), 0.0);
    }

    #[test]
    fn json_roundtrip() {
        let t = generate_markov_hop(3, 5, 8, 0.3, 9);
        let t2 = Trace::from_json(&t.to_json()).unwrap();
        assert_eq!(t, t2);
    }

    #[test]
    fn one_report_roundtrip() {
        let t = generate_markov_hop(4, 6, 5, 0.5, 10);
        let rep = t.to_one_report();
        let t2 = Trace::from_one_report(&rep, 4).unwrap();
        assert_eq!(t, t2);
    }

    #[test]
    fn one_report_rejects_gaps() {
        let rep = "0 0 1\n0 1 2\n1 0 1\n"; // missing (1, 1)
        assert!(Trace::from_one_report(rep, 3).is_err());
    }

    #[test]
    fn one_report_skips_comments_and_blanks() {
        let rep = "# header\n\n0 0 1\n0 1 0\n";
        let t = Trace::from_one_report(rep, 2).unwrap();
        assert_eq!(t.devices(), 2);
        assert_eq!(t.steps(), 1);
    }

    #[test]
    #[should_panic(expected = "out-of-range")]
    fn new_rejects_bad_edge_index() {
        Trace::new(2, vec![vec![0, 2]]);
    }

    #[test]
    fn homed_hop_matches_requested_mobility() {
        let homes: Vec<usize> = (0..100).map(|m| m % 5).collect();
        for p in [0.1f64, 0.5] {
            let t = generate_markov_hop_homed(5, &homes, 300, p, 0.6, 17);
            let emp = t.empirical_mobility();
            assert!((emp - p).abs() < 0.06, "requested P={p}, got {emp}");
        }
    }

    #[test]
    fn homed_hop_keeps_devices_near_home() {
        let homes: Vec<usize> = (0..100).map(|m| m % 5).collect();
        let t = generate_markov_hop_homed(5, &homes, 400, 0.5, 0.6, 23);
        // Count at-home device-steps over the tail (past mixing).
        let mut at_home = 0usize;
        let mut total = 0usize;
        for step in 200..t.steps() {
            for (m, &home) in homes.iter().enumerate() {
                total += 1;
                at_home += usize::from(t.edge_of(step, m) == home);
            }
        }
        let frac = at_home as f64 / total as f64;
        // Stationary at-home fraction ≈ hb/(1+hb) = 0.375 >> uniform 0.2.
        assert!(frac > 0.3, "at-home fraction {frac}");
        assert!(frac < 0.55, "at-home fraction {frac}");
    }

    #[test]
    fn homed_hop_starts_at_home() {
        let homes = vec![2usize, 0, 1];
        let t = generate_markov_hop_homed(3, &homes, 5, 0.9, 0.5, 3);
        assert_eq!(t.at(0), &homes[..]);
    }

    #[test]
    fn traces_are_seed_deterministic() {
        let a = generate_markov_hop(5, 10, 30, 0.4, 11);
        let b = generate_markov_hop(5, 10, 30, 0.4, 11);
        assert_eq!(a, b);
        let c = generate_markov_hop(5, 10, 30, 0.4, 12);
        assert_ne!(a, c);
    }
}
