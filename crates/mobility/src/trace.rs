//! Mobility traces: the per-time-step device→edge assignment consumed by
//! the federated simulation.
//!
//! The paper is "orthogonal to the classic mobility models … we do not
//! need a whole mobile trajectory" (§3.2): only edge membership per step
//! matters, plus the global mobility probability `P` (the expected
//! per-step fraction of devices that switch edges). A [`Trace`] can be
//! generated three ways:
//!
//! * geometrically, by running a [`crate::models::MobilityModel`] over a
//!   [`crate::geometry::ServiceArea`] and attaching each device to its
//!   nearest edge;
//! * directly, by a Markov edge-hop process whose per-device move
//!   probability averages to the requested `P` (the controlled knob of
//!   the paper's Figure 7); or
//! * by importing a previously exported trace.
//!
//! A trace is backed either **densely** (every row materialised, the
//! historical representation) or by a **stream**: the Markov generators
//! can run as a cursor that keeps only the previous and current rows
//! plus the generator RNG, so holding a million-device trace costs
//! O(N), not O(N·T). Streamed rows are bitwise identical to the dense
//! generator's output for the same parameters — the cursor replays the
//! exact same RNG draw sequence.

use crate::geometry::ServiceArea;
use crate::models::MobilityModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::sync::Mutex;

/// A complete mobility trace: conceptually, `assignments[t][m]` is the
/// edge of device `m` during time step `t`.
pub struct Trace {
    num_edges: usize,
    backend: Backend,
}

enum Backend {
    /// Every row held in memory.
    Dense(Vec<Vec<usize>>),
    /// Rows regenerated on demand from the Markov process.
    Stream(Box<MarkovStream>),
}

/// Generator parameters of a streamed Markov trace — everything needed
/// to regenerate the full assignment sequence deterministically.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MarkovStreamSpec {
    /// Number of edge servers.
    pub num_edges: usize,
    /// Number of devices.
    pub devices: usize,
    /// Number of time steps.
    pub steps: usize,
    /// Requested global mobility `P`.
    pub p_global: f64,
    /// Home edges for the homed variant; `None` selects the plain hop.
    pub homes: Option<Vec<usize>>,
    /// Probability of returning home on a move (homed variant only).
    pub home_bias: f64,
    /// Generator seed.
    pub seed: u64,
}

impl MarkovStreamSpec {
    fn validate(&self) -> Result<(), String> {
        if self.num_edges == 0 {
            return Err("need at least one edge".into());
        }
        if self.steps == 0 {
            return Err("trace needs at least one step".into());
        }
        if !(0.0..=1.0).contains(&self.p_global) {
            return Err("P must be in [0, 1]".into());
        }
        if !(0.0..=1.0).contains(&self.home_bias) {
            return Err("home_bias must be in [0, 1]".into());
        }
        if let Some(h) = &self.homes {
            if h.len() != self.devices {
                return Err("homes length must match device count".into());
            }
            if h.iter().any(|&e| e >= self.num_edges) {
                return Err("home edge out of range".into());
            }
        }
        Ok(())
    }
}

/// Streaming Markov-hop backend: per-device move probabilities, the
/// initial row, the post-init RNG state, and a cursor holding the two
/// live rows.
struct MarkovStream {
    spec: MarkovStreamSpec,
    /// Per-device move probabilities (mean `p_global`).
    p: Vec<f64>,
    /// Row 0.
    initial: Vec<usize>,
    /// RNG state right after `p` and the initial row were drawn — the
    /// reset point for backward seeks.
    rng0: [u64; 4],
    cursor: Mutex<Cursor>,
}

struct Cursor {
    /// Step the `cur` row describes.
    t: usize,
    /// Row `t - 1`; empty while `t == 0`.
    prev: Vec<usize>,
    /// Row `t`.
    cur: Vec<usize>,
    rng: StdRng,
    /// Device-steps moved over generated steps `1..=t`.
    moved: u64,
}

impl MarkovStream {
    fn new(spec: MarkovStreamSpec) -> Self {
        if let Err(e) = spec.validate() {
            panic!("{e}");
        }
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let p = draw_move_probabilities(spec.devices, spec.p_global, &mut rng);
        let initial: Vec<usize> = match &spec.homes {
            Some(h) => h.clone(),
            None => (0..spec.devices)
                .map(|_| rng.gen_range(0..spec.num_edges))
                .collect(),
        };
        let rng0 = rng.state();
        let cursor = Mutex::new(Cursor {
            t: 0,
            prev: Vec::new(),
            cur: initial.clone(),
            rng,
            moved: 0,
        });
        MarkovStream {
            spec,
            p,
            initial,
            rng0,
            cursor,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Cursor> {
        self.cursor.lock().expect("trace cursor poisoned")
    }

    /// Positions the cursor on step `t`. Forward seeks advance the
    /// process; backward seeks restart from step 0 and regenerate
    /// (O(t·N) — the simulation only ever walks forward, so this path
    /// is taken once per checkpoint restore at most).
    fn seek(&self, cursor: &mut Cursor, t: usize) {
        assert!(t < self.spec.steps, "step {t} out of range");
        if t < cursor.t {
            cursor.t = 0;
            cursor.prev.clear();
            cursor.cur.clone_from(&self.initial);
            cursor.rng = StdRng::from_state(self.rng0);
            cursor.moved = 0;
        }
        while cursor.t < t {
            self.advance(cursor);
        }
    }

    /// Generates the next row in place, replaying the dense generator's
    /// exact RNG draw order.
    fn advance(&self, cursor: &mut Cursor) {
        let num_edges = self.spec.num_edges;
        cursor.prev.clone_from(&cursor.cur);
        let rng = &mut cursor.rng;
        match &self.spec.homes {
            None => {
                for (m, e) in cursor.cur.iter_mut().enumerate() {
                    if num_edges > 1 && rng.gen::<f64>() < self.p[m] {
                        let mut next = rng.gen_range(0..num_edges - 1);
                        if next >= *e {
                            next += 1;
                        }
                        *e = next;
                    }
                }
            }
            Some(homes) => {
                for (m, e) in cursor.cur.iter_mut().enumerate() {
                    if num_edges > 1 && rng.gen::<f64>() < self.p[m] {
                        let home = homes[m];
                        *e = if *e != home && rng.gen::<f64>() < self.spec.home_bias {
                            home
                        } else {
                            let mut next = rng.gen_range(0..num_edges - 1);
                            if next >= *e {
                                next += 1;
                            }
                            next
                        };
                    }
                }
            }
        }
        cursor.moved += cursor
            .prev
            .iter()
            .zip(&cursor.cur)
            .filter(|(a, b)| a != b)
            .count() as u64;
        cursor.t += 1;
    }

    /// Total moved device-steps over the whole horizon: the cursor's
    /// running count plus a detached replay of the remaining steps
    /// (leaves the cursor untouched).
    fn total_moved(&self) -> u64 {
        let guard = self.lock();
        let mut replay = Cursor {
            t: guard.t,
            prev: Vec::new(),
            cur: guard.cur.clone(),
            rng: StdRng::from_state(guard.rng.state()),
            moved: guard.moved,
        };
        drop(guard);
        while replay.t < self.spec.steps - 1 {
            self.advance(&mut replay);
        }
        replay.moved
    }
}

impl Trace {
    /// Wraps raw assignments in a dense trace.
    ///
    /// # Panics
    /// Panics when steps have differing device counts or any edge index
    /// is out of range.
    pub fn new(num_edges: usize, assignments: Vec<Vec<usize>>) -> Self {
        assert!(num_edges > 0, "need at least one edge");
        assert!(!assignments.is_empty(), "trace needs at least one step");
        let devices = assignments[0].len();
        for (t, step) in assignments.iter().enumerate() {
            assert_eq!(step.len(), devices, "step {t} device count mismatch");
            assert!(
                step.iter().all(|&e| e < num_edges),
                "step {t} has an out-of-range edge index"
            );
        }
        Trace {
            num_edges,
            backend: Backend::Dense(assignments),
        }
    }

    /// Streaming counterpart of [`generate_markov_hop`]: identical rows,
    /// O(devices) resident memory instead of O(devices · steps).
    pub fn markov_hop_streaming(
        num_edges: usize,
        devices: usize,
        steps: usize,
        p_global: f64,
        seed: u64,
    ) -> Self {
        Trace {
            num_edges,
            backend: Backend::Stream(Box::new(MarkovStream::new(MarkovStreamSpec {
                num_edges,
                devices,
                steps,
                p_global,
                homes: None,
                home_bias: 0.0,
                seed,
            }))),
        }
    }

    /// Streaming counterpart of [`generate_markov_hop_homed`].
    pub fn markov_hop_homed_streaming(
        num_edges: usize,
        homes: &[usize],
        steps: usize,
        p_global: f64,
        home_bias: f64,
        seed: u64,
    ) -> Self {
        Trace {
            num_edges,
            backend: Backend::Stream(Box::new(MarkovStream::new(MarkovStreamSpec {
                num_edges,
                devices: homes.len(),
                steps,
                p_global,
                homes: Some(homes.to_vec()),
                home_bias,
                seed,
            }))),
        }
    }

    /// True when rows are regenerated on demand instead of held densely.
    pub fn is_streaming(&self) -> bool {
        matches!(self.backend, Backend::Stream(_))
    }

    /// Number of time steps.
    pub fn steps(&self) -> usize {
        match &self.backend {
            Backend::Dense(a) => a.len(),
            Backend::Stream(s) => s.spec.steps,
        }
    }

    /// Number of devices.
    pub fn devices(&self) -> usize {
        match &self.backend {
            Backend::Dense(a) => a[0].len(),
            Backend::Stream(s) => s.spec.devices,
        }
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Edge of device `m` at step `t`.
    pub fn edge_of(&self, t: usize, m: usize) -> usize {
        match &self.backend {
            Backend::Dense(a) => a[t][m],
            Backend::Stream(s) => {
                let mut cursor = s.lock();
                if t + 1 == cursor.t {
                    return cursor.prev[m];
                }
                s.seek(&mut cursor, t);
                cursor.cur[m]
            }
        }
    }

    /// All device→edge assignments at step `t`.
    ///
    /// # Panics
    /// Panics on streaming traces, which have no stable row to borrow —
    /// use [`Trace::fill_rows_into`] there.
    pub fn at(&self, t: usize) -> &[usize] {
        match &self.backend {
            Backend::Dense(a) => &a[t],
            Backend::Stream(_) => panic!("streaming traces cannot borrow rows; use fill_rows_into"),
        }
    }

    /// Copies row `t` into `cur` and, when `t > 0`, row `t − 1` into
    /// `prev`; returns whether `prev` was filled. This is the one-pass
    /// row access the simulation's per-step index uses — a single O(N)
    /// copy per step regardless of backend.
    pub fn fill_rows_into(&self, t: usize, cur: &mut Vec<usize>, prev: &mut Vec<usize>) -> bool {
        match &self.backend {
            Backend::Dense(a) => {
                cur.clear();
                cur.extend_from_slice(&a[t]);
                if t > 0 {
                    prev.clear();
                    prev.extend_from_slice(&a[t - 1]);
                }
                t > 0
            }
            Backend::Stream(s) => {
                let mut cursor = s.lock();
                s.seek(&mut cursor, t);
                cur.clear();
                cur.extend_from_slice(&cursor.cur);
                if t > 0 {
                    prev.clear();
                    prev.extend_from_slice(&cursor.prev);
                }
                t > 0
            }
        }
    }

    /// Devices attached to `edge` at step `t` (the candidate set `M_n^t`).
    pub fn devices_at(&self, t: usize, edge: usize) -> Vec<usize> {
        let mut out = Vec::new();
        self.devices_at_into(t, edge, &mut out);
        out
    }

    /// Allocation-free form of [`Trace::devices_at`]: clears `out` and
    /// fills it with the candidate set in ascending device order.
    pub fn devices_at_into(&self, t: usize, edge: usize, out: &mut Vec<usize>) {
        out.clear();
        let fill = |row: &[usize], out: &mut Vec<usize>| {
            out.extend(
                row.iter()
                    .enumerate()
                    .filter(|(_, &e)| e == edge)
                    .map(|(m, _)| m),
            );
        };
        match &self.backend {
            Backend::Dense(a) => fill(&a[t], out),
            Backend::Stream(s) => {
                let mut cursor = s.lock();
                s.seek(&mut cursor, t);
                fill(&cursor.cur, out);
            }
        }
    }

    /// True when device `m` entered its step-`t` edge from a different
    /// edge (the `m ∉ M_n^{t−1}` test of Algorithm 1, line 4). Step 0
    /// counts as not-moved.
    pub fn moved(&self, t: usize, m: usize) -> bool {
        if t == 0 {
            return false;
        }
        match &self.backend {
            Backend::Dense(a) => a[t][m] != a[t - 1][m],
            Backend::Stream(s) => {
                let mut cursor = s.lock();
                s.seek(&mut cursor, t);
                cursor.cur[m] != cursor.prev[m]
            }
        }
    }

    /// Empirical global mobility: the fraction of device-steps (from step
    /// 1 on) where the device changed edge — the measured counterpart of
    /// the paper's `P`.
    pub fn empirical_mobility(&self) -> f64 {
        if self.steps() < 2 {
            return 0.0;
        }
        let total = (self.steps() - 1) * self.devices();
        let moved = match &self.backend {
            Backend::Dense(a) => {
                let mut moved = 0u64;
                for t in 1..a.len() {
                    moved += a[t]
                        .iter()
                        .zip(&a[t - 1])
                        .filter(|(cur, prev)| cur != prev)
                        .count() as u64;
                }
                moved
            }
            Backend::Stream(s) => s.total_moved(),
        };
        moved as f64 / total as f64
    }

    /// Per-step edge occupancy histogram at step `t`.
    pub fn occupancy(&self, t: usize) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_edges];
        let fill = |row: &[usize], counts: &mut Vec<usize>| {
            for &e in row {
                counts[e] += 1;
            }
        };
        match &self.backend {
            Backend::Dense(a) => fill(&a[t], &mut counts),
            Backend::Stream(s) => {
                let mut cursor = s.lock();
                s.seek(&mut cursor, t);
                fill(&cursor.cur, &mut counts);
            }
        }
        counts
    }

    /// Serialises the trace to JSON. Dense traces keep their historical
    /// row format; streaming traces serialise the generator spec.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("trace serialisation cannot fail")
    }

    /// Parses a JSON trace (either the dense row format or a streaming
    /// generator spec).
    ///
    /// # Errors
    /// Returns the parse or validation error message.
    pub fn from_json(s: &str) -> Result<Self, String> {
        let repr: TraceRepr = serde_json::from_str(s).map_err(|e| e.to_string())?;
        match (repr.assignments, repr.stream) {
            (Some(assignments), None) => {
                if assignments.is_empty() {
                    return Err("trace needs at least one step".into());
                }
                let devices = assignments[0].len();
                for step in &assignments {
                    if step.len() != devices {
                        return Err("step device count mismatch".into());
                    }
                    if step.iter().any(|&e| e >= repr.num_edges) {
                        return Err("edge index out of range".into());
                    }
                }
                Ok(Trace {
                    num_edges: repr.num_edges,
                    backend: Backend::Dense(assignments),
                })
            }
            (None, Some(spec)) => {
                spec.validate()?;
                if spec.num_edges != repr.num_edges {
                    return Err("stream num_edges mismatch".into());
                }
                Ok(Trace {
                    num_edges: repr.num_edges,
                    backend: Backend::Stream(Box::new(MarkovStream::new(spec))),
                })
            }
            _ => Err("trace JSON needs exactly one of `assignments` or `stream`".into()),
        }
    }

    /// Exports in a ONE-simulator-style report format: one
    /// `time device edge` line per (step, device).
    pub fn to_one_report(&self) -> String {
        let mut out = String::with_capacity(self.steps() * self.devices() * 8);
        let mut cur = Vec::new();
        let mut prev = Vec::new();
        for t in 0..self.steps() {
            self.fill_rows_into(t, &mut cur, &mut prev);
            for (m, &e) in cur.iter().enumerate() {
                out.push_str(&format!("{t} {m} {e}\n"));
            }
        }
        out
    }

    /// Parses the `time device edge` report format.
    ///
    /// # Errors
    /// Returns a message describing the malformed line or inconsistent
    /// structure.
    pub fn from_one_report(s: &str, num_edges: usize) -> Result<Self, String> {
        let mut rows: Vec<(usize, usize, usize)> = Vec::new();
        for (lineno, line) in s.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut it = line.split_whitespace();
            let parse = |tok: Option<&str>| -> Result<usize, String> {
                tok.ok_or_else(|| format!("line {}: missing field", lineno + 1))?
                    .parse::<usize>()
                    .map_err(|e| format!("line {}: {e}", lineno + 1))
            };
            rows.push((parse(it.next())?, parse(it.next())?, parse(it.next())?));
        }
        if rows.is_empty() {
            return Err("empty report".into());
        }
        let steps = rows.iter().map(|r| r.0).max().unwrap() + 1;
        let devices = rows.iter().map(|r| r.1).max().unwrap() + 1;
        let mut assignments = vec![vec![usize::MAX; devices]; steps];
        for (t, m, e) in rows {
            if e >= num_edges {
                return Err(format!("edge {e} out of range"));
            }
            assignments[t][m] = e;
        }
        if assignments.iter().any(|step| step.contains(&usize::MAX)) {
            return Err("report has gaps (missing device-step rows)".into());
        }
        Ok(Trace::new(num_edges, assignments))
    }
}

/// Heterogeneous per-device move probabilities with mean `p_global`:
/// draw U(0.5, 1.5)·P and renormalise the sample mean back to P. Shared
/// by the dense generators and the streaming backend so both replay the
/// same draws.
fn draw_move_probabilities(devices: usize, p_global: f64, rng: &mut StdRng) -> Vec<f64> {
    let mut p: Vec<f64> = (0..devices)
        .map(|_| (rng.gen_range(0.5..1.5) * p_global).clamp(0.0, 1.0))
        .collect();
    if p_global > 0.0 && devices > 0 {
        let mean: f64 = p.iter().sum::<f64>() / devices as f64;
        if mean > 0.0 {
            let k = p_global / mean;
            for v in &mut p {
                *v = (*v * k).clamp(0.0, 1.0);
            }
        }
    }
    p
}

impl std::fmt::Debug for Trace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.backend {
            Backend::Dense(a) => f
                .debug_struct("Trace")
                .field("num_edges", &self.num_edges)
                .field("assignments", a)
                .finish(),
            Backend::Stream(s) => f
                .debug_struct("Trace")
                .field("num_edges", &self.num_edges)
                .field("stream", &s.spec)
                .finish(),
        }
    }
}

impl Clone for Trace {
    fn clone(&self) -> Self {
        let backend = match &self.backend {
            Backend::Dense(a) => Backend::Dense(a.clone()),
            Backend::Stream(s) => {
                let guard = s.lock();
                let cursor = Mutex::new(Cursor {
                    t: guard.t,
                    prev: guard.prev.clone(),
                    cur: guard.cur.clone(),
                    rng: StdRng::from_state(guard.rng.state()),
                    moved: guard.moved,
                });
                drop(guard);
                Backend::Stream(Box::new(MarkovStream {
                    spec: s.spec.clone(),
                    p: s.p.clone(),
                    initial: s.initial.clone(),
                    rng0: s.rng0,
                    cursor,
                }))
            }
        };
        Trace {
            num_edges: self.num_edges,
            backend,
        }
    }
}

impl PartialEq for Trace {
    fn eq(&self, other: &Self) -> bool {
        if self.num_edges != other.num_edges {
            return false;
        }
        match (&self.backend, &other.backend) {
            (Backend::Dense(a), Backend::Dense(b)) => a == b,
            // Specs fully determine the rows, so spec equality is row
            // equality; the cursor position is not part of identity.
            (Backend::Stream(a), Backend::Stream(b)) => a.spec == b.spec,
            _ => false,
        }
    }
}

impl Eq for Trace {}

/// Wire format: exactly one of `assignments` (dense rows, the
/// historical layout) or `stream` (generator spec) is present.
#[derive(Serialize, Deserialize)]
struct TraceRepr {
    num_edges: usize,
    #[serde(default, skip_serializing_if = "Option::is_none")]
    assignments: Option<Vec<Vec<usize>>>,
    #[serde(default, skip_serializing_if = "Option::is_none")]
    stream: Option<MarkovStreamSpec>,
}

impl Serialize for Trace {
    fn to_value(&self) -> serde::Value {
        let repr = match &self.backend {
            Backend::Dense(a) => TraceRepr {
                num_edges: self.num_edges,
                assignments: Some(a.clone()),
                stream: None,
            },
            Backend::Stream(s) => TraceRepr {
                num_edges: self.num_edges,
                assignments: None,
                stream: Some(s.spec.clone()),
            },
        };
        repr.to_value()
    }
}

impl Deserialize for Trace {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let repr = TraceRepr::from_value(v)?;
        match (repr.assignments, repr.stream) {
            (Some(assignments), None) => Ok(Trace {
                num_edges: repr.num_edges,
                backend: Backend::Dense(assignments),
            }),
            (None, Some(spec)) => {
                spec.validate().map_err(serde::Error::custom)?;
                Ok(Trace {
                    num_edges: repr.num_edges,
                    backend: Backend::Stream(Box::new(MarkovStream::new(spec))),
                })
            }
            _ => Err(serde::Error::custom(
                "trace needs exactly one of `assignments` or `stream`",
            )),
        }
    }
}

/// Runs a geometric mobility model and converts positions to a trace via
/// nearest-edge attachment.
pub fn generate_geometric(
    area: &ServiceArea,
    model: &mut dyn MobilityModel,
    devices: usize,
    steps: usize,
    seed: u64,
) -> Trace {
    assert!(steps > 0, "need at least one step");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut positions = model.init(area, devices, &mut rng);
    let mut assignments = Vec::with_capacity(steps);
    assignments.push(
        positions
            .iter()
            .map(|p| area.nearest_edge(p))
            .collect::<Vec<_>>(),
    );
    for _ in 1..steps {
        model.step(area, &mut positions, &mut rng);
        assignments.push(positions.iter().map(|p| area.nearest_edge(p)).collect());
    }
    Trace::new(area.num_edges(), assignments)
}

/// Markov edge-hop trace with controlled global mobility.
///
/// Each device `m` has probability `p_m` of switching, at every step, to
/// a uniformly-random *other* edge; `p_m` is spread around `p_global`
/// (±50%, clamped to `[0, 1]`) so devices are heterogeneous while the
/// expectation matches the paper's global mobility `P` (§3.2).
pub fn generate_markov_hop(
    num_edges: usize,
    devices: usize,
    steps: usize,
    p_global: f64,
    seed: u64,
) -> Trace {
    assert!(num_edges > 0, "need at least one edge");
    assert!(steps > 0, "need at least one step");
    assert!((0.0..=1.0).contains(&p_global), "P must be in [0, 1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let p = draw_move_probabilities(devices, p_global, &mut rng);

    let mut current: Vec<usize> = (0..devices).map(|_| rng.gen_range(0..num_edges)).collect();
    let mut assignments = Vec::with_capacity(steps);
    assignments.push(current.clone());
    for _ in 1..steps {
        for (m, e) in current.iter_mut().enumerate() {
            if num_edges > 1 && rng.gen::<f64>() < p[m] {
                let mut next = rng.gen_range(0..num_edges - 1);
                if next >= *e {
                    next += 1;
                }
                *e = next;
            }
        }
        assignments.push(current.clone());
    }
    Trace::new(num_edges, assignments)
}

/// Home-biased Markov edge-hop trace: like [`generate_markov_hop`], but
/// each device has a *home* edge it starts at and preferentially returns
/// to — approximating the spatial locality of real (ONE-simulator-style)
/// movement, which keeps edge-level data distributions persistently
/// Non-IID while still realising the requested global mobility `P`.
///
/// When a device relocates (probability `p_m` per step, mean `p_global`)
/// and is currently away from home, it returns home with probability
/// `home_bias`, otherwise it picks a uniformly-random different edge.
/// The stationary at-home fraction is `home_bias / (1 + home_bias)`.
pub fn generate_markov_hop_homed(
    num_edges: usize,
    homes: &[usize],
    steps: usize,
    p_global: f64,
    home_bias: f64,
    seed: u64,
) -> Trace {
    assert!(num_edges > 0, "need at least one edge");
    assert!(steps > 0, "need at least one step");
    assert!((0.0..=1.0).contains(&p_global), "P must be in [0, 1]");
    assert!(
        (0.0..=1.0).contains(&home_bias),
        "home_bias must be in [0, 1]"
    );
    assert!(
        homes.iter().all(|&h| h < num_edges),
        "home edge out of range"
    );
    let devices = homes.len();
    let mut rng = StdRng::seed_from_u64(seed);
    let p = draw_move_probabilities(devices, p_global, &mut rng);

    let mut current: Vec<usize> = homes.to_vec();
    let mut assignments = Vec::with_capacity(steps);
    assignments.push(current.clone());
    for _ in 1..steps {
        for (m, e) in current.iter_mut().enumerate() {
            if num_edges > 1 && rng.gen::<f64>() < p[m] {
                let home = homes[m];
                *e = if *e != home && rng.gen::<f64>() < home_bias {
                    home
                } else {
                    // Uniform over the other edges (never a self-loop, so
                    // every draw is a real move and E[moves] tracks P).
                    let mut next = rng.gen_range(0..num_edges - 1);
                    if next >= *e {
                        next += 1;
                    }
                    next
                };
            }
        }
        assignments.push(current.clone());
    }
    Trace::new(num_edges, assignments)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::MobilityKind;

    #[test]
    fn markov_hop_matches_requested_mobility() {
        for p in [0.1f64, 0.3, 0.5] {
            let t = generate_markov_hop(10, 100, 300, p, 42);
            let emp = t.empirical_mobility();
            assert!((emp - p).abs() < 0.05, "requested P={p}, got {emp}");
        }
    }

    #[test]
    fn markov_hop_zero_p_is_static() {
        let t = generate_markov_hop(5, 20, 50, 0.0, 1);
        assert_eq!(t.empirical_mobility(), 0.0);
    }

    #[test]
    fn single_edge_never_moves() {
        let t = generate_markov_hop(1, 10, 20, 0.9, 2);
        assert_eq!(t.empirical_mobility(), 0.0);
    }

    #[test]
    fn devices_at_partitions_all_devices() {
        let t = generate_markov_hop(4, 30, 10, 0.4, 3);
        for step in 0..t.steps() {
            let total: usize = (0..4).map(|e| t.devices_at(step, e).len()).sum();
            assert_eq!(total, 30);
        }
    }

    #[test]
    fn moved_detects_transitions() {
        let t = Trace::new(3, vec![vec![0, 1], vec![0, 2], vec![1, 2]]);
        assert!(!t.moved(0, 0));
        assert!(!t.moved(1, 0));
        assert!(t.moved(1, 1));
        assert!(t.moved(2, 0));
        assert!(!t.moved(2, 1));
        assert!((t.empirical_mobility() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn geometric_trace_covers_edges() {
        let area = ServiceArea::grid(1000.0, 1000.0, 4);
        let mut model = MobilityKind::RandomWaypoint {
            min_speed: 50.0,
            max_speed: 150.0,
        }
        .build();
        let t = generate_geometric(&area, model.as_mut(), 40, 50, 7);
        assert_eq!(t.devices(), 40);
        assert_eq!(t.steps(), 50);
        // Over 50 steps of brisk movement, every edge should host someone
        // at some point.
        let mut visited = [false; 4];
        for step in 0..t.steps() {
            for (e, v) in t.occupancy(step).iter().zip(visited.iter_mut()) {
                if *e > 0 {
                    *v = true;
                }
            }
        }
        assert!(visited.iter().all(|&v| v));
        assert!(t.empirical_mobility() > 0.0);
    }

    #[test]
    fn stationary_geometric_trace_has_zero_mobility() {
        let area = ServiceArea::grid(100.0, 100.0, 4);
        let mut model = MobilityKind::Stationary.build();
        let t = generate_geometric(&area, model.as_mut(), 10, 20, 8);
        assert_eq!(t.empirical_mobility(), 0.0);
    }

    #[test]
    fn json_roundtrip() {
        let t = generate_markov_hop(3, 5, 8, 0.3, 9);
        let t2 = Trace::from_json(&t.to_json()).unwrap();
        assert_eq!(t, t2);
    }

    #[test]
    fn one_report_roundtrip() {
        let t = generate_markov_hop(4, 6, 5, 0.5, 10);
        let rep = t.to_one_report();
        let t2 = Trace::from_one_report(&rep, 4).unwrap();
        assert_eq!(t, t2);
    }

    #[test]
    fn one_report_rejects_gaps() {
        let rep = "0 0 1\n0 1 2\n1 0 1\n"; // missing (1, 1)
        assert!(Trace::from_one_report(rep, 3).is_err());
    }

    #[test]
    fn one_report_skips_comments_and_blanks() {
        let rep = "# header\n\n0 0 1\n0 1 0\n";
        let t = Trace::from_one_report(rep, 2).unwrap();
        assert_eq!(t.devices(), 2);
        assert_eq!(t.steps(), 1);
    }

    #[test]
    #[should_panic(expected = "out-of-range")]
    fn new_rejects_bad_edge_index() {
        Trace::new(2, vec![vec![0, 2]]);
    }

    #[test]
    fn homed_hop_matches_requested_mobility() {
        let homes: Vec<usize> = (0..100).map(|m| m % 5).collect();
        for p in [0.1f64, 0.5] {
            let t = generate_markov_hop_homed(5, &homes, 300, p, 0.6, 17);
            let emp = t.empirical_mobility();
            assert!((emp - p).abs() < 0.06, "requested P={p}, got {emp}");
        }
    }

    #[test]
    fn homed_hop_keeps_devices_near_home() {
        let homes: Vec<usize> = (0..100).map(|m| m % 5).collect();
        let t = generate_markov_hop_homed(5, &homes, 400, 0.5, 0.6, 23);
        // Count at-home device-steps over the tail (past mixing).
        let mut at_home = 0usize;
        let mut total = 0usize;
        for step in 200..t.steps() {
            for (m, &home) in homes.iter().enumerate() {
                total += 1;
                at_home += usize::from(t.edge_of(step, m) == home);
            }
        }
        let frac = at_home as f64 / total as f64;
        // Stationary at-home fraction ≈ hb/(1+hb) = 0.375 >> uniform 0.2.
        assert!(frac > 0.3, "at-home fraction {frac}");
        assert!(frac < 0.55, "at-home fraction {frac}");
    }

    #[test]
    fn homed_hop_starts_at_home() {
        let homes = vec![2usize, 0, 1];
        let t = generate_markov_hop_homed(3, &homes, 5, 0.9, 0.5, 3);
        assert_eq!(t.at(0), &homes[..]);
    }

    #[test]
    fn traces_are_seed_deterministic() {
        let a = generate_markov_hop(5, 10, 30, 0.4, 11);
        let b = generate_markov_hop(5, 10, 30, 0.4, 11);
        assert_eq!(a, b);
        let c = generate_markov_hop(5, 10, 30, 0.4, 12);
        assert_ne!(a, c);
    }

    // ----- streaming backend -----

    fn rows(t: &Trace) -> Vec<Vec<usize>> {
        let mut out = Vec::with_capacity(t.steps());
        let mut cur = Vec::new();
        let mut prev = Vec::new();
        for step in 0..t.steps() {
            t.fill_rows_into(step, &mut cur, &mut prev);
            out.push(cur.clone());
        }
        out
    }

    #[test]
    fn streaming_markov_hop_matches_dense_bitwise() {
        let dense = generate_markov_hop(7, 50, 40, 0.35, 99);
        let stream = Trace::markov_hop_streaming(7, 50, 40, 0.35, 99);
        assert!(stream.is_streaming());
        assert_eq!(rows(&dense), rows(&stream));
        assert_eq!(dense.empirical_mobility(), stream.empirical_mobility());
    }

    #[test]
    fn streaming_homed_hop_matches_dense_bitwise() {
        let homes: Vec<usize> = (0..60).map(|m| m % 6).collect();
        let dense = generate_markov_hop_homed(6, &homes, 30, 0.4, 0.6, 31);
        let stream = Trace::markov_hop_homed_streaming(6, &homes, 30, 0.4, 0.6, 31);
        assert_eq!(rows(&dense), rows(&stream));
        for t in 0..30 {
            for m in 0..60 {
                assert_eq!(dense.moved(t, m), stream.moved(t, m));
            }
            assert_eq!(dense.occupancy(t), stream.occupancy(t));
        }
    }

    #[test]
    fn streaming_backward_seek_regenerates() {
        let dense = generate_markov_hop(5, 20, 25, 0.5, 3);
        let stream = Trace::markov_hop_streaming(5, 20, 25, 0.5, 3);
        // Jump to the end, then back to the middle, then to the start —
        // each backward seek restarts the generator.
        for &t in &[24usize, 10, 0, 17, 3] {
            for m in 0..20 {
                assert_eq!(dense.edge_of(t, m), stream.edge_of(t, m), "t={t} m={m}");
            }
        }
        // empirical_mobility replays detached from wherever the cursor is.
        assert_eq!(dense.empirical_mobility(), stream.empirical_mobility());
    }

    #[test]
    fn streaming_devices_at_matches_dense() {
        let dense = generate_markov_hop(4, 30, 10, 0.4, 5);
        let stream = Trace::markov_hop_streaming(4, 30, 10, 0.4, 5);
        for t in 0..10 {
            for e in 0..4 {
                assert_eq!(dense.devices_at(t, e), stream.devices_at(t, e));
            }
        }
    }

    #[test]
    fn streaming_clone_preserves_rows() {
        let stream = Trace::markov_hop_streaming(5, 15, 12, 0.45, 8);
        let mut cur = Vec::new();
        let mut prev = Vec::new();
        stream.fill_rows_into(7, &mut cur, &mut prev); // move the cursor
        let cloned = stream.clone();
        assert_eq!(rows(&stream), rows(&cloned));
        assert_eq!(stream, cloned);
    }

    #[test]
    fn streaming_json_roundtrip_is_spec_sized() {
        let stream = Trace::markov_hop_homed_streaming(3, &[0, 1, 2, 0], 1000, 0.3, 0.5, 77);
        let json = stream.to_json();
        // 1000 steps of rows would dwarf this; the spec form stays tiny.
        assert!(
            json.len() < 400,
            "spec JSON unexpectedly large: {}",
            json.len()
        );
        let back = Trace::from_json(&json).unwrap();
        assert!(back.is_streaming());
        assert_eq!(back, stream);
        assert_eq!(rows(&back)[999], rows(&stream)[999]);
    }

    #[test]
    fn streaming_one_report_roundtrip() {
        let stream = Trace::markov_hop_streaming(4, 6, 5, 0.5, 10);
        let dense = Trace::from_one_report(&stream.to_one_report(), 4).unwrap();
        assert_eq!(rows(&dense), rows(&stream));
    }
}
