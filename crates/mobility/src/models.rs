//! Mobility models generating per-time-step device positions.
//!
//! Stand-in for the ONE simulator [Keränen et al., SimuTools'09] the paper
//! uses: the paper only consumes the per-step device→edge assignment and a
//! global mobility probability `P`, so each model here advances device
//! positions (or edge memberships) one step at a time under a seeded RNG.

use crate::geometry::{Point, ServiceArea};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A mobility model: advances per-device positions one time step.
pub trait MobilityModel: Send {
    /// Initial positions for `n` devices.
    fn init(&mut self, area: &ServiceArea, n: usize, rng: &mut StdRng) -> Vec<Point>;

    /// Advances all positions by one time step (in place).
    fn step(&mut self, area: &ServiceArea, positions: &mut [Point], rng: &mut StdRng);

    /// Model name for trace metadata.
    fn name(&self) -> &'static str;
}

/// Declarative model choice, serialisable inside experiment configs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MobilityKind {
    /// Devices never move.
    Stationary,
    /// Random walk: each step picks a uniform direction and a speed in
    /// `[0, max_speed]`, reflecting off borders.
    RandomWalk {
        /// Maximum speed in metres per time step.
        max_speed: f64,
    },
    /// Random waypoint: move toward a uniformly-drawn waypoint at a speed
    /// in `[min_speed, max_speed]`; pick a new waypoint on arrival.
    RandomWaypoint {
        /// Minimum speed in metres per time step.
        min_speed: f64,
        /// Maximum speed in metres per time step.
        max_speed: f64,
    },
}

impl MobilityKind {
    /// Instantiates the model.
    pub fn build(&self) -> Box<dyn MobilityModel> {
        match *self {
            MobilityKind::Stationary => Box::new(Stationary),
            MobilityKind::RandomWalk { max_speed } => Box::new(RandomWalk { max_speed }),
            MobilityKind::RandomWaypoint {
                min_speed,
                max_speed,
            } => Box::new(RandomWaypoint {
                min_speed,
                max_speed,
                waypoints: Vec::new(),
            }),
        }
    }
}

/// Devices never move; degenerate baseline (P = 0).
pub struct Stationary;

impl MobilityModel for Stationary {
    fn init(&mut self, area: &ServiceArea, n: usize, rng: &mut StdRng) -> Vec<Point> {
        uniform_points(area, n, rng)
    }

    fn step(&mut self, _area: &ServiceArea, _positions: &mut [Point], _rng: &mut StdRng) {}

    fn name(&self) -> &'static str {
        "stationary"
    }
}

/// Uniform-direction random walk with border reflection.
pub struct RandomWalk {
    /// Maximum speed in metres per time step.
    pub max_speed: f64,
}

impl MobilityModel for RandomWalk {
    fn init(&mut self, area: &ServiceArea, n: usize, rng: &mut StdRng) -> Vec<Point> {
        uniform_points(area, n, rng)
    }

    fn step(&mut self, area: &ServiceArea, positions: &mut [Point], rng: &mut StdRng) {
        for p in positions {
            let angle = rng.gen_range(0.0..std::f64::consts::TAU);
            let speed = rng.gen_range(0.0..=self.max_speed);
            let mut x = p.x + speed * angle.cos();
            let mut y = p.y + speed * angle.sin();
            // Reflect off borders (may need several bounces for big steps).
            x = reflect(x, area.width);
            y = reflect(y, area.height);
            *p = Point::new(x, y);
        }
    }

    fn name(&self) -> &'static str {
        "random_walk"
    }
}

/// Classic random-waypoint model.
pub struct RandomWaypoint {
    /// Minimum speed in metres per time step.
    pub min_speed: f64,
    /// Maximum speed in metres per time step.
    pub max_speed: f64,
    waypoints: Vec<Point>,
}

impl MobilityModel for RandomWaypoint {
    fn init(&mut self, area: &ServiceArea, n: usize, rng: &mut StdRng) -> Vec<Point> {
        let pts = uniform_points(area, n, rng);
        self.waypoints = uniform_points(area, n, rng);
        pts
    }

    fn step(&mut self, area: &ServiceArea, positions: &mut [Point], rng: &mut StdRng) {
        assert_eq!(
            positions.len(),
            self.waypoints.len(),
            "init() must be called with the same device count"
        );
        for (p, w) in positions.iter_mut().zip(&mut self.waypoints) {
            let speed = rng.gen_range(self.min_speed..=self.max_speed);
            let d = p.distance(w);
            if d <= speed {
                *p = *w;
                *w = Point::new(
                    rng.gen_range(0.0..=area.width),
                    rng.gen_range(0.0..=area.height),
                );
            } else {
                let t = speed / d;
                *p = Point::new(p.x + (w.x - p.x) * t, p.y + (w.y - p.y) * t);
            }
        }
    }

    fn name(&self) -> &'static str {
        "random_waypoint"
    }
}

fn uniform_points(area: &ServiceArea, n: usize, rng: &mut StdRng) -> Vec<Point> {
    (0..n)
        .map(|_| {
            Point::new(
                rng.gen_range(0.0..=area.width),
                rng.gen_range(0.0..=area.height),
            )
        })
        .collect()
}

/// Reflects a coordinate into `[0, limit]` (handles multi-bounce).
fn reflect(mut v: f64, limit: f64) -> f64 {
    let period = 2.0 * limit;
    v = v.rem_euclid(period);
    if v > limit {
        period - v
    } else {
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use middle_tensor_rng::rng;

    // Tiny local shim: mobility doesn't depend on middle-tensor, so
    // recreate the seeded-rng helper here for tests.
    mod middle_tensor_rng {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        pub fn rng(seed: u64) -> StdRng {
            StdRng::seed_from_u64(seed)
        }
    }

    fn area() -> ServiceArea {
        ServiceArea::grid(1000.0, 1000.0, 4)
    }

    #[test]
    fn stationary_never_moves() {
        let a = area();
        let mut m = MobilityKind::Stationary.build();
        let mut r = rng(1);
        let mut pos = m.init(&a, 10, &mut r);
        let orig = pos.clone();
        for _ in 0..5 {
            m.step(&a, &mut pos, &mut r);
        }
        assert_eq!(pos, orig);
    }

    #[test]
    fn random_walk_stays_inside() {
        let a = area();
        let mut m = MobilityKind::RandomWalk { max_speed: 400.0 }.build();
        let mut r = rng(2);
        let mut pos = m.init(&a, 50, &mut r);
        for _ in 0..100 {
            m.step(&a, &mut pos, &mut r);
            for p in &pos {
                assert!(a.contains(p), "escaped: {p:?}");
            }
        }
    }

    #[test]
    fn random_walk_actually_moves() {
        let a = area();
        let mut m = MobilityKind::RandomWalk { max_speed: 50.0 }.build();
        let mut r = rng(3);
        let mut pos = m.init(&a, 10, &mut r);
        let orig = pos.clone();
        m.step(&a, &mut pos, &mut r);
        assert!(pos.iter().zip(&orig).any(|(p, o)| p.distance(o) > 1.0));
    }

    #[test]
    fn waypoint_moves_toward_target_bounded_by_speed() {
        let a = area();
        let mut m = MobilityKind::RandomWaypoint {
            min_speed: 10.0,
            max_speed: 20.0,
        }
        .build();
        let mut r = rng(4);
        let mut pos = m.init(&a, 20, &mut r);
        let orig = pos.clone();
        m.step(&a, &mut pos, &mut r);
        for (p, o) in pos.iter().zip(&orig) {
            assert!(p.distance(o) <= 20.0 + 1e-9);
            assert!(a.contains(p));
        }
    }

    #[test]
    fn waypoint_is_seed_deterministic() {
        let a = area();
        let run = |seed: u64| {
            let mut m = MobilityKind::RandomWaypoint {
                min_speed: 5.0,
                max_speed: 15.0,
            }
            .build();
            let mut r = rng(seed);
            let mut pos = m.init(&a, 5, &mut r);
            for _ in 0..20 {
                m.step(&a, &mut pos, &mut r);
            }
            pos
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn reflect_maps_into_range() {
        for v in [-250.0, -10.0, 0.0, 55.0, 100.0, 130.0, 370.0] {
            let r = reflect(v, 100.0);
            assert!((0.0..=100.0).contains(&r), "{v} -> {r}");
        }
        assert_eq!(reflect(130.0, 100.0), 70.0);
        assert_eq!(reflect(-30.0, 100.0), 30.0);
    }
}
