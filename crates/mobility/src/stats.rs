//! Trace statistics: empirical transition matrices, sojourn times,
//! occupancy distributions and mixing diagnostics.
//!
//! These are the quantities a practitioner needs to verify that a
//! generated (or imported) trace actually realises the mobility regime an
//! experiment assumes — e.g. that the empirical global mobility matches
//! the configured `P`, or how quickly edge populations mix.

use crate::trace::Trace;

/// Row-stochastic empirical edge-transition matrix: `m[i][j]` is the
/// probability of a device being at edge `j` at `t+1` given edge `i` at
/// `t`, estimated over all device-steps. Rows with no visits are uniform.
pub fn transition_matrix(trace: &Trace) -> Vec<Vec<f64>> {
    let n = trace.num_edges();
    let mut counts = vec![vec![0u64; n]; n];
    for t in 1..trace.steps() {
        for m in 0..trace.devices() {
            counts[trace.edge_of(t - 1, m)][trace.edge_of(t, m)] += 1;
        }
    }
    counts
        .into_iter()
        .map(|row| {
            let total: u64 = row.iter().sum();
            if total == 0 {
                vec![1.0 / n as f64; n]
            } else {
                row.into_iter().map(|c| c as f64 / total as f64).collect()
            }
        })
        .collect()
}

/// Mean sojourn time (consecutive steps spent on one edge before
/// moving), over all completed visits. Returns the trace length when no
/// device ever moves.
pub fn mean_sojourn(trace: &Trace) -> f64 {
    let mut visits = 0u64;
    let mut total = 0u64;
    for m in 0..trace.devices() {
        let mut run = 1u64;
        for t in 1..trace.steps() {
            if trace.moved(t, m) {
                visits += 1;
                total += run;
                run = 1;
            } else {
                run += 1;
            }
        }
    }
    if visits == 0 {
        trace.steps() as f64
    } else {
        total as f64 / visits as f64
    }
}

/// Time-averaged edge-occupancy distribution (fraction of device-steps
/// spent at each edge).
pub fn occupancy_distribution(trace: &Trace) -> Vec<f64> {
    let n = trace.num_edges();
    let mut counts = vec![0u64; n];
    for t in 0..trace.steps() {
        for (e, c) in trace.occupancy(t).iter().zip(counts.iter_mut()) {
            *c += *e as u64;
        }
    }
    let total: u64 = counts.iter().sum();
    counts
        .into_iter()
        .map(|c| c as f64 / total as f64)
        .collect()
}

/// Fraction of device-steps each device spends at its `homes[m]` edge.
pub fn at_home_fraction(trace: &Trace, homes: &[usize]) -> f64 {
    assert_eq!(homes.len(), trace.devices(), "homes per device");
    let mut at_home = 0u64;
    let mut total = 0u64;
    for t in 0..trace.steps() {
        for (m, &h) in homes.iter().enumerate() {
            total += 1;
            at_home += u64::from(trace.edge_of(t, m) == h);
        }
    }
    at_home as f64 / total as f64
}

/// Total-variation distance of the occupancy distribution from uniform —
/// 0 for perfectly balanced edges, approaching 1 for full concentration.
pub fn occupancy_imbalance(trace: &Trace) -> f64 {
    let occ = occupancy_distribution(trace);
    let uniform = 1.0 / trace.num_edges() as f64;
    0.5 * occ.iter().map(|p| (p - uniform).abs()).sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{generate_markov_hop, generate_markov_hop_homed};

    #[test]
    fn transition_matrix_rows_are_stochastic() {
        let t = generate_markov_hop(4, 30, 100, 0.4, 1);
        let m = transition_matrix(&t);
        for row in &m {
            let s: f64 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "row sums to {s}");
        }
    }

    #[test]
    fn transition_diagonal_matches_stay_probability() {
        // With P = 0.3, devices stay put with probability ≈ 0.7.
        let t = generate_markov_hop(5, 100, 400, 0.3, 2);
        let m = transition_matrix(&t);
        for (i, row) in m.iter().enumerate() {
            assert!((row[i] - 0.7).abs() < 0.06, "diagonal {i} = {}", row[i]);
        }
    }

    #[test]
    fn static_trace_has_identity_transitions_and_full_sojourn() {
        let t = generate_markov_hop(3, 10, 50, 0.0, 3);
        let m = transition_matrix(&t);
        for (i, row) in m.iter().enumerate() {
            if row.iter().sum::<f64>() > 0.0 && !t.devices_at(0, i).is_empty() {
                assert!((row[i] - 1.0).abs() < 1e-9);
            }
        }
        assert_eq!(mean_sojourn(&t), 50.0);
    }

    #[test]
    fn sojourn_shrinks_with_mobility() {
        let slow = generate_markov_hop(4, 50, 200, 0.1, 4);
        let fast = generate_markov_hop(4, 50, 200, 0.8, 4);
        assert!(mean_sojourn(&fast) < mean_sojourn(&slow));
        // Geometric holding time ⇒ mean ≈ 1/P.
        assert!((mean_sojourn(&fast) - 1.25).abs() < 0.3);
    }

    #[test]
    fn occupancy_distribution_sums_to_one() {
        let t = generate_markov_hop(6, 40, 80, 0.5, 5);
        let occ = occupancy_distribution(&t);
        assert!((occ.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert_eq!(occ.len(), 6);
    }

    #[test]
    fn uniform_hopping_has_low_imbalance() {
        let t = generate_markov_hop(4, 200, 300, 0.5, 6);
        assert!(occupancy_imbalance(&t) < 0.05);
    }

    #[test]
    fn homed_trace_reports_elevated_at_home_fraction() {
        let homes: Vec<usize> = (0..60).map(|m| m % 4).collect();
        let t = generate_markov_hop_homed(4, &homes, 300, 0.5, 0.6, 7);
        let frac = at_home_fraction(&t, &homes);
        assert!(frac > 0.3, "at-home {frac}");
        // Uniform hopping for comparison sits near 1/4.
        let u = generate_markov_hop(4, 60, 300, 0.5, 8);
        let frac_u = at_home_fraction(&u, &homes);
        assert!(frac - frac_u > 0.08, "homed {frac} vs uniform {frac_u}");
    }
}
