//! # middle-mobility
//!
//! Mobility substrate for the MIDDLE (ICPP 2023) reproduction — a
//! stand-in for the ONE simulator the paper uses to generate device
//! traces.
//!
//! * [`geometry`]: the rectangular service area, edge sites and
//!   nearest-edge (Voronoi) attachment — the "device always connects to
//!   the nearest edge" rule of §3.2, Eq. 3.
//! * [`models`]: stationary, random-walk and random-waypoint movement.
//! * [`trace`]: per-step device→edge assignments, the Markov edge-hop
//!   generator with a controlled global mobility probability `P`
//!   (the knob of Figure 7), empirical-mobility measurement and
//!   import/export (JSON and a ONE-style report format).

pub mod geometry;
pub mod models;
pub mod stats;
pub mod trace;

pub use geometry::{Point, ServiceArea};
pub use models::{MobilityKind, MobilityModel};
pub use trace::{
    generate_geometric, generate_markov_hop, generate_markov_hop_homed, MarkovStreamSpec, Trace,
};
