//! Planar geometry: the service area, edge cells and nearest-edge
//! attachment.
//!
//! The paper's devices "always connect to the nearest edge" (Eq. 3).
//! Edges are laid out as sites on a rectangular service area; attachment
//! is nearest-site (a Voronoi partition). A near-square grid layout keeps
//! cells balanced, matching the base-station picture of Figure 4.

use serde::{Deserialize, Serialize};

/// A point in the 2-D service area.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal coordinate in metres.
    pub x: f64,
    /// Vertical coordinate in metres.
    pub y: f64,
}

impl Point {
    /// Creates a point.
    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    pub fn distance(&self, other: &Point) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// The rectangular service area with edge sites inside it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceArea {
    /// Area width in metres.
    pub width: f64,
    /// Area height in metres.
    pub height: f64,
    /// Edge server positions.
    pub edges: Vec<Point>,
}

impl ServiceArea {
    /// Creates a service area with explicit edge sites.
    ///
    /// # Panics
    /// Panics when dimensions are non-positive, no edges are given, or an
    /// edge lies outside the area.
    pub fn new(width: f64, height: f64, edges: Vec<Point>) -> Self {
        assert!(width > 0.0 && height > 0.0, "area must have positive size");
        assert!(!edges.is_empty(), "need at least one edge");
        for (i, e) in edges.iter().enumerate() {
            assert!(
                (0.0..=width).contains(&e.x) && (0.0..=height).contains(&e.y),
                "edge {i} at ({}, {}) outside {width}x{height} area",
                e.x,
                e.y
            );
        }
        ServiceArea {
            width,
            height,
            edges,
        }
    }

    /// Lays `n` edges out on a near-square grid over a `width × height`
    /// area, each at the centre of its grid cell.
    pub fn grid(width: f64, height: f64, n: usize) -> Self {
        assert!(n > 0, "need at least one edge");
        let cols = (n as f64).sqrt().ceil() as usize;
        let rows = n.div_ceil(cols);
        let (cw, ch) = (width / cols as f64, height / rows as f64);
        let mut edges = Vec::with_capacity(n);
        'outer: for r in 0..rows {
            for c in 0..cols {
                if edges.len() == n {
                    break 'outer;
                }
                edges.push(Point::new((c as f64 + 0.5) * cw, (r as f64 + 0.5) * ch));
            }
        }
        ServiceArea::new(width, height, edges)
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Index of the nearest edge to `p` (ties: lowest index).
    pub fn nearest_edge(&self, p: &Point) -> usize {
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for (i, e) in self.edges.iter().enumerate() {
            let d = e.distance(p);
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        best
    }

    /// Clamps a point into the area (used after a movement step).
    pub fn clamp(&self, p: Point) -> Point {
        Point::new(p.x.clamp(0.0, self.width), p.y.clamp(0.0, self.height))
    }

    /// True when `p` lies inside the area (inclusive borders).
    pub fn contains(&self, p: &Point) -> bool {
        (0.0..=self.width).contains(&p.x) && (0.0..=self.height).contains(&p.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn grid_places_all_edges_inside() {
        for n in [1usize, 2, 4, 7, 10, 16] {
            let area = ServiceArea::grid(1000.0, 800.0, n);
            assert_eq!(area.num_edges(), n);
            for e in &area.edges {
                assert!(area.contains(e));
            }
        }
    }

    #[test]
    fn grid_edges_are_distinct() {
        let area = ServiceArea::grid(100.0, 100.0, 10);
        for i in 0..10 {
            for j in (i + 1)..10 {
                assert!(area.edges[i].distance(&area.edges[j]) > 1.0);
            }
        }
    }

    #[test]
    fn nearest_edge_partition_is_voronoi() {
        let area = ServiceArea::new(10.0, 10.0, vec![Point::new(2.0, 5.0), Point::new(8.0, 5.0)]);
        assert_eq!(area.nearest_edge(&Point::new(0.0, 5.0)), 0);
        assert_eq!(area.nearest_edge(&Point::new(9.9, 5.0)), 1);
        // Exactly on the bisector: lowest index wins.
        assert_eq!(area.nearest_edge(&Point::new(5.0, 5.0)), 0);
    }

    #[test]
    fn clamp_confines_points() {
        let area = ServiceArea::grid(10.0, 10.0, 1);
        let p = area.clamp(Point::new(-3.0, 42.0));
        assert_eq!(p, Point::new(0.0, 10.0));
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn edge_outside_area_panics() {
        ServiceArea::new(10.0, 10.0, vec![Point::new(11.0, 5.0)]);
    }
}
