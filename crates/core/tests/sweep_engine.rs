//! Gates for the Result-based construction path and the sweep engine:
//! typed builder errors, checkpoint→resume bitwise equivalence (with
//! and without the fault plane), sweep determinism across thread
//! counts, cache-hit/cold-build bitwise identity, and killed-then-
//! resumed sweeps reproducing the uninterrupted report.

use middle_core::{
    run_sweep, Algorithm, DelayModel, DropoutModel, FaultConfig, ScenarioGrid, SimConfig, SimError,
    Simulation, SimulationBuilder, StepMode, SweepOptions,
};
use middle_data::Task;
use middle_mobility::Trace;
use middle_nn::params::flatten;
use std::path::PathBuf;

fn tiny() -> SimConfig {
    let mut cfg = SimConfig::tiny(Task::Mnist, Algorithm::middle());
    cfg.steps = 6;
    cfg.eval_interval = 2;
    cfg.cloud_interval = 3;
    cfg
}

fn faulty() -> SimConfig {
    let mut cfg = tiny();
    cfg.faults = FaultConfig {
        dropout: DropoutModel::Iid { p: 0.2 },
        straggler_delay: DelayModel::Exponential { mean_s: 0.6 },
        deadline_s: 1.0,
        upload_loss: 0.3,
        upload_retries: 1,
        wan_outage: 0.3,
    };
    cfg
}

/// Fresh per-test scratch directory under the system tmpdir.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("middle_sweep_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn bits(sim: &Simulation) -> Vec<u32> {
    let mut out: Vec<u32> = flatten(sim.cloud_model())
        .iter()
        .map(|v| v.to_bits())
        .collect();
    for e in sim.edges() {
        out.extend(flatten(&e.model).iter().map(|v| v.to_bits()));
    }
    for d in sim.devices() {
        out.extend(flatten(&d.model).iter().map(|v| v.to_bits()));
    }
    out
}

// ---------------------------------------------------------------- errors

#[test]
fn builder_rejects_k_larger_than_the_device_population() {
    let mut cfg = tiny();
    cfg.devices_per_edge = cfg.num_devices + 1;
    let err = match SimulationBuilder::new(cfg).build() {
        Ok(_) => panic!("oversized K must not build"),
        Err(e) => e,
    };
    assert!(matches!(err, SimError::InvalidConfig { .. }));
    assert!(err.to_string().contains("exceeds num_devices"), "{err}");
}

#[test]
fn builder_rejects_an_empty_trace() {
    // `Trace::new` itself refuses zero steps, so the emptiest
    // constructible trace carries no devices — the builder must turn
    // that into a typed mismatch, not a panic.
    let cfg = tiny();
    let empty = Trace::new(cfg.num_edges, vec![Vec::new()]);
    let err = match SimulationBuilder::new(cfg).with_trace(empty).build() {
        Ok(_) => panic!("empty trace must not build"),
        Err(e) => e,
    };
    assert!(matches!(err, SimError::TraceMismatch { .. }));
    assert!(err.to_string().contains("device count"), "{err}");
}

#[test]
fn builder_rejects_zero_edges() {
    let mut cfg = tiny();
    cfg.num_edges = 0;
    let err = match SimulationBuilder::new(cfg).build() {
        Ok(_) => panic!("zero edges must not build"),
        Err(e) => e,
    };
    assert!(matches!(err, SimError::InvalidConfig { .. }));
    assert!(err.to_string().contains("num_edges"), "{err}");
}

// ---------------------------------------------- checkpoint/resume bitwise

fn resume_matches_straight_run(cfg: SimConfig) {
    // Straight run.
    let mut straight = SimulationBuilder::new(cfg.clone()).build().unwrap();
    let reference = straight.run();

    // Interrupted run: stop mid-horizon, serialise, restore into a
    // *fresh* simulation (JSON round trip, as a killed process would),
    // finish there.
    let mut first = SimulationBuilder::new(cfg.clone()).build().unwrap();
    for _ in 0..3 {
        first.tick(StepMode::Fast);
    }
    let json = first.checkpoint().to_json();
    drop(first);

    let ck = middle_core::SimCheckpoint::from_json(&json).expect("checkpoint parses");
    let mut second = SimulationBuilder::new(cfg).build().unwrap();
    second.restore(&ck).expect("checkpoint applies");
    assert_eq!(second.next_step(), 3);
    let resumed = second.run();

    // Bitwise identity on every evaluation point and the final state.
    assert_eq!(reference.points.len(), resumed.points.len());
    for (a, b) in reference.points.iter().zip(&resumed.points) {
        assert_eq!(a.step, b.step);
        assert_eq!(a.global_accuracy.to_bits(), b.global_accuracy.to_bits());
        assert_eq!(a.global_loss.to_bits(), b.global_loss.to_bits());
    }
    assert_eq!(reference.comm, resumed.comm);
    assert_eq!(reference.syncs, resumed.syncs);
    assert_eq!(reference.active_steps, resumed.active_steps);
}

#[test]
fn checkpoint_resume_is_bitwise_identical() {
    resume_matches_straight_run(tiny());
}

#[test]
fn checkpoint_resume_is_bitwise_identical_with_faults_enabled() {
    // Faults exercise the extra persisted state: fault RNG, per-device
    // down states, and the pending stale-upload queue.
    resume_matches_straight_run(faulty());
}

#[test]
fn checkpoint_restores_full_model_state_mid_run() {
    let cfg = tiny();
    let mut a = SimulationBuilder::new(cfg.clone()).build().unwrap();
    for _ in 0..4 {
        a.tick(StepMode::Fast);
    }
    let ck = a.checkpoint();

    let mut b = SimulationBuilder::new(cfg).build().unwrap();
    b.restore(&ck).unwrap();
    assert_eq!(bits(&a), bits(&b));

    // And both advance identically from there.
    a.tick(StepMode::Fast);
    b.tick(StepMode::Fast);
    assert_eq!(bits(&a), bits(&b));
}

#[test]
fn checkpoint_restore_over_live_scratch_is_bitwise_identical() {
    // Restoring into a simulation whose devices carry warm training
    // scratch (grown workspaces, cached optimizers, dirty batch buffers
    // from a *different* trajectory) must behave exactly like restoring
    // into a fresh build: the scratch holds no semantic state, so it is
    // deliberately absent from checkpoints.
    let cfg = tiny();
    let mut a = SimulationBuilder::new(cfg.clone()).build().unwrap();
    for _ in 0..3 {
        a.tick(StepMode::Fast);
    }
    let ck = a.checkpoint();

    let mut fresh = SimulationBuilder::new(cfg.clone()).build().unwrap();
    fresh.restore(&ck).unwrap();

    let mut live = SimulationBuilder::new(cfg).build().unwrap();
    for _ in 0..5 {
        live.tick(StepMode::Fast);
    }
    live.restore(&ck).unwrap();

    assert_eq!(bits(&fresh), bits(&live));
    for _ in 0..3 {
        fresh.tick(StepMode::Fast);
        live.tick(StepMode::Fast);
        assert_eq!(bits(&fresh), bits(&live));
    }
}

#[test]
fn checkpoint_rejects_a_different_config() {
    let mut a = SimulationBuilder::new(tiny()).build().unwrap();
    a.tick(StepMode::Fast);
    let ck = a.checkpoint();

    let mut other = tiny();
    other.seed = 99;
    let mut b = SimulationBuilder::new(other).build().unwrap();
    let err = b.restore(&ck).unwrap_err();
    assert!(matches!(err, SimError::CheckpointMismatch { .. }));
}

// ------------------------------------------------------ sweep determinism

fn grid() -> ScenarioGrid {
    ScenarioGrid::new(tiny())
        .with_selection_sizes([2usize, 3])
        .with_seeds([7u64, 8])
}

#[test]
fn sweep_results_are_independent_of_thread_count() {
    let one = run_sweep(
        &grid(),
        &SweepOptions {
            threads: 1,
            ..Default::default()
        },
    )
    .unwrap();
    let four = run_sweep(
        &grid(),
        &SweepOptions {
            threads: 4,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(one.complete && four.complete);
    assert_eq!(one.deterministic_json(), four.deterministic_json());
}

#[test]
fn cache_hit_builds_bitwise_identical_to_cold_builds() {
    let cfg = tiny();
    let cache = middle_core::InputCache::new();
    // Warm the cache with a config differing only in run-only fields.
    let mut warm = cfg.clone();
    warm.devices_per_edge = 3;
    let _ = SimulationBuilder::new(warm)
        .with_shared_inputs(std::sync::Arc::clone(&cache))
        .build()
        .unwrap();
    assert_eq!(cache.misses(), 1);

    let mut cached = SimulationBuilder::new(cfg.clone())
        .with_shared_inputs(cache.clone())
        .build()
        .unwrap();
    assert_eq!(cache.hits(), 1, "second build must hit the cache");
    let mut cold = SimulationBuilder::new(cfg).build().unwrap();

    assert_eq!(bits(&cached), bits(&cold));
    let a = cached.run();
    let b = cold.run();
    for (pa, pb) in a.points.iter().zip(&b.points) {
        assert_eq!(pa.global_accuracy.to_bits(), pb.global_accuracy.to_bits());
    }
    assert_eq!(a.comm, b.comm);
}

// --------------------------------------------------- killed-then-resumed

#[test]
fn interrupted_sweep_resumes_to_the_uninterrupted_report() {
    let dir = scratch("resume");

    // The uninterrupted reference (no persistence).
    let reference = run_sweep(&grid(), &SweepOptions::default()).unwrap();

    // "Kill" after two scenarios: the limit stops the first invocation
    // early, exactly like a process death after two completions.
    let partial = run_sweep(
        &grid(),
        &SweepOptions {
            checkpoint_dir: Some(dir.clone()),
            checkpoint_every: 2,
            limit: Some(2),
            ..Default::default()
        },
    )
    .unwrap();
    assert!(!partial.complete);
    assert_eq!(partial.scenarios.len(), 2);
    assert!(dir.join("sweep_state.json").exists());

    // Second invocation picks up the ledger and finishes the rest.
    let resumed = run_sweep(
        &grid(),
        &SweepOptions {
            checkpoint_dir: Some(dir.clone()),
            checkpoint_every: 2,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(resumed.complete);
    assert_eq!(
        resumed.deterministic_json(),
        reference.deterministic_json(),
        "resumed sweep must reproduce the uninterrupted report bitwise"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mid_scenario_checkpoints_resume_bitwise_too() {
    // Force mid-run snapshots every step, interrupt a faulty scenario
    // mid-flight by restoring its snapshot into a fresh run, and check
    // the sweep machinery end-to-end with the fault plane on.
    let dir = scratch("midrun");
    let grid = ScenarioGrid::new(faulty()).with_seeds([7u64, 8]);
    let reference = run_sweep(&grid, &SweepOptions::default()).unwrap();

    let partial = run_sweep(
        &grid,
        &SweepOptions {
            checkpoint_dir: Some(dir.clone()),
            checkpoint_every: 1,
            limit: Some(1),
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(partial.scenarios.len(), 1);

    let resumed = run_sweep(
        &grid,
        &SweepOptions {
            checkpoint_dir: Some(dir.clone()),
            checkpoint_every: 1,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(resumed.complete);
    assert_eq!(resumed.deterministic_json(), reference.deterministic_json());
    let _ = std::fs::remove_dir_all(&dir);
}
