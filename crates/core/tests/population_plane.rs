//! Equivalence gates for the lazy population plane: a lazy-mode
//! simulation (stubs + version table + streaming trace) must reproduce
//! the dense simulation bit for bit — every evaluation point, the full
//! communication ledger, and the effective parameters of every device,
//! under every fault model and with compression on — while keeping the
//! number of resident replicas bounded by the active set, not the
//! population.

use middle_core::checkpoint::DeviceSlotCheckpoint;
use middle_core::{
    Algorithm, DelayModel, DeviceRef, DropoutModel, PopulationMode, RunRecord, SimConfig,
    Simulation, SimulationBuilder, StepMode,
};
use middle_data::Task;
use middle_nn::params::flatten;

mod common;
use common::{assert_records_equal, bits};

fn built(cfg: SimConfig) -> Simulation {
    SimulationBuilder::new(cfg).build().expect("valid config")
}

/// 20 steps with an intermediate cloud sync cadence, so runs cross
/// several broadcast generations and end on a sync step (every stub
/// retargeted at least four times).
fn base_config() -> SimConfig {
    let mut cfg = SimConfig::tiny(Task::Mnist, Algorithm::middle());
    cfg.steps = 20;
    cfg.cloud_interval = 4;
    cfg.eval_interval = 4;
    cfg
}

fn lazy(mut cfg: SimConfig) -> SimConfig {
    cfg.population = PopulationMode::Lazy;
    cfg
}

/// The parameters device `m` would train from if selected next step:
/// its replica's flat when resident, its version slot's flat when
/// virtualized. In dense mode this is just the device's flat.
fn effective_device_bits(sim: &Simulation, m: usize) -> Vec<u32> {
    match sim.population().view(m) {
        DeviceRef::Resident(dev) => bits(dev.flat()),
        DeviceRef::Stub(v) => bits(sim.population().version_flat(v)),
    }
}

/// Runs `cfg` to completion and fingerprints everything the plane must
/// preserve: the run record's points/ledger/counters plus the bits of
/// every model in the system.
fn fingerprint(cfg: &SimConfig, mode: StepMode) -> (RunRecord, Vec<Vec<u32>>) {
    let mut sim = built(cfg.clone());
    let record = sim.run_with(mode);
    let mut models = vec![bits(&flatten(sim.cloud_model()))];
    models.extend(sim.edges().iter().map(|e| bits(&flatten(&e.model))));
    models.extend((0..cfg.num_devices).map(|m| effective_device_bits(&sim, m)));
    (record, models)
}

fn assert_modes_equivalent(cfg: SimConfig, mode: StepMode) {
    let (dense_record, dense_models) = fingerprint(&cfg, mode);
    let (lazy_record, lazy_models) = fingerprint(&lazy(cfg), mode);
    assert_records_equal(&dense_record, &lazy_record);
    assert_eq!(dense_models, lazy_models);
}

/// Clean run: lazy == dense bitwise in the fast path.
#[test]
fn lazy_matches_dense_clean() {
    assert_modes_equivalent(base_config(), StepMode::Fast);
}

/// Clean run: lazy == dense bitwise in the reference path too (the
/// reference broadcast keeps its clone-based oracle only when dense).
#[test]
fn lazy_matches_dense_clean_reference() {
    assert_modes_equivalent(base_config(), StepMode::Reference);
}

/// Bursty Markov dropout exercises empty cohorts and the availability
/// RNG draw order over index-built candidate lists.
#[test]
fn lazy_matches_dense_under_dropout() {
    let mut cfg = base_config();
    cfg.faults.dropout = DropoutModel::Markov {
        p_fail: 0.3,
        p_recover: 0.5,
    };
    assert_modes_equivalent(cfg, StepMode::Fast);
}

/// Stragglers + deadline misses + upload loss exercise the stale-merge
/// queue and the retry ledger against resident participants.
#[test]
fn lazy_matches_dense_under_stragglers_and_loss() {
    let mut cfg = base_config();
    cfg.faults.straggler_delay = DelayModel::Exponential { mean_s: 1.0 };
    cfg.faults.deadline_s = 1.2;
    cfg.faults.upload_loss = 0.2;
    cfg.faults.upload_retries = 2;
    assert_modes_equivalent(cfg, StepMode::Fast);
}

/// WAN outages exercise the partial broadcast: only devices at reached
/// edges retarget to the new version, the rest keep the old one (which
/// must stay live in the version table).
#[test]
fn lazy_matches_dense_under_wan_outage() {
    let mut cfg = base_config();
    cfg.faults.wan_outage = 0.5;
    assert_modes_equivalent(cfg, StepMode::Fast);
    let mut ref_cfg = base_config();
    ref_cfg.faults.wan_outage = 0.5;
    assert_modes_equivalent(ref_cfg, StepMode::Reference);
}

/// Lossy compression exercises the error-feedback residual path, whose
/// per-device residual state indexes by device id, not residency.
#[test]
fn lazy_matches_dense_with_compression() {
    let mut cfg = base_config();
    cfg.compression.enabled = true;
    cfg.compression.quantize_bits = 8;
    cfg.compression.top_frac = 0.5;
    assert_modes_equivalent(cfg, StepMode::Fast);
}

/// A mid-run lazy checkpoint (live stubs, multiple live versions,
/// resident participants) restores into a fresh lazy simulation and
/// finishes bitwise-identically to the uninterrupted run.
#[test]
fn lazy_checkpoint_resumes_bitwise_mid_run() {
    // 24 devices over 2 edges: at most K*E*T_c = 16 can be resident, so
    // live stubs are guaranteed at the checkpoint cut.
    let mut cfg = lazy(base_config());
    cfg.num_devices = 24;

    let mut uninterrupted = built(cfg.clone());
    for t in 0..cfg.steps {
        uninterrupted.step(t);
    }

    // Stop two steps past a sync: most devices are stubs of the last
    // broadcast, the last two cohorts are resident replicas.
    let mut first_half = built(cfg.clone());
    for t in 0..10 {
        first_half.step(t);
    }
    assert!(first_half.population().resident_count() > 0);
    let ck = first_half.checkpoint();
    let pck = ck.population.as_ref().expect("lazy checkpoint block");
    assert!(ck.devices.is_empty());
    assert!(pck
        .devices
        .iter()
        .any(|s| matches!(s, DeviceSlotCheckpoint::Resident { .. })));
    assert!(pck
        .devices
        .iter()
        .any(|s| matches!(s, DeviceSlotCheckpoint::Stub { .. })));

    // Round-trip through JSON so float formatting is part of the gate.
    let ck = middle_core::SimCheckpoint::from_json(&ck.to_json()).expect("round trip");
    let mut resumed = built(cfg.clone());
    resumed.restore(&ck).expect("restore");
    for t in 10..cfg.steps {
        resumed.step(t);
    }

    assert_eq!(
        bits(&flatten(uninterrupted.cloud_model())),
        bits(&flatten(resumed.cloud_model()))
    );
    for (a, b) in uninterrupted.edges().iter().zip(resumed.edges()) {
        assert_eq!(bits(&flatten(&a.model)), bits(&flatten(&b.model)));
        assert_eq!(a.window_samples.to_bits(), b.window_samples.to_bits());
    }
    for m in 0..cfg.num_devices {
        assert_eq!(
            effective_device_bits(&uninterrupted, m),
            effective_device_bits(&resumed, m),
            "device {m}"
        );
    }
    assert_eq!(uninterrupted.comm_stats(), resumed.comm_stats());
    assert_eq!(uninterrupted.syncs(), resumed.syncs());
    assert_eq!(uninterrupted.active_steps(), resumed.active_steps());
}

/// A dense checkpoint carries no population block (its serialisation
/// stays byte-identical to pre-plane checkpoints), and restoring a
/// checkpoint without one into a lazy simulation is rejected.
#[test]
fn checkpoint_population_block_matches_mode() {
    let dense_cfg = base_config();
    let mut dense = built(dense_cfg.clone());
    for t in 0..5 {
        dense.step(t);
    }
    let dense_ck = dense.checkpoint();
    assert!(dense_ck.population.is_none());
    assert_eq!(dense_ck.devices.len(), dense_cfg.num_devices);

    let mut stripped = built(lazy(base_config())).checkpoint();
    stripped.population = None;
    let mut lazy_sim = built(lazy(base_config()));
    let err = lazy_sim.restore(&stripped).expect_err("must reject");
    assert!(err.to_string().contains("population"), "{err}");
}

/// Residency stays bounded by the active set: at most K·E new replicas
/// per step between broadcasts, and a full broadcast demotes everyone.
/// With 64 devices this run must never materialise more than half of
/// them, and ends (on a sync step) with zero residents.
#[test]
fn lazy_residency_bounded_by_active_set() {
    let mut cfg = lazy(base_config());
    cfg.num_devices = 64;
    cfg.num_edges = 4;
    cfg.devices_per_edge = 2;
    let mut sim = built(cfg.clone());
    for t in 0..cfg.steps {
        sim.step(t);
    }
    let cap = cfg.devices_per_edge * cfg.num_edges * cfg.cloud_interval;
    assert!(
        sim.population().peak_resident() <= cap,
        "peak {} exceeds K*E*interval {}",
        sim.population().peak_resident(),
        cap
    );
    assert!(sim.population().peak_resident() < cfg.num_devices);
    assert_eq!(
        sim.population().resident_count(),
        0,
        "final sync step must demote every replica"
    );
}
