//! Integration gates for the fault-injection plane: recovery semantics
//! (retry accounting, deadline exclusion + stale merges, empty-cohort
//! degradation, WAN outages) on seeded scenarios, plus the two
//! bitwise-identity properties the plane must preserve — all-zero fault
//! rates reproduce the fault-free trace, and `step` / `step_reference`
//! stay interchangeable with faults enabled.

use middle_core::{
    Algorithm, DelayModel, DropoutModel, FaultConfig, SimConfig, Simulation, SimulationBuilder,
    StepCounters, StepMode,
};
use middle_data::Task;
use middle_nn::params::flatten;
use proptest::prelude::*;

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}
fn built(cfg: SimConfig) -> Simulation {
    SimulationBuilder::new(cfg).build().expect("valid config")
}

fn base_config() -> SimConfig {
    let mut cfg = SimConfig::tiny(Task::Mnist, Algorithm::middle());
    cfg.steps = 12;
    cfg.cloud_interval = 4;
    cfg.eval_interval = 4;
    cfg.telemetry = true;
    cfg
}

/// Full end-state fingerprint of a run: every model's parameter bits
/// plus the communication ledger.
fn run_fingerprint(cfg: &SimConfig) -> (Vec<Vec<u32>>, middle_core::CommStats, u64, u64) {
    let mut sim = built(cfg.clone());
    for t in 0..cfg.steps {
        sim.step(t);
    }
    let mut models = vec![bits(&flatten(sim.cloud_model()))];
    models.extend(sim.edges().iter().map(|e| bits(&flatten(&e.model))));
    models.extend(sim.devices().iter().map(|d| bits(&flatten(&d.model))));
    (models, *sim.comm_stats(), sim.syncs(), sim.active_steps())
}

fn run_counters(cfg: &SimConfig) -> (StepCounters, middle_core::CommStats, u64) {
    let mut sim = built(cfg.clone());
    for t in 0..cfg.steps {
        sim.step(t);
    }
    let report = sim.telemetry().report().expect("telemetry enabled");
    (report.counters, *sim.comm_stats(), sim.syncs())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any `FaultConfig` whose rates are all zero — regardless of which
    /// models are nominally "on" and how the deadline/retry knobs are
    /// set — reproduces the fault-free trace bitwise. Zero-rate models
    /// still draw from the fault RNG stream, but that stream is
    /// dedicated (`derive_seed(seed, 9)`), so no other randomness
    /// shifts and no decision ever goes the faulty way.
    #[test]
    fn zero_rate_faults_reproduce_the_fault_free_trace_bitwise(
        dropout_kind in 0usize..3,
        recover in 0.1f64..1.0,
        deadline_s in 0.5f64..4.0,
        retries in 0u32..6,
        with_delay in 0usize..2,
    ) {
        let mut clean = base_config();
        clean.steps = 8;
        let mut faulty = clean.clone();
        faulty.faults = FaultConfig {
            dropout: match dropout_kind {
                0 => DropoutModel::None,
                1 => DropoutModel::Iid { p: 0.0 },
                _ => DropoutModel::Markov { p_fail: 0.0, p_recover: recover },
            },
            // A zero-width delay at 0 s always meets any positive
            // deadline, so the straggler model is active but harmless.
            straggler_delay: if with_delay == 1 {
                DelayModel::Uniform { min_s: 0.0, max_s: 0.0 }
            } else {
                DelayModel::None
            },
            deadline_s,
            upload_loss: 0.0,
            upload_retries: retries,
            wan_outage: 0.0,
        };
        let (m_clean, comm_clean, syncs_clean, active_clean) = run_fingerprint(&clean);
        let (m_faulty, comm_faulty, syncs_faulty, active_faulty) = run_fingerprint(&faulty);
        prop_assert_eq!(m_clean, m_faulty);
        prop_assert_eq!(comm_clean, comm_faulty);
        prop_assert_eq!(syncs_clean, syncs_faulty);
        prop_assert_eq!(active_clean, active_faulty);
    }

    /// Dropout at rate 1.0 takes every device down every step: zero
    /// wireless transfers in either direction and bitwise-untouched
    /// edge and cloud models.
    #[test]
    fn total_dropout_moves_nothing_and_touches_no_model(seed in 0u64..200) {
        let mut cfg = base_config();
        cfg.steps = 6;
        cfg.seed = seed;
        cfg.faults.dropout = DropoutModel::Iid { p: 1.0 };
        let mut sim = built(cfg.clone());
        let init = bits(&flatten(sim.cloud_model()));
        for t in 0..cfg.steps {
            sim.step(t);
        }
        let comm = sim.comm_stats();
        prop_assert_eq!(comm.device_to_edge, 0);
        prop_assert_eq!(comm.edge_to_device, 0);
        prop_assert_eq!(comm.lost_uploads, 0);
        prop_assert_eq!(sim.active_steps(), 0);
        for e in sim.edges() {
            prop_assert_eq!(bits(&flatten(&e.model)), init.clone());
        }
        // The cloud still syncs on schedule, but over untouched edges.
        prop_assert_eq!(bits(&flatten(sim.cloud_model())), init);
        let c = sim.telemetry().report().unwrap().counters;
        prop_assert!(c.dropout_drops > 0);
        prop_assert_eq!(c.selected, 0);
    }
}

/// Upload loss with bounded retries: every transmission attempt lands
/// in `CommStats::device_to_edge`, retransmissions and abandoned
/// uploads are ledgered separately, backoff slots accumulate, and the
/// telemetry counters mirror the comm ledger exactly.
#[test]
fn retry_accounting_reconciles_with_comm_stats() {
    let mut cfg = base_config();
    cfg.faults.upload_loss = 0.45;
    cfg.faults.upload_retries = 2;
    let (c, comm, _) = run_counters(&cfg);

    assert!(c.selected > 0);
    assert!(
        c.upload_retransmissions > 0,
        "45% loss over {} uploads should retransmit",
        c.selected
    );
    assert!(c.lost_uploads > 0, "some upload should exhaust 2 retries");
    assert!(comm.retry_backoff_slots > 0);
    // Telemetry mirrors the comm ledger exactly.
    assert_eq!(c.uploads, comm.device_to_edge);
    assert_eq!(c.upload_retransmissions, comm.upload_retransmissions);
    assert_eq!(c.lost_uploads, comm.lost_uploads);
    // Every selected device attempted once, plus the retransmissions
    // (no straggler model, so no stale uploads in the ledger).
    assert_eq!(comm.device_to_edge, c.selected + c.upload_retransmissions);
    assert_eq!(comm.stale_uploads, 0);
    // Bounded retry: at most 1 + upload_retries attempts per upload.
    assert!(c.upload_retransmissions <= c.selected * 2);
    // Backoff is 1 slot for retry 1, +2 for retry 2.
    assert!(comm.retry_backoff_slots <= c.selected * 3);
}

/// Deadline exclusion + stale-merge recovery: with every upload late,
/// edges aggregate nothing in-step (graceful empty-cohort degradation,
/// `w_n` carried forward) and each late update lands next step as a
/// similarity-weighted stale merge that does move the edge model.
#[test]
fn deadline_misses_become_stale_merges_next_step() {
    let mut cfg = base_config();
    cfg.faults.straggler_delay = DelayModel::Uniform {
        min_s: 2.0,
        max_s: 2.0,
    };
    cfg.faults.deadline_s = 1.0;
    let mut sim = built(cfg.clone());
    let init = bits(&flatten(sim.cloud_model()));

    // Step 0: everyone trains, everyone misses the deadline — edge
    // models must be carried forward untouched.
    sim.step(0);
    for e in sim.edges() {
        assert_eq!(
            bits(&flatten(&e.model)),
            init.clone(),
            "edge model must carry forward when its whole cohort is late"
        );
    }
    assert_eq!(sim.comm_stats().device_to_edge, 0, "no upload landed yet");
    let pending = sim.fault_plane().pending().len();
    assert!(pending > 0, "late uploads queued for stale merge");

    // Step 1: the stale merges land before selection and move the edges.
    sim.step(1);
    let comm = sim.comm_stats();
    assert_eq!(comm.stale_uploads, pending as u64);
    assert_eq!(
        comm.device_to_edge, pending as u64,
        "stale uploads are the only deliveries so far"
    );
    let moved = sim.edges().iter().any(|e| bits(&flatten(&e.model)) != init);
    assert!(moved, "a stale merge must blend into some edge model");

    for t in 2..cfg.steps {
        sim.step(t);
    }
    let c = sim.telemetry().report().unwrap().counters;
    assert_eq!(c.deadline_misses, c.selected, "every upload was late");
    assert!(c.empty_cohorts > 0, "all-late cohorts degrade gracefully");
    let comm = sim.comm_stats();
    // Each deadline miss is merged exactly one step later; only the
    // final step's misses are still pending.
    assert_eq!(
        c.stale_merges,
        c.deadline_misses - sim.fault_plane().pending().len() as u64
    );
    assert_eq!(comm.stale_uploads, c.stale_merges);
    assert_eq!(c.uploads, comm.device_to_edge);
}

/// A total WAN outage suppresses every cloud sync: the cloud model
/// never changes, nothing crosses the WAN, and edge sample windows keep
/// accumulating for the sync that never comes.
#[test]
fn total_wan_outage_suppresses_every_sync() {
    let mut cfg = base_config();
    cfg.faults.wan_outage = 1.0;
    let mut sim = built(cfg.clone());
    let init = bits(&flatten(sim.cloud_model()));
    for t in 0..cfg.steps {
        sim.step(t);
    }
    assert_eq!(sim.syncs(), 0);
    let comm = sim.comm_stats();
    assert_eq!(comm.edge_to_cloud, 0);
    assert_eq!(comm.cloud_to_edge, 0);
    assert_eq!(comm.cloud_to_device, 0);
    assert_eq!(bits(&flatten(sim.cloud_model())), init);
    let c = sim.telemetry().report().unwrap().counters;
    // Every scheduled sync drew one outage per edge: 3 syncs × 2 edges.
    assert_eq!(
        c.wan_outages,
        (cfg.steps / cfg.cloud_interval * cfg.num_edges) as u64
    );
    assert!(
        sim.edges().iter().any(|e| e.window_samples > 0.0),
        "windows accumulate awaiting a successful sync"
    );
}

/// Partial WAN outages: per-edge links fail independently, the sync
/// proceeds over the surviving edges, and the WAN ledger reconciles —
/// every scheduled sync accounts each edge as either an upload or an
/// outage.
#[test]
fn partial_wan_outage_syncs_over_surviving_edges() {
    let mut cfg = base_config();
    cfg.steps = 24;
    cfg.faults.wan_outage = 0.5;
    let (c, comm, syncs) = run_counters(&cfg);
    let attempts = (cfg.steps / cfg.cloud_interval * cfg.num_edges) as u64;
    assert_eq!(comm.edge_to_cloud + c.wan_outages, attempts);
    assert_eq!(comm.edge_to_cloud, comm.cloud_to_edge);
    assert!(c.wan_outages > 0, "seeded run should hit some outage");
    assert!(syncs > 0, "seeded run should complete some sync");
    assert!(
        comm.cloud_to_device <= syncs * cfg.num_devices as u64,
        "devices under a down edge miss the broadcast"
    );
}

/// The hot path and the clone-based reference stay bitwise
/// interchangeable with every failure model enabled at once: both
/// consume the dedicated fault stream in the same order, step for step.
#[test]
fn faulty_trace_is_bitwise_identical_to_reference() {
    let mut cfg = base_config();
    cfg.telemetry = false;
    cfg.faults = FaultConfig {
        dropout: DropoutModel::Markov {
            p_fail: 0.2,
            p_recover: 0.5,
        },
        straggler_delay: DelayModel::Exponential { mean_s: 0.8 },
        deadline_s: 1.0,
        upload_loss: 0.3,
        upload_retries: 2,
        wan_outage: 0.4,
    };
    let mut fast = built(cfg.clone());
    let mut slow = built(cfg.clone());
    for t in 0..cfg.steps {
        fast.step(t);
        slow.advance(t, StepMode::Reference);
        assert_eq!(
            bits(&flatten(fast.cloud_model())),
            bits(&flatten(slow.cloud_model())),
            "cloud diverged at step {t}"
        );
        for (n, (ef, es)) in fast.edges().iter().zip(slow.edges()).enumerate() {
            assert_eq!(
                bits(&flatten(&ef.model)),
                bits(&flatten(&es.model)),
                "edge {n} diverged at step {t}"
            );
            assert_eq!(ef.window_samples.to_bits(), es.window_samples.to_bits());
        }
        for (df, ds) in fast.devices().iter().zip(slow.devices()) {
            assert_eq!(
                bits(&flatten(&df.model)),
                bits(&flatten(&ds.model)),
                "device {} diverged at step {t}",
                df.id
            );
        }
        assert_eq!(
            fast.fault_plane().pending().len(),
            slow.fault_plane().pending().len()
        );
    }
    assert_eq!(fast.comm_stats(), slow.comm_stats());
    assert_eq!(fast.syncs(), slow.syncs());
    assert_eq!(fast.active_steps(), slow.active_steps());
}

/// Markov (sticky) dropout produces multi-step outages for the same
/// device — the bursty churn i.i.d. dropout cannot express — and the
/// run survives with sensible accounting.
#[test]
fn sticky_dropout_runs_with_consistent_accounting() {
    let mut cfg = base_config();
    cfg.steps = 16;
    cfg.faults.dropout = DropoutModel::Markov {
        p_fail: 0.4,
        p_recover: 0.3,
    };
    let (c, comm, _) = run_counters(&cfg);
    assert!(c.dropout_drops > 0, "sticky chain should take devices down");
    assert!(c.selected > 0, "some device must still participate");
    assert_eq!(c.uploads, comm.device_to_edge);
    assert_eq!(c.downloads, comm.edge_to_device);
    // Dropout filters candidates before selection, so the selected
    // count bounds every downstream ledger.
    assert!(c.selected <= c.candidates_seen - c.dropout_drops);
}
