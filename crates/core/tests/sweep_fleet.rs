//! Gates for the multi-process fleet layer behind `middle-sweepd`:
//! lease expiry and reclamation, duplicate-claim rejection, a worker
//! killed mid-shard resuming from its checkpoint, N-worker fleets
//! matching the single-process sweep bitwise, coordinator rebuilds
//! from the JSONL streams alone, and corrupt-ledger quarantine.
//!
//! Workers here run as threads of one process — `run_fleet_worker`
//! talks only through the shared ledger directory, so thread-vs-
//! process is invisible to the protocol, and the deterministic kill
//! switch ([`FleetOptions::kill_after_checkpoints`]) reproduces a
//! SIGKILL (leases stay unreleased, checkpoints stay on disk) without
//! real signals. Real-process coverage (spawn + SIGKILL) lives in
//! `scripts/fleet_smoke.sh` / the CI `fleet-smoke` job.

use middle_core::{
    fleet_status, run_fleet_coordinator, run_fleet_worker, run_sweep, Algorithm, FleetOptions,
    ScenarioGrid, SimConfig, StepMode, SweepOptions,
};
use middle_data::Task;
use std::path::PathBuf;
use std::thread;

fn tiny() -> SimConfig {
    let mut cfg = SimConfig::tiny(Task::Mnist, Algorithm::middle());
    cfg.steps = 6;
    cfg.eval_interval = 2;
    cfg.cloud_interval = 3;
    cfg
}

/// A 4-scenario grid (2 seeds × 2 sync periods) — small enough that
/// every test stays in tier-1 budget, big enough that shards move
/// between workers.
fn grid() -> ScenarioGrid {
    ScenarioGrid::new(tiny())
        .with_sync_periods([2usize, 3])
        .with_seeds([7u64, 8])
}

/// Fresh per-test scratch directory under the system tmpdir.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("middle_fleet_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Fast-expiring options for single-threaded tests: any lease left
/// behind by a killed worker is immediately reclaimable. Never use
/// with concurrent live workers — an instantly-expired lease lets
/// them reclaim each other's shards and duplicate work (the report
/// stays bitwise-correct via first-wins dedup, but counts inflate).
fn opts() -> FleetOptions {
    FleetOptions {
        step_mode: StepMode::Fast,
        lease_ms: 0,
        heartbeat_ms: 10_000,
        poll_ms: 1,
        checkpoint_every: 2,
        ..FleetOptions::default()
    }
}

/// Realistic lease window for concurrent live workers: long enough
/// that no live lease ever expires inside a test, so every scenario
/// runs exactly once.
fn live_opts() -> FleetOptions {
    FleetOptions {
        lease_ms: 600_000,
        ..opts()
    }
}

fn serial_reference() -> String {
    run_sweep(&grid(), &SweepOptions::default())
        .unwrap()
        .deterministic_json()
}

// ------------------------------------------------------ lease protocol

#[test]
fn killed_worker_leaves_lease_and_checkpoint_for_reclamation() {
    let dir = scratch("kill_reclaim");
    // Worker "victim" dies after its first mid-scenario checkpoint:
    // the lease stays in the ledger and the snapshot stays on disk.
    let killed = run_fleet_worker(
        &grid(),
        &dir,
        "victim",
        &FleetOptions {
            kill_after_checkpoints: Some(1),
            ..opts()
        },
    )
    .unwrap();
    assert!(killed.killed);
    assert_eq!(killed.completed, 0);
    let status = fleet_status(&dir).unwrap().expect("ledger must exist");
    assert_eq!(status.total, 4);
    assert_eq!(status.completed, 0);
    assert_eq!(status.leases.len(), 1, "kill must not release the lease");
    assert_eq!(status.leases[0].worker, "victim");
    assert!(
        dir.join("scenario_0.ckpt.json").exists(),
        "mid-scenario checkpoint must survive the kill"
    );
    // A second worker reclaims the expired lease (lease_ms = 0) and
    // finishes the grid; the merged report matches the uninterrupted
    // single-process sweep bitwise.
    let rescue = run_fleet_worker(&grid(), &dir, "rescue", &opts()).unwrap();
    assert_eq!(rescue.completed, 4);
    let status = fleet_status(&dir).unwrap().unwrap();
    assert_eq!(status.completed, 4);
    assert!(status.leases.is_empty(), "completion must release leases");
    let report = run_fleet_coordinator(&grid(), &dir, &opts()).unwrap();
    assert_eq!(report.deterministic_json(), serial_reference());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn live_leases_reject_duplicate_claims() {
    let dir = scratch("dup_claim");
    // Worker "holder" dies holding shard 0's lease. With a long expiry
    // the lease is still live, so a second worker must not touch that
    // shard: it completes the other three scenarios and then times out
    // polling.
    let holder = run_fleet_worker(
        &grid(),
        &dir,
        "holder",
        &FleetOptions {
            kill_after_checkpoints: Some(1),
            ..live_opts()
        },
    )
    .unwrap();
    assert!(holder.killed);
    // "other" can never exit on its own (the blocked shard keeps the
    // grid incomplete), so it runs detached with a wall cap while the
    // test polls the ledger for the steady state: three scenarios
    // done, the holder's lease still standing.
    let worker_grid = grid();
    let worker_dir = dir.clone();
    let other = thread::spawn(move || {
        run_fleet_worker(
            &worker_grid,
            &worker_dir,
            "other",
            &FleetOptions {
                max_wall_ms: Some(120_000),
                poll_ms: 250,
                ..live_opts()
            },
        )
    });
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(90);
    loop {
        let status = fleet_status(&dir).unwrap().unwrap();
        if status.completed == 3 {
            assert_eq!(status.leases.len(), 1);
            assert_eq!(status.leases[0].worker, "holder");
            break;
        }
        assert!(
            status.completed < 3,
            "live lease must block its shard (completed {})",
            status.completed
        );
        assert!(
            std::time::Instant::now() < deadline,
            "other worker never finished the three free scenarios"
        );
        thread::sleep(std::time::Duration::from_millis(50));
    }
    // Give the polling worker a moment to observe the still-blocked
    // shard, then confirm it never claimed it.
    thread::sleep(std::time::Duration::from_millis(200));
    let status = fleet_status(&dir).unwrap().unwrap();
    assert_eq!(status.completed, 3);
    assert_eq!(status.leases[0].worker, "holder");
    // The worker thread keeps polling until its wall cap; detach it —
    // the scratch directory stays on disk for it (tmpdir-scoped).
    drop(other);
}

// ------------------------------------------------- bitwise determinism

#[test]
fn three_worker_fleet_matches_the_serial_sweep_bitwise() {
    let dir = scratch("three_way");
    let reference = serial_reference();
    let workers: Vec<_> = (0..3)
        .map(|i| {
            let grid = grid();
            let dir = dir.clone();
            thread::spawn(move || {
                run_fleet_worker(&grid, &dir, &format!("w{i}"), &live_opts()).unwrap()
            })
        })
        .collect();
    let mut completed = 0;
    for handle in workers {
        completed += handle.join().unwrap().completed;
    }
    assert_eq!(completed, 4, "every scenario completes exactly once");
    let report = run_fleet_coordinator(&grid(), &dir, &live_opts()).unwrap();
    assert!(report.complete);
    assert_eq!(report.deterministic_json(), reference);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn kill_mid_shard_then_fleet_matches_serial_bitwise() {
    let dir = scratch("kill_mid_shard");
    let reference = serial_reference();
    // First worker dies mid-scenario after 2 checkpoints; the fleet
    // that follows resumes from the snapshot, and the final report is
    // still bitwise-identical to the uninterrupted sweep — checkpoint
    // restore is exact, not approximate.
    let victim = run_fleet_worker(
        &grid(),
        &dir,
        "victim",
        &FleetOptions {
            kill_after_checkpoints: Some(2),
            ..opts()
        },
    )
    .unwrap();
    assert!(victim.killed);
    let workers: Vec<_> = (0..2)
        .map(|i| {
            let grid = grid();
            let dir = dir.clone();
            thread::spawn(move || run_fleet_worker(&grid, &dir, &format!("w{i}"), &opts()).unwrap())
        })
        .collect();
    for handle in workers {
        handle.join().unwrap();
    }
    let report = run_fleet_coordinator(&grid(), &dir, &opts()).unwrap();
    assert_eq!(report.deterministic_json(), reference);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn coordinator_rebuilds_the_ledger_from_worker_streams() {
    let dir = scratch("jsonl_rebuild");
    let reference = serial_reference();
    let done = run_fleet_worker(&grid(), &dir, "solo", &opts()).unwrap();
    assert_eq!(done.completed, 4);
    // Deleting the ledger loses no completions: every record is also
    // in the worker's JSONL stream, and the coordinator's two-way
    // merge writes the healed ledger back.
    std::fs::remove_file(dir.join("sweep_state.json")).unwrap();
    let report = run_fleet_coordinator(&grid(), &dir, &opts()).unwrap();
    assert_eq!(report.deterministic_json(), reference);
    let status = fleet_status(&dir).unwrap().unwrap();
    assert_eq!(status.completed, 4, "coordinator must heal the ledger");
    let _ = std::fs::remove_dir_all(&dir);
}

// --------------------------------------------------- ledger corruption

#[test]
fn truncated_ledger_is_quarantined_and_the_sweep_recovers() {
    let dir = scratch("truncated");
    let reference = serial_reference();
    let first = run_fleet_worker(
        &grid(),
        &dir,
        "first",
        &FleetOptions {
            kill_after_checkpoints: Some(3),
            ..opts()
        },
    )
    .unwrap();
    assert!(first.killed);
    // Torn write: chop the ledger mid-file. The checksum trailer is
    // gone, so the next reader must quarantine it instead of
    // deserializing a prefix into a bogus resume state.
    let path = dir.join("sweep_state.json");
    let text = std::fs::read_to_string(&path).unwrap();
    assert!(text.len() > 20);
    std::fs::write(&path, &text[..text.len() / 2]).unwrap();
    let second = run_fleet_worker(&grid(), &dir, "second", &opts()).unwrap();
    assert_eq!(second.completed, 4, "recovery restarts the lost work");
    assert!(
        dir.join("sweep_state.json.corrupt").exists(),
        "torn ledger must be preserved for inspection"
    );
    let report = run_fleet_coordinator(&grid(), &dir, &opts()).unwrap();
    assert_eq!(report.deterministic_json(), reference);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bit_flipped_ledger_is_quarantined_not_trusted() {
    let dir = scratch("bitflip");
    let reference = serial_reference();
    let done = run_fleet_worker(&grid(), &dir, "solo", &opts()).unwrap();
    assert_eq!(done.completed, 4);
    // Flip one payload byte, leaving the file well-formed JSON-wise
    // wherever possible: only the checksum can catch this.
    let path = dir.join("sweep_state.json");
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 3;
    bytes[mid] ^= 0x01;
    std::fs::write(&path, &bytes).unwrap();
    assert!(
        fleet_status(&dir).unwrap().is_none(),
        "a checksum-mismatched ledger must read as absent, not parsed"
    );
    assert!(dir.join("sweep_state.json.corrupt").exists());
    // The JSONL streams still hold every record: the coordinator
    // rebuilds and the report stays bitwise-identical.
    let report = run_fleet_coordinator(&grid(), &dir, &opts()).unwrap();
    assert_eq!(report.deterministic_json(), reference);
    let _ = std::fs::remove_dir_all(&dir);
}
