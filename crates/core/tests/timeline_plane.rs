//! Differential battery for the event-driven timeline: at the
//! zero-delay corner the event engine must reproduce the lockstep
//! scheduler bit for bit — identical run record, identical
//! cloud/edge/device parameters — across every fault regime and in
//! both step implementations. Lockstep is the oracle; the event engine
//! earns its asynchrony by collapsing onto it exactly when every
//! latency is zero. On top of the differential matrix: heap ordering
//! properties (pop order is insertion-invariant, so any event-arrival
//! permutation consistent with timestamp order yields the same run),
//! determinism of the genuinely-async arm, and sanity gates on
//! thresholds, timers and the simulated clock.

use middle_core::timeline::{EventKind, Timeline};
use middle_core::{
    Algorithm, DelayModel, DropoutModel, ExecutionMode, FaultConfig, LatencyModel, SimCheckpoint,
    SimConfig, Simulation, SimulationBuilder, StepMode,
};
use middle_data::Task;
use proptest::prelude::*;

mod common;
use common::{assert_records_equal, sim_bits};

fn built(cfg: SimConfig) -> Simulation {
    SimulationBuilder::new(cfg).build().expect("valid config")
}

/// 20 steps crossing several cloud syncs, ending on a sync step — the
/// same shape as the population-plane battery.
fn base_config() -> SimConfig {
    let mut cfg = SimConfig::tiny(Task::Mnist, Algorithm::middle());
    cfg.steps = 20;
    cfg.cloud_interval = 4;
    cfg.eval_interval = 4;
    cfg
}

fn event_zero(mut cfg: SimConfig) -> SimConfig {
    cfg.timeline.mode = ExecutionMode::EventDriven;
    cfg
}

/// Bursty Markov dropout: empty cohorts, availability-draw ordering.
fn dropout() -> FaultConfig {
    FaultConfig {
        dropout: DropoutModel::Markov {
            p_fail: 0.3,
            p_recover: 0.5,
        },
        ..FaultConfig::default()
    }
}

/// Exponential stragglers against a deadline plus lossy retried
/// uploads: the regime whose deadline/stale draws the zero-delay
/// boundary must replay verbatim.
fn stragglers() -> FaultConfig {
    FaultConfig {
        straggler_delay: DelayModel::Exponential { mean_s: 1.0 },
        deadline_s: 1.2,
        upload_loss: 0.2,
        upload_retries: 2,
        ..FaultConfig::default()
    }
}

/// WAN outages: cloud syncs scheduled by the round cadence but vetoed
/// by the fault plane.
fn wan_outage() -> FaultConfig {
    FaultConfig {
        wan_outage: 0.5,
        ..FaultConfig::default()
    }
}

/// Runs `cfg` under lockstep and under zero-delay event-driven
/// execution (same step implementation) and demands bitwise agreement
/// on the run record and on every model in the system.
fn event_matches_lockstep(cfg: SimConfig, mode: StepMode) {
    let mut lock = built(cfg.clone());
    let lock_record = lock.run_with(mode);
    let mut event = built(event_zero(cfg));
    let event_record = event.run_with(mode);
    assert_records_equal(&lock_record, &event_record);
    assert_eq!(
        sim_bits(&lock),
        sim_bits(&event),
        "event-driven zero-delay models diverged from lockstep"
    );
    assert!(lock_record.event_seconds.is_none());
    assert!(event_record.event_seconds.is_some());
}

#[test]
fn zero_delay_matches_lockstep_clean() {
    event_matches_lockstep(base_config(), StepMode::Fast);
}

#[test]
fn zero_delay_matches_lockstep_clean_reference() {
    event_matches_lockstep(base_config(), StepMode::Reference);
}

#[test]
fn zero_delay_matches_lockstep_under_dropout() {
    let mut cfg = base_config();
    cfg.faults = dropout();
    event_matches_lockstep(cfg, StepMode::Fast);
}

#[test]
fn zero_delay_matches_lockstep_under_dropout_reference() {
    let mut cfg = base_config();
    cfg.faults = dropout();
    event_matches_lockstep(cfg, StepMode::Reference);
}

#[test]
fn zero_delay_matches_lockstep_under_stragglers() {
    let mut cfg = base_config();
    cfg.faults = stragglers();
    event_matches_lockstep(cfg, StepMode::Fast);
}

#[test]
fn zero_delay_matches_lockstep_under_stragglers_reference() {
    let mut cfg = base_config();
    cfg.faults = stragglers();
    event_matches_lockstep(cfg, StepMode::Reference);
}

#[test]
fn zero_delay_matches_lockstep_under_wan_outage() {
    let mut cfg = base_config();
    cfg.faults = wan_outage();
    event_matches_lockstep(cfg, StepMode::Fast);
}

#[test]
fn zero_delay_matches_lockstep_under_wan_outage_reference() {
    let mut cfg = base_config();
    cfg.faults = wan_outage();
    event_matches_lockstep(cfg, StepMode::Reference);
}

#[test]
fn zero_delay_matches_lockstep_with_compression() {
    let mut cfg = base_config();
    cfg.compression.enabled = true;
    cfg.compression.quantize_bits = 8;
    cfg.compression.top_frac = 0.5;
    event_matches_lockstep(cfg, StepMode::Fast);
}

#[test]
fn zero_delay_matches_lockstep_with_compression_reference() {
    let mut cfg = base_config();
    cfg.compression.enabled = true;
    cfg.compression.quantize_bits = 8;
    cfg.compression.top_frac = 0.5;
    event_matches_lockstep(cfg, StepMode::Reference);
}

/// A stateful policy (FedFly's in-flight migration set) must survive
/// the event-driven dispatch unchanged: the policy hooks fire from
/// event handlers, not from the lockstep loop, but in the same order.
#[test]
fn zero_delay_matches_lockstep_stateful_algorithm() {
    let mut cfg = base_config();
    cfg.algorithm = Algorithm::fedfly();
    cfg.faults = dropout();
    event_matches_lockstep(cfg, StepMode::Fast);
}

#[test]
fn zero_delay_matches_lockstep_stateful_algorithm_reference() {
    let mut cfg = base_config();
    cfg.algorithm = Algorithm::fedfly();
    cfg.faults = dropout();
    event_matches_lockstep(cfg, StepMode::Reference);
}

/// An `edge_threshold` is provably irrelevant at zero delay: every
/// upload of a round pops (rank 1) before any aggregate event (rank 2)
/// at the same instant, so the wave is always complete when it
/// aggregates, whatever the trigger.
#[test]
fn zero_delay_edge_threshold_is_irrelevant() {
    let mut cfg = event_zero(base_config());
    cfg.faults = stragglers();
    let baseline = built(cfg.clone()).run_with(StepMode::Fast);
    for k in [1, 2] {
        let mut with_threshold = cfg.clone();
        with_threshold.timeline.edge_threshold = Some(k);
        let record = built(with_threshold).run_with(StepMode::Fast);
        assert_records_equal(&baseline, &record);
    }
}

/// The simulated clock of a zero-delay run is exactly the last round's
/// boundary instant: every event of round `t` fires at
/// `t * step_duration`.
#[test]
fn zero_delay_clock_is_final_step_boundary() {
    let cfg = event_zero(base_config());
    let steps = cfg.steps;
    let step_duration = cfg.timeline.step_duration;
    let record = built(cfg).run_with(StepMode::Fast);
    let clock = record.event_seconds.expect("event-driven run");
    assert_eq!(clock, (steps - 1) as f64 * step_duration);
}

// ---- genuinely-async arm ----------------------------------------------

/// Async regime: straggler delays become real upload latencies.
fn async_config() -> SimConfig {
    let mut cfg = base_config();
    cfg.faults = stragglers();
    cfg.timeline.mode = ExecutionMode::EventDriven;
    cfg.timeline.latency = LatencyModel::Faults;
    cfg
}

/// The async arm is deterministic: two identical runs agree bitwise.
#[test]
fn async_run_is_deterministic() {
    let mut cfg = async_config();
    cfg.timeline.edge_threshold = Some(2);
    cfg.timeline.cloud_timer = Some(3.0);
    let mut a = built(cfg.clone());
    let ra = a.run_with(StepMode::Fast);
    let mut b = built(cfg);
    let rb = b.run_with(StepMode::Fast);
    assert_records_equal(&ra, &rb);
    assert_eq!(ra.event_seconds, rb.event_seconds);
    assert_eq!(sim_bits(&a), sim_bits(&b));
}

/// With real latencies the clock runs past the last boundary (late
/// uploads land after their round) and the upload ledger still records
/// every send.
#[test]
fn async_clock_and_ledger_are_sane() {
    let mut sim = built(async_config());
    let record = sim.run_with(StepMode::Fast);
    let clock = record.event_seconds.expect("event-driven run");
    assert!(clock >= 19.0, "clock went backwards: {clock}");
    assert!(record.comm.device_to_edge > 0);
    assert!(record.active_steps > 0);
    assert!(record.syncs > 0);
}

/// A cloud timer drives syncs on simulated time instead of the round
/// cadence; with a short period and 20 simulated seconds the run must
/// sync at least as often as the default cadence would.
#[test]
fn async_cloud_timer_drives_syncs() {
    let mut cfg = async_config();
    cfg.timeline.cloud_timer = Some(2.0);
    let record = built(cfg).run_with(StepMode::Fast);
    assert!(
        record.syncs >= 5,
        "timer at 2.0s over ~20s simulated should sync >= 5 times, got {}",
        record.syncs
    );
}

/// An edge threshold makes edges aggregate mid-round as soon as K
/// updates land; the run still completes with a coherent record.
#[test]
fn async_edge_threshold_aggregates_early() {
    let mut cfg = async_config();
    cfg.timeline.edge_threshold = Some(1);
    let steps = cfg.steps;
    let record = built(cfg).run_with(StepMode::Fast);
    assert_eq!(record.points.last().map(|p| p.step), Some(steps));
    assert!(record.comm.device_to_edge > 0);
}

// ---- checkpoint / resume ----------------------------------------------

/// Kill an async run mid-heap — live in-flight uploads parked in the
/// timeline, pending `DeviceUpload` events in the queue — round-trip
/// the checkpoint through JSON, and the resumed run must finish
/// bitwise-identical to the uninterrupted one.
#[test]
fn async_mid_heap_checkpoint_resumes_bitwise_through_json() {
    let cfg = async_config();

    let mut straight = built(cfg.clone());
    let reference = straight.run();

    let mut first = built(cfg.clone());
    for _ in 0..5 {
        first.tick(StepMode::Fast);
    }
    let ck = first.checkpoint();
    let tck = ck
        .timeline
        .as_ref()
        .expect("event-driven checkpoints carry the timeline");
    let pending_uploads = tck
        .events
        .iter()
        .filter(|e| {
            e.kind
                == EventKind::DeviceUpload {
                    edge: 0,
                    device: 0,
                    wave: 0,
                }
                .rank()
        })
        .count();
    assert!(
        pending_uploads > 0,
        "checkpoint taken with an empty upload heap; the gate would prove nothing"
    );
    assert!(
        tck.in_flight.iter().any(Option::is_some),
        "no send-time snapshot was in flight at the cut"
    );
    let json = ck.to_json();
    drop(first);

    let ck = SimCheckpoint::from_json(&json).expect("checkpoint parses");
    let mut second = built(cfg);
    second.restore(&ck).expect("checkpoint applies");
    assert_eq!(second.next_step(), 5);
    let resumed = second.run();

    assert_records_equal(&reference, &resumed);
    assert_eq!(reference.event_seconds, resumed.event_seconds);
    assert_eq!(sim_bits(&straight), sim_bits(&second));
}

/// A checkpoint without a timeline block must not restore into an
/// event-driven simulation, and one carrying a pending-event heap must
/// not restore into a lockstep run — silently dropping or fabricating
/// in-flight events would corrupt the trajectory. (A checkpoint from a
/// run with the *other mode in its config* is already rejected by the
/// config digest; these gates catch the deeper corruption where the
/// digest agrees but the timeline payload contradicts the mode.)
#[test]
fn restore_rejects_execution_mode_mismatch_both_ways() {
    let lock_cfg = base_config();
    let event_cfg = event_zero(base_config());

    let mut lock = built(lock_cfg.clone());
    lock.tick(StepMode::Fast);
    let lock_ck = lock.checkpoint();
    assert!(lock_ck.timeline.is_none());

    let mut event = built(event_cfg.clone());
    event.tick(StepMode::Fast);
    let event_ck = event.checkpoint();
    assert!(event_ck.timeline.is_some());

    // Event-driven restore, checkpoint stripped of its timeline.
    let mut stripped = event_ck.clone();
    stripped.timeline = None;
    let err = built(event_cfg)
        .restore(&stripped)
        .expect_err("a timeline-less checkpoint must not restore into an event-driven run");
    assert!(
        err.to_string().contains("lockstep"),
        "unexpected error: {err}"
    );

    // Lockstep restore, checkpoint carrying a grafted timeline.
    let mut grafted = lock_ck.clone();
    grafted.timeline = event_ck.timeline.clone();
    let err = built(lock_cfg)
        .restore(&grafted)
        .expect_err("a pending-event heap must not restore into a lockstep run");
    assert!(
        err.to_string().contains("event-driven"),
        "unexpected error: {err}"
    );
}

// ---- event-heap ordering properties -----------------------------------

/// The canonical pop order of a set of events: time, then kind rank,
/// then edge, then device. For key-distinct events this is a total
/// order with no dependence on `seq`.
fn canonical_order(events: &[(f64, EventKind)]) -> Vec<(f64, EventKind)> {
    let mut sorted = events.to_vec();
    sorted.sort_by(|a, b| {
        a.0.total_cmp(&b.0).then_with(|| {
            (a.1.rank(), a.1.edge(), a.1.device()).cmp(&(b.1.rank(), b.1.edge(), b.1.device()))
        })
    });
    sorted
}

/// A pool of key-distinct events spanning every kind, several edges and
/// devices, with deliberate timestamp collisions.
fn event_pool() -> Vec<(f64, EventKind)> {
    let mut pool = Vec::new();
    for step in 0..3usize {
        let t = step as f64;
        pool.push((t, EventKind::StepBoundary { step }));
        pool.push((t, EventKind::EndOfStep { step }));
        for edge in 0..2usize {
            pool.push((t, EventKind::EdgeAggregate { edge, wave: 1 }));
            for device in 0..3usize {
                pool.push((
                    t + 0.25,
                    EventKind::DeviceUpload {
                        edge,
                        device,
                        wave: 1,
                    },
                ));
            }
        }
    }
    pool.push((1.5, EventKind::CloudSync { timer: true }));
    pool
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any insertion permutation consistent with timestamp order pops
    /// in the same canonical total order — the heap's tie-break makes
    /// arrival permutations unobservable, which is what lets the
    /// zero-delay differential matrix above generalize to *every*
    /// interleaving rather than the one the engine happens to produce.
    #[test]
    fn pop_order_is_insertion_invariant(perm in Just(event_pool()).prop_shuffle()) {
        let mut timeline = Timeline::new(4, 8);
        for (time, kind) in &perm {
            timeline.push(*time, *kind);
        }
        let mut popped = Vec::new();
        while let Some(ev) = timeline.pop() {
            popped.push((ev.time, ev.kind));
        }
        prop_assert_eq!(popped, canonical_order(&event_pool()));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The zero-delay oracle equivalence holds across seeds, not just
    /// the default one.
    #[test]
    fn zero_delay_matches_lockstep_across_seeds(seed in 0u64..64) {
        let mut cfg = base_config();
        cfg.steps = 8;
        cfg.eval_interval = 8;
        cfg.seed = seed;
        cfg.faults = stragglers();
        let lock = built(cfg.clone()).run_with(StepMode::Fast);
        let event = built(event_zero(cfg)).run_with(StepMode::Fast);
        assert_records_equal(&lock, &event);
    }
}
