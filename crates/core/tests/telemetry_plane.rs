//! Gates for the telemetry plane: the instrumented run must account for
//! its own time (phase totals ≈ step wall-clock), its counters must
//! agree exactly with the simulation's communication accounting, and
//! enabling the recorder must not perturb the simulation itself.

use middle_core::{
    Algorithm, OnDevicePolicy, SelectionPolicy, SimConfig, Simulation, SimulationBuilder,
};
use middle_data::Task as DataTask;

fn built(cfg: SimConfig) -> Simulation {
    SimulationBuilder::new(cfg).build().expect("valid config")
}

/// A config that exercises every counter: availability dropout (so some
/// candidates are filtered and steps can go inactive) plus `KeepLocal`
/// (so moved devices skip the edge download).
fn instrumented_config() -> SimConfig {
    let algo = Algorithm::custom(
        "KeepLocal",
        SelectionPolicy::Random,
        OnDevicePolicy::KeepLocal,
    );
    let mut cfg = SimConfig::tiny(DataTask::Mnist, algo);
    cfg.steps = 12;
    cfg.cloud_interval = 4;
    cfg.availability = 0.7;
    cfg.telemetry = true;
    cfg
}

#[test]
fn report_absent_when_disabled() {
    let cfg = SimConfig::tiny(DataTask::Mnist, Algorithm::middle());
    assert!(!cfg.telemetry_enabled());
    let record = built(cfg).run();
    assert!(record.telemetry.is_none());
    // active_steps is tracked regardless of telemetry.
    assert!(record.active_steps > 0);
}

#[test]
fn phase_totals_account_for_step_time() {
    let record = built(instrumented_config()).run();
    let report = record.telemetry.expect("telemetry enabled");
    let step_total = report.step.total_ns;
    let phase_total = report.step_phase_total_ns();
    assert!(step_total > 0, "step histogram empty");
    // The six in-step segments are disjoint subintervals of each step,
    // so their sum can never exceed the step total (plus timer noise)
    // and must cover the overwhelming majority of it — the step body is
    // nothing but the instrumented phases.
    assert!(
        (phase_total as f64) <= step_total as f64 * 1.02,
        "phase sum {phase_total} exceeds step total {step_total}"
    );
    assert!(
        (phase_total as f64) >= step_total as f64 * 0.90,
        "phase sum {phase_total} covers <90% of step total {step_total}"
    );
}

#[test]
fn counters_match_comm_stats_exactly() {
    let cfg = instrumented_config();
    let (num_edges, num_devices) = (cfg.num_edges as u64, cfg.num_devices as u64);
    let mut sim = built(cfg.clone());
    let record = sim.run();
    let report = record.telemetry.as_ref().expect("telemetry enabled");
    let c = report.counters;

    assert_eq!(c.steps, cfg.steps as u64);
    assert_eq!(c.active_steps, record.active_steps);
    assert_eq!(c.downloads, record.comm.edge_to_device);
    assert_eq!(c.uploads, record.comm.device_to_edge);
    assert_eq!(c.syncs, record.syncs);
    assert_eq!(c.syncs * num_edges, record.comm.edge_to_cloud);
    assert_eq!(c.syncs * num_edges, record.comm.cloud_to_edge);
    assert_eq!(c.syncs * num_devices, record.comm.cloud_to_device);

    // KeepLocal: every moved selected device skipped its download.
    assert_eq!(c.downloads + c.moved_inits, c.selected);
    assert_eq!(c.selected, c.uploads);
    // Availability filtering really dropped candidates at 0.7.
    assert!(c.availability_drops > 0, "no drops at availability 0.7");
    // Per edge, seen ≥ dropped + selected; summed over the run likewise.
    assert!(c.candidates_seen >= c.selected + c.availability_drops);
}

#[test]
fn telemetry_does_not_perturb_the_run() {
    let mut plain = instrumented_config();
    plain.telemetry = false;
    let instrumented = built(instrumented_config()).run();
    let bare = built(plain).run();
    assert_eq!(instrumented.points.len(), bare.points.len());
    for (a, b) in instrumented.points.iter().zip(&bare.points) {
        assert_eq!(a.global_accuracy.to_bits(), b.global_accuracy.to_bits());
        assert_eq!(a.global_loss.to_bits(), b.global_loss.to_bits());
    }
    assert_eq!(instrumented.comm, bare.comm);
    assert_eq!(instrumented.active_steps, bare.active_steps);
}

#[test]
fn jsonl_sink_writes_one_line_per_step() {
    let path = std::env::temp_dir().join(format!(
        "middle_telemetry_{}_{}.jsonl",
        std::process::id(),
        line!()
    ));
    let mut cfg = SimConfig::tiny(DataTask::Mnist, Algorithm::middle());
    cfg.steps = 6;
    cfg.telemetry_jsonl = Some(path.to_string_lossy().into_owned());
    assert!(cfg.telemetry_enabled(), "jsonl path implies telemetry");
    let record = built(cfg.clone()).run();
    assert!(record.telemetry.is_some());

    #[derive(serde::Deserialize)]
    struct Event {
        step: u64,
        active: bool,
        step_ns: u64,
        local_training_ns: u64,
        uploads: u64,
    }

    let text = std::fs::read_to_string(&path).expect("sink file written");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), cfg.steps);
    let mut uploads = 0;
    for (t, line) in lines.iter().enumerate() {
        let e: Event = serde_json::from_str(line).expect("parseable JSONL line");
        assert_eq!(e.step, t as u64);
        assert!(e.active, "tiny config at full availability is never idle");
        assert!(e.step_ns > 0);
        assert!(e.step_ns >= e.local_training_ns);
        uploads += e.uploads;
    }
    assert_eq!(uploads, record.comm.device_to_edge);
    std::fs::remove_file(&path).ok();
}

#[test]
fn report_summary_table_names_every_phase() {
    let record = built(instrumented_config()).run();
    let report = record.telemetry.expect("telemetry enabled");
    let table = report.summary_table();
    for phase in [
        "selection",
        "device_init",
        "local_training",
        "edge_aggregation",
        "cloud_sync",
        "evaluation",
        "step",
    ] {
        assert!(table.contains(phase), "summary missing {phase}:\n{table}");
    }
}
