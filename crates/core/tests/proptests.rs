//! Property-based tests of the MIDDLE core invariants.

use middle_core::aggregation::on_device_init;
use middle_core::similarity::{aggregation_weights, similarity_utility};
use middle_core::theory::{BoundParams, QuadraticProblem};
use middle_core::OnDevicePolicy;
use middle_nn::layers::Dense;
use middle_nn::params::{flatten, unflatten};
use middle_nn::Sequential;
use middle_tensor::random::rng;
use proptest::prelude::*;

fn model_from(vals: &[f32]) -> Sequential {
    let mut m = Sequential::new().push(Dense::new(3, 2, &mut rng(1)));
    assert_eq!(m.param_count(), vals.len());
    unflatten(&mut m, vals);
    m
}

fn vals() -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-5.0f32..5.0, 8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Eq. 8: the similarity utility is always in [0, 1].
    #[test]
    fn utility_is_clipped_to_unit_interval(a in vals(), b in vals()) {
        let u = similarity_utility(&a, &b);
        prop_assert!((0.0..=1.0).contains(&u), "utility {}", u);
    }

    /// Eq. 9: the aggregation weights are a convex pair with the edge
    /// side never below 1/2.
    #[test]
    fn weights_always_dominated_by_edge(u in 0.0f32..=1.0) {
        let (e, l) = aggregation_weights(u);
        prop_assert!((e + l - 1.0).abs() < 1e-6);
        prop_assert!(e >= 0.5 && l >= 0.0);
    }

    /// The Eq. 9 blend is coordinatewise between its two inputs.
    #[test]
    fn similarity_blend_is_between_inputs(a in vals(), b in vals()) {
        let edge = model_from(&a);
        let local = model_from(&b);
        let init = on_device_init(OnDevicePolicy::SimilarityWeighted, &edge, &local);
        for ((&e, &l), &i) in a.iter().zip(&b).zip(&flatten(&init)) {
            let (lo, hi) = if e < l { (e, l) } else { (l, e) };
            prop_assert!(i >= lo - 1e-4 && i <= hi + 1e-4);
        }
    }

    /// FixedAlpha at the endpoints recovers the pure inputs.
    #[test]
    fn fixed_alpha_endpoints(a in vals(), b in vals()) {
        let edge = model_from(&a);
        let local = model_from(&b);
        let all_edge = on_device_init(OnDevicePolicy::FixedAlpha { alpha: 1.0 }, &edge, &local);
        let all_local = on_device_init(OnDevicePolicy::FixedAlpha { alpha: 0.0 }, &edge, &local);
        prop_assert_eq!(flatten(&all_edge), a);
        prop_assert_eq!(flatten(&all_local), b);
    }

    /// Theorem 1 bound: monotone decreasing in t and in P.
    #[test]
    fn bound_monotone(
        beta in 1.0f32..10.0,
        mu_frac in 0.05f32..1.0,
        alpha in 0.05f32..0.95,
        p in 0.05f32..1.0,
        i in 1usize..20,
    ) {
        let params = BoundParams {
            beta,
            mu: beta * mu_frac,
            b: 1.0,
            g2: 4.0,
            local_steps: i,
            alpha,
            p,
            initial_gap: 1.0,
        };
        prop_assert!(params.validate().is_ok());
        prop_assert!(params.bound(10) >= params.bound(1000) - 1e-6);
        let mut hi = params;
        hi.p = (p + 0.4).min(1.0);
        if hi.p > p {
            prop_assert!(hi.bound(100) <= params.bound(100) + 1e-6);
        }
        prop_assert!(params.mobility_derivative() < 0.0);
    }

    /// The quadratic optimum has zero weighted gradient and is a global
    /// minimiser (gap >= 0 everywhere else).
    #[test]
    fn quadratic_optimum_is_global_min(
        c1 in -3.0f32..3.0, c2 in -3.0f32..3.0,
        a1 in 0.2f32..3.0, a2 in 0.2f32..3.0,
        probe in -5.0f32..5.0,
    ) {
        let q = QuadraticProblem::new(
            vec![a1, a2],
            vec![vec![c1], vec![c2]],
            vec![1.0, 1.0],
        );
        let w = q.optimum();
        let f_opt = q.global_loss(&w);
        prop_assert!(q.global_loss(&[probe]) >= f_opt - 1e-4);
    }
}
