//! Fingerprint helpers shared by the bitwise-equivalence batteries
//! (`hotpath_equiv`, `algo_zoo`, `population_plane`, `timeline_plane`).
//! One FNV-1a scheme and one record comparison, so every battery pins
//! trajectories the same way and a re-pin only ever happens in one
//! place.
#![allow(dead_code)]

use middle_core::{RunRecord, Simulation};
use middle_nn::params::flatten;

/// Feeds `bytes` into a running FNV-1a hash.
pub fn fnv(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x100000001b3);
    }
}

/// FNV-1a over the little-endian bit patterns of a flat parameter
/// vector — the scheme behind every pinned fingerprint in the suite.
pub fn fnv_params(flat: &[f32]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for v in flat {
        fnv(&mut h, &v.to_bits().to_le_bytes());
    }
    h
}

/// Bit patterns of a float slice, for exact (NaN-proof) comparison.
pub fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Whole-simulation fingerprint: cloud, then every edge, then every
/// resident device, in id order.
pub fn sim_bits(sim: &Simulation) -> Vec<u32> {
    let mut out: Vec<u32> = flatten(sim.cloud_model())
        .iter()
        .map(|v| v.to_bits())
        .collect();
    for e in sim.edges() {
        out.extend(flatten(&e.model).iter().map(|v| v.to_bits()));
    }
    for d in sim.devices() {
        out.extend(flatten(&d.model).iter().map(|v| v.to_bits()));
    }
    out
}

/// Demands two run records agree bit for bit on everything the
/// simulation determines: evaluation points, the communication ledger,
/// sync/activity counters, mobility, and the parameter count. Host
/// timing (`wall_seconds`, `telemetry`) and the simulated clock
/// (`event_seconds`, which legitimately differs between lockstep and
/// event-driven runs) are excluded.
pub fn assert_records_equal(a: &RunRecord, b: &RunRecord) {
    assert_eq!(a.points.len(), b.points.len(), "eval point count diverged");
    for (pa, pb) in a.points.iter().zip(&b.points) {
        assert_eq!(pa.step, pb.step);
        assert_eq!(
            pa.global_accuracy.to_bits(),
            pb.global_accuracy.to_bits(),
            "global accuracy diverged at step {}",
            pa.step
        );
        assert_eq!(
            pa.global_loss.to_bits(),
            pb.global_loss.to_bits(),
            "global loss diverged at step {}",
            pa.step
        );
        assert_eq!(
            bits(&pa.edge_accuracy),
            bits(&pb.edge_accuracy),
            "edge accuracy diverged at step {}",
            pa.step
        );
    }
    assert_eq!(a.comm, b.comm, "communication ledger diverged");
    assert_eq!(a.syncs, b.syncs, "sync count diverged");
    assert_eq!(a.active_steps, b.active_steps, "active-step count diverged");
    assert_eq!(
        a.empirical_mobility.to_bits(),
        b.empirical_mobility.to_bits()
    );
    assert_eq!(a.param_count, b.param_count);
}
