//! Property-test battery gating the compression plane (DESIGN.md §11):
//! the operator-level contracts (error bounds, unbiasedness, top-K
//! ordering, bitwise conservation, lossless round-trips), the
//! byte-accurate accounting reconciliation against the analytic payload
//! formula, and mid-run checkpoint/resume with live error-feedback
//! residuals.

use middle_core::compress::{
    apply_sparse_delta, compress_delta, compressed_payload_bytes, keep_count,
};
use middle_core::{
    Algorithm, CompressionConfig, DelayModel, DropoutModel, RoundingMode, SimConfig, Simulation,
    SimulationBuilder,
};
use middle_data::Task as DataTask;
use middle_nn::params::flatten;
use middle_tensor::random::rng;
use proptest::prelude::*;

fn compress(
    delta: &[f64],
    bits: u32,
    k: usize,
    mode: RoundingMode,
    seed: u64,
) -> (Vec<u32>, Vec<f64>, Vec<f64>) {
    let mut r = rng(seed);
    let (mut kept, mut sent, mut residual) = (Vec::new(), Vec::new(), Vec::new());
    compress_delta(
        delta,
        bits,
        k,
        mode,
        &mut r,
        &mut kept,
        &mut sent,
        &mut residual,
    );
    (kept, sent, residual)
}

/// The quantization grid step for the kept coordinates of `delta`.
fn grid_step(delta: &[f64], kept: &[u32], bits: u32) -> f64 {
    let vals: Vec<f64> = kept.iter().map(|&i| delta[i as usize]).collect();
    let lo = vals.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let levels = 1u64 << bits;
    (hi - lo) / (levels - 1) as f64
}

fn deltas(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1.0f64..1.0, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Nearest rounding lands each transmitted value within `step / 2`
    /// of the true delta; stochastic rounding within `step`. The
    /// exact-value fallback only tightens the bound (error 0).
    #[test]
    fn round_trip_error_is_bounded_by_the_grid_step(
        delta in deltas(40),
        bits in 1u32..9,
        seed in 0u64..1000,
    ) {
        for (mode, factor) in [(RoundingMode::Nearest, 0.5), (RoundingMode::Stochastic, 1.0)] {
            let (kept, sent, _) = compress(&delta, bits, delta.len(), mode, seed);
            let step = grid_step(&delta, &kept, bits);
            let bound = factor * step * (1.0 + 1e-12) + f64::EPSILON;
            for (&i, &t) in kept.iter().zip(&sent) {
                let err = (t - delta[i as usize]).abs();
                prop_assert!(
                    err <= bound,
                    "mode {mode:?}: |{t} - {}| = {err} > {bound}",
                    delta[i as usize]
                );
            }
        }
    }

    /// Top-K keeps exactly the `k` largest-magnitude coordinates: no
    /// dropped coordinate may exceed any kept one in magnitude, the
    /// indices come back ascending, and exactly `k` survive.
    #[test]
    fn top_k_keeps_the_largest_magnitudes(
        delta in deltas(30),
        k in 1usize..30,
    ) {
        let (kept, sent, _) = compress(&delta, 32, k, RoundingMode::Nearest, 0);
        prop_assert_eq!(kept.len(), k.min(delta.len()));
        prop_assert_eq!(sent.len(), kept.len());
        prop_assert!(kept.windows(2).all(|w| w[0] < w[1]), "indices not ascending");
        let min_kept = kept
            .iter()
            .map(|&i| delta[i as usize].abs())
            .fold(f64::INFINITY, f64::min);
        for (i, &v) in delta.iter().enumerate() {
            if !kept.contains(&(i as u32)) {
                prop_assert!(
                    v.abs() <= min_kept,
                    "dropped |{v}| > smallest kept |{min_kept}|"
                );
            }
        }
    }

    /// The conservation contract: for every coordinate the transmitted
    /// value plus the residual reconstructs the delta *bitwise* in f64
    /// (dropped coordinates carry their whole delta in the residual).
    #[test]
    fn transmitted_plus_residual_reconstructs_delta_bitwise(
        delta in deltas(25),
        bits in 1u32..33,
        k in 1usize..25,
        seed in 0u64..1000,
    ) {
        let mode = if seed % 2 == 0 { RoundingMode::Stochastic } else { RoundingMode::Nearest };
        let (kept, sent, residual) = compress(&delta, bits, k, mode, seed);
        prop_assert_eq!(residual.len(), delta.len());
        let mut sent_dense = vec![0.0f64; delta.len()];
        for (&i, &t) in kept.iter().zip(&sent) {
            sent_dense[i as usize] = t;
        }
        for i in 0..delta.len() {
            let recon = sent_dense[i] + residual[i];
            prop_assert!(
                recon.to_bits() == delta[i].to_bits(),
                "coordinate {i}: {} + {} != {}",
                sent_dense[i], residual[i], delta[i]
            );
        }
    }

    /// Full-width, full-density settings round-trip bitwise: the
    /// transmitted values equal the delta and applying them to a zero
    /// reference reproduces the delta's f32 cast exactly.
    #[test]
    fn lossless_settings_round_trip_bitwise(delta in deltas(20), seed in 0u64..100) {
        let (kept, sent, residual) =
            compress(&delta, 32, delta.len(), RoundingMode::Stochastic, seed);
        prop_assert_eq!(kept.len(), delta.len());
        for ((&i, &t), &v) in kept.iter().zip(&sent).zip(&delta) {
            prop_assert_eq!(t.to_bits(), v.to_bits());
            prop_assert_eq!((t + residual[i as usize]).to_bits(), v.to_bits());
        }
        let reference = vec![0.0f32; delta.len()];
        let mut out = Vec::new();
        apply_sparse_delta(&reference, &kept, &sent, &mut out);
        for (o, &v) in out.iter().zip(&delta) {
            prop_assert_eq!(o.to_bits(), (v as f32).to_bits());
        }
    }

    /// The analytic payload formula is monotone in `k` and `bits` away
    /// from the dense corner (where the index stream and header drop
    /// out), hits exactly `4 · d` at the corner, and `keep_count` stays
    /// within `1..=d`.
    #[test]
    fn payload_formula_is_monotone_and_dense_at_the_corner(
        d in 1usize..10_000,
        k in 1usize..10_000,
        bits in 2u32..32,
        frac in 0.0001f64..1.0,
    ) {
        let k = k.min(d);
        let p = compressed_payload_bytes(d, k, bits);
        // Monotone in bits below full width (same k, same index bits).
        prop_assert!(p >= compressed_payload_bytes(d, k, bits - 1));
        // Monotone in k while the index stream is present.
        if k > 1 && k < d {
            prop_assert!(p >= compressed_payload_bytes(d, k - 1, bits));
        }
        prop_assert_eq!(compressed_payload_bytes(d, d, 32), 4 * d as u64);
        let keep = keep_count(d, frac);
        prop_assert!((1..=d).contains(&keep), "keep_count {keep} outside 1..={d}");
        prop_assert_eq!(keep_count(d, 1.0), d);
    }
}

/// QSGD stochastic rounding is unbiased: a value sitting 30% of the way
/// between two grid points rounds up with probability 0.30, so the
/// empirical mean of the transmitted value converges to the true value.
#[test]
fn stochastic_rounding_is_unbiased() {
    // bits = 1 over [0, 1] gives a two-point grid with step 1, so the
    // middle coordinate (0.25) transmits as 1.0 w.p. 0.25 and 0.0 w.p.
    // 0.75. The value must be dyadic so that `t + r` is exact for both
    // grid points — otherwise the conservation fallback transmits the
    // exact value and the distribution collapses.
    let delta = [0.0, 1.0, 0.25];
    let mut r = rng(42);
    let (mut kept, mut sent, mut residual) = (Vec::new(), Vec::new(), Vec::new());
    let trials = 20_000;
    let mut sum = 0.0f64;
    for _ in 0..trials {
        compress_delta(
            &delta,
            1,
            3,
            RoundingMode::Stochastic,
            &mut r,
            &mut kept,
            &mut sent,
            &mut residual,
        );
        sum += sent[2];
    }
    let mean = sum / f64::from(trials);
    // 5 sigma of a Bernoulli(0.25) mean over 20k trials is ~0.015.
    assert!(
        (mean - 0.25).abs() < 0.02,
        "empirical mean {mean} too far from 0.25"
    );
}

fn lossy_config() -> SimConfig {
    let mut cfg = SimConfig::tiny(DataTask::Mnist, Algorithm::middle());
    cfg.steps = 16;
    cfg.cloud_interval = 4;
    cfg.eval_interval = 4;
    cfg.compression = CompressionConfig {
        enabled: true,
        quantize_bits: 8,
        top_frac: 0.25,
        ..CompressionConfig::default()
    };
    cfg
}

fn built(cfg: SimConfig) -> Simulation {
    SimulationBuilder::new(cfg).build().expect("valid config")
}

/// Asserts the byte ledger's reconciliation identity: every uplink
/// transfer (including retransmissions and stale arrivals) was charged
/// exactly the analytic compressed payload, every downlink exactly the
/// dense payload.
fn assert_reconciled(sim: &Simulation) {
    let cfg = sim.config();
    let d = flatten(sim.cloud_model()).len();
    let payload = compressed_payload_bytes(
        d,
        keep_count(d, cfg.compression.top_frac),
        cfg.compression.quantize_bits,
    );
    let dense = 4 * d as u64;
    assert!(
        payload * 4 <= dense,
        "grid cell does not reach 4x: {payload} vs {dense}"
    );
    let comm = sim.comm_stats();
    assert_eq!(comm.device_to_edge_bytes, comm.device_to_edge * payload);
    assert_eq!(comm.edge_to_cloud_bytes, comm.edge_to_cloud * payload);
    assert_eq!(comm.edge_to_device_bytes, comm.edge_to_device * dense);
    assert_eq!(comm.cloud_to_edge_bytes, comm.cloud_to_edge * dense);
    assert_eq!(comm.cloud_to_device_bytes, comm.cloud_to_device * dense);
    assert_eq!(
        comm.payload_total_bytes(),
        (comm.device_to_edge + comm.edge_to_cloud) * payload
            + (comm.edge_to_device + comm.cloud_to_edge + comm.cloud_to_device) * dense
    );
}

/// Clean lossy run: every transfer class reconciles against the
/// analytic formula and the uplink really shrinks ≥ 4×.
#[test]
fn byte_accounting_reconciles_on_a_clean_lossy_run() {
    let mut sim = built(lossy_config());
    for t in 0..16 {
        sim.step(t);
    }
    assert!(sim.comm_stats().device_to_edge > 0);
    assert!(sim.comm_stats().edge_to_cloud > 0);
    assert_reconciled(&sim);
}

/// Faulted lossy run: retransmissions are charged per attempt at the
/// compressed size, deadline-missed uploads at their recorded payload
/// when the stale merge lands, and masked WAN syncs per up edge — the
/// reconciliation identity must still hold exactly.
#[test]
fn byte_accounting_reconciles_under_faults() {
    let mut cfg = lossy_config();
    cfg.faults.dropout = DropoutModel::Iid { p: 0.2 };
    cfg.faults.straggler_delay = DelayModel::Uniform {
        min_s: 0.0,
        max_s: 2.0,
    };
    cfg.faults.deadline_s = 1.5;
    cfg.faults.upload_loss = 0.2;
    cfg.faults.upload_retries = 2;
    cfg.faults.wan_outage = 0.3;
    let mut sim = built(cfg);
    for t in 0..16 {
        sim.step(t);
    }
    let comm = *sim.comm_stats();
    assert!(
        comm.upload_retransmissions > 0 || comm.stale_uploads > 0 || comm.lost_uploads > 0,
        "fault preset produced no fault events; weaken the test"
    );
    assert_reconciled(&sim);
}

/// Mid-run checkpoint/resume with live error-feedback residuals: the
/// snapshot (serialised through JSON like the sweep engine does) must
/// carry nonzero residuals and the compression RNG, and the resumed run
/// must finish bitwise identical to the uninterrupted one.
#[test]
fn checkpoint_resume_with_nonzero_residuals_is_bitwise_identical() {
    let cfg = lossy_config();
    let mut full = built(cfg.clone());
    let mut half = built(cfg.clone());
    while !full.is_finished() {
        full.tick(middle_core::StepMode::Fast);
    }
    for _ in 0..8 {
        half.tick(middle_core::StepMode::Fast);
    }
    let ck = half.checkpoint();
    let state = ck
        .compression
        .as_ref()
        .expect("lossy plane checkpoints its state");
    assert!(
        state
            .device_residuals
            .iter()
            .any(|r| r.iter().any(|&v| v != 0.0)),
        "no live device residual at step 8"
    );
    let json = ck.to_json();
    let ck2 = middle_core::SimCheckpoint::from_json(&json).expect("round-trips");
    assert_eq!(ck.compression, ck2.compression);

    let mut resumed = built(cfg);
    resumed.restore(&ck2).expect("restore succeeds");
    while !resumed.is_finished() {
        resumed.tick(middle_core::StepMode::Fast);
    }
    assert_eq!(
        flatten(full.cloud_model())
            .iter()
            .map(|v| v.to_bits())
            .collect::<Vec<_>>(),
        flatten(resumed.cloud_model())
            .iter()
            .map(|v| v.to_bits())
            .collect::<Vec<_>>()
    );
    for (a, b) in full.devices().iter().zip(resumed.devices()) {
        assert_eq!(
            flatten(&a.model)
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            flatten(&b.model)
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            "device {} diverged after resume",
            a.id
        );
    }
    assert_eq!(full.comm_stats(), resumed.comm_stats());
    assert_eq!(full.syncs(), resumed.syncs());
    let (fa, fl, _) = full.evaluate(&full.virtual_global());
    let (ra, rl, _) = resumed.evaluate(&resumed.virtual_global());
    assert_eq!(fa.to_bits(), ra.to_bits());
    assert_eq!(fl.to_bits(), rl.to_bits());
}

/// An inert plane stays out of checkpoints entirely, so pre-compression
/// snapshots (no `compression` field) keep deserialising.
#[test]
fn inert_plane_checkpoints_no_compression_state() {
    let mut cfg = SimConfig::tiny(DataTask::Mnist, Algorithm::middle());
    cfg.steps = 4;
    let mut sim = built(cfg);
    sim.step(0);
    let ck = sim.checkpoint();
    assert!(ck.compression.is_none());
    let json = ck.to_json();
    let ck2 = middle_core::SimCheckpoint::from_json(&json).expect("round-trips");
    assert!(ck2.compression.is_none());
}
