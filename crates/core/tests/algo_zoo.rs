//! Per-algorithm tier-1 gates for the policy API: every member of
//! [`Algorithm::zoo`] must keep the zero-copy hot path bitwise
//! identical to the allocating reference path — under every fault
//! model, not just the happy path — and stateful algorithms (FedFly's
//! in-flight set) must survive a mid-migration checkpoint→resume round
//! trip through JSON without perturbing a single bit.
//!
//! MIDDLE itself has a stronger gate than anything here: the pinned FNV
//! fingerprints in `tests/hotpath_equiv.rs` prove the trait-routed
//! default reproduces the pre-policy-API trajectory exactly.

use middle_core::{
    Algorithm, AlgorithmState, DelayModel, DropoutModel, FaultConfig, SimCheckpoint, SimConfig,
    Simulation, SimulationBuilder, StepMode,
};
use middle_data::Task;

mod common;
use common::sim_bits as bits;

fn built(cfg: SimConfig) -> Simulation {
    SimulationBuilder::new(cfg).build().expect("valid config")
}

fn zoo_config(algorithm: Algorithm, faults: FaultConfig) -> SimConfig {
    let mut cfg = SimConfig::tiny(Task::Mnist, algorithm);
    cfg.steps = 8;
    cfg.cloud_interval = 3;
    cfg.eval_interval = 4;
    cfg.faults = faults;
    cfg
}

/// Everything-on regime: sticky Markov dropout, exponential stragglers
/// against a deadline, lossy uploads with retry, WAN outages — the same
/// shape as `algos_sweep`'s hostile cell.
fn hostile() -> FaultConfig {
    FaultConfig {
        dropout: DropoutModel::Markov {
            p_fail: 0.1,
            p_recover: 0.3,
        },
        straggler_delay: DelayModel::Exponential { mean_s: 0.6 },
        deadline_s: 1.0,
        upload_loss: 0.2,
        upload_retries: 2,
        wan_outage: 0.2,
    }
}

/// Covers the remaining stochastic models: i.i.d. dropout and the
/// heavy-tailed Pareto delay.
fn heavy_tail() -> FaultConfig {
    FaultConfig {
        dropout: DropoutModel::Iid { p: 0.2 },
        straggler_delay: DelayModel::Pareto {
            scale_s: 0.3,
            shape: 1.5,
        },
        deadline_s: 1.0,
        upload_loss: 0.3,
        upload_retries: 1,
        wan_outage: 0.3,
    }
}

/// Bounded-uniform delay, the one delay model the other regimes skip.
fn uniform_delay() -> FaultConfig {
    FaultConfig {
        straggler_delay: DelayModel::Uniform {
            min_s: 0.2,
            max_s: 1.5,
        },
        deadline_s: 1.0,
        ..FaultConfig::default()
    }
}

/// Runs paired simulations — one on the fused hot path, one on the
/// allocating reference path — and demands bitwise-identical state
/// after every step plus an identical communication ledger at the end.
fn fast_matches_reference(label: &str, cfg: SimConfig) {
    let steps = cfg.steps;
    let mut fast = built(cfg.clone());
    let mut slow = built(cfg);
    for t in 0..steps {
        fast.step(t);
        slow.advance(t, StepMode::Reference);
        assert_eq!(
            bits(&fast),
            bits(&slow),
            "{label}: fast and reference state diverged at step {t}"
        );
    }
    assert_eq!(
        fast.comm_stats(),
        slow.comm_stats(),
        "{label}: comm ledger diverged"
    );
    assert_eq!(fast.syncs(), slow.syncs(), "{label}: sync count diverged");
    assert_eq!(
        fast.active_steps(),
        slow.active_steps(),
        "{label}: active-step count diverged"
    );
}

fn gate_zoo(regime: &str, faults: FaultConfig) {
    for algorithm in Algorithm::zoo() {
        let label = format!("{}/{regime}", algorithm.name);
        fast_matches_reference(&label, zoo_config(algorithm, faults));
    }
}

#[test]
fn zoo_fast_matches_reference_clean() {
    gate_zoo("clean", FaultConfig::default());
}

#[test]
fn zoo_fast_matches_reference_hostile() {
    gate_zoo("hostile", hostile());
}

#[test]
fn zoo_fast_matches_reference_heavy_tail() {
    gate_zoo("heavy_tail", heavy_tail());
}

#[test]
fn zoo_fast_matches_reference_uniform_delay() {
    gate_zoo("uniform_delay", uniform_delay());
}

// ------------------------------------------- stateful checkpointing

#[test]
fn fedfly_mid_migration_checkpoint_resumes_bitwise_through_json() {
    // cloud_interval 4 with the checkpoint at step 3: no cloud sync has
    // landed yet, so the in-flight set taken at checkpoint time is
    // guaranteed non-trivial — the resume must carry live migrations.
    let mut cfg = zoo_config(Algorithm::fedfly(), hostile());
    cfg.cloud_interval = 4;

    let mut straight = built(cfg.clone());
    let reference = straight.run();

    let mut first = built(cfg.clone());
    for _ in 0..3 {
        first.tick(StepMode::Fast);
    }
    let ck = first.checkpoint();
    let state = ck
        .algorithm
        .as_ref()
        .expect("FedFly checkpoints its in-flight set");
    assert!(
        state.in_flight.iter().any(|&b| b),
        "checkpoint taken with no update in flight; the gate would prove nothing"
    );
    let json = ck.to_json();
    drop(first);

    let ck = SimCheckpoint::from_json(&json).expect("checkpoint parses");
    let mut second = built(cfg);
    second.restore(&ck).expect("checkpoint applies");
    assert_eq!(second.next_step(), 3);
    let resumed = second.run();

    assert_eq!(reference.points.len(), resumed.points.len());
    for (a, b) in reference.points.iter().zip(&resumed.points) {
        assert_eq!(a.step, b.step);
        assert_eq!(a.global_accuracy.to_bits(), b.global_accuracy.to_bits());
        assert_eq!(a.global_loss.to_bits(), b.global_loss.to_bits());
    }
    assert_eq!(reference.comm, resumed.comm);
    assert_eq!(reference.syncs, resumed.syncs);
    assert_eq!(reference.active_steps, resumed.active_steps);
}

#[test]
fn restore_rejects_a_stateless_checkpoint_into_a_stateful_algorithm() {
    let cfg = zoo_config(Algorithm::fedfly(), FaultConfig::default());
    let mut sim = built(cfg.clone());
    for _ in 0..2 {
        sim.tick(StepMode::Fast);
    }
    let mut ck = sim.checkpoint();
    ck.algorithm = None; // what a pre-policy-API writer would have produced
    let mut fresh = built(cfg);
    let err = fresh
        .restore(&ck)
        .expect_err("missing state must be rejected");
    assert!(err.to_string().contains("checkpoint has none"), "{err}");
}

#[test]
fn restore_rejects_foreign_algorithm_state_into_a_stateless_algorithm() {
    let cfg = zoo_config(Algorithm::middle(), FaultConfig::default());
    let num_devices = cfg.num_devices;
    let mut sim = built(cfg.clone());
    sim.tick(StepMode::Fast);
    let mut ck = sim.checkpoint();
    ck.algorithm = Some(AlgorithmState {
        in_flight: vec![false; num_devices],
        clusters: Vec::new(),
    });
    let mut fresh = built(cfg);
    let err = fresh
        .restore(&ck)
        .expect_err("foreign state must be rejected");
    assert!(err.to_string().contains("stateless"), "{err}");
}
