//! Equivalence gates for the zero-copy hot path: the fused
//! selection/aggregation/sync kernels must track the original allocating
//! implementations — approximately where a floating-point identity is
//! involved, bit-for-bit where the rewrite only reorders storage.

use middle_core::aggregation::{
    cloud_aggregate, cloud_aggregate_into, edge_aggregate, edge_aggregate_into,
};
use middle_core::selection::{
    select_devices, select_devices_reference, update_similarity, update_similarity_reference,
};
use middle_core::similarity::similarity_utility;
use middle_core::{
    Algorithm, Device, SelectionPolicy, SimConfig, Simulation, SimulationBuilder, StepMode,
};
use middle_data::synthetic::{SyntheticSource, Task};
use middle_data::Task as DataTask;
use middle_nn::params::{flatten, unflatten, weighted_average, weighted_average_into};
use middle_nn::{zoo, Sequential};
use middle_tensor::ops::{cosine_similarity_slices, dot3_slices, dot_slices};
use middle_tensor::random::rng;
use proptest::prelude::*;

mod common;
use common::{bits, fnv, fnv_params};

fn built(cfg: SimConfig) -> Simulation {
    SimulationBuilder::new(cfg).build().expect("valid config")
}

fn model_from(vals: &[f32]) -> Sequential {
    let mut m = Sequential::new().push(middle_nn::layers::Dense::new(3, 2, &mut rng(1)));
    assert_eq!(m.param_count(), vals.len());
    unflatten(&mut m, vals);
    m
}

fn device_from(id: usize, vals: &[f32]) -> Device {
    let src = SyntheticSource::new(Task::Mnist, 3);
    let data = src.generate_balanced(6, id as u64);
    let mut m = zoo::logistic(&Task::Mnist.spec(), &mut rng(id as u64));
    unflatten(&mut m, vals);
    Device::new(id, data, m, 900 + id as u64)
}

fn vals(n: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-3.0f32..3.0, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The fused three-way dot product agrees bitwise with three
    /// separate accumulations (same chunked summation order).
    #[test]
    fn dot3_is_bitwise_three_dots(a in vals(67), b in vals(67)) {
        let (ab, aa, bb) = dot3_slices(&a, &b);
        prop_assert_eq!(ab.to_bits(), dot_slices(&a, &b).to_bits());
        prop_assert_eq!(aa.to_bits(), dot_slices(&a, &a).to_bits());
        prop_assert_eq!(bb.to_bits(), dot_slices(&b, &b).to_bits());
    }

    /// The identity-based delta-free utility tracks the naive
    /// flatten-and-subtract cosine on independent vectors (where the
    /// delta norm is well conditioned) to 1e-5.
    #[test]
    fn fused_update_similarity_matches_naive(
        local in vals(20),
        cloud in vals(20),
    ) {
        let mnist_dim = zoo::logistic(&Task::Mnist.spec(), &mut rng(0)).param_count();
        // Embed the generated prefixes into full-size parameter vectors.
        let mut l = vec![0.15f32; mnist_dim];
        let mut c = vec![-0.2f32; mnist_dim];
        l[..local.len()].copy_from_slice(&local);
        c[..cloud.len()].copy_from_slice(&cloud);
        let device = device_from(0, &l);
        let cloud_norm = dot_slices(&c, &c);
        let fused = update_similarity(&device, &c, cloud_norm);
        let naive = update_similarity_reference(&device, &c);
        prop_assert!((fused - naive).abs() <= 1e-5, "fused {} naive {}", fused, naive);
        // Cross-check the naive path against a from-scratch computation.
        let delta: Vec<f32> = l.iter().zip(&c).map(|(x, y)| x - y).collect();
        let scratch = similarity_utility(&c, &delta);
        prop_assert_eq!(naive.to_bits(), scratch.to_bits());
    }

    /// In-place weighted averaging is bit-identical to the allocating
    /// reference for arbitrary positive weights.
    #[test]
    fn weighted_average_into_matches_reference(
        v1 in vals(8), v2 in vals(8), v3 in vals(8),
        w in prop::collection::vec(0.1f32..20.0, 3),
    ) {
        let (m1, m2, m3) = (model_from(&v1), model_from(&v2), model_from(&v3));
        let models = [&m1, &m2, &m3];
        let reference = weighted_average(&models, &w);
        let mut dst = model_from(&[0.0; 8]);
        weighted_average_into(&mut dst, &models, &w);
        let (fr, fd) = (flatten(&reference), flatten(&dst));
        for (x, y) in fr.iter().zip(&fd) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    /// The O(n) partial-sort selection returns exactly the reference
    /// full-sort ranking for every policy, including heavy score ties.
    #[test]
    fn selection_matches_reference(
        seed in 0u64..500,
        k in 1usize..6,
        tie_fraction in 0.0f32..1.0,
    ) {
        let mnist_dim = zoo::logistic(&Task::Mnist.spec(), &mut rng(0)).param_count();
        let cloud: Vec<f32> = (0..mnist_dim).map(|i| ((i + 3) as f32 * 0.13).sin()).collect();
        let devices: Vec<Device> = (0..8)
            .map(|id| {
                // A tie_fraction of devices share the cloud parameters
                // exactly (utility exactly 0 — the freshly-synced case).
                if (id as f32) < tie_fraction * 8.0 {
                    device_from(id, &cloud)
                } else {
                    let v: Vec<f32> = (0..mnist_dim)
                        .map(|i| ((i * (id + 2)) as f32 * 0.07).cos())
                        .collect();
                    device_from(id, &v)
                }
            })
            .collect();
        let cands: Vec<usize> = (0..8).collect();
        for policy in [
            SelectionPolicy::Random,
            SelectionPolicy::LeastSimilarUpdate,
            SelectionPolicy::MostSimilarUpdate,
            SelectionPolicy::OortUtility,
        ] {
            let fast = select_devices(policy, k, &cands, &devices, &cloud, &mut rng(seed));
            let slow =
                select_devices_reference(policy, k, &cands, &devices, &cloud, &mut rng(seed));
            prop_assert_eq!(&fast, &slow);
        }
    }
}

#[test]
fn in_place_aggregates_match_references_bitwise() {
    let vs: Vec<Vec<f32>> = (0..4)
        .map(|j| {
            (0..8)
                .map(|i| ((i * 3 + j * 7) as f32 * 0.21).sin())
                .collect()
        })
        .collect();
    let models: Vec<Sequential> = vs.iter().map(|v| model_from(v)).collect();
    let refs: Vec<&Sequential> = models.iter().collect();

    let counts = [12usize, 40, 7, 21];
    let reference = edge_aggregate(&refs, &counts);
    let mut dst = model_from(&[9.0; 8]);
    edge_aggregate_into(&mut dst, refs.iter().copied().zip(counts.iter().copied()));
    assert_eq!(flatten(&reference), flatten(&dst));

    for windows in [[5.0f64, 0.0, 2.5, 30.0], [0.0, 0.0, 0.0, 0.0]] {
        let reference = cloud_aggregate(&refs, &windows);
        let mut dst = model_from(&[9.0; 8]);
        cloud_aggregate_into(&mut dst, refs.iter().copied().zip(windows.iter().copied()));
        assert_eq!(flatten(&reference), flatten(&dst));
    }
}

/// The exact-tie invariant behind selection equivalence: a device whose
/// parameters equal the cloud bitwise scores exactly 0 on both the fused
/// identity path and the naive delta path.
#[test]
fn freshly_synced_device_scores_exact_zero_on_both_paths() {
    let mnist_dim = zoo::logistic(&Task::Mnist.spec(), &mut rng(0)).param_count();
    let cloud: Vec<f32> = (0..mnist_dim).map(|i| (i as f32 * 0.011).cos()).collect();
    let device = device_from(3, &cloud);
    let norm = dot_slices(&cloud, &cloud);
    assert_eq!(
        update_similarity(&device, &cloud, norm).to_bits(),
        0.0f32.to_bits()
    );
    assert_eq!(
        update_similarity_reference(&device, &cloud).to_bits(),
        0.0f32.to_bits()
    );
    // Sanity: the shared norm really is the one the identity consumes.
    assert!(cosine_similarity_slices(&cloud, &cloud) > 0.99);
}

/// The end-to-end gate: 20 steps of the zero-copy `step` produce exactly
/// the same simulation state and evaluation curve as 20 steps of the
/// clone-based `step_reference`, for the full MIDDLE algorithm across
/// train → edge-aggregate → cloud-sync boundaries (`cloud_interval = 4`
/// exercises five sync/broadcast cycles and the cache invalidation in
/// between).
#[test]
fn twenty_step_trace_is_bitwise_identical_to_reference() {
    let mut cfg = SimConfig::tiny(DataTask::Mnist, Algorithm::middle());
    cfg.steps = 20;
    cfg.cloud_interval = 4;
    cfg.eval_interval = 2;
    let mut fast = built(cfg.clone());
    let mut slow = built(cfg.clone());

    for t in 0..cfg.steps {
        fast.step(t);
        slow.advance(t, StepMode::Reference);

        let (cf, cs) = (flatten(fast.cloud_model()), flatten(slow.cloud_model()));
        assert_eq!(bits(&cf), bits(&cs), "cloud diverged at step {t}");
        for (n, (ef, es)) in fast.edges().iter().zip(slow.edges()).enumerate() {
            assert_eq!(
                bits(&flatten(&ef.model)),
                bits(&flatten(&es.model)),
                "edge {n} diverged at step {t}"
            );
            assert_eq!(ef.window_samples.to_bits(), es.window_samples.to_bits());
        }
        for (df, ds) in fast.devices().iter().zip(slow.devices()) {
            assert_eq!(
                bits(&flatten(&df.model)),
                bits(&flatten(&ds.model)),
                "device {} diverged at step {t}",
                df.id
            );
            assert_eq!(
                df.oort_utility.map(f32::to_bits),
                ds.oort_utility.map(f32::to_bits)
            );
            assert_eq!(df.last_participation, ds.last_participation);
        }
        if (t + 1) % cfg.eval_interval == 0 {
            let gf = fast.evaluate(&fast.virtual_global());
            let gs = slow.evaluate(&slow.virtual_global());
            assert_eq!(
                gf.0.to_bits(),
                gs.0.to_bits(),
                "accuracy diverged at step {t}"
            );
            assert_eq!(gf.1.to_bits(), gs.1.to_bits(), "loss diverged at step {t}");
        }
    }
    assert_eq!(fast.syncs(), slow.syncs());
    assert_eq!(fast.comm_stats(), slow.comm_stats());
    assert_eq!(fast.active_steps(), slow.active_steps());
}

/// Availability filtering drains the same RNG stream on both paths, so a
/// 50%-dropout run must stay bitwise identical step for step — and the
/// corrected comm accounting (downloads counted only when they happen)
/// must agree between the two implementations.
#[test]
fn availability_trace_is_bitwise_identical_to_reference() {
    let mut cfg = SimConfig::tiny(DataTask::Mnist, Algorithm::middle());
    cfg.steps = 16;
    cfg.cloud_interval = 4;
    cfg.availability = 0.5;
    let mut fast = built(cfg.clone());
    let mut slow = built(cfg.clone());
    for t in 0..cfg.steps {
        fast.step(t);
        slow.advance(t, StepMode::Reference);
        let (cf, cs) = (flatten(fast.cloud_model()), flatten(slow.cloud_model()));
        assert_eq!(bits(&cf), bits(&cs), "cloud diverged at step {t}");
        for (df, ds) in fast.devices().iter().zip(slow.devices()) {
            assert_eq!(
                bits(&flatten(&df.model)),
                bits(&flatten(&ds.model)),
                "device {} diverged at step {t}",
                df.id
            );
        }
    }
    assert_eq!(fast.syncs(), slow.syncs());
    assert_eq!(fast.comm_stats(), slow.comm_stats());
    assert_eq!(fast.active_steps(), slow.active_steps());
    // With 50% dropout some steps can end up fully inactive; either way
    // the count must never exceed the horizon.
    assert!(fast.active_steps() <= cfg.steps as u64);
}

/// `OnDevicePolicy::KeepLocal` — moved devices keep training their own
/// model and never consume the edge download. The corrected accounting
/// must charge strictly fewer downloads than uploads whenever a selected
/// device had moved, identically on both paths.
#[test]
fn keep_local_trace_is_bitwise_identical_to_reference() {
    use middle_core::OnDevicePolicy;
    let algo = Algorithm::custom(
        "KeepLocal",
        SelectionPolicy::Random,
        OnDevicePolicy::KeepLocal,
    );
    let mut cfg = SimConfig::tiny(DataTask::Mnist, algo);
    cfg.steps = 12;
    cfg.cloud_interval = 4;
    let mut fast = built(cfg.clone());
    let mut slow = built(cfg.clone());
    for t in 0..cfg.steps {
        fast.step(t);
        slow.advance(t, StepMode::Reference);
        let (cf, cs) = (flatten(fast.cloud_model()), flatten(slow.cloud_model()));
        assert_eq!(bits(&cf), bits(&cs), "cloud diverged at step {t}");
        for (df, ds) in fast.devices().iter().zip(slow.devices()) {
            assert_eq!(
                bits(&flatten(&df.model)),
                bits(&flatten(&ds.model)),
                "device {} diverged at step {t}",
                df.id
            );
        }
    }
    let (f, s) = (fast.comm_stats(), slow.comm_stats());
    assert_eq!(f, s);
    assert_eq!(fast.active_steps(), slow.active_steps());
    // Every selected device uploads; only non-moved ones download. With
    // P = 0.5 mobility over 12 steps some selected device moved, so the
    // download count must sit strictly below the upload count.
    assert!(
        f.edge_to_device < f.device_to_edge,
        "downloads {} should be < uploads {} under KeepLocal",
        f.edge_to_device,
        f.device_to_edge
    );
}

/// Same gate for the Oort-selection / edge-download configuration, which
/// exercises the load-flat broadcast path (`OnDevicePolicy::EdgeModel`)
/// rather than similarity blending.
#[test]
fn oort_trace_is_bitwise_identical_to_reference() {
    let mut cfg = SimConfig::tiny(DataTask::Mnist, Algorithm::oort());
    cfg.steps = 12;
    cfg.cloud_interval = 3;
    let mut fast = built(cfg.clone());
    let mut slow = built(cfg.clone());
    for t in 0..cfg.steps {
        fast.step(t);
        slow.advance(t, StepMode::Reference);
    }
    assert_eq!(
        bits(&flatten(fast.cloud_model())),
        bits(&flatten(slow.cloud_model()))
    );
    for (df, ds) in fast.devices().iter().zip(slow.devices()) {
        assert_eq!(bits(&flatten(&df.model)), bits(&flatten(&ds.model)));
    }
}

/// The fault-plane no-op gate: with `FaultConfig::default()` (every
/// failure model off) a 20-step MIDDLE run must stay bitwise identical
/// to the pre-fault-plane implementation. The fingerprints below were
/// captured on commit a927eae (the last commit before the fault plane
/// landed) with exactly this FNV-1a-over-parameter-bits scheme; the
/// fault plane draws from its own RNG stream (`derive_seed(seed, 9)`)
/// and a disabled plane draws nothing, so these must never move unless
/// the simulation semantics deliberately change.
///
/// The floats hashed here come from deterministic seeded arithmetic on
/// x86_64 linux (container and CI alike); a different libm/platform
/// could legitimately shift `acc/loss` bits, in which case re-pin from
/// the pre-fault-plane commit on that platform.
#[test]
fn default_fault_config_is_bitwise_identical_to_pre_fault_plane_main() {
    let mut cfg = SimConfig::tiny(DataTask::Mnist, Algorithm::middle());
    cfg.steps = 20;
    cfg.cloud_interval = 4;
    cfg.eval_interval = 2;
    assert_eq!(cfg.faults, middle_core::FaultConfig::default());
    let mut sim = built(cfg);
    for t in 0..20 {
        sim.step(t);
    }

    assert_eq!(fnv_params(&flatten(sim.cloud_model())), 0x75a18b3f9d2c2c47);
    let mut devices_fnv = 0xcbf29ce484222325u64;
    for d in sim.devices() {
        fnv(
            &mut devices_fnv,
            &fnv_params(&flatten(&d.model)).to_le_bytes(),
        );
    }
    assert_eq!(devices_fnv, 0x94105ab3ced3cd05);
    let mut edges_fnv = 0xcbf29ce484222325u64;
    for e in sim.edges() {
        fnv(
            &mut edges_fnv,
            &fnv_params(&flatten(&e.model)).to_le_bytes(),
        );
    }
    assert_eq!(edges_fnv, 0xa901b57d25ac7acd);

    let (acc, loss, _) = sim.evaluate(&sim.virtual_global());
    assert_eq!(acc.to_bits(), 0x3e19999a);
    assert_eq!(loss.to_bits(), 0x4018f3e4);

    let comm = sim.comm_stats();
    assert_eq!(
        (
            comm.edge_to_device,
            comm.device_to_edge,
            comm.edge_to_cloud,
            comm.cloud_to_edge,
            comm.cloud_to_device,
        ),
        (79, 79, 10, 10, 40)
    );
    assert_eq!(comm.upload_retransmissions, 0);
    assert_eq!(comm.lost_uploads, 0);
    assert_eq!(comm.stale_uploads, 0);
    assert_eq!(sim.syncs(), 5);
    assert_eq!(sim.active_steps(), 20);
}

/// The compression no-op gate: with `CompressionConfig::default()`
/// (plane off) a 20-step MIDDLE run must stay bitwise identical to the
/// pre-compression-plane implementation — same fingerprints as the
/// fault-plane gate above (captured on commit a927eae; the compression
/// plane owns RNG stream `derive_seed(seed, 10)` and an inert plane
/// draws nothing). On top of the parameter/accuracy fingerprints this
/// pins the new byte ledger: with dense payloads every per-tier byte
/// counter must equal its transfer count times `4 · param_count`.
#[test]
fn default_compression_config_is_bitwise_identical_to_pre_compression_main() {
    let mut cfg = SimConfig::tiny(DataTask::Mnist, Algorithm::middle());
    cfg.steps = 20;
    cfg.cloud_interval = 4;
    cfg.eval_interval = 2;
    assert_eq!(cfg.compression, middle_core::CompressionConfig::default());
    assert!(!cfg.compression.enabled);
    let mut sim = built(cfg);
    for t in 0..20 {
        sim.step(t);
    }

    assert_eq!(fnv_params(&flatten(sim.cloud_model())), 0x75a18b3f9d2c2c47);
    let mut devices_fnv = 0xcbf29ce484222325u64;
    for d in sim.devices() {
        fnv(
            &mut devices_fnv,
            &fnv_params(&flatten(&d.model)).to_le_bytes(),
        );
    }
    assert_eq!(devices_fnv, 0x94105ab3ced3cd05);
    let (acc, loss, _) = sim.evaluate(&sim.virtual_global());
    assert_eq!(acc.to_bits(), 0x3e19999a);
    assert_eq!(loss.to_bits(), 0x4018f3e4);

    let dense = 4 * flatten(sim.cloud_model()).len() as u64;
    let comm = *sim.comm_stats();
    assert_eq!(
        (
            comm.edge_to_device,
            comm.device_to_edge,
            comm.edge_to_cloud,
            comm.cloud_to_edge,
            comm.cloud_to_device,
        ),
        (79, 79, 10, 10, 40)
    );
    assert_eq!(comm.edge_to_device_bytes, 79 * dense);
    assert_eq!(comm.device_to_edge_bytes, 79 * dense);
    assert_eq!(comm.edge_to_cloud_bytes, 10 * dense);
    assert_eq!(comm.cloud_to_edge_bytes, 10 * dense);
    assert_eq!(comm.cloud_to_device_bytes, 40 * dense);
    assert_eq!(comm.payload_total_bytes(), (79 + 79 + 10 + 10 + 40) * dense);
    assert_eq!(sim.syncs(), 5);

    let record = sim.finish();
    assert_eq!(record.param_count, dense / 4);
}

/// Enabling the plane at a lossless setting (`bits ≥ 32`, `top_frac =
/// 1.0`) short-circuits it entirely, so the run must be bitwise
/// identical to compression-off — including the byte ledger.
#[test]
fn lossless_compression_run_is_bitwise_identical_to_off() {
    let mut cfg = SimConfig::tiny(DataTask::Mnist, Algorithm::middle());
    cfg.steps = 12;
    cfg.cloud_interval = 4;
    let mut off = built(cfg.clone());
    cfg.compression.enabled = true;
    cfg.compression.quantize_bits = 32;
    cfg.compression.top_frac = 1.0;
    assert!(!cfg.compression.lossy_active());
    let mut lossless = built(cfg.clone());
    for t in 0..cfg.steps {
        off.step(t);
        lossless.step(t);
    }
    assert_eq!(
        bits(&flatten(off.cloud_model())),
        bits(&flatten(lossless.cloud_model()))
    );
    for (a, b) in off.devices().iter().zip(lossless.devices()) {
        assert_eq!(bits(&flatten(&a.model)), bits(&flatten(&b.model)));
    }
    for (a, b) in off.edges().iter().zip(lossless.edges()) {
        assert_eq!(bits(&flatten(&a.model)), bits(&flatten(&b.model)));
    }
    assert_eq!(off.comm_stats(), lossless.comm_stats());
}

/// Lossy compression consumes its RNG stream and rewrites every uplink
/// identically on both step implementations (shared
/// `compressed_edge_pass` / `compressed_cloud_sync` helpers), so a
/// quantized + sparsified run must stay bitwise identical step for
/// step.
#[test]
fn lossy_compression_trace_is_bitwise_identical_to_reference() {
    let mut cfg = SimConfig::tiny(DataTask::Mnist, Algorithm::middle());
    cfg.steps = 20;
    cfg.cloud_interval = 4;
    cfg.compression.enabled = true;
    cfg.compression.quantize_bits = 6;
    cfg.compression.top_frac = 0.3;
    assert!(cfg.compression.lossy_active());
    let mut fast = built(cfg.clone());
    let mut slow = built(cfg.clone());
    for t in 0..cfg.steps {
        fast.step(t);
        slow.advance(t, StepMode::Reference);
        let (cf, cs) = (flatten(fast.cloud_model()), flatten(slow.cloud_model()));
        assert_eq!(bits(&cf), bits(&cs), "cloud diverged at step {t}");
        for (n, (ef, es)) in fast.edges().iter().zip(slow.edges()).enumerate() {
            assert_eq!(
                bits(&flatten(&ef.model)),
                bits(&flatten(&es.model)),
                "edge {n} diverged at step {t}"
            );
            assert_eq!(ef.window_samples.to_bits(), es.window_samples.to_bits());
        }
        for (df, ds) in fast.devices().iter().zip(slow.devices()) {
            assert_eq!(
                bits(&flatten(&df.model)),
                bits(&flatten(&ds.model)),
                "device {} diverged at step {t}",
                df.id
            );
        }
    }
    assert_eq!(fast.syncs(), slow.syncs());
    assert_eq!(fast.comm_stats(), slow.comm_stats());
    // Compressed uplinks must actually shrink the ledger: uplink bytes
    // sit strictly below count × dense.
    let comm = fast.comm_stats();
    let dense = 4 * flatten(fast.cloud_model()).len() as u64;
    assert!(comm.device_to_edge_bytes < comm.device_to_edge * dense);
    assert!(comm.edge_to_cloud_bytes < comm.edge_to_cloud * dense);
    // Downlinks stay dense.
    assert_eq!(comm.edge_to_device_bytes, comm.edge_to_device * dense);
    assert_eq!(comm.cloud_to_device_bytes, comm.cloud_to_device * dense);
}

/// The full-interaction gate: lossy compression with *every* failure
/// model enabled at once (i.i.d. dropout, uniform straggler delays
/// with a deadline, lossy retried uploads and WAN outages) must stay
/// bitwise identical between the two step implementations — deadline
/// misses compress at miss time, lost uploads advance the residual and
/// RNG, and masked cloud syncs compress only the up edges, all through
/// the shared helpers.
#[test]
fn lossy_compression_with_all_faults_is_bitwise_identical_to_reference() {
    use middle_core::{DelayModel, DropoutModel};
    let mut cfg = SimConfig::tiny(DataTask::Mnist, Algorithm::middle());
    cfg.steps = 20;
    cfg.cloud_interval = 4;
    cfg.compression.enabled = true;
    cfg.compression.quantize_bits = 4;
    cfg.compression.top_frac = 0.25;
    cfg.faults.dropout = DropoutModel::Iid { p: 0.2 };
    cfg.faults.straggler_delay = DelayModel::Uniform {
        min_s: 0.0,
        max_s: 2.0,
    };
    cfg.faults.deadline_s = 1.5;
    cfg.faults.upload_loss = 0.15;
    cfg.faults.upload_retries = 2;
    cfg.faults.wan_outage = 0.3;
    let mut fast = built(cfg.clone());
    let mut slow = built(cfg.clone());
    for t in 0..cfg.steps {
        fast.step(t);
        slow.advance(t, StepMode::Reference);
        let (cf, cs) = (flatten(fast.cloud_model()), flatten(slow.cloud_model()));
        assert_eq!(bits(&cf), bits(&cs), "cloud diverged at step {t}");
        for (n, (ef, es)) in fast.edges().iter().zip(slow.edges()).enumerate() {
            assert_eq!(
                bits(&flatten(&ef.model)),
                bits(&flatten(&es.model)),
                "edge {n} diverged at step {t}"
            );
        }
        for (df, ds) in fast.devices().iter().zip(slow.devices()) {
            assert_eq!(
                bits(&flatten(&df.model)),
                bits(&flatten(&ds.model)),
                "device {} diverged at step {t}",
                df.id
            );
        }
    }
    assert_eq!(fast.syncs(), slow.syncs());
    assert_eq!(fast.comm_stats(), slow.comm_stats());
    assert_eq!(fast.active_steps(), slow.active_steps());
}
