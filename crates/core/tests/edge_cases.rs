//! Failure-injection and boundary tests for the simulation loop: empty
//! edges under extreme mobility clustering, K larger than the candidate
//! pool, degenerate single-edge / single-device setups, never-syncing
//! clouds, and pathological model states.

use middle_core::aggregation::{cloud_aggregate, on_device_init};
use middle_core::{
    Algorithm, MobilitySource, OnDevicePolicy, SimConfig, SimError, Simulation, SimulationBuilder,
    StepMode,
};
use middle_data::Task;
use middle_mobility::Trace;
use middle_nn::params::{flatten, unflatten};

fn tiny(algorithm: Algorithm) -> SimConfig {
    SimConfig::tiny(Task::Mnist, algorithm)
}

fn built(cfg: SimConfig) -> Simulation {
    SimulationBuilder::new(cfg).build().expect("valid config")
}

fn built_with_trace(cfg: SimConfig, trace: Trace) -> Simulation {
    SimulationBuilder::new(cfg)
        .with_trace(trace)
        .build()
        .expect("valid trace")
}

#[test]
fn edges_with_no_candidates_are_skipped() {
    // All devices pinned to edge 0: edge 1 must survive every step with
    // its model unchanged until the sync broadcast.
    let mut cfg = tiny(Algorithm::middle());
    cfg.num_devices = 6;
    cfg.num_edges = 2;
    cfg.steps = 3;
    cfg.cloud_interval = 10; // no sync within the horizon
    let trace = Trace::new(2, vec![vec![0; 6]; 3]);
    let mut sim = built_with_trace(cfg, trace);
    let edge1_before = flatten(&sim.edges()[1].model);
    for t in 0..3 {
        sim.step(t);
    }
    assert_eq!(flatten(&sim.edges()[1].model), edge1_before);
    assert_ne!(flatten(&sim.edges()[0].model), edge1_before);
}

#[test]
fn k_larger_than_any_edge_population_still_trains() {
    let mut cfg = tiny(Algorithm::oort());
    cfg.num_devices = 4;
    cfg.num_edges = 2;
    // K equal to the whole population still exceeds every per-edge
    // candidate set (~2 devices each); larger K now fails validation.
    cfg.devices_per_edge = 4;
    cfg.steps = 2;
    let record = built(cfg).run();
    assert!(record.final_accuracy().is_finite());
}

#[test]
fn single_edge_degenerates_to_vanilla_fl() {
    // One edge = classical cloud-device FL; mobility is a no-op.
    let mut cfg = tiny(Algorithm::middle());
    cfg.num_edges = 1;
    cfg.num_devices = 6;
    cfg.steps = 4;
    let sim = built(cfg);
    assert_eq!(sim.trace().empirical_mobility(), 0.0);
}

#[test]
fn single_device_per_edge_works() {
    let mut cfg = tiny(Algorithm::fedmes());
    cfg.num_devices = 2;
    cfg.num_edges = 2;
    cfg.devices_per_edge = 1;
    cfg.steps = 3;
    let record = built(cfg).run();
    assert!(record.final_accuracy().is_finite());
}

#[test]
fn never_syncing_cloud_keeps_initial_cloud_model() {
    let mut cfg = tiny(Algorithm::middle());
    cfg.cloud_interval = 1000;
    cfg.steps = 4;
    let mut sim = built(cfg);
    let cloud0 = flatten(sim.cloud_model());
    for t in 0..4 {
        sim.step(t);
    }
    assert_eq!(flatten(sim.cloud_model()), cloud0);
    // But the virtual global has moved.
    assert_ne!(flatten(&sim.virtual_global()), cloud0);
}

#[test]
fn sync_every_step_is_valid() {
    let mut cfg = tiny(Algorithm::middle());
    cfg.cloud_interval = 1;
    cfg.steps = 3;
    let record = built(cfg).run();
    assert!(record.final_accuracy().is_finite());
}

#[test]
fn full_mobility_probability_one() {
    let mut cfg = tiny(Algorithm::middle());
    cfg.mobility = MobilitySource::MarkovHop { p: 1.0 };
    cfg.steps = 5;
    let sim = built(cfg);
    assert!(sim.trace().empirical_mobility() > 0.9);
}

#[test]
fn zero_mobility_never_triggers_on_device_aggregation() {
    // With P = 0, MIDDLE must behave identically to HierFAVG given the
    // same seed and a selection policy that doesn't depend on history.
    let mk = |on_device| {
        let mut cfg = tiny(Algorithm::custom(
            "x",
            middle_core::SelectionPolicy::Random,
            on_device,
        ));
        cfg.mobility = MobilitySource::MarkovHop { p: 0.0 };
        cfg.steps = 4;
        built(cfg).run()
    };
    let blended = mk(OnDevicePolicy::SimilarityWeighted);
    let general = mk(OnDevicePolicy::EdgeModel);
    let acc = |r: &middle_core::RunRecord| {
        r.points
            .iter()
            .map(|p| p.global_accuracy)
            .collect::<Vec<_>>()
    };
    assert_eq!(acc(&blended), acc(&general));
}

#[test]
fn on_device_init_handles_zero_models() {
    // An all-zero carried model must not produce NaNs anywhere.
    let spec = Task::Mnist.spec();
    let edge = middle_nn::zoo::logistic(&spec, &mut middle_tensor::random::rng(1));
    let mut zero = edge.clone();
    let d = zero.param_count();
    unflatten(&mut zero, &vec![0.0; d]);
    for policy in [
        OnDevicePolicy::SimilarityWeighted,
        OnDevicePolicy::UnclippedSimilarity,
        OnDevicePolicy::Average,
        OnDevicePolicy::FixedAlpha { alpha: 0.5 },
    ] {
        let init = on_device_init(policy, &edge, &zero);
        assert!(
            flatten(&init).iter().all(|v| v.is_finite()),
            "{policy:?} produced non-finite values"
        );
    }
}

#[test]
fn cloud_aggregate_single_edge_is_identity() {
    let spec = Task::Mnist.spec();
    let m = middle_nn::zoo::logistic(&spec, &mut middle_tensor::random::rng(2));
    let agg = cloud_aggregate(&[&m], &[7.0]);
    assert_eq!(flatten(&agg), flatten(&m));
}

#[test]
fn trace_exactly_as_long_as_horizon_is_accepted() {
    let mut cfg = tiny(Algorithm::middle());
    cfg.steps = 5;
    cfg.num_devices = 8;
    cfg.num_edges = 2;
    let trace = Trace::new(2, vec![vec![0, 1, 0, 1, 0, 1, 0, 1]; 5]);
    let record = built_with_trace(cfg, trace).run();
    assert!(record.final_accuracy().is_finite());
}

#[test]
fn too_short_trace_is_rejected() {
    let mut cfg = tiny(Algorithm::middle());
    cfg.steps = 9;
    cfg.num_devices = 8;
    cfg.num_edges = 2;
    let trace = Trace::new(2, vec![vec![0; 8]; 3]);
    let err = match SimulationBuilder::new(cfg).with_trace(trace).build() {
        Ok(_) => panic!("short trace must not build"),
        Err(e) => e,
    };
    assert!(matches!(err, SimError::TraceMismatch { .. }));
    assert!(err
        .to_string()
        .contains("shorter than the configured horizon"));
}

#[test]
fn extreme_class_imbalance_on_speech_task() {
    // The hardest stand-in task with single-class devices and tiny data.
    let mut cfg = SimConfig::tiny(Task::Speech, Algorithm::greedy());
    cfg.scheme = middle_data::Scheme::SingleClass;
    cfg.steps = 3;
    let record = built(cfg).run();
    assert!(record.final_accuracy().is_finite());
}

#[test]
fn comm_stats_accumulate_per_step_and_sync() {
    let mut cfg = tiny(Algorithm::middle());
    cfg.num_devices = 8;
    cfg.num_edges = 2;
    cfg.devices_per_edge = 2;
    cfg.cloud_interval = 2;
    cfg.steps = 4;
    let mut sim = built(cfg);
    for t in 0..4 {
        sim.step(t);
    }
    let c = sim.comm_stats();
    // Downloads == uploads (every selected device does both).
    assert_eq!(c.edge_to_device, c.device_to_edge);
    assert!(c.edge_to_device > 0);
    // 2 syncs × 2 edges each way; 2 syncs × 8 devices broadcast.
    assert_eq!(sim.syncs(), 2);
    assert_eq!(c.edge_to_cloud, 4);
    assert_eq!(c.cloud_to_edge, 4);
    assert_eq!(c.cloud_to_device, 16);
}

#[test]
fn larger_tc_reduces_wan_traffic() {
    let run = |tc: usize| {
        let mut cfg = tiny(Algorithm::oort());
        cfg.cloud_interval = tc;
        cfg.steps = 8;
        built(cfg).run()
    };
    let frequent = run(2);
    let rare = run(8);
    assert!(frequent.comm.wan_total() > rare.comm.wan_total());
    assert_eq!(rare.syncs, 1);
}

#[test]
fn zero_availability_blocks_all_training() {
    let mut cfg = tiny(Algorithm::middle());
    cfg.availability = 0.0;
    cfg.steps = 3;
    let mut sim = built(cfg);
    let before = flatten(&sim.edges()[0].model);
    for t in 0..3 {
        sim.step(t);
    }
    assert_eq!(flatten(&sim.edges()[0].model), before);
    assert_eq!(sim.comm_stats().total(), 0);
}

#[test]
fn partial_availability_still_converges_run() {
    let mut cfg = tiny(Algorithm::middle());
    cfg.availability = 0.5;
    cfg.steps = 6;
    let record = built(cfg).run();
    assert!(record.final_accuracy().is_finite());
    assert!(record.comm.total() > 0);
}

#[test]
fn availability_outside_range_is_rejected() {
    let mut cfg = tiny(Algorithm::middle());
    cfg.availability = 1.5;
    assert!(cfg.validate().is_err());
}

/// A sync fires while one edge has an empty cohort (every device pinned
/// elsewhere): the policy hooks that wrap aggregation and sync must
/// tolerate edges that never aggregated this round, and the broadcast
/// must still retarget the idle edge. Exercised across the zoo's
/// hook-bearing policies, stateful FedFly included.
fn empty_cohort_edge_at_sync_survives_policy_hooks(mode: StepMode) {
    for algorithm in [Algorithm::middle(), Algorithm::fedfly(), Algorithm::oort()] {
        let name = algorithm.name.clone();
        let mut cfg = tiny(algorithm);
        cfg.num_devices = 6;
        cfg.num_edges = 2;
        cfg.steps = 4;
        cfg.cloud_interval = 2; // syncs at steps 2 and 4
        let trace = Trace::new(2, vec![vec![0; 6]; 4]);
        let mut sim = built_with_trace(cfg, trace);
        let edge1_before = flatten(&sim.edges()[1].model);
        for t in 0..4 {
            sim.advance(t, mode);
        }
        assert!(sim.syncs() >= 1, "{name}: no sync fired");
        assert_ne!(
            flatten(&sim.edges()[1].model),
            edge1_before,
            "{name}: sync broadcast never reached the empty-cohort edge"
        );
        let (acc, loss, _) = sim.evaluate(&sim.virtual_global());
        assert!(
            acc.is_finite() && loss.is_finite(),
            "{name}: NaN after sync"
        );
    }
}

#[test]
fn empty_cohort_edge_at_sync_survives_policy_hooks_fast() {
    empty_cohort_edge_at_sync_survives_policy_hooks(StepMode::Fast);
}

#[test]
fn empty_cohort_edge_at_sync_survives_policy_hooks_reference() {
    empty_cohort_edge_at_sync_survives_policy_hooks(StepMode::Reference);
}

/// The fully-degenerate corner: *no* device anywhere trains (zero
/// availability) yet the sync cadence still fires. Every cohort is
/// empty at sync time; the run and its policy hooks must complete with
/// finite metrics for a stateful policy too.
#[test]
fn all_cohorts_empty_at_sync_time_completes() {
    for algorithm in [Algorithm::middle(), Algorithm::fedfly()] {
        let name = algorithm.name.clone();
        let mut cfg = tiny(algorithm);
        cfg.availability = 0.0;
        cfg.steps = 4;
        cfg.cloud_interval = 2;
        let record = built(cfg).run();
        assert_eq!(record.active_steps, 0, "{name}: nothing should train");
        assert!(
            record.final_accuracy().is_finite(),
            "{name}: metrics corrupted by empty-cohort syncs"
        );
    }
}
