//! Communication-cost accounting.
//!
//! The paper motivates hierarchical FL by communication efficiency in
//! wireless networks (§1, §7): edges aggregate locally over cheap
//! device-edge links and talk to the cloud over the expensive WAN only
//! every `T_c` steps. This module counts every model transmission the
//! simulation performs, so algorithms can be compared on bytes moved and
//! on a simple wall-clock model, not only on time steps.

use serde::{Deserialize, Serialize};

/// Reference seconds for one model transfer on a device↔edge wireless
/// link, shared by the examples and the `fault_sweep` bench so the two
/// wall-clock models cannot drift.
pub const WIRELESS_SECS_PER_TRANSFER: f64 = 1.0;

/// Reference seconds for one model transfer on the edge↔cloud WAN.
pub const WAN_SECS_PER_TRANSFER: f64 = 10.0;

/// Transmission counters for one simulation run.
///
/// The `*_to_*` counters are in *model units* (one unit = one payload,
/// compressed or not); the `*_bytes` counters are the actual wire bytes
/// those payloads occupied. Without the compression plane every payload
/// is dense (`4 × param_count` bytes), so byte counters are count ×
/// dense size; under compression the uplink classes (`device_to_edge`,
/// `edge_to_cloud`) shrink while downlinks stay dense.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CommStats {
    /// Edge → device model downloads (one per selected device per step).
    pub edge_to_device: u64,
    /// Device → edge model uploads (one per participating device).
    pub device_to_edge: u64,
    /// Edge → cloud uploads (one per edge per sync).
    pub edge_to_cloud: u64,
    /// Cloud → edge broadcasts (one per edge per sync).
    pub cloud_to_edge: u64,
    /// Cloud → device broadcasts (one per device per sync).
    pub cloud_to_device: u64,
    /// Extra wireless upload attempts beyond the first, caused by
    /// fault-plane upload loss (each retransmission moves a full model
    /// and is included in [`Self::device_to_edge`]).
    #[serde(default)]
    pub upload_retransmissions: u64,
    /// Uploads abandoned after exhausting the fault-plane retry budget
    /// (the transmission attempts are still charged; the update never
    /// reaches the edge).
    #[serde(default)]
    pub lost_uploads: u64,
    /// Deadline-missed uploads delivered late and applied as stale
    /// similarity-weighted merges on the next step.
    #[serde(default)]
    pub stale_uploads: u64,
    /// Exponential-backoff slots waited before upload retries (retry
    /// `k` waits `2^(k−1)` slots); convert to seconds with
    /// [`Self::retry_backoff_seconds`].
    #[serde(default)]
    pub retry_backoff_slots: u64,
    /// Wire bytes of all edge → device downloads (always dense).
    #[serde(default)]
    pub edge_to_device_bytes: u64,
    /// Wire bytes of all device → edge uploads, including
    /// retransmissions and stale deliveries — compressed size when the
    /// compression plane is lossy-active.
    #[serde(default)]
    pub device_to_edge_bytes: u64,
    /// Wire bytes of all edge → cloud sync uploads — compressed size
    /// when the compression plane is lossy-active.
    #[serde(default)]
    pub edge_to_cloud_bytes: u64,
    /// Wire bytes of all cloud → edge broadcasts (always dense).
    #[serde(default)]
    pub cloud_to_edge_bytes: u64,
    /// Wire bytes of all cloud → device broadcasts (always dense).
    #[serde(default)]
    pub cloud_to_device_bytes: u64,
    /// Edge → edge in-flight update hand-offs (FedFly migration: one
    /// per device that moved edges while its last uploaded update was
    /// still in flight). Zero for every non-migrating algorithm.
    #[serde(default)]
    pub edge_to_edge: u64,
    /// Wire bytes of all edge → edge hand-offs (always dense).
    #[serde(default)]
    pub edge_to_edge_bytes: u64,
}

impl CommStats {
    /// Total transmissions over device-edge wireless links.
    pub fn wireless_total(&self) -> u64 {
        self.edge_to_device + self.device_to_edge + self.cloud_to_device
    }

    /// Total transmissions over the edge-cloud WAN; edge → edge
    /// hand-offs ride the same inter-edge backhaul and are grouped here.
    pub fn wan_total(&self) -> u64 {
        self.edge_to_cloud + self.cloud_to_edge + self.edge_to_edge
    }

    /// Total transmissions.
    pub fn total(&self) -> u64 {
        self.wireless_total() + self.wan_total()
    }

    /// Total bytes for a model with `param_count` f32 parameters,
    /// assuming every payload is dense.
    #[deprecated(note = "assumes full-f32 payloads; use payload_total_bytes() \
                (exact, compression-aware) instead")]
    pub fn total_bytes(&self, param_count: usize) -> u64 {
        self.total() * 4 * param_count as u64
    }

    /// Charges one version-deduped cloud→device broadcast: `receivers`
    /// devices receive the same dense model version. The ledger counts
    /// per-receiver units/bytes — identical to charging each device
    /// individually — while the simulation materialises the payload once.
    pub fn charge_broadcast(&mut self, receivers: u64, dense_bytes: u64) {
        self.cloud_to_device += receivers;
        self.cloud_to_device_bytes += receivers * dense_bytes;
    }

    /// Exact wire bytes moved over device-edge wireless links.
    pub fn wireless_bytes(&self) -> u64 {
        self.edge_to_device_bytes + self.device_to_edge_bytes + self.cloud_to_device_bytes
    }

    /// Exact wire bytes moved over the edge-cloud WAN (including
    /// edge → edge hand-offs on the inter-edge backhaul).
    pub fn wan_bytes(&self) -> u64 {
        self.edge_to_cloud_bytes + self.cloud_to_edge_bytes + self.edge_to_edge_bytes
    }

    /// Exact wire bytes moved on the two uplink classes the compression
    /// plane rewrites (device→edge uploads and edge→cloud syncs).
    pub fn uplink_bytes(&self) -> u64 {
        self.device_to_edge_bytes + self.edge_to_cloud_bytes
    }

    /// Exact total wire bytes moved, all transfer classes.
    pub fn payload_total_bytes(&self) -> u64 {
        self.wireless_bytes() + self.wan_bytes()
    }

    /// Simulated communication wall-clock under a two-tier link model.
    ///
    /// `wireless_s` / `wan_s` are the seconds one model transfer takes on
    /// each tier; transfers within a tier and step are assumed parallel
    /// across devices/edges, so the cost counts *rounds*.
    ///
    /// `active_steps` must be the number of steps in which at least one
    /// device actually participated (`RunRecord::active_steps`, also
    /// `StepCounters::active_steps` when telemetry is on) — *not* the
    /// raw step count. A step where availability filtering left every
    /// edge with zero selected devices moves no models and therefore
    /// costs no wireless rounds. Syncs still charge their broadcast
    /// round unconditionally: the simulation broadcasts the cloud model
    /// to every device at each sync regardless of that step's
    /// participation.
    pub fn wall_clock(&self, active_steps: u64, syncs: u64, wireless_s: f64, wan_s: f64) -> f64 {
        // Each active time step: download + upload (2 wireless rounds).
        // Each sync: edge→cloud + cloud→edge (2 WAN rounds) + broadcast
        // to devices (1 wireless round).
        let wireless_rounds = 2 * active_steps + syncs;
        let wan_rounds = 2 * syncs;
        wireless_rounds as f64 * wireless_s + wan_rounds as f64 * wan_s
    }

    /// Byte-accurate variant of [`Self::wall_clock`]: each round's cost
    /// scales with the mean payload size of its transfer class relative
    /// to a dense `4 × param_count`-byte model, so compressed uplink
    /// rounds finish proportionally faster. With every class dense the
    /// result equals [`Self::wall_clock`] exactly; classes that never
    /// transferred contribute nothing.
    pub fn wall_clock_bytes(
        &self,
        active_steps: u64,
        syncs: u64,
        wireless_s: f64,
        wan_s: f64,
        param_count: u64,
    ) -> f64 {
        let dense = (4 * param_count) as f64;
        let ratio = |bytes: u64, count: u64| {
            if count == 0 || dense == 0.0 {
                0.0
            } else {
                bytes as f64 / (count as f64 * dense)
            }
        };
        let down = ratio(self.edge_to_device_bytes, self.edge_to_device);
        let up = ratio(self.device_to_edge_bytes, self.device_to_edge);
        let bcast = ratio(self.cloud_to_device_bytes, self.cloud_to_device);
        let sync_up = ratio(self.edge_to_cloud_bytes, self.edge_to_cloud);
        let sync_down = ratio(self.cloud_to_edge_bytes, self.cloud_to_edge);
        let wireless_rounds = active_steps as f64 * (down + up) + syncs as f64 * bcast;
        let wan_rounds = syncs as f64 * (sync_up + sync_down);
        wireless_rounds * wireless_s + wan_rounds * wan_s
    }

    /// Wall-clock seconds spent in retry backoff, given the length of
    /// one backoff slot in seconds. Backoff waits are per-device and
    /// overlap with other devices' transfers, so this is reported
    /// separately rather than folded into [`Self::wall_clock`].
    pub fn retry_backoff_seconds(&self, slot_s: f64) -> f64 {
        self.retry_backoff_slots as f64 * slot_s
    }

    /// Adds another counter set into this one.
    pub fn merge(&mut self, other: &CommStats) {
        self.edge_to_device += other.edge_to_device;
        self.device_to_edge += other.device_to_edge;
        self.edge_to_cloud += other.edge_to_cloud;
        self.cloud_to_edge += other.cloud_to_edge;
        self.cloud_to_device += other.cloud_to_device;
        self.upload_retransmissions += other.upload_retransmissions;
        self.lost_uploads += other.lost_uploads;
        self.stale_uploads += other.stale_uploads;
        self.retry_backoff_slots += other.retry_backoff_slots;
        self.edge_to_device_bytes += other.edge_to_device_bytes;
        self.device_to_edge_bytes += other.device_to_edge_bytes;
        self.edge_to_cloud_bytes += other.edge_to_cloud_bytes;
        self.cloud_to_edge_bytes += other.cloud_to_edge_bytes;
        self.cloud_to_device_bytes += other.cloud_to_device_bytes;
        self.edge_to_edge += other.edge_to_edge;
        self.edge_to_edge_bytes += other.edge_to_edge_bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> CommStats {
        CommStats {
            edge_to_device: 10,
            device_to_edge: 10,
            edge_to_cloud: 2,
            cloud_to_edge: 2,
            cloud_to_device: 8,
            ..CommStats::default()
        }
    }

    #[test]
    fn totals_partition_by_tier() {
        let s = stats();
        assert_eq!(s.wireless_total(), 28);
        assert_eq!(s.wan_total(), 4);
        assert_eq!(s.total(), 32);
    }

    #[test]
    #[allow(deprecated)]
    fn bytes_scale_with_model_size() {
        let s = stats();
        assert_eq!(s.total_bytes(1000), 32 * 4000);
        assert_eq!(s.total_bytes(0), 0);
    }

    #[test]
    fn payload_byte_counters_partition_by_tier() {
        let s = CommStats {
            edge_to_device_bytes: 100,
            device_to_edge_bytes: 30,
            edge_to_cloud_bytes: 7,
            cloud_to_edge_bytes: 200,
            cloud_to_device_bytes: 1000,
            ..stats()
        };
        assert_eq!(s.wireless_bytes(), 1130);
        assert_eq!(s.wan_bytes(), 207);
        assert_eq!(s.uplink_bytes(), 37);
        assert_eq!(s.payload_total_bytes(), 1337);
    }

    #[test]
    fn wall_clock_bytes_matches_rounds_model_when_dense() {
        let mut s = stats();
        let d = 250u64; // dense payload = 1000 bytes
        s.edge_to_device_bytes = s.edge_to_device * 4 * d;
        s.device_to_edge_bytes = s.device_to_edge * 4 * d;
        s.edge_to_cloud_bytes = s.edge_to_cloud * 4 * d;
        s.cloud_to_edge_bytes = s.cloud_to_edge * 4 * d;
        s.cloud_to_device_bytes = s.cloud_to_device * 4 * d;
        let rounds = s.wall_clock(10, 2, 1.0, 10.0);
        let bytes = s.wall_clock_bytes(10, 2, 1.0, 10.0, d);
        assert!((rounds - bytes).abs() < 1e-9, "{rounds} vs {bytes}");
    }

    #[test]
    fn wall_clock_bytes_scales_uplinks_with_compression() {
        let mut s = stats();
        let d = 250u64;
        s.edge_to_device_bytes = s.edge_to_device * 4 * d;
        // Uplinks compressed 4×.
        s.device_to_edge_bytes = s.device_to_edge * d;
        s.edge_to_cloud_bytes = s.edge_to_cloud * d;
        s.cloud_to_edge_bytes = s.cloud_to_edge * 4 * d;
        s.cloud_to_device_bytes = s.cloud_to_device * 4 * d;
        // wireless = 10·(1 + 0.25) + 2·1 = 14.5; wan = 2·(0.25 + 1) = 2.5.
        let t = s.wall_clock_bytes(10, 2, 1.0, 10.0, d);
        assert!((t - (14.5 + 25.0)).abs() < 1e-9, "{t}");
        // Untransferred classes cost nothing.
        assert_eq!(
            CommStats::default().wall_clock_bytes(5, 5, 1.0, 10.0, d),
            0.0
        );
    }

    #[test]
    fn wall_clock_charges_wan_per_sync() {
        let s = stats();
        // 10 steps, 1 sync, 1 s wireless, 10 s WAN:
        // wireless rounds = 21, wan rounds = 2 → 21 + 20 = 41 s.
        assert!((s.wall_clock(10, 1, 1.0, 10.0) - 41.0).abs() < 1e-9);
        // No syncs: WAN free.
        assert!((s.wall_clock(10, 0, 1.0, 10.0) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn wall_clock_charges_nothing_for_inactive_steps() {
        let s = stats();
        // A fully-straggled run (0 active steps, 0 syncs) moves nothing.
        assert_eq!(s.wall_clock(0, 0, 1.0, 10.0), 0.0);
        // With syncs, only the sync rounds are charged.
        assert!((s.wall_clock(0, 2, 1.0, 10.0) - (2.0 + 40.0)).abs() < 1e-9);
    }

    #[test]
    fn merge_adds_componentwise() {
        let mut a = stats();
        a.upload_retransmissions = 3;
        a.lost_uploads = 1;
        a.stale_uploads = 2;
        a.retry_backoff_slots = 7;
        a.merge(&a.clone());
        assert_eq!(a.total(), 64);
        assert_eq!(a.edge_to_cloud, 4);
        assert_eq!(a.upload_retransmissions, 6);
        assert_eq!(a.lost_uploads, 2);
        assert_eq!(a.stale_uploads, 4);
        assert_eq!(a.retry_backoff_slots, 14);
    }

    #[test]
    fn backoff_slots_convert_to_seconds() {
        let s = CommStats {
            retry_backoff_slots: 7,
            ..CommStats::default()
        };
        assert!((s.retry_backoff_seconds(0.5) - 3.5).abs() < 1e-12);
    }

    #[test]
    fn fault_fields_default_when_absent_in_json() {
        // Records serialised before the fault plane existed still load.
        let legacy = r#"{"edge_to_device":1,"device_to_edge":2,
            "edge_to_cloud":3,"cloud_to_edge":4,"cloud_to_device":5}"#;
        let s: CommStats = serde_json::from_str(legacy).unwrap();
        assert_eq!(s.device_to_edge, 2);
        assert_eq!(s.upload_retransmissions, 0);
        assert_eq!(s.lost_uploads, 0);
        assert_eq!(s.stale_uploads, 0);
        assert_eq!(s.retry_backoff_slots, 0);
        // Pre-compression records default every byte counter to zero.
        assert_eq!(s.payload_total_bytes(), 0);
        // Pre-migration records default the edge↔edge ledger to zero.
        assert_eq!(s.edge_to_edge, 0);
        assert_eq!(s.edge_to_edge_bytes, 0);
    }

    #[test]
    fn edge_to_edge_counts_toward_backhaul_totals() {
        let mut a = CommStats {
            edge_to_edge: 3,
            edge_to_edge_bytes: 12,
            ..stats()
        };
        assert_eq!(a.wan_total(), 7);
        assert_eq!(a.wan_bytes(), 12);
        a.merge(&a.clone());
        assert_eq!(a.edge_to_edge, 6);
        assert_eq!(a.edge_to_edge_bytes, 24);
    }

    #[test]
    fn merge_adds_byte_counters() {
        let mut a = CommStats {
            device_to_edge_bytes: 10,
            edge_to_cloud_bytes: 3,
            ..CommStats::default()
        };
        a.merge(&CommStats {
            device_to_edge_bytes: 5,
            cloud_to_device_bytes: 2,
            ..CommStats::default()
        });
        assert_eq!(a.device_to_edge_bytes, 15);
        assert_eq!(a.edge_to_cloud_bytes, 3);
        assert_eq!(a.cloud_to_device_bytes, 2);
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(CommStats::default().total(), 0);
    }
}
