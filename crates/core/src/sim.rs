//! The device-edge-cloud simulation loop (paper Algorithm 1).
//!
//! Each time step:
//! 1. every edge selects `K` devices from its current candidate set
//!    (in-edge device selection, §4.3);
//! 2. every selected device initialises its local model — a device that
//!    just moved performs on-device model aggregation (§4.2), otherwise
//!    it downloads the edge model — and runs `I` local SGD steps
//!    (devices train in parallel via Rayon; each owns its model, so
//!    there is no shared mutable state);
//! 3. each edge FedAvg-aggregates the uploaded local models (Eq. 6);
//! 4. every `T_c` steps the cloud aggregates the edge models weighted by
//!    the participating-sample totals `d̂_n` (Eq. 7) and broadcasts the
//!    result back to all edges and devices.

use crate::aggregation::{
    cloud_aggregate, cloud_aggregate_into, edge_aggregate, edge_aggregate_into, on_device_init,
    on_device_init_into,
};
use crate::algorithms::{AlgorithmPolicy, MoveAction};
use crate::builder::{SharedInputs, SimError, SimulationBuilder};
use crate::checkpoint::{
    config_digest, DeviceCheckpoint, EdgeCheckpoint, FaultPlaneCheckpoint, RngStateCheckpoint,
    SimCheckpoint, SIM_CHECKPOINT_SCHEMA_VERSION,
};
use crate::comm::CommStats;
use crate::compress::CompressionPlane;
use crate::config::{MobilitySource, PopulationMode, SimConfig};
use crate::device::Device;
use crate::faults::FaultPlane;
use crate::metrics::{EvalPoint, RunRecord, RUN_RECORD_SCHEMA_VERSION};
use crate::population::{DeviceRef, Population, Reached};
use crate::selection::{
    select_devices_reference_scored, select_devices_scored, update_similarity,
    update_similarity_reference, update_similarity_reference_flat, CandidateScorers,
    SelectionScratch,
};
use crate::similarity::{aggregation_weights, similarity_utility_cached};
use crate::telemetry::{Phase, StepProbe, Telemetry};
use crate::timeline::{ArrivalOutcome, Event, EventKind, ExecutionMode, LatencyModel, Timeline};
use crate::{OnDevicePolicy, SelectionPolicy};
use middle_data::partition::Partition;
use middle_data::{Confusion, Dataset};
use middle_mobility::{
    generate_geometric, generate_markov_hop, generate_markov_hop_homed, MobilityKind, ServiceArea,
    Trace,
};
use middle_nn::loss::softmax_cross_entropy;
use middle_nn::params::{flatten, FlatView};
use middle_nn::serialize::Checkpoint;
use middle_nn::{NetScratch, Sequential};
use middle_tensor::ops::dot_slices;
use middle_tensor::random::{derive_seed, rng};
use middle_tensor::reduce::argmax_rows;
use rand::rngs::StdRng;
use rand::Rng;
use rayon::prelude::*;
use std::time::Instant;

/// Which step implementation [`Simulation::advance`] executes.
///
/// The zero-copy fast path and the allocating reference oracle consume
/// every RNG stream in the same order, so a run may interleave modes
/// and the equivalence tests can compare them step for step.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum StepMode {
    /// The allocation-free production step (DESIGN.md §6).
    #[default]
    Fast,
    /// The clone-based semantic oracle the equivalence tests pin the
    /// fast path against.
    Reference,
}

/// State of one edge server.
///
/// Alongside the model the edge carries a [`FlatView`] cache mirroring
/// the device-side cache: selection and on-device aggregation read the
/// edge's flat parameters every step, and recomputing them per candidate
/// would dominate the hot path. Code that mutates `model` directly must
/// call [`EdgeState::refresh_flat`] afterwards.
pub struct EdgeState {
    /// The edge model `w_n^t`.
    pub model: Sequential,
    /// Participating samples since the last cloud sync (`d̂_n`, Eq. 7).
    ///
    /// `f64`, not `f32`: this accumulates integer sample counts over a
    /// whole sync window, and an `f32` accumulator silently stops
    /// counting past 2^24 participating samples. The value is cast to
    /// `f32` only after normalisation, inside the cloud aggregation.
    pub window_samples: f64,
    flat: FlatView,
}

impl EdgeState {
    /// Creates an edge state with a fresh flat cache.
    pub fn new(model: Sequential) -> Self {
        let flat = FlatView::of(&model);
        EdgeState {
            model,
            window_samples: 0.0,
            flat,
        }
    }

    /// Cached flat parameter vector of the edge model.
    pub fn flat(&self) -> &[f32] {
        self.flat.flat()
    }

    /// Cached squared L2 norm of the edge model's parameters.
    pub fn flat_norm_sq(&self) -> f32 {
        self.flat.norm_sq()
    }

    /// Recomputes the flat cache from the current edge model.
    pub fn refresh_flat(&mut self) {
        self.flat.refresh(&self.model);
    }

    /// Overwrites the edge model from a flat vector with known squared
    /// norm (the cloud-broadcast fast path).
    pub fn load_flat(&mut self, flat: &[f32], norm_sq: f32) {
        middle_nn::params::unflatten(&mut self.model, flat);
        self.flat.set_from_slice(flat, norm_sq);
    }
}

/// Per-step inverted device↔edge index, rebuilt once at the top of each
/// step from the mobility trace.
///
/// Cohort construction used to call `Trace::devices_at_into` once per
/// edge — a full O(N·E) population scan every step. The index does one
/// O(N + E) counting sort instead: `cur`/`prev` hold the step's (and
/// previous step's) device→edge rows, and `offsets`/`members` form a
/// CSR edge→devices map whose per-edge slices list device ids in
/// ascending order, exactly matching the order `devices_at_into`
/// produced (so the availability rng stream is consumed identically).
#[derive(Default)]
struct StepIndex {
    cur: Vec<usize>,
    prev: Vec<usize>,
    have_prev: bool,
    offsets: Vec<usize>,
    members: Vec<usize>,
    cursor: Vec<usize>,
}

impl StepIndex {
    /// Rebuilds the index for step `t`.
    fn build(&mut self, trace: &Trace, t: usize, num_edges: usize) {
        self.have_prev = trace.fill_rows_into(t, &mut self.cur, &mut self.prev);
        self.offsets.clear();
        self.offsets.resize(num_edges + 1, 0);
        for &e in &self.cur {
            self.offsets[e + 1] += 1;
        }
        for n in 0..num_edges {
            self.offsets[n + 1] += self.offsets[n];
        }
        self.cursor.clear();
        self.cursor.extend_from_slice(&self.offsets[..num_edges]);
        self.members.clear();
        self.members.resize(self.cur.len(), 0);
        for (m, &e) in self.cur.iter().enumerate() {
            self.members[self.cursor[e]] = m;
            self.cursor[e] += 1;
        }
    }

    /// Whether device `m` moved between the previous step and this one
    /// (always false on step 0, matching `Trace::moved`).
    fn moved(&self, m: usize) -> bool {
        self.have_prev && self.prev[m] != self.cur[m]
    }

    /// Devices attached to edge `n` this step, ascending by id.
    fn devices_at(&self, n: usize) -> &[usize] {
        &self.members[self.offsets[n]..self.offsets[n + 1]]
    }

    /// Number of devices attached to edge `n` this step.
    fn occupancy(&self, n: usize) -> usize {
        self.offsets[n + 1] - self.offsets[n]
    }
}

/// A fully-constructed hierarchical-FL simulation.
pub struct Simulation {
    config: SimConfig,
    population: Population,
    edges: Vec<EdgeState>,
    cloud: Sequential,
    trace: Trace,
    test: Dataset,
    partition: Partition,
    rng: StdRng,
    availability_rng: StdRng,
    comm: CommStats,
    syncs: u64,
    active_steps: u64,
    telemetry: Telemetry,
    faults: FaultPlane,
    // The resolved algorithm-policy object ([`SimConfig::algorithm`]
    // via `AlgorithmConfig::resolve`): selection source, on-move
    // verdicts and any cross-round state. Both step implementations
    // drive it through the same hooks at the same points, so stateful
    // algorithms evolve identically in fast and reference mode.
    policy: Box<dyn AlgorithmPolicy>,
    // Uplink compression (quantization + top-K sparsification with
    // error feedback) and its aggregation scratch buffer. Inert — no
    // draws, no residuals, dense byte accounting — unless the config
    // makes the plane lossy-active.
    compression: CompressionPlane,
    agg_scratch: Vec<f32>,
    // Hot-path state: the cloud's cached flat view (refreshed only when
    // the cloud model actually changes) and per-step scratch buffers that
    // persist across steps so the steady-state loop never allocates.
    cloud_flat: FlatView,
    selection_scratch: SelectionScratch,
    candidates: Vec<usize>,
    selected_per_edge: Vec<Vec<usize>>,
    participating: Vec<bool>,
    // Per-step inverted edge index and the explicit participant id list
    // (strictly ascending after the selection phase) — the training
    // gather walks exactly the K·E participants instead of re-scanning
    // all N devices through the boolean mask.
    index: StepIndex,
    participants: Vec<usize>,
    // Lazy-mode scratch: per-live-version similarity scores against the
    // current cloud model, refilled each step before selection (empty
    // in dense mode or under non-similarity policies).
    version_scores: Vec<f32>,
    // Fault-plane scratch: per-edge delivered cohorts (selected minus
    // lost/late uploads) and per-edge WAN link state at a sync. Unused
    // (and untouched) while the fault plane is disabled.
    delivered_per_edge: Vec<Vec<usize>>,
    wan_up: Vec<bool>,
    // Run cursor: the next step `tick` executes, the evaluation points
    // recorded so far, and the accumulated wall-clock — all captured by
    // checkpoints so a resumed run continues bitwise-identically.
    next_step: usize,
    points: Vec<EvalPoint>,
    elapsed_seconds: f64,
    // Event-driven execution state: the deterministic event heap plus
    // wave/busy bookkeeping (untouched in lockstep mode), and the step
    // probe carried across the events of the current step. The probe is
    // host-timing scratch and is deliberately not checkpointed —
    // checkpoints only happen between ticks, where it is `None`.
    timeline: Timeline,
    probe: Option<StepProbe>,
}

impl Simulation {
    /// Builds the simulation: synthesises data, partitions it across
    /// devices, generates the mobility trace and initialises every model
    /// from the same seed-derived starting point.
    ///
    /// Compatibility wrapper over [`SimulationBuilder`], which is the
    /// Result-based construction path new code should use.
    ///
    /// # Panics
    /// Panics when the configuration fails [`SimConfig::validate`].
    #[deprecated(
        since = "0.1.0",
        note = "use SimulationBuilder::new(config).build() and handle the Result"
    )]
    pub fn new(config: SimConfig) -> Self {
        match SimulationBuilder::new(config).build() {
            Ok(sim) => sim,
            Err(e) => panic!("{e}"),
        }
    }

    /// Like [`Simulation::new`] but with a caller-supplied mobility
    /// trace (e.g. the Figure 2 scripted device swap, or an imported
    /// ONE-simulator trace).
    ///
    /// Compatibility wrapper over [`SimulationBuilder::with_trace`].
    ///
    /// # Panics
    /// Panics when the trace's device/edge counts or horizon disagree
    /// with the configuration.
    #[deprecated(
        since = "0.1.0",
        note = "use SimulationBuilder::new(config).with_trace(trace).build() and handle the Result"
    )]
    pub fn with_trace(config: SimConfig, trace: Trace) -> Self {
        match SimulationBuilder::new(config).with_trace(trace).build() {
            Ok(sim) => sim,
            Err(e) => panic!("{e}"),
        }
    }

    /// Assembles the per-run mutable state from validated, possibly
    /// cache-shared immutable inputs. Only [`SimulationBuilder`] calls
    /// this; per-run state is *cloned* out of the inputs, so a cache
    /// hit is bitwise identical to a cold construction.
    pub(crate) fn from_shared(config: SimConfig, inputs: &std::sync::Arc<SharedInputs>) -> Self {
        let seed = config.seed;
        let init = inputs.init.clone();
        let population = match config.population {
            PopulationMode::Dense => Population::dense(
                (0..config.num_devices)
                    .map(|m| Device::new(m, inputs.device_data[m].clone(), init.clone(), seed))
                    .collect(),
            ),
            PopulationMode::Lazy => Population::lazy(inputs.clone(), seed, config.num_devices),
        };
        let edges: Vec<EdgeState> = (0..config.num_edges)
            .map(|_| EdgeState::new(init.clone()))
            .collect();
        let cloud_flat = FlatView::of(&init);
        let selected_per_edge = (0..config.num_edges).map(|_| Vec::new()).collect();
        let delivered_per_edge = (0..config.num_edges).map(|_| Vec::new()).collect();
        let participating = vec![false; config.num_devices];
        let telemetry = Telemetry::from_config(&config);
        let faults = FaultPlane::new(config.faults, config.num_devices, seed);
        let policy = config.algorithm.resolve(config.num_devices);
        let compression = CompressionPlane::new(
            config.compression.clone(),
            config.num_devices,
            config.num_edges,
            cloud_flat.flat().len(),
            seed,
        );
        Simulation {
            cloud: init,
            population,
            edges,
            trace: inputs.trace.clone(),
            test: inputs.test.clone(),
            partition: inputs.partition.clone(),
            rng: rng(derive_seed(seed, 6)),
            availability_rng: rng(derive_seed(seed, 8)),
            comm: CommStats::default(),
            syncs: 0,
            active_steps: 0,
            telemetry,
            faults,
            policy,
            compression,
            agg_scratch: Vec::new(),
            cloud_flat,
            selection_scratch: SelectionScratch::new(),
            candidates: Vec::new(),
            selected_per_edge,
            participating,
            index: StepIndex::default(),
            participants: Vec::new(),
            version_scores: Vec::new(),
            delivered_per_edge,
            wan_up: Vec::new(),
            next_step: 0,
            points: Vec::new(),
            elapsed_seconds: 0.0,
            timeline: Timeline::new(config.num_edges, config.num_devices),
            probe: None,
            config,
        }
    }

    /// Overwrites the generated trace with a pre-validated one (builder
    /// only; the builder has already checked the shape).
    pub(crate) fn set_trace(&mut self, trace: Trace) {
        self.trace = trace;
    }

    /// The simulation's configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The mobility trace in use.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The device-level data partition.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// The held-out test set.
    pub fn test_set(&self) -> &Dataset {
        &self.test
    }

    /// Current cloud model.
    pub fn cloud_model(&self) -> &Sequential {
        &self.cloud
    }

    /// Current edge states.
    pub fn edges(&self) -> &[EdgeState] {
        &self.edges
    }

    /// Current devices as a dense slice.
    ///
    /// # Panics
    /// Panics in lazy population mode, where idle devices have no
    /// replica to borrow — use [`Simulation::population`] there.
    pub fn devices(&self) -> &[Device] {
        self.population.dense_slice()
    }

    /// The device population plane (dense replicas or lazy stubs).
    pub fn population(&self) -> &Population {
        &self.population
    }

    /// Model transmissions performed so far.
    pub fn comm_stats(&self) -> &CommStats {
        &self.comm
    }

    /// Cloud synchronisations performed so far.
    pub fn syncs(&self) -> u64 {
        self.syncs
    }

    /// Steps so far in which at least one device participated.
    /// Availability filtering can leave whole steps inactive; inactive
    /// steps move no models and cost no communication rounds.
    pub fn active_steps(&self) -> u64 {
        self.active_steps
    }

    /// The run's telemetry recorder (disabled unless the config enables
    /// it).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The run's fault plane (disabled unless the config enables a
    /// failure model; see [`crate::faults`]).
    pub fn fault_plane(&self) -> &FaultPlane {
        &self.faults
    }

    /// The run's compression plane (inert unless the config enables a
    /// lossy setting; see [`crate::compress`]).
    pub fn compression_plane(&self) -> &CompressionPlane {
        &self.compression
    }

    /// The *virtual* global model `w̄^t` (Eq. 13): the `d̂`-weighted
    /// average of the current edge models. Equals the cloud model right
    /// after a synchronisation.
    pub fn virtual_global(&self) -> Sequential {
        let models: Vec<&Sequential> = self.edges.iter().map(|e| &e.model).collect();
        let weights: Vec<f64> = self.edges.iter().map(|e| e.window_samples).collect();
        cloud_aggregate(&models, &weights)
    }

    /// Fault-plane work at step begin, shared by [`Simulation::step`]
    /// and `Simulation::step_reference` so both consume the fault RNG
    /// stream identically: apply the stale merges queued by last step's
    /// deadline misses (the late upload finally lands and is blended
    /// into its edge with Eq. 9's similarity weighting — a stale update
    /// that still agrees with the edge keeps weight, a diverged one is
    /// discounted), then advance every device's dropout chain. No-op
    /// (no draw, no timer) while the plane is disabled.
    fn fault_step_begin(&mut self, probe: &mut StepProbe) {
        if !self.faults.enabled() {
            return;
        }
        probe.start();
        for p in self.faults.take_pending() {
            let edge = &mut self.edges[p.edge];
            let u = similarity_utility_cached(&p.flat, p.norm_sq, edge.flat(), edge.flat_norm_sq());
            let (edge_w, stale_w) = aggregation_weights(u);
            let mut blend = p.flat;
            for (v, &e) in blend.iter_mut().zip(edge.flat()) {
                *v = edge_w * e + stale_w * *v;
            }
            middle_nn::params::unflatten(&mut edge.model, &blend);
            edge.refresh_flat();
            // The late upload is charged when it arrives, not when it
            // was scheduled — at the (possibly compressed) payload size
            // recorded when the deadline was missed.
            self.comm.device_to_edge += 1;
            self.comm.device_to_edge_bytes += p.payload_bytes;
            self.comm.stale_uploads += 1;
            probe.uploads(1);
            probe.stale_merge();
            // A stale merge is still an edge aggregation of this
            // device's update, so stateful algorithms observe it.
            self.policy
                .after_edge_aggregate(p.edge, std::slice::from_ref(&p.device));
        }
        self.faults.advance_dropout();
        probe.stop(Phase::FaultRecovery);
    }

    /// Runs every selected device's upload through the fault plane
    /// (shared by both step implementations; the per-device draw order
    /// — deadline first, then loss/retry attempts — is fixed). Fills
    /// `delivered_per_edge` with the cohorts that actually reached
    /// their edge: deadline-missed uploads are snapshotted for a stale
    /// merge next step, lost uploads are retried with exponential
    /// backoff and abandoned after the retry budget, and every
    /// transmission attempt is charged to [`CommStats`].
    fn fault_upload_pass(&mut self, selected_per_edge: &[Vec<usize>], probe: &mut StepProbe) {
        probe.start();
        let lossy = self.compression.lossy_active();
        let payload = self.compression.payload_bytes();
        for (n, selected) in selected_per_edge.iter().enumerate() {
            self.delivered_per_edge[n].clear();
            for &m in selected {
                if self.faults.misses_deadline() {
                    probe.deadline_miss();
                    if lossy {
                        // The device compresses at miss time (advancing
                        // its residual and the compression RNG exactly
                        // once, like any other upload); the stale merge
                        // next step lands the *reconstructed* model and
                        // charges the compressed payload.
                        let recon = self.compression.compress_device_upload(
                            m,
                            self.population.get(m).flat(),
                            self.edges[n].flat(),
                        );
                        probe.compressed_uploads(1);
                        let norm_sq = dot_slices(recon, recon);
                        let flat = recon.to_vec();
                        self.faults.push_stale(n, m, flat, norm_sq, payload);
                    } else {
                        let dev = self.population.get(m);
                        self.faults.push_stale(
                            n,
                            m,
                            dev.flat().to_vec(),
                            dev.flat_norm_sq(),
                            payload,
                        );
                    }
                    continue;
                }
                let o = self.faults.upload_attempts();
                self.comm.device_to_edge += u64::from(o.attempts);
                self.comm.device_to_edge_bytes += u64::from(o.attempts) * payload;
                self.comm.upload_retransmissions += u64::from(o.attempts - 1);
                self.comm.retry_backoff_slots += o.backoff_slots;
                probe.uploads(u64::from(o.attempts));
                probe.upload_retries(u64::from(o.attempts - 1), !o.delivered);
                if o.delivered {
                    self.delivered_per_edge[n].push(m);
                } else {
                    self.comm.lost_uploads += 1;
                    if lossy {
                        // Sender-side error feedback: the device did
                        // compress and transmit — the loss happens on
                        // the wire — so its residual and the RNG
                        // advance even though no edge consumes the
                        // reconstruction.
                        let _ = self.compression.compress_device_upload(
                            m,
                            self.population.get(m).flat(),
                            self.edges[n].flat(),
                        );
                        probe.compressed_uploads(1);
                    }
                }
            }
            // Graceful degradation: an edge whose whole cohort failed
            // to deliver skips aggregation and carries w_n forward.
            if !selected.is_empty() && self.delivered_per_edge[n].is_empty() {
                probe.empty_cohort();
            }
        }
        probe.stop(Phase::FaultRecovery);
    }

    /// Cloud synchronisation under WAN outages, shared by both step
    /// implementations (equivalence under faults holds by
    /// construction). Each edge's WAN link is drawn independently; down
    /// edges neither upload nor receive the broadcast (their sample
    /// window keeps accumulating and folds into the next successful
    /// sync), and devices currently parked under a down edge miss the
    /// device-level broadcast. When every edge is down the sync is
    /// skipped entirely. Returns whether a sync was performed.
    fn fault_cloud_sync(&mut self, probe: &mut StepProbe) -> bool {
        probe.start();
        self.wan_up.clear();
        for _ in 0..self.edges.len() {
            let up = self.faults.wan_is_up();
            self.wan_up.push(up);
            if !up {
                probe.wan_outage();
            }
        }
        let up_edges = self.wan_up.iter().filter(|&&u| u).count() as u64;
        if up_edges == 0 {
            probe.stop(Phase::CloudSync);
            return false;
        }
        self.syncs += 1;
        self.comm.edge_to_cloud += up_edges;
        self.comm.edge_to_cloud_bytes += up_edges * self.compression.payload_bytes();
        self.comm.cloud_to_edge += up_edges;
        self.comm.cloud_to_edge_bytes += up_edges * self.compression.dense_payload_bytes();
        if self.compression.lossy_active() {
            probe.stop(Phase::CloudSync);
            let wan_up = std::mem::take(&mut self.wan_up);
            self.compressed_cloud_sync(Some(&wan_up), probe);
            self.wan_up = wan_up;
            return true;
        }
        let wan_up = &self.wan_up;
        cloud_aggregate_into(
            &mut self.cloud,
            self.edges
                .iter()
                .zip(wan_up)
                .filter(|&(_, &up)| up)
                .map(|(e, _)| (&e.model, e.window_samples)),
        );
        self.cloud_flat.refresh(&self.cloud);
        let (flat, norm_sq) = (self.cloud_flat.flat(), self.cloud_flat.norm_sq());
        for (edge, &up) in self.edges.iter_mut().zip(wan_up) {
            if up {
                edge.load_flat(flat, norm_sq);
                edge.window_samples = 0.0;
            }
        }
        // Devices under an up edge receive the broadcast; the count is
        // an O(E) occupancy sum over the step index, integer-equal to
        // the old per-device scan.
        let reached = (0..self.edges.len())
            .filter(|&n| wan_up[n])
            .map(|n| self.index.occupancy(n))
            .sum::<usize>() as u64;
        self.comm
            .charge_broadcast(reached, self.compression.dense_payload_bytes());
        self.population.apply_broadcast(
            flat,
            norm_sq,
            Reached::Mask {
                up: wan_up,
                edge_of: &self.index.cur,
            },
        );
        self.policy.after_cloud_sync(Some(wan_up), &self.index.cur);
        probe.stop(Phase::CloudSync);
        true
    }

    /// Edge aggregation (Eq. 6) through the lossy compression plane,
    /// shared by both step implementations so the compression RNG and
    /// residual updates are consumed identically: each cohort member's
    /// upload is compressed against its edge's pre-aggregation model
    /// `w_n^t` and the edge FedAvg-aggregates the *reconstructions*
    /// with the same `d_m / d` weighting as the dense path. Only called
    /// while [`CompressionPlane::lossy_active`].
    fn compressed_edge_pass(&mut self, cohorts: &[Vec<usize>], probe: &mut StepProbe) {
        probe.start();
        for (n, cohort) in cohorts.iter().enumerate() {
            if cohort.is_empty() {
                continue;
            }
            self.compressed_edge_aggregate_one(n, cohort, probe);
        }
        probe.stop(Phase::Compress);
    }

    /// Aggregates one edge's cohort through the lossy compression plane
    /// — the per-edge body of [`Simulation::compressed_edge_pass`],
    /// also used wave-by-wave by the event engine. The caller owns the
    /// `Phase::Compress` timing window.
    fn compressed_edge_aggregate_one(&mut self, n: usize, cohort: &[usize], probe: &mut StepProbe) {
        let len = self.cloud_flat.flat().len();
        let total: usize = cohort
            .iter()
            .map(|&m| self.population.get(m).num_samples())
            .sum();
        let total_f = total as f32;
        self.agg_scratch.clear();
        self.agg_scratch.resize(len, 0.0);
        for &m in cohort {
            let w = self.population.get(m).num_samples() as f32 / total_f;
            let recon = self.compression.compress_device_upload(
                m,
                self.population.get(m).flat(),
                self.edges[n].flat(),
            );
            probe.compressed_uploads(1);
            for (a, &r) in self.agg_scratch.iter_mut().zip(recon) {
                *a += w * r;
            }
        }
        let norm_sq = dot_slices(&self.agg_scratch, &self.agg_scratch);
        self.edges[n].load_flat(&self.agg_scratch, norm_sq);
        self.edges[n].window_samples += total as f64;
        self.policy.after_edge_aggregate(n, cohort);
    }

    /// Cloud synchronisation (Eq. 7 + broadcast) through the lossy
    /// compression plane, shared by both step implementations. Each
    /// participating edge's sync upload is compressed against the
    /// current cloud model and the cloud aggregates the
    /// *reconstructions* with the dense path's `d̂_n`-weighting
    /// (uniform when every window is empty). `wan_up` masks the edges
    /// whose WAN link is up (`None` = no fault plane, everyone
    /// participates); down edges keep their window and miss the
    /// broadcast, exactly like [`Simulation::fault_cloud_sync`]. The
    /// caller has already charged the sync's edge↔cloud transfers.
    fn compressed_cloud_sync(&mut self, wan_up: Option<&[bool]>, probe: &mut StepProbe) {
        let up = |n: usize| wan_up.is_none_or(|w| w[n]);
        probe.start();
        let len = self.cloud_flat.flat().len();
        let up_count = (0..self.edges.len()).filter(|&n| up(n)).count();
        let total: f64 = self
            .edges
            .iter()
            .enumerate()
            .filter(|&(n, _)| up(n))
            .map(|(_, e)| e.window_samples)
            .sum();
        self.agg_scratch.clear();
        self.agg_scratch.resize(len, 0.0);
        for n in 0..self.edges.len() {
            if !up(n) {
                continue;
            }
            let w = if total > 0.0 {
                (self.edges[n].window_samples / total) as f32
            } else {
                (1.0 / up_count as f64) as f32
            };
            let recon = self.compression.compress_edge_sync(
                n,
                self.edges[n].flat(),
                self.cloud_flat.flat(),
            );
            probe.compressed_syncs(1);
            for (a, &r) in self.agg_scratch.iter_mut().zip(recon) {
                *a += w * r;
            }
        }
        probe.stop(Phase::Compress);
        probe.start();
        middle_nn::params::unflatten(&mut self.cloud, &self.agg_scratch);
        self.cloud_flat.refresh(&self.cloud);
        let (flat, norm_sq) = (self.cloud_flat.flat(), self.cloud_flat.norm_sq());
        for (n, edge) in self.edges.iter_mut().enumerate() {
            if up(n) {
                edge.load_flat(flat, norm_sq);
                edge.window_samples = 0.0;
            }
        }
        let reached = (0..self.edges.len())
            .filter(|&n| up(n))
            .map(|n| self.index.occupancy(n))
            .sum::<usize>() as u64;
        self.comm
            .charge_broadcast(reached, self.compression.dense_payload_bytes());
        self.population.apply_broadcast(
            flat,
            norm_sq,
            match wan_up {
                Some(up) => Reached::Mask {
                    up,
                    edge_of: &self.index.cur,
                },
                None => Reached::All,
            },
        );
        self.policy.after_cloud_sync(wan_up, &self.index.cur);
        probe.stop(Phase::CloudSync);
    }

    /// Executes one time step `t` of Algorithm 1 with the chosen
    /// implementation — the single entry point behind which the
    /// fast/reference duality lives. [`Simulation::step`] is shorthand
    /// for `advance(t, StepMode::Fast)`.
    pub fn advance(&mut self, t: usize, mode: StepMode) {
        match mode {
            StepMode::Fast => self.step(t),
            StepMode::Reference => self.step_reference(t),
        }
    }

    /// Executes one time step `t` of Algorithm 1 (0-based; syncs with the
    /// cloud after every `cloud_interval`-th step).
    ///
    /// The steady-state loop is allocation-free: candidate sets, scores
    /// and winner lists land in persistent scratch buffers, device inits
    /// are written straight into each participating device's carried
    /// model (no staged `Vec<Option<Sequential>>`), aggregation runs in
    /// place on the edge/cloud parameter tensors, and the cloud broadcast
    /// copies parameters instead of cloning models. Numerically the step
    /// tracks `Simulation::step_reference` ([`StepMode::Reference`]); the
    /// equivalence tests pin the two together.
    pub fn step(&mut self, t: usize) {
        let mut probe = self.telemetry.begin_step();
        self.begin_step(t, &mut probe);
        let active = self.phase_select_train_fast(t, &mut probe);
        self.finish_step_fast(t, active, probe);
    }

    /// Step-begin work shared by every execution mode: rebuild the step
    /// index for `t` and run the fault plane's begin-of-step recovery
    /// (stale merges + dropout chains).
    fn begin_step(&mut self, t: usize, probe: &mut StepProbe) {
        assert!(t < self.trace.steps(), "step beyond trace horizon");
        self.index.build(&self.trace, t, self.edges.len());
        self.fault_step_begin(probe);
    }

    /// Lazy mode scores each live broadcast version against the cloud
    /// once per step; every stub of a version then shares that score
    /// bitwise, exactly as idle dense devices holding the same broadcast
    /// would. No-op for selection policies that don't rank by update
    /// similarity.
    fn refresh_version_scores(&mut self) {
        if matches!(
            self.policy.selection(),
            SelectionPolicy::LeastSimilarUpdate | SelectionPolicy::MostSimilarUpdate
        ) {
            let mut scores = std::mem::take(&mut self.version_scores);
            self.population.version_scores(
                self.cloud_flat.flat(),
                self.cloud_flat.norm_sq(),
                &mut scores,
            );
            self.version_scores = scores;
        }
    }

    /// Fast-mode phases 1 + 2 — in-edge device selection, in-place
    /// device init, then Rayon-parallel local training over the
    /// participants. Fills `self.selected_per_edge` and returns whether
    /// any edge selected a non-empty cohort (accruing `active_steps`).
    /// Shared by the lockstep step and the event engine's step-boundary
    /// handler.
    fn phase_select_train_fast(&mut self, t: usize, probe: &mut StepProbe) -> bool {
        self.refresh_version_scores();
        // Phase 1 — in-edge device selection, then write each selected
        // device's initial model (moved devices aggregate on device,
        // stationary ones download the edge model into place).
        self.participating.fill(false);
        self.participants.clear();
        for n in 0..self.edges.len() {
            probe.start();
            self.candidates.clear();
            self.candidates.extend_from_slice(self.index.devices_at(n));
            let seen = self.candidates.len();
            // Straggler injection: each device is reachable this step
            // with the configured probability.
            if self.config.availability < 1.0 {
                self.candidates
                    .retain(|_| self.availability_rng.gen::<f64>() < self.config.availability);
            }
            probe.candidates(seen, seen - self.candidates.len());
            if self.faults.dropout_active() {
                let before = self.candidates.len();
                let faults = &self.faults;
                self.candidates.retain(|&m| !faults.is_down(m));
                probe.dropout_drops(before - self.candidates.len());
            }
            // A device whose async upload is still in flight cannot be
            // re-selected (at most one upload in flight per device).
            // Draw-free, so the filter is inert in lockstep mode and at
            // zero delay, where no device is ever busy.
            if self.timeline.busy_any() {
                let timeline = &self.timeline;
                self.candidates.retain(|&m| !timeline.is_busy(m));
            }
            if self.candidates.is_empty() {
                self.selected_per_edge[n].clear();
                probe.stop(Phase::Selection);
                continue;
            }
            {
                let population = &self.population;
                let version_scores = &self.version_scores;
                let (cloud_flat, cloud_norm_sq) =
                    (self.cloud_flat.flat(), self.cloud_flat.norm_sq());
                let similarity = |m: usize| match population.view(m) {
                    DeviceRef::Resident(dev) => update_similarity(dev, cloud_flat, cloud_norm_sq),
                    DeviceRef::Stub(v) => version_scores[v as usize],
                };
                let oort = |m: usize| population.oort_utility(m).unwrap_or(f32::INFINITY);
                let policy = &self.policy;
                let cluster = |m: usize| policy.cluster_of(m);
                select_devices_scored(
                    policy.selection(),
                    self.config.devices_per_edge,
                    &self.candidates,
                    &CandidateScorers {
                        similarity: &similarity,
                        oort: &oort,
                        cluster: Some(&cluster),
                    },
                    &mut self.rng,
                    &mut self.selection_scratch,
                    &mut self.selected_per_edge[n],
                );
            }
            probe.stop(Phase::Selection);

            probe.start();
            let selected = &self.selected_per_edge[n];
            probe.selected(selected.len());
            // Every selected device uploads after training; downloads
            // are counted below only when the edge model is actually
            // consumed (a moved device under KeepLocal never downloads).
            // With the fault plane on, uploads are charged in the
            // post-training upload pass instead (retries, losses and
            // deadline misses change the count).
            if !self.faults.enabled() {
                self.comm.device_to_edge += selected.len() as u64;
                self.comm.device_to_edge_bytes +=
                    selected.len() as u64 * self.compression.payload_bytes();
                probe.uploads(selected.len() as u64);
            }
            let mut downloads = 0u64;
            let mut migrations = 0u64;
            let edge = &self.edges[n];
            for &m in selected {
                // A selected device must be materialised before its
                // init touches the carried model (no-op when dense or
                // already resident).
                self.population.ensure_resident(m);
                if self.index.moved(m) {
                    probe.moved_init();
                    match self.policy.on_move(m, self.index.prev[m], n) {
                        MoveAction::Blend(on_device) => {
                            if !matches!(on_device, OnDevicePolicy::KeepLocal) {
                                downloads += 1;
                            }
                            on_device_init_into(
                                on_device,
                                self.population.get_mut(m),
                                &edge.model,
                                edge.flat(),
                                edge.flat_norm_sq(),
                            );
                        }
                        // FedFly hand-off: the carried model continues
                        // untouched while the in-flight update rides the
                        // inter-edge backhaul (charged below).
                        MoveAction::Migrate => migrations += 1,
                    }
                } else {
                    downloads += 1;
                    self.population
                        .get_mut(m)
                        .load_flat(edge.flat(), edge.flat_norm_sq());
                }
                self.participating[m] = true;
                self.participants.push(m);
            }
            self.comm.edge_to_device += downloads;
            self.comm.edge_to_device_bytes += downloads * self.compression.dense_payload_bytes();
            self.comm.edge_to_edge += migrations;
            self.comm.edge_to_edge_bytes += migrations * self.compression.dense_payload_bytes();
            probe.downloads(downloads);
            probe.stop(Phase::DeviceInit);
        }
        let active = self.selected_per_edge.iter().any(|s| !s.is_empty());
        if active {
            self.active_steps += 1;
        }

        // Phase 2 — parallel local training over the participating set
        // only, so the work splits across exactly K·E training jobs
        // instead of one no-op task per idle device. Each participant
        // owns its slot; no shared mutable state. The explicit
        // participant id list (sorted to strictly ascending — a device
        // is attached to exactly one edge per step, so ids are distinct)
        // replaces the old full-population boolean-mask re-scan.
        probe.start();
        let (local_steps, batch_size, optimizer) = (
            self.config.local_steps,
            self.config.batch_size,
            self.config.optimizer,
        );
        self.participants.sort_unstable();
        let mut participants = self.population.gather_mut(&self.participants);
        participants.par_iter_mut().for_each(|dev| {
            dev.local_train(local_steps, batch_size, &optimizer, t);
        });
        drop(participants);
        probe.stop(Phase::LocalTraining);
        {
            let population = &self.population;
            let utility = |m: usize| population.oort_utility(m);
            self.policy
                .observe_participants(&self.participants, &utility);
        }
        active
    }

    /// Fast-mode phases 3 + 4 — the fault-plane upload pass, edge
    /// aggregation and the scheduled cloud sync — closing the step's
    /// telemetry. Split from [`Simulation::step`] so the event engine
    /// can reuse the front half with its own upload and aggregation
    /// schedule.
    fn finish_step_fast(&mut self, t: usize, active: bool, mut probe: StepProbe) {
        // Fault plane: run every upload through the deadline and
        // loss/retry processes, producing the delivered cohorts.
        if self.faults.enabled() {
            let selected = std::mem::take(&mut self.selected_per_edge);
            self.fault_upload_pass(&selected, &mut probe);
            self.selected_per_edge = selected;
        }

        // Phase 3 — edge aggregation (Eq. 6), in place on the edge model.
        // Under a lossy compression plane the shared compressed pass
        // aggregates reconstructed uploads instead.
        if self.compression.lossy_active() {
            let cohorts = if self.faults.enabled() {
                std::mem::take(&mut self.delivered_per_edge)
            } else {
                std::mem::take(&mut self.selected_per_edge)
            };
            self.compressed_edge_pass(&cohorts, &mut probe);
            if self.faults.enabled() {
                self.delivered_per_edge = cohorts;
            } else {
                self.selected_per_edge = cohorts;
            }
        } else {
            probe.start();
            let population = &self.population;
            let cohorts: &[Vec<usize>] = if self.faults.enabled() {
                &self.delivered_per_edge
            } else {
                &self.selected_per_edge
            };
            for (edge, cohort) in self.edges.iter_mut().zip(cohorts) {
                if cohort.is_empty() {
                    continue;
                }
                edge_aggregate_into(
                    &mut edge.model,
                    cohort.iter().map(|&m| {
                        let dev = population.get(m);
                        (&dev.model, dev.num_samples())
                    }),
                );
                edge.window_samples += cohort
                    .iter()
                    .map(|&m| population.get(m).num_samples())
                    .sum::<usize>() as f64;
                edge.refresh_flat();
            }
            for (n, cohort) in cohorts.iter().enumerate() {
                if !cohort.is_empty() {
                    self.policy.after_edge_aggregate(n, cohort);
                }
            }
            probe.stop(Phase::EdgeAggregation);
        }

        // Phase 4 — periodic cloud synchronisation (Eq. 7 + broadcast).
        // The broadcast copies the cloud's flat parameters (and their
        // cached norm) into every edge and device — no model clones.
        let scheduled = (t + 1).is_multiple_of(self.config.cloud_interval);
        let synced = scheduled && self.cloud_sync_now(StepMode::Fast, &mut probe);
        self.telemetry.end_step(t, active, synced, probe);
    }

    /// Performs a cloud synchronisation *now* (Eq. 7 + broadcast) —
    /// phase 4 without the lockstep schedule check, shared by both
    /// lockstep steps (gated on `cloud_interval`) and the event engine
    /// (fired by `CloudSync` events). The plain arm dispatches on the
    /// fast/reference duality; the fault and compression arms are the
    /// shared helpers either way. Returns whether a sync actually
    /// happened (false only when the WAN fault plane finds every edge
    /// down).
    fn cloud_sync_now(&mut self, mode: StepMode, probe: &mut StepProbe) -> bool {
        if self.faults.wan_active() {
            return self.fault_cloud_sync(probe);
        }
        if self.compression.lossy_active() {
            self.syncs += 1;
            let edges = self.edges.len() as u64;
            self.comm.edge_to_cloud += edges;
            self.comm.edge_to_cloud_bytes += edges * self.compression.payload_bytes();
            self.comm.cloud_to_edge += edges;
            self.comm.cloud_to_edge_bytes += edges * self.compression.dense_payload_bytes();
            self.compressed_cloud_sync(None, probe);
            return true;
        }
        probe.start();
        self.syncs += 1;
        let dense = self.compression.dense_payload_bytes();
        self.comm.edge_to_cloud += self.edges.len() as u64;
        self.comm.edge_to_cloud_bytes += self.edges.len() as u64 * dense;
        self.comm.cloud_to_edge += self.edges.len() as u64;
        self.comm.cloud_to_edge_bytes += self.edges.len() as u64 * dense;
        self.comm
            .charge_broadcast(self.population.len() as u64, dense);
        match mode {
            StepMode::Fast => {
                cloud_aggregate_into(
                    &mut self.cloud,
                    self.edges.iter().map(|e| (&e.model, e.window_samples)),
                );
                self.cloud_flat.refresh(&self.cloud);
                let (flat, norm_sq) = (self.cloud_flat.flat(), self.cloud_flat.norm_sq());
                for edge in &mut self.edges {
                    edge.load_flat(flat, norm_sq);
                    edge.window_samples = 0.0;
                }
                self.population.apply_broadcast(flat, norm_sq, Reached::All);
            }
            StepMode::Reference => {
                let models: Vec<&Sequential> = self.edges.iter().map(|e| &e.model).collect();
                let weights: Vec<f64> = self.edges.iter().map(|e| e.window_samples).collect();
                self.cloud = cloud_aggregate(&models, &weights);
                self.cloud_flat.refresh(&self.cloud);
                for edge in &mut self.edges {
                    edge.model = self.cloud.clone();
                    edge.window_samples = 0.0;
                    edge.refresh_flat();
                }
                if self.population.is_dense() {
                    // The clone-based broadcast is the reference oracle
                    // for dense runs; `refresh_flat` and `load_flat`
                    // compute the same dot product, so the lazy arm
                    // below is bitwise equal (pinned by the dense==lazy
                    // equivalence tests).
                    let cloud = &self.cloud;
                    self.population
                        .dense_slice_mut()
                        .par_iter_mut()
                        .for_each(|d| {
                            d.model = cloud.clone();
                            d.refresh_flat();
                        });
                } else {
                    let (flat, norm_sq) = (self.cloud_flat.flat(), self.cloud_flat.norm_sq());
                    self.population.apply_broadcast(flat, norm_sq, Reached::All);
                }
            }
        }
        self.policy.after_cloud_sync(None, &self.index.cur);
        probe.stop(Phase::CloudSync);
        true
    }

    /// Reference implementation of [`Simulation::step`]: the original
    /// clone-based phases (fresh cloud flatten, staged init models, full
    /// sort selection, allocating aggregation, clone broadcast), kept as
    /// the semantic oracle for the hot path. Consumes the rng streams in
    /// exactly the same order as `step`, so a run may interleave the two
    /// and the equivalence tests can compare them step for step.
    /// Reached through [`Simulation::advance`] with
    /// [`StepMode::Reference`].
    fn step_reference(&mut self, t: usize) {
        let mut probe = self.telemetry.begin_step();
        self.begin_step(t, &mut probe);
        let active = self.phase_select_train_reference(t, &mut probe);
        self.finish_step_reference(t, active, probe);
    }

    /// Reference-mode phases 1 + 2 — the allocating oracle's
    /// counterpart to [`Simulation::phase_select_train_fast`]: staged
    /// initial models, full-sort selection, clone-based init. Fills
    /// `self.selected_per_edge` and returns whether any edge selected a
    /// non-empty cohort.
    fn phase_select_train_reference(&mut self, t: usize, probe: &mut StepProbe) -> bool {
        let cloud_flat = flatten(&self.cloud);

        // Phase 1 — selection + staged initial models, keyed by device
        // id (the participant list replaces the old per-device Option
        // array; training later walks exactly the participants).
        let mut staged: Vec<(usize, Option<Sequential>)> = Vec::new();
        for (n, edge) in self.edges.iter().enumerate() {
            probe.start();
            let mut candidates = self.index.devices_at(n).to_vec();
            let seen = candidates.len();
            if self.config.availability < 1.0 {
                candidates
                    .retain(|_| self.availability_rng.gen::<f64>() < self.config.availability);
            }
            probe.candidates(seen, seen - candidates.len());
            if self.faults.dropout_active() {
                let before = candidates.len();
                candidates.retain(|&m| !self.faults.is_down(m));
                probe.dropout_drops(before - candidates.len());
            }
            // In-flight exclusion, identical to the fast path (inert in
            // lockstep mode and at zero delay).
            if self.timeline.busy_any() {
                let timeline = &self.timeline;
                candidates.retain(|&m| !timeline.is_busy(m));
            }
            if candidates.is_empty() {
                self.selected_per_edge[n].clear();
                probe.stop(Phase::Selection);
                continue;
            }
            let selected = {
                let population = &self.population;
                let similarity = |m: usize| match population.view(m) {
                    DeviceRef::Resident(dev) => update_similarity_reference(dev, &cloud_flat),
                    DeviceRef::Stub(v) => {
                        update_similarity_reference_flat(population.version_flat(v), &cloud_flat)
                    }
                };
                let oort = |m: usize| population.oort_utility(m).unwrap_or(f32::INFINITY);
                let policy = &self.policy;
                let cluster = |m: usize| policy.cluster_of(m);
                select_devices_reference_scored(
                    policy.selection(),
                    self.config.devices_per_edge,
                    &candidates,
                    &CandidateScorers {
                        similarity: &similarity,
                        oort: &oort,
                        cluster: Some(&cluster),
                    },
                    &mut self.rng,
                )
            };
            probe.stop(Phase::Selection);

            probe.start();
            probe.selected(selected.len());
            // Same download accounting as `step`: moved devices under
            // KeepLocal never consume the edge model. With the fault
            // plane on, uploads are charged in the upload pass instead.
            if !self.faults.enabled() {
                self.comm.device_to_edge += selected.len() as u64;
                self.comm.device_to_edge_bytes +=
                    selected.len() as u64 * self.compression.payload_bytes();
                probe.uploads(selected.len() as u64);
            }
            let mut downloads = 0u64;
            let mut migrations = 0u64;
            for &m in &selected {
                self.population.ensure_resident(m);
                let init = if self.index.moved(m) {
                    probe.moved_init();
                    match self.policy.on_move(m, self.index.prev[m], n) {
                        MoveAction::Blend(on_device) => {
                            if !matches!(on_device, OnDevicePolicy::KeepLocal) {
                                downloads += 1;
                            }
                            on_device_init(on_device, &edge.model, &self.population.get(m).model)
                        }
                        MoveAction::Migrate => {
                            // The carried model continues untouched —
                            // the allocating oracle stages a clone of
                            // it, bitwise-equal to the fast path's
                            // leave-in-place.
                            migrations += 1;
                            self.population.get(m).model.clone()
                        }
                    }
                } else {
                    downloads += 1;
                    edge.model.clone()
                };
                staged.push((m, Some(init)));
            }
            self.comm.edge_to_device += downloads;
            self.comm.edge_to_device_bytes += downloads * self.compression.dense_payload_bytes();
            self.comm.edge_to_edge += migrations;
            self.comm.edge_to_edge_bytes += migrations * self.compression.dense_payload_bytes();
            probe.downloads(downloads);
            probe.stop(Phase::DeviceInit);
            self.selected_per_edge[n] = selected;
        }
        let active = self.selected_per_edge.iter().any(|s| !s.is_empty());
        if active {
            self.active_steps += 1;
        }

        // Phase 2 — parallel local training on the staged models, over
        // the participants only (each device trains independently with
        // its own rng, so the gather order cannot affect numerics).
        probe.start();
        let (local_steps, batch_size, optimizer) = (
            self.config.local_steps,
            self.config.batch_size,
            self.config.optimizer,
        );
        staged.sort_unstable_by_key(|&(m, _)| m);
        let ids: Vec<usize> = staged.iter().map(|&(m, _)| m).collect();
        let mut participants = self.population.gather_mut(&ids);
        participants
            .par_iter_mut()
            .zip(staged.par_iter_mut())
            .for_each(|(dev, (_, slot))| {
                let init = slot.take().expect("staged init for participant");
                dev.model = init;
                dev.invalidate_flat();
                dev.local_train_reference(local_steps, batch_size, &optimizer, t);
            });
        drop(participants);
        probe.stop(Phase::LocalTraining);
        {
            let population = &self.population;
            let utility = |m: usize| population.oort_utility(m);
            self.policy.observe_participants(&ids, &utility);
        }
        active
    }

    /// Reference-mode phases 3 + 4, closing the step (the allocating
    /// counterpart of [`Simulation::finish_step_fast`]).
    fn finish_step_reference(&mut self, t: usize, active: bool, mut probe: StepProbe) {
        // Fault plane: identical upload pass (shared helper, same RNG
        // draw order) as `step`.
        let selected_per_edge = std::mem::take(&mut self.selected_per_edge);
        if self.faults.enabled() {
            self.fault_upload_pass(&selected_per_edge, &mut probe);
        }

        // Phase 3 — edge aggregation (Eq. 6). Under a lossy compression
        // plane both implementations share `compressed_edge_pass`, so
        // equivalence holds by construction.
        let faults_enabled = self.faults.enabled();
        if self.compression.lossy_active() {
            if faults_enabled {
                let cohorts = std::mem::take(&mut self.delivered_per_edge);
                self.compressed_edge_pass(&cohorts, &mut probe);
                self.delivered_per_edge = cohorts;
            } else {
                self.compressed_edge_pass(&selected_per_edge, &mut probe);
            }
        } else {
            probe.start();
            for (n, selected) in selected_per_edge.iter().enumerate() {
                let cohort = if faults_enabled {
                    &self.delivered_per_edge[n]
                } else {
                    selected
                };
                if cohort.is_empty() {
                    continue;
                }
                let models: Vec<&Sequential> = cohort
                    .iter()
                    .map(|&m| &self.population.get(m).model)
                    .collect();
                let counts: Vec<usize> = cohort
                    .iter()
                    .map(|&m| self.population.get(m).num_samples())
                    .collect();
                self.edges[n].model = edge_aggregate(&models, &counts);
                self.edges[n].window_samples += counts.iter().sum::<usize>() as f64;
                self.edges[n].refresh_flat();
                self.policy.after_edge_aggregate(n, cohort);
            }
            probe.stop(Phase::EdgeAggregation);
        }
        self.selected_per_edge = selected_per_edge;

        // Phase 4 — periodic cloud synchronisation (Eq. 7 + broadcast).
        // Under WAN faults both step implementations share
        // `fault_cloud_sync`, so equivalence holds by construction.
        let scheduled = (t + 1).is_multiple_of(self.config.cloud_interval);
        let synced = scheduled && self.cloud_sync_now(StepMode::Reference, &mut probe);
        self.telemetry.end_step(t, active, synced, probe);
    }

    // ------------------------------------------------------------------
    // Event-driven execution (ExecutionMode::EventDriven)
    // ------------------------------------------------------------------

    /// One `tick` of the event engine: drains events in deterministic
    /// `(time, rank, edge, device, seq)` order until the current round's
    /// `EndOfStep` marker has been processed. At the zero-delay /
    /// synchronous-sync corner the pop order within a round is exactly
    /// the lockstep phase order, so the run reproduces the lockstep
    /// `RunRecord` bitwise (pinned by `tests/timeline_plane.rs`).
    fn tick_event(&mut self, mode: StepMode) {
        if !self.timeline.started {
            self.timeline.started = true;
            self.timeline.push(0.0, EventKind::StepBoundary { step: 0 });
            if let Some(period) = self.config.timeline.cloud_timer {
                self.timeline
                    .push(period, EventKind::CloudSync { timer: true });
            }
        }
        while let Some(ev) = self.timeline.pop() {
            let start = self.telemetry.event_timer();
            let end_of_step = self.process_event(&ev, mode);
            self.telemetry.observe_event_since(ev.kind, start);
            if end_of_step {
                if matches!(ev.kind, EventKind::EndOfStep { step } if step + 1 == self.config.steps)
                {
                    self.drain_tail(mode);
                }
                break;
            }
        }
    }

    /// After the final round's `EndOfStep` the heap can still hold the
    /// horizon's tail: in-flight uploads, the wave aggregates they
    /// trigger, and a round-cadence cloud sync scheduled at the round's
    /// last arrival. Drain it so the final evaluation sees every update
    /// the run paid for — without this, a cadence sync landing past the
    /// last `EndOfStep` would silently never fire. Beyond-horizon
    /// *timer* syncs are discarded instead of processed: the timer dies
    /// with the run, and discarding keeps the clock (and with it
    /// `event_seconds`) at the time real work finished. At zero delay
    /// the heap is already empty here, so the lockstep oracle is
    /// untouched.
    fn drain_tail(&mut self, mode: StepMode) {
        while let Some(next) = self.timeline.peek() {
            if matches!(next.kind, EventKind::CloudSync { timer: true }) {
                self.timeline.discard_next();
                continue;
            }
            let ev = self.timeline.pop().expect("peeked event still queued");
            let start = self.telemetry.event_timer();
            self.process_event(&ev, mode);
            self.telemetry.observe_event_since(ev.kind, start);
        }
    }

    /// Dispatch one popped event. Returns true when the event was the
    /// current round's `EndOfStep` (the tick is over). Events that land
    /// between a round's `EndOfStep` and the next boundary (in-flight
    /// arrivals, timer syncs) account their telemetry into a scratch
    /// probe absorbed outside the per-step accounting.
    fn process_event(&mut self, ev: &Event, mode: StepMode) -> bool {
        match ev.kind {
            EventKind::StepBoundary { step } => {
                self.event_step_boundary(step, mode);
                false
            }
            EventKind::DeviceUpload { edge, device, wave } => {
                self.with_event_probe(|s, probe| s.event_upload_arrival(edge, device, wave, probe));
                false
            }
            EventKind::EdgeAggregate { edge, wave } => {
                self.with_event_probe(|s, probe| s.event_edge_aggregate(edge, wave, mode, probe));
                false
            }
            EventKind::CloudSync { timer } => {
                self.with_event_probe(|s, probe| s.event_cloud_sync(timer, mode, probe));
                false
            }
            EventKind::EndOfStep { step } => {
                self.event_end_of_step(step);
                true
            }
        }
    }

    /// Runs `f` against the current step's probe; events that fire
    /// between steps get a scratch probe whose counters are absorbed
    /// into the telemetry without step accounting.
    fn with_event_probe<R>(&mut self, f: impl FnOnce(&mut Self, &mut StepProbe) -> R) -> R {
        let (mut probe, mid_step) = match self.probe.take() {
            Some(p) => (p, true),
            None => (self.telemetry.begin_step(), false),
        };
        let out = f(self, &mut probe);
        if mid_step {
            self.probe = Some(probe);
        } else {
            self.telemetry.absorb_probe(probe);
        }
        out
    }

    /// `StepBoundary { t }`: the synchronous front half of round `t` —
    /// fault recovery, selection, device init, local training — then
    /// schedules the round's uploads as events, the synchronous cloud
    /// sync (when no timer is configured) and the `EndOfStep` marker.
    fn event_step_boundary(&mut self, t: usize, mode: StepMode) {
        let mut probe = self.telemetry.begin_step();
        self.begin_step(t, &mut probe);
        let active = match mode {
            StepMode::Fast => self.phase_select_train_fast(t, &mut probe),
            StepMode::Reference => self.phase_select_train_reference(t, &mut probe),
        };
        self.timeline.step_active = active;
        let now = self.timeline.clock();
        let mut sync_at = now;
        match self.config.timeline.latency {
            LatencyModel::Zero => {
                // The lockstep-oracle corner: uploads arrive the moment
                // they are sent. With the fault plane on, the upload
                // pass runs at the boundary exactly as in lockstep
                // (identical deadline / loss / stale draws); the
                // delivered cohorts then ride the event queue at zero
                // latency. Same-instant rank order (uploads before
                // aggregates) makes any `edge_threshold` provably
                // irrelevant here: every upload of the round pops before
                // its wave's aggregate event.
                if self.faults.enabled() {
                    let selected = std::mem::take(&mut self.selected_per_edge);
                    self.fault_upload_pass(&selected, &mut probe);
                    self.selected_per_edge = selected;
                }
                for n in 0..self.edges.len() {
                    let cohort = if self.faults.enabled() {
                        self.delivered_per_edge[n].clone()
                    } else {
                        self.selected_per_edge[n].clone()
                    };
                    let trigger = self.config.timeline.edge_threshold.unwrap_or(cohort.len());
                    // Zero delay: every wave aggregates within its own
                    // round, so there is never a remainder to flush.
                    let flushed = self.timeline.open_wave(n, cohort.clone(), trigger);
                    debug_assert!(flushed.is_none(), "zero-delay wave left a remainder");
                    let wave = self.timeline.wave_id(n);
                    for &m in &cohort {
                        self.timeline.push(
                            now,
                            EventKind::DeviceUpload {
                                edge: n,
                                device: m,
                                wave,
                            },
                        );
                    }
                }
            }
            LatencyModel::Faults => sync_at = self.event_upload_pass(mode, &mut probe),
        }
        // The synchronous sync rides the round count when no timer is
        // configured. It fires when the round's last delivered upload
        // lands (the boundary's own timestamp at zero delay) — rank
        // order then puts it after that wave's aggregates, exactly
        // where lockstep phase 4 sits; scheduling it any earlier would
        // systematically sync a cloud that is one round stale.
        if self.config.timeline.cloud_timer.is_none()
            && (t + 1).is_multiple_of(self.config.cloud_interval)
        {
            self.timeline
                .push(sync_at, EventKind::CloudSync { timer: false });
        }
        self.timeline.push(now, EventKind::EndOfStep { step: t });
        if t + 1 < self.config.steps {
            self.timeline.push(
                (t + 1) as f64 * self.config.timeline.step_duration,
                EventKind::StepBoundary { step: t + 1 },
            );
        }
        self.probe = Some(probe);
    }

    /// Async-latency upload pass (`LatencyModel::Faults`): every
    /// selected device's upload samples its straggler delay from the
    /// same fault-plane stream the lockstep deadline check draws from,
    /// then rides the event queue as a real in-flight latency — there is
    /// no deadline and no stale path; a slow upload simply arrives late
    /// (and blends like a stale merge if its wave has already closed).
    /// Loss/retry draws and comm charges are identical to
    /// [`Simulation::fault_upload_pass`]. With the fault plane disabled
    /// the upload was already charged at selection and arrives with
    /// zero delay. Returns the latest scheduled arrival time of this
    /// round's delivered uploads (the boundary's own timestamp when
    /// nothing was delivered), which is where a round-cadence cloud
    /// sync belongs.
    fn event_upload_pass(&mut self, mode: StepMode, probe: &mut StepProbe) -> f64 {
        let now = self.timeline.clock();
        let mut last_arrival = now;
        let lossy = self.compression.lossy_active();
        let payload = self.compression.payload_bytes();
        probe.start();
        for n in 0..self.edges.len() {
            let selected = std::mem::take(&mut self.selected_per_edge[n]);
            let mut delivered: Vec<(usize, f64)> = Vec::with_capacity(selected.len());
            for &m in &selected {
                if !self.faults.enabled() {
                    delivered.push((m, 0.0));
                    continue;
                }
                let delay = self.faults.sample_upload_delay();
                let o = self.faults.upload_attempts();
                self.comm.device_to_edge += u64::from(o.attempts);
                self.comm.device_to_edge_bytes += u64::from(o.attempts) * payload;
                self.comm.upload_retransmissions += u64::from(o.attempts - 1);
                self.comm.retry_backoff_slots += o.backoff_slots;
                probe.uploads(u64::from(o.attempts));
                probe.upload_retries(u64::from(o.attempts - 1), !o.delivered);
                if o.delivered {
                    delivered.push((m, delay));
                } else {
                    self.comm.lost_uploads += 1;
                    if lossy {
                        // Sender-side error feedback: the device did
                        // compress and transmit — the loss happens on
                        // the wire — so its residual and the RNG advance
                        // even though no edge consumes the
                        // reconstruction.
                        let _ = self.compression.compress_device_upload(
                            m,
                            self.population.get(m).flat(),
                            self.edges[n].flat(),
                        );
                        probe.compressed_uploads(1);
                    }
                }
            }
            if !selected.is_empty() && delivered.is_empty() {
                probe.empty_cohort();
            }
            // Open the round's wave with the delivered cohort; an
            // un-triggered remainder of the previous wave is flushed
            // into the edge first so arrived updates are never dropped.
            let members: Vec<usize> = delivered.iter().map(|&(m, _)| m).collect();
            let trigger = self.config.timeline.edge_threshold.unwrap_or(members.len());
            if let Some((cohort, snaps)) = self.timeline.open_wave(n, members, trigger) {
                probe.stop(Phase::FaultRecovery);
                self.event_aggregate_cohort(n, &cohort, &snaps, mode, probe);
                self.timeline.aggs_since_sync += 1;
                probe.start();
            }
            let wave = self.timeline.wave_id(n);
            for (m, delay) in delivered {
                // The in-flight payload is snapshotted at send time —
                // lossy runs ship the compressed reconstruction
                // (advancing the device residual exactly once).
                let snapshot = if lossy {
                    let recon = self.compression.compress_device_upload(
                        m,
                        self.population.get(m).flat(),
                        self.edges[n].flat(),
                    );
                    probe.compressed_uploads(1);
                    recon.to_vec()
                } else {
                    self.population.get(m).flat().to_vec()
                };
                self.timeline.send_upload(m, snapshot);
                last_arrival = last_arrival.max(now + delay);
                self.timeline.push(
                    now + delay,
                    EventKind::DeviceUpload {
                        edge: n,
                        device: m,
                        wave,
                    },
                );
            }
            self.selected_per_edge[n] = selected;
        }
        probe.stop(Phase::FaultRecovery);
        last_arrival
    }

    /// `DeviceUpload` arrival: record it in its edge's wave; the
    /// trigger-hitting arrival schedules the wave's `EdgeAggregate`.
    /// Arrivals for an already-aggregated (or superseded) wave are
    /// *late*: the update blends into the edge with the same
    /// similarity-discounted weighting as a lockstep stale merge.
    fn event_upload_arrival(
        &mut self,
        edge: usize,
        device: usize,
        wave: u64,
        probe: &mut StepProbe,
    ) {
        let snapshot = self.timeline.take_in_flight(device);
        if !self.timeline.wave_accepts(edge, device, wave) {
            if let Some(flat) = snapshot {
                self.event_late_blend(edge, device, &flat, probe);
            }
            return;
        }
        if self.timeline.record_arrival(edge, device, wave, snapshot) == ArrivalOutcome::Ready {
            let now = self.timeline.clock();
            self.timeline
                .push(now, EventKind::EdgeAggregate { edge, wave });
        }
    }

    /// Blend a late async upload into its edge with Eq. 9's
    /// similarity-discounted weighting — the event engine's counterpart
    /// of the lockstep stale merge in `fault_step_begin`. The transfer
    /// was already charged at send time, so only the staleness counter
    /// moves.
    fn event_late_blend(
        &mut self,
        edge: usize,
        device: usize,
        flat: &[f32],
        probe: &mut StepProbe,
    ) {
        probe.start();
        let norm_sq = dot_slices(flat, flat);
        let e = &mut self.edges[edge];
        let u = similarity_utility_cached(flat, norm_sq, e.flat(), e.flat_norm_sq());
        let (edge_w, stale_w) = aggregation_weights(u);
        let mut blend = flat.to_vec();
        for (v, &ew) in blend.iter_mut().zip(e.flat()) {
            *v = edge_w * ew + stale_w * *v;
        }
        middle_nn::params::unflatten(&mut e.model, &blend);
        e.refresh_flat();
        self.comm.stale_uploads += 1;
        probe.stale_merge();
        self.policy
            .after_edge_aggregate(edge, std::slice::from_ref(&device));
        probe.stop(Phase::FaultRecovery);
    }

    /// `EdgeAggregate`: consume the wave's arrived cohort and aggregate
    /// it into the edge (Eq. 6). A stale wave id (superseded before the
    /// event popped) is a no-op.
    fn event_edge_aggregate(
        &mut self,
        edge: usize,
        wave: u64,
        mode: StepMode,
        probe: &mut StepProbe,
    ) {
        if let Some((cohort, snaps)) = self.timeline.take_ready(edge, wave) {
            self.event_aggregate_cohort(edge, &cohort, &snaps, mode, probe);
            self.timeline.aggs_since_sync += 1;
        }
    }

    /// Aggregate one cohort into `edge`. At zero delay (`snapshots` all
    /// `None`) this is exactly the lockstep phase-3 per-edge arm — live
    /// device models, mode-dispatched fast / reference / compressed
    /// aggregation. Async waves FedAvg their send-time snapshots with
    /// the same `d_m / d` weighting instead.
    fn event_aggregate_cohort(
        &mut self,
        edge: usize,
        cohort: &[usize],
        snapshots: &[Option<Vec<f32>>],
        mode: StepMode,
        probe: &mut StepProbe,
    ) {
        if cohort.is_empty() {
            return;
        }
        if snapshots.iter().any(|s| s.is_some()) {
            probe.start();
            let len = self.cloud_flat.flat().len();
            let total: usize = cohort
                .iter()
                .map(|&m| self.population.get(m).num_samples())
                .sum();
            let total_f = total as f32;
            self.agg_scratch.clear();
            self.agg_scratch.resize(len, 0.0);
            for (i, &m) in cohort.iter().enumerate() {
                let w = self.population.get(m).num_samples() as f32 / total_f;
                let flat: &[f32] = match &snapshots[i] {
                    Some(s) => s,
                    None => self.population.get(m).flat(),
                };
                for (a, &r) in self.agg_scratch.iter_mut().zip(flat) {
                    *a += w * r;
                }
            }
            let norm_sq = dot_slices(&self.agg_scratch, &self.agg_scratch);
            self.edges[edge].load_flat(&self.agg_scratch, norm_sq);
            self.edges[edge].window_samples += total as f64;
            self.policy.after_edge_aggregate(edge, cohort);
            probe.stop(Phase::EdgeAggregation);
            return;
        }
        if self.compression.lossy_active() {
            probe.start();
            self.compressed_edge_aggregate_one(edge, cohort, probe);
            probe.stop(Phase::Compress);
            return;
        }
        probe.start();
        match mode {
            StepMode::Fast => {
                let population = &self.population;
                let e = &mut self.edges[edge];
                edge_aggregate_into(
                    &mut e.model,
                    cohort.iter().map(|&m| {
                        let dev = population.get(m);
                        (&dev.model, dev.num_samples())
                    }),
                );
                e.window_samples += cohort
                    .iter()
                    .map(|&m| population.get(m).num_samples())
                    .sum::<usize>() as f64;
                e.refresh_flat();
            }
            StepMode::Reference => {
                let models: Vec<&Sequential> = cohort
                    .iter()
                    .map(|&m| &self.population.get(m).model)
                    .collect();
                let counts: Vec<usize> = cohort
                    .iter()
                    .map(|&m| self.population.get(m).num_samples())
                    .collect();
                self.edges[edge].model = edge_aggregate(&models, &counts);
                self.edges[edge].window_samples += counts.iter().sum::<usize>() as f64;
                self.edges[edge].refresh_flat();
            }
        }
        self.policy.after_edge_aggregate(edge, cohort);
        probe.stop(Phase::EdgeAggregation);
    }

    /// `CloudSync`: timer syncs reschedule themselves every
    /// `cloud_timer` simulated seconds and skip the sync entirely when
    /// no edge aggregation has landed since the last one; synchronous
    /// (round-scheduled) syncs always run, like lockstep phase 4. A
    /// successful sync raises the step's synced flag, attributed to the
    /// next `EndOfStep`.
    fn event_cloud_sync(&mut self, timer: bool, mode: StepMode, probe: &mut StepProbe) {
        if timer {
            let period = self
                .config
                .timeline
                .cloud_timer
                .expect("timer sync without cloud_timer");
            let next = self.timeline.clock() + period;
            self.timeline
                .push(next, EventKind::CloudSync { timer: true });
            if self.timeline.aggs_since_sync == 0 {
                return;
            }
        }
        if self.cloud_sync_now(mode, probe) {
            self.timeline.step_synced = true;
            self.timeline.aggs_since_sync = 0;
        }
    }

    /// `EndOfStep`: close the round's telemetry with the active/synced
    /// flags accumulated since its boundary.
    fn event_end_of_step(&mut self, t: usize) {
        let active = std::mem::take(&mut self.timeline.step_active);
        let synced = std::mem::take(&mut self.timeline.step_synced);
        let probe = match self.probe.take() {
            Some(p) => p,
            None => self.telemetry.begin_step(),
        };
        self.telemetry.end_step(t, active, synced, probe);
    }

    /// Evaluates a model on the held-out test set, returning
    /// `(accuracy, mean loss, confusion)`.
    pub fn evaluate(&self, model: &Sequential) -> (f32, f32, Confusion) {
        // One forward pass feeds both metrics (`predict` + `eval_loss`
        // would run inference twice); workspace inference produces
        // logits bitwise-identical to `infer`.
        let mut scratch = NetScratch::new();
        let logits = model.infer_ws(self.test.inputs(), &mut scratch);
        let preds = argmax_rows(logits);
        let loss = softmax_cross_entropy(logits, self.test.labels()).0;
        let conf = Confusion::from_predictions(self.test.labels(), &preds, self.test.classes());
        (conf.accuracy(), loss, conf)
    }

    /// The next step [`Simulation::tick`] will execute; steps
    /// `0..next_step` are done.
    pub fn next_step(&self) -> usize {
        self.next_step
    }

    /// Whether the run cursor has reached the configured horizon.
    pub fn is_finished(&self) -> bool {
        self.next_step >= self.config.steps
    }

    /// Evaluation points recorded so far by [`Simulation::tick`].
    pub fn points(&self) -> &[EvalPoint] {
        &self.points
    }

    /// Executes the next step of the run cursor (recording an
    /// [`EvalPoint`] when the step lands on `eval_interval` or the
    /// horizon) and accumulates wall-clock. [`Simulation::run`] is a
    /// loop over `tick`; a sweep worker interleaves `tick` with
    /// checkpoint captures instead.
    ///
    /// # Panics
    /// Panics when the run is already finished.
    pub fn tick(&mut self, mode: StepMode) {
        assert!(!self.is_finished(), "simulation already finished");
        let start = Instant::now();
        let t = self.next_step;
        match self.config.timeline.mode {
            ExecutionMode::Lockstep => self.advance(t, mode),
            ExecutionMode::EventDriven => self.tick_event(mode),
        }
        self.next_step = t + 1;
        let is_eval =
            (t + 1).is_multiple_of(self.config.eval_interval) || t + 1 == self.config.steps;
        if is_eval {
            let es = self.telemetry.phase_timer();
            let point = self.eval_point(t);
            self.points.push(point);
            self.telemetry.observe_since(Phase::Evaluation, es);
        }
        self.elapsed_seconds += start.elapsed().as_secs_f64();
    }

    /// Runs the remaining steps, recording an [`EvalPoint`] every
    /// `eval_interval` steps (plus the final step).
    pub fn run(&mut self) -> RunRecord {
        self.run_with(StepMode::Fast)
    }

    /// [`Simulation::run`] with an explicit step implementation.
    pub fn run_with(&mut self, mode: StepMode) -> RunRecord {
        while !self.is_finished() {
            self.tick(mode);
        }
        self.finish()
    }

    /// Flushes telemetry and assembles the run record from the state
    /// accumulated by [`Simulation::tick`]. Callable mid-run, too — the
    /// record then covers the steps executed so far.
    pub fn finish(&mut self) -> RunRecord {
        self.telemetry.flush();
        RunRecord {
            schema_version: RUN_RECORD_SCHEMA_VERSION,
            algorithm: self.config.algorithm.name.clone(),
            task: self.config.task.name().to_string(),
            points: self.points.clone(),
            empirical_mobility: self.trace.empirical_mobility(),
            wall_seconds: self.elapsed_seconds,
            comm: self.comm,
            syncs: self.syncs,
            active_steps: self.active_steps,
            param_count: self.cloud_flat.flat().len() as u64,
            telemetry: self.telemetry.report(),
            event_seconds: if self.config.timeline.event_mode() {
                Some(self.timeline.clock())
            } else {
                None
            },
        }
    }

    /// Captures a complete snapshot of the run: model parameters, every
    /// RNG stream, fault-plane queues, the communication ledger, the
    /// evaluation points and the step cursor (see [`crate::checkpoint`]
    /// for what is deliberately excluded). Restoring it into a freshly
    /// built simulation of the same config resumes bitwise-identically.
    pub fn checkpoint(&self) -> SimCheckpoint {
        SimCheckpoint {
            schema_version: SIM_CHECKPOINT_SCHEMA_VERSION,
            config_digest: config_digest(&self.config),
            next_step: self.next_step,
            elapsed_seconds: self.elapsed_seconds,
            cloud: Checkpoint::capture(&self.cloud),
            edges: self
                .edges
                .iter()
                .map(|e| EdgeCheckpoint {
                    params: Checkpoint::capture(&e.model),
                    window_samples: e.window_samples,
                })
                .collect(),
            devices: match &self.population {
                Population::Dense(devices) => devices
                    .iter()
                    .map(|d| DeviceCheckpoint {
                        params: Checkpoint::capture(&d.model),
                        oort_utility: d.oort_utility,
                        last_participation: d.last_participation,
                        rng: RngStateCheckpoint::capture(d.rng_ref()),
                    })
                    .collect(),
                Population::Lazy(_) => Vec::new(),
            },
            population: self.population.checkpoint(),
            selection_rng: RngStateCheckpoint::capture(&self.rng),
            availability_rng: RngStateCheckpoint::capture(&self.availability_rng),
            faults: FaultPlaneCheckpoint {
                rng: RngStateCheckpoint::capture(self.faults.rng_ref()),
                device_down: self.faults.device_down_states().to_vec(),
                pending: self.faults.pending().to_vec(),
            },
            compression: self.compression.state_checkpoint(),
            algorithm: self.policy.state(),
            comm: self.comm,
            syncs: self.syncs,
            active_steps: self.active_steps,
            points: self.points.clone(),
            telemetry_counters: if self.telemetry.is_enabled() {
                Some(*self.telemetry.counters())
            } else {
                None
            },
            timeline: if self.config.timeline.event_mode() {
                Some(self.timeline.checkpoint())
            } else {
                None
            },
        }
    }

    /// Restores a snapshot captured by [`Simulation::checkpoint`] into
    /// this simulation, which must have been built from the same
    /// configuration.
    ///
    /// # Errors
    /// [`SimError::CheckpointMismatch`] when the schema version, config
    /// digest, population shape or model architecture disagree; the
    /// simulation is left unmodified in the version/digest/shape cases.
    pub fn restore(&mut self, ck: &SimCheckpoint) -> Result<(), SimError> {
        let mismatch = |message: String| SimError::CheckpointMismatch { message };
        if ck.schema_version != SIM_CHECKPOINT_SCHEMA_VERSION {
            return Err(mismatch(format!(
                "schema version {} (expected {SIM_CHECKPOINT_SCHEMA_VERSION})",
                ck.schema_version
            )));
        }
        let digest = config_digest(&self.config);
        if ck.config_digest != digest {
            return Err(mismatch(format!(
                "config digest {:016x} (this simulation has {digest:016x})",
                ck.config_digest
            )));
        }
        let ck_devices = ck
            .population
            .as_ref()
            .map_or(ck.devices.len(), |p| p.devices.len());
        if ck.edges.len() != self.edges.len() || ck_devices != self.population.len() {
            return Err(mismatch(format!(
                "population {} edges / {} devices (expected {} / {})",
                ck.edges.len(),
                ck_devices,
                self.edges.len(),
                self.population.len()
            )));
        }
        if ck.faults.device_down.len() != self.population.len() {
            return Err(mismatch("fault-plane device count".into()));
        }
        ck.cloud.restore(&mut self.cloud).map_err(&mismatch)?;
        self.cloud_flat.refresh(&self.cloud);
        for (edge, eck) in self.edges.iter_mut().zip(&ck.edges) {
            eck.params.restore(&mut edge.model).map_err(&mismatch)?;
            edge.window_samples = eck.window_samples;
            edge.refresh_flat();
        }
        match &ck.population {
            Some(pck) => self.population.restore(pck).map_err(&mismatch)?,
            None => {
                if !self.population.is_dense() {
                    return Err(mismatch(
                        "checkpoint lacks population state but the simulation is lazy-mode".into(),
                    ));
                }
                for (dev, dck) in self
                    .population
                    .dense_slice_mut()
                    .iter_mut()
                    .zip(&ck.devices)
                {
                    dck.params.restore(&mut dev.model).map_err(&mismatch)?;
                    dev.refresh_flat();
                    dev.oort_utility = dck.oort_utility;
                    dev.last_participation = dck.last_participation;
                    dev.restore_rng(dck.rng.restore());
                }
            }
        }
        self.rng = ck.selection_rng.restore();
        self.availability_rng = ck.availability_rng.restore();
        self.faults.restore_state(
            ck.faults.rng.restore(),
            ck.faults.device_down.clone(),
            ck.faults.pending.clone(),
        );
        match (self.compression.lossy_active(), &ck.compression) {
            (true, Some(c)) => self.compression.restore_state(c).map_err(&mismatch)?,
            (false, None) => {}
            (true, None) => {
                return Err(mismatch(
                    "checkpoint lacks compression state but the plane is lossy-active".into(),
                ))
            }
            (false, Some(_)) => {
                return Err(mismatch(
                    "checkpoint carries compression state but the plane is inert".into(),
                ))
            }
        }
        match (&ck.algorithm, self.policy.state().is_some()) {
            (Some(state), true) => self.policy.restore_state(state).map_err(&mismatch)?,
            (None, false) => {}
            (Some(_), false) => {
                return Err(mismatch(
                    "checkpoint carries algorithm state but the configured algorithm is stateless"
                        .into(),
                ))
            }
            (None, true) => {
                return Err(mismatch(
                    "configured algorithm carries cross-round state but the checkpoint has none"
                        .into(),
                ))
            }
        }
        match (self.config.timeline.event_mode(), &ck.timeline) {
            (true, Some(tck)) => {
                self.timeline = Timeline::restore(tck, self.edges.len(), self.population.len())
                    .map_err(&mismatch)?;
                // A timer sync can fire before the first post-restore
                // step boundary rebuilds the step index; give it the
                // index of the last executed step so its broadcast mask
                // sees the same occupancy it did pre-checkpoint.
                if self.timeline.started && ck.next_step > 0 {
                    self.index
                        .build(&self.trace, ck.next_step - 1, self.edges.len());
                }
            }
            (false, None) => {}
            (true, None) => {
                return Err(mismatch(
                    "checkpoint is from a lockstep run but the simulation is event-driven".into(),
                ))
            }
            (false, Some(_)) => {
                return Err(mismatch(
                    "checkpoint is from an event-driven run but the simulation is lockstep".into(),
                ))
            }
        }
        self.comm = ck.comm;
        self.syncs = ck.syncs;
        self.active_steps = ck.active_steps;
        self.points = ck.points.clone();
        self.next_step = ck.next_step;
        self.elapsed_seconds = ck.elapsed_seconds;
        if let Some(counters) = &ck.telemetry_counters {
            self.telemetry.restore_counters(*counters);
        }
        Ok(())
    }

    /// Builds the evaluation point for time step `t`.
    fn eval_point(&self, t: usize) -> EvalPoint {
        let global = self.virtual_global();
        let (acc, loss, conf) = self.evaluate(&global);
        let mut point = EvalPoint {
            step: t + 1,
            global_accuracy: acc,
            global_loss: loss,
            edge_accuracy: Vec::new(),
            global_per_class: Vec::new(),
            edge0_per_class: Vec::new(),
        };
        if self.config.eval_per_class {
            point.global_per_class = conf.per_class_accuracy();
        }
        if self.config.eval_edges {
            for (n, edge) in self.edges.iter().enumerate() {
                let (eacc, _, econf) = self.evaluate(&edge.model);
                point.edge_accuracy.push(eacc);
                if n == 0 && self.config.eval_per_class {
                    point.edge0_per_class = econf.per_class_accuracy();
                }
            }
        }
        point
    }
}

/// Builds the mobility trace described by the config.
///
/// In lazy population mode the Markov-hop sources use the streaming
/// generator — bitwise-identical rows, O(N) resident memory instead of
/// the O(N·T) dense table. The geometric sources (waypoint/walk/
/// stationary) have no streaming backend yet and stay dense in either
/// mode.
pub(crate) fn build_trace(config: &SimConfig, homes: &[usize]) -> Trace {
    let seed = derive_seed(config.seed, 7);
    let lazy = matches!(config.population, PopulationMode::Lazy);
    match config.mobility {
        MobilitySource::MarkovHop { p } if lazy => {
            Trace::markov_hop_streaming(config.num_edges, config.num_devices, config.steps, p, seed)
        }
        MobilitySource::HomedMarkovHop { p, home_bias } if lazy => {
            Trace::markov_hop_homed_streaming(
                config.num_edges,
                homes,
                config.steps,
                p,
                home_bias,
                seed,
            )
        }
        MobilitySource::MarkovHop { p } => {
            generate_markov_hop(config.num_edges, config.num_devices, config.steps, p, seed)
        }
        MobilitySource::HomedMarkovHop { p, home_bias } => {
            generate_markov_hop_homed(config.num_edges, homes, config.steps, p, home_bias, seed)
        }
        MobilitySource::Stationary => {
            let area = ServiceArea::grid(1000.0, 1000.0, config.num_edges);
            let mut model = MobilityKind::Stationary.build();
            generate_geometric(
                &area,
                model.as_mut(),
                config.num_devices,
                config.steps,
                seed,
            )
        }
        MobilitySource::RandomWalk { max_speed } => {
            let area = ServiceArea::grid(1000.0, 1000.0, config.num_edges);
            let mut model = MobilityKind::RandomWalk { max_speed }.build();
            generate_geometric(
                &area,
                model.as_mut(),
                config.num_devices,
                config.steps,
                seed,
            )
        }
        MobilitySource::RandomWaypoint {
            min_speed,
            max_speed,
        } => {
            let area = ServiceArea::grid(1000.0, 1000.0, config.num_edges);
            let mut model = MobilityKind::RandomWaypoint {
                min_speed,
                max_speed,
            }
            .build();
            generate_geometric(
                &area,
                model.as_mut(),
                config.num_devices,
                config.steps,
                seed,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::Algorithm;
    use crate::builder::SimulationBuilder;
    use middle_data::Task;

    fn built(cfg: SimConfig) -> Simulation {
        SimulationBuilder::new(cfg).build().expect("valid config")
    }

    #[test]
    fn construction_partitions_all_devices() {
        let cfg = SimConfig::tiny(Task::Mnist, Algorithm::middle());
        let sim = built(cfg.clone());
        assert_eq!(sim.devices().len(), cfg.num_devices);
        assert_eq!(sim.edges().len(), cfg.num_edges);
        for d in sim.devices() {
            assert_eq!(d.num_samples(), cfg.samples_per_device);
        }
    }

    #[test]
    fn all_models_start_identical() {
        let sim = built(SimConfig::tiny(Task::Mnist, Algorithm::middle()));
        let cloud = flatten(sim.cloud_model());
        for e in sim.edges() {
            assert_eq!(flatten(&e.model), cloud);
        }
        for d in sim.devices() {
            assert_eq!(flatten(&d.model), cloud);
        }
    }

    #[test]
    fn one_step_changes_participating_edge_models() {
        let mut sim = built(SimConfig::tiny(Task::Mnist, Algorithm::middle()));
        let before = flatten(&sim.edges()[0].model);
        sim.step(0);
        // At least one edge must have trained (8 devices over 2 edges).
        let changed = sim.edges().iter().any(|e| flatten(&e.model) != before);
        assert!(changed);
    }

    #[test]
    fn cloud_syncs_at_interval() {
        let mut cfg = SimConfig::tiny(Task::Mnist, Algorithm::middle());
        cfg.cloud_interval = 2;
        let mut sim = built(cfg);
        let initial_cloud = flatten(sim.cloud_model());
        sim.step(0);
        assert_eq!(flatten(sim.cloud_model()), initial_cloud, "no sync yet");
        sim.step(1);
        let synced = flatten(sim.cloud_model());
        assert_ne!(synced, initial_cloud, "sync after step 2");
        // Broadcast: edges and devices match the cloud.
        for e in sim.edges() {
            assert_eq!(flatten(&e.model), synced);
        }
        for d in sim.devices() {
            assert_eq!(flatten(&d.model), synced);
        }
    }

    #[test]
    fn run_produces_monotone_step_points() {
        let mut cfg = SimConfig::tiny(Task::Mnist, Algorithm::middle());
        cfg.steps = 6;
        cfg.eval_interval = 2;
        let record = built(cfg).run();
        let steps: Vec<usize> = record.points.iter().map(|p| p.step).collect();
        assert_eq!(steps, vec![2, 4, 6]);
        assert!(record.wall_seconds > 0.0);
        assert!((0.0..=1.0).contains(&record.final_accuracy()));
    }

    #[test]
    fn eval_flags_populate_extra_series() {
        let mut cfg = SimConfig::tiny(Task::Mnist, Algorithm::middle());
        cfg.steps = 2;
        cfg.eval_interval = 2;
        cfg.eval_edges = true;
        cfg.eval_per_class = true;
        let record = built(cfg.clone()).run();
        let p = &record.points[0];
        assert_eq!(p.edge_accuracy.len(), cfg.num_edges);
        assert_eq!(p.global_per_class.len(), 10);
        assert_eq!(p.edge0_per_class.len(), 10);
    }

    #[test]
    fn runs_are_seed_reproducible() {
        let mut cfg = SimConfig::tiny(Task::Mnist, Algorithm::middle());
        cfg.steps = 4;
        let a = built(cfg.clone()).run();
        let b = built(cfg.clone()).run();
        let accs = |r: &RunRecord| {
            r.points
                .iter()
                .map(|p| p.global_accuracy)
                .collect::<Vec<_>>()
        };
        assert_eq!(accs(&a), accs(&b));
        cfg.seed = 8;
        let c = built(cfg).run();
        assert_ne!(accs(&a), accs(&c));
    }

    #[test]
    fn all_five_figure6_algorithms_run() {
        for algo in Algorithm::figure6() {
            let mut cfg = SimConfig::tiny(Task::Mnist, algo);
            cfg.steps = 4;
            let record = built(cfg).run();
            assert!(!record.points.is_empty());
            assert!(record.points.iter().all(|p| p.global_accuracy.is_finite()));
        }
    }

    #[test]
    #[should_panic(expected = "invalid SimConfig")]
    #[allow(deprecated)]
    fn invalid_config_panics() {
        let mut cfg = SimConfig::tiny(Task::Mnist, Algorithm::middle());
        cfg.steps = 0;
        Simulation::new(cfg);
    }
}
