//! # middle-core
//!
//! MIDDLE — MobIlity-Driven feDerated LEarning (Zhang et al., ICPP 2023)
//! — reproduced in Rust: the similarity utility, on-device model
//! aggregation, in-edge device selection, the full device-edge-cloud
//! simulation loop (Algorithm 1), all four evaluation baselines, and the
//! Theorem 1 convergence theory with a strongly-convex validation
//! test-bed.
//!
//! ## Quick start
//!
//! ```
//! use middle_core::{Algorithm, SimConfig, SimulationBuilder};
//! use middle_data::Task;
//!
//! let mut cfg = SimConfig::tiny(Task::Mnist, Algorithm::middle());
//! cfg.steps = 4;
//! let record = SimulationBuilder::new(cfg)
//!     .build()
//!     .expect("valid config")
//!     .run();
//! println!("final accuracy: {:.3}", record.final_accuracy());
//! ```
//!
//! To run a whole grid of scenarios (varying mobility `P`, `K`, `T_c`,
//! seeds and fault presets) across threads with shared input
//! construction and checkpoint/resume, see [`sweep`].
//!
//! ## Module map
//!
//! * [`similarity`] — the `U(a, b) = max(cos, 0)` utility (Eq. 8);
//! * [`aggregation`] — on-device aggregation (Eq. 9) + edge/cloud FedAvg
//!   (Eqs. 6–7);
//! * [`selection`] — in-edge device selection (Eqs. 10–12) + baselines;
//! * [`algorithms`] — the algorithm zoo (MIDDLE / OORT / FedMes / Greedy
//!   / Ensemble / HierFAVG / FedFly / FedLECC / Random) behind the
//!   [`AlgorithmConfig`] → [`algorithms::AlgorithmPolicy`] policy API;
//! * [`device`], [`sim`] — mobile devices and the Algorithm 1 loop,
//!   Rayon-parallel across devices;
//! * [`config`], [`metrics`] — experiment configs and run records
//!   (time-to-accuracy, speedups);
//! * [`builder`] — Result-based construction ([`SimulationBuilder`],
//!   [`SimError`]) and the shared-input cache behind sweep scenarios;
//! * [`checkpoint`], [`sweep`] — full-state simulation snapshots and the
//!   sharded multi-scenario orchestrator with checkpoint/resume;
//! * [`faults`] — deterministic failure models (dropout, stragglers,
//!   upload loss, WAN outages) with retry/deadline/staleness recovery;
//! * [`compress`] — uplink compression (QSGD-style quantization + top-K
//!   sparsification with error feedback) and byte-accurate accounting;
//! * [`telemetry`] — per-phase step timers, latency histograms and event
//!   counters (no-op unless enabled in the config);
//! * [`timeline`] — the event-driven execution mode: a deterministic
//!   timestamped event heap where straggler delays become real upload
//!   latencies, edges aggregate on arrival thresholds and the cloud
//!   syncs on a timer; the zero-delay corner reproduces lockstep
//!   bitwise;
//! * [`theory`], [`quadratic_sim`] — the Theorem 1 bound, Remark 1, and
//!   numerical validation on strongly-convex quadratics.

pub mod aggregation;
pub mod algorithms;
pub mod builder;
pub mod checkpoint;
pub mod comm;
pub mod compress;
pub mod config;
pub mod device;
pub mod faults;
pub mod metrics;
pub mod population;
pub mod quadratic_sim;
pub mod selection;
pub mod sim;
pub mod similarity;
pub mod sweep;
pub mod telemetry;
pub mod theory;
pub mod timeline;

pub use algorithms::{
    Algorithm, AlgorithmConfig, AlgorithmPolicy, AlgorithmState, MoveAction, OnDevicePolicy,
    SelectionPolicy,
};
pub use builder::{input_key, InputCache, SharedInputs, SimError, SimulationBuilder};
pub use checkpoint::{config_digest, SimCheckpoint, SIM_CHECKPOINT_SCHEMA_VERSION};
pub use checkpoint::{seal_json, unseal_json};
pub use comm::CommStats;
pub use compress::{CompressionConfig, CompressionPlane, RoundingMode};
pub use config::{MobilitySource, PopulationMode, SimConfig};
pub use device::Device;
pub use faults::{DelayModel, DropoutModel, FaultConfig, FaultPlane};
pub use metrics::{speedup, EvalPoint, RunRecord, RUN_RECORD_SCHEMA_VERSION};
pub use population::{DeviceRef, Population, Reached};
pub use selection::{select_devices, SelectionScratch};
pub use sim::{EdgeState, Simulation, StepMode};
pub use similarity::{model_similarity_utility, similarity_utility};
pub use sweep::{
    fleet_status, run_fleet_coordinator, run_fleet_worker, run_sweep, AggregatePoint,
    CompressionPreset, FaultPreset, FleetOptions, FleetStatus, FleetWorkerReport, Scenario,
    ScenarioGrid, ScenarioRecord, ShardLease, SweepOptions, SweepReport,
    SWEEP_REPORT_SCHEMA_VERSION,
};
pub use telemetry::{Phase, StepCounters, Telemetry, TelemetryReport};
pub use theory::{BoundParams, QuadraticProblem};
pub use timeline::{ExecutionMode, LatencyModel, Timeline, TimelineCheckpoint, TimelineConfig};
