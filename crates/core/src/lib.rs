//! # middle-core
//!
//! MIDDLE — MobIlity-Driven feDerated LEarning (Zhang et al., ICPP 2023)
//! — reproduced in Rust: the similarity utility, on-device model
//! aggregation, in-edge device selection, the full device-edge-cloud
//! simulation loop (Algorithm 1), all four evaluation baselines, and the
//! Theorem 1 convergence theory with a strongly-convex validation
//! test-bed.
//!
//! ## Quick start
//!
//! ```
//! use middle_core::{Algorithm, SimConfig, Simulation};
//! use middle_data::Task;
//!
//! let mut cfg = SimConfig::tiny(Task::Mnist, Algorithm::middle());
//! cfg.steps = 4;
//! let record = Simulation::new(cfg).run();
//! println!("final accuracy: {:.3}", record.final_accuracy());
//! ```
//!
//! ## Module map
//!
//! * [`similarity`] — the `U(a, b) = max(cos, 0)` utility (Eq. 8);
//! * [`aggregation`] — on-device aggregation (Eq. 9) + edge/cloud FedAvg
//!   (Eqs. 6–7);
//! * [`selection`] — in-edge device selection (Eqs. 10–12) + baselines;
//! * [`algorithms`] — MIDDLE / OORT / FedMes / Greedy / Ensemble /
//!   HierFAVG as (selection, on-device) policy pairs;
//! * [`device`], [`sim`] — mobile devices and the Algorithm 1 loop,
//!   Rayon-parallel across devices;
//! * [`config`], [`metrics`] — experiment configs and run records
//!   (time-to-accuracy, speedups);
//! * [`faults`] — deterministic failure models (dropout, stragglers,
//!   upload loss, WAN outages) with retry/deadline/staleness recovery;
//! * [`telemetry`] — per-phase step timers, latency histograms and event
//!   counters (no-op unless enabled in the config);
//! * [`theory`], [`quadratic_sim`] — the Theorem 1 bound, Remark 1, and
//!   numerical validation on strongly-convex quadratics.

pub mod aggregation;
pub mod algorithms;
pub mod comm;
pub mod config;
pub mod device;
pub mod faults;
pub mod metrics;
pub mod quadratic_sim;
pub mod selection;
pub mod sim;
pub mod similarity;
pub mod telemetry;
pub mod theory;

pub use algorithms::{Algorithm, OnDevicePolicy, SelectionPolicy};
pub use comm::CommStats;
pub use config::{MobilitySource, SimConfig};
pub use device::Device;
pub use faults::{DelayModel, DropoutModel, FaultConfig, FaultPlane};
pub use metrics::{speedup, EvalPoint, RunRecord};
pub use selection::{select_devices, SelectionScratch};
pub use sim::{EdgeState, Simulation};
pub use similarity::{model_similarity_utility, similarity_utility};
pub use telemetry::{Phase, StepCounters, Telemetry, TelemetryReport};
pub use theory::{BoundParams, QuadraticProblem};
