//! Event-driven execution timeline.
//!
//! Lockstep execution advances the simulation one synchronous round at a
//! time: every phase (selection, training, upload, aggregation, sync)
//! completes before the next begins. The event-driven mode replaces that
//! with a timestamped event queue: device uploads, edge aggregations and
//! cloud syncs become events in a deterministic binary heap, edges can
//! aggregate as soon as a threshold of updates arrives, and the cloud can
//! sync on a wall-clock timer instead of a round count.
//!
//! Determinism contract: events are ordered by the total key
//! `(time, kind-rank, edge, device, seq)` with `f64::total_cmp` on time,
//! so replay is bitwise-reproducible regardless of insertion order. The
//! zero-delay / synchronous-timer corner of the event engine reproduces
//! the lockstep `RunRecord` bitwise — lockstep is the oracle, and
//! `tests/timeline_plane.rs` enforces that corner, not convention.
//!
//! This module owns the deterministic data structures (event ordering,
//! the scheduler heap, per-edge wave state, checkpoint forms); the event
//! *processing* lives in `sim.rs` next to the lockstep phases it mirrors.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use serde::{Deserialize, Serialize};

/// How the simulation advances time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ExecutionMode {
    /// Synchronous rounds: one `step()` per tick, analytic wall-clock.
    #[default]
    Lockstep,
    /// Timestamped event queue: uploads, aggregations and syncs are
    /// events with real latencies drained from a deterministic heap.
    EventDriven,
}

/// Where event latencies come from in event-driven mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum LatencyModel {
    /// All events fire instantaneously (uploads arrive at the moment
    /// they are sent). This is the lockstep-oracle corner.
    #[default]
    Zero,
    /// Straggler delays from the fault plane (`FaultConfig.straggler`)
    /// become real in-flight upload latencies instead of deadline
    /// checks.
    Faults,
}

/// Event-driven execution knobs. The default value (lockstep mode) is
/// skipped during serialization so existing config JSON and digests are
/// unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimelineConfig {
    /// Execution mode for the run.
    #[serde(default)]
    pub mode: ExecutionMode,
    /// Latency model applied to device uploads in event-driven mode.
    #[serde(default)]
    pub latency: LatencyModel,
    /// When set, an edge aggregates as soon as this many updates arrive
    /// instead of waiting for the end of the step. Requires
    /// `EventDriven`.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub edge_threshold: Option<usize>,
    /// When set, the cloud syncs every `cloud_timer` simulated seconds
    /// instead of every `cloud_interval` rounds. Requires `EventDriven`.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub cloud_timer: Option<f64>,
    /// Simulated duration of one lockstep round; the step boundary for
    /// step `t` fires at `t * step_duration`.
    #[serde(default = "default_step_duration")]
    pub step_duration: f64,
}

fn default_step_duration() -> f64 {
    1.0
}

impl Default for TimelineConfig {
    fn default() -> Self {
        Self {
            mode: ExecutionMode::Lockstep,
            latency: LatencyModel::Zero,
            edge_threshold: None,
            cloud_timer: None,
            step_duration: default_step_duration(),
        }
    }
}

impl TimelineConfig {
    /// True when every field holds its default value; used to skip the
    /// whole block during config serialization.
    pub fn is_default(&self) -> bool {
        *self == Self::default()
    }

    /// Convenience constructor for the zero-delay event-driven corner
    /// that must reproduce lockstep bitwise.
    pub fn event_driven_zero_delay() -> Self {
        Self {
            mode: ExecutionMode::EventDriven,
            ..Self::default()
        }
    }

    /// True when the run uses the event engine.
    pub fn event_mode(&self) -> bool {
        self.mode == ExecutionMode::EventDriven
    }

    pub fn validate(&self) -> Result<(), String> {
        if !self.step_duration.is_finite() || self.step_duration <= 0.0 {
            return Err(format!(
                "timeline.step_duration must be finite and positive, got {}",
                self.step_duration
            ));
        }
        if let Some(timer) = self.cloud_timer {
            if !timer.is_finite() || timer <= 0.0 {
                return Err(format!(
                    "timeline.cloud_timer must be finite and positive, got {timer}"
                ));
            }
        }
        if let Some(k) = self.edge_threshold {
            if k == 0 {
                return Err("timeline.edge_threshold must be at least 1".into());
            }
        }
        if self.mode == ExecutionMode::Lockstep {
            if self.latency != LatencyModel::Zero {
                return Err("timeline.latency requires mode = EventDriven".into());
            }
            if self.edge_threshold.is_some() {
                return Err("timeline.edge_threshold requires mode = EventDriven".into());
            }
            if self.cloud_timer.is_some() {
                return Err("timeline.cloud_timer requires mode = EventDriven".into());
            }
        }
        Ok(())
    }
}

/// What an event does when it is popped. Ranks define the tie-break
/// order at equal timestamps; at the zero-delay corner that order is
/// exactly the lockstep phase order within a round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Start of round `step`: selection, init, local training, uploads.
    StepBoundary { step: usize },
    /// A device's update arrives at its edge (async latency arm).
    DeviceUpload {
        edge: usize,
        device: usize,
        wave: u64,
    },
    /// An edge aggregates every update that has arrived in wave `wave`.
    EdgeAggregate { edge: usize, wave: u64 },
    /// Cloud sync; `timer` distinguishes self-rescheduling timer syncs
    /// from round-scheduled synchronous syncs.
    CloudSync { timer: bool },
    /// End of round `step`: telemetry accounting and evaluation.
    EndOfStep { step: usize },
}

impl EventKind {
    /// Tie-break rank at equal timestamps (lockstep phase order).
    pub fn rank(&self) -> u8 {
        match self {
            EventKind::StepBoundary { .. } => 0,
            EventKind::DeviceUpload { .. } => 1,
            EventKind::EdgeAggregate { .. } => 2,
            EventKind::CloudSync { .. } => 3,
            EventKind::EndOfStep { .. } => 4,
        }
    }

    /// Edge slot of the ordering key (0 when the kind has no edge).
    pub fn edge(&self) -> usize {
        match self {
            EventKind::DeviceUpload { edge, .. } | EventKind::EdgeAggregate { edge, .. } => *edge,
            _ => 0,
        }
    }

    /// Device slot of the ordering key (0 when the kind has no device).
    pub fn device(&self) -> usize {
        match self {
            EventKind::DeviceUpload { device, .. } => *device,
            _ => 0,
        }
    }

    /// Short label for telemetry histograms.
    pub fn label(&self) -> &'static str {
        match self {
            EventKind::StepBoundary { .. } => "step_boundary",
            EventKind::DeviceUpload { .. } => "device_upload",
            EventKind::EdgeAggregate { .. } => "edge_aggregate",
            EventKind::CloudSync { .. } => "cloud_sync",
            EventKind::EndOfStep { .. } => "end_of_step",
        }
    }

    /// Index into the per-event-kind telemetry histogram array.
    pub fn index(&self) -> usize {
        self.rank() as usize
    }
}

/// Number of distinct event kinds (telemetry histogram slots).
pub const EVENT_KIND_COUNT: usize = 5;

/// Labels for the per-event-kind telemetry histograms, rank order.
pub const EVENT_KIND_LABELS: [&str; EVENT_KIND_COUNT] = [
    "step_boundary",
    "device_upload",
    "edge_aggregate",
    "cloud_sync",
    "end_of_step",
];

/// A scheduled event. Ordering is the total key
/// `(time, rank, edge, device, seq)`; `seq` is a monotone insertion
/// counter so the order is total even for otherwise-identical events.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    pub time: f64,
    pub kind: EventKind,
    pub seq: u64,
}

impl Event {
    fn key(&self) -> (u8, usize, usize, u64) {
        (
            self.kind.rank(),
            self.kind.edge(),
            self.kind.device(),
            self.seq,
        )
    }
}

impl Eq for Event {}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        self.time
            .total_cmp(&other.time)
            .then_with(|| self.key().cmp(&other.key()))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Outcome of recording an upload arrival at an edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalOutcome {
    /// Arrival buffered; the wave has not reached its trigger yet.
    Buffered,
    /// This arrival hit the trigger: schedule an `EdgeAggregate` for
    /// the wave now.
    Ready,
    /// The wave was already aggregated (or superseded): the update is
    /// late and must be blended, not batch-aggregated.
    Late,
}

/// Per-edge aggregation wave: the cohort selected for an edge in one
/// round, which members' updates have arrived, and whether the wave has
/// been aggregated. Async waves carry model snapshots taken at send
/// time; zero-delay waves read live device models instead.
#[derive(Debug, Clone)]
pub struct EdgeWave {
    /// Monotone wave id per edge; stale `DeviceUpload` events from a
    /// superseded wave are detected by id mismatch.
    pub id: u64,
    /// Cohort in original selection order (aggregation iterates this
    /// order, never heap-arrival order, for float-sum determinism).
    pub members: Vec<usize>,
    /// Parallel to `members`: whose update has arrived.
    pub arrived: Vec<bool>,
    /// Count of arrivals so far.
    pub arrivals: usize,
    /// Arrivals needed to schedule the aggregate event.
    pub trigger: usize,
    /// Set once the wave's aggregate has run.
    pub aggregated: bool,
    /// Send-time model snapshots parallel to `members` (async arm only;
    /// `None` entries are members whose upload was lost or, at zero
    /// delay, members read live at aggregation time).
    pub snapshots: Vec<Option<Vec<f32>>>,
}

impl EdgeWave {
    fn empty() -> Self {
        Self {
            id: 0,
            members: Vec::new(),
            arrived: Vec::new(),
            arrivals: 0,
            trigger: 0,
            aggregated: true,
            snapshots: Vec::new(),
        }
    }
}

/// Deterministic event scheduler plus the wave / busy-device state the
/// event engine threads through `sim.rs`.
#[derive(Debug)]
pub struct Timeline {
    heap: BinaryHeap<std::cmp::Reverse<Event>>,
    next_seq: u64,
    /// Simulated clock: timestamp of the most recently popped event.
    clock: f64,
    waves: Vec<EdgeWave>,
    busy: Vec<bool>,
    busy_count: usize,
    /// Per-device send-time model snapshot of the one in-flight upload
    /// (async latency arm; a device is excluded from selection while
    /// busy, so it never has two uploads in flight).
    in_flight: Vec<Option<Vec<f32>>>,
    /// Edge aggregations since the last cloud sync (timer syncs with
    /// nothing new to fold in are skipped but still rescheduled).
    pub aggs_since_sync: usize,
    /// Whether any device trained in the current step.
    pub step_active: bool,
    /// Whether a cloud sync ran since the last `EndOfStep`.
    pub step_synced: bool,
    /// Whether the initial events have been seeded.
    pub started: bool,
}

impl Timeline {
    pub fn new(num_edges: usize, num_devices: usize) -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
            clock: 0.0,
            waves: (0..num_edges).map(|_| EdgeWave::empty()).collect(),
            busy: vec![false; num_devices],
            busy_count: 0,
            in_flight: (0..num_devices).map(|_| None).collect(),
            aggs_since_sync: 0,
            step_active: false,
            step_synced: false,
            started: false,
        }
    }

    /// Current simulated time (timestamp of the last popped event).
    pub fn clock(&self) -> f64 {
        self.clock
    }

    pub fn pending_events(&self) -> usize {
        self.heap.len()
    }

    /// Schedule an event; assigns the next sequence number.
    pub fn push(&mut self, time: f64, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(std::cmp::Reverse(Event { time, kind, seq }));
    }

    /// Pop the next event in `(time, rank, edge, device, seq)` order and
    /// advance the clock to its timestamp.
    pub fn pop(&mut self) -> Option<Event> {
        let ev = self.heap.pop()?.0;
        self.clock = ev.time;
        Some(ev)
    }

    /// Peek at the next event without popping.
    pub fn peek(&self) -> Option<&Event> {
        self.heap.peek().map(|r| &r.0)
    }

    /// Remove the next event *without* advancing the clock. Used by the
    /// end-of-run tail drain to discard beyond-horizon timer syncs: the
    /// timer dies with the run, and the simulated clock should read the
    /// time real work finished, not the timer's next would-be firing.
    pub fn discard_next(&mut self) -> Option<Event> {
        self.heap.pop().map(|r| r.0)
    }

    // ---- wave lifecycle ------------------------------------------------

    /// Open a new aggregation wave for `edge` with the given cohort and
    /// trigger count. Returns the *unaggregated remainder* of the
    /// previous wave — members whose updates arrived but whose wave
    /// never hit its trigger — so the caller can flush-aggregate them
    /// before the new wave starts. (Impossible at zero delay, where
    /// every wave aggregates within its own step.)
    #[allow(clippy::type_complexity)]
    pub fn open_wave(
        &mut self,
        edge: usize,
        members: Vec<usize>,
        trigger: usize,
    ) -> Option<(Vec<usize>, Vec<Option<Vec<f32>>>)> {
        let wave = &mut self.waves[edge];
        let flush = if !wave.aggregated && wave.arrivals > 0 {
            let mut cohort = Vec::new();
            let mut snaps = Vec::new();
            for (i, &m) in wave.members.iter().enumerate() {
                if wave.arrived[i] {
                    cohort.push(m);
                    snaps.push(wave.snapshots[i].take());
                }
            }
            Some((cohort, snaps))
        } else {
            None
        };
        let n = members.len();
        wave.id += 1;
        wave.members = members;
        wave.arrived = vec![false; n];
        wave.arrivals = 0;
        wave.trigger = trigger.min(n).max(if n == 0 { 0 } else { 1 });
        wave.aggregated = n == 0;
        wave.snapshots = (0..n).map(|_| None).collect();
        flush
    }

    /// Current wave id for `edge`.
    pub fn wave_id(&self, edge: usize) -> u64 {
        self.waves[edge].id
    }

    /// Whether an arrival for `(edge, device, wave)` would be accepted
    /// into the wave — false means the arrival is late (superseded or
    /// already-aggregated wave, or a duplicate). Lets the caller keep
    /// the snapshot for a late blend instead of handing it to
    /// [`Self::record_arrival`].
    pub fn wave_accepts(&self, edge: usize, device: usize, wave: u64) -> bool {
        let w = &self.waves[edge];
        if w.id != wave || w.aggregated {
            return false;
        }
        match w.members.iter().position(|&m| m == device) {
            Some(i) => !w.arrived[i],
            None => false,
        }
    }

    /// Record an upload arrival for `(edge, device)` in wave `wave`.
    /// `snapshot` is the send-time flat model (async arm) or `None`
    /// (zero-delay arm reads live models at aggregation).
    pub fn record_arrival(
        &mut self,
        edge: usize,
        device: usize,
        wave: u64,
        snapshot: Option<Vec<f32>>,
    ) -> ArrivalOutcome {
        let w = &mut self.waves[edge];
        if w.id != wave || w.aggregated {
            return ArrivalOutcome::Late;
        }
        let Some(i) = w.members.iter().position(|&m| m == device) else {
            return ArrivalOutcome::Late;
        };
        if w.arrived[i] {
            return ArrivalOutcome::Late;
        }
        w.arrived[i] = true;
        w.snapshots[i] = snapshot;
        w.arrivals += 1;
        if w.arrivals == w.trigger {
            ArrivalOutcome::Ready
        } else {
            ArrivalOutcome::Buffered
        }
    }

    /// Consume the arrived portion of `edge`'s wave `wave` for
    /// aggregation. Returns `(cohort, snapshots)` in selection order,
    /// or `None` when the wave is stale or already aggregated.
    #[allow(clippy::type_complexity)]
    pub fn take_ready(
        &mut self,
        edge: usize,
        wave: u64,
    ) -> Option<(Vec<usize>, Vec<Option<Vec<f32>>>)> {
        let w = &mut self.waves[edge];
        if w.id != wave || w.aggregated || w.arrivals == 0 {
            return None;
        }
        w.aggregated = true;
        let mut cohort = Vec::new();
        let mut snaps = Vec::new();
        for (i, &m) in w.members.iter().enumerate() {
            if w.arrived[i] {
                cohort.push(m);
                snaps.push(w.snapshots[i].take());
            }
        }
        Some((cohort, snaps))
    }

    // ---- busy-device tracking -----------------------------------------

    /// Mark a device as having an in-flight upload.
    pub fn mark_busy(&mut self, device: usize) {
        if !self.busy[device] {
            self.busy[device] = true;
            self.busy_count += 1;
        }
    }

    /// Clear a device's in-flight marker (its upload arrived or was
    /// dropped).
    pub fn clear_busy(&mut self, device: usize) {
        if self.busy[device] {
            self.busy[device] = false;
            self.busy_count -= 1;
        }
    }

    pub fn is_busy(&self, device: usize) -> bool {
        self.busy[device]
    }

    /// Records an in-flight upload: the device turns busy and its
    /// send-time snapshot is parked until the arrival event consumes it
    /// ([`Self::take_in_flight`]).
    pub fn send_upload(&mut self, device: usize, snapshot: Vec<f32>) {
        self.mark_busy(device);
        self.in_flight[device] = Some(snapshot);
    }

    /// Consumes a device's in-flight snapshot and clears its busy
    /// marker (the upload arrived).
    pub fn take_in_flight(&mut self, device: usize) -> Option<Vec<f32>> {
        self.clear_busy(device);
        self.in_flight[device].take()
    }

    /// Cheap guard so the zero-delay path never scans the busy vector.
    pub fn busy_any(&self) -> bool {
        self.busy_count > 0
    }

    // ---- checkpointing -------------------------------------------------

    pub fn checkpoint(&self) -> TimelineCheckpoint {
        let mut events: Vec<&Event> = self.heap.iter().map(|r| &r.0).collect();
        events.sort();
        TimelineCheckpoint {
            events: events.into_iter().map(EventCheckpoint::from).collect(),
            next_seq: self.next_seq,
            clock_bits: self.clock.to_bits(),
            waves: self
                .waves
                .iter()
                .map(|w| WaveCheckpoint {
                    id: w.id,
                    members: w.members.clone(),
                    arrived: w.arrived.clone(),
                    trigger: w.trigger,
                    aggregated: w.aggregated,
                    snapshots: w.snapshots.clone(),
                })
                .collect(),
            in_flight: self.in_flight.clone(),
            aggs_since_sync: self.aggs_since_sync,
            started: self.started,
        }
    }

    pub fn restore(
        ck: &TimelineCheckpoint,
        num_edges: usize,
        num_devices: usize,
    ) -> Result<Self, String> {
        if ck.waves.len() != num_edges {
            return Err(format!(
                "timeline checkpoint has {} waves, config has {} edges",
                ck.waves.len(),
                num_edges
            ));
        }
        let mut tl = Self::new(num_edges, num_devices);
        for ev in &ck.events {
            let event = ev.to_event(num_edges, num_devices)?;
            if event.seq >= ck.next_seq {
                return Err(format!(
                    "timeline checkpoint event seq {} >= next_seq {}",
                    event.seq, ck.next_seq
                ));
            }
            // In-flight uploads re-mark their device busy.
            if let EventKind::DeviceUpload { device, .. } = event.kind {
                tl.mark_busy(device);
            }
            tl.heap.push(std::cmp::Reverse(event));
        }
        tl.next_seq = ck.next_seq;
        tl.clock = f64::from_bits(ck.clock_bits);
        for (edge, w) in ck.waves.iter().enumerate() {
            if w.members.len() != w.arrived.len() || w.members.len() != w.snapshots.len() {
                return Err(format!(
                    "timeline checkpoint wave {edge} has inconsistent member/arrived/snapshot lengths"
                ));
            }
            if let Some(&m) = w.members.iter().find(|&&m| m >= num_devices) {
                return Err(format!(
                    "timeline checkpoint wave {edge} references device {m} out of range"
                ));
            }
            let arrivals = w.arrived.iter().filter(|&&a| a).count();
            tl.waves[edge] = EdgeWave {
                id: w.id,
                members: w.members.clone(),
                arrived: w.arrived.clone(),
                arrivals,
                trigger: w.trigger,
                aggregated: w.aggregated,
                snapshots: w.snapshots.clone(),
            };
        }
        if ck.in_flight.len() != num_devices {
            return Err(format!(
                "timeline checkpoint has {} in-flight slots, config has {} devices",
                ck.in_flight.len(),
                num_devices
            ));
        }
        tl.in_flight = ck.in_flight.clone();
        tl.aggs_since_sync = ck.aggs_since_sync;
        tl.started = ck.started;
        Ok(tl)
    }
}

/// Serialized event. Times ride as raw `f64` bits so the restore is
/// bitwise-exact regardless of JSON float formatting.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub struct EventCheckpoint {
    pub time_bits: u64,
    /// Rank of the kind (see `EventKind::rank`).
    pub kind: u8,
    #[serde(default)]
    pub step: usize,
    #[serde(default)]
    pub edge: usize,
    #[serde(default)]
    pub device: usize,
    #[serde(default)]
    pub wave: u64,
    #[serde(default)]
    pub timer: bool,
    pub seq: u64,
}

impl From<&Event> for EventCheckpoint {
    fn from(ev: &Event) -> Self {
        let mut ck = EventCheckpoint {
            time_bits: ev.time.to_bits(),
            kind: ev.kind.rank(),
            step: 0,
            edge: 0,
            device: 0,
            wave: 0,
            timer: false,
            seq: ev.seq,
        };
        match ev.kind {
            EventKind::StepBoundary { step } | EventKind::EndOfStep { step } => ck.step = step,
            EventKind::DeviceUpload { edge, device, wave } => {
                ck.edge = edge;
                ck.device = device;
                ck.wave = wave;
            }
            EventKind::EdgeAggregate { edge, wave } => {
                ck.edge = edge;
                ck.wave = wave;
            }
            EventKind::CloudSync { timer } => ck.timer = timer,
        }
        ck
    }
}

impl EventCheckpoint {
    fn to_event(&self, num_edges: usize, num_devices: usize) -> Result<Event, String> {
        let kind = match self.kind {
            0 => EventKind::StepBoundary { step: self.step },
            1 => {
                if self.edge >= num_edges || self.device >= num_devices {
                    return Err(format!(
                        "timeline checkpoint upload event (edge {}, device {}) out of range",
                        self.edge, self.device
                    ));
                }
                EventKind::DeviceUpload {
                    edge: self.edge,
                    device: self.device,
                    wave: self.wave,
                }
            }
            2 => {
                if self.edge >= num_edges {
                    return Err(format!(
                        "timeline checkpoint aggregate event edge {} out of range",
                        self.edge
                    ));
                }
                EventKind::EdgeAggregate {
                    edge: self.edge,
                    wave: self.wave,
                }
            }
            3 => EventKind::CloudSync { timer: self.timer },
            4 => EventKind::EndOfStep { step: self.step },
            k => return Err(format!("timeline checkpoint has unknown event kind {k}")),
        };
        Ok(Event {
            time: f64::from_bits(self.time_bits),
            kind,
            seq: self.seq,
        })
    }
}

/// Serialized wave state.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct WaveCheckpoint {
    pub id: u64,
    pub members: Vec<usize>,
    pub arrived: Vec<bool>,
    pub trigger: usize,
    pub aggregated: bool,
    pub snapshots: Vec<Option<Vec<f32>>>,
}

/// Full timeline state riding `SimCheckpoint` for event-driven runs.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct TimelineCheckpoint {
    pub events: Vec<EventCheckpoint>,
    pub next_seq: u64,
    pub clock_bits: u64,
    pub waves: Vec<WaveCheckpoint>,
    /// Send-time snapshots of in-flight uploads, indexed by device.
    pub in_flight: Vec<Option<Vec<f32>>>,
    pub aggs_since_sync: usize,
    pub started: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(time: f64, kind: EventKind, seq: u64) -> Event {
        Event { time, kind, seq }
    }

    #[test]
    fn event_order_is_time_then_rank_then_edge_then_device_then_seq() {
        let a = ev(1.0, EventKind::StepBoundary { step: 1 }, 9);
        let b = ev(
            1.0,
            EventKind::DeviceUpload {
                edge: 0,
                device: 0,
                wave: 1,
            },
            1,
        );
        let c = ev(
            1.0,
            EventKind::DeviceUpload {
                edge: 0,
                device: 3,
                wave: 1,
            },
            0,
        );
        let d = ev(1.0, EventKind::EdgeAggregate { edge: 0, wave: 1 }, 2);
        let e = ev(1.0, EventKind::CloudSync { timer: false }, 3);
        let f = ev(1.0, EventKind::EndOfStep { step: 0 }, 4);
        let g = ev(0.5, EventKind::EndOfStep { step: 0 }, 99);
        assert!(g < a, "earlier time wins regardless of rank/seq");
        assert!(a < b, "boundary before uploads");
        assert!(b < c, "lower device first at equal edge");
        assert!(c < d, "uploads before aggregate");
        assert!(d < e, "aggregate before sync");
        assert!(e < f, "sync before end-of-step");
    }

    #[test]
    fn heap_drains_in_total_order_regardless_of_insertion_order() {
        // Build a reference order, then push a few shuffled copies and
        // assert the drain order is identical each time.
        let kinds = [
            EventKind::StepBoundary { step: 0 },
            EventKind::DeviceUpload {
                edge: 1,
                device: 4,
                wave: 1,
            },
            EventKind::DeviceUpload {
                edge: 0,
                device: 7,
                wave: 1,
            },
            EventKind::EdgeAggregate { edge: 0, wave: 1 },
            EventKind::CloudSync { timer: true },
            EventKind::EndOfStep { step: 0 },
            EventKind::StepBoundary { step: 1 },
        ];
        let times = [0.0, 0.25, 0.25, 0.25, 0.5, 1.0, 1.0];
        let events: Vec<Event> = kinds
            .iter()
            .zip(times.iter())
            .enumerate()
            .map(|(i, (&kind, &time))| ev(time, kind, i as u64))
            .collect();
        let mut expected = events.clone();
        expected.sort();

        // Deterministic permutation family: rotate the insertion order.
        for rot in 0..events.len() {
            let mut tl = Timeline::new(2, 8);
            for i in 0..events.len() {
                let e = &events[(i + rot) % events.len()];
                tl.heap.push(std::cmp::Reverse(e.clone()));
            }
            let mut drained = Vec::new();
            while let Some(e) = tl.pop() {
                drained.push(e);
            }
            assert_eq!(drained, expected, "rotation {rot} drained differently");
        }
    }

    #[test]
    fn clock_follows_pops() {
        let mut tl = Timeline::new(1, 1);
        tl.push(2.0, EventKind::EndOfStep { step: 1 });
        tl.push(1.0, EventKind::EndOfStep { step: 0 });
        assert_eq!(tl.clock(), 0.0);
        tl.pop();
        assert_eq!(tl.clock(), 1.0);
        tl.pop();
        assert_eq!(tl.clock(), 2.0);
    }

    #[test]
    fn wave_trigger_fires_once_and_late_arrivals_are_flagged() {
        let mut tl = Timeline::new(1, 8);
        assert!(tl.open_wave(0, vec![3, 1, 5], 2).is_none());
        let wave = tl.wave_id(0);
        assert_eq!(
            tl.record_arrival(0, 1, wave, None),
            ArrivalOutcome::Buffered
        );
        assert_eq!(tl.record_arrival(0, 3, wave, None), ArrivalOutcome::Ready);
        let (cohort, snaps) = tl.take_ready(0, wave).unwrap();
        // Selection order (3 before 1), not arrival order.
        assert_eq!(cohort, vec![3, 1]);
        assert_eq!(snaps.len(), 2);
        // Post-aggregation arrivals are late; double take is None.
        assert_eq!(tl.record_arrival(0, 5, wave, None), ArrivalOutcome::Late);
        assert!(tl.take_ready(0, wave).is_none());
        // Arrivals for a superseded wave id are late.
        tl.open_wave(0, vec![2], 1);
        assert_eq!(tl.record_arrival(0, 2, wave, None), ArrivalOutcome::Late);
    }

    #[test]
    fn open_wave_flushes_untriggered_remainder() {
        let mut tl = Timeline::new(1, 8);
        tl.open_wave(0, vec![0, 1, 2], 3);
        let wave = tl.wave_id(0);
        tl.record_arrival(0, 2, wave, Some(vec![1.0]));
        // Trigger (3) never reached; opening the next wave surfaces the
        // arrived remainder for flush-aggregation.
        let (cohort, snaps) = tl.open_wave(0, vec![4, 5], 2).unwrap();
        assert_eq!(cohort, vec![2]);
        assert_eq!(snaps, vec![Some(vec![1.0])]);
    }

    #[test]
    fn busy_tracking_is_idempotent() {
        let mut tl = Timeline::new(1, 4);
        assert!(!tl.busy_any());
        tl.mark_busy(2);
        tl.mark_busy(2);
        assert!(tl.busy_any());
        assert!(tl.is_busy(2));
        tl.clear_busy(2);
        assert!(!tl.busy_any());
        tl.clear_busy(2);
        assert!(!tl.busy_any());
    }

    #[test]
    fn checkpoint_roundtrip_is_bitwise() {
        let mut tl = Timeline::new(2, 6);
        tl.started = true;
        tl.push(0.0, EventKind::StepBoundary { step: 0 });
        tl.push(
            0.125,
            EventKind::DeviceUpload {
                edge: 1,
                device: 5,
                wave: 1,
            },
        );
        tl.push(7.5, EventKind::CloudSync { timer: true });
        tl.pop();
        tl.open_wave(1, vec![5, 2], 2);
        let wave = tl.wave_id(1);
        tl.record_arrival(1, 2, wave, Some(vec![0.5, -0.25]));
        tl.send_upload(5, vec![1.5, 2.5]);
        tl.aggs_since_sync = 3;

        let ck = tl.checkpoint();
        let json = serde_json::to_string(&ck).unwrap();
        let back: TimelineCheckpoint = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ck);

        let restored = Timeline::restore(&back, 2, 6).unwrap();
        assert_eq!(restored.clock().to_bits(), tl.clock().to_bits());
        assert_eq!(restored.next_seq, tl.next_seq);
        assert_eq!(restored.aggs_since_sync, 3);
        assert!(restored.started);
        assert!(restored.is_busy(5), "busy rebuilt from pending uploads");
        assert_eq!(restored.wave_id(1), wave);
        let mut restored = restored;
        assert_eq!(restored.take_in_flight(5), Some(vec![1.5, 2.5]));
        restored.send_upload(5, vec![1.5, 2.5]);
        // Drain both heaps; order and times must match bitwise.
        let mut a = tl;
        let mut b = restored;
        loop {
            match (a.pop(), b.pop()) {
                (None, None) => break,
                (Some(x), Some(y)) => {
                    assert_eq!(x.time.to_bits(), y.time.to_bits());
                    assert_eq!(x.kind, y.kind);
                    assert_eq!(x.seq, y.seq);
                }
                _ => panic!("heaps drained to different lengths"),
            }
        }
    }

    #[test]
    fn restore_rejects_out_of_range_and_unknown_kinds() {
        let mut tl = Timeline::new(1, 2);
        tl.push(
            0.5,
            EventKind::DeviceUpload {
                edge: 0,
                device: 1,
                wave: 1,
            },
        );
        let ck = tl.checkpoint();
        assert!(Timeline::restore(&ck, 1, 1).is_err(), "device out of range");
        let mut bad = ck.clone();
        bad.events[0].kind = 9;
        assert!(Timeline::restore(&bad, 1, 2).is_err(), "unknown kind");
        let mut wrong_edges = ck.clone();
        wrong_edges.waves.push(WaveCheckpoint {
            id: 0,
            members: vec![],
            arrived: vec![],
            trigger: 0,
            aggregated: true,
            snapshots: vec![],
        });
        assert!(
            Timeline::restore(&wrong_edges, 1, 2).is_err(),
            "wave count mismatch"
        );
    }

    #[test]
    fn timeline_config_default_roundtrip_and_validation() {
        let cfg = TimelineConfig::default();
        assert!(cfg.is_default());
        assert!(cfg.validate().is_ok());
        assert!(!cfg.event_mode());

        let corner = TimelineConfig::event_driven_zero_delay();
        assert!(!corner.is_default());
        assert!(corner.validate().is_ok());
        assert!(corner.event_mode());

        let bad = TimelineConfig {
            step_duration: 0.0,
            ..TimelineConfig::default()
        };
        assert!(bad.validate().is_err());

        let lockstep_timer = TimelineConfig {
            cloud_timer: Some(5.0),
            ..TimelineConfig::default()
        };
        assert!(
            lockstep_timer.validate().is_err(),
            "timer needs EventDriven"
        );

        let mut async_cfg = TimelineConfig::event_driven_zero_delay();
        async_cfg.latency = LatencyModel::Faults;
        async_cfg.edge_threshold = Some(2);
        async_cfg.cloud_timer = Some(4.0);
        assert!(async_cfg.validate().is_ok());
        async_cfg.edge_threshold = Some(0);
        assert!(async_cfg.validate().is_err());
    }
}
