//! The scenario sweep engine: sharded multi-scenario orchestration with
//! shared-input caching and checkpoint/resume.
//!
//! The paper's headline results (Figures 5–8, Remark 1) are *sweeps* —
//! accuracy versus mobility probability `P`, selection size `K`, sync
//! period `T_c` — and every point used to require a hand-rolled binary
//! and a full cold construction of datasets and traces. This module
//! turns the repo into a batch experiment service:
//!
//! * [`ScenarioGrid`] describes a cartesian product over `P`, `K`,
//!   `T_c`, seeds, named [`FaultPreset`]s, named
//!   [`CompressionPreset`]s and named [`AlgorithmConfig`]s (the
//!   algorithm zoo) on top of a base [`SimConfig`];
//!   [`ScenarioGrid::scenarios`] expands and validates it up front, so
//!   a bad axis fails before any work starts.
//! * [`run_sweep`] shards the scenarios across a deterministic
//!   work-stealing pool: workers claim scenarios from a shared atomic
//!   cursor, and every scenario's result is a pure function of its
//!   config — *independent of shard assignment and thread count* —
//!   because each run owns its models and RNG streams and immutable
//!   inputs are shared read-only through an [`InputCache`].
//! * With [`SweepOptions::checkpoint_dir`] set, workers periodically
//!   serialise full simulation state ([`crate::SimCheckpoint`]) and the
//!   sweep's completion ledger (`sweep_state.json`), so a killed sweep
//!   resumes from where it stopped and reproduces the uninterrupted
//!   sweep's [`SweepReport`] bitwise (excluding wall-clock fields;
//!   [`SweepReport::deterministic_json`] is the comparison form).
//!
//! Results aggregate into a versioned, serde-serialisable
//! [`SweepReport`]: one [`ScenarioRecord`] per scenario plus cross-seed
//! mean/std/95%-CI [`AggregatePoint`]s per grid cell. The
//! `crates/bench/src/bin/sweep.rs` bin emits it as `BENCH_sweep.json`
//! together with the measured caching + sharding speedup over serial
//! cold runs.
//!
//! # Multi-process fleets (`middle-sweepd`)
//!
//! The same ledger scales past one process: [`run_fleet_worker`] and
//! [`run_fleet_coordinator`] turn `sweep_state.json` into a shared
//! lease board. Workers claim scenario *shards* by writing a
//! [`ShardLease`] (worker id, grant time, heartbeat) under a sidecar
//! lockfile mutex, renew the heartbeat while they run, stream each
//! completed [`ScenarioRecord`] as one JSONL line to a per-worker
//! file, and mark it done in the ledger. Leases whose heartbeat goes
//! stale ([`FleetOptions::lease_ms`]) are reclaimed — a SIGKILL'd
//! worker's scenarios re-run from their last checkpoint on whichever
//! worker claims them next. The coordinator tails the worker streams,
//! merges them with the ledger both ways, and returns a final
//! [`SweepReport`] whose [`SweepReport::deterministic_json`] is
//! byte-identical to a single-process [`run_sweep`] of the same grid,
//! kills or no kills — every scenario result is a pure function of its
//! config, so *who* computed it can never show in the report. The
//! `middle-sweepd` binary wraps these entry points as `worker` /
//! `coordinator` subcommands; DESIGN.md §14 specifies the protocol.

use crate::algorithms::AlgorithmConfig;
use crate::builder::{InputCache, SimError, SimulationBuilder};
use crate::checkpoint::{fnv1a, seal_json, unseal_json, SimCheckpoint};
use crate::compress::CompressionConfig;
use crate::config::{MobilitySource, SimConfig};
use crate::faults::FaultConfig;
use crate::metrics::RunRecord;
use crate::sim::StepMode;
use crate::timeline::TimelineConfig;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};
use std::{fs, thread};

/// Version of the [`SweepReport`] / sweep-state JSON schema.
pub const SWEEP_REPORT_SCHEMA_VERSION: u32 = 1;

/// A named fault configuration for one grid axis entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPreset {
    /// Label used in scenario names and aggregates (e.g. `"clean"`,
    /// `"dropout30"`).
    pub name: String,
    /// The failure models the preset enables.
    pub faults: FaultConfig,
}

impl FaultPreset {
    /// The all-off preset every grid falls back to.
    pub fn clean() -> Self {
        FaultPreset {
            name: "clean".to_string(),
            faults: FaultConfig::default(),
        }
    }
}

/// A named compression configuration for one grid axis entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompressionPreset {
    /// Label used in scenario names and aggregates (e.g. `"dense"`,
    /// `"q8k25"`).
    pub name: String,
    /// The uplink compression settings the preset applies.
    pub compression: CompressionConfig,
}

impl CompressionPreset {
    /// The compression-off preset (dense uplinks).
    pub fn dense() -> Self {
        CompressionPreset {
            name: "dense".to_string(),
            compression: CompressionConfig::default(),
        }
    }
}

/// A cartesian scenario grid over a base configuration.
///
/// Empty axes inherit the base config's value, so the default grid is
/// the single base scenario; each `with_*` setter replaces one axis.
/// The mobility axis requires the base mobility to be `MarkovHop` or
/// `HomedMarkovHop` (the only sources with a `P` knob).
///
/// Grids serialise (the `middle-sweepd` fleet passes one grid-spec
/// JSON file to every worker and the coordinator; the grid digest
/// guards against two processes disagreeing about the job).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioGrid {
    base: SimConfig,
    mobility_ps: Vec<f64>,
    selection_sizes: Vec<usize>,
    sync_periods: Vec<usize>,
    seeds: Vec<u64>,
    fault_presets: Vec<FaultPreset>,
    compression_presets: Vec<CompressionPreset>,
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    algorithms: Vec<AlgorithmConfig>,
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    execution: Vec<TimelineConfig>,
}

impl ScenarioGrid {
    /// A grid holding just the base scenario.
    pub fn new(base: SimConfig) -> Self {
        ScenarioGrid {
            base,
            mobility_ps: Vec::new(),
            selection_sizes: Vec::new(),
            sync_periods: Vec::new(),
            seeds: Vec::new(),
            fault_presets: Vec::new(),
            compression_presets: Vec::new(),
            algorithms: Vec::new(),
            execution: Vec::new(),
        }
    }

    /// The base configuration the grid varies.
    pub fn base(&self) -> &SimConfig {
        &self.base
    }

    /// Sweeps the global mobility probability `P`.
    pub fn with_mobility_ps(mut self, ps: impl Into<Vec<f64>>) -> Self {
        self.mobility_ps = ps.into();
        self
    }

    /// Sweeps the per-edge selection size `K`.
    pub fn with_selection_sizes(mut self, ks: impl Into<Vec<usize>>) -> Self {
        self.selection_sizes = ks.into();
        self
    }

    /// Sweeps the cloud synchronisation period `T_c`.
    pub fn with_sync_periods(mut self, tcs: impl Into<Vec<usize>>) -> Self {
        self.sync_periods = tcs.into();
        self
    }

    /// Sweeps the master seed (the cross-seed axis the aggregates
    /// average over).
    pub fn with_seeds(mut self, seeds: impl Into<Vec<u64>>) -> Self {
        self.seeds = seeds.into();
        self
    }

    /// Sweeps named fault presets.
    pub fn with_fault_presets(mut self, presets: impl Into<Vec<FaultPreset>>) -> Self {
        self.fault_presets = presets.into();
        self
    }

    /// Sweeps named compression presets. An unset axis inherits the
    /// base config's compression settings and leaves scenario labels
    /// unchanged.
    pub fn with_compression_presets(mut self, presets: impl Into<Vec<CompressionPreset>>) -> Self {
        self.compression_presets = presets.into();
        self
    }

    /// Sweeps named algorithms (e.g. [`AlgorithmConfig::zoo`]). An
    /// unset axis inherits the base config's algorithm and leaves
    /// scenario labels unchanged; swept scenarios gain an
    /// `-a<algorithm>` label segment. Algorithms share cached inputs
    /// across the axis — the algorithm is deliberately not part of the
    /// input cache key.
    pub fn with_algorithms(mut self, algorithms: impl Into<Vec<AlgorithmConfig>>) -> Self {
        self.algorithms = algorithms.into();
        self
    }

    /// Sweeps execution-mode settings ([`TimelineConfig`] — lockstep vs
    /// event-driven, latency model, thresholds, timers). An unset axis
    /// inherits the base config's timeline and leaves scenario labels
    /// unchanged; swept scenarios gain an `-xevent` / `-xlock` label
    /// segment.
    pub fn with_execution_modes(mut self, modes: impl Into<Vec<TimelineConfig>>) -> Self {
        self.execution = modes.into();
        self
    }

    /// Expands the grid into its scenario list (fixed order: `P`
    /// outermost, then `K`, `T_c`, fault preset, compression preset,
    /// algorithm, seed innermost) and validates every derived
    /// configuration.
    ///
    /// # Errors
    /// [`SimError::InvalidConfig`] when the mobility axis is set on a
    /// base without a `P` knob, or when any derived config fails
    /// [`SimConfig::validate`].
    pub fn scenarios(&self) -> Result<Vec<Scenario>, SimError> {
        if !self.mobility_ps.is_empty()
            && !matches!(
                self.base.mobility,
                MobilitySource::MarkovHop { .. } | MobilitySource::HomedMarkovHop { .. }
            )
        {
            return Err(SimError::InvalidConfig {
                message: format!(
                    "mobility axis requires a MarkovHop/HomedMarkovHop base, got {:?}",
                    self.base.mobility
                ),
            });
        }
        let ps: Vec<Option<f64>> = if self.mobility_ps.is_empty() {
            vec![None]
        } else {
            self.mobility_ps.iter().copied().map(Some).collect()
        };
        let ks = if self.selection_sizes.is_empty() {
            vec![self.base.devices_per_edge]
        } else {
            self.selection_sizes.clone()
        };
        let tcs = if self.sync_periods.is_empty() {
            vec![self.base.cloud_interval]
        } else {
            self.sync_periods.clone()
        };
        let seeds = if self.seeds.is_empty() {
            vec![self.base.seed]
        } else {
            self.seeds.clone()
        };
        let presets = if self.fault_presets.is_empty() {
            vec![FaultPreset {
                name: "base".to_string(),
                faults: self.base.faults,
            }]
        } else {
            self.fault_presets.clone()
        };
        let comps: Vec<Option<&CompressionPreset>> = if self.compression_presets.is_empty() {
            vec![None]
        } else {
            self.compression_presets.iter().map(Some).collect()
        };
        let algos: Vec<Option<&AlgorithmConfig>> = if self.algorithms.is_empty() {
            vec![None]
        } else {
            self.algorithms.iter().map(Some).collect()
        };
        let execs: Vec<Option<&TimelineConfig>> = if self.execution.is_empty() {
            vec![None]
        } else {
            self.execution.iter().map(Some).collect()
        };
        let mut out = Vec::with_capacity(
            ps.len()
                * ks.len()
                * tcs.len()
                * presets.len()
                * comps.len()
                * algos.len()
                * execs.len()
                * seeds.len(),
        );
        for &p in &ps {
            for &k in &ks {
                for &tc in &tcs {
                    for preset in &presets {
                        for &comp in &comps {
                            for &algo in &algos {
                                for &exec in &execs {
                                    for &seed in &seeds {
                                        let mut config = self.base.clone();
                                        if let Some(p) = p {
                                            config.mobility = match config.mobility {
                                                MobilitySource::MarkovHop { .. } => {
                                                    MobilitySource::MarkovHop { p }
                                                }
                                                MobilitySource::HomedMarkovHop {
                                                    home_bias,
                                                    ..
                                                } => {
                                                    MobilitySource::HomedMarkovHop { p, home_bias }
                                                }
                                                other => other,
                                            };
                                        }
                                        config.devices_per_edge = k;
                                        config.cloud_interval = tc;
                                        config.seed = seed;
                                        config.faults = preset.faults;
                                        if let Some(comp) = comp {
                                            config.compression = comp.compression.clone();
                                        }
                                        if let Some(algo) = algo {
                                            config.algorithm = algo.clone();
                                        }
                                        if let Some(exec) = exec {
                                            config.timeline = *exec;
                                        }
                                        let c = comp
                                            .map(|c| format!("-c{}", c.name))
                                            .unwrap_or_default();
                                        let a = algo
                                            .map(|a| format!("-a{}", a.name.to_lowercase()))
                                            .unwrap_or_default();
                                        let execution =
                                            exec.map(|e| execution_label(e).to_string());
                                        let x = execution
                                            .as_ref()
                                            .map(|x| format!("-x{x}"))
                                            .unwrap_or_default();
                                        let label = match p {
                                            Some(p) => {
                                                format!(
                                                    "p{p}-k{k}-tc{tc}-{}{c}{a}{x}-s{seed}",
                                                    preset.name
                                                )
                                            }
                                            None => {
                                                format!(
                                                    "k{k}-tc{tc}-{}{c}{a}{x}-s{seed}",
                                                    preset.name
                                                )
                                            }
                                        };
                                        config.validate().map_err(|message| {
                                            SimError::InvalidConfig {
                                                message: format!("scenario {label}: {message}"),
                                            }
                                        })?;
                                        out.push(Scenario {
                                            index: out.len(),
                                            label,
                                            p,
                                            k,
                                            sync_period: tc,
                                            seed,
                                            preset: preset.name.clone(),
                                            compression: comp.map(|c| c.name.clone()),
                                            algorithm: algo.map(|a| a.name.clone()),
                                            execution,
                                            config,
                                        });
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    /// FNV-1a digest of the expanded scenario list (labels + configs).
    /// Stored in sweep state files so a resume is never applied to a
    /// different grid.
    ///
    /// # Errors
    /// Propagates [`ScenarioGrid::scenarios`] errors.
    pub fn digest(&self) -> Result<u64, SimError> {
        Ok(scenarios_digest(&self.scenarios()?))
    }
}

/// Label segment for a swept execution mode (`-x<label>`).
fn execution_label(t: &TimelineConfig) -> &'static str {
    match t.mode {
        crate::timeline::ExecutionMode::Lockstep => "lock",
        crate::timeline::ExecutionMode::EventDriven => "event",
    }
}

fn scenarios_digest(scenarios: &[Scenario]) -> u64 {
    let mut bytes = Vec::new();
    for s in scenarios {
        bytes.extend_from_slice(s.label.as_bytes());
        bytes.push(b'\n');
        bytes.extend_from_slice(
            serde_json::to_string(&s.config)
                .expect("config serialisation cannot fail")
                .as_bytes(),
        );
        bytes.push(b'\n');
    }
    fnv1a(&bytes)
}

/// One expanded grid point: the derived config plus the axis values
/// that produced it.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Position in the grid's fixed expansion order.
    pub index: usize,
    /// Human-readable scenario name (`p0.5-k3-tc4-clean-s7`).
    pub label: String,
    /// The mobility-axis value (`None` when the axis was not swept).
    pub p: Option<f64>,
    /// Selection size `K`.
    pub k: usize,
    /// Cloud sync period `T_c`.
    pub sync_period: usize,
    /// Master seed.
    pub seed: u64,
    /// Fault preset name.
    pub preset: String,
    /// Compression preset name (`None` when the axis was not swept).
    pub compression: Option<String>,
    /// Algorithm name (`None` when the axis was not swept).
    pub algorithm: Option<String>,
    /// Execution-mode label (`None` when the axis was not swept).
    pub execution: Option<String>,
    /// The fully derived, validated configuration.
    pub config: SimConfig,
}

/// How [`run_sweep`] executes.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Worker threads; `0` uses the host's available parallelism.
    pub threads: usize,
    /// Step implementation every scenario runs with.
    pub step_mode: StepMode,
    /// Directory for per-scenario checkpoints and the sweep completion
    /// ledger; `None` disables persistence (no resume).
    pub checkpoint_dir: Option<PathBuf>,
    /// Steps between mid-run checkpoints of each scenario (`0` = only
    /// the completion ledger, no mid-run snapshots). Ignored without a
    /// `checkpoint_dir`.
    pub checkpoint_every: usize,
    /// Cap on scenarios *completed this invocation* (earliest pending
    /// first — deterministic, used to simulate a killed sweep). `None`
    /// runs everything.
    pub limit: Option<usize>,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            threads: 0,
            step_mode: StepMode::Fast,
            checkpoint_dir: None,
            checkpoint_every: 0,
            limit: None,
        }
    }
}

/// One completed scenario: its axis values plus the full
/// [`RunRecord`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioRecord {
    /// Position in the grid's expansion order.
    pub index: usize,
    /// Scenario name.
    pub label: String,
    /// Mobility-axis value, when swept.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub p: Option<f64>,
    /// Selection size `K`.
    pub k: usize,
    /// Cloud sync period `T_c`.
    pub sync_period: usize,
    /// Master seed.
    pub seed: u64,
    /// Fault preset name.
    pub preset: String,
    /// Compression preset name, when swept.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub compression: Option<String>,
    /// Algorithm name, when swept.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub algorithm: Option<String>,
    /// Execution-mode label, when swept.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub execution: Option<String>,
    /// The run's measured output.
    pub record: RunRecord,
}

/// Cross-seed statistics for one grid cell (same `P`, `K`, `T_c` and
/// preset; averaged over the seed axis).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AggregatePoint {
    /// Cell label without the seed suffix.
    pub label: String,
    /// Mobility-axis value, when swept.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub p: Option<f64>,
    /// Selection size `K`.
    pub k: usize,
    /// Cloud sync period `T_c`.
    pub sync_period: usize,
    /// Fault preset name.
    pub preset: String,
    /// Compression preset name, when swept.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub compression: Option<String>,
    /// Algorithm name, when swept.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub algorithm: Option<String>,
    /// Execution-mode label, when swept.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub execution: Option<String>,
    /// Seeds aggregated.
    pub seeds: usize,
    /// Mean final accuracy across seeds.
    pub final_mean: f64,
    /// Sample standard deviation (n−1) of the final accuracy.
    pub final_std: f64,
    /// 95% confidence half-width (`1.96·std/√n`) of the final accuracy.
    pub final_ci95: f64,
    /// Mean tail(3) accuracy across seeds (Figure 7's smoothed bars).
    pub tail_mean: f64,
    /// Sample standard deviation of the tail accuracy.
    pub tail_std: f64,
    /// 95% confidence half-width of the tail accuracy.
    pub tail_ci95: f64,
}

/// One live shard lease in the sweep ledger: which worker currently
/// owns which contiguous block of scenarios, and when it last proved
/// it was alive.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardLease {
    /// Shard index; the shard covers scenarios
    /// `shard * shard_size .. (shard + 1) * shard_size` (clamped).
    pub shard: usize,
    /// Id of the worker holding the lease.
    pub worker: String,
    /// Unix milliseconds when the lease was granted.
    pub granted_unix_ms: u64,
    /// Unix milliseconds of the last heartbeat renewal. A lease whose
    /// heartbeat is older than [`FleetOptions::lease_ms`] is expired:
    /// any worker or the coordinator may reclaim it, and its scenarios
    /// re-run from their last checkpoint.
    pub heartbeat_unix_ms: u64,
}

fn default_shard_size() -> usize {
    1
}

/// The sweep's completion ledger, persisted as `sweep_state.json` in
/// the checkpoint directory after every scenario completion (atomic
/// tmp-then-rename writes, sealed with an FNV-1a integrity trailer —
/// see [`crate::checkpoint::seal_json`]). Fleet runs extend it with
/// the live [`ShardLease`] table; single-process sweeps leave `leases`
/// empty, and pre-fleet ledgers (no `leases` / `shard_size` fields,
/// no trailer) still parse.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct SweepState {
    schema_version: u32,
    grid_digest: u64,
    records: Vec<Option<ScenarioRecord>>,
    #[serde(default)]
    leases: Vec<ShardLease>,
    #[serde(default = "default_shard_size")]
    shard_size: usize,
}

impl SweepState {
    fn fresh(grid_digest: u64, scenarios: usize, shard_size: usize) -> Self {
        SweepState {
            schema_version: SWEEP_REPORT_SCHEMA_VERSION,
            grid_digest,
            records: vec![None; scenarios],
            leases: Vec::new(),
            shard_size,
        }
    }
}

/// The versioned output of [`run_sweep`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepReport {
    /// [`SWEEP_REPORT_SCHEMA_VERSION`] at emission time.
    pub schema_version: u32,
    /// Digest of the grid the report covers.
    pub grid_digest: u64,
    /// Whether every scenario in the grid has completed (a limited or
    /// interrupted sweep reports `false`).
    pub complete: bool,
    /// Completed scenarios in grid order.
    pub scenarios: Vec<ScenarioRecord>,
    /// Cross-seed statistics per grid cell, over the completed
    /// scenarios.
    pub aggregates: Vec<AggregatePoint>,
    /// Wall-clock seconds of this `run_sweep` invocation.
    pub wall_seconds: f64,
    /// Worker threads used.
    pub threads: usize,
    /// Input-cache hits observed this invocation.
    pub cache_hits: u64,
    /// Input-cache misses observed this invocation.
    pub cache_misses: u64,
}

impl SweepReport {
    /// Serialises the report with every wall-clock-dependent field
    /// zeroed (per-run `wall_seconds`, telemetry latency summaries, the
    /// sweep's own wall clock, thread count and cache counters), so two
    /// reports over the same grid compare bitwise regardless of
    /// scheduling, interruption or host speed.
    pub fn deterministic_json(&self) -> String {
        let mut clean = self.clone();
        clean.wall_seconds = 0.0;
        clean.threads = 0;
        clean.cache_hits = 0;
        clean.cache_misses = 0;
        for s in &mut clean.scenarios {
            s.record.wall_seconds = 0.0;
            s.record.telemetry = None;
        }
        serde_json::to_string(&clean).expect("report serialisation cannot fail")
    }

    /// Serialises the full report.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("report serialisation cannot fail")
    }
}

fn io_err(path: &Path, e: std::io::Error) -> SimError {
    SimError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    }
}

/// Writes `contents` to `path` atomically (tmp file + rename), so a
/// kill mid-write never leaves a truncated state file behind. The tmp
/// name embeds the pid: fleet processes sharing a directory must never
/// interleave writes into one tmp file.
fn write_atomic(path: &Path, contents: &str) -> Result<(), SimError> {
    let tmp = path.with_extension(format!("json.tmp.{}", std::process::id()));
    fs::write(&tmp, contents).map_err(|e| io_err(&tmp, e))?;
    fs::rename(&tmp, path).map_err(|e| io_err(path, e))?;
    Ok(())
}

/// Wall-clock milliseconds since the Unix epoch. Lease timestamps must
/// be comparable *across processes*, so they use the system clock; the
/// clock only gates liveness (expiry, heartbeats) — nothing
/// bitwise-relevant ever reads it.
fn unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
}

/// How long a ledger lockfile may sit untouched before another process
/// presumes its holder was killed inside the (milliseconds-long)
/// critical section and breaks the lock.
const LOCK_STALE_MS: u128 = 5_000;
/// Upper bound on waiting for the ledger lockfile before giving up
/// with an [`SimError::Io`].
const LOCK_WAIT_MS: u128 = 60_000;

/// The shared sweep ledger: `sweep_state.json` plus its sidecar
/// lockfile mutex (`sweep_state.lock`). The lockfile serialises
/// read-modify-write cycles *across processes* (creation with
/// `create_new` is atomic on every platform the repo targets); the
/// data file itself is only ever replaced whole via [`write_atomic`],
/// so readers never observe a torn ledger from our own writers, and
/// [`Ledger::read`] quarantines anything else.
struct Ledger {
    path: PathBuf,
    lock_path: PathBuf,
}

/// Holds the sidecar lockfile; dropping releases it.
struct LedgerGuard<'a>(&'a Ledger);

impl Drop for LedgerGuard<'_> {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.0.lock_path);
    }
}

impl Ledger {
    fn in_dir(dir: &Path) -> Ledger {
        Ledger {
            path: dir.join("sweep_state.json"),
            lock_path: dir.join("sweep_state.lock"),
        }
    }

    /// Acquires the cross-process ledger mutex, breaking locks whose
    /// holder died (lockfile older than [`LOCK_STALE_MS`]).
    fn lock(&self) -> Result<LedgerGuard<'_>, SimError> {
        let start = Instant::now();
        loop {
            match fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&self.lock_path)
            {
                Ok(mut f) => {
                    // Owner breadcrumb for post-mortems; never parsed.
                    let _ = writeln!(f, "{} {}", std::process::id(), unix_ms());
                    return Ok(LedgerGuard(self));
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    let stale = fs::metadata(&self.lock_path)
                        .and_then(|m| m.modified())
                        .ok()
                        .and_then(|m| m.elapsed().ok())
                        .is_some_and(|age| age.as_millis() > LOCK_STALE_MS);
                    if stale {
                        let _ = fs::remove_file(&self.lock_path);
                        continue;
                    }
                    if start.elapsed().as_millis() > LOCK_WAIT_MS {
                        return Err(SimError::Io {
                            path: self.lock_path.display().to_string(),
                            message: "timed out waiting for the ledger lock".to_string(),
                        });
                    }
                    thread::sleep(Duration::from_millis(2));
                }
                Err(e) => return Err(io_err(&self.lock_path, e)),
            }
        }
    }

    /// Reads the ledger. Corrupt content — a torn write simulated or
    /// real, a failed integrity trailer, unparseable JSON — is
    /// quarantined to `sweep_state.json.corrupt` and reported as
    /// absent, so a resume can never start from bogus state; the work
    /// re-runs (and per-scenario results being pure functions of their
    /// configs, re-running reproduces the same report).
    fn read(&self) -> Option<SweepState> {
        let text = fs::read_to_string(&self.path).ok()?;
        let state = unseal_json(&text)
            .ok()
            .and_then(|payload| serde_json::from_str::<SweepState>(payload).ok());
        if state.is_none() {
            let _ = fs::rename(&self.path, self.path.with_extension("json.corrupt"));
        }
        state
    }

    /// Atomically replaces the ledger with `state`, sealed.
    fn write(&self, state: &SweepState) -> Result<(), SimError> {
        let json = serde_json::to_string(state).expect("state serialisation cannot fail");
        write_atomic(&self.path, &seal_json(&json))
    }
}

fn mean_std_ci(values: &[f64]) -> (f64, f64, f64) {
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    if values.len() < 2 {
        return (mean, 0.0, 0.0);
    }
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1.0);
    let std = var.sqrt();
    (mean, std, 1.96 * std / n.sqrt())
}

/// Groups the completed scenarios by grid cell (everything but the
/// seed) in first-appearance order and computes cross-seed statistics.
fn aggregate(records: &[ScenarioRecord]) -> Vec<AggregatePoint> {
    let mut cells: Vec<(String, Vec<&ScenarioRecord>)> = Vec::new();
    for r in records {
        let c = r
            .compression
            .as_ref()
            .map(|c| format!("-c{c}"))
            .unwrap_or_default();
        let a = r
            .algorithm
            .as_ref()
            .map(|a| format!("-a{}", a.to_lowercase()))
            .unwrap_or_default();
        let x = r
            .execution
            .as_ref()
            .map(|x| format!("-x{x}"))
            .unwrap_or_default();
        let key = match r.p {
            Some(p) => format!("p{p}-k{}-tc{}-{}{c}{a}{x}", r.k, r.sync_period, r.preset),
            None => format!("k{}-tc{}-{}{c}{a}{x}", r.k, r.sync_period, r.preset),
        };
        match cells.iter_mut().find(|(k, _)| *k == key) {
            Some((_, members)) => members.push(r),
            None => cells.push((key, vec![r])),
        }
    }
    cells
        .into_iter()
        .map(|(label, members)| {
            let finals: Vec<f64> = members
                .iter()
                .map(|r| f64::from(r.record.final_accuracy()))
                .collect();
            let tails: Vec<f64> = members
                .iter()
                .map(|r| f64::from(r.record.tail_accuracy(3)))
                .collect();
            let (final_mean, final_std, final_ci95) = mean_std_ci(&finals);
            let (tail_mean, tail_std, tail_ci95) = mean_std_ci(&tails);
            let first = members[0];
            AggregatePoint {
                label,
                p: first.p,
                k: first.k,
                sync_period: first.sync_period,
                preset: first.preset.clone(),
                compression: first.compression.clone(),
                algorithm: first.algorithm.clone(),
                execution: first.execution.clone(),
                seeds: members.len(),
                final_mean,
                final_std,
                final_ci95,
                tail_mean,
                tail_std,
                tail_ci95,
            }
        })
        .collect()
}

/// Runs (or resumes) a scenario grid.
///
/// Workers claim pending scenarios from a shared cursor; immutable
/// inputs are shared through one [`InputCache`]; per-scenario results
/// are deterministic functions of their configs, independent of shard
/// assignment and thread count. With a checkpoint directory configured,
/// completed scenarios are recorded in `sweep_state.json` and long runs
/// snapshot mid-flight state every [`SweepOptions::checkpoint_every`]
/// steps, so a killed sweep resumes without redoing finished work and
/// reproduces the uninterrupted report bitwise
/// ([`SweepReport::deterministic_json`]).
///
/// # Errors
/// [`SimError::InvalidConfig`] from grid expansion, or the first
/// builder/checkpoint/[`SimError::Io`] error any worker hits (remaining
/// workers stop claiming new scenarios).
pub fn run_sweep(grid: &ScenarioGrid, opts: &SweepOptions) -> Result<SweepReport, SimError> {
    let start = Instant::now();
    let scenarios = grid.scenarios()?;
    let digest = scenarios_digest(&scenarios);

    let ledger = opts.checkpoint_dir.as_ref().map(|d| Ledger::in_dir(d));
    if let Some(dir) = &opts.checkpoint_dir {
        fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
    }
    let mut records: Vec<Option<ScenarioRecord>> = vec![None; scenarios.len()];
    if let Some(ledger) = &ledger {
        if let Some(state) = ledger.read() {
            if state.schema_version == SWEEP_REPORT_SCHEMA_VERSION
                && state.grid_digest == digest
                && state.records.len() == scenarios.len()
            {
                records = state.records;
            }
        }
    }

    let mut todo: Vec<usize> = (0..scenarios.len())
        .filter(|&i| records[i].is_none())
        .collect();
    if let Some(limit) = opts.limit {
        todo.truncate(limit);
    }

    let threads = if opts.threads == 0 {
        thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        opts.threads
    }
    .min(todo.len().max(1));

    let cache = InputCache::new();
    let cursor = AtomicUsize::new(0);
    let results = Mutex::new(records);
    let first_error: Mutex<Option<SimError>> = Mutex::new(None);
    let scenarios = Arc::new(scenarios);

    thread::scope(|scope| {
        for _ in 0..threads {
            let cache = Arc::clone(&cache);
            let scenarios = Arc::clone(&scenarios);
            let (cursor, todo, results, first_error) = (&cursor, &todo, &results, &first_error);
            let ledger = ledger.as_ref();
            scope.spawn(move || loop {
                let claim = cursor.fetch_add(1, Ordering::Relaxed);
                if claim >= todo.len() {
                    return;
                }
                if first_error.lock().expect("error slot poisoned").is_some() {
                    return;
                }
                let scenario = &scenarios[todo[claim]];
                match run_scenario(scenario, &cache, opts) {
                    Ok(record) => {
                        let mut recs = results.lock().expect("result slot poisoned");
                        recs[scenario.index] = Some(record);
                        if let Some(ledger) = ledger {
                            let state = SweepState {
                                schema_version: SWEEP_REPORT_SCHEMA_VERSION,
                                grid_digest: digest,
                                records: recs.clone(),
                                leases: Vec::new(),
                                shard_size: 1,
                            };
                            if let Err(e) = ledger.write(&state) {
                                let mut slot = first_error.lock().expect("error slot poisoned");
                                slot.get_or_insert(e);
                                return;
                            }
                        }
                    }
                    Err(e) => {
                        let mut slot = first_error.lock().expect("error slot poisoned");
                        slot.get_or_insert(e);
                        return;
                    }
                }
            });
        }
    });

    if let Some(e) = first_error.into_inner().expect("error slot poisoned") {
        return Err(e);
    }
    let records = results.into_inner().expect("result slot poisoned");
    let complete = records.iter().all(Option::is_some);
    let completed: Vec<ScenarioRecord> = records.into_iter().flatten().collect();
    let aggregates = aggregate(&completed);
    Ok(SweepReport {
        schema_version: SWEEP_REPORT_SCHEMA_VERSION,
        grid_digest: digest,
        complete,
        scenarios: completed,
        aggregates,
        wall_seconds: start.elapsed().as_secs_f64(),
        threads,
        cache_hits: cache.hits(),
        cache_misses: cache.misses(),
    })
}

/// Runs one scenario to completion: builds through the shared cache,
/// resumes from an existing mid-run checkpoint when one matches, ticks
/// with periodic snapshots, and removes the snapshot on completion.
fn run_scenario(
    scenario: &Scenario,
    cache: &Arc<InputCache>,
    opts: &SweepOptions,
) -> Result<ScenarioRecord, SimError> {
    let mut sim = SimulationBuilder::new(scenario.config.clone())
        .with_shared_inputs(Arc::clone(cache))
        .build()
        .map_err(|e| match e {
            SimError::InvalidConfig { message } => SimError::InvalidConfig {
                message: format!("scenario {}: {message}", scenario.label),
            },
            other => other,
        })?;
    let ckpt_path = opts
        .checkpoint_dir
        .as_ref()
        .map(|d| d.join(format!("scenario_{}.ckpt.json", scenario.index)));
    if let Some(path) = &ckpt_path {
        if let Ok(text) = fs::read_to_string(path) {
            if let Ok(ck) = SimCheckpoint::from_json(&text) {
                // A mismatching snapshot (different grid reusing the
                // directory) is ignored: the scenario restarts cold.
                let _ = sim.restore(&ck);
            }
        }
    }
    while !sim.is_finished() {
        sim.tick(opts.step_mode);
        if let Some(path) = &ckpt_path {
            if opts.checkpoint_every > 0
                && sim.next_step() % opts.checkpoint_every == 0
                && !sim.is_finished()
            {
                write_atomic(path, &sim.checkpoint().to_json())?;
            }
        }
    }
    let record = sim.finish();
    if let Some(path) = &ckpt_path {
        let _ = fs::remove_file(path);
    }
    Ok(ScenarioRecord {
        index: scenario.index,
        label: scenario.label.clone(),
        p: scenario.p,
        k: scenario.k,
        sync_period: scenario.sync_period,
        seed: scenario.seed,
        preset: scenario.preset.clone(),
        compression: scenario.compression.clone(),
        algorithm: scenario.algorithm.clone(),
        execution: scenario.execution.clone(),
        record,
    })
}

// --------------------------------------------------------------------
// Multi-process fleet: lease-based sharding over the shared ledger
// --------------------------------------------------------------------

/// How fleet workers and the coordinator behave. All time knobs are
/// liveness-only — they can change results' *latency*, never their
/// *bytes* (the bitwise-merge contract in DESIGN.md §14).
#[derive(Debug, Clone)]
pub struct FleetOptions {
    /// Step implementation every scenario runs with.
    pub step_mode: StepMode,
    /// Scenarios per lease shard (≥ 1). Bigger shards amortise ledger
    /// round-trips; smaller shards re-run less work after a kill.
    pub shard_size: usize,
    /// Lease expiry in milliseconds: a lease whose heartbeat is older
    /// than this is presumed dead and reclaimable by anyone.
    pub lease_ms: u64,
    /// Heartbeat renewal cadence while a worker runs a shard. Must be
    /// comfortably below `lease_ms` or live workers lose their leases.
    pub heartbeat_ms: u64,
    /// Idle poll cadence: a worker waiting for claimable work, and the
    /// coordinator waiting for completions, re-check this often.
    pub poll_ms: u64,
    /// Steps between mid-scenario checkpoints (`0` = resume only at
    /// scenario boundaries).
    pub checkpoint_every: usize,
    /// Give-up horizon in milliseconds; `None` waits for grid
    /// completion indefinitely. A worker that hits it returns what it
    /// finished; the coordinator errors (the grid is incomplete).
    pub max_wall_ms: Option<u64>,
    /// Deterministic kill switch for tests: abandon the worker loop
    /// abruptly — leases unreleased, checkpoint files left behind,
    /// exactly the on-disk state a SIGKILL produces — after writing
    /// this many mid-scenario checkpoints. The companion of
    /// [`SweepOptions::limit`] for simulating killed fleets.
    pub kill_after_checkpoints: Option<usize>,
}

impl Default for FleetOptions {
    fn default() -> Self {
        FleetOptions {
            step_mode: StepMode::Fast,
            shard_size: 1,
            lease_ms: 5_000,
            heartbeat_ms: 1_000,
            poll_ms: 25,
            checkpoint_every: 0,
            max_wall_ms: None,
            kill_after_checkpoints: None,
        }
    }
}

/// What one [`run_fleet_worker`] invocation accomplished.
#[derive(Debug, Clone)]
pub struct FleetWorkerReport {
    /// The worker's id (as recorded in its leases and JSONL stream).
    pub worker_id: String,
    /// Scenarios this worker completed and recorded.
    pub completed: usize,
    /// Whether the deterministic kill switch fired (leases were left
    /// unreleased; only tests set the switch).
    pub killed: bool,
}

/// A point-in-time view of a fleet's shared ledger (for progress
/// display and tests).
#[derive(Debug, Clone)]
pub struct FleetStatus {
    /// Scenarios in the grid.
    pub total: usize,
    /// Scenarios completed and recorded in the ledger.
    pub completed: usize,
    /// Scenarios per lease shard.
    pub shard_size: usize,
    /// Live lease table as persisted (expired leases included — expiry
    /// is judged against [`FleetOptions::lease_ms`] at claim time).
    pub leases: Vec<ShardLease>,
}

/// Reads the fleet ledger in `dir`, returning `None` when no sweep has
/// started there (or the ledger was quarantined as corrupt).
///
/// # Errors
/// [`SimError::Io`] when the ledger lock cannot be acquired.
pub fn fleet_status(dir: &Path) -> Result<Option<FleetStatus>, SimError> {
    let ledger = Ledger::in_dir(dir);
    let _guard = ledger.lock()?;
    Ok(ledger.read().map(|state| FleetStatus {
        total: state.records.len(),
        completed: state.records.iter().filter(|r| r.is_some()).count(),
        shard_size: state.shard_size,
        leases: state.leases,
    }))
}

/// Rejects a ledger that belongs to a different job than the caller's
/// grid + options — resuming across grids or disagreeing shard sizes
/// would corrupt the sweep silently.
fn check_state(
    state: &SweepState,
    digest: u64,
    n: usize,
    shard_size: usize,
) -> Result<(), SimError> {
    if state.schema_version != SWEEP_REPORT_SCHEMA_VERSION
        || state.grid_digest != digest
        || state.records.len() != n
    {
        return Err(SimError::InvalidConfig {
            message: format!(
                "sweep ledger belongs to a different grid \
                 (digest {:016x}/{} scenarios vs {:016x}/{n})",
                state.grid_digest,
                state.records.len(),
                digest
            ),
        });
    }
    if state.shard_size != shard_size {
        return Err(SimError::InvalidConfig {
            message: format!(
                "sweep ledger shard size {} disagrees with requested {shard_size}; \
                 every fleet member must use identical FleetOptions::shard_size",
                state.shard_size
            ),
        });
    }
    Ok(())
}

/// Outcome of one claim attempt against the lease board.
enum Claim {
    /// A shard was leased: its index and its still-pending scenarios.
    Shard { shard: usize, pending: Vec<usize> },
    /// Pending work exists but every pending shard is under a live
    /// lease held by someone else (duplicate claims are rejected).
    Busy,
    /// Every scenario in the grid is recorded complete.
    Done,
}

/// One locked read-reclaim-claim-write cycle: expired leases are
/// dropped, then the first shard with pending scenarios and no live
/// lease is leased to `worker_id`.
fn claim_shard(
    ledger: &Ledger,
    digest: u64,
    n: usize,
    worker_id: &str,
    opts: &FleetOptions,
) -> Result<Claim, SimError> {
    let _guard = ledger.lock()?;
    let mut state = match ledger.read() {
        Some(state) => {
            check_state(&state, digest, n, opts.shard_size)?;
            state
        }
        None => SweepState::fresh(digest, n, opts.shard_size),
    };
    let now = unix_ms();
    state
        .leases
        .retain(|l| now.saturating_sub(l.heartbeat_unix_ms) < opts.lease_ms);
    let shards = n.div_ceil(opts.shard_size);
    let mut outcome = Claim::Done;
    for shard in 0..shards {
        let lo = shard * opts.shard_size;
        let hi = (lo + opts.shard_size).min(n);
        let pending: Vec<usize> = (lo..hi).filter(|&i| state.records[i].is_none()).collect();
        if pending.is_empty() {
            continue;
        }
        if state.leases.iter().any(|l| l.shard == shard) {
            outcome = Claim::Busy;
            continue;
        }
        state.leases.push(ShardLease {
            shard,
            worker: worker_id.to_string(),
            granted_unix_ms: now,
            heartbeat_unix_ms: now,
        });
        ledger.write(&state)?;
        return Ok(Claim::Shard { shard, pending });
    }
    // Nothing claimable; still persist the reclamation sweep so a dead
    // worker's leases disappear even when everyone else is idle.
    ledger.write(&state)?;
    Ok(outcome)
}

/// Renews `worker_id`'s heartbeat on `shard`. Returns `false` when the
/// lease is no longer held (it expired and was reclaimed, or the
/// ledger was reset) — the caller must abandon the shard immediately
/// rather than double-run scenarios another worker now owns.
fn renew_lease(ledger: &Ledger, worker_id: &str, shard: usize) -> Result<bool, SimError> {
    let _guard = ledger.lock()?;
    let Some(mut state) = ledger.read() else {
        return Ok(false);
    };
    match state.leases.iter_mut().find(|l| l.shard == shard) {
        Some(lease) if lease.worker == worker_id => {
            lease.heartbeat_unix_ms = unix_ms();
            ledger.write(&state)?;
            Ok(true)
        }
        _ => Ok(false),
    }
}

/// Records a completed scenario in the ledger (first writer wins —
/// duplicate completions after a lease reclaim carry bitwise-identical
/// results, so keeping the first is sound) and renews the worker's
/// heartbeat in the same locked cycle.
fn record_completion(
    ledger: &Ledger,
    digest: u64,
    n: usize,
    worker_id: &str,
    shard: usize,
    record: ScenarioRecord,
    opts: &FleetOptions,
) -> Result<(), SimError> {
    let _guard = ledger.lock()?;
    let mut state = match ledger.read() {
        Some(state) => {
            check_state(&state, digest, n, opts.shard_size)?;
            state
        }
        None => SweepState::fresh(digest, n, opts.shard_size),
    };
    let index = record.index;
    if state.records[index].is_none() {
        state.records[index] = Some(record);
    }
    if let Some(lease) = state
        .leases
        .iter_mut()
        .find(|l| l.shard == shard && l.worker == worker_id)
    {
        lease.heartbeat_unix_ms = unix_ms();
    }
    ledger.write(&state)
}

/// Drops `worker_id`'s lease on `shard` after the shard's scenarios
/// are all recorded.
fn release_shard(ledger: &Ledger, worker_id: &str, shard: usize) -> Result<(), SimError> {
    let _guard = ledger.lock()?;
    if let Some(mut state) = ledger.read() {
        state
            .leases
            .retain(|l| !(l.shard == shard && l.worker == worker_id));
        ledger.write(&state)?;
    }
    Ok(())
}

/// A worker id reduced to filesystem-safe characters for its JSONL
/// stream filename.
fn safe_id(worker_id: &str) -> String {
    worker_id
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect()
}

/// Appends one completed scenario to the worker's JSONL stream (the
/// coordinator tails these files and merges them into the incremental
/// report).
fn append_jsonl(path: &Path, record: &ScenarioRecord) -> Result<(), SimError> {
    let json = serde_json::to_string(record).expect("record serialisation cannot fail");
    let mut file = fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| io_err(path, e))?;
    writeln!(file, "{json}").map_err(|e| io_err(path, e))
}

/// Everything a fleet worker threads through its scenario runs.
struct WorkerCtx<'a> {
    ledger: Ledger,
    dir: &'a Path,
    digest: u64,
    n: usize,
    worker_id: &'a str,
    opts: &'a FleetOptions,
    cache: Arc<InputCache>,
    jsonl: PathBuf,
    checkpoints_written: usize,
}

/// How one leased scenario ended.
enum ScenarioOutcome {
    /// Completed, streamed and recorded.
    Done,
    /// The lease was lost mid-run (reclaimed after expiry); the shard
    /// belongs to someone else now.
    Abandoned,
    /// The deterministic kill switch fired.
    Killed,
}

/// Runs one scenario under a lease: resumes from its checkpoint if one
/// exists, snapshots every `checkpoint_every` steps, renews the
/// heartbeat every `heartbeat_ms`, and on completion streams the
/// record (JSONL first, then the ledger — a kill between the two only
/// costs a duplicate line the coordinator deduplicates).
fn run_leased_scenario(
    ctx: &mut WorkerCtx<'_>,
    scenario: &Scenario,
    shard: usize,
) -> Result<ScenarioOutcome, SimError> {
    let mut sim = SimulationBuilder::new(scenario.config.clone())
        .with_shared_inputs(Arc::clone(&ctx.cache))
        .build()
        .map_err(|e| match e {
            SimError::InvalidConfig { message } => SimError::InvalidConfig {
                message: format!("scenario {}: {message}", scenario.label),
            },
            other => other,
        })?;
    let ckpt_path = ctx
        .dir
        .join(format!("scenario_{}.ckpt.json", scenario.index));
    if let Ok(text) = fs::read_to_string(&ckpt_path) {
        if let Ok(ck) = SimCheckpoint::from_json(&text) {
            // A mismatching snapshot (different grid reusing the
            // directory) is ignored: the scenario restarts cold.
            let _ = sim.restore(&ck);
        }
    }
    let mut last_beat = Instant::now();
    while !sim.is_finished() {
        sim.tick(ctx.opts.step_mode);
        if ctx.opts.checkpoint_every > 0
            && sim.next_step() % ctx.opts.checkpoint_every == 0
            && !sim.is_finished()
        {
            write_atomic(&ckpt_path, &sim.checkpoint().to_json())?;
            ctx.checkpoints_written += 1;
            if ctx
                .opts
                .kill_after_checkpoints
                .is_some_and(|k| ctx.checkpoints_written >= k)
            {
                return Ok(ScenarioOutcome::Killed);
            }
        }
        if u64::try_from(last_beat.elapsed().as_millis()).unwrap_or(u64::MAX)
            >= ctx.opts.heartbeat_ms
        {
            if !renew_lease(&ctx.ledger, ctx.worker_id, shard)? {
                return Ok(ScenarioOutcome::Abandoned);
            }
            last_beat = Instant::now();
        }
    }
    let record = ScenarioRecord {
        index: scenario.index,
        label: scenario.label.clone(),
        p: scenario.p,
        k: scenario.k,
        sync_period: scenario.sync_period,
        seed: scenario.seed,
        preset: scenario.preset.clone(),
        compression: scenario.compression.clone(),
        algorithm: scenario.algorithm.clone(),
        execution: scenario.execution.clone(),
        record: sim.finish(),
    };
    append_jsonl(&ctx.jsonl, &record)?;
    record_completion(
        &ctx.ledger,
        ctx.digest,
        ctx.n,
        ctx.worker_id,
        shard,
        record,
        ctx.opts,
    )?;
    let _ = fs::remove_file(&ckpt_path);
    Ok(ScenarioOutcome::Done)
}

/// Runs a fleet worker process (or thread) to grid completion.
///
/// The worker loops: claim a shard lease from the shared ledger
/// (`claim_shard` rejects duplicate claims on live leases and
/// reclaims expired ones), run the shard's pending scenarios with
/// heartbeat renewal and periodic checkpoints, stream each completed
/// [`ScenarioRecord`] to `worker_<id>.jsonl`, record it in the ledger,
/// release the lease, repeat. When every pending shard is leased by
/// someone else it polls until work frees up (a lease expiring counts)
/// or the grid completes; [`FleetOptions::max_wall_ms`] bounds the
/// wait.
///
/// # Errors
/// Grid expansion errors, ledger/grid mismatches
/// ([`SimError::InvalidConfig`]), or the first I/O or builder error.
pub fn run_fleet_worker(
    grid: &ScenarioGrid,
    dir: &Path,
    worker_id: &str,
    opts: &FleetOptions,
) -> Result<FleetWorkerReport, SimError> {
    if opts.shard_size == 0 {
        return Err(SimError::InvalidConfig {
            message: "FleetOptions::shard_size must be at least 1".to_string(),
        });
    }
    let scenarios = grid.scenarios()?;
    let digest = scenarios_digest(&scenarios);
    fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
    let mut ctx = WorkerCtx {
        ledger: Ledger::in_dir(dir),
        dir,
        digest,
        n: scenarios.len(),
        worker_id,
        opts,
        cache: InputCache::new(),
        jsonl: dir.join(format!("worker_{}.jsonl", safe_id(worker_id))),
        checkpoints_written: 0,
    };
    let started = Instant::now();
    let mut completed = 0usize;
    loop {
        let out_of_time = opts.max_wall_ms.is_some_and(|ms| {
            u64::try_from(started.elapsed().as_millis()).unwrap_or(u64::MAX) >= ms
        });
        if out_of_time {
            break;
        }
        match claim_shard(&ctx.ledger, digest, scenarios.len(), worker_id, opts)? {
            Claim::Done => break,
            Claim::Busy => thread::sleep(Duration::from_millis(opts.poll_ms)),
            Claim::Shard { shard, pending } => {
                let mut lost = false;
                for index in pending {
                    match run_leased_scenario(&mut ctx, &scenarios[index], shard)? {
                        ScenarioOutcome::Done => completed += 1,
                        ScenarioOutcome::Abandoned => {
                            lost = true;
                            break;
                        }
                        ScenarioOutcome::Killed => {
                            return Ok(FleetWorkerReport {
                                worker_id: worker_id.to_string(),
                                completed,
                                killed: true,
                            });
                        }
                    }
                }
                if !lost {
                    release_shard(&ctx.ledger, worker_id, shard)?;
                }
            }
        }
    }
    Ok(FleetWorkerReport {
        worker_id: worker_id.to_string(),
        completed,
        killed: false,
    })
}

/// Tails every `worker_*.jsonl` stream in `dir`, merging newly
/// completed lines into `records` (first record per scenario wins;
/// duplicates from reclaimed leases are bitwise-identical modulo wall
/// clock). Only whole lines are consumed — a partial last line from a
/// killed worker stays unread until the scenario re-runs elsewhere.
fn tail_worker_streams(
    dir: &Path,
    offsets: &mut HashMap<PathBuf, usize>,
    records: &mut [Option<ScenarioRecord>],
    workers_seen: &mut Vec<String>,
) -> Result<(), SimError> {
    let entries = fs::read_dir(dir).map_err(|e| io_err(dir, e))?;
    let mut paths: Vec<PathBuf> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("worker_") && n.ends_with(".jsonl"))
        })
        .collect();
    paths.sort();
    for path in paths {
        if let Some(name) = path.file_name().and_then(|n| n.to_str()) {
            if !workers_seen.iter().any(|w| w == name) {
                workers_seen.push(name.to_string());
            }
        }
        let Ok(text) = fs::read_to_string(&path) else {
            continue;
        };
        let start = offsets.get(&path).copied().unwrap_or(0);
        if text.len() <= start {
            continue;
        }
        let chunk = &text[start..];
        let Some(end) = chunk.rfind('\n').map(|e| e + 1) else {
            continue;
        };
        for line in chunk[..end].lines() {
            if line.trim().is_empty() {
                continue;
            }
            let Ok(record) = serde_json::from_str::<ScenarioRecord>(line) else {
                continue;
            };
            let index = record.index;
            if index < records.len() && records[index].is_none() {
                records[index] = Some(record);
            }
        }
        offsets.insert(path, start + end);
    }
    Ok(())
}

/// Runs the fleet coordinator: owns the grid, tails the workers'
/// JSONL streams, merges them with the shared ledger in both
/// directions (a worker killed between its JSONL append and its ledger
/// update is healed here), reclaims expired leases, and returns the
/// final [`SweepReport`] once every scenario is recorded.
///
/// The report's [`SweepReport::deterministic_json`] is byte-identical
/// to a single-process [`run_sweep`] over the same grid — including
/// fleets where workers were SIGKILL'd and replaced mid-sweep — because
/// every scenario result is a pure function of its config and the
/// merge only ever places a scenario's record at its grid index.
///
/// # Errors
/// Grid expansion errors, a ledger belonging to a different grid, I/O
/// errors, or [`SimError::Io`] with a timeout message when
/// [`FleetOptions::max_wall_ms`] elapses before completion.
pub fn run_fleet_coordinator(
    grid: &ScenarioGrid,
    dir: &Path,
    opts: &FleetOptions,
) -> Result<SweepReport, SimError> {
    if opts.shard_size == 0 {
        return Err(SimError::InvalidConfig {
            message: "FleetOptions::shard_size must be at least 1".to_string(),
        });
    }
    let start = Instant::now();
    let scenarios = grid.scenarios()?;
    let digest = scenarios_digest(&scenarios);
    let n = scenarios.len();
    fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
    let ledger = Ledger::in_dir(dir);
    let mut records: Vec<Option<ScenarioRecord>> = vec![None; n];
    let mut offsets: HashMap<PathBuf, usize> = HashMap::new();
    let mut workers_seen: Vec<String> = Vec::new();
    loop {
        tail_worker_streams(dir, &mut offsets, &mut records, &mut workers_seen)?;
        let all_done = {
            let _guard = ledger.lock()?;
            let mut state = match ledger.read() {
                Some(state) => {
                    check_state(&state, digest, n, opts.shard_size)?;
                    state
                }
                None => SweepState::fresh(digest, n, opts.shard_size),
            };
            for (ours, theirs) in records.iter_mut().zip(state.records.iter_mut()) {
                match (&ours, &theirs) {
                    (None, Some(r)) => *ours = Some(r.clone()),
                    (Some(r), None) => *theirs = Some(r.clone()),
                    _ => {}
                }
            }
            let now = unix_ms();
            state
                .leases
                .retain(|l| now.saturating_sub(l.heartbeat_unix_ms) < opts.lease_ms);
            ledger.write(&state)?;
            records.iter().all(Option::is_some)
        };
        if all_done {
            break;
        }
        let out_of_time = opts
            .max_wall_ms
            .is_some_and(|ms| u64::try_from(start.elapsed().as_millis()).unwrap_or(u64::MAX) >= ms);
        if out_of_time {
            return Err(SimError::Io {
                path: dir.display().to_string(),
                message: format!(
                    "fleet coordinator timed out with {}/{n} scenarios complete",
                    records.iter().filter(|r| r.is_some()).count()
                ),
            });
        }
        thread::sleep(Duration::from_millis(opts.poll_ms));
    }
    let completed: Vec<ScenarioRecord> = records.into_iter().flatten().collect();
    let aggregates = aggregate(&completed);
    Ok(SweepReport {
        schema_version: SWEEP_REPORT_SCHEMA_VERSION,
        grid_digest: digest,
        complete: true,
        scenarios: completed,
        aggregates,
        wall_seconds: start.elapsed().as_secs_f64(),
        threads: workers_seen.len(),
        cache_hits: 0,
        cache_misses: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::Algorithm;
    use crate::comm::CommStats;
    use crate::metrics::RUN_RECORD_SCHEMA_VERSION;
    use middle_data::Task;

    fn tiny() -> SimConfig {
        SimConfig::tiny(Task::Mnist, Algorithm::middle())
    }

    #[test]
    fn empty_axes_expand_to_the_base_scenario() {
        let grid = ScenarioGrid::new(tiny());
        let scenarios = grid.scenarios().unwrap();
        assert_eq!(scenarios.len(), 1);
        let s = &scenarios[0];
        assert_eq!(s.k, 2);
        assert_eq!(s.sync_period, 4);
        assert_eq!(s.seed, 7);
        assert_eq!(s.preset, "base");
        assert_eq!(s.p, None);
        assert_eq!(s.label, "k2-tc4-base-s7");
    }

    #[test]
    fn cartesian_expansion_covers_every_combination() {
        let grid = ScenarioGrid::new(tiny())
            .with_mobility_ps([0.1, 0.9])
            .with_selection_sizes([2usize, 3])
            .with_sync_periods([2usize, 4])
            .with_seeds([7u64, 8, 9]);
        let scenarios = grid.scenarios().unwrap();
        assert_eq!(scenarios.len(), 2 * 2 * 2 * 3);
        // Labels are unique and indices match positions.
        for (i, s) in scenarios.iter().enumerate() {
            assert_eq!(s.index, i);
        }
        let mut labels: Vec<&str> = scenarios.iter().map(|s| s.label.as_str()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), scenarios.len());
        // Seed is the innermost axis.
        assert_eq!(scenarios[0].seed, 7);
        assert_eq!(scenarios[1].seed, 8);
        assert_eq!(scenarios[2].seed, 9);
        assert_eq!(scenarios[0].p, Some(0.1));
    }

    #[test]
    fn compression_axis_expands_and_labels_scenarios() {
        let lossy = CompressionConfig {
            enabled: true,
            quantize_bits: 8,
            top_frac: 0.25,
            ..CompressionConfig::default()
        };
        let grid = ScenarioGrid::new(tiny()).with_compression_presets([
            CompressionPreset::dense(),
            CompressionPreset {
                name: "q8k25".to_string(),
                compression: lossy.clone(),
            },
        ]);
        let scenarios = grid.scenarios().unwrap();
        assert_eq!(scenarios.len(), 2);
        assert_eq!(scenarios[0].label, "k2-tc4-base-cdense-s7");
        assert_eq!(scenarios[0].compression.as_deref(), Some("dense"));
        assert!(!scenarios[0].config.compression.lossy_active());
        assert_eq!(scenarios[1].label, "k2-tc4-base-cq8k25-s7");
        assert_eq!(scenarios[1].config.compression, lossy);
        // An unset axis leaves labels untouched (pinned elsewhere too).
        let plain = ScenarioGrid::new(tiny()).scenarios().unwrap();
        assert_eq!(plain[0].label, "k2-tc4-base-s7");
        assert_eq!(plain[0].compression, None);
    }

    #[test]
    fn algorithm_axis_expands_and_labels_scenarios() {
        let grid = ScenarioGrid::new(tiny())
            .with_algorithms([Algorithm::middle(), Algorithm::fedfly()])
            .with_seeds([7u64, 8]);
        let scenarios = grid.scenarios().unwrap();
        assert_eq!(scenarios.len(), 4);
        assert_eq!(scenarios[0].label, "k2-tc4-base-amiddle-s7");
        assert_eq!(scenarios[0].algorithm.as_deref(), Some("MIDDLE"));
        assert_eq!(scenarios[0].config.algorithm, Algorithm::middle());
        assert_eq!(scenarios[2].label, "k2-tc4-base-afedfly-s7");
        assert_eq!(scenarios[2].algorithm.as_deref(), Some("FedFly"));
        assert!(scenarios[2].config.algorithm.migrate_in_flight);
        // Seed stays the innermost axis, inside the algorithm axis.
        assert_eq!(scenarios[1].label, "k2-tc4-base-amiddle-s8");
        // An unset axis leaves labels and records untouched.
        let plain = ScenarioGrid::new(tiny()).scenarios().unwrap();
        assert_eq!(plain[0].label, "k2-tc4-base-s7");
        assert_eq!(plain[0].algorithm, None);
        assert_eq!(plain[0].config.algorithm, tiny().algorithm);
    }

    #[test]
    fn algorithm_cells_aggregate_separately() {
        let mk = |algo: Option<&str>, seed: u64| ScenarioRecord {
            index: 0,
            label: match algo {
                Some(a) => format!("k2-tc4-base-a{}-s{seed}", a.to_lowercase()),
                None => format!("k2-tc4-base-s{seed}"),
            },
            p: None,
            k: 2,
            sync_period: 4,
            seed,
            preset: "base".to_string(),
            compression: None,
            algorithm: algo.map(str::to_string),
            execution: None,
            record: RunRecord {
                schema_version: RUN_RECORD_SCHEMA_VERSION,
                algorithm: algo.unwrap_or("MIDDLE").to_string(),
                task: "mnist".to_string(),
                points: Vec::new(),
                empirical_mobility: 0.5,
                wall_seconds: 0.0,
                comm: CommStats::default(),
                syncs: 0,
                active_steps: 0,
                param_count: 0,
                telemetry: None,
                event_seconds: None,
            },
        };
        let records = vec![
            mk(Some("MIDDLE"), 7),
            mk(Some("MIDDLE"), 8),
            mk(Some("FedFly"), 7),
        ];
        let aggs = aggregate(&records);
        assert_eq!(aggs.len(), 2);
        assert_eq!(aggs[0].label, "k2-tc4-base-amiddle");
        assert_eq!(aggs[0].seeds, 2);
        assert_eq!(aggs[1].algorithm.as_deref(), Some("FedFly"));
    }

    #[test]
    fn mobility_axis_rejects_bases_without_a_p_knob() {
        let mut cfg = tiny();
        cfg.mobility = MobilitySource::Stationary;
        let err = ScenarioGrid::new(cfg)
            .with_mobility_ps([0.5])
            .scenarios()
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig { .. }));
    }

    #[test]
    fn invalid_derived_configs_fail_expansion_with_the_label() {
        let err = ScenarioGrid::new(tiny())
            .with_selection_sizes([1000usize])
            .scenarios()
            .unwrap_err();
        let text = err.to_string();
        assert!(text.contains("k1000"), "{text}");
    }

    #[test]
    fn digest_tracks_the_grid() {
        let a = ScenarioGrid::new(tiny()).digest().unwrap();
        let b = ScenarioGrid::new(tiny())
            .with_seeds([8u64])
            .digest()
            .unwrap();
        assert_ne!(a, b);
        assert_eq!(a, ScenarioGrid::new(tiny()).digest().unwrap());
    }

    #[test]
    fn sweep_state_with_leases_round_trips() {
        let state = SweepState {
            schema_version: SWEEP_REPORT_SCHEMA_VERSION,
            grid_digest: 0xdead_beef,
            records: vec![None, None],
            leases: vec![ShardLease {
                shard: 1,
                worker: "w0".to_string(),
                granted_unix_ms: 1_786_308_300_853,
                heartbeat_unix_ms: 1_786_308_302_154,
            }],
            shard_size: 2,
        };
        let json = serde_json::to_string(&state).unwrap();
        let back: SweepState = serde_json::from_str(&json)
            .unwrap_or_else(|e| panic!("state must round-trip: {e}\n{json}"));
        assert_eq!(back.leases, state.leases);
        assert_eq!(back.shard_size, 2);
        // Legacy pre-fleet ledgers (no leases/shard_size) still parse.
        let legacy = r#"{"schema_version":1,"grid_digest":7,"records":[null]}"#;
        let old: SweepState = serde_json::from_str(legacy).unwrap();
        assert!(old.leases.is_empty());
        assert_eq!(old.shard_size, 1);
    }

    #[test]
    fn unswept_axis_records_round_trip_through_the_ledger() {
        // Grids that pin (rather than sweep) the mobility / compression
        // axes produce records with `p: None` / `compression: None`.
        // Those fields are skipped on serialize, so deserialize must
        // default them — a ledger written by one worker has to parse in
        // every other process of the fleet.
        let record = ScenarioRecord {
            index: 0,
            label: "k2-tc4-base-s7".to_string(),
            p: None,
            k: 2,
            sync_period: 4,
            seed: 7,
            preset: "base".to_string(),
            compression: None,
            algorithm: None,
            execution: None,
            record: RunRecord {
                schema_version: RUN_RECORD_SCHEMA_VERSION,
                algorithm: "MIDDLE".to_string(),
                task: "speech".to_string(),
                points: Vec::new(),
                empirical_mobility: 0.5,
                wall_seconds: 0.0,
                comm: CommStats::default(),
                syncs: 1,
                active_steps: 4,
                param_count: 10,
                telemetry: None,
                event_seconds: None,
            },
        };
        let state = SweepState {
            schema_version: SWEEP_REPORT_SCHEMA_VERSION,
            grid_digest: 42,
            records: vec![Some(record), None],
            leases: Vec::new(),
            shard_size: 1,
        };
        let json = serde_json::to_string(&state).unwrap();
        let back: SweepState = serde_json::from_str(&json)
            .unwrap_or_else(|e| panic!("ledger must round-trip: {e}\n{json}"));
        let rec = back.records[0].as_ref().unwrap();
        assert_eq!(rec.p, None);
        assert_eq!(rec.compression, None);
        assert_eq!(rec.label, "k2-tc4-base-s7");
    }

    #[test]
    fn mean_std_ci_handles_single_and_multiple_samples() {
        let (m, s, c) = mean_std_ci(&[0.5]);
        assert_eq!((m, s, c), (0.5, 0.0, 0.0));
        let (m, s, c) = mean_std_ci(&[1.0, 2.0, 3.0]);
        assert!((m - 2.0).abs() < 1e-12);
        assert!((s - 1.0).abs() < 1e-12);
        assert!((c - 1.96 / 3f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn aggregates_group_across_seeds_only() {
        let mk = |k: usize, seed: u64, acc: f32| ScenarioRecord {
            index: 0,
            label: format!("k{k}-tc4-base-s{seed}"),
            p: None,
            k,
            sync_period: 4,
            seed,
            preset: "base".to_string(),
            compression: None,
            algorithm: None,
            execution: None,
            record: RunRecord {
                schema_version: crate::metrics::RUN_RECORD_SCHEMA_VERSION,
                algorithm: "MIDDLE".to_string(),
                task: "mnist".to_string(),
                points: vec![crate::metrics::EvalPoint {
                    step: 1,
                    global_accuracy: acc,
                    global_loss: 0.0,
                    edge_accuracy: Vec::new(),
                    global_per_class: Vec::new(),
                    edge0_per_class: Vec::new(),
                }],
                empirical_mobility: 0.5,
                wall_seconds: 1.0,
                comm: Default::default(),
                syncs: 0,
                active_steps: 0,
                param_count: 0,
                telemetry: None,
                event_seconds: None,
            },
        };
        let records = vec![mk(2, 7, 0.4), mk(2, 8, 0.6), mk(3, 7, 0.8)];
        let aggs = aggregate(&records);
        assert_eq!(aggs.len(), 2);
        assert_eq!(aggs[0].seeds, 2);
        assert!((aggs[0].final_mean - 0.5).abs() < 1e-6);
        assert_eq!(aggs[1].seeds, 1);
        assert_eq!(aggs[1].k, 3);
    }
}
