//! The scenario sweep engine: sharded multi-scenario orchestration with
//! shared-input caching and checkpoint/resume.
//!
//! The paper's headline results (Figures 5–8, Remark 1) are *sweeps* —
//! accuracy versus mobility probability `P`, selection size `K`, sync
//! period `T_c` — and every point used to require a hand-rolled binary
//! and a full cold construction of datasets and traces. This module
//! turns the repo into a batch experiment service:
//!
//! * [`ScenarioGrid`] describes a cartesian product over `P`, `K`,
//!   `T_c`, seeds, named [`FaultPreset`]s and named
//!   [`CompressionPreset`]s on top of a base [`SimConfig`];
//!   [`ScenarioGrid::scenarios`] expands and validates it up front, so
//!   a bad axis fails before any work starts.
//! * [`run_sweep`] shards the scenarios across a deterministic
//!   work-stealing pool: workers claim scenarios from a shared atomic
//!   cursor, and every scenario's result is a pure function of its
//!   config — *independent of shard assignment and thread count* —
//!   because each run owns its models and RNG streams and immutable
//!   inputs are shared read-only through an [`InputCache`].
//! * With [`SweepOptions::checkpoint_dir`] set, workers periodically
//!   serialise full simulation state ([`crate::SimCheckpoint`]) and the
//!   sweep's completion ledger (`sweep_state.json`), so a killed sweep
//!   resumes from where it stopped and reproduces the uninterrupted
//!   sweep's [`SweepReport`] bitwise (excluding wall-clock fields;
//!   [`SweepReport::deterministic_json`] is the comparison form).
//!
//! Results aggregate into a versioned, serde-serialisable
//! [`SweepReport`]: one [`ScenarioRecord`] per scenario plus cross-seed
//! mean/std/95%-CI [`AggregatePoint`]s per grid cell. The
//! `crates/bench/src/bin/sweep.rs` bin emits it as `BENCH_sweep.json`
//! together with the measured caching + sharding speedup over serial
//! cold runs.

use crate::builder::{InputCache, SimError, SimulationBuilder};
use crate::checkpoint::{fnv1a, SimCheckpoint};
use crate::compress::CompressionConfig;
use crate::config::{MobilitySource, SimConfig};
use crate::faults::FaultConfig;
use crate::metrics::RunRecord;
use crate::sim::StepMode;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;
use std::{fs, thread};

/// Version of the [`SweepReport`] / sweep-state JSON schema.
pub const SWEEP_REPORT_SCHEMA_VERSION: u32 = 1;

/// A named fault configuration for one grid axis entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPreset {
    /// Label used in scenario names and aggregates (e.g. `"clean"`,
    /// `"dropout30"`).
    pub name: String,
    /// The failure models the preset enables.
    pub faults: FaultConfig,
}

impl FaultPreset {
    /// The all-off preset every grid falls back to.
    pub fn clean() -> Self {
        FaultPreset {
            name: "clean".to_string(),
            faults: FaultConfig::default(),
        }
    }
}

/// A named compression configuration for one grid axis entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompressionPreset {
    /// Label used in scenario names and aggregates (e.g. `"dense"`,
    /// `"q8k25"`).
    pub name: String,
    /// The uplink compression settings the preset applies.
    pub compression: CompressionConfig,
}

impl CompressionPreset {
    /// The compression-off preset (dense uplinks).
    pub fn dense() -> Self {
        CompressionPreset {
            name: "dense".to_string(),
            compression: CompressionConfig::default(),
        }
    }
}

/// A cartesian scenario grid over a base configuration.
///
/// Empty axes inherit the base config's value, so the default grid is
/// the single base scenario; each `with_*` setter replaces one axis.
/// The mobility axis requires the base mobility to be `MarkovHop` or
/// `HomedMarkovHop` (the only sources with a `P` knob).
#[derive(Debug, Clone)]
pub struct ScenarioGrid {
    base: SimConfig,
    mobility_ps: Vec<f64>,
    selection_sizes: Vec<usize>,
    sync_periods: Vec<usize>,
    seeds: Vec<u64>,
    fault_presets: Vec<FaultPreset>,
    compression_presets: Vec<CompressionPreset>,
}

impl ScenarioGrid {
    /// A grid holding just the base scenario.
    pub fn new(base: SimConfig) -> Self {
        ScenarioGrid {
            base,
            mobility_ps: Vec::new(),
            selection_sizes: Vec::new(),
            sync_periods: Vec::new(),
            seeds: Vec::new(),
            fault_presets: Vec::new(),
            compression_presets: Vec::new(),
        }
    }

    /// The base configuration the grid varies.
    pub fn base(&self) -> &SimConfig {
        &self.base
    }

    /// Sweeps the global mobility probability `P`.
    pub fn with_mobility_ps(mut self, ps: impl Into<Vec<f64>>) -> Self {
        self.mobility_ps = ps.into();
        self
    }

    /// Sweeps the per-edge selection size `K`.
    pub fn with_selection_sizes(mut self, ks: impl Into<Vec<usize>>) -> Self {
        self.selection_sizes = ks.into();
        self
    }

    /// Sweeps the cloud synchronisation period `T_c`.
    pub fn with_sync_periods(mut self, tcs: impl Into<Vec<usize>>) -> Self {
        self.sync_periods = tcs.into();
        self
    }

    /// Sweeps the master seed (the cross-seed axis the aggregates
    /// average over).
    pub fn with_seeds(mut self, seeds: impl Into<Vec<u64>>) -> Self {
        self.seeds = seeds.into();
        self
    }

    /// Sweeps named fault presets.
    pub fn with_fault_presets(mut self, presets: impl Into<Vec<FaultPreset>>) -> Self {
        self.fault_presets = presets.into();
        self
    }

    /// Sweeps named compression presets. An unset axis inherits the
    /// base config's compression settings and leaves scenario labels
    /// unchanged.
    pub fn with_compression_presets(mut self, presets: impl Into<Vec<CompressionPreset>>) -> Self {
        self.compression_presets = presets.into();
        self
    }

    /// Expands the grid into its scenario list (fixed order: `P`
    /// outermost, then `K`, `T_c`, fault preset, compression preset,
    /// seed innermost) and validates every derived configuration.
    ///
    /// # Errors
    /// [`SimError::InvalidConfig`] when the mobility axis is set on a
    /// base without a `P` knob, or when any derived config fails
    /// [`SimConfig::validate`].
    pub fn scenarios(&self) -> Result<Vec<Scenario>, SimError> {
        if !self.mobility_ps.is_empty()
            && !matches!(
                self.base.mobility,
                MobilitySource::MarkovHop { .. } | MobilitySource::HomedMarkovHop { .. }
            )
        {
            return Err(SimError::InvalidConfig {
                message: format!(
                    "mobility axis requires a MarkovHop/HomedMarkovHop base, got {:?}",
                    self.base.mobility
                ),
            });
        }
        let ps: Vec<Option<f64>> = if self.mobility_ps.is_empty() {
            vec![None]
        } else {
            self.mobility_ps.iter().copied().map(Some).collect()
        };
        let ks = if self.selection_sizes.is_empty() {
            vec![self.base.devices_per_edge]
        } else {
            self.selection_sizes.clone()
        };
        let tcs = if self.sync_periods.is_empty() {
            vec![self.base.cloud_interval]
        } else {
            self.sync_periods.clone()
        };
        let seeds = if self.seeds.is_empty() {
            vec![self.base.seed]
        } else {
            self.seeds.clone()
        };
        let presets = if self.fault_presets.is_empty() {
            vec![FaultPreset {
                name: "base".to_string(),
                faults: self.base.faults,
            }]
        } else {
            self.fault_presets.clone()
        };
        let comps: Vec<Option<&CompressionPreset>> = if self.compression_presets.is_empty() {
            vec![None]
        } else {
            self.compression_presets.iter().map(Some).collect()
        };
        let mut out = Vec::with_capacity(
            ps.len() * ks.len() * tcs.len() * presets.len() * comps.len() * seeds.len(),
        );
        for &p in &ps {
            for &k in &ks {
                for &tc in &tcs {
                    for preset in &presets {
                        for &comp in &comps {
                            for &seed in &seeds {
                                let mut config = self.base.clone();
                                if let Some(p) = p {
                                    config.mobility = match config.mobility {
                                        MobilitySource::MarkovHop { .. } => {
                                            MobilitySource::MarkovHop { p }
                                        }
                                        MobilitySource::HomedMarkovHop { home_bias, .. } => {
                                            MobilitySource::HomedMarkovHop { p, home_bias }
                                        }
                                        other => other,
                                    };
                                }
                                config.devices_per_edge = k;
                                config.cloud_interval = tc;
                                config.seed = seed;
                                config.faults = preset.faults;
                                if let Some(comp) = comp {
                                    config.compression = comp.compression.clone();
                                }
                                let c = comp.map(|c| format!("-c{}", c.name)).unwrap_or_default();
                                let label = match p {
                                    Some(p) => {
                                        format!("p{p}-k{k}-tc{tc}-{}{c}-s{seed}", preset.name)
                                    }
                                    None => format!("k{k}-tc{tc}-{}{c}-s{seed}", preset.name),
                                };
                                config
                                    .validate()
                                    .map_err(|message| SimError::InvalidConfig {
                                        message: format!("scenario {label}: {message}"),
                                    })?;
                                out.push(Scenario {
                                    index: out.len(),
                                    label,
                                    p,
                                    k,
                                    sync_period: tc,
                                    seed,
                                    preset: preset.name.clone(),
                                    compression: comp.map(|c| c.name.clone()),
                                    config,
                                });
                            }
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    /// FNV-1a digest of the expanded scenario list (labels + configs).
    /// Stored in sweep state files so a resume is never applied to a
    /// different grid.
    ///
    /// # Errors
    /// Propagates [`ScenarioGrid::scenarios`] errors.
    pub fn digest(&self) -> Result<u64, SimError> {
        Ok(scenarios_digest(&self.scenarios()?))
    }
}

fn scenarios_digest(scenarios: &[Scenario]) -> u64 {
    let mut bytes = Vec::new();
    for s in scenarios {
        bytes.extend_from_slice(s.label.as_bytes());
        bytes.push(b'\n');
        bytes.extend_from_slice(
            serde_json::to_string(&s.config)
                .expect("config serialisation cannot fail")
                .as_bytes(),
        );
        bytes.push(b'\n');
    }
    fnv1a(&bytes)
}

/// One expanded grid point: the derived config plus the axis values
/// that produced it.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Position in the grid's fixed expansion order.
    pub index: usize,
    /// Human-readable scenario name (`p0.5-k3-tc4-clean-s7`).
    pub label: String,
    /// The mobility-axis value (`None` when the axis was not swept).
    pub p: Option<f64>,
    /// Selection size `K`.
    pub k: usize,
    /// Cloud sync period `T_c`.
    pub sync_period: usize,
    /// Master seed.
    pub seed: u64,
    /// Fault preset name.
    pub preset: String,
    /// Compression preset name (`None` when the axis was not swept).
    pub compression: Option<String>,
    /// The fully derived, validated configuration.
    pub config: SimConfig,
}

/// How [`run_sweep`] executes.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Worker threads; `0` uses the host's available parallelism.
    pub threads: usize,
    /// Step implementation every scenario runs with.
    pub step_mode: StepMode,
    /// Directory for per-scenario checkpoints and the sweep completion
    /// ledger; `None` disables persistence (no resume).
    pub checkpoint_dir: Option<PathBuf>,
    /// Steps between mid-run checkpoints of each scenario (`0` = only
    /// the completion ledger, no mid-run snapshots). Ignored without a
    /// `checkpoint_dir`.
    pub checkpoint_every: usize,
    /// Cap on scenarios *completed this invocation* (earliest pending
    /// first — deterministic, used to simulate a killed sweep). `None`
    /// runs everything.
    pub limit: Option<usize>,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            threads: 0,
            step_mode: StepMode::Fast,
            checkpoint_dir: None,
            checkpoint_every: 0,
            limit: None,
        }
    }
}

/// One completed scenario: its axis values plus the full
/// [`RunRecord`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioRecord {
    /// Position in the grid's expansion order.
    pub index: usize,
    /// Scenario name.
    pub label: String,
    /// Mobility-axis value, when swept.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub p: Option<f64>,
    /// Selection size `K`.
    pub k: usize,
    /// Cloud sync period `T_c`.
    pub sync_period: usize,
    /// Master seed.
    pub seed: u64,
    /// Fault preset name.
    pub preset: String,
    /// Compression preset name, when swept.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub compression: Option<String>,
    /// The run's measured output.
    pub record: RunRecord,
}

/// Cross-seed statistics for one grid cell (same `P`, `K`, `T_c` and
/// preset; averaged over the seed axis).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AggregatePoint {
    /// Cell label without the seed suffix.
    pub label: String,
    /// Mobility-axis value, when swept.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub p: Option<f64>,
    /// Selection size `K`.
    pub k: usize,
    /// Cloud sync period `T_c`.
    pub sync_period: usize,
    /// Fault preset name.
    pub preset: String,
    /// Compression preset name, when swept.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub compression: Option<String>,
    /// Seeds aggregated.
    pub seeds: usize,
    /// Mean final accuracy across seeds.
    pub final_mean: f64,
    /// Sample standard deviation (n−1) of the final accuracy.
    pub final_std: f64,
    /// 95% confidence half-width (`1.96·std/√n`) of the final accuracy.
    pub final_ci95: f64,
    /// Mean tail(3) accuracy across seeds (Figure 7's smoothed bars).
    pub tail_mean: f64,
    /// Sample standard deviation of the tail accuracy.
    pub tail_std: f64,
    /// 95% confidence half-width of the tail accuracy.
    pub tail_ci95: f64,
}

/// The sweep's completion ledger, persisted as `sweep_state.json` in
/// the checkpoint directory after every scenario completion (atomic
/// tmp-then-rename writes).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct SweepState {
    schema_version: u32,
    grid_digest: u64,
    records: Vec<Option<ScenarioRecord>>,
}

/// The versioned output of [`run_sweep`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepReport {
    /// [`SWEEP_REPORT_SCHEMA_VERSION`] at emission time.
    pub schema_version: u32,
    /// Digest of the grid the report covers.
    pub grid_digest: u64,
    /// Whether every scenario in the grid has completed (a limited or
    /// interrupted sweep reports `false`).
    pub complete: bool,
    /// Completed scenarios in grid order.
    pub scenarios: Vec<ScenarioRecord>,
    /// Cross-seed statistics per grid cell, over the completed
    /// scenarios.
    pub aggregates: Vec<AggregatePoint>,
    /// Wall-clock seconds of this `run_sweep` invocation.
    pub wall_seconds: f64,
    /// Worker threads used.
    pub threads: usize,
    /// Input-cache hits observed this invocation.
    pub cache_hits: u64,
    /// Input-cache misses observed this invocation.
    pub cache_misses: u64,
}

impl SweepReport {
    /// Serialises the report with every wall-clock-dependent field
    /// zeroed (per-run `wall_seconds`, telemetry latency summaries, the
    /// sweep's own wall clock, thread count and cache counters), so two
    /// reports over the same grid compare bitwise regardless of
    /// scheduling, interruption or host speed.
    pub fn deterministic_json(&self) -> String {
        let mut clean = self.clone();
        clean.wall_seconds = 0.0;
        clean.threads = 0;
        clean.cache_hits = 0;
        clean.cache_misses = 0;
        for s in &mut clean.scenarios {
            s.record.wall_seconds = 0.0;
            s.record.telemetry = None;
        }
        serde_json::to_string(&clean).expect("report serialisation cannot fail")
    }

    /// Serialises the full report.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("report serialisation cannot fail")
    }
}

fn io_err(path: &Path, e: std::io::Error) -> SimError {
    SimError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    }
}

/// Writes `contents` to `path` atomically (tmp file + rename), so a
/// kill mid-write never leaves a truncated state file behind.
fn write_atomic(path: &Path, contents: &str) -> Result<(), SimError> {
    let tmp = path.with_extension("json.tmp");
    fs::write(&tmp, contents).map_err(|e| io_err(&tmp, e))?;
    fs::rename(&tmp, path).map_err(|e| io_err(path, e))?;
    Ok(())
}

fn mean_std_ci(values: &[f64]) -> (f64, f64, f64) {
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    if values.len() < 2 {
        return (mean, 0.0, 0.0);
    }
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1.0);
    let std = var.sqrt();
    (mean, std, 1.96 * std / n.sqrt())
}

/// Groups the completed scenarios by grid cell (everything but the
/// seed) in first-appearance order and computes cross-seed statistics.
fn aggregate(records: &[ScenarioRecord]) -> Vec<AggregatePoint> {
    let mut cells: Vec<(String, Vec<&ScenarioRecord>)> = Vec::new();
    for r in records {
        let c = r
            .compression
            .as_ref()
            .map(|c| format!("-c{c}"))
            .unwrap_or_default();
        let key = match r.p {
            Some(p) => format!("p{p}-k{}-tc{}-{}{c}", r.k, r.sync_period, r.preset),
            None => format!("k{}-tc{}-{}{c}", r.k, r.sync_period, r.preset),
        };
        match cells.iter_mut().find(|(k, _)| *k == key) {
            Some((_, members)) => members.push(r),
            None => cells.push((key, vec![r])),
        }
    }
    cells
        .into_iter()
        .map(|(label, members)| {
            let finals: Vec<f64> = members
                .iter()
                .map(|r| f64::from(r.record.final_accuracy()))
                .collect();
            let tails: Vec<f64> = members
                .iter()
                .map(|r| f64::from(r.record.tail_accuracy(3)))
                .collect();
            let (final_mean, final_std, final_ci95) = mean_std_ci(&finals);
            let (tail_mean, tail_std, tail_ci95) = mean_std_ci(&tails);
            let first = members[0];
            AggregatePoint {
                label,
                p: first.p,
                k: first.k,
                sync_period: first.sync_period,
                preset: first.preset.clone(),
                compression: first.compression.clone(),
                seeds: members.len(),
                final_mean,
                final_std,
                final_ci95,
                tail_mean,
                tail_std,
                tail_ci95,
            }
        })
        .collect()
}

/// Runs (or resumes) a scenario grid.
///
/// Workers claim pending scenarios from a shared cursor; immutable
/// inputs are shared through one [`InputCache`]; per-scenario results
/// are deterministic functions of their configs, independent of shard
/// assignment and thread count. With a checkpoint directory configured,
/// completed scenarios are recorded in `sweep_state.json` and long runs
/// snapshot mid-flight state every [`SweepOptions::checkpoint_every`]
/// steps, so a killed sweep resumes without redoing finished work and
/// reproduces the uninterrupted report bitwise
/// ([`SweepReport::deterministic_json`]).
///
/// # Errors
/// [`SimError::InvalidConfig`] from grid expansion, or the first
/// builder/checkpoint/[`SimError::Io`] error any worker hits (remaining
/// workers stop claiming new scenarios).
pub fn run_sweep(grid: &ScenarioGrid, opts: &SweepOptions) -> Result<SweepReport, SimError> {
    let start = Instant::now();
    let scenarios = grid.scenarios()?;
    let digest = scenarios_digest(&scenarios);

    let state_path = opts
        .checkpoint_dir
        .as_ref()
        .map(|d| d.join("sweep_state.json"));
    if let Some(dir) = &opts.checkpoint_dir {
        fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
    }
    let mut records: Vec<Option<ScenarioRecord>> = vec![None; scenarios.len()];
    if let Some(path) = &state_path {
        if let Ok(text) = fs::read_to_string(path) {
            if let Ok(state) = serde_json::from_str::<SweepState>(&text) {
                if state.schema_version == SWEEP_REPORT_SCHEMA_VERSION
                    && state.grid_digest == digest
                    && state.records.len() == scenarios.len()
                {
                    records = state.records;
                }
            }
        }
    }

    let mut todo: Vec<usize> = (0..scenarios.len())
        .filter(|&i| records[i].is_none())
        .collect();
    if let Some(limit) = opts.limit {
        todo.truncate(limit);
    }

    let threads = if opts.threads == 0 {
        thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        opts.threads
    }
    .min(todo.len().max(1));

    let cache = InputCache::new();
    let cursor = AtomicUsize::new(0);
    let results = Mutex::new(records);
    let first_error: Mutex<Option<SimError>> = Mutex::new(None);
    let scenarios = Arc::new(scenarios);

    thread::scope(|scope| {
        for _ in 0..threads {
            let cache = Arc::clone(&cache);
            let scenarios = Arc::clone(&scenarios);
            let (cursor, todo, results, first_error) = (&cursor, &todo, &results, &first_error);
            let state_path = state_path.as_deref();
            scope.spawn(move || loop {
                let claim = cursor.fetch_add(1, Ordering::Relaxed);
                if claim >= todo.len() {
                    return;
                }
                if first_error.lock().expect("error slot poisoned").is_some() {
                    return;
                }
                let scenario = &scenarios[todo[claim]];
                match run_scenario(scenario, &cache, opts) {
                    Ok(record) => {
                        let mut recs = results.lock().expect("result slot poisoned");
                        recs[scenario.index] = Some(record);
                        if let Some(path) = state_path {
                            let state = SweepState {
                                schema_version: SWEEP_REPORT_SCHEMA_VERSION,
                                grid_digest: digest,
                                records: recs.clone(),
                            };
                            let json = serde_json::to_string(&state)
                                .expect("state serialisation cannot fail");
                            if let Err(e) = write_atomic(path, &json) {
                                let mut slot = first_error.lock().expect("error slot poisoned");
                                slot.get_or_insert(e);
                                return;
                            }
                        }
                    }
                    Err(e) => {
                        let mut slot = first_error.lock().expect("error slot poisoned");
                        slot.get_or_insert(e);
                        return;
                    }
                }
            });
        }
    });

    if let Some(e) = first_error.into_inner().expect("error slot poisoned") {
        return Err(e);
    }
    let records = results.into_inner().expect("result slot poisoned");
    let complete = records.iter().all(Option::is_some);
    let completed: Vec<ScenarioRecord> = records.into_iter().flatten().collect();
    let aggregates = aggregate(&completed);
    Ok(SweepReport {
        schema_version: SWEEP_REPORT_SCHEMA_VERSION,
        grid_digest: digest,
        complete,
        scenarios: completed,
        aggregates,
        wall_seconds: start.elapsed().as_secs_f64(),
        threads,
        cache_hits: cache.hits(),
        cache_misses: cache.misses(),
    })
}

/// Runs one scenario to completion: builds through the shared cache,
/// resumes from an existing mid-run checkpoint when one matches, ticks
/// with periodic snapshots, and removes the snapshot on completion.
fn run_scenario(
    scenario: &Scenario,
    cache: &Arc<InputCache>,
    opts: &SweepOptions,
) -> Result<ScenarioRecord, SimError> {
    let mut sim = SimulationBuilder::new(scenario.config.clone())
        .with_shared_inputs(Arc::clone(cache))
        .build()
        .map_err(|e| match e {
            SimError::InvalidConfig { message } => SimError::InvalidConfig {
                message: format!("scenario {}: {message}", scenario.label),
            },
            other => other,
        })?;
    let ckpt_path = opts
        .checkpoint_dir
        .as_ref()
        .map(|d| d.join(format!("scenario_{}.ckpt.json", scenario.index)));
    if let Some(path) = &ckpt_path {
        if let Ok(text) = fs::read_to_string(path) {
            if let Ok(ck) = SimCheckpoint::from_json(&text) {
                // A mismatching snapshot (different grid reusing the
                // directory) is ignored: the scenario restarts cold.
                let _ = sim.restore(&ck);
            }
        }
    }
    while !sim.is_finished() {
        sim.tick(opts.step_mode);
        if let Some(path) = &ckpt_path {
            if opts.checkpoint_every > 0
                && sim.next_step() % opts.checkpoint_every == 0
                && !sim.is_finished()
            {
                write_atomic(path, &sim.checkpoint().to_json())?;
            }
        }
    }
    let record = sim.finish();
    if let Some(path) = &ckpt_path {
        let _ = fs::remove_file(path);
    }
    Ok(ScenarioRecord {
        index: scenario.index,
        label: scenario.label.clone(),
        p: scenario.p,
        k: scenario.k,
        sync_period: scenario.sync_period,
        seed: scenario.seed,
        preset: scenario.preset.clone(),
        compression: scenario.compression.clone(),
        record,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::Algorithm;
    use middle_data::Task;

    fn tiny() -> SimConfig {
        SimConfig::tiny(Task::Mnist, Algorithm::middle())
    }

    #[test]
    fn empty_axes_expand_to_the_base_scenario() {
        let grid = ScenarioGrid::new(tiny());
        let scenarios = grid.scenarios().unwrap();
        assert_eq!(scenarios.len(), 1);
        let s = &scenarios[0];
        assert_eq!(s.k, 2);
        assert_eq!(s.sync_period, 4);
        assert_eq!(s.seed, 7);
        assert_eq!(s.preset, "base");
        assert_eq!(s.p, None);
        assert_eq!(s.label, "k2-tc4-base-s7");
    }

    #[test]
    fn cartesian_expansion_covers_every_combination() {
        let grid = ScenarioGrid::new(tiny())
            .with_mobility_ps([0.1, 0.9])
            .with_selection_sizes([2usize, 3])
            .with_sync_periods([2usize, 4])
            .with_seeds([7u64, 8, 9]);
        let scenarios = grid.scenarios().unwrap();
        assert_eq!(scenarios.len(), 2 * 2 * 2 * 3);
        // Labels are unique and indices match positions.
        for (i, s) in scenarios.iter().enumerate() {
            assert_eq!(s.index, i);
        }
        let mut labels: Vec<&str> = scenarios.iter().map(|s| s.label.as_str()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), scenarios.len());
        // Seed is the innermost axis.
        assert_eq!(scenarios[0].seed, 7);
        assert_eq!(scenarios[1].seed, 8);
        assert_eq!(scenarios[2].seed, 9);
        assert_eq!(scenarios[0].p, Some(0.1));
    }

    #[test]
    fn compression_axis_expands_and_labels_scenarios() {
        let lossy = CompressionConfig {
            enabled: true,
            quantize_bits: 8,
            top_frac: 0.25,
            ..CompressionConfig::default()
        };
        let grid = ScenarioGrid::new(tiny()).with_compression_presets([
            CompressionPreset::dense(),
            CompressionPreset {
                name: "q8k25".to_string(),
                compression: lossy.clone(),
            },
        ]);
        let scenarios = grid.scenarios().unwrap();
        assert_eq!(scenarios.len(), 2);
        assert_eq!(scenarios[0].label, "k2-tc4-base-cdense-s7");
        assert_eq!(scenarios[0].compression.as_deref(), Some("dense"));
        assert!(!scenarios[0].config.compression.lossy_active());
        assert_eq!(scenarios[1].label, "k2-tc4-base-cq8k25-s7");
        assert_eq!(scenarios[1].config.compression, lossy);
        // An unset axis leaves labels untouched (pinned elsewhere too).
        let plain = ScenarioGrid::new(tiny()).scenarios().unwrap();
        assert_eq!(plain[0].label, "k2-tc4-base-s7");
        assert_eq!(plain[0].compression, None);
    }

    #[test]
    fn mobility_axis_rejects_bases_without_a_p_knob() {
        let mut cfg = tiny();
        cfg.mobility = MobilitySource::Stationary;
        let err = ScenarioGrid::new(cfg)
            .with_mobility_ps([0.5])
            .scenarios()
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig { .. }));
    }

    #[test]
    fn invalid_derived_configs_fail_expansion_with_the_label() {
        let err = ScenarioGrid::new(tiny())
            .with_selection_sizes([1000usize])
            .scenarios()
            .unwrap_err();
        let text = err.to_string();
        assert!(text.contains("k1000"), "{text}");
    }

    #[test]
    fn digest_tracks_the_grid() {
        let a = ScenarioGrid::new(tiny()).digest().unwrap();
        let b = ScenarioGrid::new(tiny())
            .with_seeds([8u64])
            .digest()
            .unwrap();
        assert_ne!(a, b);
        assert_eq!(a, ScenarioGrid::new(tiny()).digest().unwrap());
    }

    #[test]
    fn mean_std_ci_handles_single_and_multiple_samples() {
        let (m, s, c) = mean_std_ci(&[0.5]);
        assert_eq!((m, s, c), (0.5, 0.0, 0.0));
        let (m, s, c) = mean_std_ci(&[1.0, 2.0, 3.0]);
        assert!((m - 2.0).abs() < 1e-12);
        assert!((s - 1.0).abs() < 1e-12);
        assert!((c - 1.96 / 3f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn aggregates_group_across_seeds_only() {
        let mk = |k: usize, seed: u64, acc: f32| ScenarioRecord {
            index: 0,
            label: format!("k{k}-tc4-base-s{seed}"),
            p: None,
            k,
            sync_period: 4,
            seed,
            preset: "base".to_string(),
            compression: None,
            record: RunRecord {
                schema_version: crate::metrics::RUN_RECORD_SCHEMA_VERSION,
                algorithm: "MIDDLE".to_string(),
                task: "mnist".to_string(),
                points: vec![crate::metrics::EvalPoint {
                    step: 1,
                    global_accuracy: acc,
                    global_loss: 0.0,
                    edge_accuracy: Vec::new(),
                    global_per_class: Vec::new(),
                    edge0_per_class: Vec::new(),
                }],
                empirical_mobility: 0.5,
                wall_seconds: 1.0,
                comm: Default::default(),
                syncs: 0,
                active_steps: 0,
                param_count: 0,
                telemetry: None,
            },
        };
        let records = vec![mk(2, 7, 0.4), mk(2, 8, 0.6), mk(3, 7, 0.8)];
        let aggs = aggregate(&records);
        assert_eq!(aggs.len(), 2);
        assert_eq!(aggs[0].seeds, 2);
        assert!((aggs[0].final_mean - 0.5).abs() < 1e-6);
        assert_eq!(aggs[1].seeds, 1);
        assert_eq!(aggs[1].k, 3);
    }
}
