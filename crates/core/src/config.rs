//! Experiment configuration.

use crate::algorithms::Algorithm;
use crate::compress::CompressionConfig;
use crate::faults::FaultConfig;
use crate::timeline::TimelineConfig;
use middle_data::{Scheme, Task};
use middle_nn::OptimizerKind;
use serde::{Deserialize, Serialize};

/// How the mobility trace is produced.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MobilitySource {
    /// Markov edge-hop with the given global mobility probability `P`
    /// (the paper's controlled knob; §6.1.2 default `P = 0.5`).
    MarkovHop {
        /// Global mobility probability.
        p: f64,
    },
    /// Home-biased Markov edge-hop: devices start at a home edge chosen
    /// by their major class and preferentially return to it, so edge
    /// data distributions stay persistently Non-IID — the paper's
    /// "data samples of devices are Non-IID across edges" (§3.2) under
    /// ONE-simulator-like spatial locality.
    HomedMarkovHop {
        /// Global mobility probability.
        p: f64,
        /// Probability that a relocation from away returns home.
        home_bias: f64,
    },
    /// Geometric random-waypoint over a grid service area, speeds in
    /// metres per time step.
    RandomWaypoint {
        /// Minimum speed.
        min_speed: f64,
        /// Maximum speed.
        max_speed: f64,
    },
    /// Geometric random walk.
    RandomWalk {
        /// Maximum speed.
        max_speed: f64,
    },
    /// No movement at all (P = 0).
    Stationary,
}

/// How the device population is held in memory.
///
/// The simulation's observable behaviour — RunRecords, checkpoints of
/// the respective mode, communication ledgers — is bitwise identical
/// between the two modes (gated by `crates/core/tests/population_plane.rs`);
/// the mode only changes *where* idle parameters live.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum PopulationMode {
    /// Every device holds a full materialised replica (model, local
    /// dataset, training scratch) for the whole run. Memory is O(N·P).
    #[default]
    Dense,
    /// Idle devices are virtualized to a stub (last-received model
    /// version id, Oort utility, participation step, saved RNG state)
    /// and materialised lazily on selection; a cloud broadcast demotes
    /// every reached replica back to a stub pointing at the new shared
    /// version vector. Resident replicas are bounded by the devices
    /// that trained since the last broadcast (≈ `K·E·T_c`), so memory
    /// is flat in the number of *idle* devices. Markov-hop mobility
    /// traces switch to the streaming generator (O(N) resident rows
    /// instead of O(N·T)).
    Lazy,
}

fn default_availability() -> f64 {
    1.0
}

/// Full configuration of one hierarchical-FL simulation run.
///
/// Paper defaults (§6.1.2): 10 edges, 100 devices, K = 5 selected per
/// edge, I = 10 local steps, T_c = 10, P = 0.5, device data with a >80%
/// major class, SGD+momentum(0.9) at lr 0.01 (Adam at 0.001 for speech).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimConfig {
    /// Learning task (dataset + model family).
    pub task: Task,
    /// The training algorithm under test.
    pub algorithm: Algorithm,
    /// Number of edge servers.
    pub num_edges: usize,
    /// Number of mobile devices.
    pub num_devices: usize,
    /// Training samples held by each device.
    pub samples_per_device: usize,
    /// Label-skew scheme for device data.
    pub scheme: Scheme,
    /// Devices selected per edge per time step (`K`).
    pub devices_per_edge: usize,
    /// Local SGD steps per participation (`I`).
    pub local_steps: usize,
    /// Mini-batch size for local steps.
    pub batch_size: usize,
    /// Cloud synchronisation interval in time steps (`T_c`).
    pub cloud_interval: usize,
    /// Total time steps to simulate (`T`).
    pub steps: usize,
    /// Device mobility.
    pub mobility: MobilitySource,
    /// Local optimizer.
    pub optimizer: OptimizerKind,
    /// Held-out test-set size for accuracy curves.
    pub test_samples: usize,
    /// Evaluate the (virtual) global model every this many steps.
    pub eval_interval: usize,
    /// Also evaluate every edge model at each evaluation (Figures 1–2).
    #[serde(default)]
    pub eval_edges: bool,
    /// Also record per-class accuracies at each evaluation (Figures 1–2).
    #[serde(default)]
    pub eval_per_class: bool,
    /// Per-step probability that a device is reachable (straggler /
    /// dropout injection). 1.0 = always available.
    ///
    /// This is the legacy blunt knob; the fault plane ([`Self::faults`])
    /// supersedes it with structured failure processes. Both compose:
    /// availability filters candidates before selection, faults act on
    /// the selected cohort.
    #[serde(default = "default_availability")]
    pub availability: f64,
    /// Deterministic failure models (dropout, stragglers, upload loss,
    /// WAN outages). All off by default; a default config is bitwise
    /// identical to a fault-free simulation (see [`crate::faults`]).
    #[serde(default)]
    pub faults: FaultConfig,
    /// Uplink compression (quantization + top-K sparsification with
    /// error feedback). Off by default; a default config is bitwise
    /// identical to an uncompressed simulation (see [`crate::compress`]).
    #[serde(default)]
    pub compression: CompressionConfig,
    /// Enable the telemetry plane: per-phase step timers, latency
    /// histograms and event counters, surfaced as
    /// [`crate::telemetry::TelemetryReport`] on the run record. Off by
    /// default; the disabled recorder is a no-op (see
    /// [`crate::telemetry`] for the overhead contract).
    #[serde(default)]
    pub telemetry: bool,
    /// Optional path for a per-step JSONL event log (one line per step,
    /// phase timings + counters). Setting a path implies `telemetry`.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub telemetry_jsonl: Option<String>,
    /// How the device population is held in memory ([`PopulationMode`]).
    /// `Dense` by default; `Lazy` virtualizes idle devices so
    /// million-device populations fit in memory.
    #[serde(default)]
    pub population: PopulationMode,
    /// Execution timeline ([`TimelineConfig`]): lockstep rounds by
    /// default, or the event-driven scheduler with real upload
    /// latencies, threshold aggregation and timer-driven cloud syncs.
    /// The zero-delay event-driven corner reproduces lockstep bitwise
    /// (gated by `crates/core/tests/timeline_plane.rs`).
    #[serde(default, skip_serializing_if = "TimelineConfig::is_default")]
    pub timeline: TimelineConfig,
    /// Master seed; all randomness derives from it.
    pub seed: u64,
}

impl SimConfig {
    /// The paper's §6.1.2 configuration for `task`, scaled down
    /// (fewer devices/steps; see DESIGN.md §7) so the full figure suite
    /// regenerates on a laptop.
    pub fn paper_default(task: Task, algorithm: Algorithm) -> Self {
        let optimizer = match task {
            Task::Speech => OptimizerKind::Adam { lr: 0.001 },
            _ => OptimizerKind::Momentum {
                lr: 0.01,
                momentum: 0.9,
            },
        };
        SimConfig {
            task,
            algorithm,
            num_edges: 10,
            num_devices: 100,
            samples_per_device: 40,
            scheme: Scheme::MajorClass { major_frac: 0.8 },
            devices_per_edge: 5,
            local_steps: 10,
            batch_size: 16,
            cloud_interval: 10,
            steps: 120,
            mobility: MobilitySource::HomedMarkovHop {
                p: 0.5,
                home_bias: 0.6,
            },
            optimizer,
            test_samples: 400,
            eval_interval: 2,
            eval_edges: false,
            eval_per_class: false,
            availability: 1.0,
            faults: FaultConfig::default(),
            compression: CompressionConfig::default(),
            telemetry: false,
            telemetry_jsonl: None,
            population: PopulationMode::Dense,
            timeline: TimelineConfig::default(),
            seed: 2023,
        }
    }

    /// A tiny configuration for unit/integration tests: 2 edges, 8
    /// devices, a handful of steps.
    pub fn tiny(task: Task, algorithm: Algorithm) -> Self {
        SimConfig {
            task,
            algorithm,
            num_edges: 2,
            num_devices: 8,
            samples_per_device: 12,
            scheme: Scheme::MajorClass { major_frac: 0.8 },
            devices_per_edge: 2,
            local_steps: 2,
            batch_size: 6,
            cloud_interval: 4,
            steps: 8,
            mobility: MobilitySource::MarkovHop { p: 0.5 },
            optimizer: OptimizerKind::Sgd { lr: 0.05 },
            test_samples: 60,
            eval_interval: 2,
            eval_edges: false,
            eval_per_class: false,
            availability: 1.0,
            faults: FaultConfig::default(),
            compression: CompressionConfig::default(),
            telemetry: false,
            telemetry_jsonl: None,
            population: PopulationMode::Dense,
            timeline: TimelineConfig::default(),
            seed: 7,
        }
    }

    /// Whether the telemetry recorder should collect for this config
    /// (explicitly enabled, or implied by a JSONL sink path).
    pub fn telemetry_enabled(&self) -> bool {
        self.telemetry || self.telemetry_jsonl.is_some()
    }

    /// Validates internal consistency; call before running.
    ///
    /// # Errors
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_edges == 0 {
            return Err("num_edges must be positive".into());
        }
        if self.num_devices < self.num_edges {
            return Err("need at least one device per edge".into());
        }
        if self.devices_per_edge == 0 {
            return Err("devices_per_edge (K) must be positive".into());
        }
        if self.devices_per_edge > self.num_devices {
            return Err(format!(
                "devices_per_edge (K = {}) exceeds num_devices ({})",
                self.devices_per_edge, self.num_devices
            ));
        }
        if self.samples_per_device == 0 {
            return Err("samples_per_device must be positive".into());
        }
        if self.local_steps == 0 {
            return Err("local_steps (I) must be positive".into());
        }
        if self.batch_size == 0 {
            return Err("batch_size must be positive".into());
        }
        if self.cloud_interval == 0 {
            return Err("cloud_interval (T_c) must be positive".into());
        }
        if self.steps == 0 {
            return Err("steps must be positive".into());
        }
        if self.eval_interval == 0 {
            return Err("eval_interval must be positive".into());
        }
        if self.test_samples == 0 {
            return Err("test_samples must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.availability) {
            return Err(format!(
                "availability = {} outside [0, 1]",
                self.availability
            ));
        }
        self.faults.validate()?;
        self.compression.validate()?;
        self.timeline.validate()?;
        if let crate::SelectionPolicy::ClusterGuided { clusters } = self.algorithm.selection {
            if clusters == 0 {
                return Err("ClusterGuided selection needs at least one cluster".into());
            }
        }
        if self.telemetry_jsonl.as_deref() == Some("") {
            return Err("telemetry_jsonl path must be non-empty".into());
        }
        match self.mobility {
            MobilitySource::MarkovHop { p } | MobilitySource::HomedMarkovHop { p, .. }
                if !(0.0..=1.0).contains(&p) =>
            {
                return Err(format!("mobility P = {p} outside [0, 1]"));
            }
            MobilitySource::HomedMarkovHop { home_bias, .. }
                if !(0.0..=1.0).contains(&home_bias) =>
            {
                return Err(format!("home_bias = {home_bias} outside [0, 1]"));
            }
            _ => {}
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_section_6_1_2() {
        let c = SimConfig::paper_default(Task::Mnist, Algorithm::middle());
        assert_eq!(c.num_edges, 10);
        assert_eq!(c.num_devices, 100);
        assert_eq!(c.devices_per_edge, 5);
        assert_eq!(c.local_steps, 10);
        assert_eq!(c.cloud_interval, 10);
        assert_eq!(
            c.mobility,
            MobilitySource::HomedMarkovHop {
                p: 0.5,
                home_bias: 0.6
            }
        );
        assert!(matches!(c.optimizer, OptimizerKind::Momentum { .. }));
        assert!(c.validate().is_ok());
    }

    #[test]
    fn speech_uses_adam() {
        let c = SimConfig::paper_default(Task::Speech, Algorithm::oort());
        assert_eq!(c.optimizer, OptimizerKind::Adam { lr: 0.001 });
    }

    #[test]
    fn tiny_config_validates() {
        assert!(SimConfig::tiny(Task::Mnist, Algorithm::middle())
            .validate()
            .is_ok());
    }

    #[test]
    fn validate_catches_violations() {
        let mut c = SimConfig::tiny(Task::Mnist, Algorithm::middle());
        c.devices_per_edge = 0;
        assert!(c.validate().is_err());
        let mut c = SimConfig::tiny(Task::Mnist, Algorithm::middle());
        c.mobility = MobilitySource::MarkovHop { p: 1.5 };
        assert!(c.validate().is_err());
        let mut c = SimConfig::tiny(Task::Mnist, Algorithm::middle());
        c.num_devices = 1;
        assert!(c.validate().is_err());
        let mut c = SimConfig::tiny(Task::Mnist, Algorithm::middle());
        c.devices_per_edge = c.num_devices + 1;
        assert!(c.validate().is_err());
    }

    #[test]
    fn telemetry_flags_default_off_and_jsonl_implies_enabled() {
        let mut c = SimConfig::tiny(Task::Mnist, Algorithm::middle());
        assert!(!c.telemetry_enabled());
        c.telemetry_jsonl = Some("events.jsonl".into());
        assert!(c.telemetry_enabled());
        assert!(c.validate().is_ok());
        c.telemetry_jsonl = Some(String::new());
        assert!(c.validate().is_err());
        // Old configs without the fields still deserialise (defaults).
        let json = serde_json::to_string(&SimConfig::tiny(Task::Mnist, Algorithm::middle()))
            .unwrap()
            .replace("\"telemetry\":false,", "");
        let back: SimConfig = serde_json::from_str(&json).unwrap();
        assert!(!back.telemetry_enabled());
    }

    #[test]
    fn timeline_default_is_skipped_in_json() {
        let c = SimConfig::tiny(Task::Mnist, Algorithm::middle());
        let json = serde_json::to_string(&c).unwrap();
        assert!(
            !json.contains("timeline"),
            "default timeline must not change config JSON"
        );
        let back: SimConfig = serde_json::from_str(&json).unwrap();
        assert!(back.timeline.is_default());

        let mut c = SimConfig::tiny(Task::Mnist, Algorithm::middle());
        c.timeline = crate::timeline::TimelineConfig::event_driven_zero_delay();
        assert!(c.validate().is_ok());
        let json = serde_json::to_string(&c).unwrap();
        assert!(json.contains("EventDriven"));
        let back: SimConfig = serde_json::from_str(&json).unwrap();
        assert!(back.timeline.event_mode());
    }

    #[test]
    fn config_serialises() {
        let c = SimConfig::paper_default(Task::Cifar10, Algorithm::fedmes());
        let json = serde_json::to_string(&c).unwrap();
        let back: SimConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.task, Task::Cifar10);
        assert_eq!(back.algorithm.name, "FedMes");
    }
}
