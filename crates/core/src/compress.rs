//! The compression plane: quantized + sparsified uplinks with error
//! feedback.
//!
//! The paper motivates the device-edge-cloud hierarchy by wireless and
//! WAN communication cost (§1, §7), and the hierarchical-FL literature
//! treats uplink volume as the binding constraint. This module lets the
//! simulator trade uplink bytes against accuracy: update *deltas* on
//! device→edge uploads and edge→cloud syncs are top-K sparsified and
//! uniformly quantized (QSGD-style, configurable bits), and the mass a
//! compressed upload drops is kept in a per-sender error-feedback
//! residual so it re-enters later rounds instead of vanishing.
//! Downlinks (edge→device and cloud→edge/device broadcasts) stay dense:
//! the paper's cost model, like most deployments, is uplink-bound.
//!
//! Determinism contract, mirroring [`crate::faults`]:
//!
//! * all stochastic rounding draws come from one dedicated RNG stream
//!   (`derive_seed(seed, 10)`) owned by [`CompressionPlane`], never from
//!   the selection / availability / fault streams;
//! * a disabled or lossless configuration performs **no** draw, **no**
//!   delta computation and **no** allocation — the simulation is bitwise
//!   identical to one without the plane (gated by
//!   `tests/hotpath_equiv.rs`);
//! * `step` and `step_reference` share the compressed aggregation
//!   helpers in [`crate::Simulation`], so the two stay interchangeable
//!   under compression.
//!
//! Conservation contract: for every coordinate, the transmitted grid
//! value `t` and the sender-side residual `r` satisfy `t + r == delta`
//! *bitwise* in `f64`. A plain `r = delta − t` cannot guarantee this
//! (when `|t| ≫ |delta|` the subtraction rounds and `t + r` lands on a
//! neighbouring float), so [`compress_delta`] verifies the identity per
//! coordinate and falls back to transmitting the exact value (`t =
//! delta`, `r = 0`) when the grid value is not exactly recoverable —
//! the escape-code analogue of lossless coders. The fallback only
//! triggers for coordinates whose quantized value drowns the true delta,
//! where quantization was pointless anyway.

use crate::checkpoint::{CompressionPlaneCheckpoint, RngStateCheckpoint};
use middle_tensor::random::{derive_seed, rng};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// RNG stream index of the compression plane (see DESIGN.md §4).
pub const COMPRESSION_STREAM: u64 = 10;

/// Wire-format overhead of one compressed payload: the dequantization
/// grid origin and step, each an `f64`.
pub const COMPRESSED_HEADER_BYTES: u64 = 16;

fn default_bits() -> u32 {
    32
}

fn default_top_frac() -> f64 {
    1.0
}

fn default_rounding() -> RoundingMode {
    RoundingMode::Stochastic
}

fn default_error_feedback() -> bool {
    true
}

/// How a value between two quantization grid points is resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RoundingMode {
    /// Round to the nearest grid point: worst-case error `step / 2`,
    /// but biased towards the grid.
    Nearest,
    /// QSGD-style stochastic rounding: round up with probability equal
    /// to the fractional position between the two neighbouring grid
    /// points. Unbiased (`E[dequant] == value`), worst-case error
    /// `< step`.
    Stochastic,
}

/// Uplink compression configuration. Off by default; a default-valued
/// config is bitwise inert (no draws, no delta computation, dense
/// payload accounting).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompressionConfig {
    /// Master switch. `false` (the default) bypasses the plane entirely.
    #[serde(default)]
    pub enabled: bool,
    /// Quantization bit-width for transmitted delta values, in
    /// `1..=32`. `32` (the default) transmits values losslessly.
    #[serde(default = "default_bits")]
    pub quantize_bits: u32,
    /// Fraction of coordinates kept by top-K sparsification, in
    /// `(0, 1]`. The kept count is `ceil(top_frac · d)`, at least 1.
    /// `1.0` (the default) keeps every coordinate.
    #[serde(default = "default_top_frac")]
    pub top_frac: f64,
    /// Rounding mode for quantization. Stochastic (the default) is the
    /// unbiased QSGD estimator; nearest halves the worst-case error.
    #[serde(default = "default_rounding")]
    pub rounding: RoundingMode,
    /// Keep the untransmitted mass (quantization error + dropped
    /// coordinates) in a per-sender residual added to the next delta.
    /// On by default; disabling it turns the plane into memoryless
    /// lossy compression.
    #[serde(default = "default_error_feedback")]
    pub error_feedback: bool,
}

impl Default for CompressionConfig {
    fn default() -> Self {
        CompressionConfig {
            enabled: false,
            quantize_bits: default_bits(),
            top_frac: default_top_frac(),
            rounding: default_rounding(),
            error_feedback: default_error_feedback(),
        }
    }
}

impl CompressionConfig {
    /// `true` when the configured operators cannot change any payload:
    /// full-width values and every coordinate kept.
    pub fn is_lossless(&self) -> bool {
        self.quantize_bits >= 32 && self.top_frac >= 1.0
    }

    /// `true` when the plane actually rewrites uploads: enabled *and*
    /// configured with a lossy operator. An enabled-but-lossless plane
    /// short-circuits so off-vs-lossless runs are bitwise identical by
    /// construction (an `f32` wire format cannot round-trip
    /// `reference + (new − reference)` exactly; skipping the delta
    /// arithmetic entirely can).
    pub fn lossy_active(&self) -> bool {
        self.enabled && !self.is_lossless()
    }

    /// Validates field ranges (checked even while disabled, so a bad
    /// config cannot hide behind `enabled: false`).
    ///
    /// # Errors
    /// Returns a human-readable message naming the offending field.
    pub fn validate(&self) -> Result<(), String> {
        if !(1..=32).contains(&self.quantize_bits) {
            return Err(format!(
                "compression.quantize_bits must be in 1..=32, got {}",
                self.quantize_bits
            ));
        }
        if !self.top_frac.is_finite() || self.top_frac <= 0.0 || self.top_frac > 1.0 {
            return Err(format!(
                "compression.top_frac must be a finite value in (0, 1], got {}",
                self.top_frac
            ));
        }
        Ok(())
    }
}

/// Number of coordinates top-K keeps out of `d` at fraction `frac`:
/// `ceil(frac · d)` clamped to `1..=d` (`0` only when `d == 0`).
pub fn keep_count(d: usize, frac: f64) -> usize {
    if d == 0 {
        return 0;
    }
    ((frac * d as f64).ceil() as usize).clamp(1, d)
}

/// Analytic wire size in bytes of one compressed payload of dimension
/// `d` with `k` kept coordinates at `bits` bits per value.
///
/// Dense payloads (every coordinate kept at full width) cost the
/// classic `4 · d` (f32 per parameter). Lossy payloads cost a
/// [`COMPRESSED_HEADER_BYTES`] grid header plus `k` packed records of
/// `bits` value bits and, when `k < d`, `ceil(log2(d))` index bits.
/// The size depends only on the configuration and dimension — not on
/// the data — which is what lets retransmissions and stale uploads be
/// charged without re-running the compressor.
pub fn compressed_payload_bytes(d: usize, k: usize, bits: u32) -> u64 {
    if d == 0 {
        return 0;
    }
    let k = k.min(d);
    if k == d && bits >= 32 {
        return 4 * d as u64;
    }
    let value_bits = u64::from(bits.min(32));
    let idx_bits = if k == d {
        0
    } else {
        u64::from(usize::BITS - (d - 1).leading_zeros())
    };
    COMPRESSED_HEADER_BYTES + (k as u64 * (value_bits + idx_bits)).div_ceil(8)
}

/// Pushes the coordinate exactly: transmitted value is the raw delta and
/// the residual is a zero that reconstructs bitwise (`-0.0` for a
/// negative-zero delta, since `-0.0 + 0.0 == +0.0` would flip the sign
/// bit).
#[inline]
fn exact_coordinate(v: f64) -> (f64, f64) {
    (v, if v == 0.0 { v } else { 0.0 })
}

/// Compresses one update delta: top-`k` sparsification followed by
/// uniform quantization of the kept values onto a `2^bits`-point grid
/// spanning their range.
///
/// Outputs, all overwritten:
/// * `kept` — the surviving coordinate indices, ascending;
/// * `sent` — the transmitted (dequantized) values, parallel to `kept`;
/// * `residual` — the full-dimension sender-side remainder, satisfying
///   `sent + residual == delta` bitwise per coordinate (dropped
///   coordinates carry their entire delta).
///
/// Stochastic rounding draws exactly one uniform per kept coordinate
/// from `rng`; nearest rounding, `bits >= 32`, and degenerate grids
/// (all kept values equal, or non-finite range) draw nothing.
#[allow(clippy::too_many_arguments)] // scratch outputs, not options
pub fn compress_delta(
    delta: &[f64],
    bits: u32,
    k: usize,
    mode: RoundingMode,
    rng: &mut StdRng,
    kept: &mut Vec<u32>,
    sent: &mut Vec<f64>,
    residual: &mut Vec<f64>,
) {
    let d = delta.len();
    let k = k.min(d);
    residual.clear();
    residual.extend_from_slice(delta);
    kept.clear();
    sent.clear();
    if d == 0 || k == 0 {
        return;
    }
    debug_assert!(
        d <= u32::MAX as usize,
        "delta dimension exceeds u32 indices"
    );
    kept.extend(0..d as u32);
    if k < d {
        // Total order (|v| descending, index ascending) makes the
        // partition deterministic even across equal magnitudes and NaNs.
        let by_magnitude = |a: &u32, b: &u32| {
            let fa = delta[*a as usize].abs();
            let fb = delta[*b as usize].abs();
            fb.total_cmp(&fa).then_with(|| a.cmp(b))
        };
        kept.select_nth_unstable_by(k - 1, by_magnitude);
        kept.truncate(k);
        kept.sort_unstable();
    }
    sent.reserve(k);

    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &i in kept.iter() {
        let v = delta[i as usize];
        lo = lo.min(v);
        hi = hi.max(v);
    }
    let levels = if bits >= 32 { 0 } else { 1u64 << bits };
    let step = if levels >= 2 {
        (hi - lo) / (levels - 1) as f64
    } else {
        0.0
    };
    if bits >= 32 || step <= 0.0 || !step.is_finite() {
        // Lossless width or a degenerate grid: transmit kept values
        // exactly, no draws.
        for &i in kept.iter() {
            let (t, r) = exact_coordinate(delta[i as usize]);
            sent.push(t);
            residual[i as usize] = r;
        }
        return;
    }
    let max_q = (levels - 1) as f64;
    for &i in kept.iter() {
        let v = delta[i as usize];
        let x = ((v - lo) / step).clamp(0.0, max_q);
        let base = x.floor().min(max_q - 1.0);
        let frac = (x - base).clamp(0.0, 1.0);
        let up = match mode {
            RoundingMode::Nearest => frac >= 0.5,
            // Always draw so the stream advances exactly once per kept
            // coordinate regardless of the value.
            RoundingMode::Stochastic => rng.gen::<f64>() < frac,
        };
        let q = base + if up { 1.0 } else { 0.0 };
        let mut t = lo + q * step;
        let mut r = v - t;
        if (t + r).to_bits() != v.to_bits() {
            // The grid value is not exactly recoverable from a single
            // f64 residual; transmit the exact value instead.
            (t, r) = exact_coordinate(v);
        }
        sent.push(t);
        residual[i as usize] = r;
    }
}

/// Applies a sparse compressed delta to a dense `f32` reference:
/// `out[i] = f32(f64(reference[i]) + sent[i])` on kept coordinates,
/// `out[i] = reference[i]` bitwise elsewhere.
pub fn apply_sparse_delta(reference: &[f32], kept: &[u32], sent: &[f64], out: &mut Vec<f32>) {
    assert_eq!(kept.len(), sent.len(), "kept/sent length mismatch");
    out.clear();
    out.extend_from_slice(reference);
    for (&i, &t) in kept.iter().zip(sent.iter()) {
        let i = i as usize;
        out[i] = (f64::from(reference[i]) + t) as f32;
    }
}

/// Runtime state of the compression plane for one simulation: the
/// dedicated RNG stream, per-sender error-feedback residuals, and the
/// scratch buffers that keep the hot path allocation-free after warmup.
#[derive(Debug)]
pub struct CompressionPlane {
    cfg: CompressionConfig,
    lossy: bool,
    param_count: usize,
    keep: usize,
    payload: u64,
    rng: StdRng,
    /// Per-device residuals, lazily sized on first use; an empty vec
    /// means all-zero. Unused (always empty) when error feedback is off
    /// or the plane is not lossy-active.
    device_residuals: Vec<Vec<f64>>,
    /// Per-edge residuals for edge→cloud syncs, same convention.
    edge_residuals: Vec<Vec<f64>>,
    delta: Vec<f64>,
    kept: Vec<u32>,
    sent: Vec<f64>,
    residual_out: Vec<f64>,
    recon: Vec<f32>,
}

impl CompressionPlane {
    /// Builds the plane for a simulation with the given population and
    /// model size, deriving its RNG from stream [`COMPRESSION_STREAM`].
    pub fn new(
        cfg: CompressionConfig,
        num_devices: usize,
        num_edges: usize,
        param_count: usize,
        seed: u64,
    ) -> Self {
        let lossy = cfg.lossy_active();
        let keep = keep_count(param_count, cfg.top_frac);
        let payload = if lossy {
            compressed_payload_bytes(param_count, keep, cfg.quantize_bits)
        } else {
            4 * param_count as u64
        };
        CompressionPlane {
            rng: rng(derive_seed(seed, COMPRESSION_STREAM)),
            cfg,
            lossy,
            param_count,
            keep,
            payload,
            device_residuals: vec![Vec::new(); num_devices],
            edge_residuals: vec![Vec::new(); num_edges],
            delta: Vec::new(),
            kept: Vec::new(),
            sent: Vec::new(),
            residual_out: Vec::new(),
            recon: Vec::new(),
        }
    }

    /// The configuration the plane was built from.
    pub fn config(&self) -> &CompressionConfig {
        &self.cfg
    }

    /// `true` when uploads are actually rewritten (see
    /// [`CompressionConfig::lossy_active`]).
    pub fn lossy_active(&self) -> bool {
        self.lossy
    }

    /// Wire bytes of one uplink payload (device→edge upload or
    /// edge→cloud sync) under the current configuration: the analytic
    /// compressed size when lossy-active, the dense `4 · d` otherwise.
    pub fn payload_bytes(&self) -> u64 {
        self.payload
    }

    /// Wire bytes of one dense (uncompressed) model transfer.
    pub fn dense_payload_bytes(&self) -> u64 {
        4 * self.param_count as u64
    }

    /// Compresses a device→edge upload and returns the model the edge
    /// reconstructs: `reference + decompress(compress(delta))` where
    /// `delta = new − reference (+ residual)`. Updates the device's
    /// error-feedback residual. Must only be called when
    /// [`Self::lossy_active`].
    pub fn compress_device_upload(
        &mut self,
        device: usize,
        new_flat: &[f32],
        reference_flat: &[f32],
    ) -> &[f32] {
        debug_assert!(self.lossy, "compress called on an inert plane");
        let Self {
            cfg,
            keep,
            param_count,
            rng,
            device_residuals,
            delta,
            kept,
            sent,
            residual_out,
            recon,
            ..
        } = self;
        compress_pass(
            cfg,
            *keep,
            *param_count,
            new_flat,
            reference_flat,
            &mut device_residuals[device],
            rng,
            delta,
            kept,
            sent,
            residual_out,
            recon,
        );
        recon
    }

    /// Compresses an edge→cloud sync upload, same contract as
    /// [`Self::compress_device_upload`] with the edge's residual.
    pub fn compress_edge_sync(
        &mut self,
        edge: usize,
        new_flat: &[f32],
        reference_flat: &[f32],
    ) -> &[f32] {
        debug_assert!(self.lossy, "compress called on an inert plane");
        let Self {
            cfg,
            keep,
            param_count,
            rng,
            edge_residuals,
            delta,
            kept,
            sent,
            residual_out,
            recon,
            ..
        } = self;
        compress_pass(
            cfg,
            *keep,
            *param_count,
            new_flat,
            reference_flat,
            &mut edge_residuals[edge],
            rng,
            delta,
            kept,
            sent,
            residual_out,
            recon,
        );
        recon
    }

    /// The plane's RNG stream, for checkpointing.
    pub fn rng_ref(&self) -> &StdRng {
        &self.rng
    }

    /// Captures the plane's mutable state (RNG + residuals) for a
    /// checkpoint. Returns `None` when the plane is inert — there is
    /// nothing to capture, and absent-field deserialization keeps old
    /// checkpoints readable.
    pub fn state_checkpoint(&self) -> Option<CompressionPlaneCheckpoint> {
        if !self.lossy {
            return None;
        }
        Some(CompressionPlaneCheckpoint {
            rng: RngStateCheckpoint::capture(&self.rng),
            device_residuals: self.device_residuals.clone(),
            edge_residuals: self.edge_residuals.clone(),
        })
    }

    /// Restores the plane's mutable state from a checkpoint previously
    /// produced by [`Self::state_checkpoint`] on an identically
    /// configured plane.
    ///
    /// # Errors
    /// Rejects residual shapes that do not match this plane's
    /// population or parameter count.
    pub fn restore_state(&mut self, ck: &CompressionPlaneCheckpoint) -> Result<(), String> {
        if ck.device_residuals.len() != self.device_residuals.len() {
            return Err(format!(
                "checkpoint has {} device residuals, simulation has {}",
                ck.device_residuals.len(),
                self.device_residuals.len()
            ));
        }
        if ck.edge_residuals.len() != self.edge_residuals.len() {
            return Err(format!(
                "checkpoint has {} edge residuals, simulation has {}",
                ck.edge_residuals.len(),
                self.edge_residuals.len()
            ));
        }
        for r in ck.device_residuals.iter().chain(ck.edge_residuals.iter()) {
            if !r.is_empty() && r.len() != self.param_count {
                return Err(format!(
                    "checkpoint residual has {} coordinates, model has {}",
                    r.len(),
                    self.param_count
                ));
            }
        }
        self.rng = ck.rng.restore();
        self.device_residuals = ck.device_residuals.clone();
        self.edge_residuals = ck.edge_residuals.clone();
        Ok(())
    }
}

/// Shared body of the two `compress_*` entry points: forms the
/// error-feedback-augmented delta, compresses it, stores the new
/// residual, and reconstructs the receiver-side model into `recon`.
#[allow(clippy::too_many_arguments)]
fn compress_pass(
    cfg: &CompressionConfig,
    keep: usize,
    param_count: usize,
    new_flat: &[f32],
    reference_flat: &[f32],
    residual_slot: &mut Vec<f64>,
    rng: &mut StdRng,
    delta: &mut Vec<f64>,
    kept: &mut Vec<u32>,
    sent: &mut Vec<f64>,
    residual_out: &mut Vec<f64>,
    recon: &mut Vec<f32>,
) {
    assert_eq!(new_flat.len(), param_count, "upload dimension mismatch");
    assert_eq!(
        reference_flat.len(),
        param_count,
        "reference dimension mismatch"
    );
    delta.clear();
    if cfg.error_feedback && !residual_slot.is_empty() {
        delta.extend(
            new_flat
                .iter()
                .zip(reference_flat.iter())
                .zip(residual_slot.iter())
                .map(|((&n, &r), &e)| f64::from(n) - f64::from(r) + e),
        );
    } else {
        delta.extend(
            new_flat
                .iter()
                .zip(reference_flat.iter())
                .map(|(&n, &r)| f64::from(n) - f64::from(r)),
        );
    }
    compress_delta(
        delta,
        cfg.quantize_bits,
        keep,
        cfg.rounding,
        rng,
        kept,
        sent,
        residual_out,
    );
    if cfg.error_feedback {
        std::mem::swap(residual_slot, residual_out);
    }
    apply_sparse_delta(reference_flat, kept, sent, recon);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn compress_once(
        delta: &[f64],
        bits: u32,
        k: usize,
        mode: RoundingMode,
        seed: u64,
    ) -> (Vec<u32>, Vec<f64>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (mut kept, mut sent, mut residual) = (Vec::new(), Vec::new(), Vec::new());
        compress_delta(
            delta,
            bits,
            k,
            mode,
            &mut rng,
            &mut kept,
            &mut sent,
            &mut residual,
        );
        (kept, sent, residual)
    }

    #[test]
    fn default_config_is_inert() {
        let cfg = CompressionConfig::default();
        assert!(!cfg.enabled);
        assert!(cfg.is_lossless());
        assert!(!cfg.lossy_active());
        cfg.validate().unwrap();
    }

    #[test]
    fn enabled_lossless_is_not_lossy_active() {
        let cfg = CompressionConfig {
            enabled: true,
            ..CompressionConfig::default()
        };
        assert!(!cfg.lossy_active());
        let lossy = CompressionConfig {
            enabled: true,
            quantize_bits: 8,
            ..CompressionConfig::default()
        };
        assert!(lossy.lossy_active());
    }

    #[test]
    fn validate_catches_violations() {
        let mut cfg = CompressionConfig {
            quantize_bits: 0,
            ..CompressionConfig::default()
        };
        assert!(cfg.validate().is_err());
        cfg.quantize_bits = 33;
        assert!(cfg.validate().is_err());
        cfg = CompressionConfig::default();
        cfg.top_frac = 0.0;
        assert!(cfg.validate().is_err());
        cfg.top_frac = 1.5;
        assert!(cfg.validate().is_err());
        cfg.top_frac = f64::NAN;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn config_round_trips_through_json() {
        let cfg = CompressionConfig {
            enabled: true,
            quantize_bits: 6,
            top_frac: 0.25,
            rounding: RoundingMode::Nearest,
            error_feedback: false,
        };
        let json = serde_json::to_string(&cfg).unwrap();
        let back: CompressionConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
        // Absent fields take the documented defaults.
        let defaults: CompressionConfig = serde_json::from_str("{}").unwrap();
        assert_eq!(defaults, CompressionConfig::default());
    }

    #[test]
    fn keep_count_bounds() {
        assert_eq!(keep_count(0, 0.5), 0);
        assert_eq!(keep_count(10, 1.0), 10);
        assert_eq!(keep_count(10, 0.25), 3); // ceil(2.5)
        assert_eq!(keep_count(10, 1e-9), 1);
        assert_eq!(keep_count(7850, 0.05), 393);
    }

    #[test]
    fn payload_bytes_formula() {
        // Dense: classic 4 bytes per f32 parameter, no header.
        assert_eq!(compressed_payload_bytes(7850, 7850, 32), 4 * 7850);
        // 7850 coordinates need 13 index bits.
        let k = 1963;
        assert_eq!(
            compressed_payload_bytes(7850, k, 8),
            16 + (k as u64 * (8 + 13)).div_ceil(8)
        );
        // Full-K but narrow values: no index bits, but still a header.
        assert_eq!(
            compressed_payload_bytes(100, 100, 4),
            16 + (100u64 * 4).div_ceil(8)
        );
        assert_eq!(compressed_payload_bytes(0, 0, 8), 0);
    }

    #[test]
    fn tier1_grid_has_a_4x_cell() {
        let dense = compressed_payload_bytes(7850, 7850, 32);
        let k = keep_count(7850, 0.25);
        let c = compressed_payload_bytes(7850, k, 8);
        assert!(dense as f64 / c as f64 >= 4.0, "{dense} / {c}");
    }

    #[test]
    fn nearest_rounding_error_bounded_by_half_step() {
        let delta: Vec<f64> = (0..64)
            .map(|i| ((i * 37 % 64) as f64 - 31.0) * 0.11)
            .collect();
        let bits = 5;
        let (kept, sent, _) = compress_once(&delta, bits, delta.len(), RoundingMode::Nearest, 1);
        let lo = delta.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = delta.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let step = (hi - lo) / ((1u64 << bits) - 1) as f64;
        for (&i, &t) in kept.iter().zip(&sent) {
            let err = (t - delta[i as usize]).abs();
            assert!(err <= step / 2.0 + 1e-12, "err {err} step {step}");
        }
    }

    #[test]
    fn conservation_is_bitwise_even_for_drowned_coordinates() {
        // 1e-20 between −1 and 1 at 1 bit: the grid value 1.0 drowns the
        // delta; the exact fallback must still reconstruct bitwise.
        let delta = [-1.0, 1e-20, 1.0];
        for mode in [RoundingMode::Nearest, RoundingMode::Stochastic] {
            let (kept, sent, residual) = compress_once(&delta, 1, 3, mode, 9);
            let mut recon = residual.clone();
            for (&i, &t) in kept.iter().zip(&sent) {
                recon[i as usize] = t + residual[i as usize];
            }
            for (r, d) in recon.iter().zip(&delta) {
                assert_eq!(r.to_bits(), d.to_bits());
            }
        }
    }

    #[test]
    fn negative_zero_survives_conservation() {
        let delta = [-0.0, 5.0, -3.0];
        let (kept, sent, residual) = compress_once(&delta, 2, 3, RoundingMode::Nearest, 3);
        for (&i, &t) in kept.iter().zip(&sent) {
            let r = t + residual[i as usize];
            assert_eq!(r.to_bits(), delta[i as usize].to_bits(), "coord {i}");
        }
    }

    #[test]
    fn top_k_keeps_largest_magnitudes() {
        let delta = [0.1, -5.0, 0.0, 3.0, -0.2, 4.0];
        let (kept, _, residual) = compress_once(&delta, 32, 3, RoundingMode::Nearest, 4);
        assert_eq!(kept, vec![1, 3, 5]);
        // Dropped coordinates carry their whole delta in the residual.
        assert_eq!(residual[0], 0.1);
        assert_eq!(residual[2], 0.0);
        assert_eq!(residual[4], -0.2);
    }

    #[test]
    fn lossless_settings_round_trip_bitwise() {
        let delta: Vec<f64> = (0..33).map(|i| (f64::from(i) * 0.37).sin() * 1e3).collect();
        let (kept, sent, residual) =
            compress_once(&delta, 32, delta.len(), RoundingMode::Stochastic, 5);
        assert_eq!(kept.len(), delta.len());
        for (&i, &t) in kept.iter().zip(&sent) {
            assert_eq!(t.to_bits(), delta[i as usize].to_bits());
            assert_eq!(residual[i as usize], 0.0);
        }
    }

    #[test]
    fn stochastic_draws_once_per_kept_coordinate() {
        let delta: Vec<f64> = (0..10).map(|i| f64::from(i) * 0.5).collect();
        let mut rng = StdRng::seed_from_u64(11);
        let (mut kept, mut sent, mut residual) = (Vec::new(), Vec::new(), Vec::new());
        compress_delta(
            &delta,
            4,
            7,
            RoundingMode::Stochastic,
            &mut rng,
            &mut kept,
            &mut sent,
            &mut residual,
        );
        // Reference stream: 7 draws exactly.
        let mut expected = StdRng::seed_from_u64(11);
        for _ in 0..7 {
            expected.gen::<f64>();
        }
        assert_eq!(rng.state(), expected.state());
        // Nearest mode and lossless width draw nothing.
        let mut rng = StdRng::seed_from_u64(11);
        compress_delta(
            &delta,
            4,
            7,
            RoundingMode::Nearest,
            &mut rng,
            &mut kept,
            &mut sent,
            &mut residual,
        );
        compress_delta(
            &delta,
            32,
            7,
            RoundingMode::Stochastic,
            &mut rng,
            &mut kept,
            &mut sent,
            &mut residual,
        );
        assert_eq!(rng.state(), StdRng::seed_from_u64(11).state());
    }

    #[test]
    fn apply_sparse_delta_leaves_untouched_coordinates_bitwise() {
        let reference = [1.5f32, -2.25, 0.75, 8.0];
        let kept = [1u32, 3];
        let sent = [0.25f64, -1.0];
        let mut out = Vec::new();
        apply_sparse_delta(&reference, &kept, &sent, &mut out);
        assert_eq!(out[0].to_bits(), reference[0].to_bits());
        assert_eq!(out[2].to_bits(), reference[2].to_bits());
        assert_eq!(out[1], -2.0);
        assert_eq!(out[3], 7.0);
    }

    #[test]
    fn error_feedback_residual_reenters_next_upload() {
        let d = 8;
        let mut plane = CompressionPlane::new(
            CompressionConfig {
                enabled: true,
                quantize_bits: 2,
                top_frac: 0.5,
                rounding: RoundingMode::Nearest,
                error_feedback: true,
            },
            1,
            1,
            d,
            42,
        );
        let reference = vec![0.0f32; d];
        let new: Vec<f32> = (0..d).map(|i| i as f32 * 0.125).collect();
        plane.compress_device_upload(0, &new, &reference);
        let residual_mass: f64 = plane.device_residuals[0].iter().map(|r| r.abs()).sum();
        assert!(residual_mass > 0.0, "lossy compression must leave residual");
        // Uploading an unchanged model now transmits the stored residual.
        let recon2 = plane
            .compress_device_upload(0, &reference, &reference)
            .to_vec();
        assert!(
            recon2.iter().any(|&v| v != 0.0),
            "residual mass must re-enter"
        );
    }

    #[test]
    fn plane_checkpoint_round_trips() {
        let cfg = CompressionConfig {
            enabled: true,
            quantize_bits: 6,
            top_frac: 0.5,
            rounding: RoundingMode::Stochastic,
            error_feedback: true,
        };
        let d = 16;
        let mut plane = CompressionPlane::new(cfg.clone(), 3, 2, d, 7);
        let reference = vec![0.5f32; d];
        let new: Vec<f32> = (0..d).map(|i| (i as f32).sin()).collect();
        plane.compress_device_upload(1, &new, &reference);
        plane.compress_edge_sync(0, &new, &reference);
        let ck = plane.state_checkpoint().expect("lossy plane checkpoints");
        let json = serde_json::to_string(&ck).unwrap();
        let back: CompressionPlaneCheckpoint = serde_json::from_str(&json).unwrap();
        let mut restored = CompressionPlane::new(cfg, 3, 2, d, 999);
        restored.restore_state(&back).unwrap();
        // Both planes must now produce identical compressions.
        let a = plane.compress_device_upload(1, &new, &reference).to_vec();
        let b = restored
            .compress_device_upload(1, &new, &reference)
            .to_vec();
        assert_eq!(a, b);
        assert_eq!(plane.rng.state(), restored.rng.state());
    }

    #[test]
    fn restore_rejects_mismatched_shapes() {
        let cfg = CompressionConfig {
            enabled: true,
            quantize_bits: 4,
            top_frac: 0.5,
            rounding: RoundingMode::Nearest,
            error_feedback: true,
        };
        let plane = CompressionPlane::new(cfg.clone(), 2, 1, 8, 1);
        let ck = plane.state_checkpoint().unwrap();
        let mut wrong_pop = CompressionPlane::new(cfg.clone(), 3, 1, 8, 1);
        assert!(wrong_pop.restore_state(&ck).is_err());
        let mut wrong_dim = CompressionPlane::new(cfg, 2, 1, 4, 1);
        let mut bad = ck.clone();
        bad.device_residuals[0] = vec![0.0; 8];
        assert!(wrong_dim.restore_state(&bad).is_err());
    }
}
